package apgas

import (
	"fmt"
	"os"
	"testing"

	"apgas/internal/harness"
	"apgas/internal/perfobs"
)

// TestMain is the `go test -bench` artifact wrapper: when
// APGAS_BENCH_JSON names a file and the run succeeds, it collects the
// Figure 1 panels (plus the SPMD broadcast sweep) at tiny scale into a
// performance-observatory artifact — the same format apgas-bench
// -bench-json emits, validated by tracecheck -bench and gated by
// benchdiff. Example:
//
//	APGAS_BENCH_JSON=/tmp/BENCH_ci.json go test -bench=. -benchtime=1x
func TestMain(m *testing.M) {
	code := m.Run()
	if path := os.Getenv("APGAS_BENCH_JSON"); path != "" && code == 0 {
		if err := writeBenchArtifact(path); err != nil {
			fmt.Fprintf(os.Stderr, "APGAS_BENCH_JSON: %v\n", err)
			code = 1
		}
	}
	os.Exit(code)
}

func writeBenchArtifact(path string) error {
	art, err := perfobs.Collect(harness.Tiny, 1, []perfobs.Runner{
		{Name: "hpl", Run: harness.Fig1HPL},
		{Name: "fft", Run: harness.Fig1FFT},
		{Name: "ra", Run: harness.Fig1RandomAccess},
		{Name: "stream", Run: harness.Fig1Stream},
		{Name: "uts", Run: harness.Fig1UTS},
		{Name: "kmeans", Run: harness.Fig1KMeans},
		{Name: "sw", Run: harness.Fig1SW},
		{Name: "bc", Run: harness.Fig1BC},
		{Name: "spmd-bcast", Run: harness.SPMDBroadcastSeries},
		{Name: "transport", Run: harness.TransportSmallSeries},
		{Name: "transport-batch", Run: harness.TransportSmallBatchSeries},
		{Name: "transport-large", Run: harness.TransportLargeBatchSeries},
	}, os.Stderr)
	if err != nil {
		return err
	}
	art.Scale = "go-test-bench"
	if issues := perfobs.Validate(art); len(issues) > 0 {
		return fmt.Errorf("artifact failed validation: %v", issues[0])
	}
	if err := art.WriteFile(path); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote bench artifact %s (%d experiments)\n", path, len(art.Experiments))
	return nil
}
