# Convenience targets for the APGAS reproduction.

GO ?= go

.PHONY: all build test race bench experiments examples clean

all: build test

build:
	$(GO) build ./...
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Regenerate every table and figure at laptop scale.
experiments:
	$(GO) run ./cmd/apgas-bench -exp all -scale small

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/uts
	$(GO) run ./examples/kmeans
	$(GO) run ./examples/ra
	$(GO) run ./examples/finishpatterns
	$(GO) run ./examples/tcpcluster

clean:
	$(GO) clean ./...
