# Convenience targets for the APGAS reproduction.

GO ?= go

.PHONY: all build test race bench trace experiments examples clean

all: build test race

build:
	$(GO) build ./...
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Record a Chrome trace of a small UTS run and sanity-check the JSON.
trace:
	$(GO) run ./cmd/uts -places 4 -depth 8 -trace /tmp/apgas-uts-trace.json
	$(GO) run ./cmd/tracecheck /tmp/apgas-uts-trace.json

# Regenerate every table and figure at laptop scale.
experiments:
	$(GO) run ./cmd/apgas-bench -exp all -scale small

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/uts
	$(GO) run ./examples/kmeans
	$(GO) run ./examples/ra
	$(GO) run ./examples/finishpatterns
	$(GO) run ./examples/tcpcluster

clean:
	$(GO) clean ./...
