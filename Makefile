# Convenience targets for the APGAS reproduction.

GO ?= go

.PHONY: all build test race bench bench-smoke profile-smoke trace dtrace telemetry wire chaos chaos-kill litmus fuzz-short experiments examples clean

all: build test race telemetry wire chaos chaos-kill litmus dtrace bench-smoke profile-smoke fuzz-short

build:
	$(GO) build ./...
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Performance observatory smoke: emit a tiny single-rep artifact (UTS
# exercises the steal/lifeline critical-path buckets), validate it
# against the BENCH schema, then self-compare — benchdiff must report
# zero regressions by construction, so any failure is a pipeline bug.
# The transport gate then asserts the wire-path overhaul's acceptance
# target: ≥3x msgs/s from batching on the small-control-frame
# microbenchmark, and the tracing gate asserts the distributed-tracing
# acceptance target: disabled span-propagation hooks cost <2% of a
# finish message and allocate nothing.
bench-smoke:
	$(GO) run ./cmd/apgas-bench -exp uts -scale tiny -bench-json /tmp/apgas-bench-smoke.json -bench-reps 1
	$(GO) run ./cmd/tracecheck -bench /tmp/apgas-bench-smoke.json
	$(GO) run ./cmd/benchdiff /tmp/apgas-bench-smoke.json /tmp/apgas-bench-smoke.json
	$(GO) test -run 'TestTransportBatchSpeedup|TestCodecSpeedup|TestOneSidedBandwidth|TestTracingDisabledOverhead|TestProfilingDisabledOverhead|TestWireLedgerDisabledOverhead' -count=1 -v ./internal/harness

# Continuous-profiling smoke: run the dense workload with pprof labels
# and enough spin per phase to land real CPU samples, capture a profile,
# and have tracecheck's label-aware summarizer assert that the samples
# partition by (place, pattern, kind) — at least two distinct finish
# patterns and two places must appear, i.e. attribution survives every
# activity boundary, not just the root body.
profile-smoke:
	$(GO) run ./cmd/apgas-bench -exp dense -prof -prof-cpu /tmp/apgas-profile-smoke.pb.gz -dense-burn 30000000
	$(GO) run ./cmd/tracecheck -profile -min-samples 5 -min-labeled 0.8 \
		-min-distinct pattern=2 -min-distinct place=2 /tmp/apgas-profile-smoke.pb.gz

# Record a Chrome trace of a small UTS run and sanity-check the JSON.
trace:
	$(GO) run ./cmd/uts -places 4 -depth 8 -trace /tmp/apgas-uts-trace.json
	$(GO) run ./cmd/tracecheck /tmp/apgas-uts-trace.json

# Distributed tracing end to end: a 4-place FINISH_DENSE run records
# one trace per place, merges them on the HLC-aligned timeline (every
# cross-place message becomes a flow arrow), prints the cross-place
# critical-path attribution, and tracecheck validates the merged file —
# flow begin/end pairing, no backwards arrows, monotone tracks.
dtrace:
	$(GO) run ./cmd/apgas-bench -exp dense -places 4 -trace-dist /tmp/apgas-dtrace
	$(GO) run ./cmd/tracecheck /tmp/apgas-dtrace-merged.json

# Cross-place telemetry smoke: a 4-place run under the Power 775 latency
# model whose aggregated message counts must equal the sum of the four
# per-place transport stats (the binary exits nonzero on mismatch), plus
# a flight-recorder dump validated by tracecheck. The second run repeats
# the check over the batching wire path with compression enabled: the
# sum equality — wire bytes included — must survive coalescing.
telemetry:
	$(GO) run ./cmd/apgas-bench -exp telemetry -places 4 -netsim -metrics-all \
		-flight-dump /tmp/apgas-flight.jsonl
	$(GO) run ./cmd/tracecheck /tmp/apgas-flight.jsonl
	$(GO) run ./cmd/apgas-bench -exp telemetry -places 4 -batch -compress-min 128

# Wire observatory end to end: a 4-place batched FINISH_DENSE run with
# the cost-attribution ledger enabled writes the /wire-format dump and
# asserts the sum-equality invariant in-process (Σ per-handler payload
# bytes == transport bytes sent, Σ per-link wire bytes == bytes on the
# wire — the binary exits nonzero on mismatch); tracecheck then
# revalidates the serialized dump (row ordering, compression sanity,
# the same sums). The second run repeats the in-process check on the
# telemetry workload with compression enabled.
wire:
	$(GO) run ./cmd/apgas-bench -exp dense -places 4 -batch -wire-dump /tmp/apgas-wire.json
	$(GO) run ./cmd/tracecheck -wire /tmp/apgas-wire.json
	$(GO) run ./cmd/apgas-bench -exp telemetry -places 4 -batch -compress-min 128 -wire

# Deterministic chaos: a short race-enabled seed sweep of every finish
# pattern (plus lifeline GLB) under fault injection, checking the finish
# quiescence, activity conservation, and telemetry sum invariants after
# every run, followed by the exhaustive SPMD credit-order permutations.
# The full 64-seed acceptance sweep is `go test ./internal/chaos -run
# Explore` (without -short); cmd/chaos adds replay of a failing seed.
chaos:
	$(GO) test -race -short -run 'TestExplore|TestReplay' ./internal/chaos
	$(GO) run ./cmd/apgas-bench -exp chaos -chaos-seeds 4

# Resilience acceptance: every chaos workload x 32 seeds with one
# seed-chosen mid-run place death, plain and batched, plus the
# byte-identical kill-replay check, then the same sweep from the CLI
# (which also proves the cmd/chaos -kill path).
chaos-kill:
	$(GO) test -race -run 'TestKillSweep|TestKillReplay' ./internal/chaos
	$(GO) run ./cmd/chaos -kill -seeds 32

# Litmus-style ordering fence: MP/SB/IRIW analogues at the transport
# layer (chan, TCP, batching wires) and at the runtime layer
# (at/async/AtDirect/dense ctl), plus the cross-transport death
# battery. Resilience changes that weaken delivery guarantees fail
# here first.
litmus:
	$(GO) test -race -run 'TestLitmus' ./internal/core
	$(GO) test -race -run 'TestDeath' ./internal/x10rt/transporttest

# 30 seconds of coverage-guided fuzzing per target: the x10rt TCP frame
# and batch-frame codecs and the tracecheck flight-dump and
# bench-artifact validators. -fuzzminimizetime is
# bounded because the default 60s-per-input minimization budget would
# otherwise consume the entire run.
fuzz-short:
	$(GO) test -run '^$$' -fuzz FuzzFrameRoundTrip -fuzztime 30s -fuzzminimizetime=10x ./internal/x10rt
	$(GO) test -run '^$$' -fuzz FuzzDecodeFrame -fuzztime 30s -fuzzminimizetime=10x ./internal/x10rt
	$(GO) test -run '^$$' -fuzz FuzzDecodeBatch -fuzztime 30s -fuzzminimizetime=10x ./internal/x10rt
	$(GO) test -run '^$$' -fuzz FuzzBatchFrameRoundTrip -fuzztime 30s -fuzzminimizetime=10x ./internal/x10rt
	$(GO) test -run '^$$' -fuzz FuzzCodecDecode -fuzztime 30s -fuzzminimizetime=10x ./internal/x10rt
	$(GO) test -run '^$$' -fuzz FuzzTypeTableHandshake -fuzztime 30s -fuzzminimizetime=10x ./internal/x10rt
	$(GO) test -run '^$$' -fuzz FuzzCheckFlightDump -fuzztime 30s -fuzzminimizetime=10x ./cmd/tracecheck
	$(GO) test -run '^$$' -fuzz FuzzCheckBench -fuzztime 30s -fuzzminimizetime=10x ./cmd/tracecheck
	$(GO) test -run '^$$' -fuzz FuzzCheckMergedTrace -fuzztime 30s -fuzzminimizetime=10x ./cmd/tracecheck
	$(GO) test -run '^$$' -fuzz FuzzCheckKillDump -fuzztime 30s -fuzzminimizetime=10x ./cmd/tracecheck
	$(GO) test -run '^$$' -fuzz FuzzCheckWireDump -fuzztime 30s -fuzzminimizetime=10x ./cmd/tracecheck

# Regenerate every table and figure at laptop scale.
experiments:
	$(GO) run ./cmd/apgas-bench -exp all -scale small

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/uts
	$(GO) run ./examples/kmeans
	$(GO) run ./examples/ra
	$(GO) run ./examples/finishpatterns
	$(GO) run ./examples/tcpcluster

clean:
	$(GO) clean ./...
