# Convenience targets for the APGAS reproduction.

GO ?= go

.PHONY: all build test race bench trace telemetry experiments examples clean

all: build test race telemetry

build:
	$(GO) build ./...
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Record a Chrome trace of a small UTS run and sanity-check the JSON.
trace:
	$(GO) run ./cmd/uts -places 4 -depth 8 -trace /tmp/apgas-uts-trace.json
	$(GO) run ./cmd/tracecheck /tmp/apgas-uts-trace.json

# Cross-place telemetry smoke: a 4-place run under the Power 775 latency
# model whose aggregated message counts must equal the sum of the four
# per-place transport stats (the binary exits nonzero on mismatch), plus
# a flight-recorder dump validated by tracecheck.
telemetry:
	$(GO) run ./cmd/apgas-bench -exp telemetry -places 4 -netsim -metrics-all \
		-flight-dump /tmp/apgas-flight.jsonl
	$(GO) run ./cmd/tracecheck /tmp/apgas-flight.jsonl

# Regenerate every table and figure at laptop scale.
experiments:
	$(GO) run ./cmd/apgas-bench -exp all -scale small

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/uts
	$(GO) run ./examples/kmeans
	$(GO) run ./examples/ra
	$(GO) run ./examples/finishpatterns
	$(GO) run ./examples/tcpcluster

clean:
	$(GO) clean ./...
