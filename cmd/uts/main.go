// Command uts runs the Unbalanced Tree Search benchmark standalone: a
// geometric tree (b0, seed, depth) traversed by the lifeline-based global
// load balancer across the requested number of places, with the
// refinements of §6 of "X10 and APGAS at Petascale" selectable for
// comparison against the original PPoPP'11 configuration.
//
// Usage:
//
//	uts -places 8 -depth 14
//	uts -places 8 -depth 14 -legacy        # original [35] configuration
//	uts -places 8 -depth 14 -verify
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"apgas/internal/apps/uts"
	"apgas/internal/core"
	"apgas/internal/glb"
	"apgas/internal/kernels/sha1rng"
	"apgas/internal/obs"
	"apgas/internal/telemetry"
	"apgas/internal/x10rt"
)

func main() {
	places := flag.Int("places", 4, "number of places")
	depth := flag.Int("depth", 13, "tree depth cut-off d (geometric family)")
	b0 := flag.Float64("b0", 4, "geometric branching parameter")
	seed := flag.Uint("seed", 19, "root seed r")
	binomial := flag.Bool("binomial", false, "use the binomial (deep-narrow) tree family")
	binB0 := flag.Int("bin-b0", 2000, "binomial: root branching factor")
	binM := flag.Int("bin-m", 2, "binomial: non-root branching factor")
	binQ := flag.Float64("bin-q", 0.49, "binomial: branching probability (m*q < 1)")
	legacy := flag.Bool("legacy", false, "use the PPoPP'11 configuration: "+
		"expanded node lists, unbounded victim sets, default finish")
	verify := flag.Bool("verify", false, "check the count against a sequential traversal")
	quantum := flag.Int("quantum", 0, "work units per scheduling quantum (0 = default)")
	traceFile := flag.String("trace", "",
		"write a Chrome trace_event JSON file (load in chrome://tracing or Perfetto)")
	metrics := flag.Bool("metrics", false, "print a metrics snapshot to stderr after the run")
	metricsAll := flag.Bool("metrics-all", false,
		"print the merged cross-place metrics table (sum, min@place, max@place, per-place) after the run")
	watchdog := flag.Duration("watchdog", 0,
		"enable the finish stall watchdog with this window, e.g. -watchdog 10s (0 = off)")
	debugAddr := flag.String("debug-addr", "",
		"serve /debug/pprof, /debug/vars, /debug/profilez, /telemetry, /metrics, and /wire on this address while running (e.g. :6060)")
	flightDump := flag.String("flight-dump", "",
		"write the flight recorder (JSON Lines, validated by tracecheck) to this file at exit")
	batch := flag.Bool("batch", false,
		"run over the batching wire path: per-link coalescing of the balancer's control frames")
	batchDelay := flag.Duration("batch-delay", 200*time.Microsecond,
		"with -batch: bound on how long a queued frame may wait before its batch flushes")
	compressMin := flag.Int("compress-min", 0,
		"with -batch: compress batch payloads at least this many encoded bytes (0 = off)")
	flag.Parse()

	var tree sha1rng.Tree = sha1rng.Geometric{B0: *b0, Depth: *depth, Seed: uint32(*seed)}
	if *binomial {
		tree = sha1rng.Binomial{B0: *binB0, M: *binM, Q: *binQ, Seed: uint32(*seed)}
	}
	cfg := uts.Config{Tree: tree, GLB: glb.Config{Quantum: *quantum, DenseFinish: true}}
	if *legacy {
		cfg.UseListBag = true
		cfg.GLB.DenseFinish = false
		cfg.GLB.MaxVictims = -1
	}

	var o *obs.Obs
	switch {
	case *traceFile != "":
		o = obs.NewTracing()
	case *metrics || *metricsAll || *watchdog > 0 || *flightDump != "" || *debugAddr != "":
		o = obs.New()
	}

	var flightFile *os.File
	if *flightDump != "" {
		var err error
		flightFile, err = os.Create(*flightDump)
		if err != nil {
			fmt.Fprintf(os.Stderr, "uts: %v\n", err)
			os.Exit(1)
		}
		defer flightFile.Close()
	}
	rtCfg := core.Config{Places: *places, Obs: o}
	if *batch {
		inner, err := x10rt.NewChanTransport(x10rt.ChanOptions{Places: *places})
		if err != nil {
			fmt.Fprintf(os.Stderr, "uts: %v\n", err)
			os.Exit(1)
		}
		rtCfg.Transport = x10rt.NewBatchingTransport(inner, x10rt.BatchOptions{
			MaxDelay:    *batchDelay,
			CompressMin: *compressMin,
		})
		rtCfg.OwnTransport = true
	}
	if flightFile != nil {
		rtCfg.FlightDump = flightFile
	}
	rt, err := core.NewRuntime(rtCfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "uts: %v\n", err)
		os.Exit(1)
	}
	defer rt.Close()

	// SIGQUIT prints the finish/flight diagnostic without killing the run.
	var plane *telemetry.Plane
	if o != nil {
		stopSig := telemetry.DumpOnSignal(rt, os.Stderr)
		defer stopSig()
		if plane, err = telemetry.Attach(rt); err != nil {
			fmt.Fprintf(os.Stderr, "uts: %v\n", err)
			os.Exit(1)
		}
		// The /telemetry and /metrics handlers serve whatever plane is
		// installed as current.
		telemetry.SetCurrent(plane)
		defer telemetry.SetCurrent(nil)
		if *watchdog > 0 {
			w := telemetry.StartWatchdog(rt, telemetry.WatchdogOptions{Window: *watchdog})
			defer w.Stop()
		}
		if *debugAddr != "" {
			ds, stopPlane, derr := telemetry.StartDebugPlane(*debugAddr, o, *places)
			if derr != nil {
				fmt.Fprintf(os.Stderr, "uts: %v\n", derr)
				os.Exit(1)
			}
			defer stopPlane()
			fmt.Fprintf(os.Stderr, "debug server on http://%s/debug/pprof/, /debug/vars, /debug/profilez, /telemetry, /metrics, and /wire\n", ds.Addr)
		}
	}

	res, err := uts.Run(rt, cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "uts: %v\n", err)
		os.Exit(1)
	}
	if *metricsAll {
		rep, err := plane.Report(10 * time.Second)
		if err != nil {
			fmt.Fprintf(os.Stderr, "uts: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintln(os.Stderr, "--- cross-place metrics ---")
		rep.WriteTable(os.Stderr)
	}
	if flightFile != nil {
		if err := o.FlightRecorder().WriteDump(flightFile); err != nil {
			fmt.Fprintf(os.Stderr, "uts: write flight dump: %v\n", err)
			os.Exit(1)
		}
	}
	if *metrics {
		fmt.Fprintln(os.Stderr, "--- metrics ---")
		o.Metrics.Snapshot().WriteText(os.Stderr)
	}
	if *traceFile != "" {
		if err := o.Trace.WriteChromeFile(*traceFile); err != nil {
			fmt.Fprintf(os.Stderr, "uts: write trace: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "--- trace summary (full trace: %s) ---\n", *traceFile)
		o.Trace.WriteSummary(os.Stderr)
	}
	if *binomial {
		fmt.Printf("tree: binomial b0=%d m=%d q=%g seed=%d\n", *binB0, *binM, *binQ, *seed)
	} else {
		fmt.Printf("tree: geometric b0=%g seed=%d depth=%d\n", *b0, *seed, *depth)
	}
	fmt.Printf("nodes: %d (%.0f SHA1 hashes)\n", res.Nodes, float64(res.Hashes))
	fmt.Printf("time: %.3fs  rate: %.3f Mnodes/s (%.3f Mnodes/s/place)\n",
		res.Seconds, res.NodesPerSecond()/1e6, res.NodesPerSecond()/1e6/float64(*places))
	fmt.Printf("balancer: %d/%d random steals, %d lifeline sends, %d deliveries, %d resuscitations\n",
		res.Stats.StealSuccesses, res.Stats.StealAttempts,
		res.Stats.LifelineRequests, res.Stats.LifelineDeliveries, res.Stats.Resuscitations)

	if *verify {
		want, _ := sha1rng.CountSequential(tree)
		if res.Nodes != want {
			fmt.Fprintf(os.Stderr, "VERIFY FAILED: counted %d, sequential %d\n", res.Nodes, want)
			os.Exit(1)
		}
		fmt.Printf("verify: OK (sequential count matches)\n")
	}
}
