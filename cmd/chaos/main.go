// Command chaos drives the deterministic chaos harness from the shell:
// seed sweeps over every finish-pattern workload (plus lifeline GLB)
// under fault injection, bounded schedule-permutation exploration, and
// minimizing replay of a single failing seed with full observability.
//
// Usage:
//
//	chaos                                  # 64-seed sweep, all workloads
//	chaos -seeds 256 -places 8             # bigger sweep
//	chaos -kill                            # sweep with one mid-run place death per seed
//	chaos -perm                            # exhaustive SPMD credit orderings
//	chaos -chaos-replay 97 -workload dense # re-run one seed, dumps on
//	chaos -kill -chaos-replay 97 -workload async # replay a kill-sweep seed
//
// A sweep that finds violations prints, per failure, the exact replay
// command that reproduces it. Replay runs the seed twice with the
// flight recorder attached and the virtual clock driving timestamps,
// writes both fault dumps plus the flight dump next to -out, and
// verifies the two fault dumps are byte-identical — the determinism
// guarantee that makes a chaos failure debuggable at all. Dumps are in
// the apgas-flight JSONL format; validate or inspect them with
// cmd/tracecheck.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"apgas/internal/chaos"
)

func main() {
	places := flag.Int("places", 4, "places per run")
	seeds := flag.Int("seeds", 64, "number of consecutive seeds to sweep")
	startSeed := flag.Int64("chaos-seed", 1, "first seed of the sweep (every fault decision derives from the seed)")
	replay := flag.Int64("chaos-replay", 0, "re-run this single seed with flight recorder and dumps on (0 = off)")
	workload := flag.String("workload", "all", "workload to run: all, async, here, local, spmd, default, dense, glb")
	perm := flag.Bool("perm", false, "explore all delivery permutations of the FINISH_SPMD completion credits")
	kill := flag.Bool("kill", false, "add one seed-chosen mid-run place death per run; invariants restrict to survivors")
	timeout := flag.Duration("timeout", 30*time.Second, "per-run timeout before a run is declared hung")
	out := flag.String("out", ".", "directory for replay dump files")
	flag.Parse()

	wls, err := selectWorkloads(*workload)
	if err != nil {
		fmt.Fprintf(os.Stderr, "chaos: %v\n", err)
		os.Exit(2)
	}
	opts := chaos.SweepOptions{
		Places:    *places,
		Seeds:     *seeds,
		StartSeed: *startSeed,
		Workloads: wls,
		Timeout:   *timeout,
		Kill:      *kill,
	}

	switch {
	case *replay != 0:
		os.Exit(runReplay(*replay, opts, *out))
	case *perm:
		os.Exit(report(chaos.ExplorePermutations(opts), opts, "permutation exploration"))
	case *kill:
		os.Exit(report(chaos.Sweep(opts), opts, "kill sweep"))
	default:
		os.Exit(report(chaos.Sweep(opts), opts, "sweep"))
	}
}

func selectWorkloads(name string) ([]chaos.Workload, error) {
	all := chaos.Workloads()
	if name == "all" {
		return all, nil
	}
	for _, w := range all {
		if w.Name == name {
			return []chaos.Workload{w}, nil
		}
	}
	return nil, fmt.Errorf("unknown workload %q (try all, async, here, local, spmd, default, dense, glb)", name)
}

// report prints a sweep summary and the replay recipe for every
// failure; exit status 1 when anything failed.
func report(res chaos.SweepResult, opts chaos.SweepOptions, what string) int {
	fmt.Printf("chaos %s: %d runs, %d violating\n", what, res.Runs, len(res.Failures))
	fmt.Printf("fault totals: %v\n", res.FaultTotals)
	for _, rep := range res.Failures {
		fmt.Printf("\nFAIL workload=%s seed=%d faults=%v\n%s",
			rep.Workload, rep.Seed, rep.Faults, chaos.FormatViolations(rep.Violations))
		if rep.FinishDump != "" {
			fmt.Print(rep.FinishDump)
		}
		killFlag := ""
		if opts.Kill {
			killFlag = " -kill"
		}
		fmt.Printf("replay: chaos%s -chaos-replay %d -workload %s -places %d\n",
			killFlag, rep.Seed, rep.Workload, opts.Places)
	}
	if len(res.Failures) > 0 {
		return 1
	}
	return 0
}

// runReplay is the minimizing replay: one seed, one (or each selected)
// workload, observability on, dumps written, determinism verified by
// running the seed twice and comparing fault dumps byte for byte.
func runReplay(seed int64, opts chaos.SweepOptions, outDir string) int {
	opts.Obs = true
	status := 0
	for _, w := range opts.Workloads {
		fo := chaos.FaultsFor(seed, opts.Places)
		if opts.Kill {
			fo = chaos.KillFaultsFor(seed, opts.Places)
		}
		r1 := chaos.RunOne(w, seed, opts, fo)
		r2 := chaos.RunOne(w, seed, opts, fo)

		base := filepath.Join(outDir, fmt.Sprintf("chaos-%s-seed%d", w.Name, seed))
		write := func(suffix string, data []byte) {
			if len(data) == 0 {
				return
			}
			path := base + suffix
			if err := os.WriteFile(path, data, 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "chaos: write %s: %v\n", path, err)
			} else {
				fmt.Printf("  wrote %s\n", path)
			}
		}

		fmt.Printf("replay workload=%s seed=%d faults=%v\n", w.Name, seed, r1.Faults)
		if kp := fo.Kill; kp != nil {
			fmt.Printf("  kill plan: victim=p%d, trigger = eligible send #%d on link p%d->p%d (fired=%v dead=%v err=%v)\n",
				kp.Victim, kp.Seq, kp.Src, kp.Victim,
				r1.Faults["chaos.kill"] > 0, r1.Dead, r1.Err)
		}
		write("-faults.jsonl", r1.FaultDump)
		write("-faults-rerun.jsonl", r2.FaultDump)
		write("-flight.jsonl", r1.FlightDump)
		switch {
		case !w.Deterministic:
			fmt.Printf("  (workload is concurrency-shaped: fault dumps may differ between replays)\n")
		case !bytes.Equal(r1.FaultDump, r2.FaultDump):
			fmt.Printf("  DETERMINISM BROKEN: fault dumps differ between the two replays\n")
			status = 1
		default:
			fmt.Printf("  fault dumps byte-identical across both replays\n")
		}
		if r1.Failed() {
			fmt.Printf("  violations:\n%s", chaos.FormatViolations(r1.Violations))
			if r1.FinishDump != "" {
				fmt.Print(r1.FinishDump)
			}
			status = 1
		} else {
			fmt.Printf("  invariants clean\n")
		}
	}
	return status
}
