// Command benchdiff is the statistical regression gate of the
// performance observatory: it compares two apgas-bench artifacts
// (BENCH_*.json, written by apgas-bench -bench-json) with noise-aware,
// direction-aware tolerances and exits nonzero when the candidate
// regressed the baseline.
//
// Direction awareness: for throughput series a drop beyond -rel-tol is
// a regression; for time-based series a rise is; efficiency is gated on
// an absolute point drop (-eff-tol). Changes beyond tolerance in the
// favourable direction are reported as improvements and pass. Artifacts
// record min-of-N repetitions, so the tolerances guard against residual
// scheduling noise, not raw run-to-run variance.
//
// Usage:
//
//	benchdiff BENCH_old.json BENCH_new.json
//	benchdiff -rel-tol 0.10 -eff-tol 0.05 old.json new.json
//	benchdiff -json report.json -same-env old.json new.json
//
// Exit status: 0 when the gate passes (including reported
// improvements), 1 on regression, 2 on usage or artifact errors.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"apgas/internal/perfobs"
)

func main() {
	relTol := flag.Float64("rel-tol", 0.15,
		"relative change in a point's aggregate beyond which the bad direction regresses")
	effTol := flag.Float64("eff-tol", 0.10,
		"absolute efficiency drop tolerated before regressing")
	sameEnv := flag.Bool("same-env", false,
		"fail (instead of warn) when the artifacts' environment fingerprints differ")
	jsonOut := flag.String("json", "",
		"also write the full report as JSON to this file")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff [flags] OLD.json NEW.json")
		os.Exit(2)
	}
	opt := perfobs.Options{RelTol: *relTol, EffTol: *effTol, RequireSameEnv: *sameEnv}
	os.Exit(runDiff(flag.Arg(0), flag.Arg(1), opt, *jsonOut, os.Stdout, os.Stderr))
}

// runDiff loads, validates, and compares the two artifacts, writing the
// markdown report to stdout (and JSON to jsonPath when set). It returns
// the process exit code.
func runDiff(oldPath, newPath string, opt perfobs.Options, jsonPath string, stdout, stderr io.Writer) int {
	load := func(path string) (*perfobs.Artifact, bool) {
		a, err := perfobs.ReadFile(path)
		if err != nil {
			fmt.Fprintf(stderr, "benchdiff: %v\n", err)
			return nil, false
		}
		if issues := perfobs.Validate(a); len(issues) > 0 {
			fmt.Fprintf(stderr, "benchdiff: %s: invalid artifact (run tracecheck -bench for details): %v\n",
				path, issues[0])
			return nil, false
		}
		return a, true
	}
	oldA, ok := load(oldPath)
	if !ok {
		return 2
	}
	newA, ok := load(newPath)
	if !ok {
		return 2
	}
	rep := perfobs.Compare(oldA, newA, opt)
	rep.WriteMarkdown(stdout)
	if jsonPath != "" {
		if err := writeJSONReport(rep, jsonPath); err != nil {
			fmt.Fprintf(stderr, "benchdiff: write %s: %v\n", jsonPath, err)
			return 2
		}
	}
	if rep.Failed() {
		return 1
	}
	return 0
}
