package main

import (
	"encoding/json"
	"os"

	"apgas/internal/perfobs"
)

// writeJSONReport persists the full report for machine consumption
// (dashboards, CI annotations).
func writeJSONReport(rep *perfobs.Report, path string) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
