package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"apgas/internal/perfobs"
)

// TestSelfCompareExitsZero: an artifact against itself must pass the
// gate with zero regressions — the bench-smoke CI invariant.
func TestSelfCompareExitsZero(t *testing.T) {
	var out, errOut strings.Builder
	code := runDiff("testdata/baseline.json", "testdata/baseline.json",
		perfobs.DefaultOptions(), "", &out, &errOut)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s\nstdout: %s", code, errOut.String(), out.String())
	}
	if !strings.Contains(out.String(), "PASS") || !strings.Contains(out.String(), "0 regression(s)") {
		t.Fatalf("report:\n%s", out.String())
	}
}

// TestDegradedFixtureExitsNonzero: the committed synthetically degraded
// artifact (throughput down 40%, time up 58%, efficiency down 30
// points) must fail the gate.
func TestDegradedFixtureExitsNonzero(t *testing.T) {
	var out, errOut strings.Builder
	code := runDiff("testdata/baseline.json", "testdata/degraded.json",
		perfobs.DefaultOptions(), "", &out, &errOut)
	if code != 1 {
		t.Fatalf("exit %d, want 1; stderr: %s", code, errOut.String())
	}
	md := out.String()
	for _, want := range []string{"FAIL", "regression", "UTS", "K-Means"} {
		if !strings.Contains(md, want) {
			t.Errorf("report missing %q:\n%s", want, md)
		}
	}
}

// TestImprovedDirectionPasses: swapping the operands makes every change
// favourable, which is reported but passes.
func TestImprovedDirectionPasses(t *testing.T) {
	var out, errOut strings.Builder
	code := runDiff("testdata/degraded.json", "testdata/baseline.json",
		perfobs.DefaultOptions(), "", &out, &errOut)
	if code != 0 {
		t.Fatalf("exit %d, want 0 (improvements pass); stdout:\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "improvement") {
		t.Errorf("improvements not reported:\n%s", out.String())
	}
}

func TestJSONReportWritten(t *testing.T) {
	path := filepath.Join(t.TempDir(), "report.json")
	var out, errOut strings.Builder
	code := runDiff("testdata/baseline.json", "testdata/degraded.json",
		perfobs.DefaultOptions(), path, &out, &errOut)
	if code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rep perfobs.Report
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Regressions == 0 || len(rep.Findings) == 0 {
		t.Fatalf("JSON report lost findings: %+v", rep)
	}
}

func TestBadArtifactExitsTwo(t *testing.T) {
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte(`{"schema":"other"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errOut strings.Builder
	if code := runDiff(bad, "testdata/baseline.json",
		perfobs.DefaultOptions(), "", &out, &errOut); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
	if code := runDiff("testdata/baseline.json", filepath.Join(t.TempDir(), "missing.json"),
		perfobs.DefaultOptions(), "", &out, &errOut); code != 2 {
		t.Fatal("missing file did not exit 2")
	}
}
