// Command hpcc runs the four HPC Challenge Class 2 kernels of §5 of
// "X10 and APGAS at Petascale" — Global HPL, Global FFT, Global
// RandomAccess, and EP Stream (Triad) — on the in-process APGAS runtime.
//
// Usage:
//
//	hpcc -kernel hpl -places 4 -n 512 -nb 32
//	hpcc -kernel fft -places 4 -log2n 16
//	hpcc -kernel ra -places 4 -log2table 14
//	hpcc -kernel stream -places 8 -words 1048576
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"apgas/internal/apps/fftbench"
	"apgas/internal/apps/hpl"
	"apgas/internal/apps/randomaccess"
	"apgas/internal/apps/stream"
	"apgas/internal/collectives"
	"apgas/internal/core"
	"apgas/internal/obs"
	"apgas/internal/telemetry"
	"apgas/internal/x10rt"
)

func main() {
	kernel := flag.String("kernel", "hpl", "hpl, fft, ra, stream, or all")
	places := flag.Int("places", 4, "number of places")
	n := flag.Int("n", 512, "HPL matrix order")
	nb := flag.Int("nb", 32, "HPL block size")
	gridP := flag.Int("p", 0, "HPL grid rows (0 = auto)")
	gridQ := flag.Int("q", 0, "HPL grid cols (0 = auto)")
	log2n := flag.Int("log2n", 16, "FFT size exponent")
	log2table := flag.Int("log2table", 14, "RandomAccess per-place table exponent")
	words := flag.Int("words", 1<<20, "Stream per-place vector length")
	iters := flag.Int("iters", 10, "Stream iterations")
	emulated := flag.Bool("emulated", false, "use emulated (point-to-point) collectives")
	flightDump := flag.String("flight-dump", "",
		"write the flight recorder (JSON Lines, validated by tracecheck) to this file at exit")
	debugAddr := flag.String("debug-addr", "",
		"serve /debug/pprof, /debug/vars, /debug/profilez, /telemetry, /metrics, and /wire on this address while running (e.g. :6060)")
	batch := flag.Bool("batch", false,
		"run over the batching wire path: per-link coalescing of small frames")
	batchDelay := flag.Duration("batch-delay", 200*time.Microsecond,
		"with -batch: bound on how long a queued frame may wait before its batch flushes")
	compressMin := flag.Int("compress-min", 0,
		"with -batch: compress batch payloads at least this many encoded bytes (0 = off)")
	flag.Parse()

	mode := collectives.ModeNative
	if *emulated {
		mode = collectives.ModeEmulated
	}
	// Always-on black box: the flight recorder records regardless, SIGQUIT
	// prints the finish/flight diagnostic, and a failed run dumps the ring
	// to stderr (or the -flight-dump file).
	o := obs.New()
	var flightFile *os.File
	flightOut := os.Stderr
	if *flightDump != "" {
		var err error
		flightFile, err = os.Create(*flightDump)
		if err != nil {
			fail(err)
		}
		defer flightFile.Close()
		flightOut = flightFile
	}
	rtCfg := core.Config{Places: *places, Obs: o, FlightDump: flightOut}
	if *batch {
		inner, err := x10rt.NewChanTransport(x10rt.ChanOptions{Places: *places})
		if err != nil {
			fail(err)
		}
		rtCfg.Transport = x10rt.NewBatchingTransport(inner, x10rt.BatchOptions{
			MaxDelay:    *batchDelay,
			CompressMin: *compressMin,
		})
		rtCfg.OwnTransport = true
	}
	rt, err := core.NewRuntime(rtCfg)
	if err != nil {
		fail(err)
	}
	defer rt.Close()
	stopSig := telemetry.DumpOnSignal(rt, os.Stderr)
	defer stopSig()
	if *debugAddr != "" {
		plane, err := telemetry.Attach(rt)
		if err != nil {
			fail(err)
		}
		telemetry.SetCurrent(plane)
		defer telemetry.SetCurrent(nil)
		ds, stopPlane, err := telemetry.StartDebugPlane(*debugAddr, o, *places)
		if err != nil {
			fail(err)
		}
		defer stopPlane()
		fmt.Fprintf(os.Stderr, "debug server on http://%s/debug/pprof/, /debug/vars, /debug/profilez, /telemetry, /metrics, and /wire\n", ds.Addr)
	}

	kernels := []string{*kernel}
	if *kernel == "all" {
		kernels = []string{"hpl", "fft", "ra", "stream"}
	}
	for _, k := range kernels {
		runKernel(rt, k, *places, *n, *nb, *gridP, *gridQ, *log2n, *log2table, *words, *iters, mode)
	}
	if flightFile != nil {
		if err := o.FlightRecorder().WriteDump(flightFile); err != nil {
			fail(err)
		}
	}
}

func runKernel(rt *core.Runtime, kernel string, places, n, nb, gridP, gridQ,
	log2n, log2table, words, iters int, mode collectives.Mode) {
	switch kernel {
	case "hpl":
		res, err := hpl.Run(rt, hpl.Config{N: n, NB: nb, P: gridP, Q: gridQ, Seed: 7, Mode: mode})
		if err != nil {
			fail(err)
		}
		status := "PASSED"
		if res.Residual > 16 {
			status = "FAILED"
		}
		fmt.Printf("Global HPL: N=%d NB=%d grid=%dx%d\n", res.N, res.NB, res.P, res.Q)
		fmt.Printf("time: %.3fs  %.3f Gflop/s (%.3f Gflop/s/core)\n",
			res.Seconds, res.Gflops, res.Gflops/float64(places))
		fmt.Printf("residual: %.3g (%s)\n", res.Residual, status)
		if res.Residual > 16 {
			os.Exit(1)
		}
	case "fft":
		res, err := fftbench.Run(rt, fftbench.Config{Log2N: log2n, Seed: 5, Mode: mode})
		if err != nil {
			fail(err)
		}
		fmt.Printf("Global FFT: N=2^%d\n", log2n)
		fmt.Printf("time: %.3fs  %.3f Gflop/s (%.3f Gflop/s/core)\n",
			res.Seconds, res.Gflops, res.Gflops/float64(places))
		fmt.Printf("max error vs sequential: %.3g\n", res.MaxErr)
	case "ra":
		res, err := randomaccess.Run(rt, randomaccess.Config{
			Log2TablePerPlace: log2table, Verify: true,
		})
		if err != nil {
			fail(err)
		}
		fmt.Printf("Global RandomAccess: table=%d words, %d updates\n", res.TableWords, res.Updates)
		fmt.Printf("time: %.3fs  %.6f GUP/s (%.6f GUP/s/place)\n",
			res.Seconds, res.GUPs, res.GUPs/float64(places))
		fmt.Printf("verification errors: %d\n", res.Errors)
		if res.Errors != 0 {
			os.Exit(1)
		}
	case "stream":
		res, err := stream.Run(rt, stream.Config{WordsPerPlace: words, Iterations: iters})
		if err != nil {
			fail(err)
		}
		fmt.Printf("EP Stream (Triad): %d words/place, %d iterations\n", words, iters)
		fmt.Printf("time: %.3fs  %.2f GB/s (%.2f GB/s/place)\n",
			res.Seconds, res.GBs, res.GBsPerPlace)
		fmt.Printf("verification errors: %d\n", res.VerifyErrors)
		if res.VerifyErrors != 0 {
			os.Exit(1)
		}
	default:
		fail(fmt.Errorf("unknown kernel %q", kernel))
	}
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "hpcc: %v\n", err)
	os.Exit(1)
}
