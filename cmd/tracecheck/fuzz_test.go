package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"apgas/internal/obs"
)

// TestFlightDumpOversizedLine pins the scanner-limit path: a line past
// the 1 MiB token buffer must come back as an error, not a panic. Kept
// out of the fuzz seed corpus because multi-megabyte inputs crater the
// fuzzer's throughput.
func TestFlightDumpOversizedLine(t *testing.T) {
	data := []byte(`{"type":"apgas-flight","version":1,"events":1,"recorded":1,"dropped":0}` +
		"\n" + strings.Repeat("a", 2<<20))
	if _, err := checkFlightDump(data); err == nil {
		t.Fatal("accepted a dump with a line past the scanner buffer")
	}
}

// FuzzCheckFlightDump drives the flight-recorder JSONL validator with
// arbitrary byte soup. The validator is the first thing pointed at
// dumps harvested from crashed or chaos-injected runs, so it must
// never panic on torn, truncated, or hostile input — it either
// returns a clean event count or an error naming the offending line.
//
// Checked properties:
//   - no panics (the fuzzer's implicit check);
//   - determinism: the same bytes always produce the same verdict;
//   - on acceptance, the event count equals the header's claim;
//   - acceptance implies the input really sniffs as a flight dump.
func FuzzCheckFlightDump(f *testing.F) {
	// A genuine dump from the recorder itself, post-wrap.
	rec := obs.NewFlightRecorder(8)
	name := rec.NameID("ev")
	cat := rec.NameID("fuzz")
	for i := 0; i < 20; i++ {
		rec.Record(name, cat, 'i', i, 0, 0)
	}
	var genuine bytes.Buffer
	if err := rec.WriteDump(&genuine); err != nil {
		f.Fatal(err)
	}
	f.Add(genuine.Bytes())

	head := `{"type":"apgas-flight","version":1,"events":2,"recorded":2,"dropped":0}`
	f.Add([]byte(head + "\n" +
		`{"seq":1,"ts":10,"dur":0,"ph":"i","pid":0,"tid":0,"name":"a","cat":"c"}` + "\n" +
		`{"seq":2,"ts":20,"dur":0,"ph":"i","pid":1,"tid":3,"name":"b","cat":"c"}` + "\n"))
	// Violations the validator must reject, not choke on.
	f.Add([]byte(head + "\n" +
		`{"seq":5,"ts":10,"ph":"i","name":"a"}` + "\n" +
		`{"seq":4,"ts":20,"ph":"i","name":"b"}` + "\n")) // seq out of order
	f.Add([]byte(head + "\n" +
		`{"seq":1,"ts":20,"ph":"i","name":"a"}` + "\n" +
		`{"seq":2,"ts":10,"ph":"i","name":"b"}` + "\n")) // ts backwards
	f.Add([]byte(head + "\n" +
		`{"seq":0,"ts":10,"ph":"i","name":"a"}` + "\n")) // unwritten slot
	f.Add([]byte(`{"type":"apgas-flight","version":1,"events":1,"recorded":0,"dropped":0}` + "\n")) // inconsistent header
	f.Add([]byte(`{"type":"apgas-flight","version":7}`))                                            // future version
	f.Add([]byte(`{"type":"apgas-flight"`))                                                         // torn header
	f.Add([]byte(""))                                                                               // empty
	f.Add([]byte("\x00\xff\xfe{not json"))                                                          // garbage

	f.Fuzz(func(t *testing.T, data []byte) {
		n1, err1 := checkFlightDump(data)
		n2, err2 := checkFlightDump(data)
		if n1 != n2 || (err1 == nil) != (err2 == nil) {
			t.Fatalf("nondeterministic verdict: (%d,%v) vs (%d,%v)", n1, err1, n2, err2)
		}
		if err1 != nil {
			return
		}
		// Accepted: the header's event claim must match what was counted,
		// and the input must really carry the flight header the format
		// sniffer keys on.
		if !isFlightDump(data) {
			t.Fatalf("accepted %d events from input that does not sniff as a flight dump", n1)
		}
		var head struct {
			Events int `json:"events"`
		}
		line := data
		if i := bytes.IndexByte(data, '\n'); i >= 0 {
			line = data[:i]
		}
		if json.Unmarshal(line, &head) == nil && head.Events != n1 {
			t.Fatalf("accepted dump: header events=%d but counted %d", head.Events, n1)
		}
	})
}
