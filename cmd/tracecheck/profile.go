package main

// -profile mode: validate and summarize a pprof protobuf profile by the
// APGAS activity labels (place, pattern, kind, app) the runtime stamps
// when profiling is enabled. Backs `make profile-smoke`: a labeled
// dense run must partition its samples across places and finish
// patterns, or the label propagation has regressed.

import (
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	"apgas/internal/perfobs"
)

// distinctFlag accumulates repeated -min-distinct key=N constraints.
type distinctFlag map[string]int

func (d distinctFlag) String() string {
	keys := make([]string, 0, len(d))
	for k := range d {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = fmt.Sprintf("%s=%d", k, d[k])
	}
	return strings.Join(parts, ",")
}

func (d distinctFlag) Set(s string) error {
	k, v, ok := strings.Cut(s, "=")
	if !ok || k == "" {
		return fmt.Errorf("want key=N, got %q", s)
	}
	n, err := strconv.Atoi(v)
	if err != nil || n < 0 {
		return fmt.Errorf("bad count in %q", s)
	}
	d[k] = n
	return nil
}

// checkProfileFile parses path as a pprof profile, prints the per-label
// cost table to stderr, enforces the check, and returns a one-line
// summary.
func checkProfileFile(path, keysCSV string, minSamples int64, minLabeled float64, minDistinct map[string]int) (string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return "", err
	}
	p, err := perfobs.ParseProfile(data)
	if err != nil {
		return "", fmt.Errorf("%s: %w", path, err)
	}
	var keys []string
	for _, k := range strings.Split(keysCSV, ",") {
		if k = strings.TrimSpace(k); k != "" {
			keys = append(keys, k)
		}
	}
	// Any -min-distinct key joins the partition even if not listed.
	for k := range minDistinct {
		found := false
		for _, have := range keys {
			if have == k {
				found = true
				break
			}
		}
		if !found {
			keys = append(keys, k)
		}
	}
	s := perfobs.SummarizeProfile(p, keys)
	s.WriteTable(os.Stderr)
	err = perfobs.CheckProfile(p, keys, perfobs.ProfileCheck{
		MinSamples:         minSamples,
		MinLabeledFraction: minLabeled,
		MinDistinct:        minDistinct,
	})
	if err != nil {
		return "", fmt.Errorf("%s: %w", path, err)
	}
	return fmt.Sprintf("tracecheck: %s: profile, %d samples, %.1f%% labeled by (%s) OK",
		path, s.TotalSamples, 100*s.LabeledFraction(), strings.Join(keys, ",")), nil
}
