package main

import (
	"fmt"
	"os"
	"strings"

	"apgas/internal/perfobs"
)

// checkBenchFile validates path as a performance-observatory artifact
// and returns a one-line summary.
func checkBenchFile(path string) (string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return "", err
	}
	exps, points, err := checkBench(data)
	if err != nil {
		return "", fmt.Errorf("%s: %w", path, err)
	}
	return fmt.Sprintf("tracecheck: %s: bench artifact, %d experiments, %d points OK",
		path, exps, points), nil
}

// maxBenchIssues caps how many schema violations one error reports.
const maxBenchIssues = 10

// checkBench validates artifact bytes and returns the experiment and
// point counts. The error lists every violation as "path: reason",
// capped at maxBenchIssues.
func checkBench(data []byte) (exps, points int, err error) {
	a, err := perfobs.Parse(data)
	if err != nil {
		return 0, 0, err
	}
	if issues := perfobs.Validate(a); len(issues) > 0 {
		var sb strings.Builder
		fmt.Fprintf(&sb, "%d schema violation(s):", len(issues))
		for i, is := range issues {
			if i == maxBenchIssues {
				fmt.Fprintf(&sb, "\n  ... %d more", len(issues)-maxBenchIssues)
				break
			}
			fmt.Fprintf(&sb, "\n  %s: %s", is.Path, is.Reason)
		}
		return 0, 0, fmt.Errorf("%s", sb.String())
	}
	for _, e := range a.Experiments {
		points += len(e.Points)
	}
	return len(a.Experiments), points, nil
}
