package main

import (
	"encoding/json"
	"strings"
	"testing"

	"apgas/internal/perfobs"
)

// validBenchJSON builds a well-formed artifact as bytes.
func validBenchJSON(t testing.TB) []byte {
	a := perfobs.NewArtifact("tiny", 2)
	a.Experiments = []perfobs.Experiment{{
		Name:          "UTS",
		AggregateUnit: "Mnodes/s",
		PerUnitUnit:   "Mnodes/s/place",
		Points: []perfobs.Point{
			{Places: 1, Aggregate: 10, PerUnit: 10},
			{Places: 2, Aggregate: 18, PerUnit: 9},
		},
		Efficiency: 0.9,
		CriticalPath: &perfobs.CritPathReport{
			Root: "finish.dense", WallNs: 1000, Coverage: 1, Spans: 2,
			Buckets: map[string]int64{"user-compute": 800, "finish-control": 200},
		},
	}}
	data, err := json.Marshal(a)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func TestCheckBenchValid(t *testing.T) {
	exps, points, err := checkBench(validBenchJSON(t))
	if err != nil {
		t.Fatal(err)
	}
	if exps != 1 || points != 2 {
		t.Fatalf("exps=%d points=%d, want 1/2", exps, points)
	}
}

// TestCheckBenchNamesPathAndReason pins the error format: every
// violation is reported as "path: reason".
func TestCheckBenchNamesPathAndReason(t *testing.T) {
	data := strings.Replace(string(validBenchJSON(t)),
		`"places":2`, `"places":1`, 1) // duplicate place count
	_, _, err := checkBench([]byte(data))
	if err == nil {
		t.Fatal("non-monotone places accepted")
	}
	if !strings.Contains(err.Error(), "experiments[0].points[1].places") ||
		!strings.Contains(err.Error(), "strictly increasing") {
		t.Fatalf("error lacks path+reason: %v", err)
	}
}

func TestCheckBenchGarbage(t *testing.T) {
	if _, _, err := checkBench([]byte("{torn")); err == nil {
		t.Fatal("garbage accepted")
	}
}

// FuzzCheckBench drives the artifact validator with arbitrary bytes.
// The validator gates CI comparisons (make bench-smoke), so it must
// never panic on hostile or truncated artifacts — it either accepts a
// schema-clean artifact or returns an error naming path and reason.
//
// Checked properties:
//   - no panics (the fuzzer's implicit check);
//   - determinism: same bytes, same verdict;
//   - acceptance implies the bytes re-parse and re-validate clean.
func FuzzCheckBench(f *testing.F) {
	valid := validBenchJSON(f)
	f.Add(valid)
	// Violations the validator must reject, not choke on.
	f.Add([]byte(strings.Replace(string(valid), `"apgas-bench"`, `"other"`, 1)))
	f.Add([]byte(strings.Replace(string(valid), `"version":1`, `"version":99`, 1)))
	f.Add([]byte(strings.Replace(string(valid), `"places":2`, `"places":1`, 1)))
	f.Add([]byte(strings.Replace(string(valid), `"aggregate":18`, `"aggregate":-18`, 1)))
	f.Add([]byte(`{"schema":"apgas-bench","version":1}`)) // no env, no experiments
	f.Add([]byte(`{}`))
	f.Add([]byte(``))
	f.Add([]byte(`[1,2,3]`))
	f.Add([]byte("\x00\xff{not json"))

	f.Fuzz(func(t *testing.T, data []byte) {
		e1, p1, err1 := checkBench(data)
		e2, p2, err2 := checkBench(data)
		if e1 != e2 || p1 != p2 || (err1 == nil) != (err2 == nil) {
			t.Fatalf("nondeterministic verdict: (%d,%d,%v) vs (%d,%d,%v)", e1, p1, err1, e2, p2, err2)
		}
		if err1 != nil {
			return
		}
		// Accepted: must survive a parse/validate round trip.
		a, err := perfobs.Parse(data)
		if err != nil {
			t.Fatalf("accepted bytes that do not re-parse: %v", err)
		}
		if issues := perfobs.Validate(a); len(issues) > 0 {
			t.Fatalf("accepted artifact re-validates dirty: %v", issues)
		}
		if e1 != len(a.Experiments) {
			t.Fatalf("experiment count %d, artifact has %d", e1, len(a.Experiments))
		}
	})
}
