package main

import (
	"encoding/json"
	"strings"
	"testing"
)

// validWireJSON is a well-formed two-place wire dump: two handler
// accounts, two links (one batched and compressed), totals consistent
// with the rows and with the transport counters.
func validWireJSON() []byte {
	return []byte(`{"type":"apgas-wire","version":1,"places":2,"elapsed_sec":1.5,` +
		`"handlers":[` +
		`{"id":1,"name":"finishctl","msgs":10,"bytes":320,"enc_ns":5000,"recv":10,"dec_ns":4000},` +
		`{"id":64,"name":"u0","msgs":40,"bytes":2560,"enc_ns":20000,"recv":40,"dec_ns":18000}],` +
		`"links":[` +
		`{"src":0,"dst":1,"msgs":30,"bytes":1920,"wire":1400,"raw":2000,"comp":1300,"qwait_ns":90000,"batches":3},` +
		`{"src":1,"dst":0,"msgs":20,"bytes":960,"wire":1100,"raw":1100,"comp":1100,"qwait_ns":30000,"batches":2}],` +
		`"totals":{"msgs":50,"payload_bytes":2880,"wire_bytes":2500,"bytes_sent":2880,"bytes_wire":2500}}`)
}

func TestCheckWireValid(t *testing.T) {
	h, l, err := checkWire(validWireJSON())
	if err != nil {
		t.Fatal(err)
	}
	if h != 2 || l != 2 {
		t.Fatalf("handlers=%d links=%d, want 2/2", h, l)
	}
}

// TestCheckWireViolations pins that each invariant is individually
// enforced with a path+reason error.
func TestCheckWireViolations(t *testing.T) {
	cases := []struct {
		name, old, new, wantErr string
	}{
		{"wrong-type", `"apgas-wire"`, `"other"`, "apgas-wire"},
		{"future-version", `"version":1`, `"version":9`, "version"},
		{"zero-places", `"places":2`, `"places":0`, "places"},
		{"unsorted-handlers", `"id":64`, `"id":1`, "sorted"},
		{"comp-above-raw", `"comp":1300`, `"comp":2300`, "compressed"},
		{"link-out-of-range", `"src":1,"dst":0`, `"src":2,"dst":0`, "outside"},
		{"msgs-mismatch", `"totals":{"msgs":50`, `"totals":{"msgs":51`, "handler rows sum"},
		{"payload-vs-transport", `"bytes_sent":2880`, `"bytes_sent":2881`, "attribution leak"},
		{"wire-vs-transport", `"bytes_wire":2500`, `"bytes_wire":2400`, "attribution leak"},
		{"qwait-without-batches", `"qwait_ns":30000,"batches":2`, `"qwait_ns":30000,"batches":0`, "queue wait"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			data := strings.Replace(string(validWireJSON()), tc.old, tc.new, 1)
			if data == string(validWireJSON()) {
				t.Fatalf("replacement %q did not apply", tc.old)
			}
			_, _, err := checkWire([]byte(data))
			if err == nil {
				t.Fatal("violation accepted")
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %v lacks %q", err, tc.wantErr)
			}
		})
	}
}

// FuzzCheckWireDump drives the wire dump validator with arbitrary
// bytes. It gates `make wire`, so it must never panic on hostile or
// truncated dumps — it either accepts a consistent dump or returns an
// error naming path and reason.
//
// Checked properties:
//   - no panics (the fuzzer's implicit check);
//   - determinism: same bytes, same verdict;
//   - acceptance implies internal sum-equality: re-deriving the row
//     sums from the accepted bytes matches the totals the dump claims.
func FuzzCheckWireDump(f *testing.F) {
	valid := validWireJSON()
	f.Add(valid)
	// Violations the validator must reject, not choke on.
	f.Add([]byte(strings.Replace(string(valid), `"apgas-wire"`, `"other"`, 1)))
	f.Add([]byte(strings.Replace(string(valid), `"version":1`, `"version":9`, 1)))
	f.Add([]byte(strings.Replace(string(valid), `"bytes_sent":2880`, `"bytes_sent":1`, 1)))
	f.Add([]byte(strings.Replace(string(valid), `"comp":1300`, `"comp":9999`, 1)))
	f.Add([]byte(`{"type":"apgas-wire","version":1,"places":1,` +
		`"handlers":[],"links":[],` +
		`"totals":{"msgs":0,"payload_bytes":0,"wire_bytes":0,"bytes_sent":0,"bytes_wire":0}}`))
	f.Add([]byte(`{}`))
	f.Add([]byte(``))
	f.Add([]byte(`[1,2,3]`))
	f.Add([]byte("\x00\xff{not json"))

	f.Fuzz(func(t *testing.T, data []byte) {
		h1, l1, err1 := checkWire(data)
		h2, l2, err2 := checkWire(data)
		if h1 != h2 || l1 != l2 || (err1 == nil) != (err2 == nil) {
			t.Fatalf("nondeterministic verdict: (%d,%d,%v) vs (%d,%d,%v)", h1, l1, err1, h2, l2, err2)
		}
		if err1 != nil {
			return
		}
		// Accepted: the parsed rows must re-sum to the claimed totals.
		var d wireDump
		if err := json.Unmarshal(data, &d); err != nil {
			t.Fatalf("accepted bytes that do not re-parse: %v", err)
		}
		var msgs, bytes, wire uint64
		for _, h := range d.Handlers {
			msgs += h.Msgs
			bytes += h.Bytes
		}
		for _, l := range d.Links {
			wire += l.Wire
		}
		if msgs != d.Totals.Msgs || bytes != d.Totals.PayloadBytes || wire != d.Totals.WireBytes {
			t.Fatalf("accepted dump re-sums dirty: msgs=%d/%d bytes=%d/%d wire=%d/%d",
				msgs, d.Totals.Msgs, bytes, d.Totals.PayloadBytes, wire, d.Totals.WireBytes)
		}
		if h1 != len(d.Handlers) || l1 != len(d.Links) {
			t.Fatalf("row counts (%d,%d) disagree with parse (%d,%d)", h1, l1, len(d.Handlers), len(d.Links))
		}
	})
}
