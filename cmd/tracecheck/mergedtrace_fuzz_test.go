package main

import (
	"bytes"
	"testing"

	"apgas/internal/obs"
)

// genuineMergedTrace produces a real merged distributed trace: two
// places exchanging flows through the tracer, split per place, merged,
// and rendered to Chrome JSON — the exact artifact `make dtrace`
// checks.
func genuineMergedTrace(f *testing.F) []byte {
	tr := obs.NewTracer()
	tr.EnableDist(7)
	for i := 0; i < 4; i++ {
		parent := tr.NextID()
		t0 := tr.Now()
		ctx := tr.SendCtx("flow.spawn", "core", 0, parent, obs.Arg{Key: "dst", Val: 1})
		tid := tr.NextID()
		tr.RecvCtx(ctx, "flow.spawn", "core", 1, tid, obs.Arg{Key: "src", Val: 0})
		tr.CompleteEdge("async", "core", 1, tid, t0, parent, obs.EdgeChild)
		back := tr.SendCtx("flow.ctl", "finish", 1, tid, obs.Arg{Key: "dst", Val: 0})
		tr.RecvCtx(back, "flow.ctl", "finish", 0, 0, obs.Arg{Key: "src", Val: 1})
	}
	merged := obs.MergeTraces([][]obs.Event{tr.PlaceEvents(0), tr.PlaceEvents(1)})
	var buf bytes.Buffer
	if err := merged.WriteChrome(&buf); err != nil {
		f.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzCheckMergedTrace drives the Chrome-trace validator — flow
// pairing, arrow direction, per-track monotonicity — with arbitrary
// byte soup. The validator fronts `make dtrace` and chaos sweeps, so
// it must never panic: it either returns a clean count or an error
// naming the offending event.
//
// Checked properties:
//   - no panics (the fuzzer's implicit check);
//   - determinism: the same bytes always produce the same verdict.
func FuzzCheckMergedTrace(f *testing.F) {
	f.Add(genuineMergedTrace(f))
	// A minimal well-formed merged trace: one flow, matched and ordered.
	f.Add([]byte(`{"traceEvents":[
		{"name":"process_name","ph":"M","pid":0,"args":{"name":"place 0"}},
		{"name":"flow.spawn","cat":"core","ph":"s","ts":1,"pid":0,"tid":3,"id":9},
		{"name":"flow.spawn","cat":"core","ph":"f","ts":2,"pid":1,"tid":4,"id":9,"bp":"e"},
		{"name":"async","cat":"core","ph":"X","ts":2,"dur":5,"pid":1,"tid":4}]}`))
	// A duplicate delivery: two flow-ends sharing one id (legal).
	f.Add([]byte(`{"traceEvents":[
		{"name":"a","ph":"s","ts":1,"pid":0,"tid":1,"id":5},
		{"name":"a","ph":"f","ts":2,"pid":1,"tid":2,"id":5,"bp":"e"},
		{"name":"a","ph":"f","ts":3,"pid":2,"tid":3,"id":5,"bp":"e"}]}`))
	// Violations the validator must reject, not choke on.
	f.Add([]byte(`{"traceEvents":[
		{"name":"a","ph":"s","ts":5,"pid":0,"tid":1,"id":5},
		{"name":"a","ph":"f","ts":2,"pid":1,"tid":2,"id":5,"bp":"e"}]}`)) // arrow backwards
	f.Add([]byte(`{"traceEvents":[
		{"name":"a","ph":"s","ts":1,"pid":0,"tid":1,"id":5}]}`)) // unmatched begin
	f.Add([]byte(`{"traceEvents":[
		{"name":"a","ph":"f","ts":1,"pid":0,"tid":1,"id":5,"bp":"e"}]}`)) // unmatched end
	f.Add([]byte(`{"traceEvents":[
		{"name":"x","ph":"i","ts":9,"pid":0,"tid":1},
		{"name":"y","ph":"i","ts":3,"pid":0,"tid":1}]}`)) // track not monotone
	f.Add([]byte(`{"traceEvents":[
		{"name":"a","ph":"s","ts":1,"pid":0,"tid":1,"id":5},
		{"name":"b","ph":"s","ts":2,"pid":0,"tid":1,"id":5},
		{"name":"a","ph":"f","ts":3,"pid":1,"tid":2,"id":5,"bp":"e"}]}`)) // duplicate begin
	f.Add([]byte(`{"traceEvents":[]}`))
	f.Add([]byte(`{`))

	f.Fuzz(func(t *testing.T, data []byte) {
		n1, err1 := checkChromeTrace(data)
		n2, err2 := checkChromeTrace(data)
		if n1 != n2 || (err1 == nil) != (err2 == nil) {
			t.Fatalf("nondeterministic verdict: (%d,%v) vs (%d,%v)", n1, err1, n2, err2)
		}
		if err1 == nil && n1 == 0 {
			t.Fatal("accepted a trace with zero events")
		}
	})
}

// TestMergedTraceChecks pins the validator's verdicts on the seed
// inputs: the genuine and well-formed traces pass, each violation is
// rejected.
func TestMergedTraceChecks(t *testing.T) {
	good := [][]byte{
		[]byte(`{"traceEvents":[
			{"name":"flow.spawn","cat":"core","ph":"s","ts":1,"pid":0,"tid":3,"id":9},
			{"name":"flow.spawn","cat":"core","ph":"f","ts":2,"pid":1,"tid":4,"id":9,"bp":"e"}]}`),
		[]byte(`{"traceEvents":[
			{"name":"a","ph":"s","ts":1,"pid":0,"tid":1,"id":5},
			{"name":"a","ph":"f","ts":2,"pid":1,"tid":2,"id":5,"bp":"e"},
			{"name":"a","ph":"f","ts":3,"pid":2,"tid":3,"id":5,"bp":"e"}]}`),
	}
	for i, data := range good {
		if _, err := checkChromeTrace(data); err != nil {
			t.Errorf("good trace %d rejected: %v", i, err)
		}
	}
	bad := map[string][]byte{
		"backwards arrow": []byte(`{"traceEvents":[
			{"name":"a","ph":"s","ts":5,"pid":0,"tid":1,"id":5},
			{"name":"a","ph":"f","ts":2,"pid":1,"tid":2,"id":5,"bp":"e"}]}`),
		"unmatched begin": []byte(`{"traceEvents":[{"name":"a","ph":"s","ts":1,"id":5}]}`),
		"unmatched end":   []byte(`{"traceEvents":[{"name":"a","ph":"f","ts":1,"id":5,"bp":"e"}]}`),
		"name mismatch": []byte(`{"traceEvents":[
			{"name":"a","ph":"s","ts":1,"pid":0,"tid":1,"id":5},
			{"name":"b","ph":"f","ts":2,"pid":1,"tid":2,"id":5,"bp":"e"}]}`),
		"missing bp": []byte(`{"traceEvents":[
			{"name":"a","ph":"s","ts":1,"pid":0,"tid":1,"id":5},
			{"name":"a","ph":"f","ts":2,"pid":1,"tid":2,"id":5}]}`),
		"track backwards": []byte(`{"traceEvents":[
			{"name":"x","ph":"i","ts":9,"pid":0,"tid":1},
			{"name":"y","ph":"i","ts":3,"pid":0,"tid":1}]}`),
	}
	for name, data := range bad {
		if _, err := checkChromeTrace(data); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}
