package main

import (
	"encoding/json"
	"fmt"
	"os"
)

// This file validates wire observatory dumps ({"type":"apgas-wire",
// "version":1,...}), written by apgas-bench -wire-dump and served by
// the /wire debug endpoint. The checks mirror the invariants the
// ledger guarantees by construction, so a dump that fails here was
// corrupted, truncated, or produced by an attribution bug:
//
//   - header type/version, places >= 1, elapsed_sec >= 0;
//   - handler rows sorted by unique non-negative id, named, with
//     timing only where there is traffic (enc_ns needs msgs, dec_ns
//     needs recv);
//   - link rows sorted by unique (src, dst) within [0, places), with
//     compressed batch bodies never above raw and queue wait only
//     where batches flushed;
//   - sum-equality: totals.msgs, payload bytes, and wire bytes each
//     equal the corresponding row sums, and the ledger sums equal the
//     transport counters carried in totals (bytes_sent, bytes_wire).

// wireHandlerRow mirrors one handler row of a wire dump.
type wireHandlerRow struct {
	ID    int    `json:"id"`
	Name  string `json:"name"`
	Msgs  uint64 `json:"msgs"`
	Bytes uint64 `json:"bytes"`
	EncNs uint64 `json:"enc_ns"`
	Recv  uint64 `json:"recv"`
	DecNs uint64 `json:"dec_ns"`
}

// wireLinkRow mirrors one link row of a wire dump.
type wireLinkRow struct {
	Src     int    `json:"src"`
	Dst     int    `json:"dst"`
	Msgs    uint64 `json:"msgs"`
	Bytes   uint64 `json:"bytes"`
	Wire    uint64 `json:"wire"`
	Raw     uint64 `json:"raw"`
	Comp    uint64 `json:"comp"`
	QwaitNs uint64 `json:"qwait_ns"`
	Batches uint64 `json:"batches"`
}

// wireDump mirrors the full dump shape.
type wireDump struct {
	Type       string           `json:"type"`
	Version    int              `json:"version"`
	Places     int              `json:"places"`
	ElapsedSec float64          `json:"elapsed_sec"`
	Handlers   []wireHandlerRow `json:"handlers"`
	Links      []wireLinkRow    `json:"links"`
	Totals     struct {
		Msgs         uint64 `json:"msgs"`
		PayloadBytes uint64 `json:"payload_bytes"`
		WireBytes    uint64 `json:"wire_bytes"`
		BytesSent    uint64 `json:"bytes_sent"`
		BytesWire    uint64 `json:"bytes_wire"`
	} `json:"totals"`
}

// checkWireFile validates path as a wire observatory dump and returns a
// one-line summary.
func checkWireFile(path string) (string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return "", err
	}
	h, l, err := checkWire(data)
	if err != nil {
		return "", fmt.Errorf("%s: %w", path, err)
	}
	return fmt.Sprintf("tracecheck: %s: wire dump, %d handlers, %d links, sums OK", path, h, l), nil
}

// checkWire validates dump bytes and returns the handler and link row
// counts. Errors name the offending JSON path and the reason.
func checkWire(data []byte) (handlers, links int, err error) {
	var d wireDump
	if err := json.Unmarshal(data, &d); err != nil {
		return 0, 0, fmt.Errorf("invalid JSON: %v", err)
	}
	if d.Type != "apgas-wire" {
		return 0, 0, fmt.Errorf("type: %q, want \"apgas-wire\"", d.Type)
	}
	if d.Version != 1 {
		return 0, 0, fmt.Errorf("version: unsupported wire dump version %d", d.Version)
	}
	if d.Places < 1 {
		return 0, 0, fmt.Errorf("places: %d, want >= 1", d.Places)
	}
	if d.ElapsedSec < 0 {
		return 0, 0, fmt.Errorf("elapsed_sec: negative (%v)", d.ElapsedSec)
	}

	var hMsgs, hBytes uint64
	for i, h := range d.Handlers {
		p := fmt.Sprintf("handlers[%d]", i)
		if h.ID < 0 {
			return 0, 0, fmt.Errorf("%s.id: negative (%d)", p, h.ID)
		}
		if i > 0 && h.ID <= d.Handlers[i-1].ID {
			return 0, 0, fmt.Errorf("%s.id: %d not above previous %d (rows must be sorted, unique)",
				p, h.ID, d.Handlers[i-1].ID)
		}
		if h.Name == "" {
			return 0, 0, fmt.Errorf("%s.name: empty", p)
		}
		if h.Msgs == 0 && h.Recv == 0 {
			return 0, 0, fmt.Errorf("%s: account with no traffic (msgs=0, recv=0)", p)
		}
		if h.EncNs > 0 && h.Msgs == 0 {
			return 0, 0, fmt.Errorf("%s: enc_ns=%d with msgs=0 (encode time without sends)", p, h.EncNs)
		}
		if h.DecNs > 0 && h.Recv == 0 {
			return 0, 0, fmt.Errorf("%s: dec_ns=%d with recv=0 (decode time without receives)", p, h.DecNs)
		}
		hMsgs += h.Msgs
		hBytes += h.Bytes
	}

	var lMsgs, lBytes, lWire uint64
	for i, l := range d.Links {
		p := fmt.Sprintf("links[%d]", i)
		if l.Src < 0 || l.Src >= d.Places || l.Dst < 0 || l.Dst >= d.Places {
			return 0, 0, fmt.Errorf("%s: endpoint %d->%d outside [0,%d)", p, l.Src, l.Dst, d.Places)
		}
		if i > 0 {
			prev := d.Links[i-1]
			if l.Src < prev.Src || (l.Src == prev.Src && l.Dst <= prev.Dst) {
				return 0, 0, fmt.Errorf("%s: link %d->%d not above previous %d->%d (rows must be sorted, unique)",
					p, l.Src, l.Dst, prev.Src, prev.Dst)
			}
		}
		if l.Msgs == 0 && l.Wire == 0 {
			return 0, 0, fmt.Errorf("%s: account with no traffic (msgs=0, wire=0)", p)
		}
		if l.Comp > l.Raw {
			return 0, 0, fmt.Errorf("%s: compressed batch bytes %d above raw %d", p, l.Comp, l.Raw)
		}
		if l.QwaitNs > 0 && l.Batches == 0 {
			return 0, 0, fmt.Errorf("%s: qwait_ns=%d with batches=0 (queue wait without flushes)", p, l.QwaitNs)
		}
		lMsgs += l.Msgs
		lBytes += l.Bytes
		lWire += l.Wire
	}

	// Sum-equality: handler rows, link rows, and totals must all tell
	// one story; and the ledger must agree with the transport counters.
	if hMsgs != d.Totals.Msgs {
		return 0, 0, fmt.Errorf("totals.msgs: %d, but handler rows sum to %d", d.Totals.Msgs, hMsgs)
	}
	if lMsgs != d.Totals.Msgs {
		return 0, 0, fmt.Errorf("totals.msgs: %d, but link rows sum to %d", d.Totals.Msgs, lMsgs)
	}
	if hBytes != d.Totals.PayloadBytes {
		return 0, 0, fmt.Errorf("totals.payload_bytes: %d, but handler rows sum to %d", d.Totals.PayloadBytes, hBytes)
	}
	if lBytes != d.Totals.PayloadBytes {
		return 0, 0, fmt.Errorf("totals.payload_bytes: %d, but link rows sum to %d", d.Totals.PayloadBytes, lBytes)
	}
	if lWire != d.Totals.WireBytes {
		return 0, 0, fmt.Errorf("totals.wire_bytes: %d, but link rows sum to %d", d.Totals.WireBytes, lWire)
	}
	if d.Totals.PayloadBytes != d.Totals.BytesSent {
		return 0, 0, fmt.Errorf("totals: ledger payload bytes %d != transport bytes_sent %d (attribution leak)",
			d.Totals.PayloadBytes, d.Totals.BytesSent)
	}
	if d.Totals.WireBytes != d.Totals.BytesWire {
		return 0, 0, fmt.Errorf("totals: ledger wire bytes %d != transport bytes_wire %d (attribution leak)",
			d.Totals.WireBytes, d.Totals.BytesWire)
	}
	return len(d.Handlers), len(d.Links), nil
}
