package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"apgas/internal/obs"
)

func writeTemp(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestChromeTraceOK(t *testing.T) {
	path := writeTemp(t, "trace.json",
		`{"traceEvents":[{"name":"a","ph":"X","ts":1},{"name":"b","ph":"i","ts":2}]}`)
	summary, err := checkFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(summary, "2 events OK") {
		t.Errorf("summary = %q", summary)
	}
}

func TestChromeTraceBad(t *testing.T) {
	for name, content := range map[string]string{
		"empty.json":   `{"traceEvents":[]}`,
		"noname.json":  `{"traceEvents":[{"ph":"X","ts":1}]}`,
		"invalid.json": `{`,
	} {
		if _, err := checkFile(writeTemp(t, name, content)); err == nil {
			t.Errorf("%s: accepted invalid trace", name)
		}
	}
}

// TestFlightDumpRoundTrip checks a real recorder dump validates clean,
// including after the ring has wrapped.
func TestFlightDumpRoundTrip(t *testing.T) {
	f := obs.NewFlightRecorder(64)
	name := f.NameID("ev")
	cat := f.NameID("test")
	for i := 0; i < 200; i++ {
		f.Record(name, cat, 'i', i%4, 0, 0)
	}
	var buf bytes.Buffer
	if err := f.WriteDump(&buf); err != nil {
		t.Fatal(err)
	}
	path := writeTemp(t, "flight.jsonl", buf.String())
	summary, err := checkFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(summary, "flight dump") || !strings.Contains(summary, "64 events OK") {
		t.Errorf("summary = %q", summary)
	}
}

func TestFlightDumpViolations(t *testing.T) {
	head := `{"type":"apgas-flight","version":1,"events":2,"recorded":2,"dropped":0}`
	ev := func(seq, ts int) string {
		return `{"seq":` + strconv.Itoa(seq) + `,"ts":` + strconv.Itoa(ts) +
			`,"dur":0,"ph":"i","pid":0,"tid":0,"name":"e","cat":"c"}`
	}
	cases := map[string]struct {
		content string
		reason  string
	}{
		"seq-order": {
			content: head + "\n" + ev(5, 10) + "\n" + ev(4, 20) + "\n",
			reason:  "ring order",
		},
		"ts-backwards": {
			content: head + "\n" + ev(1, 20) + "\n" + ev(2, 10) + "\n",
			reason:  "not monotonic",
		},
		"count-mismatch": {
			content: head + "\n" + ev(1, 10) + "\n",
			reason:  "header says 2 events, body has 1",
		},
		"bad-header": {
			content: `{"type":"apgas-flight","version":1,"events":1,"recorded":0,"dropped":0}` + "\n" + ev(1, 10) + "\n",
			reason:  "inconsistent header",
		},
		"zero-seq": {
			content: head + "\n" + ev(0, 10) + "\n" + ev(1, 20) + "\n",
			reason:  "seq 0",
		},
	}
	for name, c := range cases {
		_, err := checkFile(writeTemp(t, name+".jsonl", c.content))
		if err == nil {
			t.Errorf("%s: accepted invalid dump", name)
			continue
		}
		if !strings.Contains(err.Error(), c.reason) {
			t.Errorf("%s: error %q does not name reason %q", name, err, c.reason)
		}
		if !strings.Contains(err.Error(), "line") && name != "count-mismatch" {
			t.Errorf("%s: error %q does not name the line", name, err)
		}
	}
}
