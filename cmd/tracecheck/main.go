// Command tracecheck validates the diagnostic file formats the runtime
// emits:
//
//   - Chrome trace_event JSON, written by the -trace flag of apgas-bench
//     and uts (loadable in chrome://tracing or Perfetto);
//   - flight recorder dumps (JSON Lines headed by
//     {"type":"apgas-flight",...}), written by -flight-dump, the stall
//     watchdog, and failed runs;
//   - with -bench, performance-observatory artifacts (BENCH_*.json)
//     written by apgas-bench -bench-json, checked against the schema:
//     version, environment fingerprint, strictly increasing place
//     counts, non-negative metrics, sane critical-path buckets;
//   - with -wire, wire observatory dumps ({"type":"apgas-wire",...})
//     written by apgas-bench -wire-dump or fetched from the /wire debug
//     endpoint, checked for row ordering, compression sanity, and the
//     sum-equality between the ledger and the transport counters.
//
// Trace vs flight dump is auto-detected; bench artifacts are selected
// explicitly with -bench. Errors name the offending location (line for
// JSONL, JSON path for artifacts) and the reason; the exit code is
// nonzero. It backs the `make trace`, `make telemetry`, and
// `make bench-smoke` sanity targets.
//
// Usage:
//
//	tracecheck /tmp/apgas-uts-trace.json
//	tracecheck /tmp/apgas-flight.jsonl
//	tracecheck -bench BENCH_tiny.json
//	tracecheck -wire /tmp/apgas-wire.json
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
)

func main() {
	benchMode := flag.Bool("bench", false,
		"validate an apgas-bench performance artifact (BENCH_*.json) instead of a trace")
	wireMode := flag.Bool("wire", false,
		"validate a wire observatory dump (apgas-bench -wire-dump or the /wire endpoint)")
	profileMode := flag.Bool("profile", false,
		"validate and summarize a pprof profile by its APGAS activity labels")
	profileKeys := flag.String("profile-keys", "place,pattern,kind",
		"with -profile: comma-separated label keys to partition by")
	minSamples := flag.Int64("min-samples", 0,
		"with -profile: fail unless the profile holds at least this many samples")
	minLabeled := flag.Float64("min-labeled", 0,
		"with -profile: fail unless at least this fraction (0..1) of the profile value is labeled")
	minDistinct := distinctFlag{}
	flag.Var(minDistinct, "min-distinct",
		"with -profile: key=N, fail unless label key has at least N distinct values (repeatable)")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: tracecheck [-bench | -wire | -profile] <trace.json | flight.jsonl | BENCH_*.json | wire.json | profile.pb.gz>")
		os.Exit(2)
	}
	path := flag.Arg(0)
	var (
		summary string
		err     error
	)
	switch {
	case *benchMode:
		summary, err = checkBenchFile(path)
	case *wireMode:
		summary, err = checkWireFile(path)
	case *profileMode:
		summary, err = checkProfileFile(path, *profileKeys, *minSamples, *minLabeled, minDistinct)
	default:
		summary, err = checkFile(path)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "tracecheck: %v\n", err)
		os.Exit(1)
	}
	fmt.Println(summary)
}

// checkFile validates path as whichever diagnostic format it holds and
// returns a one-line summary.
func checkFile(path string) (string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return "", err
	}
	if isFlightDump(data) {
		n, err := checkFlightDump(data)
		if err != nil {
			return "", fmt.Errorf("%s: %w", path, err)
		}
		return fmt.Sprintf("tracecheck: %s: flight dump, %d events OK", path, n), nil
	}
	n, err := checkChromeTrace(data)
	if err != nil {
		return "", fmt.Errorf("%s: %w", path, err)
	}
	return fmt.Sprintf("tracecheck: %s: %d events OK", path, n), nil
}

// isFlightDump sniffs the first line for the flight dump header.
func isFlightDump(data []byte) bool {
	line := data
	if i := bytes.IndexByte(data, '\n'); i >= 0 {
		line = data[:i]
	}
	var head struct {
		Type string `json:"type"`
	}
	return json.Unmarshal(line, &head) == nil && head.Type == "apgas-flight"
}

// checkFlightDump validates a flight recorder JSON Lines dump and returns
// the number of events. Errors name the 1-based line and the reason.
func checkFlightDump(data []byte) (int, error) {
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	if !sc.Scan() {
		return 0, fmt.Errorf("line 1: empty flight dump")
	}
	var head struct {
		Type     string `json:"type"`
		Version  int    `json:"version"`
		Events   int    `json:"events"`
		Recorded uint64 `json:"recorded"`
		Dropped  uint64 `json:"dropped"`
	}
	if err := json.Unmarshal(sc.Bytes(), &head); err != nil {
		return 0, fmt.Errorf("line 1: bad header: %v", err)
	}
	if head.Type != "apgas-flight" {
		return 0, fmt.Errorf("line 1: header type %q, want \"apgas-flight\"", head.Type)
	}
	if head.Version != 1 {
		return 0, fmt.Errorf("line 1: unsupported flight dump version %d", head.Version)
	}
	if head.Recorded < uint64(head.Events) || head.Dropped != head.Recorded-uint64(head.Events) {
		return 0, fmt.Errorf("line 1: inconsistent header: events=%d recorded=%d dropped=%d",
			head.Events, head.Recorded, head.Dropped)
	}
	var (
		n      int
		lastSq uint64
		lastTS int64
		kills  int
	)
	for line := 2; sc.Scan(); line++ {
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		var ev struct {
			Seq  uint64           `json:"seq"`
			TS   int64            `json:"ts"`
			Dur  int64            `json:"dur"`
			Ph   string           `json:"ph"`
			Pid  int64            `json:"pid"`
			Name string           `json:"name"`
			Cat  string           `json:"cat"`
			Args map[string]int64 `json:"args"`
		}
		if err := json.Unmarshal([]byte(text), &ev); err != nil {
			return 0, fmt.Errorf("line %d: bad event JSON: %v", line, err)
		}
		if ev.Seq == 0 {
			return 0, fmt.Errorf("line %d: event seq 0 (unwritten slot leaked into dump)", line)
		}
		if n > 0 && ev.Seq <= lastSq {
			return 0, fmt.Errorf("line %d: seq %d not above previous %d (ring order violated)",
				line, ev.Seq, lastSq)
		}
		if ev.TS < 0 {
			return 0, fmt.Errorf("line %d: negative timestamp %d", line, ev.TS)
		}
		if n > 0 && ev.TS < lastTS {
			return 0, fmt.Errorf("line %d: timestamp %d before previous %d (not monotonic)",
				line, ev.TS, lastTS)
		}
		if ev.Ph == "" || ev.Name == "" {
			return 0, fmt.Errorf("line %d: event lacks ph/name", line)
		}
		// Chaos fault-decision records carry replay-critical structure on
		// top of the generic flight shape; a dump that misnames a fault or
		// drops the victim would replay as a different run, so reject it
		// here rather than at replay time.
		if ev.Cat == "chaos" {
			if err := checkChaosEvent(ev.Name, ev.Ph, ev.Dur, ev.Pid, ev.Args, &kills); err != nil {
				return 0, fmt.Errorf("line %d: %v", line, err)
			}
		}
		lastSq, lastTS = ev.Seq, ev.TS
		n++
	}
	if err := sc.Err(); err != nil {
		return 0, err
	}
	if n != head.Events {
		return 0, fmt.Errorf("header says %d events, body has %d", head.Events, n)
	}
	return n, nil
}

// chaosFaultNames are the fault-decision record names internal/chaos
// emits (FaultKind.String()); main_test.go pins this list against the
// package so the two cannot drift.
var chaosFaultNames = map[string]bool{
	"chaos.delay":     true,
	"chaos.reorder":   true,
	"chaos.dup":       true,
	"chaos.drop":      true,
	"chaos.partition": true,
	"chaos.slow":      true,
	"chaos.hold":      true,
	"chaos.kill":      true,
}

// checkChaosEvent validates one cat="chaos" fault-decision record. The
// contract comes from chaos.Log.WriteDump: an instant event with zero
// duration, a known fault name, a source place as pid, and args naming
// dst/id/param. A kill additionally marks the victim in both dst and
// param, and a run kills at most once (the chaos transport freezes
// after its single KillPlan fires).
func checkChaosEvent(name, ph string, dur, pid int64, args map[string]int64, kills *int) error {
	if !chaosFaultNames[name] {
		return fmt.Errorf("unknown chaos fault %q", name)
	}
	if ph != "i" || dur != 0 {
		return fmt.Errorf("chaos record %s must be an instant event (ph=%q dur=%d)", name, ph, dur)
	}
	if pid < 0 {
		return fmt.Errorf("chaos record %s: negative source place %d", name, pid)
	}
	for _, key := range []string{"dst", "id", "param"} {
		if _, ok := args[key]; !ok {
			return fmt.Errorf("chaos record %s lacks args.%s", name, key)
		}
	}
	if args["dst"] < 0 || args["id"] < 0 {
		return fmt.Errorf("chaos record %s: negative dst/id (%d/%d)", name, args["dst"], args["id"])
	}
	if name == "chaos.kill" {
		if args["param"] != args["dst"] {
			return fmt.Errorf("chaos.kill names victim %d in param but destination %d (trigger must die with its destination)",
				args["param"], args["dst"])
		}
		if *kills++; *kills > 1 {
			return fmt.Errorf("second chaos.kill record (a chaos run freezes after one kill)")
		}
	}
	return nil
}

// chromeEvent is the subset of a trace_event record the validator
// inspects.
type chromeEvent struct {
	Name string  `json:"name"`
	Cat  string  `json:"cat"`
	Ph   string  `json:"ph"`
	TS   float64 `json:"ts"`
	Pid  int64   `json:"pid"`
	Tid  uint64  `json:"tid"`
	ID   uint64  `json:"id"`
	BP   string  `json:"bp"`
}

// flowEnd is one side of a flow pairing check.
type flowSide struct {
	index int
	name  string
	cat   string
	ts    float64
}

// checkChromeTrace validates a Chrome trace_event JSON document —
// including merged distributed traces — and returns the number of
// events. Beyond basic shape, it enforces the flow-event contract the
// trace merger guarantees:
//
//   - every flow-begin ('s') has at least one flow-end ('f') with the
//     same id, name, and cat (Chrome binds arrows by all three), and
//     every 'f' has exactly one originating 's';
//   - no flow arrow goes backwards: each 'f' timestamp is at or after
//     its 's' (duplicate deliveries share the send's flow id, so
//     multiple 'f' per 's' are legal; multiple 's' per id are not);
//   - per-track ((pid, tid) lane) timestamps are non-decreasing in
//     file order, so the merged timeline renders without reshuffling.
//
// Metadata events (ph "M") carry no timestamp semantics and are
// skipped by the ordering checks.
func checkChromeTrace(data []byte) (int, error) {
	var doc struct {
		TraceEvents []chromeEvent `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return 0, fmt.Errorf("invalid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		return 0, fmt.Errorf("no trace events")
	}
	type track struct {
		pid int64
		tid uint64
	}
	lastTS := make(map[track]float64)
	sends := make(map[uint64]flowSide)
	var ends []chromeEvent
	endIdx := make(map[int]int) // event index for error messages
	for i, ev := range doc.TraceEvents {
		if ev.Name == "" || ev.Ph == "" {
			return 0, fmt.Errorf("event %d lacks name/ph", i)
		}
		if ev.Ph == "M" {
			continue
		}
		if ev.TS < 0 {
			return 0, fmt.Errorf("event %d (%s): negative timestamp %v", i, ev.Name, ev.TS)
		}
		tk := track{ev.Pid, ev.Tid}
		if prev, ok := lastTS[tk]; ok && ev.TS < prev {
			return 0, fmt.Errorf("event %d (%s): pid %d tid %d timestamp %v before previous %v (track not monotone)",
				i, ev.Name, ev.Pid, ev.Tid, ev.TS, prev)
		}
		lastTS[tk] = ev.TS
		switch ev.Ph {
		case "s":
			if ev.ID == 0 {
				return 0, fmt.Errorf("event %d (%s): flow-begin with id 0", i, ev.Name)
			}
			if prev, dup := sends[ev.ID]; dup {
				return 0, fmt.Errorf("event %d (%s): flow id %d already begun at event %d",
					i, ev.Name, ev.ID, prev.index)
			}
			sends[ev.ID] = flowSide{index: i, name: ev.Name, cat: ev.Cat, ts: ev.TS}
		case "f":
			if ev.ID == 0 {
				return 0, fmt.Errorf("event %d (%s): flow-end with id 0", i, ev.Name)
			}
			if ev.BP != "e" {
				return 0, fmt.Errorf("event %d (%s): flow-end lacks bp=\"e\"", i, ev.Name)
			}
			endIdx[len(ends)] = i
			ends = append(ends, ev)
		}
	}
	matched := make(map[uint64]bool)
	for j, ev := range ends {
		s, ok := sends[ev.ID]
		if !ok {
			return 0, fmt.Errorf("event %d (%s): flow-end id %d has no flow-begin", endIdx[j], ev.Name, ev.ID)
		}
		if s.name != ev.Name || s.cat != ev.Cat {
			return 0, fmt.Errorf("event %d: flow id %d bound as %s/%s at begin but %s/%s at end (Chrome will not draw it)",
				endIdx[j], ev.ID, s.name, s.cat, ev.Name, ev.Cat)
		}
		if ev.TS < s.ts {
			return 0, fmt.Errorf("event %d (%s): flow id %d ends at %v before its begin at %v (arrow goes backwards)",
				endIdx[j], ev.Name, ev.ID, ev.TS, s.ts)
		}
		matched[ev.ID] = true
	}
	for id, s := range sends {
		if !matched[id] {
			return 0, fmt.Errorf("event %d (%s): flow-begin id %d has no flow-end", s.index, s.name, id)
		}
	}
	return len(doc.TraceEvents), nil
}
