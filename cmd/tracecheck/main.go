// Command tracecheck validates a Chrome trace_event JSON file as emitted
// by the -trace flag of apgas-bench and uts: the file must parse and must
// contain at least one event with the mandatory fields. It backs the
// `make trace` sanity target.
//
// Usage:
//
//	tracecheck /tmp/apgas-uts-trace.json
package main

import (
	"encoding/json"
	"fmt"
	"os"
)

func main() {
	if len(os.Args) != 2 {
		fmt.Fprintln(os.Stderr, "usage: tracecheck <trace.json>")
		os.Exit(2)
	}
	path := os.Args[1]
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tracecheck: %v\n", err)
		os.Exit(1)
	}
	var doc struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			TS   float64 `json:"ts"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		fmt.Fprintf(os.Stderr, "tracecheck: %s: invalid JSON: %v\n", path, err)
		os.Exit(1)
	}
	if len(doc.TraceEvents) == 0 {
		fmt.Fprintf(os.Stderr, "tracecheck: %s: no trace events\n", path)
		os.Exit(1)
	}
	for i, ev := range doc.TraceEvents {
		if ev.Name == "" || ev.Ph == "" {
			fmt.Fprintf(os.Stderr, "tracecheck: %s: event %d lacks name/ph\n", path, i)
			os.Exit(1)
		}
	}
	fmt.Printf("tracecheck: %s: %d events OK\n", path, len(doc.TraceEvents))
}
