package main

import (
	"bytes"
	"encoding/json"
	"testing"

	"apgas/internal/chaos"
	"apgas/internal/x10rt"
)

// TestChaosFaultNamesInSync pins the validator's static fault-name set
// against internal/chaos, so adding a fault kind without teaching the
// validator (or renaming one) fails here instead of silently rejecting
// every future dump.
func TestChaosFaultNamesInSync(t *testing.T) {
	kinds := []chaos.FaultKind{
		chaos.FaultDelay, chaos.FaultReorder, chaos.FaultDup, chaos.FaultDrop,
		chaos.FaultPartition, chaos.FaultSlow, chaos.FaultHold, chaos.FaultKill,
	}
	if len(kinds) != len(chaosFaultNames) {
		t.Errorf("validator knows %d chaos fault names, package has %d kinds",
			len(chaosFaultNames), len(kinds))
	}
	for _, k := range kinds {
		if !chaosFaultNames[k.String()] {
			t.Errorf("fault kind %v missing from the validator's name set", k)
		}
	}
}

// genuineKillDump produces a real chaos fault dump containing a
// chaos.kill record: a seeded chaos transport over chan, some pre-kill
// traffic for fault-decision records, then the trigger send that fires
// the KillPlan.
func genuineKillDump(t testing.TB) []byte {
	t.Helper()
	const places = 4
	inner, err := x10rt.NewChanTransport(x10rt.ChanOptions{Places: places})
	if err != nil {
		t.Fatal(err)
	}
	fo := chaos.KillFaultsFor(3, places)
	tr := chaos.Wrap(inner, fo)
	defer tr.Close()
	if err := tr.Register(x10rt.UserHandlerBase+100, func(src, dst int, payload any) {}); err != nil {
		t.Fatal(err)
	}
	// Pre-kill traffic on links away from the trigger link accumulates
	// ordinary fault decisions ahead of the kill record.
	for i := 0; i < 64; i++ {
		for dst := 1; dst < places; dst++ {
			if dst == fo.Kill.Victim {
				continue
			}
			_ = tr.Send(0, dst, x10rt.UserHandlerBase+100, i, 8, x10rt.DataClass)
		}
	}
	// KillFaultsFor arms the kill on the Seq-th eligible send of the
	// 0 -> victim link; fire it.
	for s := uint64(0); s <= fo.Kill.Seq; s++ {
		_ = tr.Send(fo.Kill.Src, fo.Kill.Victim, x10rt.UserHandlerBase+100, int(s), 8, x10rt.DataClass)
	}
	if tr.FaultCounts()["chaos.kill"] != 1 {
		t.Fatalf("kill did not fire: %v", tr.FaultCounts())
	}
	var buf bytes.Buffer
	if err := tr.FaultLog().WriteDump(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestCheckFlightDumpGenuineKill: the validator accepts what the chaos
// transport actually writes.
func TestCheckFlightDumpGenuineKill(t *testing.T) {
	data := genuineKillDump(t)
	if !bytes.Contains(data, []byte("chaos.kill")) {
		t.Fatalf("genuine dump lacks a kill record:\n%s", data)
	}
	if _, err := checkFlightDump(data); err != nil {
		t.Fatalf("genuine kill dump rejected: %v", err)
	}
}

// TestCheckFlightDumpKillLaxity pins the chaos tightening: malformed
// kill records the pre-chaos-aware validator accepted must now fail.
func TestCheckFlightDumpKillLaxity(t *testing.T) {
	head1 := `{"type":"apgas-flight","version":1,"events":1,"recorded":1,"dropped":0}`
	head2 := `{"type":"apgas-flight","version":1,"events":2,"recorded":2,"dropped":0}`
	cases := map[string]string{
		"double kill": head2 + "\n" +
			`{"seq":1,"ts":10,"dur":0,"ph":"i","pid":0,"tid":0,"name":"chaos.kill","cat":"chaos","args":{"dst":2,"id":7,"param":2}}` + "\n" +
			`{"seq":2,"ts":20,"dur":0,"ph":"i","pid":0,"tid":1,"name":"chaos.kill","cat":"chaos","args":{"dst":3,"id":7,"param":3}}` + "\n",
		"victim mismatch": head1 + "\n" +
			`{"seq":1,"ts":10,"dur":0,"ph":"i","pid":0,"tid":0,"name":"chaos.kill","cat":"chaos","args":{"dst":2,"id":7,"param":3}}` + "\n",
		"unknown fault": head1 + "\n" +
			`{"seq":1,"ts":10,"dur":0,"ph":"i","pid":0,"tid":0,"name":"chaos.explode","cat":"chaos","args":{"dst":1,"id":7,"param":0}}` + "\n",
		"missing args": head1 + "\n" +
			`{"seq":1,"ts":10,"dur":0,"ph":"i","pid":0,"tid":0,"name":"chaos.kill","cat":"chaos"}` + "\n",
		"non-instant": head1 + "\n" +
			`{"seq":1,"ts":10,"dur":5,"ph":"X","pid":0,"tid":0,"name":"chaos.kill","cat":"chaos","args":{"dst":1,"id":7,"param":1}}` + "\n",
		"negative source": head1 + "\n" +
			`{"seq":1,"ts":10,"dur":0,"ph":"i","pid":-4,"tid":0,"name":"chaos.drop","cat":"chaos","args":{"dst":-1,"id":7,"param":0}}` + "\n",
	}
	for name, dump := range cases {
		if _, err := checkFlightDump([]byte(dump)); err == nil {
			t.Errorf("%s: accepted:\n%s", name, dump)
		}
	}
}

// FuzzCheckKillDump drives the chaos-aware flight-dump validator with
// kill-record-shaped input. Beyond no-panic and determinism, an
// accepted dump must satisfy the kill contract under an independent
// re-parse: at most one chaos.kill record, and its param (the victim)
// equal to its destination.
func FuzzCheckKillDump(f *testing.F) {
	f.Add(genuineKillDump(f))
	head := `{"type":"apgas-flight","version":1,"events":2,"recorded":2,"dropped":0}`
	f.Add([]byte(head + "\n" +
		`{"seq":1,"ts":10,"dur":0,"ph":"i","pid":0,"tid":4,"name":"chaos.delay","cat":"chaos","args":{"dst":1,"id":7,"param":2}}` + "\n" +
		`{"seq":2,"ts":20,"dur":0,"ph":"i","pid":0,"tid":9,"name":"chaos.kill","cat":"chaos","args":{"dst":2,"id":7,"param":2}}` + "\n"))
	// The laxity cases: must be rejected, never panicked on.
	f.Add([]byte(head + "\n" +
		`{"seq":1,"ts":10,"dur":0,"ph":"i","pid":0,"tid":0,"name":"chaos.kill","cat":"chaos","args":{"dst":1,"id":7,"param":1}}` + "\n" +
		`{"seq":2,"ts":20,"dur":0,"ph":"i","pid":0,"tid":1,"name":"chaos.kill","cat":"chaos","args":{"dst":2,"id":7,"param":2}}` + "\n"))
	f.Add([]byte(`{"type":"apgas-flight","version":1,"events":1,"recorded":1,"dropped":0}` + "\n" +
		`{"seq":1,"ts":10,"dur":0,"ph":"i","pid":0,"tid":0,"name":"chaos.kill","cat":"chaos","args":{"dst":2,"id":7,"param":3}}` + "\n"))
	f.Add([]byte(`{"type":"apgas-flight","version":1,"events":1,"recorded":1,"dropped":0}` + "\n" +
		`{"seq":1,"ts":10,"dur":0,"ph":"i","pid":-4,"tid":0,"name":"chaos.drop","cat":"chaos","args":{"dst":-1,"id":7,"param":0}}` + "\n"))
	f.Add([]byte(`{"type":"apgas-flight","version":1,"events":0,"recorded":0,"dropped":0}` + "\n"))

	f.Fuzz(func(t *testing.T, data []byte) {
		n1, err1 := checkFlightDump(data)
		n2, err2 := checkFlightDump(data)
		if n1 != n2 || (err1 == nil) != (err2 == nil) {
			t.Fatalf("nondeterministic verdict: (%d,%v) vs (%d,%v)", n1, err1, n2, err2)
		}
		if err1 != nil {
			return
		}
		kills := 0
		for _, line := range bytes.Split(data, []byte("\n"))[1:] {
			line = bytes.TrimSpace(line)
			if len(line) == 0 {
				continue
			}
			var ev struct {
				Name string           `json:"name"`
				Cat  string           `json:"cat"`
				Args map[string]int64 `json:"args"`
			}
			if json.Unmarshal(line, &ev) != nil {
				continue // checkFlightDump accepted, so this line parsed for it
			}
			if ev.Cat != "chaos" || ev.Name != "chaos.kill" {
				continue
			}
			kills++
			if ev.Args["param"] != ev.Args["dst"] {
				t.Fatalf("accepted kill record with victim %d but destination %d: %s",
					ev.Args["param"], ev.Args["dst"], line)
			}
		}
		if kills > 1 {
			t.Fatalf("accepted dump with %d kill records", kills)
		}
	})
}
