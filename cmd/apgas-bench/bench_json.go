package main

import (
	"fmt"
	"os"
	"sort"
	"strings"

	"apgas/internal/harness"
	"apgas/internal/perfobs"
)

// runBenchJSON collects the performance artifact for exp ("all" or a
// single series name) at the given scale and writes it to path. With
// echoMetrics each experiment's curated metric deltas go to stderr.
func runBenchJSON(exp string, scale harness.Scale, path string, reps int, echoMetrics bool) error {
	var runners []perfobs.Runner
	switch {
	case exp == "all":
		for _, name := range panelOrder {
			runners = append(runners, perfobs.Runner{Name: name, Run: panels[name]})
		}
	default:
		fn, ok := panels[exp]
		if !ok {
			return fmt.Errorf("-bench-json needs a series experiment (%s or all), not %q",
				strings.Join(panelOrder, ", "), exp)
		}
		runners = []perfobs.Runner{{Name: exp, Run: fn}}
	}

	art, err := perfobs.Collect(scale, reps, runners, os.Stderr)
	if err != nil {
		return err
	}
	// Self-check before writing: an artifact this process cannot validate
	// would fail tracecheck -bench downstream anyway.
	if issues := perfobs.Validate(art); len(issues) > 0 {
		return fmt.Errorf("collected artifact failed validation: %v", issues[0])
	}
	if err := art.WriteFile(path); err != nil {
		return err
	}

	for _, e := range art.Experiments {
		fmt.Printf("== %s ==\n", e.Name)
		if e.CriticalPath != nil {
			e.CriticalPath.WriteText(os.Stdout)
		} else {
			fmt.Println("critical path: no finish root in trace")
		}
		if e.EfficiencyNote != "" {
			fmt.Printf("efficiency: %s\n", e.EfficiencyNote)
		} else {
			fmt.Printf("efficiency: %.2f\n", e.Efficiency)
		}
		fmt.Println()
		if echoMetrics {
			fmt.Fprintf(os.Stderr, "--- %s metrics (best rep) ---\n", e.Name)
			names := make([]string, 0, len(e.Metrics))
			for name := range e.Metrics {
				names = append(names, name)
			}
			sort.Strings(names)
			for _, name := range names {
				m := e.Metrics[name]
				switch m.Kind {
				case "histogram":
					fmt.Fprintf(os.Stderr, "%-40s count=%d sum=%d p50=%d p95=%d\n",
						name, m.Count, m.Sum, m.P50, m.P95)
				case "gauge":
					fmt.Fprintf(os.Stderr, "%-40s %d (gauge)\n", name, m.Gauge)
				default:
					fmt.Fprintf(os.Stderr, "%-40s %d\n", name, m.Count)
				}
			}
		}
	}
	fmt.Fprintf(os.Stderr, "apgas-bench: wrote %s (%d experiments, scale %s, %d reps)\n",
		path, len(art.Experiments), art.Scale, art.Reps)
	return nil
}
