package main

import (
	"fmt"
	"io"
	"os"
	"time"

	"apgas/internal/core"
	"apgas/internal/netsim"
	"apgas/internal/obs"
	"apgas/internal/telemetry"
	"apgas/internal/x10rt"
)

// telemetryOptions configures the telemetry smoke run (-exp telemetry).
type telemetryOptions struct {
	places      int
	useNetsim   bool          // route messages through the Power 775 latency model
	metricsAll  bool          // print the merged cross-place table
	watchdog    time.Duration // stall watchdog window (0 = off)
	flightDump  string        // write the flight recorder here at exit ("" = off)
	batch       bool          // stack the batching wire path on the transport
	batchDelay  time.Duration // with batch: flush-delay bound
	compressMin int           // with batch: compression threshold (0 = off)
	wire        bool          // attach the wire ledger and assert sum-equality at exit
	wireDump    string        // write the wire observatory dump here ("" = off)
}

// runTelemetry drives a deliberately imbalanced multi-place workload,
// pulls every place's metrics through the telemetry plane, and verifies
// the plane's core invariant: the aggregated x10rt message totals equal
// the sum of the per-place transport stats, which equal the transport's
// own global counters (telemetry traffic is excluded from all three).
// It is both the -metrics-all demo and the `make telemetry` smoke test.
func runTelemetry(opts telemetryOptions) error {
	o := obs.New()

	var chanOpts x10rt.ChanOptions
	chanOpts.Places = opts.places
	if opts.useNetsim {
		m := netsim.Power775()
		m.CoresPerOctant = 2 // tiny hosts so even 4 places span hops
		m.OctantsPerDrawer = 2
		m.DrawersPerSupernode = 1
		lat := m.LatencyFunc(netsim.LatencyParams{
			Local:          200 * time.Nanosecond,
			PerHop:         2 * time.Microsecond,
			BytesPerSecond: 1e9,
			Scale:          1,
		})
		chanOpts.Latency = func(src, dst, bytes int, class x10rt.Class) time.Duration {
			return lat(src, dst, bytes, uint8(class))
		}
	}
	inner, err := x10rt.NewChanTransport(chanOpts)
	if err != nil {
		return err
	}
	var tr x10rt.Transport = inner
	if opts.batch {
		// The sum-equality invariant must survive the batching layer:
		// batching changes how messages travel, never how many are
		// counted where.
		tr = x10rt.NewBatchingTransport(inner, x10rt.BatchOptions{
			MaxDelay:    opts.batchDelay,
			CompressMin: opts.compressMin,
		})
	}

	var flightOut io.Writer
	if opts.flightDump != "" {
		f, err := os.Create(opts.flightDump)
		if err != nil {
			return err
		}
		defer f.Close()
		flightOut = f
	}
	rt, err := core.NewRuntime(core.Config{
		Places:        opts.places,
		PlacesPerHost: 2,
		Transport:     tr,
		OwnTransport:  true,
		Obs:           o,
		FlightDump:    flightOut,
		WireLedger:    opts.wire,
	})
	if err != nil {
		return err
	}
	defer rt.Close()
	start := time.Now()

	plane, err := telemetry.Attach(rt)
	if err != nil {
		return err
	}
	telemetry.SetCurrent(plane)
	defer telemetry.SetCurrent(nil)
	stopSig := telemetry.DumpOnSignal(rt, os.Stderr)
	defer stopSig()
	if opts.watchdog > 0 {
		w := telemetry.StartWatchdog(rt, telemetry.WatchdogOptions{Window: opts.watchdog})
		defer w.Stop()
	}

	// An imbalanced workload: everyone spawns locally via broadcast, then
	// place 0 sends q sized messages to each place q — so the per-place
	// min/max columns have something to disagree about.
	places := opts.places
	err = rt.Run(func(c *core.Ctx) {
		g := core.WorldGroup(rt)
		for round := 0; round < 3; round++ {
			if err := g.Broadcast(c, func(cc *core.Ctx) {
				cc.Async(func(*core.Ctx) {})
			}); err != nil {
				panic(err)
			}
		}
		for q := 1; q < places; q++ {
			for k := 0; k < q; k++ {
				c.AtAsyncSized(core.Place(q), 256, func(*core.Ctx) {})
			}
		}
	})
	if err != nil {
		return err
	}
	// Drain trailing finish cleanup (and, with -batch, queued batches)
	// before comparing counters.
	tr.(interface{ Quiesce() }).Quiesce()

	rep, err := plane.Report(10 * time.Second)
	if err != nil {
		return err
	}
	if opts.metricsAll {
		rep.WriteTable(os.Stdout)
	}

	// The invariant the whole plane rests on. WireBytes rides along:
	// the on-the-wire total (post-batch, post-compression) must also be
	// exactly the sum of the per-place egress.
	total := tr.Stats()
	pms := tr.(x10rt.PlaceMetricSource)
	var sum x10rt.Stats
	for q := 0; q < places; q++ {
		ps := pms.PlaceStats(q)
		for i := range sum.Messages {
			sum.Messages[i] += ps.Messages[i]
			sum.Bytes[i] += ps.Bytes[i]
		}
		sum.WireBytes += ps.WireBytes
	}
	if sum != total {
		return fmt.Errorf("telemetry: sum of per-place stats %v != transport stats %v", sum, total)
	}
	for i := 0; i < 3; i++ {
		cls := x10rt.Class(i).String()
		if got, want := rep.Merged.Counter("x10rt.msgs."+cls), total.Messages[i]; got != want {
			return fmt.Errorf("telemetry: merged x10rt.msgs.%s = %d, transport %d", cls, got, want)
		}
		if got, want := rep.Merged.Counter("x10rt.bytes."+cls), total.Bytes[i]; got != want {
			return fmt.Errorf("telemetry: merged x10rt.bytes.%s = %d, transport %d", cls, got, want)
		}
	}
	if got, want := rep.Merged.Counter("x10rt.bytes.wire"), total.WireBytes; got != want {
		return fmt.Errorf("telemetry: merged x10rt.bytes.wire = %d, transport %d", got, want)
	}
	if total.TotalMessages() == 0 {
		return fmt.Errorf("telemetry: workload moved no messages; smoke is vacuous")
	}
	fmt.Printf("telemetry: OK — %d places, aggregated msgs=%d bytes=%d == sum of per-place transport stats\n",
		places, total.TotalMessages(), total.TotalBytes())

	if opts.wire {
		// Third leg of the sum-equality: the wire ledger's attribution
		// must re-sum to the same transport counters checked above.
		if err := writeWireDump(rt, time.Since(start), opts.wireDump); err != nil {
			return err
		}
	}

	if flightOut != nil {
		if err := o.FlightRecorder().WriteDump(flightOut); err != nil {
			return fmt.Errorf("telemetry: write flight dump: %w", err)
		}
		fmt.Fprintf(os.Stderr, "flight recorder dumped to %s\n", opts.flightDump)
	}
	return nil
}
