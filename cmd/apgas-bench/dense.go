package main

import (
	"fmt"
	"os"
	"time"

	"apgas/internal/collectives"
	"apgas/internal/core"
	"apgas/internal/obs"
	"apgas/internal/perfobs"
	"apgas/internal/telemetry"
	"apgas/internal/x10rt"
)

// denseOptions configures the FINISH_DENSE workload (-exp dense).
type denseOptions struct {
	places      int
	tracePrefix string        // with -trace-dist: per-place + merged trace files
	o           *obs.Obs      // process observability (nil = plain metrics)
	burn        int           // spin iterations per phase (0 = off); gives short profiling runs real CPU time
	wire        bool          // attach the wire ledger and assert sum-equality at exit
	wireDump    string        // write the wire observatory dump here ("" = off)
	batch       bool          // run over the batching wire path
	batchDelay  time.Duration // with batch: flush-delay bound
	compressMin int           // with batch: compression threshold (0 = off)
}

// burnSink defeats dead-code elimination of the spin loops.
var burnSink int

// spin burns CPU deterministically for roughly n simple iterations.
func spin(n int) {
	x := 1
	for i := 0; i < n; i++ {
		x = x*31 + i
	}
	burnSink += x
}

// runDense drives a workload under FINISH_DENSE — the paper's general
// cumulative-vector termination detector with dense software routing
// through per-host masters — mixing every traced message kind: remote
// asyncs (all-to-all fan-out), AtDirect round trips, an emulated
// collective round, and the dense ctl snapshot/routing traffic itself.
//
// With a trace prefix (-trace-dist) the run writes one Chrome trace
// per place (<prefix>-pN.json), merges them with HLC skew alignment
// into <prefix>-merged.json — every cross-place message a flow arrow —
// and prints the cross-place critical-path attribution of the merged
// causal graph. `make dtrace` validates the merged file with
// tracecheck.
func runDense(opts denseOptions) error {
	o := opts.o
	if o == nil {
		o = obs.New()
	}
	places := opts.places
	cfg := core.Config{
		Places:        places,
		PlacesPerHost: 2, // two hosts at 4 places, so routing crosses masters
		Obs:           o,
		WireLedger:    opts.wire,
	}
	if opts.batch {
		// `make wire` runs the dense workload over the batching wire
		// path, so the ledger attributes real batch frames (queue wait,
		// per-link flush counts) rather than one frame per message.
		inner, err := x10rt.NewChanTransport(x10rt.ChanOptions{Places: places})
		if err != nil {
			return err
		}
		cfg.Transport = x10rt.NewBatchingTransport(inner, x10rt.BatchOptions{
			MaxDelay:    opts.batchDelay,
			CompressMin: opts.compressMin,
		})
		cfg.OwnTransport = true
	}
	rt, err := core.NewRuntime(cfg)
	if err != nil {
		return err
	}
	defer rt.Close()
	start := time.Now()

	// Serve the cluster view while the run lasts: /telemetry (and
	// apgas-top watching it) needs a collection plane on this runtime.
	plane, err := telemetry.Attach(rt)
	if err != nil {
		return err
	}
	telemetry.SetCurrent(plane)
	defer telemetry.SetCurrent(nil)

	team := collectives.New(rt, core.WorldGroup(rt), collectives.ModeEmulated)
	o.Profiler().SetApp("dense")
	err = rt.Run(func(c *core.Ctx) {
		// CPU-visible work in the root body itself: these samples carry
		// pattern=default kind=main, one of the distinct label tuples the
		// profile-smoke gate asserts on.
		if opts.burn > 0 {
			spin(opts.burn)
		}
		// All-to-all fan-out under one FINISH_DENSE: every place spawns
		// at every other place, and each remote activity spawns a local
		// child, so termination credits flow through the dense routing.
		if err := c.FinishPragma(core.PatternDense, func(fc *core.Ctx) {
			for p := 0; p < places; p++ {
				fc.AtAsync(core.Place(p), func(cp *core.Ctx) {
					me := int(cp.Place())
					for q := 0; q < places; q++ {
						if q == me {
							continue
						}
						cp.AtAsyncSized(core.Place(q), 64, func(cq *core.Ctx) {
							if opts.burn > 0 {
								spin(opts.burn / 4)
							}
							cq.Async(func(*core.Ctx) {})
						})
					}
				})
			}
		}); err != nil {
			panic(err)
		}
		// An SPMD burn phase: every place spins under FINISH_SPMD, so a
		// short profiled run samples a second heavily-exercised finish
		// pattern besides "dense".
		if opts.burn > 0 {
			if err := c.FinishPragma(core.PatternSPMD, func(sc *core.Ctx) {
				for p := 0; p < places; p++ {
					sc.AtAsync(core.Place(p), func(*core.Ctx) { spin(opts.burn) })
				}
			}); err != nil {
				panic(err)
			}
		}
		// One emulated collective round: team traffic rides
		// HandlerTeamCtl and shows up as flow.team arrows.
		g := core.WorldGroup(rt)
		if err := g.Broadcast(c, func(cc *core.Ctx) {
			collectives.AllReduce(team, cc, []int64{int64(cc.Place())},
				func(a, b int64) int64 { return a + b })
		}); err != nil {
			panic(err)
		}
		// An AtDirect round trip under FINISH_HERE: the token travels
		// with the messages, no ctl traffic — the flows are the spawns.
		if err := c.FinishPragma(core.PatternHere, func(hc *core.Ctx) {
			hc.AtDirect(core.Place(places-1), 16, func(cv *core.Ctx) {
				cv.AtDirect(0, 16, func(*core.Ctx) {})
			})
		}); err != nil {
			panic(err)
		}
	})
	if err != nil {
		return err
	}
	fmt.Printf("dense: OK — %d places, FINISH_DENSE all-to-all + collective round + AtDirect round trip\n", places)

	if opts.wire {
		// Drain queued batches and trailing finish cleanup so the
		// ledger, the transport counters, and the dump agree on one
		// quiescent instant.
		if q, ok := rt.Transport().(interface{ Quiesce() }); ok {
			q.Quiesce()
		}
		if err := writeWireDump(rt, time.Since(start), opts.wireDump); err != nil {
			return err
		}
	}

	if opts.tracePrefix == "" {
		return nil
	}
	return writeDistTraces(o.Trace, opts.tracePrefix, places)
}

// writeDistTraces splits the tracer's events into one Chrome trace per
// place (<prefix>-pN.json), merges them with HLC skew alignment into
// <prefix>-merged.json, and prints the cross-place critical-path
// attribution of the merged causal graph. places <= 0 derives the
// place count from the events themselves.
func writeDistTraces(tr *obs.Tracer, prefix string, places int) error {
	if tr == nil {
		return fmt.Errorf("trace-dist: no tracer installed")
	}
	if places <= 0 {
		for _, e := range tr.Events() {
			if e.Pid+1 > places {
				places = e.Pid + 1
			}
		}
	}
	if places <= 0 {
		return fmt.Errorf("trace-dist: trace holds no events")
	}
	paths := make([]string, places)
	for p := 0; p < places; p++ {
		paths[p] = fmt.Sprintf("%s-p%d.json", prefix, p)
		if err := tr.WriteChromePlaceFile(paths[p], p); err != nil {
			return fmt.Errorf("trace-dist: write place %d trace: %w", p, err)
		}
	}
	merged, err := obs.MergeTraceFiles(paths...)
	if err != nil {
		return fmt.Errorf("trace-dist: merge traces: %w", err)
	}
	mergedPath := prefix + "-merged.json"
	if err := merged.WriteChromeFile(mergedPath); err != nil {
		return fmt.Errorf("trace-dist: write merged trace: %w", err)
	}
	fmt.Fprintf(os.Stderr, "distributed trace: %d per-place files + %s (%d events, %d flows)\n",
		places, mergedPath, len(merged.Events), merged.Flows)
	if rep := perfobs.CriticalPath(merged.Events); rep != nil {
		rep.WriteText(os.Stderr)
	}
	return nil
}
