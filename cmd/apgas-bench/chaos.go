package main

import (
	"fmt"
	"os"
	"time"

	"apgas/internal/chaos"
)

// chaosOptions configures the -exp chaos smoke run.
type chaosOptions struct {
	places int
	seeds  int
}

// runChaos is the bench-harness face of the chaos explorer: a short
// deliverability-preserving fault sweep over every finish-pattern
// workload plus GLB, followed by the exhaustive SPMD credit-order
// permutations. It is a smoke test, not the acceptance sweep — the
// full 64-seed run lives in `go test ./internal/chaos -run Explore`
// and `make chaos`; the dedicated cmd/chaos CLI adds replay.
func runChaos(o chaosOptions) error {
	if o.seeds <= 0 {
		o.seeds = 8
	}
	opts := chaos.SweepOptions{
		Places:  o.places,
		Seeds:   o.seeds,
		Timeout: 30 * time.Second,
	}
	start := time.Now()
	res := chaos.Sweep(opts)
	fmt.Printf("chaos sweep: %d runs (%d seeds x %d workloads, %d places) in %v\n",
		res.Runs, o.seeds, len(chaos.Workloads()), opts.Places,
		time.Since(start).Round(time.Millisecond))
	fmt.Printf("  fault totals: %v\n", res.FaultTotals)

	perm := chaos.ExplorePermutations(opts)
	fmt.Printf("chaos permutations: %d SPMD credit orderings, %d violating\n",
		perm.Runs, len(perm.Failures))

	failures := append(res.Failures, perm.Failures...)
	for _, rep := range failures {
		fmt.Fprintf(os.Stderr, "FAIL workload=%s seed=%d faults=%v\n%s",
			rep.Workload, rep.Seed, rep.Faults, chaos.FormatViolations(rep.Violations))
		if rep.FinishDump != "" {
			fmt.Fprint(os.Stderr, rep.FinishDump)
		}
		fmt.Fprintf(os.Stderr, "replay: go run ./cmd/chaos -chaos-replay %d -workload %s -places %d\n",
			rep.Seed, rep.Workload, opts.Places)
	}
	if len(failures) > 0 {
		return fmt.Errorf("chaos: %d runs violated invariants", len(failures))
	}
	fmt.Println("  all invariants held: finish quiescence, activity conservation, stats sum-equality")
	return nil
}
