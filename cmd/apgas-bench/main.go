// Command apgas-bench regenerates the experiments of "X10 and APGAS at
// Petascale" (PPoPP 2014) on the in-process APGAS runtime: the eight
// weak-scaling panels of Figure 1, Tables 1 and 2, the Power 775
// interconnect model predictions, and the ablation studies for the finish
// patterns, the scalable broadcast, the collectives modes, and the UTS
// load balancer.
//
// Usage:
//
//	apgas-bench -exp all -scale small
//	apgas-bench -exp uts-ablation
//	apgas-bench -exp table2 -scale tiny
//	apgas-bench -exp list                        # enumerate experiments
//	apgas-bench -exp uts -metrics                # metrics snapshot on stderr
//	apgas-bench -exp uts -trace /tmp/uts.json    # Chrome trace_event JSON
//	apgas-bench -exp all -debug-addr :6060       # pprof + expvar + /telemetry while running
//	apgas-bench -places 4 -metrics-all           # cross-place merged metrics table
//	apgas-bench -exp telemetry -netsim           # telemetry smoke under the 775 model
//	apgas-bench -exp all -scale tiny -bench-json BENCH_tiny.json   # performance artifact
//	apgas-bench -exp uts -bench-json uts.json -bench-reps 5        # min-of-5 UTS artifact
//
// -bench-json emits the performance observatory's machine-readable
// artifact (validated by tracecheck -bench, gated by benchdiff): each
// experiment's best-of-reps series, curated metric deltas, and the
// critical-path attribution of finish/steal/collective time. It
// composes with -metrics (echoes each experiment's deltas to stderr)
// but not with -trace, -netsim, or the telemetry/chaos workloads, which
// manage their own observability.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime/pprof"
	"sort"
	"strings"
	"time"

	"apgas/internal/collectives"
	"apgas/internal/harness"
	"apgas/internal/obs"
	"apgas/internal/telemetry"
	"apgas/internal/x10rt"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run; -exp list enumerates them")
	scaleFlag := flag.String("scale", "tiny", "tiny, small, or medium")
	traceFile := flag.String("trace", "",
		"write a Chrome trace_event JSON file (load in chrome://tracing or Perfetto)")
	traceDist := flag.String("trace-dist", "",
		"run with distributed (cross-place) tracing and write per-place traces "+
			"<prefix>-pN.json plus the flow-linked merged trace <prefix>-merged.json")
	metrics := flag.Bool("metrics", false,
		"attach metric deltas to experiment tables and print a snapshot to stderr at exit")
	debugAddr := flag.String("debug-addr", "",
		"serve net/http/pprof, expvar, /telemetry, /metrics, and /debug/profilez on this address, e.g. localhost:6060")
	prof := flag.Bool("prof", false,
		"stamp pprof goroutine labels (place, pattern, kind, app) on every activity")
	profCPU := flag.String("prof-cpu", "",
		"capture a CPU profile of the run to this file (implies -prof); "+
			"summarize per label with tracecheck -profile")
	denseBurn := flag.Int("dense-burn", 0,
		"dense run: spin this many iterations of CPU work inside each phase, "+
			"so short profiling runs collect enough samples (0 = off)")
	places := flag.Int("places", 4, "places for the telemetry and chaos runs (-exp telemetry, -exp chaos)")
	metricsAll := flag.Bool("metrics-all", false,
		"run the telemetry workload and print the merged cross-place metrics table "+
			"(sum, min@place, max@place, per-place)")
	useNetsim := flag.Bool("netsim", false,
		"telemetry run: inject Power 775-model latency into the transport")
	chaosSeeds := flag.Int("chaos-seeds", 8, "seeds for the chaos run (-exp chaos)")
	watchdog := flag.Duration("watchdog", 0,
		"telemetry run: enable the finish stall watchdog with this window (0 = off)")
	flightDump := flag.String("flight-dump", "",
		"telemetry run: write the flight recorder (JSON Lines) to this file at exit")
	benchJSON := flag.String("bench-json", "",
		"write the performance artifact (BENCH JSON) to this file: best-of-reps series, "+
			"metric deltas, critical-path buckets; validate with tracecheck -bench, gate with benchdiff")
	benchReps := flag.Int("bench-reps", 3, "repetitions per experiment for -bench-json (best kept)")
	wireLedger := flag.Bool("wire", false,
		"telemetry/dense runs: attach the wire ledger (per-handler/per-link message cost attribution) "+
			"and assert its sum-equality against the transport counters at exit")
	wireDump := flag.String("wire-dump", "",
		"telemetry/dense runs: write the wire observatory dump (JSON) to this file at exit; "+
			"implies -wire, validate with tracecheck -wire")
	batch := flag.Bool("batch", false,
		"run the experiment and telemetry runtimes over the batching wire path (per-link frame coalescing)")
	batchDelay := flag.Duration("batch-delay", 200*time.Microsecond,
		"with -batch: bound on how long a queued frame may wait before its batch flushes")
	compressMin := flag.Int("compress-min", 0,
		"with -batch: compress batch payloads at least this many encoded bytes (0 = off)")
	codec := flag.Bool("codec", false,
		"run the transport panels' TCP meshes over the binary wire codec (v4 frames, "+
			"type-table handshake) instead of gob framing")
	flag.Parse()

	harness.CodecWire = *codec

	if *wireDump != "" {
		*wireLedger = true
	}

	if *batch {
		// Runtime-based experiments get their transport from this hook;
		// the transport-* panels build their own meshes and take the
		// batching decision from their own series definitions.
		harness.TransportFactory = func(places int) (x10rt.Transport, error) {
			inner, err := x10rt.NewChanTransport(x10rt.ChanOptions{Places: places})
			if err != nil {
				return nil, err
			}
			return x10rt.NewBatchingTransport(inner, x10rt.BatchOptions{
				MaxDelay:    *batchDelay,
				CompressMin: *compressMin,
			}), nil
		}
	}

	// -metrics-all is a request for the cross-place telemetry view, so it
	// selects the telemetry workload regardless of -exp.
	if *metricsAll && *exp == "all" {
		*exp = "telemetry"
	}

	// -bench-json swaps the process-global observability per repetition,
	// so it cannot coexist with modes that install or depend on their own.
	if *benchJSON != "" {
		reason := ""
		switch {
		case *traceFile != "":
			reason = "-trace (the artifact collector installs a fresh tracer per repetition)"
		case *traceDist != "":
			reason = "-trace-dist (the artifact collector installs a fresh tracer per repetition)"
		case *useNetsim:
			reason = "-netsim (artifacts fingerprint the real machine, not a modelled one)"
		case *metricsAll:
			reason = "-metrics-all (a telemetry-workload view)"
		case *exp == "telemetry" || *exp == "chaos" || *exp == "dense" || *exp == "list":
			reason = fmt.Sprintf("-exp %s (not a measured series)", *exp)
		}
		if reason != "" {
			fmt.Fprintf(os.Stderr, "apgas-bench: -bench-json cannot be combined with %s\n", reason)
			os.Exit(2)
		}
	}

	var scale harness.Scale
	switch *scaleFlag {
	case "tiny":
		scale = harness.Tiny
	case "small":
		scale = harness.Small
	case "medium":
		scale = harness.Medium
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q\n", *scaleFlag)
		os.Exit(2)
	}

	// Observability: the harness builds runtimes internally, so the obs
	// layer is installed process-wide rather than plumbed through.
	var o *obs.Obs
	switch {
	case *traceDist != "":
		o = obs.NewTracingDist()
	case *traceFile != "":
		o = obs.NewTracing()
	case *metrics || *debugAddr != "" || *prof || *profCPU != "":
		o = obs.New()
	}
	if o != nil {
		if *prof || *profCPU != "" {
			o.EnableProfiling("bench")
		}
		obs.SetGlobal(o)
	}
	if *debugAddr != "" {
		// The debug server carries the continuous profiling plane: the
		// profile ring behind /debug/profilez, plus a health sampler
		// feeding per-place runtime gauges into /telemetry and /metrics.
		ds, stopPlane, err := telemetry.StartDebugPlane(*debugAddr, o, *places)
		if err != nil {
			fmt.Fprintf(os.Stderr, "apgas-bench: %v\n", err)
			os.Exit(1)
		}
		defer stopPlane()
		fmt.Fprintf(os.Stderr, "debug server on http://%s/debug/pprof/, /debug/vars, /debug/profilez, /telemetry, /metrics, and /wire\n", ds.Addr)
	}
	if *profCPU != "" {
		f, err := os.Create(*profCPU)
		if err != nil {
			fmt.Fprintf(os.Stderr, "apgas-bench: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "apgas-bench: start cpu profile: %v\n", err)
			os.Exit(1)
		}
		defer func() {
			pprof.StopCPUProfile()
			if err := f.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "apgas-bench: close cpu profile: %v\n", err)
				return
			}
			fmt.Fprintf(os.Stderr, "cpu profile written to %s (summarize: tracecheck -profile %s)\n", *profCPU, *profCPU)
		}()
	}

	if *exp == "dense" {
		if err := runDense(denseOptions{
			places:      *places,
			tracePrefix: *traceDist,
			o:           o,
			burn:        *denseBurn,
			wire:        *wireLedger,
			wireDump:    *wireDump,
			batch:       *batch,
			batchDelay:  *batchDelay,
			compressMin: *compressMin,
		}); err != nil {
			fmt.Fprintf(os.Stderr, "apgas-bench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *exp == "chaos" {
		if err := runChaos(chaosOptions{places: *places, seeds: *chaosSeeds}); err != nil {
			fmt.Fprintf(os.Stderr, "apgas-bench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *exp == "telemetry" {
		if err := runTelemetry(telemetryOptions{
			places:      *places,
			useNetsim:   *useNetsim,
			metricsAll:  *metricsAll,
			watchdog:    *watchdog,
			flightDump:  *flightDump,
			batch:       *batch,
			batchDelay:  *batchDelay,
			compressMin: *compressMin,
			wire:        *wireLedger,
			wireDump:    *wireDump,
		}); err != nil {
			fmt.Fprintf(os.Stderr, "apgas-bench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *benchJSON != "" {
		if err := runBenchJSON(*exp, scale, *benchJSON, *benchReps, *metrics); err != nil {
			fmt.Fprintf(os.Stderr, "apgas-bench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if err := run(*exp, scale); err != nil {
		fmt.Fprintf(os.Stderr, "apgas-bench: %v\n", err)
		os.Exit(1)
	}

	if *metrics {
		fmt.Fprintln(os.Stderr, "--- metrics ---")
		o.Metrics.Snapshot().WriteText(os.Stderr)
	}
	if *traceFile != "" {
		if err := o.Trace.WriteChromeFile(*traceFile); err != nil {
			fmt.Fprintf(os.Stderr, "apgas-bench: write trace: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "--- trace summary (full trace: %s) ---\n", *traceFile)
		o.Trace.WriteSummary(os.Stderr)
	}
	if *traceDist != "" {
		if err := writeDistTraces(o.Trace, *traceDist, 0); err != nil {
			fmt.Fprintf(os.Stderr, "apgas-bench: %v\n", err)
			os.Exit(1)
		}
	}
}

// experiments maps every -exp name that is not a Figure 1 panel to a
// one-line description, for -exp list.
var experiments = map[string]string{
	"all":             "every panel, table, and ablation below",
	"table1":          "Table 1: finish-pattern message counts",
	"table2":          "Table 2: finish-pattern latencies",
	"netsim":          "Power 775 interconnect model predictions",
	"telemetry":       "cross-place telemetry smoke: merged metrics vs per-place transport stats",
	"chaos":           "fault-injection sweep: finish invariants under seeded delay/reorder/partition chaos",
	"dense":           "FINISH_DENSE all-to-all + collective + AtDirect workload; with -trace-dist, the merged distributed-trace demo",
	"finish":          "finish-pattern ablation",
	"broadcast":       "scalable vs sequential broadcast ablation",
	"uts-ablation":    "UTS load-balancer ablation",
	"teams":           "native vs emulated collectives",
	"seqref":          "sequential reference kernels",
	"spmd-bcast":      "FINISH_SPMD spawning-tree broadcast sweep (pins the finish-control critical-path bucket)",
	"transport":       "wire microbenchmark: small control frames over a local TCP mesh, unbatched",
	"transport-batch": "wire microbenchmark: small control frames through per-link batching (≥3x gate)",
	"transport-codec": "wire microbenchmark: batched small frames over codec framing (≥3x-vs-gob gate)",
	"transport-large": "wire microbenchmark: 1 MiB payloads through the batching path",
	"wire":            "wire observatory microbenchmark: per-message gob encode/decode ns through the ledger (lower is better)",
	"onesided":        "one-sided microbenchmark: 1 MiB AsyncCopyPut bandwidth through the v5 frame lane (≥50%-of-memcpy gate)",
}

// panelOrder is the series execution order for -exp all and -bench-json.
var panelOrder = []string{
	"hpl", "fft", "ra", "stream", "uts", "kmeans", "sw", "bc", "spmd-bcast",
	"transport", "transport-batch", "transport-codec", "transport-large", "wire", "onesided",
}

// panels maps -exp names to the harness series they regenerate.
var panels = map[string]func(harness.Scale) (harness.Series, error){
	"hpl":             harness.Fig1HPL,
	"fft":             harness.Fig1FFT,
	"ra":              harness.Fig1RandomAccess,
	"stream":          harness.Fig1Stream,
	"uts":             harness.Fig1UTS,
	"kmeans":          harness.Fig1KMeans,
	"sw":              harness.Fig1SW,
	"bc":              harness.Fig1BC,
	"spmd-bcast":      harness.SPMDBroadcastSeries,
	"transport":       harness.TransportSmallSeries,
	"transport-batch": harness.TransportSmallBatchSeries,
	"transport-codec": harness.TransportCodecSeries,
	"transport-large": harness.TransportLargeBatchSeries,
	"wire":            harness.WireSeries,
	"onesided":        harness.OneSidedSeries,
}

func run(exp string, scale harness.Scale) error {
	// With profiling on, each experiment's samples carry its name as the
	// "app" pprof label, so one -exp all profile partitions by panel.
	setApp := func(name string) { obs.Global().Profiler().SetApp(name) }
	setApp(exp)
	series := func(fn func(harness.Scale) (harness.Series, error)) error {
		s, err := fn(scale)
		if err != nil {
			return err
		}
		s.Print(os.Stdout)
		fmt.Println()
		return nil
	}
	table := func(t harness.Table, err error) error {
		if err != nil {
			return err
		}
		t.Print(os.Stdout)
		fmt.Println()
		return nil
	}

	switch exp {
	case "list":
		seen := make(map[string]bool, len(panels)+len(experiments))
		names := make([]string, 0, len(panels)+len(experiments))
		for name := range panels {
			if !seen[name] {
				seen[name] = true
				names = append(names, name)
			}
		}
		for name := range experiments {
			if !seen[name] {
				seen[name] = true
				names = append(names, name)
			}
		}
		sort.Strings(names)
		for _, name := range names {
			desc, ok := experiments[name]
			if !ok {
				desc = "Figure 1 panel"
			}
			fmt.Printf("%-14s %s\n", name, desc)
		}
		return nil
	case "all":
		for _, name := range panelOrder {
			setApp(name)
			if err := series(panels[name]); err != nil {
				return fmt.Errorf("%s: %w", name, err)
			}
		}
		setApp(exp)
		if err := table(harness.Table1(scale)); err != nil {
			return err
		}
		if err := table(harness.Table2(scale)); err != nil {
			return err
		}
		if err := table(harness.ModelTable(), nil); err != nil {
			return err
		}
		places := scale.PlaceSweep()[len(scale.PlaceSweep())-1]
		if err := table(harness.FinishAblationTable(places, 10)); err != nil {
			return err
		}
		if err := table(harness.BroadcastAblation(places, 10)); err != nil {
			return err
		}
		if err := table(harness.UTSAblation(places, 12)); err != nil {
			return err
		}
		for _, mode := range []collectives.Mode{collectives.ModeNative, collectives.ModeEmulated} {
			s, err := harness.TeamModeSeries(scale, mode)
			if err != nil {
				return err
			}
			s.Print(os.Stdout)
			fmt.Println()
		}
		return table(harness.SequentialReference(), nil)
	case "table1":
		return table(harness.Table1(scale))
	case "table2":
		return table(harness.Table2(scale))
	case "netsim":
		return table(harness.ModelTable(), nil)
	case "finish":
		places := scale.PlaceSweep()[len(scale.PlaceSweep())-1]
		return table(harness.FinishAblationTable(places, 20))
	case "broadcast":
		places := scale.PlaceSweep()[len(scale.PlaceSweep())-1]
		return table(harness.BroadcastAblation(places, 20))
	case "uts-ablation":
		places := scale.PlaceSweep()[len(scale.PlaceSweep())-1]
		depth := map[harness.Scale]int{harness.Tiny: 11, harness.Small: 13, harness.Medium: 14}[scale]
		return table(harness.UTSAblation(places, depth))
	case "teams":
		for _, mode := range []collectives.Mode{collectives.ModeNative, collectives.ModeEmulated} {
			s, err := harness.TeamModeSeries(scale, mode)
			if err != nil {
				return err
			}
			s.Print(os.Stdout)
			fmt.Println()
		}
		return nil
	case "seqref":
		return table(harness.SequentialReference(), nil)
	default:
		fn, ok := panels[exp]
		if !ok {
			names := make([]string, 0, len(panels))
			for name := range panels {
				names = append(names, name)
			}
			sort.Strings(names)
			return fmt.Errorf("unknown experiment %q; panels are %s (try -exp list)",
				exp, strings.Join(names, ", "))
		}
		return series(fn)
	}
}
