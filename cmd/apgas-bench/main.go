// Command apgas-bench regenerates the experiments of "X10 and APGAS at
// Petascale" (PPoPP 2014) on the in-process APGAS runtime: the eight
// weak-scaling panels of Figure 1, Tables 1 and 2, the Power 775
// interconnect model predictions, and the ablation studies for the finish
// patterns, the scalable broadcast, the collectives modes, and the UTS
// load balancer.
//
// Usage:
//
//	apgas-bench -exp all -scale small
//	apgas-bench -exp uts-ablation
//	apgas-bench -exp table2 -scale tiny
package main

import (
	"flag"
	"fmt"
	"os"

	"apgas/internal/collectives"
	"apgas/internal/harness"
)

func main() {
	exp := flag.String("exp", "all",
		"experiment: all, hpl, fft, ra, stream, uts, kmeans, sw, bc, "+
			"table1, table2, netsim, finish, broadcast, uts-ablation, teams, seqref")
	scaleFlag := flag.String("scale", "tiny", "tiny, small, or medium")
	flag.Parse()

	var scale harness.Scale
	switch *scaleFlag {
	case "tiny":
		scale = harness.Tiny
	case "small":
		scale = harness.Small
	case "medium":
		scale = harness.Medium
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q\n", *scaleFlag)
		os.Exit(2)
	}

	if err := run(*exp, scale); err != nil {
		fmt.Fprintf(os.Stderr, "apgas-bench: %v\n", err)
		os.Exit(1)
	}
}

func run(exp string, scale harness.Scale) error {
	series := func(fn func(harness.Scale) (harness.Series, error)) error {
		s, err := fn(scale)
		if err != nil {
			return err
		}
		s.Print(os.Stdout)
		fmt.Println()
		return nil
	}
	table := func(t harness.Table, err error) error {
		if err != nil {
			return err
		}
		t.Print(os.Stdout)
		fmt.Println()
		return nil
	}

	panels := map[string]func(harness.Scale) (harness.Series, error){
		"hpl":    harness.Fig1HPL,
		"fft":    harness.Fig1FFT,
		"ra":     harness.Fig1RandomAccess,
		"stream": harness.Fig1Stream,
		"uts":    harness.Fig1UTS,
		"kmeans": harness.Fig1KMeans,
		"sw":     harness.Fig1SW,
		"bc":     harness.Fig1BC,
	}

	switch exp {
	case "all":
		for _, name := range []string{"hpl", "fft", "ra", "stream", "uts", "kmeans", "sw", "bc"} {
			if err := series(panels[name]); err != nil {
				return fmt.Errorf("%s: %w", name, err)
			}
		}
		if err := table(harness.Table1(scale)); err != nil {
			return err
		}
		if err := table(harness.Table2(scale)); err != nil {
			return err
		}
		if err := table(harness.ModelTable(), nil); err != nil {
			return err
		}
		places := scale.PlaceSweep()[len(scale.PlaceSweep())-1]
		if err := table(harness.FinishAblationTable(places, 10)); err != nil {
			return err
		}
		if err := table(harness.BroadcastAblation(places, 10)); err != nil {
			return err
		}
		if err := table(harness.UTSAblation(places, 12)); err != nil {
			return err
		}
		for _, mode := range []collectives.Mode{collectives.ModeNative, collectives.ModeEmulated} {
			s, err := harness.TeamModeSeries(scale, mode)
			if err != nil {
				return err
			}
			s.Print(os.Stdout)
			fmt.Println()
		}
		return table(harness.SequentialReference(), nil)
	case "table1":
		return table(harness.Table1(scale))
	case "table2":
		return table(harness.Table2(scale))
	case "netsim":
		return table(harness.ModelTable(), nil)
	case "finish":
		places := scale.PlaceSweep()[len(scale.PlaceSweep())-1]
		return table(harness.FinishAblationTable(places, 20))
	case "broadcast":
		places := scale.PlaceSweep()[len(scale.PlaceSweep())-1]
		return table(harness.BroadcastAblation(places, 20))
	case "uts-ablation":
		places := scale.PlaceSweep()[len(scale.PlaceSweep())-1]
		depth := map[harness.Scale]int{harness.Tiny: 11, harness.Small: 13, harness.Medium: 14}[scale]
		return table(harness.UTSAblation(places, depth))
	case "teams":
		for _, mode := range []collectives.Mode{collectives.ModeNative, collectives.ModeEmulated} {
			s, err := harness.TeamModeSeries(scale, mode)
			if err != nil {
				return err
			}
			s.Print(os.Stdout)
			fmt.Println()
		}
		return nil
	case "seqref":
		return table(harness.SequentialReference(), nil)
	default:
		fn, ok := panels[exp]
		if !ok {
			return fmt.Errorf("unknown experiment %q", exp)
		}
		return series(fn)
	}
}
