package main

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"apgas/internal/core"
	"apgas/internal/telemetry"
)

// writeWireDump snapshots the runtime's wire ledger, enforces the
// sum-equality invariant against the transport counters (Σ per-handler
// payload bytes == bytes sent, Σ per-link wire bytes == bytes on the
// wire), prints the text table to stderr, and — when path is non-empty
// — writes the JSON dump for tracecheck -wire.
func writeWireDump(rt *core.Runtime, elapsed time.Duration, path string) error {
	lg := rt.WireLedger()
	if lg == nil {
		return fmt.Errorf("wire: runtime has no wire ledger (is -wire set and observability on?)")
	}
	v := telemetry.WireFromSnapshot(lg.Snapshot(), rt.Transport().Stats(), elapsed)
	if err := v.SumEqual(); err != nil {
		return err
	}
	fmt.Fprintln(os.Stderr, "--- wire observatory ---")
	v.WriteText(os.Stderr, 8)
	if path == "" {
		return nil
	}
	data, err := json.MarshalIndent(v, "", " ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wire dump written to %s (validate: tracecheck -wire %s)\n", path, path)
	return nil
}
