package main

import (
	"strings"
	"testing"
	"time"

	"apgas/internal/perfobs"
)

func testReport(msgsP0, msgsP1 int64) *report {
	return &report{
		Places: 2,
		Metrics: map[string]metricJSON{
			"x10rt.msgs.data": {
				Kind: "counter", Sum: msgsP0 + msgsP1,
				PerPlace: map[string]int64{"p0": msgsP0, "p1": msgsP1},
			},
			"x10rt.bytes.data": {
				Kind: "counter", Sum: 4096,
				PerPlace: map[string]int64{"p0": 1024, "p1": 3072},
			},
			"x10rt.bytes.wire": { // must be excluded from BYTES/S
				Kind: "counter", Sum: msgsP0 * 1_000_000_000,
				PerPlace: map[string]int64{"p0": msgsP0 * 1_000_000_000},
			},
			"glb.steal.successes": {
				Kind: "counter", Sum: 7,
				PerPlace: map[string]int64{"p0": 0, "p1": 7},
			},
			"health.goroutines": {
				Kind: "gauge", Sum: 24,
				PerPlace: map[string]int64{"p0": 12, "p1": 12},
			},
			"health.heap.objects.bytes": {
				Kind: "gauge", Sum: 4 << 20,
				PerPlace: map[string]int64{"p0": 2 << 20, "p1": 2 << 20},
			},
		},
	}
}

func TestRenderReportFirstSample(t *testing.T) {
	var b strings.Builder
	cur := &sample{at: time.Unix(100, 0), rep: testReport(10, 20)}
	renderReport(&b, cur, nil, "localhost:6060")
	out := b.String()
	for _, want := range []string{
		"places=2", "PLACE", "MSGS/S", "GOROUT",
		"12",      // goroutines gauge
		"2.0M",    // heap gauge humanized
		"30 msgs", // total row
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// No previous sample: counter columns render "-", not a rate.
	if !strings.Contains(out, "-") {
		t.Errorf("first sample should render '-' rates:\n%s", out)
	}
}

func TestRenderReportRates(t *testing.T) {
	prev := &sample{at: time.Unix(100, 0), rep: testReport(10, 20)}
	cur := &sample{at: time.Unix(102, 0), rep: testReport(110, 220)}
	var b strings.Builder
	renderReport(&b, cur, prev, "x")
	out := b.String()
	// Place 0 gained 100 msgs over 2s → 50/s; place 1 200 over 2s → 100/s.
	if !strings.Contains(out, "50") || !strings.Contains(out, "100") {
		t.Errorf("expected rates 50 and 100 in output:\n%s", out)
	}
	// The wire-byte counter (growing by 100 GB between samples at p0)
	// must not leak into BYTES/S: the data-byte delta is 0, so place 0's
	// byte rate stays 0 rather than 50000000000/s.
	if strings.Contains(out, "50000000000") {
		t.Errorf("wire bytes leaked into the table:\n%s", out)
	}
}

func TestRenderReportMissingHealth(t *testing.T) {
	rep := testReport(1, 1)
	delete(rep.Metrics, "health.goroutines")
	delete(rep.Metrics, "health.heap.objects.bytes")
	var b strings.Builder
	renderReport(&b, &sample{at: time.Unix(1, 0), rep: rep}, nil, "x")
	if !strings.Contains(b.String(), "-") {
		t.Errorf("missing health gauges should render '-':\n%s", b.String())
	}
}

func TestHumanBytes(t *testing.T) {
	cases := map[int64]string{
		17:            "17",
		2048:          "2.0K",
		3 << 20:       "3.0M",
		5 << 30:       "5.0G",
		1<<20 + 1<<19: "1.5M",
	}
	for in, want := range cases {
		if got := humanBytes(in); got != want {
			t.Errorf("humanBytes(%d) = %q, want %q", in, got, want)
		}
	}
}

func TestRenderTopCPU(t *testing.T) {
	sum := &perfobs.ProfileSummary{
		Keys:      []string{"place", "kind"},
		ValueType: "cpu", ValueUnit: "nanoseconds",
		Total: 100, Labeled: 90, TotalSamples: 10, LabeledSamples: 9,
		Rows: []perfobs.SummaryRow{
			{Key: "place=1 kind=glb.worker", Value: 60},
			{Key: "place=0 kind=main", Value: 30},
			{Key: "(unlabeled)", Value: 10},
		},
	}
	var b strings.Builder
	renderTopCPU(&b, sum, 1)
	out := b.String()
	if !strings.Contains(out, "place=1 kind=glb.worker") || !strings.Contains(out, "60.0%") {
		t.Errorf("top row missing:\n%s", out)
	}
	if strings.Contains(out, "place=0") || strings.Contains(out, "(unlabeled)") {
		t.Errorf("rows beyond top-1 (or unlabeled) leaked:\n%s", out)
	}
	if !strings.Contains(out, "90% of samples labeled") {
		t.Errorf("labeled fraction missing:\n%s", out)
	}
}
