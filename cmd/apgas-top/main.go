// Command apgas-top is a live cluster view over a running APGAS
// process's -debug-addr server: it polls /telemetry for the merged
// cross-place metrics (message and steal rates, GLB progress, runtime
// health gauges) and /debug/profilez for the latest continuous CPU
// profile, and renders a refreshing per-place table with the top CPU
// consumers by (place, pattern, kind) label.
//
// Usage:
//
//	apgas-bench -exp dense -prof -debug-addr :6060 &
//	apgas-top -addr localhost:6060
//	apgas-top -addr localhost:6060 -once       # single snapshot, no clear
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"time"

	"apgas/internal/obs"
	"apgas/internal/perfobs"
	"apgas/internal/telemetry"
)

func fetchReport(client *http.Client, addr string) (*sample, error) {
	resp, err := client.Get("http://" + addr + "/telemetry")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
		return nil, fmt.Errorf("/telemetry: %s: %s", resp.Status, body)
	}
	var rep report
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		return nil, fmt.Errorf("/telemetry: %w", err)
	}
	return &sample{at: time.Now(), rep: &rep}, nil
}

// fetchTopCPU pulls the newest CPU snapshot from the continuous profile
// ring and summarizes it by activity labels. Any failure returns nil:
// the ring may simply not have completed a capture window yet.
func fetchTopCPU(client *http.Client, addr string) *perfobs.ProfileSummary {
	resp, err := client.Get("http://" + addr + "/debug/profilez?kind=cpu")
	if err != nil || resp.StatusCode != http.StatusOK {
		if resp != nil {
			resp.Body.Close()
		}
		return nil
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil
	}
	p, err := perfobs.ParseProfile(data)
	if err != nil {
		return nil
	}
	return perfobs.SummarizeProfile(p, []string{obs.LabelPlace, obs.LabelPattern, obs.LabelKind})
}

// fetchWire pulls the wire observatory view. Any failure — including a
// process that simply has no wire ledger attached — returns nil and the
// pane is skipped.
func fetchWire(client *http.Client, addr string) *telemetry.WireView {
	resp, err := client.Get("http://" + addr + "/wire")
	if err != nil || resp.StatusCode != http.StatusOK {
		if resp != nil {
			resp.Body.Close()
		}
		return nil
	}
	defer resp.Body.Close()
	var v telemetry.WireView
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil || len(v.Handlers) == 0 {
		return nil
	}
	return &v
}

func main() {
	addr := flag.String("addr", "localhost:6060", "host:port of the -debug-addr server to watch")
	interval := flag.Duration("interval", 2*time.Second, "refresh interval")
	once := flag.Bool("once", false, "print a single snapshot and exit")
	top := flag.Int("top", 5, "CPU label rows to show (0 disables the /debug/profilez fetch)")
	wire := flag.Bool("wire", true, "show the wire pane when the process exports a wire ledger")
	flag.Parse()

	client := &http.Client{Timeout: 15 * time.Second}
	var prev *sample
	var prevWire *telemetry.WireView
	var prevAt time.Time
	for {
		cur, err := fetchReport(client, *addr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "apgas-top: %v\n", err)
			os.Exit(1)
		}
		if !*once {
			fmt.Print("\x1b[2J\x1b[H") // clear screen, home cursor
		}
		renderReport(os.Stdout, cur, prev, *addr)
		if *wire {
			if v := fetchWire(client, *addr); v != nil {
				fmt.Println()
				renderWire(os.Stdout, v, prevWire, cur.at.Sub(prevAt))
				prevWire, prevAt = v, cur.at
			}
		}
		if *top > 0 {
			if sum := fetchTopCPU(client, *addr); sum != nil {
				fmt.Println()
				renderTopCPU(os.Stdout, sum, *top)
			}
		}
		if *once {
			return
		}
		prev = cur
		time.Sleep(*interval)
	}
}
