package main

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"apgas/internal/perfobs"
	"apgas/internal/telemetry"
)

// metricJSON mirrors the /telemetry endpoint's per-metric shape.
type metricJSON struct {
	Kind     string           `json:"kind"`
	Sum      int64            `json:"sum"`
	Min      int64            `json:"min"`
	MinPlace int              `json:"minPlace"`
	Max      int64            `json:"max"`
	MaxPlace int              `json:"maxPlace"`
	PerPlace map[string]int64 `json:"perPlace"`
}

// report mirrors the /telemetry endpoint's top-level shape.
type report struct {
	Places  int                   `json:"places"`
	Metrics map[string]metricJSON `json:"metrics"`
}

// sample is one polled report with its arrival time; rates come from
// the delta between two samples.
type sample struct {
	at  time.Time
	rep *report
}

// perPlace reads one place's value of a metric (0 if absent).
func (r *report) perPlace(name string, p int) int64 {
	m, ok := r.Metrics[name]
	if !ok {
		return 0
	}
	return m.PerPlace[fmt.Sprintf("p%d", p)]
}

// has reports whether the metric was collected at all.
func (r *report) has(name string) bool {
	_, ok := r.Metrics[name]
	return ok
}

// sumPrefix sums one place's values over all metrics sharing a name
// prefix, skipping any names in except (e.g. the wire-byte counter that
// double-counts batched payloads).
func (r *report) sumPrefix(prefix string, p int, except ...string) int64 {
	var sum int64
	for name := range r.Metrics {
		if !strings.HasPrefix(name, prefix) || hasString(except, name) {
			continue
		}
		sum += r.perPlace(name, p)
	}
	return sum
}

func hasString(xs []string, s string) bool {
	for _, x := range xs {
		if x == s {
			return true
		}
	}
	return false
}

// rate formats a per-second counter delta between two samples; with no
// previous sample it renders "-" (one poll cannot yield a rate).
func rate(cur, prev int64, dt time.Duration) string {
	if dt <= 0 {
		return "-"
	}
	return fmt.Sprintf("%.0f", float64(cur-prev)/dt.Seconds())
}

// humanBytes renders a byte count with a binary-ish suffix.
func humanBytes(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.1fG", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.1fM", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1fK", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%d", n)
	}
}

// renderReport writes the per-place cluster table. prev may be nil (first
// poll): counter columns then show "-" instead of rates.
func renderReport(w io.Writer, cur, prev *sample, addr string) {
	var dt time.Duration
	prevRep := &report{}
	if prev != nil {
		dt = cur.at.Sub(prev.at)
		prevRep = prev.rep
	}
	fmt.Fprintf(w, "apgas-top  %s  places=%d  %s\n", addr, cur.rep.Places,
		cur.at.Format("15:04:05"))
	tw := newTableWriter(w)
	tw.row("PLACE", "MSGS/S", "BYTES/S", "STEALS/S", "TASKS/S", "GOROUT", "HEAP", "GC-P99us")
	sumRow := make([]int64, 5)
	for p := 0; p < cur.rep.Places; p++ {
		msgs := cur.rep.sumPrefix("x10rt.msgs.", p)
		bytes := cur.rep.sumPrefix("x10rt.bytes.", p, "x10rt.bytes.wire")
		steals := cur.rep.perPlace("glb.steal.successes", p)
		tasks := cur.rep.perPlace("glb.processed", p)
		sumRow[0] += msgs
		sumRow[1] += bytes
		sumRow[2] += steals
		sumRow[3] += tasks
		gorout, heap, gcP99 := "-", "-", "-"
		if cur.rep.has("health.goroutines") {
			gorout = fmt.Sprintf("%d", cur.rep.perPlace("health.goroutines", p))
		}
		if cur.rep.has("health.heap.objects.bytes") {
			heap = humanBytes(cur.rep.perPlace("health.heap.objects.bytes", p))
		}
		if cur.rep.has("health.gc.pause.p99.us") {
			gcP99 = fmt.Sprintf("%d", cur.rep.perPlace("health.gc.pause.p99.us", p))
		}
		tw.row(fmt.Sprintf("%d", p),
			rate(msgs, prevRep.sumPrefix("x10rt.msgs.", p), dt),
			rate(bytes, prevRep.sumPrefix("x10rt.bytes.", p, "x10rt.bytes.wire"), dt),
			rate(steals, prevRep.perPlace("glb.steal.successes", p), dt),
			rate(tasks, prevRep.perPlace("glb.processed", p), dt),
			gorout, heap, gcP99)
	}
	tw.row("TOTAL",
		fmt.Sprintf("%d msgs", sumRow[0]),
		humanBytes(sumRow[1]),
		fmt.Sprintf("%d steals", sumRow[2]),
		fmt.Sprintf("%d tasks", sumRow[3]),
		"", "", "")
	tw.flush()
}

// renderWire writes the wire pane: the hottest handlers by
// serialization cost and the busiest links by wire bytes, with rates
// derived from the previous poll when available (cumulative totals
// otherwise). prev may be nil.
func renderWire(w io.Writer, cur, prev *telemetry.WireView, dt time.Duration) {
	prevHandlers := map[int]telemetry.WireHandlerRow{}
	prevLinks := map[[2]int]telemetry.WireLinkRow{}
	if prev != nil {
		for _, h := range prev.Handlers {
			prevHandlers[h.ID] = h
		}
		for _, l := range prev.Links {
			prevLinks[[2]int{l.Src, l.Dst}] = l
		}
	}
	fmt.Fprintf(w, "wire: %s payload, %s wire, %d msgs\n",
		humanBytes(int64(cur.Totals.PayloadBytes)),
		humanBytes(int64(cur.Totals.WireBytes)), cur.Totals.Msgs)

	handlers := append([]telemetry.WireHandlerRow(nil), cur.Handlers...)
	sort.Slice(handlers, func(i, j int) bool {
		return handlers[i].EncNs+handlers[i].DecNs > handlers[j].EncNs+handlers[j].DecNs
	})
	if len(handlers) > 5 {
		handlers = handlers[:5]
	}
	tw := newTableWriter(w)
	tw.row("HANDLER", "MSGS", "MSGS/S", "BYTES", "ENC-NS/MSG", "DEC-NS/MSG")
	for _, h := range handlers {
		encPer, decPer := uint64(0), uint64(0)
		if h.Msgs > 0 {
			encPer = h.EncNs / h.Msgs
		}
		if h.Recv > 0 {
			decPer = h.DecNs / h.Recv
		}
		tw.row(h.Name,
			fmt.Sprintf("%d", h.Msgs),
			rate(int64(h.Msgs), int64(prevHandlers[h.ID].Msgs), dt),
			humanBytes(int64(h.Bytes)),
			fmt.Sprintf("%d", encPer),
			fmt.Sprintf("%d", decPer))
	}
	tw.flush()

	links := append([]telemetry.WireLinkRow(nil), cur.Links...)
	sort.Slice(links, func(i, j int) bool { return links[i].Wire > links[j].Wire })
	if len(links) > 5 {
		links = links[:5]
	}
	tw = newTableWriter(w)
	tw.row("LINK", "WIRE", "WIRE-B/S", "RATIO", "QWAIT-US", "BATCHES")
	for _, l := range links {
		ratio := "-"
		if l.Comp > 0 {
			ratio = fmt.Sprintf("%.2f", float64(l.Raw)/float64(l.Comp))
		}
		qwait := "-"
		if l.Batches > 0 {
			qwait = fmt.Sprintf("%.1f", float64(l.QwaitNs)/float64(l.Batches)/1e3)
		}
		tw.row(fmt.Sprintf("%d->%d", l.Src, l.Dst),
			humanBytes(int64(l.Wire)),
			rate(int64(l.Wire), int64(prevLinks[[2]int{l.Src, l.Dst}].Wire), dt),
			ratio, qwait,
			fmt.Sprintf("%d", l.Batches))
	}
	tw.flush()
}

// renderTopCPU writes the top-n label tuples of a continuous-ring CPU
// profile, as fractions of its labeled time.
func renderTopCPU(w io.Writer, sum *perfobs.ProfileSummary, n int) {
	if sum == nil || sum.Total == 0 {
		return
	}
	fmt.Fprintf(w, "top CPU by (%s), %.0f%% of samples labeled:\n",
		strings.Join(sum.Keys, ","), 100*sum.LabeledFraction())
	rows := append([]perfobs.SummaryRow(nil), sum.Rows...)
	sort.SliceStable(rows, func(i, j int) bool { return rows[i].Value > rows[j].Value })
	shown := 0
	for _, row := range rows {
		if row.Key == "(unlabeled)" {
			continue
		}
		fmt.Fprintf(w, "  %5.1f%%  %s\n", 100*float64(row.Value)/float64(sum.Total), row.Key)
		shown++
		if shown >= n {
			break
		}
	}
}

// tableWriter is a minimal column aligner (text/tabwriter would also
// do, but fixed right-padding reads better for this short table).
type tableWriter struct {
	w    io.Writer
	rows [][]string
}

func newTableWriter(w io.Writer) *tableWriter { return &tableWriter{w: w} }

func (t *tableWriter) row(cells ...string) { t.rows = append(t.rows, cells) }

func (t *tableWriter) flush() {
	widths := map[int]int{}
	for _, r := range t.rows {
		for i, c := range r {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i > 0 {
				fmt.Fprint(t.w, "  ")
			}
			fmt.Fprintf(t.w, "%-*s", widths[i], c)
		}
		fmt.Fprintln(t.w)
	}
}
