// Package apgas's root benchmark suite: one testing.B benchmark per table
// and figure of "X10 and APGAS at Petascale" (PPoPP 2014), plus the
// ablation benchmarks for the design choices DESIGN.md calls out. Run
//
//	go test -bench=. -benchmem
//
// at the repository root to regenerate every experiment at CI scale; use
// cmd/apgas-bench for larger sweeps and formatted output.
package apgas

import (
	"fmt"
	"testing"

	"apgas/internal/apps/hpl"
	"apgas/internal/apps/randomaccess"
	"apgas/internal/apps/uts"
	"apgas/internal/collectives"
	"apgas/internal/core"
	"apgas/internal/glb"
	"apgas/internal/harness"
	"apgas/internal/kernels/sha1rng"
	"apgas/internal/netsim"
)

// reportSeries attaches the series' headline metrics to the benchmark.
func reportSeries(b *testing.B, s harness.Series, err error) {
	b.Helper()
	if err != nil {
		b.Fatal(err)
	}
	if len(s.Points) == 0 {
		b.Fatal("empty series")
	}
	last := s.Points[len(s.Points)-1]
	b.ReportMetric(last.Aggregate, "aggregate@scale")
	b.ReportMetric(last.PerUnit, "perunit@scale")
	b.ReportMetric(s.Efficiency(1), "efficiency")
}

// --- Figure 1 panels -----------------------------------------------------

func BenchmarkFig1HPL(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s, err := harness.Fig1HPL(harness.Tiny)
		reportSeries(b, s, err)
	}
}

func BenchmarkFig1FFT(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s, err := harness.Fig1FFT(harness.Tiny)
		reportSeries(b, s, err)
	}
}

func BenchmarkFig1RA(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s, err := harness.Fig1RandomAccess(harness.Tiny)
		reportSeries(b, s, err)
	}
}

func BenchmarkFig1Stream(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s, err := harness.Fig1Stream(harness.Tiny)
		reportSeries(b, s, err)
	}
}

func BenchmarkFig1UTS(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s, err := harness.Fig1UTS(harness.Tiny)
		reportSeries(b, s, err)
	}
}

func BenchmarkFig1KMeans(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s, err := harness.Fig1KMeans(harness.Tiny)
		reportSeries(b, s, err)
	}
}

func BenchmarkFig1SW(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s, err := harness.Fig1SW(harness.Tiny)
		reportSeries(b, s, err)
	}
}

func BenchmarkFig1BC(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s, err := harness.Fig1BC(harness.Tiny)
		reportSeries(b, s, err)
	}
}

// --- Tables ---------------------------------------------------------------

func BenchmarkTable1ClassComparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := harness.Table1(harness.Tiny); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable2Efficiency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := harness.Table2(harness.Tiny); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkNetsimAllToAll regenerates the §4 interconnect analysis: the
// per-octant all-to-all bandwidth over the whole 1,740-host sweep.
func BenchmarkNetsimAllToAll(b *testing.B) {
	m := netsim.Power775()
	var sink float64
	for i := 0; i < b.N; i++ {
		for hosts := 1; hosts <= m.TotalOctants(); hosts++ {
			sink += m.AllToAllPerOctant(hosts)
		}
	}
	_ = sink
	b.ReportMetric(m.AllToAllPerOctant(64), "GB/s/host@2SN")
	b.ReportMetric(m.AllToAllPerOctant(32), "GB/s/host@1SN")
}

// --- Ablations (§3, §6) ----------------------------------------------------

func BenchmarkFinishPatternsSPMD(b *testing.B) {
	benchFinishShape(b, "spmd")
}

func BenchmarkFinishPatternsRoundTrip(b *testing.B) {
	benchFinishShape(b, "round")
}

func BenchmarkFinishDenseRouting(b *testing.B) {
	benchFinishShape(b, "dense")
}

func benchFinishShape(b *testing.B, shape string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		rows, err := harness.FinishAblation(shape, 8, 5)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			b.ReportMetric(float64(r.CtlMessages), r.Pattern+"-ctlmsgs")
		}
	}
}

func BenchmarkBroadcastTreeVsSequential(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := harness.BroadcastAblation(16, 5); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkUTSAblationLegacy reproduces the §6.2 comparison: the refined
// balancer against the original PPoPP'11 configuration on the same tree.
func BenchmarkUTSAblationLegacy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := harness.UTSAblation(4, 11); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkUTSQueueRepr compares the interval work representation with
// fragment-of-every-interval stealing against the legacy expanded node
// list, on both tree families: §6.1 predicts the interval refinements
// "make a tremendous difference" for shallow (geometric) trees "but are
// not likely to help as much for deep and narrow trees" (binomial).
func BenchmarkUTSQueueRepr(b *testing.B) {
	trees := []struct {
		family string
		tree   sha1rng.Tree
	}{
		{"geometric", sha1rng.Geometric{B0: 4, Depth: 12, Seed: 19}},
		{"binomial", sha1rng.Binomial{B0: 2000, M: 2, Q: 0.49, Seed: 19}},
	}
	for _, tr := range trees {
		for _, variant := range []struct {
			name string
			list bool
		}{{"intervals", false}, {"list", true}} {
			b.Run(tr.family+"/"+variant.name, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					rt, err := core.NewRuntime(core.Config{Places: 4})
					if err != nil {
						b.Fatal(err)
					}
					res, err := uts.Run(rt, uts.Config{
						Tree:       tr.tree,
						UseListBag: variant.list,
						GLB:        glb.Config{DenseFinish: true},
					})
					rt.Close()
					if err != nil {
						b.Fatal(err)
					}
					b.ReportMetric(res.NodesPerSecond()/1e6, "Mnodes/s")
				}
			})
		}
	}
}

func BenchmarkTeamNative(b *testing.B) {
	benchTeamMode(b, collectives.ModeNative)
}

func BenchmarkTeamEmulated(b *testing.B) {
	benchTeamMode(b, collectives.ModeEmulated)
}

func benchTeamMode(b *testing.B, mode collectives.Mode) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		s, err := harness.TeamModeSeries(harness.Tiny, mode)
		if err != nil {
			b.Fatal(err)
		}
		last := s.Points[len(s.Points)-1]
		b.ReportMetric(last.Aggregate, "allreduce-ops/s")
	}
}

// BenchmarkHPLGridSeesaw runs HPL on square and 2:1 grids of the same
// place count — the distribution switch behind the paper's HPL seesaw.
func BenchmarkHPLGridSeesaw(b *testing.B) {
	for _, grid := range []struct {
		name string
		p, q int
	}{{"4x4", 4, 4}, {"2x8", 2, 8}} {
		b.Run(grid.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rt, err := core.NewRuntime(core.Config{Places: grid.p * grid.q})
				if err != nil {
					b.Fatal(err)
				}
				res, err := hpl.Run(rt, hpl.Config{N: 256, NB: 16, P: grid.p, Q: grid.q, Seed: 7})
				rt.Close()
				if err != nil {
					b.Fatal(err)
				}
				if res.Residual > 16 {
					b.Fatalf("residual %g", res.Residual)
				}
				b.ReportMetric(res.Gflops, "Gflop/s")
			}
		})
	}
}

// BenchmarkRABatching measures the HPCC look-ahead: batched remote XOR
// updates against per-update messages. The paper's GUPS implementation
// leaned on the Torrent's hardware aggregation; here batching substitutes
// for it, and the gap quantifies the per-message dispatch cost the
// hardware removed.
func BenchmarkRABatching(b *testing.B) {
	for _, batch := range []int{1, 16, 1024} {
		b.Run(fmt.Sprintf("batch=%d", batch), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rt, err := core.NewRuntime(core.Config{Places: 4})
				if err != nil {
					b.Fatal(err)
				}
				res, err := randomaccess.Run(rt, randomaccess.Config{
					Log2TablePerPlace: 12,
					Batch:             batch,
				})
				rt.Close()
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res.GUPs*1e3, "MUP/s")
			}
		})
	}
}
