// K-Means example: Lloyd's algorithm over points partitioned across
// places, with the two-AllReduce iteration structure of §7 of "X10 and
// APGAS at Petascale".
//
//	go run ./examples/kmeans
package main

import (
	"fmt"
	"log"

	"apgas/internal/apps/kmeans"
	"apgas/internal/core"
)

func main() {
	const places = 4
	rt, err := core.NewRuntime(core.Config{Places: places})
	if err != nil {
		log.Fatal(err)
	}
	defer rt.Close()

	cfg := kmeans.Config{
		PointsPerPlace: 10000,
		Clusters:       64,
		Dim:            12, // the paper's dimensionality
		Iterations:     5,  // the paper timed 5 iterations
		Seed:           42,
	}
	res, err := kmeans.Run(rt, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("clustered %d points into %d clusters (%d dims) in %.3fs\n",
		cfg.PointsPerPlace*places, cfg.Clusters, cfg.Dim, res.Seconds)
	fmt.Printf("final distortion: %.6f\n", res.Distortion)

	// Cross-check the distributed result against a sequential run.
	_, wantDist := kmeans.Sequential(cfg, places)
	fmt.Printf("sequential distortion: %.6f (match: %v)\n",
		wantDist, approxEqual(res.Distortion, wantDist))
}

func approxEqual(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= 1e-9*(1+b)
}
