// RandomAccess example: GUPS-style remote atomic XOR updates on a
// congruent (symmetric) array, the §3.3 RDMA surface of "X10 and APGAS at
// Petascale" — updates complete without involving the remote CPU and their
// termination is detected by a single enclosing finish.
//
//	go run ./examples/ra
package main

import (
	"fmt"
	"log"

	"apgas/internal/apps/randomaccess"
	"apgas/internal/congruent"
	"apgas/internal/core"
)

func main() {
	const places = 4
	rt, err := core.NewRuntime(core.Config{Places: places})
	if err != nil {
		log.Fatal(err)
	}
	defer rt.Close()

	// Low-level tour: a congruent array and a few direct remote XORs.
	alloc := congruent.NewAllocator(rt)
	arr, err := congruent.NewArray[uint64](alloc, 8)
	if err != nil {
		log.Fatal(err)
	}
	err = rt.Run(func(ctx *core.Ctx) {
		if err := ctx.Finish(func(c *core.Ctx) {
			// The finish tracks every in-flight update, like
			// Array.asyncCopy under finish in X10.
			congruent.RemoteXor(c, arr, 2, 5, 0xdead)
			congruent.RemoteXor(c, arr, 3, 0, 0xbeef)
			c.Async(func(*core.Ctx) { /* overlap local work */ })
		}); err != nil {
			panic(err)
		}
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fragment[2][5] = %#x, fragment[3][0] = %#x\n",
		arr.Fragment(2)[5], arr.Fragment(3)[0])
	reg, pages, allocs := alloc.Stats()
	fmt.Printf("allocator: %d bytes registered, %d large pages, %d symmetric allocations\n",
		reg, pages, allocs)

	// The full HPCC benchmark with verification (apply the update stream
	// twice; XOR involution must restore the table).
	res, err := randomaccess.Run(rt, randomaccess.Config{
		Log2TablePerPlace: 14,
		Verify:            true,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("RandomAccess: %d updates to %d words in %.3fs — %.6f GUP/s\n",
		res.Updates, res.TableWords, res.Seconds, res.GUPs)
	fmt.Printf("verification errors: %d\n", res.Errors)
}
