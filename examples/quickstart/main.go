// Quickstart: the core APGAS constructs of "X10 and APGAS at Petascale"
// §2 on the Go runtime — places, async, at, finish, global references, and
// a tree broadcast over a place group.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"sync"

	"apgas/internal/core"
)

func main() {
	rt, err := core.NewRuntime(core.Config{Places: 8, CheckPatterns: true})
	if err != nil {
		log.Fatal(err)
	}
	defer rt.Close()

	err = rt.Run(func(ctx *core.Ctx) {
		// --- Hello from every place, launched with the scalable
		// PlaceGroup broadcast of §3.2 (spawning trees + FINISH_SPMD).
		var mu sync.Mutex
		visited := []core.Place{}
		group := core.WorldGroup(rt)
		if err := group.Broadcast(ctx, func(c *core.Ctx) {
			mu.Lock()
			visited = append(visited, c.Place())
			mu.Unlock()
		}); err != nil {
			panic(err)
		}
		fmt.Printf("broadcast reached %d places\n", len(visited))

		// --- The fib example of §2.2: finish/async recursive
		// parallel decomposition.
		fmt.Printf("fib(20) = %d\n", fib(ctx, 20))

		// --- Remote evaluation: `val v = at (p) e`.
		v := core.AtEval(ctx, 3, func(c *core.Ctx) string {
			return fmt.Sprintf("hello from place %d", c.Place())
		})
		fmt.Println(v)

		// --- The average-load idiom of §2.2: a cell at home updated
		// from every place through its GlobalRef with atomic sections.
		type cell struct{ sum float64 }
		acc := &cell{}
		ref := core.NewGlobalRef(ctx, acc)
		home := ctx.Place()
		if err := ctx.Finish(func(c *core.Ctx) {
			for _, p := range c.Places() {
				c.AtAsync(p, func(cc *core.Ctx) {
					load := float64(cc.Place()) // stand-in for systemLoad()
					cc.AtAsync(home, func(ch *core.Ctx) {
						a := ref.Get(ch)
						ch.Atomic(func() { a.sum += load })
					})
				})
			}
		}); err != nil {
			panic(err)
		}
		fmt.Printf("average load = %.2f\n", acc.sum/float64(rt.NumPlaces()))
	})
	if err != nil {
		log.Fatal(err)
	}
}

// fib computes Fibonacci numbers with finish+async, exactly as in the
// paper's §2.2 listing.
func fib(c *core.Ctx, n int) int {
	if n < 2 {
		return n
	}
	var f1, f2 int
	if err := c.Finish(func(cc *core.Ctx) {
		cc.Async(func(ca *core.Ctx) { f1 = fib(ca, n-1) })
		f2 = fib(cc, n-2)
	}); err != nil {
		panic(err)
	}
	return f1 + f2
}
