// Finish-patterns example: the specialized termination-detection
// implementations of §3.1 of "X10 and APGAS at Petascale", their pragma
// selection, the control-traffic cost of each, and the profile-guided
// advisor that recommends a pragma from an observed run (the paper's
// prototype compiler analysis, realized dynamically).
//
//	go run ./examples/finishpatterns
package main

import (
	"fmt"
	"log"

	"apgas/internal/core"
	"apgas/internal/x10rt"
)

func main() {
	const places = 8
	rt, err := core.NewRuntime(core.Config{Places: places, CheckPatterns: true})
	if err != nil {
		log.Fatal(err)
	}
	defer rt.Close()

	ctl := func() uint64 {
		return rt.Transport().Stats().Messages[x10rt.ControlClass]
	}

	err = rt.Run(func(ctx *core.Ctx) {
		// FINISH_SPMD: flat fan-out, n completion messages.
		before := ctl()
		if err := ctx.FinishPragma(core.PatternSPMD, func(c *core.Ctx) {
			for _, p := range c.Places() {
				c.AtAsync(p, func(*core.Ctx) {})
			}
		}); err != nil {
			panic(err)
		}
		fmt.Printf("FINISH_SPMD   fan-out to %d places: %2d control messages\n",
			places, ctl()-before)

		// FINISH_HERE: a request/response round trip, zero control
		// messages — the termination token rides the data.
		before = ctl()
		home := ctx.Place()
		if err := ctx.FinishPragma(core.PatternHere, func(c *core.Ctx) {
			c.AtAsync(5, func(cc *core.Ctx) {
				cc.AtAsync(home, func(*core.Ctx) {})
			})
		}); err != nil {
			panic(err)
		}
		fmt.Printf("FINISH_HERE   round trip:              %2d control messages\n",
			ctl()-before)

		// FINISH_ASYNC: one remote activity, one completion message.
		before = ctl()
		if err := ctx.FinishPragma(core.PatternAsync, func(c *core.Ctx) {
			c.AtAsync(3, func(*core.Ctx) {})
		}); err != nil {
			panic(err)
		}
		fmt.Printf("FINISH_ASYNC  single put:              %2d control messages\n",
			ctl()-before)

		// The general algorithm on the same fan-out, for contrast.
		before = ctl()
		if err := ctx.Finish(func(c *core.Ctx) {
			for _, p := range c.Places() {
				c.AtAsync(p, func(*core.Ctx) {})
			}
		}); err != nil {
			panic(err)
		}
		fmt.Printf("FINISH_DEFAULT same fan-out:           %2d control messages\n",
			ctl()-before)

		// Profile-guided selection: run once under the instrumented
		// default algorithm, get the recommended pragma.
		fmt.Println()
		shapes := []struct {
			name string
			body func(*core.Ctx)
		}{
			{"local asyncs", func(c *core.Ctx) {
				for i := 0; i < 4; i++ {
					c.Async(func(*core.Ctx) {})
				}
			}},
			{"single put", func(c *core.Ctx) {
				c.AtAsync(2, func(*core.Ctx) {})
			}},
			{"get (round trip)", func(c *core.Ctx) {
				h := c.Place()
				c.AtAsync(6, func(cc *core.Ctx) {
					cc.AtAsync(h, func(*core.Ctx) {})
				})
			}},
			{"spmd fan-out", func(c *core.Ctx) {
				for _, p := range c.Places() {
					c.AtAsync(p, func(*core.Ctx) {})
				}
			}},
			{"all-to-all storm", func(c *core.Ctx) {
				for _, p := range c.Places() {
					c.AtAsync(p, func(cc *core.Ctx) {
						for _, q := range cc.Places() {
							if q != cc.Place() {
								cc.AtAsync(q, func(*core.Ctx) {})
							}
						}
					})
				}
			}},
		}
		for _, sh := range shapes {
			profile, err := ctx.FinishProfiled(sh.body)
			if err != nil {
				panic(err)
			}
			fmt.Printf("advisor: %-18s -> %v\n", sh.name, profile.Recommend())
		}
	})
	if err != nil {
		log.Fatal(err)
	}
}
