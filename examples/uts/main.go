// UTS example: traversing an unbalanced geometric tree with the
// lifeline-based global load balancer of §6 of "X10 and APGAS at
// Petascale" — the workload where static partitioning fails and dynamic
// distributed work stealing shines.
//
//	go run ./examples/uts
package main

import (
	"fmt"
	"log"

	"apgas/internal/apps/uts"
	"apgas/internal/core"
	"apgas/internal/glb"
	"apgas/internal/kernels/sha1rng"
)

func main() {
	const places = 8
	tree := sha1rng.Geometric{B0: 4, Depth: 13, Seed: 19}

	rt, err := core.NewRuntime(core.Config{Places: places})
	if err != nil {
		log.Fatal(err)
	}
	defer rt.Close()

	res, err := uts.Run(rt, uts.Config{
		Tree: tree,
		// The paper's configuration: FINISH_DENSE for the root finish,
		// bounded victim sets, hypercube lifelines (defaults).
		GLB: glb.Config{DenseFinish: true},
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("geometric tree b0=%.0f seed=%d depth=%d\n", tree.B0, tree.Seed, tree.Depth)
	fmt.Printf("counted %d nodes in %.3fs — %.2f Mnodes/s over %d places\n",
		res.Nodes, res.Seconds, res.NodesPerSecond()/1e6, places)
	fmt.Printf("load balancing: %d successful steals of %d attempts, %d lifeline deliveries, %d resuscitations\n",
		res.Stats.StealSuccesses, res.Stats.StealAttempts,
		res.Stats.LifelineDeliveries, res.Stats.Resuscitations)

	// The tree is a pure function of its parameters: verify the count.
	want, _ := tree.CountSequential()
	if res.Nodes != want {
		log.Fatalf("count mismatch: distributed %d vs sequential %d", res.Nodes, want)
	}
	fmt.Println("verified against sequential traversal")
}
