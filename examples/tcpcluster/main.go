// TCP cluster example: the active-message runtime (amrt) running over a
// real loopback TCP mesh — the cross-address-space deployment path, where
// tasks are registered handlers plus argument bytes instead of closures.
// Each endpoint here lives in one process for convenience; the identical
// code runs with one endpoint per OS process, which is how the paper's
// places were deployed (one place per core, PAMI in between).
//
//	go run ./examples/tcpcluster
package main

import (
	"encoding/binary"
	"fmt"
	"log"

	"apgas/internal/amrt"
	"apgas/internal/x10rt"
)

func main() {
	const places = 4
	mesh, err := x10rt.NewLocalTCPMesh(places)
	if err != nil {
		log.Fatal(err)
	}
	defer func() {
		for _, tr := range mesh {
			tr.Close()
		}
	}()

	rts := make([]*amrt.Runtime, places)
	for i, tr := range mesh {
		r, err := amrt.New(tr, i)
		if err != nil {
			log.Fatal(err)
		}
		// SPMD registration: the same handlers at every place.
		r.Register("pi-samples", piSamples)
		rts[i] = r
	}

	// Monte-Carlo pi: place 0 farms sample batches out over TCP and
	// gathers the hit counts with synchronous calls.
	const perPlace = 2_000_000
	var hits, total uint64
	err = rts[0].Finish(func(spawn func(int, string, []byte)) {
		for d := 0; d < places; d++ {
			arg := make([]byte, 16)
			binary.BigEndian.PutUint64(arg[:8], uint64(d)+1) // seed
			binary.BigEndian.PutUint64(arg[8:], perPlace)
			out, err := rts[0].Call(d, "pi-samples", arg)
			if err != nil {
				log.Fatal(err)
			}
			hits += binary.BigEndian.Uint64(out)
			total += perPlace
		}
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pi ≈ %.6f from %d samples over a %d-endpoint TCP mesh\n",
		4*float64(hits)/float64(total), total, places)

	// A barrier round for good measure.
	done := make(chan error, places)
	for _, r := range rts {
		go func(r *amrt.Runtime) { done <- r.Barrier() }(r)
	}
	for i := 0; i < places; i++ {
		if err := <-done; err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println("dissemination barrier over TCP: OK")
}

// piSamples is the registered worker: count random points inside the unit
// quarter circle.
func piSamples(src int, arg []byte) []byte {
	seed := binary.BigEndian.Uint64(arg[:8])
	n := binary.BigEndian.Uint64(arg[8:])
	s := seed*0x9e3779b97f4a7c15 + 1
	var hits uint64
	for i := uint64(0); i < n; i++ {
		s ^= s << 13
		s ^= s >> 7
		s ^= s << 17
		x := float64(s>>11) / float64(1<<53)
		s ^= s << 13
		s ^= s >> 7
		s ^= s << 17
		y := float64(s>>11) / float64(1<<53)
		if x*x+y*y < 1 {
			hits++
		}
	}
	out := make([]byte, 8)
	binary.BigEndian.PutUint64(out, hits)
	return out
}
