module apgas

go 1.22
