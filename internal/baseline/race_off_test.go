//go:build !race

package baseline

const raceEnabled = false
