// Package baseline provides the "HPC Class 1" analogues for Table 1 of
// "X10 and APGAS at Petascale": direct implementations of the benchmark
// kernels that bypass the APGAS runtime entirely — no places, no finish,
// no transport; just goroutines and shared memory. On the paper's machine
// the Class 1 codes were hand-tuned C/assembly that "interface directly
// with the hardware device drivers bypassing the entire network stack";
// on this substrate, bypassing the runtime plays the same role: they
// bound what the X10-style implementations can hope to reach, so the
// X10/Class-1 performance ratios of Table 1 have a meaningful analogue.
package baseline

import (
	"math"
	"runtime"
	"sync"
	"time"

	"apgas/internal/kernels/fft"
	"apgas/internal/kernels/linalg"
	"apgas/internal/kernels/sha1rng"
)

// StreamTriad measures raw triad bandwidth with `workers` goroutines over
// disjoint vectors (workers <= 0 selects GOMAXPROCS). It returns aggregate
// GB/s.
func StreamTriad(wordsPerWorker, iterations, workers int) float64 {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	type vecs struct{ a, b, c []float64 }
	vs := make([]vecs, workers)
	for w := range vs {
		vs[w] = vecs{
			a: make([]float64, wordsPerWorker),
			b: make([]float64, wordsPerWorker),
			c: make([]float64, wordsPerWorker),
		}
		for i := 0; i < wordsPerWorker; i++ {
			vs[w].a[i] = 0 // pre-touch so page faults stay out of the timing
			vs[w].b[i] = 2
			vs[w].c[i] = 0.5
		}
	}
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(v vecs) {
			defer wg.Done()
			for it := 0; it < iterations; it++ {
				for i := range v.a {
					v.a[i] = v.b[i] + 3.0*v.c[i]
				}
			}
		}(vs[w])
	}
	wg.Wait()
	sec := time.Since(start).Seconds()
	bytes := float64(3*8*wordsPerWorker) * float64(iterations) * float64(workers)
	return bytes / sec / 1e9
}

// GUPS measures raw random-update throughput (giga-updates/s) on a shared
// table of 1<<logTable words. Like the HPCC Class 1 codes, concurrent
// updates are applied without synchronization — the benchmark rules allow
// up to 1% erroneous updates, which is exactly the liberty the optimized
// implementations exploit.
func GUPS(logTable, updatesPerWord, workers int) float64 {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	size := 1 << logTable
	table := make([]uint64, size)
	for i := range table {
		table[i] = uint64(i)
	}
	updates := int64(size) * int64(updatesPerWord)
	per := updates / int64(workers)
	mask := uint64(size - 1)
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			x := seed | 1
			for i := int64(0); i < per; i++ {
				x = x<<1 ^ (uint64(int64(x)>>63) & 7)
				table[x&mask] ^= x
			}
		}(uint64(w)*0x9e3779b97f4a7c15 + 1)
	}
	wg.Wait()
	sec := time.Since(start).Seconds()
	return float64(per) * float64(workers) / sec / 1e9
}

// FFT measures a single-goroutine transform of 1<<log2n points and returns
// Gflop/s (the Class 1 comparison in the paper is per-core).
func FFT(log2n int, seed uint64) float64 {
	n := 1 << log2n
	a := make([]complex128, n)
	z := seed
	for i := range a {
		z = z*6364136223846793005 + 1442695040888963407
		a[i] = complex(float64(z>>11)/float64(1<<53), 0.25)
	}
	plan, err := fft.NewPlan(n)
	if err != nil {
		return 0
	}
	start := time.Now()
	plan.Forward(a)
	sec := time.Since(start).Seconds()
	return fft.Flops(n) / sec / 1e9
}

// LU measures a single-goroutine blocked right-looking LU with partial
// pivoting of an n x n matrix and returns Gflop/s.
func LU(n, nb int, seed uint64) float64 {
	a := make([]float64, n*n)
	z := seed
	for i := range a {
		z = z*6364136223846793005 + 1442695040888963407
		a[i] = float64(z>>11)/float64(1<<53) - 0.5
	}
	piv := make([]int, n)
	start := time.Now()
	linalg.Getrf(n, nb, a, n, piv)
	sec := time.Since(start).Seconds()
	fn := float64(n)
	return (2.0 / 3.0 * fn * fn * fn) / sec / 1e9
}

// UTS measures the sequential traversal rate (million nodes per second)
// of the given geometric tree — "the performance of the sequential
// implementation (no parallelism, distribution, or load balancing)".
func UTS(tree sha1rng.Geometric) (mnodesPerSec float64, nodes uint64) {
	start := time.Now()
	n, _ := tree.CountSequential()
	sec := time.Since(start).Seconds()
	return float64(n) / sec / 1e6, n
}

// KMeansIterationsPerSec measures sequential Lloyd iterations over n
// points (k clusters, dim dimensions), returning iterations per second —
// a building block for per-core comparisons.
func KMeansIterationsPerSec(n, k, dim, iters int, seed uint64) float64 {
	points := make([]float64, n*dim)
	z := seed
	rnd := func() float64 {
		z = z*6364136223846793005 + 1442695040888963407
		return float64(z>>11) / float64(1<<53)
	}
	for i := range points {
		points[i] = rnd()
	}
	cent := make([]float64, k*dim)
	copy(cent, points[:k*dim])
	start := time.Now()
	for it := 0; it < iters; it++ {
		sums := make([]float64, k*dim)
		counts := make([]int64, k)
		for i := 0; i < n; i++ {
			pt := points[i*dim : (i+1)*dim]
			best, bestD := 0, math.Inf(1)
			for c := 0; c < k; c++ {
				cd := cent[c*dim : (c+1)*dim]
				d := 0.0
				for t := 0; t < dim; t++ {
					diff := pt[t] - cd[t]
					d += diff * diff
				}
				if d < bestD {
					bestD, best = d, c
				}
			}
			counts[best]++
			for t := 0; t < dim; t++ {
				sums[best*dim+t] += pt[t]
			}
		}
		for c := 0; c < k; c++ {
			if counts[c] > 0 {
				for t := 0; t < dim; t++ {
					cent[c*dim+t] = sums[c*dim+t] / float64(counts[c])
				}
			}
		}
	}
	return float64(iters) / time.Since(start).Seconds()
}
