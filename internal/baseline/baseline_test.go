package baseline

import (
	"testing"

	"apgas/internal/kernels/sha1rng"
)

func TestStreamTriadPositive(t *testing.T) {
	if gbs := StreamTriad(1<<12, 3, 2); gbs <= 0 {
		t.Fatalf("GB/s = %v", gbs)
	}
	if gbs := StreamTriad(1<<10, 1, 0); gbs <= 0 { // default workers
		t.Fatalf("GB/s = %v", gbs)
	}
}

func TestGUPSPositive(t *testing.T) {
	workers := 2
	if raceEnabled {
		// The multi-worker GUPS is unsynchronized on purpose (HPCC
		// Class 1 semantics); run single-worker under the detector.
		workers = 1
	}
	if gups := GUPS(12, 2, workers); gups <= 0 {
		t.Fatalf("GUPs = %v", gups)
	}
}

func TestFFTPositive(t *testing.T) {
	if g := FFT(10, 1); g <= 0 {
		t.Fatalf("Gflop/s = %v", g)
	}
	if g := FFT(0, 1); g < 0 {
		t.Fatalf("n=1: %v", g)
	}
}

func TestLUPositive(t *testing.T) {
	if g := LU(96, 16, 3); g <= 0 {
		t.Fatalf("Gflop/s = %v", g)
	}
	if g := LU(50, 16, 3); g <= 0 { // ragged blocks
		t.Fatalf("ragged Gflop/s = %v", g)
	}
}

func TestUTSMatchesKernel(t *testing.T) {
	tree := sha1rng.Geometric{B0: 4, Depth: 8, Seed: 19}
	rate, nodes := UTS(tree)
	want, _ := tree.CountSequential()
	if nodes != want {
		t.Fatalf("nodes = %d, want %d", nodes, want)
	}
	if rate <= 0 {
		t.Fatalf("rate = %v", rate)
	}
}

func TestKMeansPositive(t *testing.T) {
	if r := KMeansIterationsPerSec(500, 8, 4, 3, 7); r <= 0 {
		t.Fatalf("iters/s = %v", r)
	}
}
