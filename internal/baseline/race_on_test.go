//go:build race

package baseline

// raceEnabled reports whether the race detector is active; the GUPS
// baseline is deliberately unsynchronized (the liberty HPCC Class 1 codes
// take), so its multi-worker test would trip the detector by design.
const raceEnabled = true
