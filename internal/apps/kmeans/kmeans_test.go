package kmeans

import (
	"math"
	"testing"

	"apgas/internal/collectives"
	"apgas/internal/core"
)

func runKM(t *testing.T, places int, cfg Config) Result {
	t.Helper()
	rt, err := core.NewRuntime(core.Config{Places: places, CheckPatterns: true})
	if err != nil {
		t.Fatalf("NewRuntime: %v", err)
	}
	defer rt.Close()
	res, err := Run(rt, cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return res
}

func TestMatchesSequential(t *testing.T) {
	cfg := Config{PointsPerPlace: 500, Clusters: 16, Dim: 4, Iterations: 5, Seed: 9}
	for _, places := range []int{1, 2, 4} {
		res := runKM(t, places, cfg)
		wantCent, wantDist := Sequential(cfg, places)
		if math.Abs(res.Distortion-wantDist) > 1e-9*(1+wantDist) {
			t.Errorf("places=%d: distortion %v, sequential %v", places, res.Distortion, wantDist)
		}
		for i := range wantCent {
			if math.Abs(res.Centroids[i]-wantCent[i]) > 1e-9 {
				t.Errorf("places=%d: centroid[%d] = %v, want %v",
					places, i, res.Centroids[i], wantCent[i])
				break
			}
		}
	}
}

func TestEmulatedCollectives(t *testing.T) {
	cfg := Config{PointsPerPlace: 300, Clusters: 8, Dim: 3, Iterations: 3, Seed: 4,
		Mode: collectives.ModeEmulated}
	res := runKM(t, 4, cfg)
	_, wantDist := Sequential(cfg, 4)
	if math.Abs(res.Distortion-wantDist) > 1e-9*(1+wantDist) {
		t.Errorf("distortion %v, want %v", res.Distortion, wantDist)
	}
}

func TestDistortionDecreases(t *testing.T) {
	// Lloyd's algorithm: more iterations cannot increase distortion.
	base := Config{PointsPerPlace: 400, Clusters: 10, Dim: 5, Seed: 21}
	var prev float64 = math.Inf(1)
	for _, iters := range []int{1, 3, 6} {
		cfg := base
		cfg.Iterations = iters
		_, dist := Sequential(cfg, 2)
		if dist > prev+1e-12 {
			t.Errorf("distortion increased: %v -> %v at %d iters", prev, dist, iters)
		}
		prev = dist
	}
}

func TestValidation(t *testing.T) {
	rt, err := core.NewRuntime(core.Config{Places: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	for _, cfg := range []Config{
		{Clusters: 4, Dim: 2, Iterations: 1},
		{PointsPerPlace: 10, Dim: 2, Iterations: 1},
		{PointsPerPlace: 10, Clusters: 4, Iterations: 1},
		{PointsPerPlace: 10, Clusters: 4, Dim: 2},
	} {
		if _, err := Run(rt, cfg); err == nil {
			t.Errorf("bad config accepted: %+v", cfg)
		}
	}
}

func TestPointCoordStable(t *testing.T) {
	if pointCoord(1, 2, 3) != pointCoord(1, 2, 3) {
		t.Error("pointCoord not deterministic")
	}
	if v := pointCoord(1, 2, 3); v < 0 || v >= 1 {
		t.Errorf("pointCoord out of range: %v", v)
	}
}
