// Package kmeans implements the K-Means benchmark of §7: Lloyd's
// algorithm over points partitioned across places. Each iteration
// classifies the local points by nearest centroid and accumulates
// per-cluster position sums, then "two All-Reduce collectives compute the
// averages across all places" — one for the coordinate sums, one for the
// cluster counts — yielding the updated centroids for the next iteration.
//
// The paper's configuration: 40,000*p points for p places, 4,096 clusters,
// dimension 12, 5 iterations (scaled down by default here).
package kmeans

import (
	"fmt"
	"math"
	"time"

	"apgas/internal/collectives"
	"apgas/internal/core"
)

// Config describes one K-Means run.
type Config struct {
	// PointsPerPlace is the number of points each place owns (weak
	// scaling: total points grow with places).
	PointsPerPlace int
	// Clusters is k.
	Clusters int
	// Dim is the point dimensionality (the paper used 12).
	Dim int
	// Iterations is the number of Lloyd iterations (the paper timed 5).
	Iterations int
	// Seed drives reproducible point generation.
	Seed uint64
	// Mode selects the collectives implementation.
	Mode collectives.Mode
}

// Result is one run's outcome.
type Result struct {
	Seconds float64
	// Distortion is the final mean squared distance to assigned
	// centroids (for verification: non-increasing across iterations).
	Distortion float64
	// Centroids holds the final centroids, row-major k x dim.
	Centroids []float64
}

// pointCoord generates coordinate d of global point i reproducibly.
func pointCoord(seed uint64, i, d int) float64 {
	z := seed ^ (uint64(i)+1)*0x9e3779b97f4a7c15 ^ (uint64(d)+1)*0x94d049bb133111eb
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	return float64(z>>11) / float64(1<<53)
}

// Run executes the benchmark.
func Run(rt *core.Runtime, cfg Config) (Result, error) {
	if cfg.PointsPerPlace <= 0 || cfg.Clusters <= 0 || cfg.Dim <= 0 || cfg.Iterations <= 0 {
		return Result{}, fmt.Errorf("kmeans: bad config %+v", cfg)
	}
	places := rt.NumPlaces()
	k, dim := cfg.Clusters, cfg.Dim

	type local struct {
		points []float64 // PointsPerPlace x dim
	}
	locals := core.NewPlaceLocal(rt, func(p core.Place) *local {
		pts := make([]float64, cfg.PointsPerPlace*dim)
		base := int(p) * cfg.PointsPerPlace
		for i := 0; i < cfg.PointsPerPlace; i++ {
			for d := 0; d < dim; d++ {
				pts[i*dim+d] = pointCoord(cfg.Seed, base+i, d)
			}
		}
		return &local{points: pts}
	})
	team := collectives.New(rt, core.WorldGroup(rt), cfg.Mode)

	// Initial centroids: the first k global points (the standard Lloyd
	// arbitrary initialization; deterministic here).
	centroids := make([]float64, k*dim)
	for c := 0; c < k; c++ {
		for d := 0; d < dim; d++ {
			centroids[c*dim+d] = pointCoord(cfg.Seed, c, d)
		}
	}

	var seconds float64
	finalDistortion := math.Inf(1)
	rerr := rt.Run(func(ctx *core.Ctx) {
		group := core.WorldGroup(rt)
		if err := group.Broadcast(ctx, func(cc *core.Ctx) { locals.Get(cc) }); err != nil {
			panic(err)
		}
		start := time.Now()
		var distortion float64
		err := ctx.FinishPragma(core.PatternSPMD, func(cs *core.Ctx) {
			for _, p := range cs.Places() {
				cs.AtAsync(p, func(cc *core.Ctx) {
					cent := append([]float64(nil), centroids...)
					me := locals.Get(cc)
					var localDist float64
					for it := 0; it < cfg.Iterations; it++ {
						sums := make([]float64, k*dim)
						counts := make([]int64, k)
						localDist = assign(me.points, cent, dim, sums, counts)
						gs := collectives.AllReduce(team, cc, sums,
							func(a, b float64) float64 { return a + b })
						gc := collectives.AllReduce(team, cc, counts,
							func(a, b int64) int64 { return a + b })
						for c := 0; c < k; c++ {
							if gc[c] == 0 {
								continue // empty cluster keeps its centroid
							}
							inv := 1 / float64(gc[c])
							for d := 0; d < dim; d++ {
								cent[c*dim+d] = gs[c*dim+d] * inv
							}
						}
					}
					gd := collectives.AllReduce(team, cc, []float64{localDist},
						func(a, b float64) float64 { return a + b })
					if cc.Place() == 0 {
						distortion = gd[0] / float64(cfg.PointsPerPlace*places)
						copy(centroids, cent)
					}
				})
			}
		})
		if err != nil {
			panic(err)
		}
		seconds = time.Since(start).Seconds()
		finalDistortion = distortion
	})
	if rerr != nil {
		return Result{}, fmt.Errorf("kmeans: %w", rerr)
	}
	return Result{Seconds: seconds, Distortion: finalDistortion, Centroids: centroids}, nil
}

// assign classifies points by nearest centroid, accumulating coordinate
// sums and counts; it returns the summed squared distances.
func assign(points, cent []float64, dim int, sums []float64, counts []int64) float64 {
	k := len(counts)
	n := len(points) / dim
	total := 0.0
	for i := 0; i < n; i++ {
		pt := points[i*dim : (i+1)*dim]
		best, bestD := 0, math.Inf(1)
		for c := 0; c < k; c++ {
			cd := cent[c*dim : (c+1)*dim]
			d := 0.0
			for t := 0; t < dim; t++ {
				diff := pt[t] - cd[t]
				d += diff * diff
				if d >= bestD {
					break
				}
			}
			if d < bestD {
				bestD = d
				best = c
			}
		}
		counts[best]++
		cs := sums[best*dim : (best+1)*dim]
		for t := 0; t < dim; t++ {
			cs[t] += pt[t]
		}
		total += bestD
	}
	return total
}

// Sequential runs the same algorithm on one goroutine over the full point
// set; tests compare it against the distributed run.
func Sequential(cfg Config, places int) ([]float64, float64) {
	k, dim := cfg.Clusters, cfg.Dim
	n := cfg.PointsPerPlace * places
	points := make([]float64, n*dim)
	for i := 0; i < n; i++ {
		for d := 0; d < dim; d++ {
			points[i*dim+d] = pointCoord(cfg.Seed, i, d)
		}
	}
	cent := make([]float64, k*dim)
	for c := 0; c < k; c++ {
		for d := 0; d < dim; d++ {
			cent[c*dim+d] = pointCoord(cfg.Seed, c, d)
		}
	}
	var dist float64
	for it := 0; it < cfg.Iterations; it++ {
		sums := make([]float64, k*dim)
		counts := make([]int64, k)
		dist = assign(points, cent, dim, sums, counts)
		for c := 0; c < k; c++ {
			if counts[c] == 0 {
				continue
			}
			inv := 1 / float64(counts[c])
			for d := 0; d < dim; d++ {
				cent[c*dim+d] = sums[c*dim+d] * inv
			}
		}
	}
	return cent, dist / float64(n)
}
