package bc

import (
	"math"
	"testing"

	"apgas/internal/core"
	"apgas/internal/glb"
	"apgas/internal/kernels/rmat"
)

func cfgSmall() Config {
	return Config{
		Graph:    rmat.Params{Scale: 7, EdgeFactor: 6, Seed: 11},
		PermSeed: 5,
	}
}

func maxDiff(a, b []float64) float64 {
	d := 0.0
	for i := range a {
		if v := math.Abs(a[i] - b[i]); v > d {
			d = v
		}
	}
	return d
}

func TestStaticMatchesSequential(t *testing.T) {
	cfg := cfgSmall()
	want := Sequential(cfg)
	for _, places := range []int{1, 2, 4} {
		rt, err := core.NewRuntime(core.Config{Places: places, CheckPatterns: true})
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(rt, cfg)
		rt.Close()
		if err != nil {
			t.Fatalf("places=%d: %v", places, err)
		}
		if d := maxDiff(res.Centrality, want); d > 1e-6 {
			t.Errorf("places=%d: centrality differs by %g", places, d)
		}
		if res.EdgesPerSecond <= 0 {
			t.Errorf("places=%d: rate %v", places, res.EdgesPerSecond)
		}
	}
}

func TestGLBMatchesSequential(t *testing.T) {
	cfg := cfgSmall()
	cfg.GLB = glb.Config{Quantum: 4}
	want := Sequential(cfg)
	for _, places := range []int{1, 4} {
		rt, err := core.NewRuntime(core.Config{Places: places, CheckPatterns: true})
		if err != nil {
			t.Fatal(err)
		}
		res, err := RunGLB(rt, cfg)
		rt.Close()
		if err != nil {
			t.Fatalf("places=%d: %v", places, err)
		}
		if d := maxDiff(res.Centrality, want); d > 1e-6 {
			t.Errorf("places=%d: GLB centrality differs by %g", places, d)
		}
	}
}

func TestSourceSampling(t *testing.T) {
	cfg := cfgSmall()
	cfg.Sources = 10
	rt, err := core.NewRuntime(core.Config{Places: 2, CheckPatterns: true})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	res, err := Run(rt, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Sources != 10 {
		t.Errorf("Sources = %d", res.Sources)
	}
	want := Sequential(cfg)
	if d := maxDiff(res.Centrality, want); d > 1e-6 {
		t.Errorf("sampled centrality differs by %g", d)
	}
}

// TestBrandesStarGraph checks centrality on a graph with a known answer
// built by driving the generator aside: verify via Sequential on a tiny
// R-MAT and cross-check basic properties instead (center of mass).
func TestCentralityProperties(t *testing.T) {
	cfg := cfgSmall()
	cent := Sequential(cfg)
	g := rmat.Generate(cfg.Graph)
	for v, x := range cent {
		if x < 0 {
			t.Fatalf("negative centrality at %d: %v", v, x)
		}
		if g.Degree(v) == 0 && x != 0 {
			t.Fatalf("isolated vertex %d has centrality %v", v, x)
		}
	}
	// Undirected Brandes without normalization counts each pair twice;
	// total centrality equals sum over pairs of (path-interior vertices),
	// which must be positive for a connected-enough graph.
	total := 0.0
	for _, x := range cent {
		total += x
	}
	if total <= 0 {
		t.Error("zero total centrality")
	}
}

func TestPermutationIsPermutation(t *testing.T) {
	p := permutation(100, 7)
	seen := make([]bool, 100)
	for _, v := range p {
		if seen[v] {
			t.Fatalf("duplicate %d", v)
		}
		seen[v] = true
	}
	q := permutation(100, 8)
	same := true
	for i := range p {
		if p[i] != q[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds gave identical permutations")
	}
}

// TestSourceBagSplitConservation: bag splitting preserves the source set.
func TestSourceBagSplitConservation(t *testing.T) {
	g := rmat.Generate(rmat.Params{Scale: 5, Seed: 1})
	perm := permutation(g.N, 2)
	b := &sourceBag{g: g, perm: perm, lo: 0, hi: 20,
		bc: make([]float64, g.N), ws: newWorkspace(g.N)}
	b.Process(3)
	loot := b.Split().(*sourceBag)
	loot.bc = make([]float64, g.N)
	loot.ws = newWorkspace(g.N)
	total := b.Size() + loot.Size()
	if total != 17 {
		t.Fatalf("sources after split = %d, want 17", total)
	}
	for b.Process(100) > 0 {
	}
	for loot.Process(100) > 0 {
	}
	// All 20 sources processed exactly once: 3 before the split plus the
	// 17 split across the two bags.
	if b.Sources+loot.Sources != 20 {
		t.Fatalf("processed %d, want 20", b.Sources+loot.Sources)
	}
}
