// Package bc implements the Betweenness Centrality benchmark of §7:
// Brandes' algorithm over an undirected R-MAT graph. As in the paper, "the
// graph is replicated in every place" (even a small graph incurs heavy
// computation) and "the vertices are randomly partitioned across places;
// each place computes the centrality measure for all its vertices" — the
// static scheme whose growing imbalance motivated the later GLB-based
// variant, which this package also provides (RunGLB).
package bc

import (
	"fmt"
	"time"

	"apgas/internal/core"
	"apgas/internal/glb"
	"apgas/internal/kernels/rmat"
)

// Config describes one BC run.
type Config struct {
	// Graph are the R-MAT generator parameters.
	Graph rmat.Params
	// Sources bounds the number of source vertices processed (0 = all
	// vertices, the full Brandes computation; the benchmark typically
	// samples). Sources are the first vertices of the random permutation.
	Sources int
	// PermSeed drives the random vertex partition.
	PermSeed uint64
	// GLB tunes the balancer for RunGLB.
	GLB glb.Config
}

// Result is one run's outcome.
type Result struct {
	Vertices, Edges int
	Sources         int
	Seconds         float64
	// EdgesPerSecond is the benchmark metric: edge traversals per second
	// (sources x edges x 2 / time, both BFS directions counted once).
	EdgesPerSecond float64
	// Centrality holds the accumulated betweenness scores.
	Centrality []float64
}

// Run executes the static-partition variant.
func Run(rt *core.Runtime, cfg Config) (Result, error) {
	g := rmat.Generate(cfg.Graph)
	perm := permutation(g.N, cfg.PermSeed)
	sources := cfg.Sources
	if sources <= 0 || sources > g.N {
		sources = g.N
	}
	places := rt.NumPlaces()

	// Replicate per-place accumulation buffers; the graph itself is a
	// shared read-only structure (replication is free in-process).
	partials := make([][]float64, places)
	var seconds float64
	rerr := rt.Run(func(ctx *core.Ctx) {
		start := time.Now()
		err := ctx.FinishPragma(core.PatternSPMD, func(cs *core.Ctx) {
			for _, p := range cs.Places() {
				p := p
				cs.AtAsync(p, func(cc *core.Ctx) {
					// This place's sources: a strided share of the random
					// permutation prefix.
					bcLocal := make([]float64, g.N)
					ws := newWorkspace(g.N)
					for s := int(p); s < sources; s += places {
						brandesSource(g, perm[s], bcLocal, ws)
					}
					partials[p] = bcLocal
				})
			}
		})
		if err != nil {
			panic(err)
		}
		seconds = time.Since(start).Seconds()
	})
	if rerr != nil {
		return Result{}, fmt.Errorf("bc: %w", rerr)
	}
	centrality := make([]float64, g.N)
	for _, part := range partials {
		for v, x := range part {
			centrality[v] += x
		}
	}
	return Result{
		Vertices: g.N, Edges: g.NumEdges(), Sources: sources,
		Seconds:        seconds,
		EdgesPerSecond: float64(sources) * float64(len(g.Adj)) / seconds,
		Centrality:     centrality,
	}, nil
}

// sourceBag is the GLB task bag for the dynamic variant: an interval of
// source indices into the permutation, plus this place's partial
// centrality accumulator.
type sourceBag struct {
	g       *rmat.Graph
	perm    []int32
	lo, hi  int
	extra   [][2]int // merged loot intervals
	bc      []float64
	ws      *workspace
	Sources int64 // processed source count
}

func (b *sourceBag) Process(quantum int) int {
	done := 0
	for done < quantum {
		s, ok := b.pop()
		if !ok {
			break
		}
		brandesSource(b.g, b.perm[s], b.bc, b.ws)
		b.Sources++
		done++
	}
	return done
}

func (b *sourceBag) pop() (int, bool) {
	if b.lo < b.hi {
		s := b.lo
		b.lo++
		return s, true
	}
	for len(b.extra) > 0 {
		iv := &b.extra[len(b.extra)-1]
		if iv[0] < iv[1] {
			s := iv[0]
			iv[0]++
			return s, true
		}
		b.extra = b.extra[:len(b.extra)-1]
	}
	return 0, false
}

func (b *sourceBag) Size() int64 {
	n := int64(b.hi - b.lo)
	for _, iv := range b.extra {
		n += int64(iv[1] - iv[0])
	}
	return n
}

func (b *sourceBag) Split() glb.TaskBag {
	if b.Size() < 2 {
		return nil
	}
	loot := &sourceBag{g: b.g, perm: b.perm}
	if half := (b.hi - b.lo) / 2; half > 0 {
		loot.lo, loot.hi = b.hi-half, b.hi
		b.hi -= half
		return loot
	}
	// Main interval exhausted: hand over half of the last extra.
	iv := &b.extra[len(b.extra)-1]
	half := (iv[1] - iv[0]) / 2
	loot.lo, loot.hi = iv[1]-half, iv[1]
	iv[1] -= half
	return loot
}

func (b *sourceBag) Merge(loot glb.TaskBag) {
	lb := loot.(*sourceBag)
	if lb.lo < lb.hi {
		b.extra = append(b.extra, [2]int{lb.lo, lb.hi})
	}
	b.extra = append(b.extra, lb.extra...)
	b.Sources += lb.Sources
}

// RunGLB executes the dynamically balanced variant: the source vertices
// form a GLB task bag, so places that drew expensive sources shed work to
// idle ones — the refinement the paper reports as "the resulting code has
// better efficiency".
func RunGLB(rt *core.Runtime, cfg Config) (Result, error) {
	g := rmat.Generate(cfg.Graph)
	perm := permutation(g.N, cfg.PermSeed)
	sources := cfg.Sources
	if sources <= 0 || sources > g.N {
		sources = g.N
	}
	places := rt.NumPlaces()

	bags := make([]*sourceBag, places)
	bal := glb.New(rt, cfg.GLB, func(p core.Place) glb.TaskBag {
		// Initial static split of the source range; GLB rebalances.
		lo := int(p) * sources / places
		hi := (int(p) + 1) * sources / places
		b := &sourceBag{g: g, perm: perm, lo: lo, hi: hi,
			bc: make([]float64, g.N), ws: newWorkspace(g.N)}
		bags[p] = b
		return b
	})
	var seconds float64
	start := time.Now()
	rerr := rt.Run(func(ctx *core.Ctx) {
		if err := bal.Run(ctx); err != nil {
			panic(err)
		}
	})
	seconds = time.Since(start).Seconds()
	if rerr != nil {
		return Result{}, fmt.Errorf("bc: %w", rerr)
	}
	centrality := make([]float64, g.N)
	for _, b := range bags {
		for v, x := range b.bc {
			centrality[v] += x
		}
	}
	return Result{
		Vertices: g.N, Edges: g.NumEdges(), Sources: sources,
		Seconds:        seconds,
		EdgesPerSecond: float64(sources) * float64(len(g.Adj)) / seconds,
		Centrality:     centrality,
	}, nil
}

// workspace holds Brandes per-source scratch, reused across sources.
type workspace struct {
	sigma []float64
	dist  []int32
	delta []float64
	queue []int32
	stack []int32
}

func newWorkspace(n int) *workspace {
	return &workspace{
		sigma: make([]float64, n),
		dist:  make([]int32, n),
		delta: make([]float64, n),
		queue: make([]int32, 0, n),
		stack: make([]int32, 0, n),
	}
}

// brandesSource accumulates source s's contribution to bc (Brandes 2001,
// unweighted): BFS computing shortest-path counts, then dependency
// accumulation in reverse BFS order.
func brandesSource(g *rmat.Graph, s int32, bc []float64, ws *workspace) {
	for i := range ws.dist {
		ws.dist[i] = -1
		ws.sigma[i] = 0
		ws.delta[i] = 0
	}
	ws.queue = ws.queue[:0]
	ws.stack = ws.stack[:0]

	ws.dist[s] = 0
	ws.sigma[s] = 1
	ws.queue = append(ws.queue, s)
	for qi := 0; qi < len(ws.queue); qi++ {
		v := ws.queue[qi]
		ws.stack = append(ws.stack, v)
		for _, w := range g.Neighbors(v) {
			if ws.dist[w] < 0 {
				ws.dist[w] = ws.dist[v] + 1
				ws.queue = append(ws.queue, w)
			}
			if ws.dist[w] == ws.dist[v]+1 {
				ws.sigma[w] += ws.sigma[v]
			}
		}
	}
	for i := len(ws.stack) - 1; i >= 0; i-- {
		w := ws.stack[i]
		for _, v := range g.Neighbors(w) {
			if ws.dist[v] == ws.dist[w]-1 {
				ws.delta[v] += ws.sigma[v] / ws.sigma[w] * (1 + ws.delta[w])
			}
		}
		if w != s {
			bc[w] += ws.delta[w]
		}
	}
}

// Sequential computes the exact centrality on one goroutine (the test
// oracle).
func Sequential(cfg Config) []float64 {
	g := rmat.Generate(cfg.Graph)
	perm := permutation(g.N, cfg.PermSeed)
	sources := cfg.Sources
	if sources <= 0 || sources > g.N {
		sources = g.N
	}
	bc := make([]float64, g.N)
	ws := newWorkspace(g.N)
	for s := 0; s < sources; s++ {
		brandesSource(g, perm[s], bc, ws)
	}
	return bc
}

// permutation returns a seeded random permutation of [0, n) — the random
// vertex partition that "mitigates the imbalance, but only to a degree".
func permutation(n int, seed uint64) []int32 {
	p := make([]int32, n)
	for i := range p {
		p[i] = int32(i)
	}
	s := seed ^ 0x2545f4914f6cdd1d
	for i := n - 1; i > 0; i-- {
		s ^= s << 13
		s ^= s >> 7
		s ^= s << 17
		j := int(s % uint64(i+1))
		p[i], p[j] = p[j], p[i]
	}
	return p
}
