package fftbench

import (
	"testing"

	"apgas/internal/collectives"
	"apgas/internal/core"
)

func runFFT(t *testing.T, places int, cfg Config) Result {
	t.Helper()
	rt, err := core.NewRuntime(core.Config{Places: places, CheckPatterns: true})
	if err != nil {
		t.Fatalf("NewRuntime: %v", err)
	}
	defer rt.Close()
	res, err := Run(rt, cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return res
}

func TestDistributedFFTCorrect(t *testing.T) {
	for _, c := range []struct{ places, log2n int }{
		{1, 6}, {1, 9}, {2, 8}, {4, 8}, {4, 12}, {8, 10},
	} {
		res := runFFT(t, c.places, Config{Log2N: c.log2n, Seed: 11})
		tol := 1e-8 * float64(int(1)<<c.log2n)
		if res.MaxErr > tol {
			t.Errorf("places=%d log2n=%d: err %g > %g", c.places, c.log2n, res.MaxErr, tol)
		}
		if res.Gflops <= 0 {
			t.Errorf("places=%d: gflops %v", c.places, res.Gflops)
		}
	}
}

func TestDistributedFFTEmulatedCollectives(t *testing.T) {
	res := runFFT(t, 4, Config{Log2N: 10, Seed: 3, Mode: collectives.ModeEmulated})
	if res.MaxErr > 1e-5 {
		t.Errorf("emulated: err %g", res.MaxErr)
	}
}

func TestOddLogSizes(t *testing.T) {
	// Odd Log2N: R != C exercises the rectangular path.
	res := runFFT(t, 2, Config{Log2N: 9, Seed: 5})
	if res.MaxErr > 1e-6 {
		t.Errorf("odd size: err %g", res.MaxErr)
	}
}

func TestRunValidation(t *testing.T) {
	rt, err := core.NewRuntime(core.Config{Places: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	if _, err := Run(rt, Config{Log2N: 8}); err == nil {
		t.Error("non-power-of-two places accepted")
	}
	rt2, _ := core.NewRuntime(core.Config{Places: 8})
	defer rt2.Close()
	if _, err := Run(rt2, Config{Log2N: 4}); err == nil {
		t.Error("too many places for tiny transform accepted")
	}
}

func TestMaxPlaces(t *testing.T) {
	if MaxPlaces(10) != 32 || MaxPlaces(9) != 16 || MaxPlaces(4) != 4 {
		t.Errorf("MaxPlaces wrong: %d %d %d", MaxPlaces(10), MaxPlaces(9), MaxPlaces(4))
	}
}
