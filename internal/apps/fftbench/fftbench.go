// Package fftbench implements the Global FFT benchmark of §5.1: a 1-D
// discrete Fourier transform of double-precision complex values evenly
// distributed across the system, computed with the transpose-based
// six-step algorithm exactly as the paper describes — "global transpose,
// per-row FFTs, global transpose, multiplication with twiddle factors,
// per-row FFTs, and a global transpose", where each global transposition
// is "local data shuffling, followed by an All-To-All collective, then
// another round of local data shuffling".
package fftbench

import (
	"fmt"
	"time"

	"apgas/internal/collectives"
	"apgas/internal/core"
	"apgas/internal/kernels/fft"
)

// Config describes one Global FFT run.
type Config struct {
	// Log2N is the transform size exponent: N = 1 << Log2N points.
	Log2N int
	// Mode selects the collectives implementation.
	Mode collectives.Mode
	// Seed drives the reproducible input signal.
	Seed uint64
}

// Result is one run's outcome.
type Result struct {
	N       int
	Seconds float64
	Gflops  float64
	// MaxErr is the maximum |X - X_ref| against a sequential transform
	// of the same input (computed outside the timed section).
	MaxErr float64
}

// input generates point i of the reproducible input signal.
func input(seed uint64, i int) complex128 {
	z := seed ^ (uint64(i)+1)*0x9e3779b97f4a7c15
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	re := float64(z>>11)/float64(1<<53) - 0.5
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	im := float64(z>>11)/float64(1<<53) - 0.5
	return complex(re, im)
}

// Run executes the distributed FFT and verifies against a sequential
// transform. The place count must be a power of two dividing sqrt(N)
// rounded down (P <= C and P <= R below).
func Run(rt *core.Runtime, cfg Config) (Result, error) {
	places := rt.NumPlaces()
	if places&(places-1) != 0 {
		return Result{}, fmt.Errorf("fftbench: places=%d must be a power of two", places)
	}
	n := 1 << cfg.Log2N
	// Factor N = R*C with R, C powers of two as square as possible.
	logR := cfg.Log2N / 2
	logC := cfg.Log2N - logR
	r, c := 1<<logR, 1<<logC
	if places > r || places > c {
		return Result{}, fmt.Errorf("fftbench: %d places exceed matrix dims %dx%d", places, r, c)
	}

	team := collectives.New(rt, core.WorldGroup(rt), cfg.Mode)
	// Local storage: each place holds R/P rows of the R x C view, then
	// C/P rows of the transposed C x R view, alternating through phases.
	rowsR := r / places // rows per place in R x C view
	rowsC := c / places // rows per place in C x R view

	type local struct {
		data []complex128 // current local rows, row-major
	}
	locals := core.NewPlaceLocal(rt, func(p core.Place) *local {
		// Initial distribution: rows [p*rowsR, (p+1)*rowsR) of the R x C
		// matrix A[i][j] = x[i*C + j].
		d := make([]complex128, rowsR*c)
		base := int(p) * rowsR * c
		for t := range d {
			d[t] = input(cfg.Seed, base+t)
		}
		return &local{data: d}
	})

	var seconds float64
	err := rt.Run(func(ctx *core.Ctx) {
		world := core.WorldGroup(rt)
		if err := world.Broadcast(ctx, func(cc *core.Ctx) { locals.Get(cc) }); err != nil {
			panic(err)
		}
		planR, err := fft.NewPlan(r)
		if err != nil {
			panic(err)
		}
		planC, err := fft.NewPlan(c)
		if err != nil {
			panic(err)
		}
		start := time.Now()
		ferr := ctx.FinishPragma(core.PatternSPMD, func(cs *core.Ctx) {
			for _, p := range cs.Places() {
				cs.AtAsync(p, func(cc *core.Ctx) {
					me := locals.Get(cc)
					// Step 1: transpose R x C -> C x R.
					me.data = transpose(cc, team, me.data, rowsR, c, places)
					// Step 2: length-R FFT on each local row.
					for row := 0; row < rowsC; row++ {
						planR.Forward(me.data[row*r : (row+1)*r])
					}
					// Step 3: twiddle B[j][p] *= w_N^(j*p).
					jBase := int(cc.Place()) * rowsC
					for row := 0; row < rowsC; row++ {
						j := jBase + row
						for pIdx := 0; pIdx < r; pIdx++ {
							me.data[row*r+pIdx] *= fft.Twiddle(n, j*pIdx)
						}
					}
					// Step 4: transpose C x R -> R x C.
					me.data = transpose(cc, team, me.data, rowsC, r, places)
					// Step 5: length-C FFT on each local row.
					for row := 0; row < rowsR; row++ {
						planC.Forward(me.data[row*c : (row+1)*c])
					}
					// Step 6: transpose R x C -> C x R; the result rows
					// are X[q*R + p] in natural order.
					me.data = transpose(cc, team, me.data, rowsR, c, places)
				})
			}
		})
		if ferr != nil {
			panic(ferr)
		}
		seconds = time.Since(start).Seconds()
	})
	if err != nil {
		return Result{}, fmt.Errorf("fftbench: %w", err)
	}

	maxErr := verify(cfg, n, places, rowsC, r, func(p, t int) complex128 {
		return locals.At(core.Place(p)).data[t]
	})
	return Result{
		N:       n,
		Seconds: seconds,
		Gflops:  fft.Flops(n) / seconds / 1e9,
		MaxErr:  maxErr,
	}, nil
}

// transpose redistributes a row-distributed M x K matrix (each of P places
// holds rows (M/P) x K, row-major) into its K x M transpose (each place
// ends with (K/P) x M): local shuffle into per-destination blocks, an
// all-to-all, and a second local shuffle.
func transpose(ctx *core.Ctx, team *collectives.Team, data []complex128, myRows, k, places int) []complex128 {
	kLocal := k / places // transposed rows per place
	// Shuffle 1: chunk for destination d = my rows x columns
	// [d*kLocal, (d+1)*kLocal), transposed so it lands row-major.
	send := make([][]complex128, places)
	for d := 0; d < places; d++ {
		chunk := make([]complex128, kLocal*myRows)
		for col := 0; col < kLocal; col++ {
			gcol := d*kLocal + col
			for row := 0; row < myRows; row++ {
				chunk[col*myRows+row] = data[row*k+gcol]
			}
		}
		send[d] = chunk
	}
	recv := collectives.AllToAll(team, ctx, send)
	// Shuffle 2: received chunk from source s holds my kLocal rows'
	// segment of columns that s owned: rows local, cols [s*myRows, ...).
	m := myRows * places // original global rows = transposed row length
	out := make([]complex128, kLocal*m)
	for s := 0; s < places; s++ {
		chunk := recv[s]
		for col := 0; col < kLocal; col++ {
			copy(out[col*m+s*myRows:col*m+(s+1)*myRows], chunk[col*myRows:(col+1)*myRows])
		}
	}
	return out
}

// verify compares a sample (or all, for small N) of the distributed result
// against a sequential transform of the regenerated input.
func verify(cfg Config, n, places, rowsC, r int, at func(p, t int) complex128) float64 {
	ref := make([]complex128, n)
	for i := range ref {
		ref[i] = input(cfg.Seed, i)
	}
	plan, err := fft.NewPlan(n)
	if err != nil {
		return -1
	}
	plan.Forward(ref)
	maxErr := 0.0
	// The final layout: place p holds rows [p*rowsC, (p+1)*rowsC) of the
	// C x R result, row q of which is X[q*R : q*R+R].
	for p := 0; p < places; p++ {
		for row := 0; row < rowsC; row++ {
			q := p*rowsC + row
			for pi := 0; pi < r; pi++ {
				diff := at(p, row*r+pi) - ref[q*r+pi]
				if e := abs(diff); e > maxErr {
					maxErr = e
				}
			}
		}
	}
	return maxErr
}

func abs(z complex128) float64 {
	re, im := real(z), imag(z)
	if re < 0 {
		re = -re
	}
	if im < 0 {
		im = -im
	}
	if re > im {
		return re + im/2 // cheap upper-bound norm; fine for tolerances
	}
	return im + re/2
}

// MaxPlaces returns the largest power-of-two place count usable for a
// transform of size 1<<log2n.
func MaxPlaces(log2n int) int {
	logR := log2n / 2
	return 1 << logR
}
