// Package randomaccess implements Global RandomAccess (GUPS) from §5.1:
// XOR updates to random locations of a table distributed across all
// places. The implementation follows the paper's: the table lives in a
// congruent (symmetric) array — the same handle addresses every place's
// fragment, as congruent allocation guarantees on the Power 775 — and the
// updates use the Torrent-style "GUPS" remote atomic XOR, batched with the
// 1,024-update look-ahead the HPCC rules permit. Termination of all
// in-flight updates is detected by a single enclosing finish.
package randomaccess

import (
	"fmt"
	"math/bits"
	"time"

	"apgas/internal/congruent"
	"apgas/internal/core"
)

// poly is the HPCC RandomAccess LFSR polynomial; period is its cycle
// length. The update stream is x_{i+1} = (x_i << 1) ^ (x_i high-bit ? poly
// : 0), split across places with the Starts jump-ahead.
const (
	poly   = uint64(0x0000000000000007)
	period = int64(1317624576693539401)
)

// next advances the LFSR by one step.
func next(x uint64) uint64 {
	v := x << 1
	if int64(x) < 0 {
		v ^= poly
	}
	return v
}

// Starts returns the n-th value of the HPCC RandomAccess pseudo-random
// stream (jump-ahead by GF(2) matrix exponentiation), so each place can
// generate its slice of the global update sequence independently.
func Starts(n int64) uint64 {
	for n < 0 {
		n += period
	}
	for n > period {
		n -= period
	}
	if n == 0 {
		return 0x1
	}
	var m2 [64]uint64
	temp := uint64(0x1)
	for i := 0; i < 64; i++ {
		m2[i] = temp
		temp = next(next(temp))
	}
	i := 62
	for ; i >= 0; i-- {
		if (n>>uint(i))&1 == 1 {
			break
		}
	}
	ran := uint64(0x2)
	for i > 0 {
		temp = 0
		for j := 0; j < 64; j++ {
			if (ran>>uint(j))&1 == 1 {
				temp ^= m2[j]
			}
		}
		ran = temp
		i--
		if (n>>uint(i))&1 == 1 {
			ran = next(ran)
		}
	}
	return ran
}

// Config describes one RandomAccess run.
type Config struct {
	// Log2TablePerPlace sets each place's fragment to 1<<Log2TablePerPlace
	// words (the paper used 2 GB per place; scale down for simulation).
	Log2TablePerPlace int
	// UpdatesPerWord is the update-to-table-size ratio (HPCC uses 4).
	UpdatesPerWord int
	// Batch is the look-ahead batch size (HPCC permits up to 1024).
	Batch int
	// Verify re-runs the update sequence and checks the table returns to
	// its initial contents (the XOR involution check of the HPCC rules).
	Verify bool
}

// Result is one run's outcome.
type Result struct {
	TableWords int64
	Updates    int64
	Seconds    float64
	GUPs       float64 // giga-updates per second
	Verified   bool
	Errors     int64 // mismatched words after verification
}

// Run executes the benchmark on the runtime.
func Run(rt *core.Runtime, cfg Config) (Result, error) {
	places := rt.NumPlaces()
	if places&(places-1) != 0 {
		return Result{}, fmt.Errorf("randomaccess: places=%d must be a power of two", places)
	}
	if cfg.Log2TablePerPlace <= 0 {
		return Result{}, fmt.Errorf("randomaccess: bad table size exponent %d", cfg.Log2TablePerPlace)
	}
	if cfg.UpdatesPerWord <= 0 {
		cfg.UpdatesPerWord = 4
	}
	if cfg.Batch <= 0 || cfg.Batch > 1024 {
		cfg.Batch = 1024
	}
	perPlace := 1 << cfg.Log2TablePerPlace
	tableWords := int64(perPlace) * int64(places)
	logTable := cfg.Log2TablePerPlace + bits.TrailingZeros(uint(places))
	updates := tableWords * int64(cfg.UpdatesPerWord)

	alloc := congruent.NewAllocator(rt)
	table, err := congruent.NewArray[uint64](alloc, perPlace)
	if err != nil {
		return Result{}, err
	}
	// T[i] = i globally.
	for p := 0; p < places; p++ {
		frag := table.Fragment(core.Place(p))
		base := uint64(p * perPlace)
		for i := range frag {
			frag[i] = base + uint64(i)
		}
	}

	pass := func(ctx *core.Ctx) error {
		return ctx.Finish(func(c *core.Ctx) {
			for _, p := range c.Places() {
				p := p
				c.AtAsync(p, func(cc *core.Ctx) {
					updatePass(cc, table, int64(p), int64(places), updates, logTable,
						cfg.Log2TablePerPlace, cfg.Batch)
				})
			}
		})
	}

	var seconds float64
	var errors int64
	verified := false
	rerr := rt.Run(func(ctx *core.Ctx) {
		start := time.Now()
		if err := pass(ctx); err != nil {
			panic(err)
		}
		seconds = time.Since(start).Seconds()
		if cfg.Verify {
			if err := pass(ctx); err != nil {
				panic(err)
			}
			verified = true
		}
	})
	if rerr != nil {
		return Result{}, fmt.Errorf("randomaccess: %w", rerr)
	}
	if verified {
		for p := 0; p < places; p++ {
			frag := table.Fragment(core.Place(p))
			base := uint64(p * perPlace)
			for i := range frag {
				if frag[i] != base+uint64(i) {
					errors++
				}
			}
		}
	}
	return Result{
		TableWords: tableWords,
		Updates:    updates,
		Seconds:    seconds,
		GUPs:       float64(updates) / seconds / 1e9,
		Verified:   verified,
		Errors:     errors,
	}, nil
}

// updatePass runs one place's slice of the global update stream, batching
// remote XORs per destination place.
func updatePass(ctx *core.Ctx, table *congruent.Array[uint64], me, places, updates int64,
	logTable, logPerPlace, batch int) {

	myUpdates := updates / places
	ran := Starts(me * myUpdates)
	mask := (uint64(1) << uint(logTable)) - 1
	idxMask := (uint64(1) << uint(logPerPlace)) - 1

	pending := make([][]congruent.XorUpdate, places)
	flush := func(dst int64) {
		if len(pending[dst]) == 0 {
			return
		}
		congruent.RemoteXorBatch(ctx, table, core.Place(dst), pending[dst])
		pending[dst] = pending[dst][:0]
	}
	for i := int64(0); i < myUpdates; i++ {
		ran = next(ran)
		g := ran & mask
		dst := int64(g >> uint(logPerPlace))
		pending[dst] = append(pending[dst], congruent.XorUpdate{
			Idx: int(g & idxMask),
			Val: ran,
		})
		if len(pending[dst]) >= batch {
			flush(dst)
		}
	}
	for d := int64(0); d < places; d++ {
		flush(d)
	}
}
