package randomaccess

import (
	"testing"

	"apgas/internal/core"
)

func TestStartsMatchesSequentialStream(t *testing.T) {
	// Starts(n) must equal n applications of next() to Starts(0).
	x := Starts(0)
	for n := int64(1); n <= 200; n++ {
		x = next(x)
		if got := Starts(n); got != x {
			t.Fatalf("Starts(%d) = %#x, want %#x", n, got, x)
		}
	}
}

func TestStartsKnownValues(t *testing.T) {
	if Starts(0) != 1 {
		t.Errorf("Starts(0) = %#x, want 1", Starts(0))
	}
	// Negative arguments wrap around the period.
	if Starts(-1) != Starts(period-1) {
		t.Error("negative wrap broken")
	}
}

func TestNextLFSR(t *testing.T) {
	// The LFSR never gets stuck at zero when seeded with 1 and visits
	// distinct values over a short horizon.
	x := uint64(1)
	seen := map[uint64]bool{}
	for i := 0; i < 1000; i++ {
		x = next(x)
		if x == 0 {
			t.Fatal("LFSR hit zero")
		}
		if seen[x] {
			t.Fatalf("cycle after %d steps", i)
		}
		seen[x] = true
	}
}

func runRA(t *testing.T, places int, cfg Config) Result {
	t.Helper()
	rt, err := core.NewRuntime(core.Config{Places: places, CheckPatterns: true})
	if err != nil {
		t.Fatalf("NewRuntime: %v", err)
	}
	defer rt.Close()
	res, err := Run(rt, cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return res
}

func TestVerifiedUpdatesSinglePlace(t *testing.T) {
	res := runRA(t, 1, Config{Log2TablePerPlace: 10, Verify: true})
	if !res.Verified || res.Errors != 0 {
		t.Fatalf("verification failed: %+v", res)
	}
	if res.Updates != 4*res.TableWords {
		t.Errorf("updates = %d, want %d", res.Updates, 4*res.TableWords)
	}
	if res.GUPs <= 0 {
		t.Errorf("GUPs = %v", res.GUPs)
	}
}

func TestVerifiedUpdatesMultiPlace(t *testing.T) {
	for _, places := range []int{2, 4, 8} {
		res := runRA(t, places, Config{Log2TablePerPlace: 9, Verify: true})
		if res.Errors != 0 {
			t.Errorf("places=%d: %d verification errors", places, res.Errors)
		}
		if res.TableWords != int64(places)<<9 {
			t.Errorf("places=%d: table %d words", places, res.TableWords)
		}
	}
}

func TestSmallBatches(t *testing.T) {
	res := runRA(t, 4, Config{Log2TablePerPlace: 8, Batch: 7, Verify: true})
	if res.Errors != 0 {
		t.Fatalf("batch=7: %d errors", res.Errors)
	}
}

func TestValidation(t *testing.T) {
	rt, err := core.NewRuntime(core.Config{Places: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	if _, err := Run(rt, Config{Log2TablePerPlace: 8}); err == nil {
		t.Error("non-power-of-two places accepted")
	}
	rt2, _ := core.NewRuntime(core.Config{Places: 2})
	defer rt2.Close()
	if _, err := Run(rt2, Config{Log2TablePerPlace: 0}); err == nil {
		t.Error("zero table accepted")
	}
}
