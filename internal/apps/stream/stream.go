// Package stream implements EP Stream (Triad) from §5.1: a scaled vector
// sum a = b + alpha*c over per-place arrays, measuring sustainable local
// memory bandwidth. As in the paper, "the main activity launches an
// activity at every place using a PlaceGroup broadcast; these activities
// then allocate and initialize the local arrays, perform the computation,
// and verify the results" — with the backing storage drawn from the
// congruent allocator's (modeled) large pages.
package stream

import (
	"fmt"
	"sync/atomic"
	"time"

	"apgas/internal/congruent"
	"apgas/internal/core"
)

// Config describes one Stream run.
type Config struct {
	// WordsPerPlace is each place's vector length (three vectors of this
	// length are allocated; the paper used 1.5 GB per place).
	WordsPerPlace int
	// Iterations repeats the triad (timing uses the best... here: total).
	Iterations int
	// Alpha is the triad scalar (HPCC uses 3.0).
	Alpha float64
}

// Result is one run's outcome.
type Result struct {
	Places        int
	Seconds       float64
	GBs           float64 // aggregate bandwidth, GB/s
	GBsPerPlace   float64
	VerifyErrors  int64
	BytesPerTriad int64
}

// Run executes the benchmark.
func Run(rt *core.Runtime, cfg Config) (Result, error) {
	if cfg.WordsPerPlace <= 0 {
		return Result{}, fmt.Errorf("stream: bad WordsPerPlace %d", cfg.WordsPerPlace)
	}
	if cfg.Iterations <= 0 {
		cfg.Iterations = 10
	}
	if cfg.Alpha == 0 {
		cfg.Alpha = 3.0
	}
	places := rt.NumPlaces()
	alloc := congruent.NewAllocator(rt)
	a, err := congruent.NewArray[float64](alloc, cfg.WordsPerPlace)
	if err != nil {
		return Result{}, err
	}
	b, err := congruent.NewArray[float64](alloc, cfg.WordsPerPlace)
	if err != nil {
		return Result{}, err
	}
	cArr, err := congruent.NewArray[float64](alloc, cfg.WordsPerPlace)
	if err != nil {
		return Result{}, err
	}

	var seconds float64
	var verifyErrors atomic.Int64
	group := core.WorldGroup(rt)
	rerr := rt.Run(func(ctx *core.Ctx) {
		// Initialization pass (untimed).
		if err := group.Broadcast(ctx, func(cc *core.Ctx) {
			bl, cl := b.Local(cc), cArr.Local(cc)
			for i := range bl {
				bl[i] = 2.0
				cl[i] = 0.5
			}
		}); err != nil {
			panic(err)
		}
		start := time.Now()
		if err := group.Broadcast(ctx, func(cc *core.Ctx) {
			al, bl, cl := a.Local(cc), b.Local(cc), cArr.Local(cc)
			for it := 0; it < cfg.Iterations; it++ {
				triad(al, bl, cl, cfg.Alpha)
			}
		}); err != nil {
			panic(err)
		}
		seconds = time.Since(start).Seconds()
		// Verification pass (untimed).
		want := 2.0 + cfg.Alpha*0.5
		if err := group.Broadcast(ctx, func(cc *core.Ctx) {
			for _, v := range a.Local(cc) {
				if v != want {
					verifyErrors.Add(1)
				}
			}
		}); err != nil {
			panic(err)
		}
	})
	if rerr != nil {
		return Result{}, fmt.Errorf("stream: %w", rerr)
	}
	bytesPerTriad := int64(3 * 8 * cfg.WordsPerPlace)
	total := float64(bytesPerTriad) * float64(cfg.Iterations) * float64(places)
	return Result{
		Places:        places,
		Seconds:       seconds,
		GBs:           total / seconds / 1e9,
		GBsPerPlace:   total / seconds / 1e9 / float64(places),
		VerifyErrors:  verifyErrors.Load(),
		BytesPerTriad: bytesPerTriad,
	}, nil
}

// triad is the kernel: a = b + alpha*c.
func triad(a, b, c []float64, alpha float64) {
	for i := range a {
		a[i] = b[i] + alpha*c[i]
	}
}
