package stream

import (
	"testing"

	"apgas/internal/core"
)

func runStream(t *testing.T, places int, cfg Config) Result {
	t.Helper()
	rt, err := core.NewRuntime(core.Config{Places: places, CheckPatterns: true})
	if err != nil {
		t.Fatalf("NewRuntime: %v", err)
	}
	defer rt.Close()
	res, err := Run(rt, cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return res
}

func TestTriadVerifies(t *testing.T) {
	for _, places := range []int{1, 2, 7} {
		res := runStream(t, places, Config{WordsPerPlace: 1 << 12, Iterations: 3})
		if res.VerifyErrors != 0 {
			t.Errorf("places=%d: %d verify errors", places, res.VerifyErrors)
		}
		if res.GBs <= 0 || res.GBsPerPlace <= 0 {
			t.Errorf("places=%d: bandwidth %v/%v", places, res.GBs, res.GBsPerPlace)
		}
		if res.Places != places {
			t.Errorf("Places = %d", res.Places)
		}
		if res.BytesPerTriad != 3*8*(1<<12) {
			t.Errorf("BytesPerTriad = %d", res.BytesPerTriad)
		}
	}
}

func TestDefaultsApplied(t *testing.T) {
	res := runStream(t, 1, Config{WordsPerPlace: 1024})
	if res.VerifyErrors != 0 {
		t.Fatalf("defaults: %d verify errors", res.VerifyErrors)
	}
}

func TestValidation(t *testing.T) {
	rt, err := core.NewRuntime(core.Config{Places: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	if _, err := Run(rt, Config{WordsPerPlace: 0}); err == nil {
		t.Error("zero-length vectors accepted")
	}
}

func TestTriadKernel(t *testing.T) {
	a := make([]float64, 4)
	b := []float64{1, 2, 3, 4}
	c := []float64{10, 20, 30, 40}
	triad(a, b, c, 0.5)
	for i := range a {
		if want := b[i] + 0.5*c[i]; a[i] != want {
			t.Errorf("a[%d] = %v, want %v", i, a[i], want)
		}
	}
}
