package hpl

import (
	"fmt"
	"math"
	"time"

	"apgas/internal/collectives"
	"apgas/internal/core"
	"apgas/internal/kernels/linalg"
)

// Config describes one Global HPL run.
type Config struct {
	// N is the matrix order; the solved system is A x = b with the b
	// column appended to the distributed matrix, as in HPL.
	N int
	// NB is the block size (the paper used 360 at scale).
	NB int
	// P, Q is the process grid; P*Q must equal the runtime's place
	// count. Zero lets ChooseGrid pick.
	P, Q int
	// Seed drives the reproducible random matrix.
	Seed uint64
	// Mode selects the collectives implementation.
	Mode collectives.Mode
}

// Result is one run's outcome.
type Result struct {
	N, NB, P, Q int
	Seconds     float64
	Gflops      float64
	// Residual is the scaled HPL residual; values below 16 pass.
	Residual float64
}

// Flops returns the nominal HPL operation count for order n.
func Flops(n int) float64 {
	fn := float64(n)
	return 2.0/3.0*fn*fn*fn + 3.0/2.0*fn*fn
}

// element is the reproducible matrix generator: entry (i, j) of [A|b] in
// [-0.5, 0.5), a pure function of (seed, i, j).
func element(seed uint64, i, j int) float64 {
	z := seed ^ (uint64(i)+1)*0x9e3779b97f4a7c15 ^ (uint64(j)+1)*0xbf58476d1ce4e5b9
	z ^= z >> 30
	z *= 0x94d049bb133111eb
	z ^= z >> 27
	z *= 0x9e3779b97f4a7c15
	z ^= z >> 31
	return float64(z>>11)/float64(1<<53) - 0.5
}

// local is one place's fragment of the distributed [A|b] matrix.
type local struct {
	pr, pc       int
	lrows, lcols int
	a            []float64 // lrows x lcols row-major
}

func (l *local) row(lr int) []float64 { return l.a[lr*l.lcols : (lr+1)*l.lcols] }

// panelMsg is what the panel owner column broadcasts along process rows.
type panelMsg struct {
	Piv   []int     // absolute global pivot rows, one per panel column
	L     []float64 // the root's local panel block, lrows x width
	Width int
}

// pivotCand is the column-team pivot-search reduction element: the largest
// |value| wins and carries its panel row along, so the winning row is
// known everywhere without a second broadcast (the HPL pdmxswp idiom).
type pivotCand struct {
	Val float64 // |candidate|
	Gi  int     // global row of the candidate
	Row []float64
}

// Run factors and solves the system, returning performance and the HPL
// residual.
func Run(rt *core.Runtime, cfg Config) (Result, error) {
	places := rt.NumPlaces()
	if cfg.P == 0 || cfg.Q == 0 {
		cfg.P, cfg.Q = ChooseGrid(places)
	}
	if cfg.P*cfg.Q != places {
		return Result{}, fmt.Errorf("hpl: grid %dx%d needs %d places, runtime has %d",
			cfg.P, cfg.Q, cfg.P*cfg.Q, places)
	}
	if cfg.NB <= 0 || cfg.N <= 0 {
		return Result{}, fmt.Errorf("hpl: bad N=%d NB=%d", cfg.N, cfg.NB)
	}
	d := Dist{N: cfg.N, Ncols: cfg.N + 1, NB: cfg.NB, P: cfg.P, Q: cfg.Q}
	if err := d.Validate(); err != nil {
		return Result{}, err
	}

	// Teams: one per process row and per process column.
	rowTeams := make([]*collectives.Team, cfg.P)
	for pr := 0; pr < cfg.P; pr++ {
		members := make([]core.Place, cfg.Q)
		for pc := 0; pc < cfg.Q; pc++ {
			members[pc] = core.Place(pr*cfg.Q + pc)
		}
		g, err := core.NewPlaceGroup(members)
		if err != nil {
			return Result{}, err
		}
		rowTeams[pr] = collectives.New(rt, g, cfg.Mode)
	}
	colTeams := make([]*collectives.Team, cfg.Q)
	for pc := 0; pc < cfg.Q; pc++ {
		members := make([]core.Place, cfg.P)
		for pr := 0; pr < cfg.P; pr++ {
			members[pr] = core.Place(pr*cfg.Q + pc)
		}
		g, err := core.NewPlaceGroup(members)
		if err != nil {
			return Result{}, err
		}
		colTeams[pc] = collectives.New(rt, g, cfg.Mode)
	}

	locals := core.NewPlaceLocal(rt, func(p core.Place) *local {
		pr, pc := int(p)/cfg.Q, int(p)%cfg.Q
		l := &local{pr: pr, pc: pc, lrows: d.LocalRows(pr), lcols: d.LocalCols(pc)}
		l.a = make([]float64, l.lrows*l.lcols)
		for lr := 0; lr < l.lrows; lr++ {
			gi := d.GlobalRow(pr, lr)
			row := l.row(lr)
			for lc := 0; lc < l.lcols; lc++ {
				row[lc] = element(cfg.Seed, gi, d.GlobalCol(pc, lc))
			}
		}
		return l
	})

	var seconds float64
	var solution []float64
	err := rt.Run(func(ctx *core.Ctx) {
		// Materialize every fragment before timing (tree broadcast).
		world := core.WorldGroup(rt)
		if err := world.Broadcast(ctx, func(c *core.Ctx) { locals.Get(c) }); err != nil {
			panic(err)
		}
		start := time.Now()
		err := ctx.FinishPragma(core.PatternSPMD, func(c *core.Ctx) {
			for _, p := range c.Places() {
				c.AtAsync(p, func(cc *core.Ctx) {
					me := locals.Get(cc)
					factor(cc, d, cfg, me, locals, rowTeams, colTeams)
					x := solveDistributed(cc, d, me, rowTeams, colTeams)
					if cc.Place() == 0 {
						solution = x
					}
				})
			}
		})
		if err != nil {
			panic(err)
		}
		seconds = time.Since(start).Seconds()
	})
	if err != nil {
		return Result{}, fmt.Errorf("hpl: %w", err)
	}

	resid := residual(cfg, solution)
	return Result{
		N: cfg.N, NB: cfg.NB, P: cfg.P, Q: cfg.Q,
		Seconds:  seconds,
		Gflops:   Flops(cfg.N) / seconds / 1e9,
		Residual: resid,
	}, nil
}

// factor is the per-place SPMD body: the right-looking blocked LU loop.
func factor(ctx *core.Ctx, d Dist, cfg Config, me *local,
	locals core.PlaceLocal[*local], rowTeams, colTeams []*collectives.Team) {

	rowTeam := rowTeams[me.pr]
	colTeam := colTeams[me.pc]
	nBlocks := (d.N + d.NB - 1) / d.NB

	for k := 0; k < nBlocks; k++ {
		gk := k * d.NB
		nbk := d.NB
		if gk+nbk > d.N {
			nbk = d.N - gk
		}
		pcK := k % d.Q
		prK := k % d.P

		// 1. Distributed recursive-free panel factorization on process
		// column pcK, with the pivot search as a column-team reduction.
		var piv []int
		if me.pc == pcK {
			piv = panelFactor(ctx, d, me, locals, colTeam, gk, nbk)
		}

		// 2. Row broadcast: pivots and the panel's L columns reach every
		// process column (root = the pcK member of each row team).
		var panel panelMsg
		if me.pc == pcK {
			panel = buildPanelMsg(d, me, piv, gk, nbk)
		}
		got := collectives.Broadcast(rowTeam, ctx, pcK, []panelMsg{panel})
		panel = got[0]

		// 3. Apply the pivot swaps to this place's non-panel columns.
		applyPivots(ctx, d, me, locals, colTeam, panel.Piv, gk, nbk, me.pc == pcK)

		// 4. Triangular solve for the U block row at process row prK.
		ljTail := d.FirstLocalColAtOrAfter(me.pc, gk+nbk)
		trailCols := me.lcols - ljTail
		var u12 []float64
		if me.pr == prK && trailCols > 0 {
			lrK := d.LocalRow(gk)
			l11 := extractL11(d, panel, lrK, nbk)
			u12 = make([]float64, nbk*trailCols)
			for r := 0; r < nbk; r++ {
				copy(u12[r*trailCols:(r+1)*trailCols], me.row(lrK + r)[ljTail:])
			}
			linalg.TrsmLLNU(nbk, trailCols, l11, nbk, u12, trailCols)
			for r := 0; r < nbk; r++ {
				copy(me.row(lrK + r)[ljTail:], u12[r*trailCols:(r+1)*trailCols])
			}
		}

		// 5. Column broadcast of U12 (root = the prK member).
		u12 = collectives.Broadcast(colTeam, ctx, prK, u12)

		// 6. Local trailing update: A22 -= L21 * U12.
		lrTail := d.FirstLocalRowAtOrAfter(me.pr, gk+nbk)
		if trailCols > 0 && me.lrows-lrTail > 0 {
			linalg.GemmNN(me.lrows-lrTail, trailCols, nbk, -1,
				panel.L[lrTail*panel.Width:], panel.Width,
				u12, trailCols,
				1, me.a[lrTail*me.lcols+ljTail:], me.lcols)
		}
	}
}

// panelFactor factors panel block column k (global columns [gk, gk+nbk))
// across the process column team and returns the pivot rows. Swaps are
// applied to the panel columns only; applyPivots later covers the rest.
func panelFactor(ctx *core.Ctx, d Dist, me *local,
	locals core.PlaceLocal[*local], colTeam *collectives.Team, gk, nbk int) []int {

	ljPanel := d.LocalCol(gk) // panel columns are locally contiguous
	piv := make([]int, nbk)
	maxOp := func(a, b pivotCand) pivotCand {
		if b.Val > a.Val || (b.Val == a.Val && b.Gi < a.Gi) {
			return b
		}
		return a
	}

	for jj := 0; jj < nbk; jj++ {
		gj := gk + jj
		// Local candidate: the largest |a(gi, gj)| over owned rows >= gj.
		cand := pivotCand{Val: -1, Gi: d.N}
		for lr := d.FirstLocalRowAtOrAfter(me.pr, gj); lr < me.lrows; lr++ {
			v := math.Abs(me.row(lr)[ljPanel+jj])
			if v > cand.Val {
				cand.Val = v
				cand.Gi = d.GlobalRow(me.pr, lr)
			}
		}
		if cand.Gi < d.N {
			lr := d.LocalRow(cand.Gi)
			cand.Row = append([]float64(nil), me.row(lr)[ljPanel:ljPanel+nbk]...)
		}
		win := collectives.AllReduce(colTeam, ctx, []pivotCand{cand}, maxOp)[0]
		piv[jj] = win.Gi

		// Swap panel rows gj <-> win.Gi. The winning row's content
		// traveled with the reduction; only the displaced row gj must
		// move, from its owner to the pivot row's owner.
		if win.Gi != gj {
			prJ, prW := d.RowOwner(gj), d.RowOwner(win.Gi)
			if me.pr == prJ {
				lrJ := d.LocalRow(gj)
				old := append([]float64(nil), me.row(lrJ)[ljPanel:ljPanel+nbk]...)
				copy(me.row(lrJ)[ljPanel:ljPanel+nbk], win.Row)
				if prW == prJ {
					lrW := d.LocalRow(win.Gi)
					copy(me.row(lrW)[ljPanel:ljPanel+nbk], old)
				} else {
					dst := core.Place(prW*d.Q + me.pc)
					gi := win.Gi
					err := ctx.FinishPragma(core.PatternAsync, func(c *core.Ctx) {
						c.AtDirect(dst, 8*len(old), func(cr *core.Ctx) {
							them := locals.Get(cr)
							copy(them.row(d.LocalRow(gi))[ljPanel:ljPanel+nbk], old)
						})
					})
					if err != nil {
						panic(err)
					}
				}
			}
		}
		colTeam.Barrier(ctx)

		// Eliminate below the pivot in the remaining panel columns.
		dval := win.Row[jj]
		start := d.FirstLocalRowAtOrAfter(me.pr, gj+1)
		for lr := start; lr < me.lrows; lr++ {
			row := me.row(lr)
			if dval != 0 {
				l := row[ljPanel+jj] / dval
				row[ljPanel+jj] = l
				for t := jj + 1; t < nbk; t++ {
					row[ljPanel+t] -= l * win.Row[t]
				}
			}
		}
	}
	return piv
}

// buildPanelMsg packages this place's panel columns (now holding L and the
// panel's U rows) plus the pivot list for the row broadcast.
func buildPanelMsg(d Dist, me *local, piv []int, gk, nbk int) panelMsg {
	ljPanel := d.LocalCol(gk)
	L := make([]float64, me.lrows*nbk)
	for lr := 0; lr < me.lrows; lr++ {
		copy(L[lr*nbk:(lr+1)*nbk], me.row(lr)[ljPanel:ljPanel+nbk])
	}
	return panelMsg{Piv: piv, L: L, Width: nbk}
}

// extractL11 pulls the nbk x nbk unit-lower block of the panel starting at
// local row lrK.
func extractL11(d Dist, panel panelMsg, lrK, nbk int) []float64 {
	l11 := make([]float64, nbk*nbk)
	for r := 0; r < nbk; r++ {
		copy(l11[r*nbk:(r+1)*nbk], panel.L[(lrK+r)*panel.Width:(lrK+r)*panel.Width+nbk])
	}
	return l11
}

// applyPivots replays the panel's swap sequence on this place's local
// columns (all of them, except the panel columns when this place is in the
// panel's process column — those were swapped during factorization). The
// block-row owner of block k coordinates: it gathers every touched row
// segment in its process column, applies the sequence, and writes back —
// turning O(NB) sequential exchanges into one gather/scatter per block,
// with asynchronous copies doing the row fetches as in the paper's code.
func applyPivots(ctx *core.Ctx, d Dist, me *local,
	locals core.PlaceLocal[*local], colTeam *collectives.Team,
	piv []int, gk, nbk int, inPanelColumn bool) {

	prK := (gk / d.NB) % d.P
	coordinator := me.pr == prK

	// Entry barrier: the coordinator is about to read and rewrite rows
	// owned by every member of this process column, so all of them must
	// have finished the previous iteration's trailing update first. (The
	// row broadcast that precedes this phase only synchronizes each place
	// with the panel column, not with its column peers.)
	colTeam.Barrier(ctx)

	// Column segments to operate on: [0, skipLo) and [skipHi, lcols).
	skipLo, skipHi := me.lcols, me.lcols
	if inPanelColumn {
		skipLo = d.LocalCol(gk)
		skipHi = skipLo + nbk
	}

	if coordinator {
		// Gather all touched rows: the block-k rows (local) plus every
		// distinct pivot target row (possibly remote).
		type stagedRow struct {
			vals  []float64
			owner int // process row; -1 for locally owned
		}
		stage := make(map[int]*stagedRow)
		fetch := func(gi int) *stagedRow {
			if r, ok := stage[gi]; ok {
				return r
			}
			pr := d.RowOwner(gi)
			r := &stagedRow{owner: pr}
			if pr == me.pr {
				r.vals = append([]float64(nil), me.row(d.LocalRow(gi))...)
				r.owner = -1
			} else {
				src := core.Place(pr*d.Q + me.pc)
				gi := gi
				r.vals = core.AtEval(ctx, src, func(c *core.Ctx) []float64 {
					them := locals.Get(c)
					return append([]float64(nil), them.row(d.LocalRow(gi))...)
				})
			}
			stage[gi] = r
			return r
		}
		for jj := 0; jj < nbk; jj++ {
			gj, gp := gk+jj, piv[jj]
			if gj == gp {
				continue
			}
			a, b := fetch(gj), fetch(gp)
			a.vals, b.vals = b.vals, a.vals
		}
		// Write back, skipping the panel segment.
		writeSeg := func(dst, src []float64) {
			copy(dst[:skipLo], src[:skipLo])
			if skipHi < len(dst) {
				copy(dst[skipHi:], src[skipHi:])
			}
		}
		for gi, r := range stage {
			if r.owner < 0 {
				writeSeg(me.row(d.LocalRow(gi)), r.vals)
				continue
			}
			dst := core.Place(r.owner*d.Q + me.pc)
			gi, vals := gi, r.vals
			sLo, sHi := skipLo, skipHi
			err := ctx.FinishPragma(core.PatternAsync, func(c *core.Ctx) {
				c.AtDirect(dst, 8*len(vals), func(cr *core.Ctx) {
					them := locals.Get(cr)
					row := them.row(d.LocalRow(gi))
					copy(row[:sLo], vals[:sLo])
					if sHi < len(row) {
						copy(row[sHi:], vals[sHi:])
					}
				})
			})
			if err != nil {
				panic(err)
			}
		}
	}
	colTeam.Barrier(ctx)
}
