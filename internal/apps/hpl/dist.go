// Package hpl implements the Global HPL benchmark of §5.1: a distributed
// right-looking LU factorization with row-partial pivoting, a
// two-dimensional block-cyclic data distribution, and a recursive panel
// factorization, solving the dense linear system [A|b] and measuring
// Gflop/s. The communication idioms follow the paper's X10 code:
// asynchronous array copies (wrapped in FINISH_ASYNC / FINISH_HERE-shaped
// round trips) for row fetches and swaps, and teams for barriers, row and
// column broadcasts, and the pivot search.
package hpl

import "fmt"

// Dist describes a two-dimensional block-cyclic distribution of an
// N x Ncols matrix over a P x Q process grid with block size NB. Global
// block (I, J) lives at grid position (I mod P, J mod Q); the place of
// grid position (pr, pc) is pr*Q + pc.
type Dist struct {
	N     int // global rows
	Ncols int // global columns (N+1 with the appended b column)
	NB    int
	P, Q  int
}

// RowOwner returns the process row owning global row gi.
func (d Dist) RowOwner(gi int) int { return (gi / d.NB) % d.P }

// ColOwner returns the process column owning global column gj.
func (d Dist) ColOwner(gj int) int { return (gj / d.NB) % d.Q }

// LocalRow maps a global row to its local index at its owner.
func (d Dist) LocalRow(gi int) int { return (gi/d.NB/d.P)*d.NB + gi%d.NB }

// LocalCol maps a global column to its local index at its owner.
func (d Dist) LocalCol(gj int) int { return (gj/d.NB/d.Q)*d.NB + gj%d.NB }

// GlobalRow maps a local row index at process row pr back to the global
// row.
func (d Dist) GlobalRow(pr, lr int) int {
	return (lr/d.NB*d.P+pr)*d.NB + lr%d.NB
}

// GlobalCol maps a local column index at process column pc back to the
// global column.
func (d Dist) GlobalCol(pc, lc int) int {
	return (lc/d.NB*d.Q+pc)*d.NB + lc%d.NB
}

// LocalRows returns the number of global rows owned by process row pr.
func (d Dist) LocalRows(pr int) int { return localCount(d.N, d.NB, d.P, pr) }

// LocalCols returns the number of global columns owned by process
// column pc.
func (d Dist) LocalCols(pc int) int { return localCount(d.Ncols, d.NB, d.Q, pc) }

// localCount counts indices in [0, n) whose block (index/nb) mod p == r.
func localCount(n, nb, p, r int) int {
	cnt := 0
	for b := r; b*nb < n; b += p {
		size := nb
		if b*nb+size > n {
			size = n - b*nb
		}
		cnt += size
	}
	return cnt
}

// FirstLocalRowAtOrAfter returns the smallest local row index at process
// row pr whose global row is >= g, or LocalRows(pr) if none.
func (d Dist) FirstLocalRowAtOrAfter(pr, g int) int {
	lrows := d.LocalRows(pr)
	lo, hi := 0, lrows
	for lo < hi {
		mid := (lo + hi) / 2
		if d.GlobalRow(pr, mid) >= g {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// FirstLocalColAtOrAfter is the column analogue.
func (d Dist) FirstLocalColAtOrAfter(pc, g int) int {
	lcols := d.LocalCols(pc)
	lo, hi := 0, lcols
	for lo < hi {
		mid := (lo + hi) / 2
		if d.GlobalCol(pc, mid) >= g {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// Validate checks the distribution parameters.
func (d Dist) Validate() error {
	switch {
	case d.N <= 0 || d.Ncols <= 0:
		return fmt.Errorf("hpl: bad dims %dx%d", d.N, d.Ncols)
	case d.NB <= 0:
		return fmt.Errorf("hpl: bad block size %d", d.NB)
	case d.P <= 0 || d.Q <= 0:
		return fmt.Errorf("hpl: bad grid %dx%d", d.P, d.Q)
	}
	return nil
}

// ChooseGrid picks the process grid for a place count the way the paper's
// runs did: as close to square as possible, with Q = P for even powers of
// two and Q = 2P for odd powers — the origin of the seesaw in the HPL
// efficiency curve ("an artifact of the switch from an n*n to a 2n*n
// block cyclic distribution for even and odd powers of two").
func ChooseGrid(places int) (p, q int) {
	p = 1
	for (p+1)*(p+1) <= places {
		p++
	}
	for places%p != 0 {
		p--
	}
	return p, places / p
}
