package hpl

import (
	"fmt"
	"testing"

	"apgas/internal/core"
)

func TestProbePerf(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	for _, c := range []struct{ places, n, nb int }{{1, 256, 32}, {4, 512, 32}, {8, 512, 32}} {
		rt, err := core.NewRuntime(core.Config{Places: c.places})
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(rt, Config{N: c.n, NB: c.nb, Seed: 1})
		rt.Close()
		if err != nil {
			t.Fatal(err)
		}
		fmt.Printf("places=%d grid=%dx%d N=%d: %.3fs %.2f Gflop/s resid=%.3g\n",
			c.places, res.P, res.Q, c.n, res.Seconds, res.Gflops, res.Residual)
	}
}
