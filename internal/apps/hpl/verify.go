package hpl

import (
	"math"

	"apgas/internal/core"
)

// This file computes the scaled HPL residual
// ||Ax-b||_inf / (eps * (||A||_inf ||x||_inf + ||b||_inf) * N) for a
// solution vector, and provides a gathered single-place back substitution
// used by the tests as an independent cross-check of the distributed
// solve in backsolve.go.

// gather reassembles the distributed [A|b] (post-factorization) into a
// dense N x (N+1) row-major matrix.
func gather(d Dist, locals core.PlaceLocal[*local]) []float64 {
	m := make([]float64, d.N*d.Ncols)
	for pr := 0; pr < d.P; pr++ {
		for pc := 0; pc < d.Q; pc++ {
			l := locals.At(core.Place(pr*d.Q + pc))
			for lr := 0; lr < l.lrows; lr++ {
				gi := d.GlobalRow(pr, lr)
				row := l.row(lr)
				for lc := 0; lc < l.lcols; lc++ {
					m[gi*d.Ncols+d.GlobalCol(pc, lc)] = row[lc]
				}
			}
		}
	}
	return m
}

// backSubstitute solves U x = y where the gathered matrix m holds U in its
// upper triangle and y in column N (the b column transformed by the
// forward elimination and pivoting).
func backSubstitute(d Dist, m []float64) []float64 {
	n := d.N
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		sum := m[i*d.Ncols+n]
		for j := i + 1; j < n; j++ {
			sum -= m[i*d.Ncols+j] * x[j]
		}
		diag := m[i*d.Ncols+i]
		if diag == 0 {
			x[i] = 0 // singular; the residual will expose it
			continue
		}
		x[i] = sum / diag
	}
	return x
}

// residual computes the scaled HPL residual for solution x against the
// regenerated original system.
func residual(cfg Config, x []float64) float64 {
	n := cfg.N
	normA := 0.0 // infinity norm of A
	normB := 0.0
	normR := 0.0
	for i := 0; i < n; i++ {
		rowSum := 0.0
		ax := 0.0
		for j := 0; j < n; j++ {
			aij := element(cfg.Seed, i, j)
			rowSum += math.Abs(aij)
			ax += aij * x[j]
		}
		bi := element(cfg.Seed, i, n)
		if rowSum > normA {
			normA = rowSum
		}
		if math.Abs(bi) > normB {
			normB = math.Abs(bi)
		}
		if r := math.Abs(ax - bi); r > normR {
			normR = r
		}
	}
	normX := 0.0
	for _, v := range x {
		if math.Abs(v) > normX {
			normX = math.Abs(v)
		}
	}
	eps := math.Nextafter(1, 2) - 1
	denom := eps * (normA*normX + normB) * float64(n)
	if denom == 0 {
		return math.Inf(1)
	}
	return normR / denom
}

// gatheredSolve reconstructs the full factored system at one place and
// back-substitutes — the test oracle for solveDistributed.
func gatheredSolve(d Dist, locals core.PlaceLocal[*local]) []float64 {
	return backSubstitute(d, gather(d, locals))
}
