package hpl

import (
	"testing"
	"testing/quick"

	"apgas/internal/collectives"
	"apgas/internal/core"
)

func TestDistMappingRoundTrip(t *testing.T) {
	f := func(nRaw, nbRaw, pRaw, qRaw uint8) bool {
		d := Dist{
			N:  int(nRaw)%200 + 1,
			NB: int(nbRaw)%16 + 1,
			P:  int(pRaw)%4 + 1,
			Q:  int(qRaw)%4 + 1,
		}
		d.Ncols = d.N + 1
		total := 0
		for pr := 0; pr < d.P; pr++ {
			total += d.LocalRows(pr)
		}
		if total != d.N {
			return false
		}
		total = 0
		for pc := 0; pc < d.Q; pc++ {
			total += d.LocalCols(pc)
		}
		if total != d.Ncols {
			return false
		}
		for gi := 0; gi < d.N; gi++ {
			pr := d.RowOwner(gi)
			if d.GlobalRow(pr, d.LocalRow(gi)) != gi {
				return false
			}
		}
		for gj := 0; gj < d.Ncols; gj++ {
			pc := d.ColOwner(gj)
			if d.GlobalCol(pc, d.LocalCol(gj)) != gj {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestFirstLocalRowAtOrAfter(t *testing.T) {
	d := Dist{N: 100, Ncols: 101, NB: 8, P: 3, Q: 2}
	for pr := 0; pr < d.P; pr++ {
		for g := 0; g <= d.N; g++ {
			got := d.FirstLocalRowAtOrAfter(pr, g)
			// Brute force.
			want := d.LocalRows(pr)
			for lr := 0; lr < d.LocalRows(pr); lr++ {
				if d.GlobalRow(pr, lr) >= g {
					want = lr
					break
				}
			}
			if got != want {
				t.Fatalf("pr=%d g=%d: got %d want %d", pr, g, got, want)
			}
		}
	}
}

func TestChooseGrid(t *testing.T) {
	cases := map[int][2]int{
		1:  {1, 1},
		2:  {1, 2},
		4:  {2, 2},
		8:  {2, 4},
		16: {4, 4},
		32: {4, 8},
		64: {8, 8},
		6:  {2, 3},
	}
	for places, want := range cases {
		p, q := ChooseGrid(places)
		if p != want[0] || q != want[1] {
			t.Errorf("ChooseGrid(%d) = %dx%d, want %dx%d", places, p, q, want[0], want[1])
		}
		if p*q != places {
			t.Errorf("ChooseGrid(%d) = %dx%d does not cover", places, p, q)
		}
	}
}

func TestElementReproducibleAndBounded(t *testing.T) {
	f := func(seed uint64, i, j uint16) bool {
		v := element(seed, int(i), int(j))
		return v == element(seed, int(i), int(j)) && v >= -0.5 && v < 0.5
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	if element(1, 2, 3) == element(1, 3, 2) {
		t.Error("element not index-sensitive")
	}
}

func runHPL(t *testing.T, places int, cfg Config) Result {
	t.Helper()
	rt, err := core.NewRuntime(core.Config{Places: places, CheckPatterns: true})
	if err != nil {
		t.Fatalf("NewRuntime: %v", err)
	}
	defer rt.Close()
	res, err := Run(rt, cfg)
	if err != nil {
		t.Fatalf("hpl.Run: %v", err)
	}
	return res
}

func TestSolveSinglePlace(t *testing.T) {
	res := runHPL(t, 1, Config{N: 64, NB: 8, Seed: 42})
	if res.Residual > 16 {
		t.Errorf("residual = %g, want < 16", res.Residual)
	}
	if res.Gflops <= 0 || res.Seconds <= 0 {
		t.Errorf("bad perf numbers: %+v", res)
	}
}

func TestSolveGrids(t *testing.T) {
	cases := []struct {
		places, p, q, n, nb int
	}{
		{2, 1, 2, 48, 8},
		{2, 2, 1, 48, 8},
		{4, 2, 2, 64, 8},
		{4, 4, 1, 64, 16},
		{6, 2, 3, 60, 8},
		{8, 2, 4, 96, 16},
	}
	for _, c := range cases {
		res := runHPL(t, c.places, Config{N: c.n, NB: c.nb, P: c.p, Q: c.q, Seed: 7})
		if res.Residual > 16 {
			t.Errorf("grid %dx%d N=%d: residual = %g, want < 16", c.p, c.q, c.n, res.Residual)
		}
	}
}

func TestSolveRaggedBlocks(t *testing.T) {
	// N not divisible by NB: exercises partial trailing blocks.
	res := runHPL(t, 4, Config{N: 53, NB: 8, P: 2, Q: 2, Seed: 3})
	if res.Residual > 16 {
		t.Errorf("ragged: residual = %g", res.Residual)
	}
}

func TestSolveEmulatedCollectives(t *testing.T) {
	res := runHPL(t, 4, Config{N: 48, NB: 8, P: 2, Q: 2, Seed: 5, Mode: collectives.ModeEmulated})
	if res.Residual > 16 {
		t.Errorf("emulated: residual = %g", res.Residual)
	}
}

func TestSolveBigBlocks(t *testing.T) {
	// NB > N/grid: some places own nothing in some phases.
	res := runHPL(t, 4, Config{N: 32, NB: 16, P: 2, Q: 2, Seed: 11})
	if res.Residual > 16 {
		t.Errorf("big blocks: residual = %g", res.Residual)
	}
}

func TestRunValidation(t *testing.T) {
	rt, err := core.NewRuntime(core.Config{Places: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	if _, err := Run(rt, Config{N: 32, NB: 8, P: 3, Q: 3}); err == nil {
		t.Error("mismatched grid accepted")
	}
	if _, err := Run(rt, Config{N: 0, NB: 8}); err == nil {
		t.Error("N=0 accepted")
	}
	if _, err := Run(rt, Config{N: 32, NB: 0}); err == nil {
		t.Error("NB=0 accepted")
	}
}

// TestSolveMatchesDenseLU cross-checks the distributed solve against a
// plain dense LU on the same generated matrix via the residual (the
// residual uses only the regenerated A and the distributed x, so a small
// value certifies agreement).
func TestSolveManySeedsProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rt, err := core.NewRuntime(core.Config{Places: 4, CheckPatterns: true})
		if err != nil {
			return false
		}
		defer rt.Close()
		res, err := Run(rt, Config{N: 40, NB: 8, P: 2, Q: 2, Seed: seed})
		return err == nil && res.Residual < 16
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Fatal(err)
	}
}

// TestDistributedSolveMatchesGathered cross-checks the distributed back
// substitution against the single-place gathered oracle.
func TestDistributedSolveMatchesGathered(t *testing.T) {
	rt, err := core.NewRuntime(core.Config{Places: 6, CheckPatterns: true})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	cfg := Config{N: 60, NB: 8, P: 2, Q: 3, Seed: 9}
	d := Dist{N: cfg.N, Ncols: cfg.N + 1, NB: cfg.NB, P: cfg.P, Q: cfg.Q}

	rowTeams := make([]*collectives.Team, cfg.P)
	for pr := 0; pr < cfg.P; pr++ {
		members := make([]core.Place, cfg.Q)
		for pc := 0; pc < cfg.Q; pc++ {
			members[pc] = core.Place(pr*cfg.Q + pc)
		}
		g, _ := core.NewPlaceGroup(members)
		rowTeams[pr] = collectives.New(rt, g, cfg.Mode)
	}
	colTeams := make([]*collectives.Team, cfg.Q)
	for pc := 0; pc < cfg.Q; pc++ {
		members := make([]core.Place, cfg.P)
		for pr := 0; pr < cfg.P; pr++ {
			members[pr] = core.Place(pr*cfg.Q + pc)
		}
		g, _ := core.NewPlaceGroup(members)
		colTeams[pc] = collectives.New(rt, g, cfg.Mode)
	}
	locals := core.NewPlaceLocal(rt, func(p core.Place) *local {
		pr, pc := int(p)/cfg.Q, int(p)%cfg.Q
		l := &local{pr: pr, pc: pc, lrows: d.LocalRows(pr), lcols: d.LocalCols(pc)}
		l.a = make([]float64, l.lrows*l.lcols)
		for lr := 0; lr < l.lrows; lr++ {
			gi := d.GlobalRow(pr, lr)
			row := l.row(lr)
			for lc := 0; lc < l.lcols; lc++ {
				row[lc] = element(cfg.Seed, gi, d.GlobalCol(pc, lc))
			}
		}
		return l
	})

	var distX []float64
	rerr := rt.Run(func(ctx *core.Ctx) {
		if err := core.WorldGroup(rt).Broadcast(ctx, func(c *core.Ctx) { locals.Get(c) }); err != nil {
			panic(err)
		}
		err := ctx.FinishPragma(core.PatternSPMD, func(c *core.Ctx) {
			for _, p := range c.Places() {
				c.AtAsync(p, func(cc *core.Ctx) {
					me := locals.Get(cc)
					factor(cc, d, cfg, me, locals, rowTeams, colTeams)
					x := solveDistributed(cc, d, me, rowTeams, colTeams)
					if cc.Place() == 0 {
						distX = x
					}
				})
			}
		})
		if err != nil {
			panic(err)
		}
	})
	if rerr != nil {
		t.Fatalf("Run: %v", rerr)
	}
	wantX := gatheredSolve(d, locals)
	for i := range wantX {
		diff := distX[i] - wantX[i]
		if diff < 0 {
			diff = -diff
		}
		if diff > 1e-9*(1+absf(wantX[i])) {
			t.Fatalf("x[%d] = %v, gathered %v", i, distX[i], wantX[i])
		}
	}
	if r := residual(cfg, distX); r > 16 {
		t.Fatalf("distributed solve residual %g", r)
	}
}

func absf(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
