package hpl

import (
	"apgas/internal/collectives"
	"apgas/internal/core"
)

// This file implements the distributed back substitution: after the
// factorization, [A|b] holds U in its upper triangle and the transformed
// right-hand side in column N; U x = y is solved bottom-up by block rows.
// For block k (owned by process row prK, with its diagonal block at
// process column pcK):
//
//  1. every place in row prK reduces its local partial sum
//     sum_{j > k-block} U_kj * x_j (the b-column owner folds in -b_k)
//     to the pcK member with a row-team reduce;
//  2. the (prK, pcK) place solves the local nbk x nbk triangular system;
//  3. x_k travels to the whole grid with a row-team broadcast along prK
//     followed by column-team broadcasts.
//
// Every place ends with the full solution vector, so verification needs no
// gather. The paper's own solve phase is the same reduce/solve/broadcast
// pipeline over its teams.

// solveDistributed runs at every place inside the SPMD region and returns
// the full solution vector.
func solveDistributed(ctx *core.Ctx, d Dist, me *local,
	rowTeams, colTeams []*collectives.Team) []float64 {

	rowTeam := rowTeams[me.pr]
	colTeam := colTeams[me.pc]
	nBlocks := (d.N + d.NB - 1) / d.NB
	x := make([]float64, d.N)

	for k := nBlocks - 1; k >= 0; k-- {
		gk := k * d.NB
		nbk := d.NB
		if gk+nbk > d.N {
			nbk = d.N - gk
		}
		prK := k % d.P
		pcK := k % d.Q

		var xk []float64
		if me.pr == prK {
			// Partial sums over this place's columns beyond block k.
			partial := make([]float64, nbk)
			lrK := d.LocalRow(gk)
			for lc := d.FirstLocalColAtOrAfter(me.pc, gk+nbk); lc < me.lcols; lc++ {
				gj := d.GlobalCol(me.pc, lc)
				if gj >= d.N {
					// The b column: fold in -b_k.
					for r := 0; r < nbk; r++ {
						partial[r] -= me.row(lrK + r)[lc]
					}
					continue
				}
				xj := x[gj]
				if xj == 0 {
					continue
				}
				for r := 0; r < nbk; r++ {
					partial[r] += me.row(lrK + r)[lc] * xj
				}
			}
			total := collectives.Reduce(rowTeam, ctx, pcK, partial,
				func(a, b float64) float64 { return a + b })
			if me.pc == pcK {
				// total[r] = sum_j U_kj x_j - b_k; solve
				// U_kk x_k = -(total) in place.
				xk = make([]float64, nbk)
				ljK := d.LocalCol(gk)
				for r := nbk - 1; r >= 0; r-- {
					s := -total[r]
					row := me.row(lrK + r)
					for c := r + 1; c < nbk; c++ {
						s -= row[ljK+c] * xk[c]
					}
					diag := row[ljK+r]
					if diag != 0 {
						xk[r] = s / diag
					}
				}
			}
			// Row broadcast so every process column of row prK has x_k.
			xk = collectives.Broadcast(rowTeam, ctx, pcK, xk)
		}
		// Column broadcast down from the prK member to the whole grid.
		xk = collectives.Broadcast(colTeam, ctx, prK, xk)
		copy(x[gk:gk+nbk], xk)
	}
	return x
}
