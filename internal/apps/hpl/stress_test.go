package hpl

import (
	"testing"

	"apgas/internal/core"
)

// TestSolveRepeatedRaceRegression repeats the configuration that once
// exposed a missing entry barrier in applyPivots (the pivot coordinator
// read rows from column peers still running the previous iteration's
// trailing update). Kept as a regression stressor.
func TestSolveRepeatedRaceRegression(t *testing.T) {
	reps := 10
	if testing.Short() {
		reps = 3
	}
	for i := 0; i < reps; i++ {
		rt, err := core.NewRuntime(core.Config{Places: 8, CheckPatterns: true})
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(rt, Config{N: 192, NB: 16, P: 2, Q: 4, Seed: 1})
		rt.Close()
		if err != nil {
			t.Fatal(err)
		}
		if res.Residual > 16 {
			t.Fatalf("rep %d: residual %g", i, res.Residual)
		}
	}
}
