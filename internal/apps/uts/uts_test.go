package uts

import (
	"testing"
	"testing/quick"

	"apgas/internal/core"
	"apgas/internal/glb"
	"apgas/internal/kernels/sha1rng"
)

func tree(depth int) sha1rng.Geometric {
	return sha1rng.Geometric{B0: 4, Depth: depth, Seed: 19}
}

func newRT(t *testing.T, places int) *core.Runtime {
	t.Helper()
	rt, err := core.NewRuntime(core.Config{Places: places, CheckPatterns: true, PlacesPerHost: 4})
	if err != nil {
		t.Fatalf("NewRuntime: %v", err)
	}
	t.Cleanup(rt.Close)
	return rt
}

// drain processes a bag to exhaustion locally and returns the node count.
func drain(b glb.TaskBag) uint64 {
	for b.Process(1024) > 0 {
	}
	switch bag := b.(type) {
	case *IntervalBag:
		return bag.Nodes
	case *ListBag:
		return bag.Nodes
	}
	return 0
}

func TestIntervalBagMatchesSequential(t *testing.T) {
	for _, depth := range []int{2, 4, 8, 11} {
		g := tree(depth)
		want, _ := g.CountSequential()
		b := NewIntervalBag(g)
		b.Seed()
		if got := drain(b); got != want {
			t.Errorf("depth %d: interval bag counted %d, sequential %d", depth, got, want)
		}
	}
}

func TestListBagMatchesSequential(t *testing.T) {
	for _, depth := range []int{2, 4, 8, 11} {
		g := tree(depth)
		want, _ := g.CountSequential()
		b := NewListBag(g)
		b.Seed()
		if got := drain(b); got != want {
			t.Errorf("depth %d: list bag counted %d, sequential %d", depth, got, want)
		}
	}
}

// TestSplitPreservesWork: splitting mid-traversal and draining both halves
// yields the same count as never splitting — the conservation invariant
// stealing relies on.
func TestSplitPreservesWork(t *testing.T) {
	f := func(depthRaw, stepsRaw uint8) bool {
		depth := int(depthRaw)%7 + 3 // 3..9
		steps := int(stepsRaw)%200 + 1
		g := tree(depth)
		want, _ := g.CountSequential()

		b := NewIntervalBag(g)
		b.Seed()
		b.Process(steps)
		loot := b.Split()
		total := drain(b)
		if loot != nil {
			total += drain(loot)
		}
		return total == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestSplitFragmentsEveryInterval(t *testing.T) {
	g := tree(10)
	b := NewIntervalBag(g)
	b.Seed()
	b.Process(500) // build up a multi-interval work list
	widths := 0
	for _, iv := range b.work {
		if iv.Hi-iv.Lo >= 2 {
			widths++
		}
	}
	if widths < 2 {
		t.Skip("work list too shallow to observe multi-interval splitting")
	}
	before := len(b.work)
	loot := b.Split().(*IntervalBag)
	// The thief must hold a fragment from every splittable interval.
	if len(loot.work) != widths {
		t.Errorf("loot has %d intervals, want %d (one per splittable interval)",
			len(loot.work), widths)
	}
	if len(b.work) != before {
		t.Errorf("victim interval count changed: %d -> %d", before, len(b.work))
	}
}

func TestSplitReturnsNilWhenTiny(t *testing.T) {
	g := tree(3)
	b := NewIntervalBag(g)
	if b.Split() != nil {
		t.Error("empty interval bag split non-nil")
	}
	lb := NewListBag(g)
	if lb.Split() != nil {
		t.Error("empty list bag split non-nil")
	}
	lb.Seed()
	if lb.Split() != nil {
		t.Error("single-node list bag split non-nil")
	}
}

func TestListBagSplitConservation(t *testing.T) {
	f := func(stepsRaw uint8) bool {
		g := tree(8)
		want, _ := g.CountSequential()
		b := NewListBag(g)
		b.Seed()
		b.Process(int(stepsRaw)%100 + 1)
		loot := b.Split()
		total := drain(b)
		if loot != nil {
			total += drain(loot)
		}
		return total == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestDistributedMatchesSequential(t *testing.T) {
	g := tree(12)
	want, wantHashes := g.CountSequential()
	for _, places := range []int{1, 2, 4, 8} {
		rt := newRT(t, places)
		res, err := Run(rt, Config{Tree: g, GLB: glb.Config{Quantum: 256, DenseFinish: true}})
		if err != nil {
			t.Fatalf("places=%d: %v", places, err)
		}
		if res.Nodes != want {
			t.Errorf("places=%d: counted %d nodes, want %d", places, res.Nodes, want)
		}
		if res.Hashes != wantHashes {
			t.Errorf("places=%d: %d hashes, want %d", places, res.Hashes, wantHashes)
		}
		if res.Seconds <= 0 || res.NodesPerSecond() <= 0 {
			t.Errorf("places=%d: bad timing %v", places, res.Seconds)
		}
	}
}

func TestDistributedListBagMatchesSequential(t *testing.T) {
	g := tree(11)
	want, _ := g.CountSequential()
	rt := newRT(t, 4)
	res, err := Run(rt, Config{Tree: g, UseListBag: true, GLB: glb.Config{Quantum: 256}})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Nodes != want {
		t.Errorf("legacy bag counted %d, want %d", res.Nodes, want)
	}
}

func TestWeakScalingTreeGrowth(t *testing.T) {
	// Deeper trees must be (much) bigger: the weak-scaling knob works.
	n1, _ := tree(10).CountSequential()
	n2, _ := tree(12).CountSequential()
	if n2 < 4*n1 {
		t.Errorf("depth 10 -> 12 grew only %d -> %d", n1, n2)
	}
}
