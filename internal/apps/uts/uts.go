// Package uts implements the Unbalanced Tree Search benchmark of §6 of
// "X10 and APGAS at Petascale": counting the nodes of a geometric random
// tree generated on the fly, the canonical irregular workload that no
// static partitioning can balance.
//
// Two TaskBag implementations are provided for the glb balancer:
//
//   - IntervalBag is the paper's refined representation: pending work is a
//     list of intervals of siblings (parent descriptor, child range)
//     rather than expanded node lists, and a thief steals a fragment of
//     every interval in the list — the two changes §6.1 credits with "a
//     tremendous difference" for shallow trees.
//   - ListBag is the pre-refinement representation from the PPoPP'11
//     lifeline paper: an expanded list of nodes split in half on steals.
//     It exists for the ablation benchmarks.
package uts

import (
	"apgas/internal/glb"
	"apgas/internal/kernels/sha1rng"
)

// interval is a run of unexplored siblings: children [Lo, Hi) of Parent,
// living at depth Depth (the children's depth).
type interval struct {
	Parent sha1rng.Descriptor
	Lo, Hi uint32
	Depth  int
}

// IntervalBag is the compact work representation with per-interval
// fragment stealing.
type IntervalBag struct {
	tree   sha1rng.Tree
	work   []interval
	size   int64 // total pending nodes = sum of interval widths
	Nodes  uint64
	Hashes uint64
}

// NewIntervalBag creates a bag; at the root place seed it with Seed().
func NewIntervalBag(tree sha1rng.Tree) *IntervalBag {
	return &IntervalBag{tree: tree}
}

// Seed loads the root node into the bag (call at exactly one place).
// The root is represented as a pseudo-interval below a synthetic parent:
// we simply count it and push its children directly.
func (b *IntervalBag) Seed() {
	root := sha1rng.Root(b.tree.RootSeed())
	b.Hashes++
	b.Nodes++
	m := b.tree.NumChildren(root, 0)
	if m > 0 {
		b.push(interval{Parent: root, Lo: 0, Hi: uint32(m), Depth: 1})
	}
}

func (b *IntervalBag) push(iv interval) {
	b.work = append(b.work, iv)
	b.size += int64(iv.Hi - iv.Lo)
}

// Process expands up to quantum nodes depth-first.
func (b *IntervalBag) Process(quantum int) int {
	done := 0
	for done < quantum && len(b.work) > 0 {
		top := &b.work[len(b.work)-1]
		child := sha1rng.Child(top.Parent, top.Lo)
		b.Hashes++
		depth := top.Depth
		top.Lo++
		b.size--
		if top.Lo == top.Hi {
			b.work = b.work[:len(b.work)-1]
		}
		b.Nodes++
		done++
		if m := b.tree.NumChildren(child, depth); m > 0 {
			b.push(interval{Parent: child, Lo: 0, Hi: uint32(m), Depth: depth + 1})
		}
	}
	return done
}

// Size returns the pending node count.
func (b *IntervalBag) Size() int64 { return b.size }

// Split steals a fragment of every interval in the work list — the
// refinement that counteracts the bias the depth cut-off introduces for
// shallow trees: loot drawn only from the deepest intervals would be
// mostly about-to-be-cut-off nodes.
func (b *IntervalBag) Split() glb.TaskBag {
	if b.size < 2 {
		return nil
	}
	loot := &IntervalBag{tree: b.tree}
	for i := range b.work {
		iv := &b.work[i]
		width := iv.Hi - iv.Lo
		if width < 2 {
			continue
		}
		take := width / 2
		mid := iv.Hi - take
		loot.push(interval{Parent: iv.Parent, Lo: mid, Hi: iv.Hi, Depth: iv.Depth})
		iv.Hi = mid
		b.size -= int64(take)
	}
	if loot.size == 0 {
		return nil
	}
	// Compact: drop emptied intervals (width can never hit zero above,
	// but keep the invariant check cheap and explicit).
	return loot
}

// Merge adds stolen intervals and accumulates the loot's counters (loot
// bags arrive with zero counts; merged result bags fold in after a run).
func (b *IntervalBag) Merge(loot glb.TaskBag) {
	lb := loot.(*IntervalBag)
	for _, iv := range lb.work {
		b.push(iv)
	}
	b.Nodes += lb.Nodes
	b.Hashes += lb.Hashes
}

// node is an expanded tree node for the legacy representation.
type node struct {
	D     sha1rng.Descriptor
	Depth int
}

// ListBag is the legacy expanded-node-list representation ([35]): each
// pending node is materialized individually and steals take half the list.
type ListBag struct {
	tree   sha1rng.Tree
	work   []node
	Nodes  uint64
	Hashes uint64
}

// NewListBag creates a legacy bag.
func NewListBag(tree sha1rng.Tree) *ListBag {
	return &ListBag{tree: tree}
}

// Seed loads the root node (call at exactly one place).
func (b *ListBag) Seed() {
	b.work = append(b.work, node{D: sha1rng.Root(b.tree.RootSeed()), Depth: 0})
	b.Hashes++
}

// Process expands up to quantum nodes depth-first.
func (b *ListBag) Process(quantum int) int {
	done := 0
	for done < quantum && len(b.work) > 0 {
		n := b.work[len(b.work)-1]
		b.work = b.work[:len(b.work)-1]
		b.Nodes++
		done++
		m := b.tree.NumChildren(n.D, n.Depth)
		for i := 0; i < m; i++ {
			b.work = append(b.work, node{D: sha1rng.Child(n.D, uint32(i)), Depth: n.Depth + 1})
			b.Hashes++
		}
	}
	return done
}

// Size returns the pending node count.
func (b *ListBag) Size() int64 { return int64(len(b.work)) }

// Split takes the bottom half of the list (the shallowest, oldest nodes).
func (b *ListBag) Split() glb.TaskBag {
	if len(b.work) < 2 {
		return nil
	}
	half := len(b.work) / 2
	loot := &ListBag{tree: b.tree, work: make([]node, half)}
	copy(loot.work, b.work[:half])
	b.work = append(b.work[:0], b.work[half:]...)
	return loot
}

// Merge adds stolen nodes and folds counters.
func (b *ListBag) Merge(loot glb.TaskBag) {
	lb := loot.(*ListBag)
	b.work = append(b.work, lb.work...)
	b.Nodes += lb.Nodes
	b.Hashes += lb.Hashes
}
