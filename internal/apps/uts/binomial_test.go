package uts

import (
	"math"
	"testing"

	"apgas/internal/core"
	"apgas/internal/glb"
	"apgas/internal/kernels/sha1rng"
)

// binomialTree picks a subcritical configuration whose realized size is
// deterministic per seed.
func binomialTree(seed uint32) sha1rng.Binomial {
	return sha1rng.Binomial{B0: 500, M: 2, Q: 0.48, Seed: seed}
}

func TestBinomialExpectedSize(t *testing.T) {
	b := sha1rng.Binomial{B0: 100, M: 2, Q: 0.4}
	if got := b.ExpectedSize(); math.Abs(got-(1+100/0.2)) > 1e-9 {
		t.Errorf("ExpectedSize = %v, want 501", got)
	}
	crit := sha1rng.Binomial{B0: 1, M: 2, Q: 0.5}
	if !math.IsInf(crit.ExpectedSize(), 1) {
		t.Error("critical tree should have infinite expectation")
	}
}

func TestBinomialTreeIsDeepAndNarrow(t *testing.T) {
	// Walk the tree tracking depth: binomial trees have long thin chains,
	// unlike the shallow geometric family.
	tree := binomialTree(19)
	type frame struct {
		d     sha1rng.Descriptor
		depth int
	}
	maxDepth := 0
	nodes := 0
	stack := []frame{{sha1rng.Root(tree.Seed), 0}}
	for len(stack) > 0 && nodes < 2_000_000 {
		f := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		nodes++
		if f.depth > maxDepth {
			maxDepth = f.depth
		}
		m := tree.NumChildren(f.d, f.depth)
		for i := 0; i < m; i++ {
			stack = append(stack, frame{sha1rng.Child(f.d, uint32(i)), f.depth + 1})
		}
	}
	geo := sha1rng.Geometric{B0: 4, Depth: 12, Seed: 19}
	geoNodes, _ := geo.CountSequential()
	// The binomial tree must be much deeper relative to its size.
	if maxDepth < 30 {
		t.Errorf("binomial max depth = %d, expected a deep tree", maxDepth)
	}
	t.Logf("binomial: %d nodes depth %d; geometric: %d nodes depth 12", nodes, maxDepth, geoNodes)
}

func TestBinomialDistributedMatchesSequential(t *testing.T) {
	tree := binomialTree(19)
	want, _ := sha1rng.CountSequential(tree)
	if want < 100 {
		t.Fatalf("degenerate tree: %d nodes", want)
	}
	for _, listBag := range []bool{false, true} {
		rt, err := core.NewRuntime(core.Config{Places: 4, CheckPatterns: true})
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(rt, Config{
			Tree:       tree,
			UseListBag: listBag,
			GLB:        glb.Config{Quantum: 64, DenseFinish: true},
		})
		rt.Close()
		if err != nil {
			t.Fatalf("listBag=%v: %v", listBag, err)
		}
		if res.Nodes != want {
			t.Errorf("listBag=%v: counted %d, want %d", listBag, res.Nodes, want)
		}
	}
}

func TestBinomialDepthCap(t *testing.T) {
	capped := sha1rng.Binomial{B0: 4, M: 3, Q: 0.9, Seed: 7, MaxDepth: 6}
	n, _ := sha1rng.CountSequential(capped)
	if n == 0 {
		t.Fatal("empty tree")
	}
	// A supercritical law must still terminate under the cap, and the cap
	// bounds the size by the full M-ary tree.
	bound := uint64(0)
	pow := uint64(4)
	bound = 1
	for d := 1; d < 6; d++ {
		bound += pow
		pow *= 3
	}
	if n > bound {
		t.Errorf("n = %d exceeds depth-cap bound %d", n, bound)
	}
}
