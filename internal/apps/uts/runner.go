package uts

import (
	"fmt"
	"time"

	"apgas/internal/core"
	"apgas/internal/glb"
	"apgas/internal/kernels/sha1rng"
)

// Config describes one UTS run.
type Config struct {
	// Tree is the splittable random tree to traverse: the paper's
	// geometric configuration is sha1rng.Geometric{B0: 4, Seed: 19,
	// Depth: 14..22}; sha1rng.Binomial gives the deep-narrow family.
	Tree sha1rng.Tree
	// GLB tunes the balancer; the zero value selects the paper's
	// configuration except DenseFinish, which callers set explicitly.
	GLB glb.Config
	// UseListBag selects the legacy expanded-node representation instead
	// of intervals (for the §6.2 ablation against [35]).
	UseListBag bool
}

// Result is the outcome of a distributed traversal.
type Result struct {
	// Nodes is the total number of tree nodes counted.
	Nodes uint64
	// Hashes is the total number of SHA1 evaluations.
	Hashes uint64
	// Seconds is the traversal wall time.
	Seconds float64
	// Stats carries the balancer counters.
	Stats glb.Stats
}

// NodesPerSecond returns the headline UTS metric.
func (r Result) NodesPerSecond() float64 {
	if r.Seconds == 0 {
		return 0
	}
	return float64(r.Nodes) / r.Seconds
}

// Run performs the distributed traversal on rt and verifies nothing; use
// sha1rng.Geometric.CountSequential for ground truth in tests.
func Run(rt *core.Runtime, cfg Config) (Result, error) {
	var bags []glb.TaskBag
	makeBag := func(p core.Place) glb.TaskBag {
		var b glb.TaskBag
		if cfg.UseListBag {
			lb := NewListBag(cfg.Tree)
			if p == 0 {
				lb.Seed()
			}
			b = lb
		} else {
			ib := NewIntervalBag(cfg.Tree)
			if p == 0 {
				ib.Seed()
			}
			b = ib
		}
		bags = append(bags, b)
		return b
	}
	bal := glb.New(rt, cfg.GLB, makeBag)
	start := time.Now()
	err := rt.Run(func(ctx *core.Ctx) {
		if e := bal.Run(ctx); e != nil {
			panic(e)
		}
	})
	elapsed := time.Since(start).Seconds()
	if err != nil {
		return Result{}, fmt.Errorf("uts: %w", err)
	}
	res := Result{Seconds: elapsed, Stats: bal.Stats()}
	for _, b := range bags {
		switch bag := b.(type) {
		case *IntervalBag:
			res.Nodes += bag.Nodes
			res.Hashes += bag.Hashes
		case *ListBag:
			res.Nodes += bag.Nodes
			res.Hashes += bag.Hashes
		}
	}
	return res, nil
}
