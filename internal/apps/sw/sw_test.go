package sw

import (
	"testing"
	"testing/quick"

	"apgas/internal/core"
)

func TestScoreKnownAlignments(t *testing.T) {
	s := DefaultScoring()
	cases := []struct {
		q, tgt string
		want   int32
	}{
		{"ACGT", "ACGT", 8},  // perfect match: 4 x 2
		{"ACGT", "TTTT", 2},  // single T matches
		{"AAAA", "CCCC", 0},  // nothing aligns
		{"ACGT", "ACCGT", 7}, // one gap: 8 - 1... best local
		{"GGG", "AGGGA", 6},  // interior match
		{"A", "A", 2},
		{"", "ACGT", 0},
	}
	for _, c := range cases {
		if got := Score([]byte(c.q), []byte(c.tgt), s); got != c.want {
			t.Errorf("Score(%q, %q) = %d, want %d", c.q, c.tgt, got, c.want)
		}
	}
}

func TestScoreSymmetryOfLocality(t *testing.T) {
	// A local alignment score never decreases when the target is
	// extended on either side.
	s := DefaultScoring()
	q := []byte("ACGTAC")
	tgt := []byte("GGACGTACGG")
	inner := Score(q, tgt[2:8], s)
	outer := Score(q, tgt, s)
	if outer < inner {
		t.Errorf("extension reduced score: %d < %d", outer, inner)
	}
}

func TestMaxAlignmentSpan(t *testing.T) {
	if got := maxAlignmentSpan(100, DefaultScoring()); got != 300 {
		t.Errorf("span = %d, want 300", got)
	}
	if got := maxAlignmentSpan(10, Scoring{Match: 1, Mismatch: -1, Gap: -2}); got != 10 {
		t.Errorf("span = %d, want 10", got)
	}
}

func runSW(t *testing.T, places int, cfg Config) Result {
	t.Helper()
	rt, err := core.NewRuntime(core.Config{Places: places, CheckPatterns: true})
	if err != nil {
		t.Fatalf("NewRuntime: %v", err)
	}
	defer rt.Close()
	res, err := Run(rt, cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return res
}

func TestDistributedMatchesSequential(t *testing.T) {
	cfg := Config{QueryLen: 40, TargetPerPlace: 600, Seed: 13}
	for _, places := range []int{1, 2, 4, 5} {
		res := runSW(t, places, cfg)
		want := SequentialBest(cfg, places)
		if res.BestScore != want {
			t.Errorf("places=%d: best %d, sequential %d", places, res.BestScore, want)
		}
		if res.Cells <= 0 || res.Seconds <= 0 {
			t.Errorf("places=%d: bad accounting %+v", places, res)
		}
	}
}

// TestOverlapCatchesBoundaryAlignments: for random seeds the distributed
// maximum equals the sequential one — in particular when the best
// alignment straddles a fragment boundary.
func TestOverlapCatchesBoundaryAlignments(t *testing.T) {
	f := func(seed uint64) bool {
		cfg := Config{QueryLen: 24, TargetPerPlace: 200, Seed: seed}
		rt, err := core.NewRuntime(core.Config{Places: 4, CheckPatterns: true})
		if err != nil {
			return false
		}
		defer rt.Close()
		res, err := Run(rt, cfg)
		if err != nil {
			return false
		}
		return res.BestScore == SequentialBest(cfg, 4)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

func TestValidation(t *testing.T) {
	rt, err := core.NewRuntime(core.Config{Places: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	if _, err := Run(rt, Config{TargetPerPlace: 10}); err == nil {
		t.Error("zero query accepted")
	}
	if _, err := Run(rt, Config{QueryLen: 10}); err == nil {
		t.Error("zero target accepted")
	}
}
