// Package sw implements the Smith-Waterman benchmark of §7: the best
// local alignment of a short DNA sequence against a long one, parallelized
// the way the paper describes — "splitting the long sequence into
// overlapping fragments and computing in parallel the best match of the
// short sequence against each fragment. The best overall match is the best
// of the best matches."
//
// The dynamic program uses linear space (two rows) with linear gap
// penalties; the fragment overlap is sized so that any local alignment —
// whose extent along the target is bounded by the scoring scheme — lies
// entirely within at least one fragment, making the distributed maximum
// exactly equal to the sequential one.
package sw

import (
	"fmt"
	"time"

	"apgas/internal/collectives"
	"apgas/internal/core"
)

// Scoring holds the (linear-gap) scoring scheme.
type Scoring struct {
	Match    int32 // > 0
	Mismatch int32 // < 0
	Gap      int32 // < 0
}

// DefaultScoring returns the scheme used in the benchmarks.
func DefaultScoring() Scoring { return Scoring{Match: 2, Mismatch: -1, Gap: -1} }

// Config describes one run.
type Config struct {
	// QueryLen is the short sequence length (the paper used 4,000).
	QueryLen int
	// TargetPerPlace is the per-place share of the long sequence (the
	// paper used 40,000 per place — weak scaling).
	TargetPerPlace int
	// Iterations repeats the computation (the paper timed 5).
	Iterations int
	// Seed drives the random sequences.
	Seed uint64
	// Scoring is the alignment scheme (zero value selects the default).
	Scoring Scoring
	// Mode selects the collectives implementation.
	Mode collectives.Mode
}

// Result is one run's outcome.
type Result struct {
	Seconds   float64
	BestScore int32
	// Cells is the number of DP cells evaluated per iteration (across
	// all places), the throughput unit (CUPS).
	Cells int64
}

// base returns the i-th base of the reproducible random sequence named by
// (seed, which).
func base(seed uint64, which uint64, i int) byte {
	z := seed ^ which*0xa0761d6478bd642f ^ (uint64(i)+1)*0x9e3779b97f4a7c15
	z ^= z >> 31
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 29
	return "ACGT"[z&3]
}

// maxAlignmentSpan bounds the target-side extent of any positive-scoring
// local alignment: with linear gaps the alignment can contain at most
// QueryLen matches, and every extra target base costs at least |Gap|, so
// spans beyond QueryLen * (1 + Match/|Gap|) are strictly negative.
func maxAlignmentSpan(qlen int, s Scoring) int {
	gap := int(-s.Gap)
	if gap <= 0 {
		gap = 1
	}
	return qlen * (1 + int(s.Match)/gap)
}

// Run executes the benchmark.
func Run(rt *core.Runtime, cfg Config) (Result, error) {
	if cfg.QueryLen <= 0 || cfg.TargetPerPlace <= 0 {
		return Result{}, fmt.Errorf("sw: bad config %+v", cfg)
	}
	if cfg.Iterations <= 0 {
		cfg.Iterations = 1
	}
	if cfg.Scoring == (Scoring{}) {
		cfg.Scoring = DefaultScoring()
	}
	places := rt.NumPlaces()
	targetLen := cfg.TargetPerPlace * places
	overlap := maxAlignmentSpan(cfg.QueryLen, cfg.Scoring)

	query := make([]byte, cfg.QueryLen)
	for i := range query {
		query[i] = base(cfg.Seed, 1, i)
	}

	type local struct {
		fragment []byte
	}
	locals := core.NewPlaceLocal(rt, func(p core.Place) *local {
		// Fragment: [start, end) of the target with overlap carried on
		// the left so boundary-crossing alignments are found.
		start := int(p)*cfg.TargetPerPlace - overlap
		if start < 0 {
			start = 0
		}
		end := (int(p) + 1) * cfg.TargetPerPlace
		if end > targetLen {
			end = targetLen
		}
		frag := make([]byte, end-start)
		for i := range frag {
			frag[i] = base(cfg.Seed, 2, start+i)
		}
		return &local{fragment: frag}
	})
	team := collectives.New(rt, core.WorldGroup(rt), cfg.Mode)

	var seconds float64
	var best int32
	var cells int64
	rerr := rt.Run(func(ctx *core.Ctx) {
		group := core.WorldGroup(rt)
		if err := group.Broadcast(ctx, func(cc *core.Ctx) { locals.Get(cc) }); err != nil {
			panic(err)
		}
		start := time.Now()
		err := ctx.FinishPragma(core.PatternSPMD, func(cs *core.Ctx) {
			for _, p := range cs.Places() {
				cs.AtAsync(p, func(cc *core.Ctx) {
					me := locals.Get(cc)
					var localBest int32
					for it := 0; it < cfg.Iterations; it++ {
						localBest = Score(query, me.fragment, cfg.Scoring)
					}
					g := collectives.AllReduce(team, cc, []int32{localBest},
						func(a, b int32) int32 {
							if a > b {
								return a
							}
							return b
						})
					if cc.Place() == 0 {
						best = g[0]
					}
				})
			}
		})
		if err != nil {
			panic(err)
		}
		seconds = time.Since(start).Seconds()
	})
	if rerr != nil {
		return Result{}, fmt.Errorf("sw: %w", rerr)
	}
	for p := 0; p < places; p++ {
		cells += int64(len(locals.At(core.Place(p)).fragment)) * int64(cfg.QueryLen)
	}
	return Result{Seconds: seconds, BestScore: best, Cells: cells}, nil
}

// Score computes the best Smith-Waterman local alignment score of query
// against target with linear gap penalties, in O(len(query)) space.
func Score(query, target []byte, s Scoring) int32 {
	m := len(query)
	prev := make([]int32, m+1)
	cur := make([]int32, m+1)
	var best int32
	for j := 1; j <= len(target); j++ {
		tj := target[j-1]
		cur[0] = 0
		for i := 1; i <= m; i++ {
			sub := s.Mismatch
			if query[i-1] == tj {
				sub = s.Match
			}
			v := prev[i-1] + sub
			if up := prev[i] + s.Gap; up > v {
				v = up
			}
			if left := cur[i-1] + s.Gap; left > v {
				v = left
			}
			if v < 0 {
				v = 0
			}
			cur[i] = v
			if v > best {
				best = v
			}
		}
		prev, cur = cur, prev
	}
	return best
}

// SequentialBest scores the query against the full regenerated target on
// one goroutine — the oracle for tests.
func SequentialBest(cfg Config, places int) int32 {
	if cfg.Scoring == (Scoring{}) {
		cfg.Scoring = DefaultScoring()
	}
	query := make([]byte, cfg.QueryLen)
	for i := range query {
		query[i] = base(cfg.Seed, 1, i)
	}
	target := make([]byte, cfg.TargetPerPlace*places)
	for i := range target {
		target[i] = base(cfg.Seed, 2, i)
	}
	return Score(query, target, cfg.Scoring)
}
