package netsim_test

import (
	"fmt"

	"apgas/internal/netsim"
)

// The §4 bandwidth analysis: per-octant all-to-all bandwidth drops sharply
// from one supernode to two, then slowly recovers.
func ExampleMachine_AllToAllPerOctant() {
	m := netsim.Power775()
	for _, hosts := range []int{32, 64, 256, 1740} {
		fmt.Printf("%4d hosts: %5.2f GB/s per host\n", hosts, m.AllToAllPerOctant(hosts))
	}
	// Output:
	// 32 hosts: 96.00 GB/s per host
	//   64 hosts:  4.92 GB/s per host
	//  256 hosts: 19.92 GB/s per host
	// 1740 hosts: 96.00 GB/s per host
}
