package netsim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPower775Constants(t *testing.T) {
	m := Power775()
	if err := m.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if got := m.OctantsPerSupernode(); got != 32 {
		t.Errorf("OctantsPerSupernode = %d, want 32", got)
	}
	if got := m.TotalOctants(); got != 1792 {
		t.Errorf("TotalOctants = %d, want 1792", got)
	}
	if got := m.TotalCores(); got != 57344 {
		t.Errorf("TotalCores = %d, want 57344", got)
	}
	// 1,792 slots x 982 Gflop/s = 1.76 Pflop/s; the paper's 1.7 Pflop/s
	// figure counts the 1,740 available octants.
	if got := m.PeakGflopsPerOctant * 1740 / 1e6; math.Abs(got-1.708) > 0.01 {
		t.Errorf("available peak = %.3f Pflop/s, want ~1.71", got)
	}
}

func TestValidateCatchesBadMachines(t *testing.T) {
	cases := []func(*Machine){
		func(m *Machine) { m.CoresPerOctant = 0 },
		func(m *Machine) { m.OctantsPerDrawer = -1 },
		func(m *Machine) { m.DrawersPerSupernode = 0 },
		func(m *Machine) { m.Supernodes = 0 },
		func(m *Machine) { m.LLBandwidth = 0 },
		func(m *Machine) { m.OctantInjection = -5 },
	}
	for i, mutate := range cases {
		m := Power775()
		mutate(&m)
		if err := m.Validate(); err == nil {
			t.Errorf("case %d: Validate accepted a broken machine", i)
		}
	}
}

func TestPlaceMapping(t *testing.T) {
	m := Power775()
	// Place 0 and place 31 share octant 0; place 32 is octant 1.
	if m.Octant(0) != 0 || m.Octant(31) != 0 || m.Octant(32) != 1 {
		t.Error("octant mapping wrong for first places")
	}
	// Octants 0..7 are drawer 0; octant 8 is drawer 1.
	if m.Drawer(7*32) != 0 || m.Drawer(8*32) != 1 {
		t.Error("drawer mapping wrong")
	}
	// Octants 0..31 are supernode 0; octant 32 is supernode 1.
	if m.Supernode(31*32) != 0 || m.Supernode(32*32) != 1 {
		t.Error("supernode mapping wrong")
	}
}

func TestClassify(t *testing.T) {
	m := Power775()
	cases := []struct {
		src, dst int
		want     HopKind
		hops     int
	}{
		{0, 5, HopLocal, 0},   // same octant
		{0, 33, HopLL, 1},     // octant 0 -> 1, same drawer
		{0, 8 * 32, HopLR, 1}, // drawer 0 -> 1, same supernode
		{0, 32 * 32, HopD, 3}, // supernode 0 -> 1
		{40*32 + 3, 40*32 + 9, HopLocal, 0},
	}
	for _, c := range cases {
		if got := m.Classify(c.src, c.dst); got != c.want {
			t.Errorf("Classify(%d,%d) = %v, want %v", c.src, c.dst, got, c.want)
		}
		if got := m.Hops(c.src, c.dst); got != c.hops {
			t.Errorf("Hops(%d,%d) = %d, want %d", c.src, c.dst, got, c.hops)
		}
	}
}

func TestHopKindString(t *testing.T) {
	for h, want := range map[HopKind]string{HopLocal: "local", HopLL: "LL", HopLR: "LR", HopD: "D"} {
		if h.String() != want {
			t.Errorf("HopKind(%d).String() = %q, want %q", h, h.String(), want)
		}
	}
}

// TestAllToAllThreeModes checks the shape the paper describes in §4: a
// sharp drop in per-octant all-to-all bandwidth going from one supernode to
// two, a slow recovery with more supernodes, then a plateau.
func TestAllToAllThreeModes(t *testing.T) {
	m := Power775()
	oneSN := m.AllToAllPerOctant(32)
	twoSN := m.AllToAllPerOctant(64)
	eightSN := m.AllToAllPerOctant(8 * 32)
	full := m.AllToAllPerOctant(56 * 32)

	if twoSN >= oneSN/2 {
		t.Errorf("expected sharp drop at 2 supernodes: 1SN=%.2f 2SN=%.2f", oneSN, twoSN)
	}
	if !(eightSN > twoSN) {
		t.Errorf("expected recovery: 2SN=%.2f 8SN=%.2f", twoSN, eightSN)
	}
	if !(full >= eightSN) {
		t.Errorf("expected plateau/continued recovery: 8SN=%.2f full=%.2f", eightSN, full)
	}
	// Monotone non-increasing within a supernode is not required, but the
	// model must never exceed the injection limit.
	for _, oct := range []int{1, 2, 4, 8, 16, 32, 64, 128, 512, 1792} {
		if bw := m.AllToAllPerOctant(oct); bw > m.OctantInjection+1e-9 {
			t.Errorf("AllToAllPerOctant(%d) = %.2f exceeds injection limit", oct, bw)
		}
	}
}

// TestRandomAccessShape checks the RA model against the paper's measured
// endpoints: 0.82 Gup/s/host at 8 hosts and at 1,024 hosts, with a
// significantly lower rate in between (cross-section bound).
func TestRandomAccessShape(t *testing.T) {
	m := Power775()
	p := DefaultGUPSParams()
	at8 := m.RandomAccessGupsPerHost(8, p)
	at64 := m.RandomAccessGupsPerHost(64, p)
	at1024 := m.RandomAccessGupsPerHost(1024, p)

	if math.Abs(at8-0.82) > 1e-9 {
		t.Errorf("Gup/s/host at 8 hosts = %.3f, want 0.82", at8)
	}
	if math.Abs(at1024-0.82) > 1e-9 {
		t.Errorf("Gup/s/host at 1024 hosts = %.3f, want 0.82", at1024)
	}
	if at64 >= 0.5*at8 {
		t.Errorf("expected mid-scale dip: at64=%.3f vs at8=%.3f", at64, at8)
	}
	if small := m.RandomAccessGupsPerHost(4, p); small >= at8 {
		t.Errorf("sub-drawer runs should be derated: at4=%.3f", small)
	}
	if m.RandomAccessGupsPerHost(0, p) != 0 {
		t.Error("0 hosts should give 0")
	}
}

// TestFFTShape checks the FFT model: near-compute-bound at both ends of the
// scale (0.99 -> ~0.88 Gflop/s/core in the paper) with a dip in between.
func TestFFTShape(t *testing.T) {
	m := Power775()
	p := DefaultFFTParams()
	one := m.FFTGflopsPerCore(1, p)
	mid := m.FFTGflopsPerCore(64, p) // 2 supernodes: worst cross-section
	big := m.FFTGflopsPerCore(1024, p)

	if one < 0.9*p.CoreGflops {
		t.Errorf("single-host rate %.3f too far below compute rate %.3f", one, p.CoreGflops)
	}
	if !(mid < big && mid < one) {
		t.Errorf("expected mid-scale dip: one=%.3f mid=%.3f big=%.3f", one, mid, big)
	}
	if ratio := big / one; ratio < 0.7 || ratio > 1.0 {
		t.Errorf("at-scale/one-host ratio = %.2f, want in [0.7, 1.0] (paper: 0.89)", ratio)
	}
}

// TestStreamShape checks the memory-bus contention model: 12.6 GB/s alone,
// 7.23 GB/s/place with 32 places, ~2% loss at full scale.
func TestStreamShape(t *testing.T) {
	m := Power775()
	p := DefaultStreamParams()
	if got := m.StreamGBsPerPlace(1, p); math.Abs(got-12.6) > 1e-9 {
		t.Errorf("1 place = %.2f GB/s, want 12.6", got)
	}
	if got := m.StreamGBsPerPlace(32, p); math.Abs(got-7.23) > 1e-9 {
		t.Errorf("32 places = %.2f GB/s, want 7.23", got)
	}
	atScale := m.StreamGBsPerPlace(55680, p)
	if want := 7.23 * 0.98; math.Abs(atScale-want) > 0.01 {
		t.Errorf("at scale = %.3f GB/s, want ~%.3f", atScale, want)
	}
	// Monotone non-increasing in places-per-host region.
	prev := math.Inf(1)
	for n := 1; n <= 32; n++ {
		cur := m.StreamGBsPerPlace(n, p)
		if cur > prev+1e-9 {
			t.Errorf("per-place bandwidth increased at %d places", n)
		}
		prev = cur
	}
}

// TestAllToAllMatchesBruteForce cross-checks the closed-form D-link bound
// against a brute-force accounting of the traffic matrix.
func TestAllToAllMatchesBruteForce(t *testing.T) {
	m := Power775()
	f := func(snCount uint8) bool {
		s := int(snCount)%8 + 2 // 2..9 supernodes
		octants := s * m.OctantsPerSupernode()
		got := m.AllToAllPerOctant(octants)
		// Brute force: unit injection per octant, find max scale factor
		// such that every D pair fits.
		n := float64(octants)
		perSN := float64(m.OctantsPerSupernode())
		pair := perSN * perSN / (n - 1) // traffic per D pair per unit rate
		want := math.Min(m.OctantInjection, m.DBandwidth/pair)
		want = math.Min(want, m.LRBandwidth*(n-1))
		return math.Abs(got-want) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLatencyFunc(t *testing.T) {
	m := Power775()
	lp := DefaultLatencyParams()
	f := m.LatencyFunc(lp)
	local := f(0, 1, 0, 0)
	ll := f(0, 33, 0, 0)
	d := f(0, 32*32, 0, 0)
	if !(local < ll && ll < d) {
		t.Errorf("latency ordering violated: local=%v LL=%v D=%v", local, ll, d)
	}
	withBytes := f(0, 1, 1<<20, 0)
	if withBytes <= local {
		t.Errorf("size-dependent term missing: %v <= %v", withBytes, local)
	}
	// Scale=0 behaves as 1.
	lp2 := lp
	lp2.Scale = 0
	if got := m.LatencyFunc(lp2)(0, 33, 0, 0); got != ll {
		t.Errorf("Scale=0 should default to 1: got %v want %v", got, ll)
	}
	lp3 := lp
	lp3.Scale = 0.5
	if got := m.LatencyFunc(lp3)(0, 33, 0, 0); got >= ll {
		t.Errorf("Scale=0.5 should halve latency: got %v, base %v", got, ll)
	}
}
