package netsim

import "time"

// LatencyParams configure a per-message latency model suitable for
// injection into an x10rt transport. The constants are nominal Power
// 775-class figures scaled down so tests and experiments run quickly; what
// matters for the reproduced shapes is their relative order (local < LL <
// LR < D), not their absolute magnitude.
type LatencyParams struct {
	// Local is the software overhead of an intra-octant (shared-memory)
	// message.
	Local time.Duration
	// PerHop is the added latency per interconnect link crossed.
	PerHop time.Duration
	// BytesPerSecond converts message size into serialization delay.
	// Zero disables the size-dependent term.
	BytesPerSecond float64
	// Scale multiplies the final delay (use <1 to speed tests up, 0 for
	// the default of 1).
	Scale float64
}

// DefaultLatencyParams returns a fast-running default model.
func DefaultLatencyParams() LatencyParams {
	return LatencyParams{
		Local:          500 * time.Nanosecond,
		PerHop:         2 * time.Microsecond,
		BytesPerSecond: 10e9,
		Scale:          1,
	}
}

// LatencyFunc returns a function with the signature expected by
// x10rt.ChanOptions.Latency: it maps (src, dst, bytes) to a delivery delay
// according to the machine topology. The class argument is accepted for
// interface compatibility but unused: the Torrent does not privilege
// control traffic, which is exactly the problem FINISH_DENSE works around.
func (m Machine) LatencyFunc(p LatencyParams) func(src, dst, bytes int, class uint8) time.Duration {
	scale := p.Scale
	if scale == 0 {
		scale = 1
	}
	return func(src, dst, bytes int, _ uint8) time.Duration {
		d := p.Local + time.Duration(m.Hops(src, dst))*p.PerHop
		if p.BytesPerSecond > 0 && bytes > 0 {
			d += time.Duration(float64(bytes) / p.BytesPerSecond * float64(time.Second))
		}
		return time.Duration(float64(d) * scale)
	}
}
