package netsim

import "math"

// This file contains the analytic bandwidth models used to reproduce the
// interconnect-bound shapes in Figure 1 of the paper (RandomAccess and
// FFT) and the all-to-all analysis of §4.
//
// The models follow the paper's own account: for a partition of a given
// size one accounts for (a) the number and peak bandwidth of the LL, LR,
// and D links and (b) the peak interconnect bandwidth of each octant; the
// binding constraint determines throughput.

// AllToAllPerOctant returns the sustainable per-octant injection bandwidth
// (GB/s, one direction) for a uniform all-to-all among `octants` octants
// packed supernode by supernode. This is the quantity the paper says
// exhibits "a sharp drop ... when going from one supernode to two
// supernodes, followed by a slow recovery ... followed by a plateau".
func (m Machine) AllToAllPerOctant(octants int) float64 {
	if octants <= 1 {
		// A single octant has no one to talk to; report its injection
		// limit so curves have a well-defined left endpoint.
		return m.OctantInjection
	}
	n := float64(octants)
	perSN := m.OctantsPerSupernode()
	x := m.OctantInjection // candidate per-octant injection rate

	if octants <= perSN {
		// One supernode or less: every destination is one L link away.
		// Each link (pair of octants) carries x/(n-1); the tightest link
		// is an LR link once the partition spans drawers.
		link := m.LLBandwidth
		if octants > m.OctantsPerDrawer {
			link = m.LRBandwidth
		}
		x = math.Min(x, link*(n-1))
		return x
	}

	// Multiple supernodes. Octants split into full supernodes of perSN
	// (the paper maps places to hosts in order). For a pair of distinct
	// supernodes, the aggregate traffic is
	//   perSN octants x (perSN destinations / (n-1)) x x
	// and must fit in the D bandwidth of the pair.
	pairTraffic := float64(perSN) * float64(perSN) / (n - 1)
	x = math.Min(x, m.DBandwidth/pairTraffic)

	// Intra-supernode LR links still carry x/(n-1) each; never binding at
	// this scale but kept for model completeness.
	x = math.Min(x, m.LRBandwidth*(n-1))
	return x
}

// GUPSParams calibrate the RandomAccess model. Defaults reproduce the
// paper's measured 0.82 Gup/s/host endpoints (see DefaultGUPSParams).
type GUPSParams struct {
	// WireBytesPerUpdate is the effective wire cost of one remote XOR
	// update on D links, including packet overhead.
	WireBytesPerUpdate float64
	// HostUpdateLimit is the per-host injection-limited update rate in
	// Gup/s (the small-packet limit of one octant's interconnect
	// interface; the paper measures 0.82 Gup/s/host at both ends of the
	// scale, where this limit binds).
	HostUpdateLimit float64
	// SmallScalePenalty derates runs of fewer than one drawer, where the
	// paper notes "other network bottlenecks come into play (switching)".
	SmallScalePenalty float64
}

// DefaultGUPSParams returns the calibration used for the Figure 1 model.
func DefaultGUPSParams() GUPSParams {
	return GUPSParams{
		WireBytesPerUpdate: 16, // 8B data + 8B header/route on the wire
		HostUpdateLimit:    0.82,
		SmallScalePenalty:  0.70,
	}
}

// RandomAccessGupsPerHost returns the modeled Gup/s per host for a Global
// RandomAccess run on `hosts` octants. Updates go to uniformly random
// places, so the traffic matrix is the all-to-all matrix and the same
// link-vs-injection analysis applies, at small-packet rates.
func (m Machine) RandomAccessGupsPerHost(hosts int, p GUPSParams) float64 {
	if hosts <= 0 {
		return 0
	}
	rate := p.HostUpdateLimit // Gup/s per host, injection limited
	if hosts < m.OctantsPerDrawer {
		// Below one drawer other bottlenecks dominate (paper §5.2).
		return rate * p.SmallScalePenalty
	}
	perSN := m.OctantsPerSupernode()
	if hosts <= perSN {
		return rate
	}
	// Multiple supernodes: D links bound the cross-section. A pair of
	// supernodes exchanges perSN*perSN/(n-1) of each host's update
	// stream; converting GB/s capacity to Gup/s at WireBytesPerUpdate.
	n := float64(hosts)
	pairShare := float64(perSN) * float64(perSN) / (n - 1)
	dLimited := m.DBandwidth / (pairShare * p.WireBytesPerUpdate)
	return math.Min(rate, dLimited)
}

// FFTParams calibrate the Global FFT model.
type FFTParams struct {
	// CoreGflops is the per-core compute rate on the local FFT and data
	// shuffle phases (the paper measures 0.99 Gflop/s on one place and
	// attributes the gap to Class 1 to untuned sequential code).
	CoreGflops float64
	// BytesPerPointAllToAll is the volume per complex point per global
	// transpose (16 bytes per complex128, three transposes).
	BytesPerPointAllToAll float64
	// PointsPerCore is the per-core problem size (weak scaling).
	PointsPerCore float64
}

// DefaultFFTParams returns the calibration used for the Figure 1 model.
func DefaultFFTParams() FFTParams {
	return FFTParams{
		CoreGflops:            0.99,
		BytesPerPointAllToAll: 3 * 16, // three global transposes
		PointsPerCore:         1 << 26,
	}
}

// FFTGflopsPerCore returns the modeled per-core FFT rate for a run on
// `octants` hosts with CoresPerOctant places each. The 1-D FFT of N points
// costs 5*N*log2(N) flops; communication is three all-to-alls whose
// throughput comes from AllToAllPerOctant.
func (m Machine) FFTGflopsPerCore(octants int, p FFTParams) float64 {
	cores := float64(octants * m.CoresPerOctant)
	if octants == 1 {
		cores = float64(m.CoresPerOctant)
	}
	nTotal := p.PointsPerCore * cores
	flops := 5 * nTotal * math.Log2(nTotal)
	computeTime := flops / (cores * p.CoreGflops * 1e9)

	commTime := 0.0
	if octants > 1 {
		perOct := m.AllToAllPerOctant(octants) * 1e9 // B/s
		volumePerOctant := p.PointsPerCore * float64(m.CoresPerOctant) * p.BytesPerPointAllToAll
		commTime = volumePerOctant / perOct
	}
	total := computeTime + commTime
	return flops / total / (cores * 1e9)
}

// StreamParams calibrate the EP Stream model.
type StreamParams struct {
	// SinglePlaceGBs is the triad bandwidth of one place alone (12.6).
	SinglePlaceGBs float64
	// FullHostGBs is the per-place bandwidth with all 32 places running
	// (7.23), reduced by QCM memory-bus contention.
	FullHostGBs float64
	// JitterLoss is the fractional loss at full-system scale from jitter
	// and synchronization (the paper attributes a 2% loss).
	JitterLoss float64
}

// DefaultStreamParams returns the calibration used for the Figure 1 model.
func DefaultStreamParams() StreamParams {
	return StreamParams{SinglePlaceGBs: 12.6, FullHostGBs: 7.23, JitterLoss: 0.02}
}

// StreamGBsPerPlace returns the modeled triad bandwidth per place for a run
// with `places` places. Within one host, bandwidth interpolates between the
// single-place and contended rates on a saturating-bus model; beyond one
// host it is flat minus jitter loss.
func (m Machine) StreamGBsPerPlace(places int, p StreamParams) float64 {
	ppn := places
	if ppn > m.CoresPerOctant {
		ppn = m.CoresPerOctant
	}
	// Saturating shared bus: aggregate = min(n*single, busCap) where
	// busCap is chosen so that 32 places see FullHostGBs each.
	busCap := p.FullHostGBs * float64(m.CoresPerOctant)
	agg := math.Min(float64(ppn)*p.SinglePlaceGBs, busCap)
	per := agg / float64(ppn)
	if places > m.CoresPerOctant {
		per *= 1 - p.JitterLoss
	}
	return per
}
