// Package netsim models the IBM Power 775 system evaluated in "X10 and
// APGAS at Petascale" (PPoPP 2014), §4: its two-level direct-connect
// interconnect topology, link inventory, and the resulting bandwidth
// characteristics that shape the RandomAccess and FFT results.
//
// The paper's Hurcules machine is unavailable, so this package is the
// substitution substrate: an analytic model parameterized by the published
// hardware constants. The model reproduces the three performance modes the
// paper describes when scaling an all-to-all workload:
//
//  1. with one supernode or less, cross-section bandwidth is limited by
//     each octant's interconnect interface;
//  2. with a few supernodes, it is limited by aggregated D-link bandwidth
//     (a sharp per-octant drop going from one supernode to two);
//  3. with many supernodes, it is again limited per octant (slow recovery
//     followed by a plateau).
package netsim

import "fmt"

// Machine describes a Power 775-class system. The zero value is not useful;
// use Power775 or construct one explicitly.
type Machine struct {
	// CoresPerOctant is the number of cores (= places, in the paper's
	// configuration) per octant/host. 32 on the Power 775.
	CoresPerOctant int
	// OctantsPerDrawer is the number of octants in a physical drawer (8).
	OctantsPerDrawer int
	// DrawersPerSupernode is the number of drawers per supernode (4).
	DrawersPerSupernode int
	// Supernodes is the number of supernodes in the system (56).
	Supernodes int

	// LLBandwidth is the per-direction bandwidth of an "L" Local link
	// connecting two octants in the same drawer, in GB/s (24).
	LLBandwidth float64
	// LRBandwidth is the per-direction bandwidth of an "L" Remote link
	// connecting octants in different drawers of a supernode, in GB/s (5).
	LRBandwidth float64
	// DBandwidth is the combined per-direction bandwidth of the D links
	// connecting a pair of supernodes, in GB/s (8 links x 10 = 80).
	DBandwidth float64
	// OctantInjection is the peak per-direction interconnect bandwidth of
	// one octant in GB/s (192 GB/s bidirectional => 96 per direction).
	OctantInjection float64

	// PeakGflopsPerOctant is the octant's peak compute rate (982).
	PeakGflopsPerOctant float64
	// MemoryBandwidth is the octant's peak memory bandwidth in GB/s (512).
	MemoryBandwidth float64
}

// Power775 returns the machine used in the paper: 56 supernodes, 1,792
// octant slots with 1,740 available for computation, 55,680 cores,
// 1.7 Pflop/s theoretical peak.
func Power775() Machine {
	return Machine{
		CoresPerOctant:      32,
		OctantsPerDrawer:    8,
		DrawersPerSupernode: 4,
		Supernodes:          56,
		LLBandwidth:         24,
		LRBandwidth:         5,
		DBandwidth:          80,
		OctantInjection:     96,
		PeakGflopsPerOctant: 982,
		MemoryBandwidth:     512,
	}
}

// OctantsPerSupernode returns the octant count of one supernode (32).
func (m Machine) OctantsPerSupernode() int {
	return m.OctantsPerDrawer * m.DrawersPerSupernode
}

// TotalOctants returns the machine's octant slot count.
func (m Machine) TotalOctants() int {
	return m.OctantsPerSupernode() * m.Supernodes
}

// TotalCores returns the machine's core count.
func (m Machine) TotalCores() int {
	return m.TotalOctants() * m.CoresPerOctant
}

// PeakPflops returns the theoretical peak of the whole machine in Pflop/s.
func (m Machine) PeakPflops() float64 {
	return m.PeakGflopsPerOctant * float64(m.TotalOctants()) / 1e6
}

// Validate reports whether the machine description is self-consistent.
func (m Machine) Validate() error {
	switch {
	case m.CoresPerOctant <= 0:
		return fmt.Errorf("netsim: CoresPerOctant=%d", m.CoresPerOctant)
	case m.OctantsPerDrawer <= 0:
		return fmt.Errorf("netsim: OctantsPerDrawer=%d", m.OctantsPerDrawer)
	case m.DrawersPerSupernode <= 0:
		return fmt.Errorf("netsim: DrawersPerSupernode=%d", m.DrawersPerSupernode)
	case m.Supernodes <= 0:
		return fmt.Errorf("netsim: Supernodes=%d", m.Supernodes)
	case m.LLBandwidth <= 0 || m.LRBandwidth <= 0 || m.DBandwidth <= 0 || m.OctantInjection <= 0:
		return fmt.Errorf("netsim: non-positive link bandwidth")
	}
	return nil
}

// HopKind classifies the route between two places under the paper's
// "direct striped" routing (MP_RDMA_ROUTE_MODE=hw_direct_striped):
// intra-supernode messages use a single L link; inter-supernode messages
// use the direct D links between the two supernodes.
type HopKind int

const (
	// HopLocal means the two places share an octant (shared memory; PAMI
	// still mediates but no interconnect link is crossed).
	HopLocal HopKind = iota
	// HopLL means different octants in the same drawer (one L Local link).
	HopLL
	// HopLR means same supernode, different drawers (one L Remote link).
	HopLR
	// HopD means different supernodes (L-D-L, at most three hops).
	HopD
)

// String names the hop kind.
func (h HopKind) String() string {
	switch h {
	case HopLocal:
		return "local"
	case HopLL:
		return "LL"
	case HopLR:
		return "LR"
	case HopD:
		return "D"
	default:
		return fmt.Sprintf("hop(%d)", int(h))
	}
}

// Octant returns the octant (host) index of a place, with places assigned
// to hosts in groups of CoresPerOctant as in the paper's runs.
func (m Machine) Octant(place int) int { return place / m.CoresPerOctant }

// Drawer returns the drawer index of a place.
func (m Machine) Drawer(place int) int { return m.Octant(place) / m.OctantsPerDrawer }

// Supernode returns the supernode index of a place.
func (m Machine) Supernode(place int) int {
	return m.Octant(place) / m.OctantsPerSupernode()
}

// Classify returns the route class between two places.
func (m Machine) Classify(src, dst int) HopKind {
	switch {
	case m.Octant(src) == m.Octant(dst):
		return HopLocal
	case m.Drawer(src) == m.Drawer(dst):
		return HopLL
	case m.Supernode(src) == m.Supernode(dst):
		return HopLR
	default:
		return HopD
	}
}

// Hops returns the number of interconnect links crossed between two places
// (0 for intra-octant, 1 for intra-supernode, at most 3 for L-D-L routes).
func (m Machine) Hops(src, dst int) int {
	switch m.Classify(src, dst) {
	case HopLocal:
		return 0
	case HopLL, HopLR:
		return 1
	default:
		return 3
	}
}
