package netsim

import (
	"math"
	"testing"
)

// TestSimulationMatchesClosedForm: the water-filling simulation and the
// analytic AllToAllPerOctant must agree (the analytic model's derivation
// is exactly the symmetric max-min fixed point).
func TestSimulationMatchesClosedForm(t *testing.T) {
	m := Power775()
	for _, octants := range []int{2, 4, 8, 16, 32, 64, 96, 128} {
		analytic := m.AllToAllPerOctant(octants)
		simulated := m.SimulatedAllToAllPerOctant(octants)
		if rel := math.Abs(analytic-simulated) / analytic; rel > 0.02 {
			t.Errorf("octants=%d: analytic %.3f vs simulated %.3f (rel %.3f)",
				octants, analytic, simulated, rel)
		}
	}
}

func TestRouteOf(t *testing.T) {
	m := Power775()
	// Same drawer: injection + ejection + LL.
	r := m.routeOf(0, 1)
	if len(r) != 3 || r[2].kind != linkL {
		t.Fatalf("intra-drawer route = %+v", r)
	}
	if m.capacityOf(r[2]) != m.LLBandwidth {
		t.Errorf("intra-drawer link capacity = %v", m.capacityOf(r[2]))
	}
	// Same supernode, different drawer: LR capacity.
	r = m.routeOf(0, 8)
	if m.capacityOf(r[2]) != m.LRBandwidth {
		t.Errorf("LR capacity = %v", m.capacityOf(r[2]))
	}
	// Different supernodes: D bundle.
	r = m.routeOf(0, 32)
	if r[2].kind != linkD || m.capacityOf(r[2]) != m.DBandwidth {
		t.Errorf("D route = %+v cap %v", r[2], m.capacityOf(r[2]))
	}
	// Links are directional: the reverse flow uses a different D link.
	r2 := m.routeOf(32, 0)
	if r[2] == r2[2] {
		t.Errorf("D links should be directional: %+v vs %+v", r[2], r2[2])
	}
}

func TestMaxMinRespectsCapacities(t *testing.T) {
	m := Power775()
	flows := make([]*Flow, 0, 64*63)
	for s := 0; s < 64; s++ {
		for d := 0; d < 64; d++ {
			if s != d {
				flows = append(flows, &Flow{Src: s, Dst: d})
			}
		}
	}
	m.MaxMinRates(flows)
	// Sum rates per link and compare against capacity.
	usage := map[linkRef]float64{}
	for _, f := range flows {
		for _, l := range m.routeOf(f.Src, f.Dst) {
			usage[l] += f.rate
		}
	}
	for l, u := range usage {
		if cap := m.capacityOf(l); u > cap*(1+1e-9) {
			t.Fatalf("link %+v oversubscribed: %.3f > %.3f", l, u, cap)
		}
	}
	// Every flow got a positive rate.
	for _, f := range flows {
		if f.rate <= 0 {
			t.Fatalf("flow %d->%d has rate %v", f.Src, f.Dst, f.rate)
		}
	}
}

func TestSimulateCompletion(t *testing.T) {
	m := Power775()
	// One intra-drawer flow: limited by the LL link (24 GB/s).
	flows := []*Flow{{Src: 0, Dst: 1, Bytes: 24e9}}
	sec := m.SimulateCompletion(flows)
	if math.Abs(sec-1.0) > 1e-9 {
		t.Errorf("single flow completion = %v s, want 1.0", sec)
	}
	// Asymmetric pattern: a hot receiver. 40 senders into one octant
	// share its ejection interface (96 GB/s).
	flows = flows[:0]
	for s := 1; s <= 40; s++ {
		flows = append(flows, &Flow{Src: s, Dst: 0, Bytes: 1e9})
	}
	sec = m.SimulateCompletion(flows)
	want := 40.0 * 1e9 / (m.OctantInjection * 1e9)
	if math.Abs(sec-want)/want > 0.05 {
		t.Errorf("incast completion = %v s, want ~%v", sec, want)
	}
}
