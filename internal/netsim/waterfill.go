package netsim

// This file cross-validates the closed-form bandwidth model with an
// explicit flow-level simulation: every (src, dst) octant pair of an
// all-to-all is a flow, every flow claims capacity on the links of its
// hw_direct_striped route (source injection, destination ejection, and
// either the L link of its supernode or the D-link bundle of its
// supernode pair), and rates are assigned max-min fairly by progressive
// water-filling. For the symmetric all-to-all the fair allocation matches
// the closed form; the simulation exists so the analytic model is checked
// against first principles rather than against itself, and so asymmetric
// traffic matrices can be explored.

// linkRef identifies a capacity-constrained resource. All links are
// directional — the paper quotes LL/LR/D capacities "in each direction" —
// so (a, b) is an ordered pair.
type linkRef struct {
	kind linkKind
	a, b int // ordered endpoints (octants or supernodes, by kind)
}

type linkKind uint8

const (
	linkInject linkKind = iota // octant a's injection interface
	linkEject                  // octant a's ejection interface
	linkL                      // L link from octant a to octant b
	linkD                      // D bundle from supernode a to supernode b
)

// Flow is one traffic demand between two octants.
type Flow struct {
	Src, Dst int
	// Bytes is the flow's volume (used by SimulateCompletion).
	Bytes float64
	rate  float64
	fixed bool
	links []linkRef
}

// capacityOf returns a link's capacity in GB/s.
func (m Machine) capacityOf(l linkRef) float64 {
	switch l.kind {
	case linkInject, linkEject:
		return m.OctantInjection
	case linkL:
		// Same drawer: LL; same supernode, different drawer: LR.
		if l.a/m.OctantsPerDrawer == l.b/m.OctantsPerDrawer {
			return m.LLBandwidth
		}
		return m.LRBandwidth
	case linkD:
		return m.DBandwidth
	default:
		return 0
	}
}

// routeOf lists the links flow (src, dst) occupies under direct striped
// routing. Octant indices, not places.
func (m Machine) routeOf(src, dst int) []linkRef {
	links := []linkRef{
		{kind: linkInject, a: src},
		{kind: linkEject, a: dst},
	}
	perSN := m.OctantsPerSupernode()
	sSrc, sDst := src/perSN, dst/perSN
	if sSrc == sDst {
		links = append(links, linkRef{kind: linkL, a: src, b: dst})
	} else {
		links = append(links, linkRef{kind: linkD, a: sSrc, b: sDst})
	}
	return links
}

// MaxMinRates assigns max-min fair rates (GB/s) to the flows in place:
// repeatedly find the most contended link, fix its flows at the fair
// share, remove the capacity, and continue until all flows are fixed.
func (m Machine) MaxMinRates(flows []*Flow) {
	remCap := make(map[linkRef]float64)
	active := make(map[linkRef]int)
	for _, f := range flows {
		f.links = m.routeOf(f.Src, f.Dst)
		f.fixed = false
		f.rate = 0
		for _, l := range f.links {
			if _, ok := remCap[l]; !ok {
				remCap[l] = m.capacityOf(l)
			}
			active[l]++
		}
	}
	remaining := len(flows)
	for remaining > 0 {
		// Bottleneck link: smallest fair share among links with active
		// flows.
		var bottleneck linkRef
		best := -1.0
		for l, n := range active {
			if n == 0 {
				continue
			}
			share := remCap[l] / float64(n)
			if best < 0 || share < best {
				best = share
				bottleneck = l
			}
		}
		if best < 0 {
			break
		}
		// Fix every unfixed flow crossing the bottleneck.
		for _, f := range flows {
			if f.fixed {
				continue
			}
			crosses := false
			for _, l := range f.links {
				if l == bottleneck {
					crosses = true
					break
				}
			}
			if !crosses {
				continue
			}
			f.fixed = true
			f.rate = best
			remaining--
			for _, l := range f.links {
				remCap[l] -= best
				active[l]--
			}
		}
	}
}

// SimulatedAllToAllPerOctant runs the flow simulation for a balanced
// all-to-all over `octants` octants — equal volume between every ordered
// pair — and returns the effective per-octant injection bandwidth: the
// volume each octant must deliver divided by the makespan. This is the
// quantity AllToAllPerOctant computes in closed form: a balanced exchange
// is only as fast as its slowest flow class, even though max-min fairness
// lets the unconstrained classes run faster in the meantime.
func (m Machine) SimulatedAllToAllPerOctant(octants int) float64 {
	if octants <= 1 {
		return m.OctantInjection
	}
	const volume = 1e9 // bytes per pair; cancels out
	flows := make([]*Flow, 0, octants*(octants-1))
	for s := 0; s < octants; s++ {
		for d := 0; d < octants; d++ {
			if s != d {
				flows = append(flows, &Flow{Src: s, Dst: d, Bytes: volume})
			}
		}
	}
	makespan := m.SimulateCompletion(flows)
	if makespan <= 0 {
		return 0
	}
	perOctantBytes := volume * float64(octants-1)
	return perOctantBytes / makespan / 1e9
}

// SimulateCompletion returns the makespan (seconds) of transferring every
// flow's Bytes at the max-min rates, assuming rates hold for the duration
// (a single water-filling epoch — adequate for symmetric patterns where
// all flows finish together).
func (m Machine) SimulateCompletion(flows []*Flow) float64 {
	m.MaxMinRates(flows)
	worst := 0.0
	for _, f := range flows {
		if f.rate <= 0 {
			continue
		}
		t := f.Bytes / (f.rate * 1e9)
		if t > worst {
			worst = t
		}
	}
	return worst
}
