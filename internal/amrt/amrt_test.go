package amrt

import (
	"encoding/binary"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"apgas/internal/x10rt"
)

// newChanCluster builds n amrt runtimes over one in-process transport.
func newChanCluster(t *testing.T, n int) []*Runtime {
	t.Helper()
	tr, err := x10rt.NewChanTransport(x10rt.ChanOptions{Places: n})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { tr.Close() })
	// One shared transport: handler registration is global, so a single
	// Runtime would suffice for dispatch, but each place needs its own
	// call/finish state. Register the transport handlers once and fan
	// out by place through a router.
	return newCluster(t, sharedEndpoints(tr, n))
}

// sharedEndpoints adapts one in-process transport into per-place views.
func sharedEndpoints(tr x10rt.Transport, n int) []x10rt.Transport {
	router := &chanRouter{tr: tr, eps: make([]*routedEndpoint, n)}
	out := make([]x10rt.Transport, n)
	for i := 0; i < n; i++ {
		ep := &routedEndpoint{router: router, me: i, handlers: map[x10rt.HandlerID]x10rt.Handler{}}
		router.eps[i] = ep
		out[i] = ep
	}
	return out
}

// chanRouter demultiplexes one shared transport to per-place handler sets
// (the TCP mesh gives each place its own endpoint natively; in-process we
// need the split so each Runtime registers independently).
type chanRouter struct {
	tr       x10rt.Transport
	eps      []*routedEndpoint
	register sync.Once
	err      error
}

type routedEndpoint struct {
	router   *chanRouter
	me       int
	mu       sync.Mutex
	handlers map[x10rt.HandlerID]x10rt.Handler
}

func (e *routedEndpoint) NumPlaces() int { return len(e.router.eps) }

func (e *routedEndpoint) Register(id x10rt.HandlerID, h x10rt.Handler) error {
	e.mu.Lock()
	e.handlers[id] = h
	e.mu.Unlock()
	e.router.register.Do(func() {
		for probe := hCall; probe <= hBarrier; probe++ {
			probe := probe
			e.router.err = e.router.tr.Register(probe, func(src, dst int, payload any) {
				ep := e.router.eps[dst]
				ep.mu.Lock()
				hh := ep.handlers[probe]
				ep.mu.Unlock()
				if hh != nil {
					hh(src, dst, payload)
				}
			})
			if e.router.err != nil {
				return
			}
		}
	})
	return e.router.err
}

func (e *routedEndpoint) Send(src, dst int, id x10rt.HandlerID, payload any, bytes int, class x10rt.Class) error {
	return e.router.tr.Send(src, dst, id, payload, bytes, class)
}

func (e *routedEndpoint) Stats() x10rt.Stats { return e.router.tr.Stats() }
func (e *routedEndpoint) Close() error       { return nil }

// newTCPCluster builds n amrt runtimes over a real loopback TCP mesh.
func newTCPCluster(t *testing.T, n int) []*Runtime {
	t.Helper()
	mesh, err := x10rt.NewLocalTCPMesh(n)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		for _, tr := range mesh {
			tr.Close()
		}
	})
	eps := make([]x10rt.Transport, n)
	for i, tr := range mesh {
		eps[i] = tr
	}
	return newCluster(t, eps)
}

func newCluster(t *testing.T, eps []x10rt.Transport) []*Runtime {
	t.Helper()
	rts := make([]*Runtime, len(eps))
	for i, ep := range eps {
		r, err := New(ep, i)
		if err != nil {
			t.Fatalf("New(%d): %v", i, err)
		}
		rts[i] = r
	}
	return rts
}

func u64(v uint64) []byte {
	b := make([]byte, 8)
	binary.BigEndian.PutUint64(b, v)
	return b
}

func toU64(b []byte) uint64 { return binary.BigEndian.Uint64(b) }

// clusterKinds runs a subtest over both substrate kinds.
func clusterKinds(t *testing.T, n int, f func(t *testing.T, rts []*Runtime)) {
	t.Run("chan", func(t *testing.T) { f(t, newChanCluster(t, n)) })
	t.Run("tcp", func(t *testing.T) { f(t, newTCPCluster(t, n)) })
}

func TestCallRoundTrip(t *testing.T) {
	clusterKinds(t, 3, func(t *testing.T, rts []*Runtime) {
		for _, r := range rts {
			r.Register("square", func(src int, arg []byte) []byte {
				v := toU64(arg)
				return u64(v * v)
			})
		}
		out, err := rts[0].Call(2, "square", u64(9))
		if err != nil {
			t.Fatal(err)
		}
		if toU64(out) != 81 {
			t.Fatalf("got %d", toU64(out))
		}
	})
}

func TestFinishCountsSpawns(t *testing.T) {
	clusterKinds(t, 4, func(t *testing.T, rts []*Runtime) {
		var n atomic.Int64
		for _, r := range rts {
			r.Register("inc", func(int, []byte) []byte {
				n.Add(1)
				return nil
			})
		}
		err := rts[0].Finish(func(spawn func(int, string, []byte)) {
			for d := 0; d < 4; d++ {
				for rep := 0; rep < 5; rep++ {
					spawn(d, "inc", nil)
				}
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		if n.Load() != 20 {
			t.Fatalf("n = %d, want 20", n.Load())
		}
	})
}

func TestDistributedSum(t *testing.T) {
	// The canonical SPMD pattern: place 0 farms out ranges, workers
	// compute partial sums, Call returns them.
	clusterKinds(t, 4, func(t *testing.T, rts []*Runtime) {
		for _, r := range rts {
			r.Register("sumRange", func(src int, arg []byte) []byte {
				lo, hi := toU64(arg[:8]), toU64(arg[8:])
				var s uint64
				for v := lo; v < hi; v++ {
					s += v
				}
				return u64(s)
			})
		}
		const total = 10000
		var sum atomic.Uint64
		err := rts[0].Finish(func(spawn func(int, string, []byte)) {
			// Use Call from a fan of goroutines instead of spawn, to
			// exercise concurrent calls.
			var wg sync.WaitGroup
			for d := 0; d < 4; d++ {
				wg.Add(1)
				go func(d int) {
					defer wg.Done()
					lo := uint64(d * total / 4)
					hi := uint64((d + 1) * total / 4)
					arg := append(u64(lo), u64(hi)...)
					out, err := rts[0].Call(d, "sumRange", arg)
					if err != nil {
						t.Errorf("call: %v", err)
						return
					}
					sum.Add(toU64(out))
				}(d)
			}
			wg.Wait()
		})
		if err != nil {
			t.Fatal(err)
		}
		if want := uint64(total) * (total - 1) / 2; sum.Load() != want {
			t.Fatalf("sum = %d, want %d", sum.Load(), want)
		}
	})
}

func TestBarrierSynchronizes(t *testing.T) {
	clusterKinds(t, 5, func(t *testing.T, rts []*Runtime) {
		var entered atomic.Int64
		var wg sync.WaitGroup
		errs := make(chan error, 3*len(rts))
		for _, r := range rts {
			wg.Add(1)
			go func(r *Runtime) {
				defer wg.Done()
				for round := 1; round <= 3; round++ {
					entered.Add(1)
					if err := r.Barrier(); err != nil {
						errs <- err
						return
					}
					if got := entered.Load(); got < int64(round*len(rts)) {
						t.Errorf("round %d: only %d entered before release", round, got)
						return
					}
				}
			}(r)
		}
		done := make(chan struct{})
		go func() { wg.Wait(); close(done) }()
		select {
		case <-done:
		case err := <-errs:
			t.Fatal(err)
		case <-time.After(20 * time.Second):
			t.Fatal("barrier deadlock")
		}
	})
}

func TestSinglePlaceDegenerate(t *testing.T) {
	rts := newChanCluster(t, 1)
	if err := rts[0].Barrier(); err != nil {
		t.Fatal(err)
	}
	rts[0].Register("echo", func(src int, arg []byte) []byte { return arg })
	out, err := rts[0].Call(0, "echo", []byte("hi"))
	if err != nil || string(out) != "hi" {
		t.Fatalf("self call: %q %v", out, err)
	}
	if err := rts[0].Finish(func(spawn func(int, string, []byte)) {
		spawn(0, "echo", nil)
	}); err != nil {
		t.Fatal(err)
	}
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	rts := newChanCluster(t, 1)
	rts[0].Register("x", func(int, []byte) []byte { return nil })
	defer func() {
		if recover() == nil {
			t.Error("duplicate Register did not panic")
		}
	}()
	rts[0].Register("x", func(int, []byte) []byte { return nil })
}
