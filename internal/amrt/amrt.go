// Package amrt is an active-message runtime: the subset of the APGAS
// programming model that works across address spaces, built directly on
// the x10rt transport layer. Where package core ships Go closures between
// in-process places, amrt ships (handler name, argument bytes) pairs — the
// form a multi-process deployment over the TCP transport requires, since
// closures do not serialize. It is the repository's demonstration that the
// runtime's layering holds up over real sockets: the same finish-counting
// and collective protocols, with registration replacing closure capture.
//
// The programming model:
//
//   - Register named handlers (identically at every endpoint, the SPMD
//     registration rule of X10RT).
//   - Call performs a synchronous remote invocation with a reply
//     (at-expression style).
//   - Finish/Spawn provide FINISH_SPMD-style termination detection:
//     activities spawned by the finish body are counted home with one
//     completion message each; spawned handlers may Call freely but must
//     wrap further Spawns in their own Finish.
//   - Barrier is a dissemination barrier over active messages.
package amrt

import (
	"fmt"
	"sync"
	"sync/atomic"

	"apgas/internal/x10rt"
)

// Handler is a named remote procedure: it receives the calling place and
// argument bytes and returns reply bytes (nil is fine).
type Handler func(src int, arg []byte) []byte

// Runtime is one place's endpoint of an active-message computation.
type Runtime struct {
	tr x10rt.Transport
	me int

	mu       sync.Mutex
	handlers map[string]Handler

	callSeq   atomic.Uint64
	callMu    sync.Mutex
	callWait  map[uint64]chan []byte
	finSeq    atomic.Uint64
	finMu     sync.Mutex
	finishes  map[uint64]*finState
	barrierMu sync.Mutex
	barrier   map[barrierKey]chan struct{}
	round     uint64
}

type finState struct {
	mu      sync.Mutex
	pending int
	done    chan struct{}
	waiting bool
}

type barrierKey struct {
	Round uint64
	Step  int
	Src   int
}

// Wire message types (gob-encoded over TCP transports).
type callMsg struct {
	ID   uint64
	Name string
	Arg  []byte
}

type replyMsg struct {
	ID  uint64
	Out []byte
}

type spawnTask struct {
	Fin  uint64
	Home int
	Name string
	Arg  []byte
}

type spawnDone struct {
	Fin uint64
}

type barrierTok struct {
	Round uint64
	Step  int
}

func init() {
	x10rt.RegisterWireType(callMsg{})
	x10rt.RegisterWireType(replyMsg{})
	x10rt.RegisterWireType(spawnTask{})
	x10rt.RegisterWireType(spawnDone{})
	x10rt.RegisterWireType(barrierTok{})
}

// amrt handler identifiers, above the core runtime's reserved range.
const (
	hCall x10rt.HandlerID = x10rt.UserHandlerBase + 16 + iota
	hReply
	hSpawn
	hSpawnDone
	hBarrier
)

// New creates the runtime for place me on tr and registers its transport
// handlers. Each endpoint of a mesh gets its own Runtime.
func New(tr x10rt.Transport, me int) (*Runtime, error) {
	r := &Runtime{
		tr:       tr,
		me:       me,
		handlers: make(map[string]Handler),
		callWait: make(map[uint64]chan []byte),
		finishes: make(map[uint64]*finState),
		barrier:  make(map[barrierKey]chan struct{}),
	}
	for id, h := range map[x10rt.HandlerID]x10rt.Handler{
		hCall:      r.onCall,
		hReply:     r.onReply,
		hSpawn:     r.onSpawn,
		hSpawnDone: r.onSpawnDone,
		hBarrier:   r.onBarrier,
	} {
		if err := tr.Register(id, h); err != nil {
			return nil, err
		}
	}
	return r, nil
}

// Place returns this endpoint's place index.
func (r *Runtime) Place() int { return r.me }

// Places returns the number of places in the mesh.
func (r *Runtime) Places() int { return r.tr.NumPlaces() }

// Register installs a named handler. Names must be registered identically
// at every place before use.
func (r *Runtime) Register(name string, h Handler) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.handlers[name]; dup {
		panic(fmt.Sprintf("amrt: handler %q already registered", name))
	}
	r.handlers[name] = h
}

func (r *Runtime) lookup(name string) Handler {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.handlers[name]
}

// Call invokes the named handler at dst and blocks for its reply.
func (r *Runtime) Call(dst int, name string, arg []byte) ([]byte, error) {
	id := r.callSeq.Add(1)
	ch := make(chan []byte, 1)
	r.callMu.Lock()
	r.callWait[id] = ch
	r.callMu.Unlock()
	err := r.tr.Send(r.me, dst, hCall, callMsg{ID: id, Name: name, Arg: arg},
		16+len(arg), x10rt.DataClass)
	if err != nil {
		r.callMu.Lock()
		delete(r.callWait, id)
		r.callMu.Unlock()
		return nil, err
	}
	return <-ch, nil
}

func (r *Runtime) onCall(src, dst int, payload any) {
	m := payload.(callMsg)
	h := r.lookup(m.Name)
	if h == nil {
		panic(fmt.Sprintf("amrt: call to unregistered handler %q at place %d", m.Name, dst))
	}
	// Run the handler off the dispatcher so handlers may Call in turn.
	go func() {
		out := h(src, m.Arg)
		if err := r.tr.Send(r.me, src, hReply, replyMsg{ID: m.ID, Out: out},
			16+len(out), x10rt.DataClass); err != nil {
			panic(fmt.Sprintf("amrt: reply: %v", err))
		}
	}()
}

func (r *Runtime) onReply(src, dst int, payload any) {
	m := payload.(replyMsg)
	r.callMu.Lock()
	ch := r.callWait[m.ID]
	delete(r.callWait, m.ID)
	r.callMu.Unlock()
	if ch != nil {
		ch <- m.Out
	}
}

// Finish runs body, whose Spawn calls are counted, and blocks until every
// spawned handler has completed — the FINISH_SPMD protocol: one completion
// message per spawn, order and source irrelevant.
func (r *Runtime) Finish(body func(spawn func(dst int, name string, arg []byte))) error {
	id := r.finSeq.Add(1)
	st := &finState{done: make(chan struct{})}
	r.finMu.Lock()
	r.finishes[id] = st
	r.finMu.Unlock()

	var spawnErr error
	spawn := func(dst int, name string, arg []byte) {
		st.mu.Lock()
		st.pending++
		st.mu.Unlock()
		err := r.tr.Send(r.me, dst, hSpawn,
			spawnTask{Fin: id, Home: r.me, Name: name, Arg: arg},
			24+len(arg), x10rt.DataClass)
		if err != nil && spawnErr == nil {
			spawnErr = err
		}
	}
	body(spawn)

	st.mu.Lock()
	st.waiting = true
	donealready := st.pending == 0
	st.mu.Unlock()
	if !donealready {
		<-st.done
	}
	r.finMu.Lock()
	delete(r.finishes, id)
	r.finMu.Unlock()
	return spawnErr
}

func (r *Runtime) onSpawn(src, dst int, payload any) {
	m := payload.(spawnTask)
	h := r.lookup(m.Name)
	if h == nil {
		panic(fmt.Sprintf("amrt: spawn of unregistered handler %q at place %d", m.Name, dst))
	}
	go func() {
		h(src, m.Arg)
		if err := r.tr.Send(r.me, m.Home, hSpawnDone, spawnDone{Fin: m.Fin},
			16, x10rt.ControlClass); err != nil {
			panic(fmt.Sprintf("amrt: spawn done: %v", err))
		}
	}()
}

func (r *Runtime) onSpawnDone(src, dst int, payload any) {
	m := payload.(spawnDone)
	r.finMu.Lock()
	st := r.finishes[m.Fin]
	r.finMu.Unlock()
	if st == nil {
		panic(fmt.Sprintf("amrt: completion for unknown finish %d", m.Fin))
	}
	st.mu.Lock()
	st.pending--
	fire := st.waiting && st.pending == 0
	st.mu.Unlock()
	if fire {
		close(st.done)
	}
}

// Barrier blocks until every place has entered the same barrier round — a
// dissemination barrier: log2(n) rounds of token exchange. All places must
// call Barrier the same number of times.
func (r *Runtime) Barrier() error {
	n := r.Places()
	if n == 1 {
		return nil
	}
	r.barrierMu.Lock()
	r.round++
	round := r.round
	r.barrierMu.Unlock()
	for step, dist := 0, 1; dist < n; step, dist = step+1, dist*2 {
		dst := (r.me + dist) % n
		if err := r.tr.Send(r.me, dst, hBarrier,
			barrierTok{Round: round, Step: step}, 16, x10rt.CollectiveClass); err != nil {
			return err
		}
		src := (r.me - dist + n) % n
		k := barrierKey{Round: round, Step: step, Src: src}
		<-r.barrierChan(k)
		r.barrierMu.Lock()
		delete(r.barrier, k) // round tokens are one-shot
		r.barrierMu.Unlock()
	}
	return nil
}

func (r *Runtime) barrierChan(k barrierKey) chan struct{} {
	r.barrierMu.Lock()
	defer r.barrierMu.Unlock()
	ch, ok := r.barrier[k]
	if !ok {
		ch = make(chan struct{})
		r.barrier[k] = ch
	}
	return ch
}

func (r *Runtime) onBarrier(src, dst int, payload any) {
	m := payload.(barrierTok)
	close(r.barrierChan(barrierKey{Round: m.Round, Step: m.Step, Src: src}))
}
