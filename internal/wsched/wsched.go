// Package wsched is an intra-place work-stealing scheduler — the paper's
// declared future work ("we have separately done work on schedulers for
// intra-place concurrency [13, 40], but the results reported here do not
// reflect the integration of these schedulers with the scale-out stack").
// The benchmark kernels run with minimal intra-place concurrency
// (X10_NTHREADS=1), exactly as in the paper; this package provides the
// missing piece as a standalone pool in the style of the X10 work-stealing
// runtime: per-worker deques, LIFO pops for locality, FIFO steals for
// load, and help-first joins (a worker waiting on a join executes other
// tasks instead of blocking).
package wsched

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
)

// Task is the execution context handed to every task body; fork from it to
// stay on the pool.
type Task struct {
	pool   *Pool
	worker int
}

// Pool is a fixed set of workers with work-stealing deques.
type Pool struct {
	workers     []*workerState
	outstanding atomic.Int64
	quiesce     chan struct{}
	quiesceOnce sync.Once
	closed      atomic.Bool
}

type workerState struct {
	mu    sync.Mutex
	deque []*taskItem
	rng   *rand.Rand
}

type taskItem struct {
	f    func(*Task)
	join *Join
}

// Join tracks the completion of a group of forked tasks.
type Join struct {
	remaining atomic.Int64
}

// NewPool creates a pool with the given worker count (<=0 selects
// GOMAXPROCS).
func NewPool(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	p := &Pool{
		workers: make([]*workerState, workers),
		quiesce: make(chan struct{}),
	}
	for i := range p.workers {
		p.workers[i] = &workerState{rng: rand.New(rand.NewSource(int64(i)*2654435761 + 1))}
	}
	return p
}

// Workers returns the worker count.
func (p *Pool) Workers() int { return len(p.workers) }

// Run executes root on worker 0 and blocks until the pool is quiescent:
// root and every task transitively forked from it have completed. Run may
// be called once per pool.
func (p *Pool) Run(root func(*Task)) {
	if p.closed.Swap(true) {
		panic("wsched: Run called twice on one pool")
	}
	p.outstanding.Store(1)
	var wg sync.WaitGroup
	for w := 1; w < len(p.workers); w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			p.workerLoop(w)
		}(w)
	}
	t := &Task{pool: p, worker: 0}
	root(t)
	p.taskDone(nil)
	// The caller becomes worker 0 and helps drain until quiescence —
	// essential for single-worker pools, which have no other workers.
	p.workerLoop(0)
	wg.Wait()
}

// Fork schedules f as a new task on the current worker's deque. If j is
// non-nil, j is credited when f completes.
func (t *Task) Fork(f func(*Task)) { t.fork(f, nil) }

func (t *Task) fork(f func(*Task), j *Join) {
	p := t.pool
	p.outstanding.Add(1)
	if j != nil {
		j.remaining.Add(1)
	}
	ws := p.workers[t.worker]
	ws.mu.Lock()
	ws.deque = append(ws.deque, &taskItem{f: f, join: j})
	ws.mu.Unlock()
}

// ForkJoin runs the given bodies as parallel tasks and returns when all of
// them have completed. The last body runs inline (work-first); while the
// others are outstanding the worker helps by executing available tasks
// rather than blocking.
func (t *Task) ForkJoin(bodies ...func(*Task)) {
	if len(bodies) == 0 {
		return
	}
	var j Join
	for _, f := range bodies[:len(bodies)-1] {
		t.fork(f, &j)
	}
	bodies[len(bodies)-1](t)
	// Help until the forked siblings are done.
	for j.remaining.Load() > 0 {
		if !t.pool.runOne(t.worker) {
			runtime.Gosched()
		}
	}
}

// workerLoop drains tasks until global quiescence.
func (p *Pool) workerLoop(w int) {
	for {
		if p.runOne(w) {
			continue
		}
		select {
		case <-p.quiesce:
			return
		default:
			runtime.Gosched()
		}
	}
}

// runOne executes one task: LIFO from the worker's own deque, else a FIFO
// steal from a random victim. It reports whether anything ran.
func (p *Pool) runOne(w int) bool {
	ws := p.workers[w]
	// Own deque, newest first (locality).
	ws.mu.Lock()
	var item *taskItem
	if n := len(ws.deque); n > 0 {
		item = ws.deque[n-1]
		ws.deque = ws.deque[:n-1]
	}
	ws.mu.Unlock()
	if item == nil && len(p.workers) > 1 {
		// Steal oldest-first from a random victim.
		start := ws.rng.Intn(len(p.workers))
		for i := 0; i < len(p.workers) && item == nil; i++ {
			v := (start + i) % len(p.workers)
			if v == w {
				continue
			}
			vs := p.workers[v]
			vs.mu.Lock()
			if len(vs.deque) > 0 {
				item = vs.deque[0]
				vs.deque = vs.deque[1:]
			}
			vs.mu.Unlock()
		}
	}
	if item == nil {
		return false
	}
	item.f(&Task{pool: p, worker: w})
	p.taskDone(item.join)
	return true
}

func (p *Pool) taskDone(j *Join) {
	if j != nil {
		j.remaining.Add(-1)
	}
	if p.outstanding.Add(-1) == 0 {
		p.quiesceOnce.Do(func() { close(p.quiesce) })
	}
}

// String describes the pool.
func (p *Pool) String() string {
	return fmt.Sprintf("wsched.Pool{workers=%d outstanding=%d}", len(p.workers), p.outstanding.Load())
}
