package wsched

import (
	"strings"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestRunExecutesRoot(t *testing.T) {
	p := NewPool(2)
	ran := false
	p.Run(func(*Task) { ran = true })
	if !ran {
		t.Fatal("root did not run")
	}
}

func TestForkAllTasksRun(t *testing.T) {
	p := NewPool(4)
	var n atomic.Int64
	p.Run(func(t0 *Task) {
		for i := 0; i < 1000; i++ {
			t0.Fork(func(*Task) { n.Add(1) })
		}
	})
	if n.Load() != 1000 {
		t.Fatalf("ran %d tasks, want 1000", n.Load())
	}
}

func TestNestedForks(t *testing.T) {
	p := NewPool(3)
	var n atomic.Int64
	p.Run(func(t0 *Task) {
		var spawn func(tt *Task, depth int)
		spawn = func(tt *Task, depth int) {
			n.Add(1)
			if depth == 0 {
				return
			}
			for i := 0; i < 3; i++ {
				d := depth - 1
				tt.Fork(func(t2 *Task) { spawn(t2, d) })
			}
		}
		spawn(t0, 5)
	})
	want := int64(0)
	pow := int64(1)
	for d := 0; d <= 5; d++ {
		want += pow
		pow *= 3
	}
	if n.Load() != want {
		t.Fatalf("n = %d, want %d", n.Load(), want)
	}
}

func fibWS(t *Task, n int) int {
	if n < 13 {
		return fibSeq(n)
	}
	var a, b int
	t.ForkJoin(
		func(tt *Task) { a = fibWS(tt, n-1) },
		func(tt *Task) { b = fibWS(tt, n-2) },
	)
	return a + b
}

func fibSeq(n int) int {
	if n < 2 {
		return n
	}
	return fibSeq(n-1) + fibSeq(n-2)
}

func TestForkJoinFib(t *testing.T) {
	p := NewPool(4)
	var got int
	p.Run(func(t0 *Task) { got = fibWS(t0, 24) })
	if want := fibSeq(24); got != want {
		t.Fatalf("fib = %d, want %d", got, want)
	}
}

func TestForkJoinEmptyAndSingle(t *testing.T) {
	p := NewPool(2)
	p.Run(func(t0 *Task) {
		t0.ForkJoin() // no-op
		ran := false
		t0.ForkJoin(func(*Task) { ran = true })
		if !ran {
			t.Error("single-body ForkJoin did not run inline")
		}
	})
}

func TestJoinOrdering(t *testing.T) {
	// After ForkJoin returns, all side effects of the bodies must be
	// visible.
	p := NewPool(4)
	p.Run(func(t0 *Task) {
		for rep := 0; rep < 50; rep++ {
			results := make([]int, 8)
			bodies := make([]func(*Task), 8)
			for i := range bodies {
				i := i
				bodies[i] = func(*Task) { results[i] = i + 1 }
			}
			t0.ForkJoin(bodies...)
			for i, v := range results {
				if v != i+1 {
					t.Fatalf("rep %d: results[%d] = %d", rep, i, v)
					return
				}
			}
		}
	})
}

func TestDefaultWorkers(t *testing.T) {
	if NewPool(0).Workers() < 1 {
		t.Fatal("no workers")
	}
	if NewPool(7).Workers() != 7 {
		t.Fatal("worker count not honored")
	}
}

func TestRunTwicePanics(t *testing.T) {
	p := NewPool(1)
	p.Run(func(*Task) {})
	defer func() {
		if recover() == nil {
			t.Error("second Run did not panic")
		}
	}()
	p.Run(func(*Task) {})
}

func TestString(t *testing.T) {
	if !strings.Contains(NewPool(3).String(), "workers=3") {
		t.Error("String missing worker count")
	}
}

// TestTaskCountProperty: random fork trees execute every task exactly once.
func TestTaskCountProperty(t *testing.T) {
	f := func(widths []uint8) bool {
		if len(widths) > 12 {
			widths = widths[:12]
		}
		p := NewPool(3)
		var n atomic.Int64
		want := int64(1)
		p.Run(func(t0 *Task) {
			n.Add(1)
			for _, w := range widths {
				k := int(w)%5 + 1
				for i := 0; i < k; i++ {
					t0.Fork(func(*Task) { n.Add(1) })
				}
			}
		})
		for _, w := range widths {
			want += int64(int(w)%5 + 1)
		}
		return n.Load() == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkForkJoinFib20(b *testing.B) {
	for i := 0; i < b.N; i++ {
		p := NewPool(2)
		var got int
		p.Run(func(t0 *Task) { got = fibWS(t0, 20) })
		if got != 6765 {
			b.Fatal("wrong fib")
		}
	}
}

func BenchmarkForkOverhead(b *testing.B) {
	p := NewPool(1)
	var n atomic.Int64
	b.ResetTimer()
	p.Run(func(t0 *Task) {
		for i := 0; i < b.N; i++ {
			t0.Fork(func(*Task) { n.Add(1) })
		}
	})
}

// TestSingleWorkerPoolDrains is the regression test for a deadlock found
// by BenchmarkForkOverhead: with one worker, the Run caller itself must
// drain the deque after the root returns.
func TestSingleWorkerPoolDrains(t *testing.T) {
	p := NewPool(1)
	var n atomic.Int64
	p.Run(func(t0 *Task) {
		for i := 0; i < 100; i++ {
			t0.Fork(func(*Task) { n.Add(1) })
		}
	})
	if n.Load() != 100 {
		t.Fatalf("ran %d, want 100", n.Load())
	}
}
