package telemetry

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"time"

	"apgas/internal/obs"
)

// This file is the Prometheus text-format exporter of the telemetry
// plane: the same per-place snapshots the /telemetry JSON endpoint
// serves, rendered as the exposition format so a scraper can watch a
// running experiment. Counters and gauges export one sample per place
// (place="N" label); histograms export as summaries — _count and _sum
// per place plus quantile samples read from the power-of-two buckets.

// promName sanitizes a registry metric name ("finish.ctl.msgs") into a
// Prometheus metric name ("apgas_finish_ctl_msgs").
func promName(name string) string {
	var b strings.Builder
	b.Grow(len(name) + 6)
	b.WriteString("apgas_")
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// promQuantiles are the summary quantiles exported for histograms.
var promQuantiles = []float64{0.5, 0.9, 0.99}

// WriteProm renders per-place snapshots in the Prometheus text
// exposition format. Output is deterministic: metric names sorted, then
// places ascending.
func WriteProm(w io.Writer, snaps map[int]obs.Snapshot) {
	places := make([]int, 0, len(snaps))
	for p := range snaps {
		places = append(places, p)
	}
	sort.Ints(places)

	names := make(map[string]obs.Kind)
	for _, s := range snaps {
		for name, v := range s {
			names[name] = v.Kind
		}
	}
	sorted := make([]string, 0, len(names))
	for name := range names {
		sorted = append(sorted, name)
	}
	sort.Strings(sorted)

	for _, name := range sorted {
		pn := promName(name)
		switch names[name] {
		case obs.KindGauge:
			fmt.Fprintf(w, "# TYPE %s gauge\n", pn)
			for _, p := range places {
				if v, ok := snaps[p][name]; ok {
					fmt.Fprintf(w, "%s{place=\"%d\"} %d\n", pn, p, v.Gauge)
				}
			}
		case obs.KindHistogram:
			fmt.Fprintf(w, "# TYPE %s summary\n", pn)
			for _, p := range places {
				v, ok := snaps[p][name]
				if !ok {
					continue
				}
				for _, q := range promQuantiles {
					fmt.Fprintf(w, "%s{place=\"%d\",quantile=\"%g\"} %d\n", pn, p, q, v.Quantile(q))
				}
				fmt.Fprintf(w, "%s_sum{place=\"%d\"} %d\n", pn, p, v.Sum)
				fmt.Fprintf(w, "%s_count{place=\"%d\"} %d\n", pn, p, v.Count)
			}
		default:
			fmt.Fprintf(w, "# TYPE %s counter\n", pn)
			for _, p := range places {
				if v, ok := snaps[p][name]; ok {
					fmt.Fprintf(w, "%s{place=\"%d\"} %d\n", pn, p, v.Count)
				}
			}
		}
	}
}

// PromHandler serves the current plane's snapshots in Prometheus text
// format — mount it at /metrics on the -debug-addr server, beside the
// /telemetry JSON handler. Like Handler, it answers 503 while no plane
// is installed and 504 when a collection round times out.
func PromHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		p := Current()
		if p == nil {
			http.Error(w, "no telemetry plane attached", http.StatusServiceUnavailable)
			return
		}
		snaps, err := p.Collect(5 * time.Second)
		if err != nil {
			http.Error(w, err.Error(), http.StatusGatewayTimeout)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		WriteProm(w, snaps)
	})
}
