package telemetry

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"time"

	"apgas/internal/obs"
)

// This file is the Prometheus text-format exporter of the telemetry
// plane: the same per-place snapshots the /telemetry JSON endpoint
// serves, rendered as the exposition format so a scraper can watch a
// running experiment. Counters and gauges export one sample per place
// (place="N" label); histograms export natively as cumulative
// _bucket{le="..."} series derived from the registry's power-of-two
// buckets, plus _sum and _count.

// promName sanitizes a registry metric name ("finish.ctl.msgs") into a
// Prometheus metric name ("apgas_finish_ctl_msgs").
func promName(name string) string {
	var b strings.Builder
	b.Grow(len(name) + 6)
	b.WriteString("apgas_")
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// promLabelName sanitizes a label name to [a-zA-Z_][a-zA-Z0-9_]*.
func promLabelName(name string) string {
	if name == "" {
		return "_"
	}
	var b strings.Builder
	b.Grow(len(name))
	for i, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_':
			b.WriteRune(r)
		case r >= '0' && r <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// promEscape escapes a label value per the exposition format: backslash,
// double quote, and newline must be written as \\, \", and \n.
func promEscape(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	b.Grow(len(v) + 4)
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// constLabels renders extra constant labels (sorted, sanitized,
// escaped) as `,k="v"` fragments appended inside every sample's brace
// block. Empty map renders "".
func constLabels(extra map[string]string) string {
	if len(extra) == 0 {
		return ""
	}
	keys := make([]string, 0, len(extra))
	for k := range extra {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&b, `,%s="%s"`, promLabelName(k), promEscape(extra[k]))
	}
	return b.String()
}

// histBucketUpper is the inclusive upper bound of power-of-two bucket i
// (bucket 0 holds only zero; bucket i holds [2^(i-1), 2^i-1]).
func histBucketUpper(i int) uint64 {
	if i <= 0 {
		return 0
	}
	if i >= 64 {
		return ^uint64(0)
	}
	return (uint64(1) << uint(i)) - 1
}

// WriteProm renders per-place snapshots in the Prometheus text
// exposition format. Output is deterministic: metric names sorted, then
// places ascending.
func WriteProm(w io.Writer, snaps map[int]obs.Snapshot) {
	WritePromWith(w, snaps, nil)
}

// WritePromWith is WriteProm with extra constant labels (such as the
// app/experiment name) stamped on every sample. Label names are
// sanitized and values escaped per the exposition format.
func WritePromWith(w io.Writer, snaps map[int]obs.Snapshot, extra map[string]string) {
	cl := constLabels(extra)
	places := make([]int, 0, len(snaps))
	for p := range snaps {
		places = append(places, p)
	}
	sort.Ints(places)

	names := make(map[string]obs.Kind)
	for _, s := range snaps {
		for name, v := range s {
			names[name] = v.Kind
		}
	}
	sorted := make([]string, 0, len(names))
	for name := range names {
		sorted = append(sorted, name)
	}
	sort.Strings(sorted)

	for _, name := range sorted {
		pn := promName(name)
		switch names[name] {
		case obs.KindGauge:
			fmt.Fprintf(w, "# TYPE %s gauge\n", pn)
			for _, p := range places {
				if v, ok := snaps[p][name]; ok {
					fmt.Fprintf(w, "%s{place=\"%d\"%s} %d\n", pn, p, cl, v.Gauge)
				}
			}
		case obs.KindHistogram:
			fmt.Fprintf(w, "# TYPE %s histogram\n", pn)
			for _, p := range places {
				v, ok := snaps[p][name]
				if !ok {
					continue
				}
				// Cumulative buckets up to the highest occupied one;
				// +Inf always closes the series at the total count.
				last := -1
				for i, c := range v.Buckets {
					if c > 0 {
						last = i
					}
				}
				var cum uint64
				for i := 0; i <= last; i++ {
					cum += v.Buckets[i]
					fmt.Fprintf(w, "%s_bucket{place=\"%d\"%s,le=\"%d\"} %d\n",
						pn, p, cl, histBucketUpper(i), cum)
				}
				fmt.Fprintf(w, "%s_bucket{place=\"%d\"%s,le=\"+Inf\"} %d\n", pn, p, cl, v.Count)
				fmt.Fprintf(w, "%s_sum{place=\"%d\"%s} %d\n", pn, p, cl, v.Sum)
				fmt.Fprintf(w, "%s_count{place=\"%d\"%s} %d\n", pn, p, cl, v.Count)
			}
		default:
			fmt.Fprintf(w, "# TYPE %s counter\n", pn)
			for _, p := range places {
				if v, ok := snaps[p][name]; ok {
					fmt.Fprintf(w, "%s{place=\"%d\"%s} %d\n", pn, p, cl, v.Count)
				}
			}
		}
	}
}

// PromHandler serves the current plane's snapshots in Prometheus text
// format — mount it at /metrics on the -debug-addr server, beside the
// /telemetry JSON handler. Like Handler, it answers 503 while no plane
// is installed and 504 when a collection round times out.
func PromHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		p := Current()
		if p == nil {
			http.Error(w, "no telemetry plane attached", http.StatusServiceUnavailable)
			return
		}
		snaps, err := p.Collect(5 * time.Second)
		if err != nil {
			http.Error(w, err.Error(), http.StatusGatewayTimeout)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		var extra map[string]string
		if app := obs.Global().Profiler().App(); app != "" {
			extra = map[string]string{"app": app}
		}
		WritePromWith(w, snaps, extra)
	})
}
