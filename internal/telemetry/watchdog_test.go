package telemetry

import (
	"bytes"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"apgas/internal/core"
	"apgas/internal/obs"
	"apgas/internal/x10rt"
)

// syncBuf is a bytes.Buffer safe for the watchdog goroutine to write
// while the test reads.
type syncBuf struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuf) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuf) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

func (s *syncBuf) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Len()
}

// stallTransport wraps a transport and holds back finish control
// messages originating at one place — a software model of the paper's
// nightmare scenario, a compute node whose control traffic is stuck
// behind the interconnect. heal releases the held messages in order.
type stallTransport struct {
	x10rt.Transport
	victim int

	mu     sync.Mutex
	healed bool
	held   []heldMsg
}

type heldMsg struct {
	src, dst int
	id       x10rt.HandlerID
	payload  any
	bytes    int
	class    x10rt.Class
}

func (s *stallTransport) Send(src, dst int, id x10rt.HandlerID, payload any, bytes int, class x10rt.Class) error {
	if id == x10rt.HandlerFinishCtl && src == s.victim {
		s.mu.Lock()
		if !s.healed {
			s.held = append(s.held, heldMsg{src, dst, id, payload, bytes, class})
			s.mu.Unlock()
			return nil
		}
		s.mu.Unlock()
	}
	return s.Transport.Send(src, dst, id, payload, bytes, class)
}

func (s *stallTransport) heal() error {
	s.mu.Lock()
	held := s.held
	s.held = nil
	s.healed = true
	s.mu.Unlock()
	for _, m := range held {
		if err := s.Transport.Send(m.src, m.dst, m.id, m.payload, m.bytes, m.class); err != nil {
			return err
		}
	}
	return nil
}

// TestWatchdogStalledDense wedges a FINISH_DENSE by withholding one
// place's finish control traffic and checks the watchdog names the
// pattern, the delinquent place, and the pending count — then heals the
// network and checks the finish completes normally.
func TestWatchdogStalledDense(t *testing.T) {
	const places, victim = 8, 5
	inner, err := x10rt.NewChanTransport(x10rt.ChanOptions{Places: places})
	if err != nil {
		t.Fatal(err)
	}
	st := &stallTransport{Transport: inner, victim: victim}
	rt, err := core.NewRuntime(core.Config{
		Places:        places,
		PlacesPerHost: 4, // dense routing through masters p0 and p4
		Obs:           obs.New(),
		Transport:     st,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()

	var dump syncBuf
	w := StartWatchdog(rt, WatchdogOptions{
		Window:     150 * time.Millisecond,
		Poll:       20 * time.Millisecond,
		Out:        &dump,
		FlightTail: 16,
	})
	defer w.Stop()

	done := make(chan error, 1)
	go func() {
		done <- rt.Run(func(c *core.Ctx) {
			if err := c.FinishPragma(core.PatternDense, func(cc *core.Ctx) {
				for q := 1; q < places; q++ {
					cc.AtAsync(core.Place(q), func(*core.Ctx) {})
				}
			}); err != nil {
				panic(err)
			}
		})
	}()

	deadline := time.Now().Add(10 * time.Second)
	for w.Stalls() == 0 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if w.Stalls() == 0 {
		t.Fatalf("watchdog never fired; dump so far:\n%s", dump.String())
	}
	out := dump.String()
	for _, want := range []string{
		"apgas stall watchdog",
		"FINISH_DENSE",
		fmt.Sprintf("place p%d", victim),
		"pending=1",
		"recent flight events",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("stall dump missing %q:\n%s", want, out)
		}
	}

	// One dump per stall episode: a wedged finish must not spam.
	before := w.Stalls()
	time.Sleep(400 * time.Millisecond)
	if after := w.Stalls(); after != before {
		t.Errorf("watchdog re-fired on the same episode: %d -> %d", before, after)
	}

	if err := st.heal(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("finish did not complete after healing the network")
	}
}

// TestWatchdogNoFalsePositive runs a slow-but-progressing finish — an
// activity chain hopping between places with pauses shorter than the
// window — and checks the watchdog stays silent.
func TestWatchdogNoFalsePositive(t *testing.T) {
	const places, hops = 4, 12
	rt, err := core.NewRuntime(core.Config{Places: places, Obs: obs.New()})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()

	var dump syncBuf
	w := StartWatchdog(rt, WatchdogOptions{
		Window: 250 * time.Millisecond,
		Poll:   20 * time.Millisecond,
		Out:    &dump,
	})
	defer w.Stop()

	var hop func(c *core.Ctx, n int)
	hop = func(c *core.Ctx, n int) {
		if n == 0 {
			return
		}
		next := core.Place((int(c.Place()) + 1) % places)
		c.Blocking(func() { time.Sleep(60 * time.Millisecond) })
		c.AtAsync(next, func(cc *core.Ctx) { hop(cc, n-1) })
	}
	// 12 hops x 60ms ≈ 720ms of a finish that is always waiting yet
	// always progressing — far past the 250ms window.
	if err := rt.Run(func(c *core.Ctx) { hop(c, hops) }); err != nil {
		t.Fatal(err)
	}
	w.Stop()
	if w.Stalls() != 0 || dump.Len() != 0 {
		t.Fatalf("watchdog false positive (%d stalls):\n%s", w.Stalls(), dump.String())
	}
}

// TestDumpOnSignalWiring checks the diagnostic writer used by the
// SIGQUIT handler produces the finish and flight sections (sending a
// real SIGQUIT would race with the test binary's own handler).
func TestDumpOnSignalWiring(t *testing.T) {
	rt, err := core.NewRuntime(core.Config{Places: 2, Obs: obs.New()})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	if err := rt.Run(func(c *core.Ctx) {
		c.AtAsync(1, func(*core.Ctx) {})
	}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	WriteDiagnostic(rt, &buf, 32)
	out := buf.String()
	if !strings.Contains(out, "finish") {
		t.Errorf("diagnostic missing finish section:\n%s", out)
	}
	if !strings.Contains(out, "recent flight events") {
		t.Errorf("diagnostic missing flight section:\n%s", out)
	}
	stop := DumpOnSignal(rt, &bytes.Buffer{})
	stop()
	stop() // idempotent
}
