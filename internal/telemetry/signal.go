package telemetry

import (
	"fmt"
	"io"
	"os"
	"os/signal"
	"sync"
	"syscall"

	"apgas/internal/core"
)

// DumpOnSignal arranges for SIGQUIT (the classic "what is this process
// doing?" signal) to write the runtime's finish diagnostic and the flight
// recorder's recent events to w (os.Stderr when nil), without killing the
// process. It returns a stop function that restores default signal
// handling; call it before the runtime is closed.
func DumpOnSignal(rt *core.Runtime, w io.Writer) (stop func()) {
	if w == nil {
		w = os.Stderr
	}
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, syscall.SIGQUIT)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for sig := range ch {
			fmt.Fprintf(w, "\napgas: %v received; runtime diagnostic follows\n", sig)
			WriteDiagnostic(rt, w, 64)
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() {
			signal.Stop(ch)
			close(ch)
			<-done
		})
	}
}

// WriteDiagnostic writes the full liveness picture of rt to w: every
// registered finish root with its who-owes-whom deficits, proxy and dense
// buffer state, and the newest flightTail flight-recorder events
// (suppressed when negative).
func WriteDiagnostic(rt *core.Runtime, w io.Writer, flightTail int) {
	rt.WriteFinishDump(w)
	if flightTail < 0 {
		return
	}
	if f := rt.Obs().FlightRecorder(); f != nil {
		fmt.Fprintf(w, "recent flight events (newest last):\n")
		f.WriteText(w, flightTail)
	}
}
