// Package telemetry is the distributed telemetry plane of the APGAS
// runtime: it turns the per-place metric registries of internal/obs into
// one cluster-wide view. Place 0 pulls every place's snapshot through a
// gather tree with the same shape as PlaceGroup.Broadcast's spawning tree
// (contiguous ranges split into BroadcastArity chunks), merges them into
// sum/min/max/per-place aggregates, and exposes the result as a text
// table or JSON. A finish stall watchdog (watchdog.go) and signal-driven
// flight-recorder dumps (signal.go) ride on the same introspection
// surfaces, so the package is both the benchmarking plane (what did all
// places do?) and the liveness plane (why is this finish not
// terminating?) of the runtime.
//
// The collection protocol deliberately runs directly on the x10rt
// transport — not on finish/async machinery — so it keeps working while a
// finish is wedged, which is exactly when it is needed most. Its traffic
// travels under x10rt.HandlerTelemetry, which the transports exclude from
// traffic accounting: observing the system does not perturb the numbers
// being observed, and aggregated message totals remain exactly the sum of
// the per-place transport stats.
package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"apgas/internal/core"
	"apgas/internal/obs"
	"apgas/internal/x10rt"
)

// Plane is the cross-place aggregation service of one runtime. Attach it
// once per runtime; Collect may then be called repeatedly (including
// concurrently) from any goroutine.
type Plane struct {
	rt     *core.Runtime
	tr     x10rt.Transport
	o      *obs.Obs
	places int
	arity  int
	start  time.Time

	mu      sync.Mutex
	reqSeq  uint64
	nodes   map[nodeKey]*gatherNode
	pending map[uint64]chan map[int]obs.Snapshot
}

// telemetryReq asks the subtree [Lo, Hi) — rooted at place Lo, where the
// request is delivered — to report its snapshots to Parent.
type telemetryReq struct {
	ID     uint64
	Lo, Hi int
	// Parent is the place the subtree report goes back to; -1 marks the
	// collector's root request (the report completes the Collect call).
	Parent int
}

// telemetryRep carries a completed subtree's snapshots up one tree edge.
type telemetryRep struct {
	ID    uint64
	From  int
	Snaps map[int]obs.Snapshot
}

// nodeKey identifies one in-progress gather node: a collection round plus
// the place acting as subtree root.
type nodeKey struct {
	id    uint64
	place int
}

// gatherNode is the per-subtree-root state of one collection round.
type gatherNode struct {
	parent int
	expect int
	snaps  map[int]obs.Snapshot
}

// Attach registers the telemetry plane on rt's transport and returns it.
// It fails if the runtime has no observability layer or if a plane is
// already attached to the transport.
func Attach(rt *core.Runtime) (*Plane, error) {
	o := rt.Obs()
	if o == nil {
		return nil, fmt.Errorf("telemetry: runtime has no observability layer")
	}
	p := &Plane{
		rt:      rt,
		tr:      rt.Transport(),
		o:       o,
		places:  rt.NumPlaces(),
		arity:   rt.Config().BroadcastArity,
		start:   time.Now(),
		nodes:   make(map[nodeKey]*gatherNode),
		pending: make(map[uint64]chan map[int]obs.Snapshot),
	}
	if err := p.tr.Register(x10rt.HandlerTelemetry, p.onTelemetry); err != nil {
		return nil, fmt.Errorf("telemetry: %w", err)
	}
	return p, nil
}

// Elapsed returns the time since the plane was attached — the window
// over which cumulative counters accumulated, used by the wire view to
// turn per-link byte totals into bandwidth.
func (p *Plane) Elapsed() time.Duration {
	return time.Since(p.start)
}

// Runtime returns the runtime this plane is attached to.
func (p *Plane) Runtime() *core.Runtime { return p.rt }

// Collect pulls every place's snapshot through the gather tree and
// returns them keyed by place. It fails if the round does not complete
// within timeout (a place's dispatcher is wedged — itself a diagnostic).
func (p *Plane) Collect(timeout time.Duration) (map[int]obs.Snapshot, error) {
	ch := make(chan map[int]obs.Snapshot, 1)
	p.mu.Lock()
	p.reqSeq++
	id := p.reqSeq
	p.pending[id] = ch
	p.mu.Unlock()
	defer func() {
		p.mu.Lock()
		delete(p.pending, id)
		p.mu.Unlock()
	}()
	// The root request is a self-send at place 0, so even the collector's
	// own snapshot travels the same handler path as everyone else's.
	err := p.tr.Send(0, 0, x10rt.HandlerTelemetry,
		telemetryReq{ID: id, Lo: 0, Hi: p.places, Parent: -1}, 0, x10rt.ControlClass)
	if err != nil {
		return nil, fmt.Errorf("telemetry: collect send: %w", err)
	}
	select {
	case snaps := <-ch:
		return snaps, nil
	case <-time.After(timeout):
		return nil, fmt.Errorf("telemetry: collection %d timed out after %v", id, timeout)
	}
}

// onTelemetry is the transport handler for both message kinds. It never
// blocks: a request snapshots the local place, fans out child requests,
// and parks node state; replies fold into that state and propagate up
// when the last child reports.
func (p *Plane) onTelemetry(src, dst int, payload any) {
	switch m := payload.(type) {
	case telemetryReq:
		node := &gatherNode{
			parent: m.Parent,
			snaps:  map[int]obs.Snapshot{dst: p.o.Place(dst).Snapshot()},
		}
		// Fan [Lo+1, Hi) out into up to arity contiguous chunks — the
		// same tree shape PlaceGroup.Broadcast uses (broadcastSubtree).
		// Each chunk is rooted at its first live place (a dead subtree
		// root would strand the whole chunk); a chunk with no survivors
		// contributes nothing and is skipped, so a collection round
		// after a place death completes over exactly the live places.
		n := m.Hi - m.Lo - 1
		var children []telemetryReq
		if n > 0 {
			chunk := (n + p.arity - 1) / p.arity
			for start := m.Lo + 1; start < m.Hi; start += chunk {
				end := start + chunk
				if end > m.Hi {
					end = m.Hi
				}
				root := -1
				for q := start; q < end; q++ {
					if !p.rt.PlaceDead(core.Place(q)) {
						root = q
						break
					}
				}
				if root < 0 {
					continue
				}
				children = append(children, telemetryReq{ID: m.ID, Lo: root, Hi: end, Parent: dst})
			}
		}
		if len(children) == 0 {
			p.report(m.ID, dst, m.Parent, node.snaps)
			return
		}
		node.expect = len(children)
		p.mu.Lock()
		p.nodes[nodeKey{m.ID, dst}] = node
		p.mu.Unlock()
		for _, c := range children {
			if err := p.tr.Send(dst, c.Lo, x10rt.HandlerTelemetry, c, 0, x10rt.ControlClass); err != nil {
				// The chunk root died between the liveness check and the
				// send (or the transport shut down): count the subtree as
				// absent rather than stranding the round.
				p.childAbsent(m.ID, dst)
			}
		}
	case telemetryRep:
		key := nodeKey{m.ID, dst}
		p.mu.Lock()
		node, ok := p.nodes[key]
		if !ok {
			p.mu.Unlock()
			return // round abandoned (collector timed out and moved on)
		}
		for q, s := range m.Snaps {
			node.snaps[q] = s
		}
		node.expect--
		if node.expect > 0 {
			p.mu.Unlock()
			return
		}
		delete(p.nodes, key)
		p.mu.Unlock()
		p.report(m.ID, dst, node.parent, node.snaps)
	}
}

// childAbsent folds a failed child request into the gather node as an
// empty subtree, reporting upward if it was the last one outstanding.
func (p *Plane) childAbsent(id uint64, place int) {
	key := nodeKey{id, place}
	p.mu.Lock()
	node, ok := p.nodes[key]
	if !ok {
		p.mu.Unlock()
		return
	}
	node.expect--
	if node.expect > 0 {
		p.mu.Unlock()
		return
	}
	delete(p.nodes, key)
	p.mu.Unlock()
	p.report(id, place, node.parent, node.snaps)
}

// report sends a completed subtree's snapshots to the parent, or hands
// them to the waiting collector when this was the root node.
func (p *Plane) report(id uint64, from, parent int, snaps map[int]obs.Snapshot) {
	if parent < 0 {
		p.mu.Lock()
		ch := p.pending[id]
		p.mu.Unlock()
		if ch != nil {
			ch <- snaps
		}
		return
	}
	_ = p.tr.Send(from, parent, x10rt.HandlerTelemetry,
		telemetryRep{ID: id, From: from, Snaps: snaps}, 0, x10rt.ControlClass)
}

// Report is one completed collection round: the raw per-place snapshots
// plus their merged sum/min/max view.
type Report struct {
	Places  int
	ByPlace map[int]obs.Snapshot
	Merged  obs.Merged
}

// Report collects and merges in one step.
func (p *Plane) Report(timeout time.Duration) (*Report, error) {
	snaps, err := p.Collect(timeout)
	if err != nil {
		return nil, err
	}
	return &Report{Places: p.places, ByPlace: snaps, Merged: obs.MergeSnapshots(snaps)}, nil
}

// WriteTable renders the merged cross-place table (sum, min@place,
// max@place, per-place values) preceded by a one-line header.
func (r *Report) WriteTable(w io.Writer) {
	fmt.Fprintf(w, "telemetry: %d places, %d metrics\n", r.Places, len(r.Merged))
	r.Merged.WriteTable(w)
}

// jsonMetric is the JSON shape of one merged metric.
type jsonMetric struct {
	Kind     string           `json:"kind"`
	Sum      int64            `json:"sum"`
	Min      int64            `json:"min"`
	MinPlace int              `json:"minPlace"`
	Max      int64            `json:"max"`
	MaxPlace int              `json:"maxPlace"`
	PerPlace map[string]int64 `json:"perPlace"`
}

// MarshalJSON renders the report as {"places": N, "metrics": {...}}.
func (r *Report) MarshalJSON() ([]byte, error) {
	metrics := make(map[string]jsonMetric, len(r.Merged))
	for name, v := range r.Merged {
		sum := int64(v.Sum.Count)
		kind := "counter"
		switch v.Kind {
		case obs.KindGauge:
			sum = v.Sum.Gauge
			kind = "gauge"
		case obs.KindHistogram:
			kind = "histogram"
		}
		per := make(map[string]int64, len(v.Places))
		for i, pl := range v.Places {
			per[fmt.Sprintf("p%d", pl)] = v.PerPlace[i]
		}
		metrics[name] = jsonMetric{
			Kind: kind, Sum: sum,
			Min: v.Min, MinPlace: v.MinAt,
			Max: v.Max, MaxPlace: v.MaxAt,
			PerPlace: per,
		}
	}
	return json.Marshal(struct {
		Places  int                   `json:"places"`
		Metrics map[string]jsonMetric `json:"metrics"`
	}{Places: r.Places, Metrics: metrics})
}

// Names returns the merged metric names, sorted (a convenience for
// deterministic rendering and tests).
func (r *Report) Names() []string {
	names := make([]string, 0, len(r.Merged))
	for name := range r.Merged {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// current is the plane the process's debug HTTP endpoint serves, set by
// the binary that owns the runtime.
var current atomic.Pointer[Plane]

// SetCurrent installs p as the plane behind Handler (nil to clear).
func SetCurrent(p *Plane) { current.Store(p) }

// Current returns the installed plane, or nil.
func Current() *Plane { return current.Load() }

// Handler serves the current plane's merged report as JSON — mount it at
// /telemetry on the -debug-addr server. It answers 503 while no plane is
// installed and 504 when collection times out.
func Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		p := Current()
		if p == nil {
			http.Error(w, "no telemetry plane attached", http.StatusServiceUnavailable)
			return
		}
		r, err := p.Report(5 * time.Second)
		if err != nil {
			http.Error(w, err.Error(), http.StatusGatewayTimeout)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(r)
	})
}
