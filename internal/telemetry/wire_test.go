package telemetry

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"apgas/internal/core"
	"apgas/internal/x10rt"
)

// wireWorkload runs a small cross-place workload and quiesces, so the
// ledger, the transport stats, and the telemetry report all describe
// the same instant.
func wireWorkload(t *testing.T, rt *core.Runtime) *x10rt.ChanTransport {
	t.Helper()
	err := rt.Run(func(c *core.Ctx) {
		for q := 1; q < c.NumPlaces(); q++ {
			c.AtAsyncSized(core.Place(q), 64*q, func(cc *core.Ctx) {
				cc.Async(func(*core.Ctx) {})
			})
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	tr := rt.Transport().(*x10rt.ChanTransport)
	tr.Quiesce()
	return tr
}

// TestWireFromReport is the endpoint-side sum-equality check: the wire
// view rebuilt from a merged telemetry report must agree with the
// ledger snapshot and with the transport counters.
func TestWireFromReport(t *testing.T) {
	const places = 4
	rt, p := newPlane(t, places, func(cfg *core.Config) { cfg.WireLedger = true })
	lg := rt.WireLedger()
	if lg == nil {
		t.Fatal("Config.WireLedger did not attach a ledger")
	}
	tr := wireWorkload(t, rt)

	rep, err := p.Report(collectTimeout)
	if err != nil {
		t.Fatal(err)
	}
	v := WireFromReport(rep, time.Second)
	if v.Type != WireDumpType || v.Version != WireDumpVersion {
		t.Fatalf("header = %q v%d", v.Type, v.Version)
	}
	if err := v.SumEqual(); err != nil {
		t.Fatal(err)
	}

	snap := lg.Snapshot()
	if v.Totals.PayloadBytes != snap.TotalPayloadBytes() {
		t.Errorf("report payload bytes %d != ledger %d", v.Totals.PayloadBytes, snap.TotalPayloadBytes())
	}
	if v.Totals.WireBytes != snap.TotalWireBytes() {
		t.Errorf("report wire bytes %d != ledger %d", v.Totals.WireBytes, snap.TotalWireBytes())
	}
	if v.Totals.BytesSent != tr.Stats().TotalBytes() {
		t.Errorf("report bytes_sent %d != transport %d", v.Totals.BytesSent, tr.Stats().TotalBytes())
	}
	// The protocol handlers must come back with their names.
	names := map[string]bool{}
	for _, h := range v.Handlers {
		names[h.Name] = true
	}
	if !names["spawn"] || !names["finishctl"] {
		t.Errorf("handler names missing from %v", names)
	}

	// The from-snapshot constructor must agree row-for-row on totals.
	v2 := WireFromSnapshot(snap, tr.Stats(), time.Second)
	if v2.Totals.PayloadBytes != v.Totals.PayloadBytes || v2.Totals.WireBytes != v.Totals.WireBytes {
		t.Errorf("snapshot view totals %+v != report view totals %+v", v2.Totals, v.Totals)
	}
	if len(v2.Links) != len(v.Links) {
		t.Errorf("snapshot view has %d links, report view %d", len(v2.Links), len(v.Links))
	}

	var buf bytes.Buffer
	v.WriteText(&buf, 4)
	out := buf.String()
	for _, want := range []string{"HANDLER", "LINK", "finishctl", "B/S"} {
		if !strings.Contains(out, want) {
			t.Errorf("text table missing %q:\n%s", want, out)
		}
	}
}

// TestWireHandlerHTTP exercises the /wire endpoint: JSON by default,
// text table with ?format=text, 503 with no plane installed.
func TestWireHandlerHTTP(t *testing.T) {
	h := WireHandler()
	SetCurrent(nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/wire", nil))
	if rec.Code != 503 {
		t.Fatalf("no-plane status = %d, want 503", rec.Code)
	}

	rt, p := newPlane(t, 2, func(cfg *core.Config) { cfg.WireLedger = true })
	wireWorkload(t, rt)
	SetCurrent(p)
	defer SetCurrent(nil)

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/wire", nil))
	if rec.Code != 200 {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body)
	}
	var v WireView
	if err := json.Unmarshal(rec.Body.Bytes(), &v); err != nil {
		t.Fatal(err)
	}
	if err := v.SumEqual(); err != nil {
		t.Fatal(err)
	}
	if v.Places != 2 || len(v.Handlers) == 0 || len(v.Links) == 0 {
		t.Fatalf("view = %+v", v)
	}
	if v.ElapsedSec <= 0 {
		t.Error("elapsed_sec not populated")
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/wire?format=text&top=3", nil))
	if rec.Code != 200 || !strings.Contains(rec.Body.String(), "HANDLER") {
		t.Fatalf("text format: %d %s", rec.Code, rec.Body)
	}
}

// TestWireViewSumEqualDiagnostics pins the failure modes tracecheck
// and the bench harness rely on.
func TestWireViewSumEqualDiagnostics(t *testing.T) {
	v := &WireView{}
	if v.SumEqual() == nil {
		t.Error("empty view must not be sum-equal")
	}
	v.Handlers = []WireHandlerRow{{ID: 64, Msgs: 1, Bytes: 10}}
	v.Totals = WireTotals{Msgs: 1, PayloadBytes: 10, WireBytes: 10, BytesSent: 10, BytesWire: 10}
	if err := v.SumEqual(); err != nil {
		t.Errorf("consistent view rejected: %v", err)
	}
	v.Totals.BytesSent = 11
	if v.SumEqual() == nil {
		t.Error("payload mismatch must be detected")
	}
	v.Totals.BytesSent = 10
	v.Totals.BytesWire = 9
	if v.SumEqual() == nil {
		t.Error("wire mismatch must be detected")
	}
}
