// debug.go is the one shared debug server every CLI mounts behind its
// -debug-addr flag: net/http/pprof, expvar, the cluster /telemetry
// report, the Prometheus /metrics endpoint, and /debug/profilez — the
// retrieval side of the continuous profile ring. Factoring it here
// keeps the flag's behavior identical across apgas-bench, uts, and
// hpcc instead of each main.go growing its own drifting copy.
package telemetry

import (
	"expvar"
	"fmt"
	"net"
	"net/http"
	httppprof "net/http/pprof"
	"strconv"
	"time"

	"apgas/internal/obs"
)

// DebugServer is a running debug HTTP server; Close shuts it down.
type DebugServer struct {
	// Addr is the actual listen address (resolves ":0" for tests).
	Addr string

	ln  net.Listener
	srv *http.Server
}

// publishObsExpvar registers the "apgas" metrics snapshot under expvar,
// guarding the process-wide name: Publish panics on duplicates, and
// tests start several servers per process.
func publishObsExpvar(o *obs.Obs) {
	if o == nil || expvar.Get("apgas") != nil {
		return
	}
	expvar.Publish("apgas", expvar.Func(func() any { return o.Metrics.Snapshot() }))
}

// StartDebugServer listens on addr and serves, on its own mux:
//
//	/debug/pprof/...   live pprof (CPU, heap, goroutine, trace)
//	/debug/vars        expvar, including the "apgas" metrics snapshot
//	/debug/profilez    the continuous profile ring (index + retrieval)
//	/telemetry         the place-0 cluster telemetry report (JSON)
//	/metrics           Prometheus text format
//	/wire              wire observatory view (JSON; ?format=text for a table)
//
// o supplies the expvar snapshot and the profile ring; nil disables
// both (the rest still serves). The returned server's Addr holds the
// resolved address.
func StartDebugServer(addr string, o *obs.Obs) (*DebugServer, error) {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", httppprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", httppprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", httppprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", httppprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", httppprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	mux.Handle("/telemetry", Handler())
	mux.Handle("/metrics", PromHandler())
	mux.Handle("/wire", WireHandler())
	mux.Handle("/debug/profilez", ProfilezHandler(o.ProfileRing()))
	publishObsExpvar(o)

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: debug server: %w", err)
	}
	srv := &http.Server{Handler: mux}
	go func() { _ = srv.Serve(ln) }()
	return &DebugServer{Addr: ln.Addr().String(), ln: ln, srv: srv}, nil
}

// Close stops the server.
func (s *DebugServer) Close() error {
	if s == nil {
		return nil
	}
	return s.srv.Close()
}

// StartDebugPlane is the full -debug-addr behavior shared by the CLIs:
// it attaches a 16-slot continuous profile ring to o, starts the debug
// server, begins periodic heap + 2s-window CPU capture into the ring,
// and starts a runtime-health sampler feeding per-place gauges into the
// telemetry plane. The returned stop function unwinds all of it.
func StartDebugPlane(addr string, o *obs.Obs, places int) (*DebugServer, func(), error) {
	o.EnableProfileRing(16)
	ds, err := StartDebugServer(addr, o)
	if err != nil {
		return nil, nil, err
	}
	stopCapture := o.ProfileRing().StartCapture(obs.CaptureOptions{
		Interval:  30 * time.Second,
		CPUWindow: 2 * time.Second,
		Heap:      true,
	})
	hs := obs.NewHealthSampler(o, places)
	hs.Start(5 * time.Second)
	stop := func() {
		hs.Stop()
		stopCapture()
		_ = ds.Close()
	}
	return ds, stop, nil
}

// ProfilezHandler serves a profile ring:
//
//	GET /debug/profilez            JSON index of retained snapshots
//	GET /debug/profilez?seq=N      raw pprof bytes of snapshot N
//	GET /debug/profilez?kind=cpu   raw bytes of the latest cpu snapshot
//
// A nil ring serves an empty index and 404s retrievals.
func ProfilezHandler(ring *obs.ProfileRing) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		q := r.URL.Query()
		if s := q.Get("seq"); s != "" {
			seq, err := strconv.ParseUint(s, 10, 64)
			if err != nil {
				http.Error(w, "bad seq", http.StatusBadRequest)
				return
			}
			snap, ok := ring.Get(seq)
			if !ok {
				http.Error(w, "no such snapshot (evicted?)", http.StatusNotFound)
				return
			}
			serveSnapshot(w, snap)
			return
		}
		if kind := q.Get("kind"); kind != "" {
			snap, ok := ring.Latest(kind)
			if !ok {
				http.Error(w, "no snapshot of kind "+kind, http.StatusNotFound)
				return
			}
			serveSnapshot(w, snap)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprint(w, "[")
		for i, s := range ring.Snapshots() {
			if i > 0 {
				fmt.Fprint(w, ",")
			}
			fmt.Fprintf(w, `{"seq":%d,"kind":%q,"at":%q,"dur_ms":%d,"bytes":%d}`,
				s.Seq, s.Kind, s.At.Format("2006-01-02T15:04:05.000Z07:00"),
				s.Dur.Milliseconds(), len(s.Data))
		}
		fmt.Fprintln(w, "]")
	})
}

func serveSnapshot(w http.ResponseWriter, s obs.ProfileSnapshot) {
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Disposition",
		fmt.Sprintf(`attachment; filename="apgas-%s-%d.pb.gz"`, s.Kind, s.Seq))
	_, _ = w.Write(s.Data)
}
