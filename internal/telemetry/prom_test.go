package telemetry

import (
	"strings"
	"testing"

	"apgas/internal/obs"
)

func TestWriteProm(t *testing.T) {
	snaps := map[int]obs.Snapshot{
		1: {
			"finish.ctl.msgs": {Kind: obs.KindCounter, Count: 7},
			"sched.queue":     {Kind: obs.KindGauge, Gauge: -3},
		},
		0: {
			"finish.ctl.msgs": {Kind: obs.KindCounter, Count: 42},
			"lat.ns": {Kind: obs.KindHistogram, Count: 2, Sum: 6,
				Buckets: func() []uint64 {
					b := make([]uint64, obs.HistBuckets)
					b[2] = 2 // two observations of 2
					return b
				}()},
		},
	}
	var b strings.Builder
	WriteProm(&b, snaps)
	out := b.String()
	for _, want := range []string{
		"# TYPE apgas_finish_ctl_msgs counter",
		`apgas_finish_ctl_msgs{place="0"} 42`,
		`apgas_finish_ctl_msgs{place="1"} 7`,
		"# TYPE apgas_sched_queue gauge",
		`apgas_sched_queue{place="1"} -3`,
		"# TYPE apgas_lat_ns summary",
		`apgas_lat_ns{place="0",quantile="0.5"} 2`,
		`apgas_lat_ns_sum{place="0"} 6`,
		`apgas_lat_ns_count{place="0"} 2`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// Place 0 precedes place 1 within a metric family.
	if strings.Index(out, `place="0"} 42`) > strings.Index(out, `place="1"} 7`) {
		t.Errorf("places not sorted:\n%s", out)
	}
}

func TestPromNameSanitizes(t *testing.T) {
	if got := promName("x10rt.bytes.control-class"); got != "apgas_x10rt_bytes_control_class" {
		t.Fatalf("promName = %q", got)
	}
}
