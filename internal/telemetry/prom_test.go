package telemetry

import (
	"strconv"
	"strings"
	"testing"

	"apgas/internal/obs"
)

func TestWriteProm(t *testing.T) {
	snaps := map[int]obs.Snapshot{
		1: {
			"finish.ctl.msgs": {Kind: obs.KindCounter, Count: 7},
			"sched.queue":     {Kind: obs.KindGauge, Gauge: -3},
		},
		0: {
			"finish.ctl.msgs": {Kind: obs.KindCounter, Count: 42},
			"lat.ns": {Kind: obs.KindHistogram, Count: 2, Sum: 6,
				Buckets: func() []uint64 {
					b := make([]uint64, obs.HistBuckets)
					b[2] = 2 // two observations of 2
					return b
				}()},
		},
	}
	var b strings.Builder
	WriteProm(&b, snaps)
	out := b.String()
	for _, want := range []string{
		"# TYPE apgas_finish_ctl_msgs counter",
		`apgas_finish_ctl_msgs{place="0"} 42`,
		`apgas_finish_ctl_msgs{place="1"} 7`,
		"# TYPE apgas_sched_queue gauge",
		`apgas_sched_queue{place="1"} -3`,
		"# TYPE apgas_lat_ns histogram",
		`apgas_lat_ns_bucket{place="0",le="3"} 2`,
		`apgas_lat_ns_bucket{place="0",le="+Inf"} 2`,
		`apgas_lat_ns_sum{place="0"} 6`,
		`apgas_lat_ns_count{place="0"} 2`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// Place 0 precedes place 1 within a metric family.
	if strings.Index(out, `place="0"} 42`) > strings.Index(out, `place="1"} 7`) {
		t.Errorf("places not sorted:\n%s", out)
	}
}

func TestPromNameSanitizes(t *testing.T) {
	if got := promName("x10rt.bytes.control-class"); got != "apgas_x10rt_bytes_control_class" {
		t.Fatalf("promName = %q", got)
	}
	// Unicode and punctuation collapse to underscores.
	if got := promName("läté ns/op"); got != "apgas_l_t__ns_op" {
		t.Fatalf("promName = %q", got)
	}
}

func TestPromLabelNameSanitizes(t *testing.T) {
	cases := map[string]string{
		"app":       "app",
		"my-label":  "my_label",
		"0leading":  "_0leading",
		"":          "_",
		"ok_9":      "ok_9",
		"dots.here": "dots_here",
	}
	for in, want := range cases {
		if got := promLabelName(in); got != want {
			t.Errorf("promLabelName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestPromEscape(t *testing.T) {
	cases := map[string]string{
		"plain":        "plain",
		`back\slash`:   `back\\slash`,
		`say "hi"`:     `say \"hi\"`,
		"line\nbreak":  `line\nbreak`,
		"\\\"\n":       `\\\"\n`,
		"unicode: λ→µ": "unicode: λ→µ",
	}
	for in, want := range cases {
		if got := promEscape(in); got != want {
			t.Errorf("promEscape(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestWritePromWithConstLabels(t *testing.T) {
	snaps := map[int]obs.Snapshot{
		0: {"x": {Kind: obs.KindCounter, Count: 1}},
	}
	var b strings.Builder
	WritePromWith(&b, snaps, map[string]string{
		"app":      "bench \"dense\"\nv2",
		"bad-name": `a\b`,
	})
	out := b.String()
	want := `apgas_x{place="0",app="bench \"dense\"\nv2",bad_name="a\\b"} 1`
	if !strings.Contains(out, want) {
		t.Fatalf("output missing %q:\n%s", want, out)
	}
	// Escaped output must stay a single exposition line.
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if !strings.HasSuffix(line, " 1") {
			t.Fatalf("sample line broken by raw newline: %q", line)
		}
	}
}

// TestPromHistogramBucketsMonotone feeds a histogram with observations
// across many power-of-two buckets and checks the exported cumulative
// series never decreases and ends exactly at _count.
func TestPromHistogramBucketsMonotone(t *testing.T) {
	h := &obs.Histogram{}
	var n uint64
	for _, v := range []uint64{0, 1, 2, 3, 5, 8, 100, 1000, 1 << 20, 1 << 33} {
		h.Observe(v)
		n++
	}
	r := obs.NewRegistry()
	r.RegisterHistogram("lat.ns", h)
	snaps := map[int]obs.Snapshot{0: r.Snapshot()}
	var b strings.Builder
	WriteProm(&b, snaps)
	out := b.String()

	var prev uint64
	var sawInf bool
	var bucketLines int
	for _, line := range strings.Split(out, "\n") {
		if !strings.HasPrefix(line, "apgas_lat_ns_bucket{") {
			continue
		}
		bucketLines++
		fields := strings.Fields(line)
		if len(fields) != 2 {
			t.Fatalf("bad bucket line %q", line)
		}
		cum, err := strconv.ParseUint(fields[1], 10, 64)
		if err != nil {
			t.Fatalf("bad bucket value in %q: %v", line, err)
		}
		if cum < prev {
			t.Fatalf("bucket series decreased (%d -> %d) at %q:\n%s", prev, cum, line, out)
		}
		prev = cum
		if strings.Contains(line, `le="+Inf"`) {
			sawInf = true
			if cum != n {
				t.Fatalf("+Inf bucket = %d, want count %d", cum, n)
			}
		}
	}
	if bucketLines < 5 || !sawInf {
		t.Fatalf("bucket export incomplete (%d lines, inf=%v):\n%s", bucketLines, sawInf, out)
	}
	if !strings.Contains(out, "apgas_lat_ns_count{place=\"0\"} "+strconv.FormatUint(n, 10)) {
		t.Fatalf("missing _count:\n%s", out)
	}
}

func TestHistBucketUpper(t *testing.T) {
	cases := map[int]uint64{0: 0, 1: 1, 2: 3, 3: 7, 10: 1023, 64: ^uint64(0), 99: ^uint64(0)}
	for i, want := range cases {
		if got := histBucketUpper(i); got != want {
			t.Errorf("histBucketUpper(%d) = %d, want %d", i, got, want)
		}
	}
}
