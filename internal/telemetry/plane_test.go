package telemetry

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"apgas/internal/core"
	"apgas/internal/obs"
	"apgas/internal/x10rt"
)

const collectTimeout = 10 * time.Second

// newPlane builds a runtime with an attached telemetry plane.
func newPlane(t *testing.T, places int, mod func(*core.Config)) (*core.Runtime, *Plane) {
	t.Helper()
	cfg := core.Config{Places: places, Obs: obs.New()}
	if mod != nil {
		mod(&cfg)
	}
	rt, err := core.NewRuntime(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { rt.Close() })
	p, err := Attach(rt)
	if err != nil {
		t.Fatal(err)
	}
	return rt, p
}

// TestCollectSumEquality is the acceptance check of the telemetry plane:
// after a 4-place workload, the aggregated x10rt message totals from the
// gather tree equal the sum of the four per-place transport Stats, which
// in turn equals the transport's global Stats — telemetry's own traffic
// is invisible to all three.
func TestCollectSumEquality(t *testing.T) {
	const places = 4
	rt, p := newPlane(t, places, nil)
	err := rt.Run(func(c *core.Ctx) {
		for q := 1; q < c.NumPlaces(); q++ {
			c.AtAsyncSized(core.Place(q), 64*q, func(cc *core.Ctx) {
				cc.Async(func(*core.Ctx) {})
			})
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	// Drain in-flight finish cleanup so the per-place snapshots, the
	// per-place transport stats, and the global stats all describe the
	// same quiescent instant.
	tr := rt.Transport().(*x10rt.ChanTransport)
	tr.Quiesce()

	rep, err := p.Report(collectTimeout)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Places != places || len(rep.ByPlace) != places {
		t.Fatalf("report covers %d/%d places, want %d", len(rep.ByPlace), rep.Places, places)
	}

	total := tr.Stats()
	var sum x10rt.Stats
	for q := 0; q < places; q++ {
		ps := tr.PlaceStats(q)
		for i := range sum.Messages {
			sum.Messages[i] += ps.Messages[i]
			sum.Bytes[i] += ps.Bytes[i]
		}
		sum.WireBytes += ps.WireBytes
	}
	if sum != total {
		t.Fatalf("sum of per-place stats %v != transport stats %v", sum, total)
	}

	// The merged cross-place counters agree with the transport exactly.
	checks := []struct {
		name string
		want uint64
	}{
		{"x10rt.msgs.data", total.Messages[x10rt.DataClass]},
		{"x10rt.msgs.control", total.Messages[x10rt.ControlClass]},
		{"x10rt.bytes.data", total.Bytes[x10rt.DataClass]},
		{"x10rt.bytes.control", total.Bytes[x10rt.ControlClass]},
		{"x10rt.bytes.wire", total.WireBytes},
	}
	for _, c := range checks {
		if got := rep.Merged.Counter(c.name); got != c.want {
			t.Errorf("merged %s = %d, want %d (transport)", c.name, got, c.want)
		}
	}
	if total.Messages[x10rt.DataClass] == 0 || total.Messages[x10rt.ControlClass] == 0 {
		t.Fatalf("degenerate workload, stats %v", total)
	}

	// Per-place attribution in the merged view matches PlaceStats.
	mv, ok := rep.Merged["x10rt.msgs.data"]
	if !ok {
		t.Fatal("merged view has no x10rt.msgs.data")
	}
	for i, q := range mv.Places {
		want := tr.PlaceStats(q).Messages[x10rt.DataClass]
		if uint64(mv.PerPlace[i]) != want {
			t.Errorf("place %d data msgs = %d, want %d", q, mv.PerPlace[i], want)
		}
	}

	// Every place contributed scheduler activity under the shared name.
	if mv, ok := rep.Merged["sched.spawned"]; !ok || len(mv.Places) != places {
		t.Errorf("sched.spawned merged over %+v, want all %d places", mv.Places, places)
	}

	var table bytes.Buffer
	rep.WriteTable(&table)
	if !strings.Contains(table.String(), "telemetry: 4 places") {
		t.Errorf("table missing header:\n%s", table.String())
	}
	if !strings.Contains(table.String(), "x10rt.msgs.data") {
		t.Errorf("table missing transport counters:\n%s", table.String())
	}
}

// TestCollectRepeatedAndConcurrent exercises round bookkeeping: rounds
// must not cross-talk, and counters only grow between rounds.
func TestCollectRepeatedAndConcurrent(t *testing.T) {
	rt, p := newPlane(t, 3, nil)
	if err := rt.Run(func(c *core.Ctx) {
		c.AtAsync(1, func(*core.Ctx) {})
	}); err != nil {
		t.Fatal(err)
	}
	first, err := p.Collect(collectTimeout)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	results := make([]map[int]obs.Snapshot, 4)
	for i := range results {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			snaps, err := p.Collect(collectTimeout)
			if err != nil {
				t.Errorf("concurrent collect %d: %v", i, err)
				return
			}
			results[i] = snaps
		}(i)
	}
	wg.Wait()
	for i, snaps := range results {
		if snaps == nil {
			continue
		}
		if len(snaps) != 3 {
			t.Fatalf("round %d covered %d places", i, len(snaps))
		}
		for q, s := range snaps {
			if s.Counter("sched.spawned") < first[q].Counter("sched.spawned") {
				t.Errorf("round %d place %d went backwards", i, q)
			}
		}
	}
}

// TestHandlerJSON drives the /telemetry HTTP endpoint.
func TestHandlerJSON(t *testing.T) {
	SetCurrent(nil)
	rec := httptest.NewRecorder()
	Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/telemetry", nil))
	if rec.Code != 503 {
		t.Fatalf("no plane: status %d, want 503", rec.Code)
	}

	rt, p := newPlane(t, 2, nil)
	if err := rt.Run(func(c *core.Ctx) {
		c.AtAsync(1, func(*core.Ctx) {})
	}); err != nil {
		t.Fatal(err)
	}
	SetCurrent(p)
	defer SetCurrent(nil)
	rec = httptest.NewRecorder()
	Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/telemetry", nil))
	if rec.Code != 200 {
		t.Fatalf("status %d, body %s", rec.Code, rec.Body.String())
	}
	var doc struct {
		Places  int `json:"places"`
		Metrics map[string]struct {
			Kind     string           `json:"kind"`
			Sum      int64            `json:"sum"`
			PerPlace map[string]int64 `json:"perPlace"`
		} `json:"metrics"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, rec.Body.String())
	}
	if doc.Places != 2 {
		t.Errorf("places = %d, want 2", doc.Places)
	}
	m, ok := doc.Metrics["sched.spawned"]
	if !ok || m.Sum == 0 {
		t.Fatalf("metrics missing sched.spawned: %+v", doc.Metrics)
	}
	if m.Kind != "counter" || len(m.PerPlace) == 0 {
		t.Errorf("sched.spawned = %+v, want counter with perPlace", m)
	}
}
