package telemetry

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"apgas/internal/core"
	"apgas/internal/x10rt"
)

// killAndObserve kills the places on the runtime's own ChanTransport and
// waits until the runtime's death registry has caught up.
func killAndObserve(t *testing.T, rt *core.Runtime, victims ...int) {
	t.Helper()
	tr := rt.Transport().(*x10rt.ChanTransport)
	for _, v := range victims {
		if err := tr.KillPlace(v); err != nil {
			t.Fatalf("KillPlace(%d): %v", v, err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for _, v := range victims {
		for !rt.PlaceDead(core.Place(v)) {
			if time.Now().After(deadline) {
				t.Fatalf("runtime never observed death of place %d", v)
			}
			time.Sleep(time.Millisecond)
		}
	}
}

// TestCollectExcludesDeadPlaces: after two places die — including chunk
// roots of the gather tree — a collection round completes over exactly
// the survivors instead of stranding on the dead subtree roots.
func TestCollectExcludesDeadPlaces(t *testing.T) {
	const places = 8
	rt, p := newPlane(t, places, nil)
	if err := rt.Run(func(c *core.Ctx) {
		for q := 1; q < c.NumPlaces(); q++ {
			c.AtAsync(core.Place(q), func(*core.Ctx) {})
		}
	}); err != nil {
		t.Fatal(err)
	}
	// With the default arity the tree chunks [1,8) contiguously; place 1
	// roots the first chunk, so its death forces a re-root mid-chunk.
	killAndObserve(t, rt, 1, 5)

	snaps, err := p.Collect(collectTimeout)
	if err != nil {
		t.Fatalf("collect after deaths: %v", err)
	}
	if len(snaps) != places-2 {
		t.Fatalf("collected %d places, want %d survivors", len(snaps), places-2)
	}
	for _, v := range []int{1, 5} {
		if _, ok := snaps[v]; ok {
			t.Errorf("dead place %d present in collection", v)
		}
	}
	for q := 0; q < places; q++ {
		if q == 1 || q == 5 {
			continue
		}
		if _, ok := snaps[q]; !ok {
			t.Errorf("live place %d missing from collection", q)
		}
	}

	// The merged report spans the survivors.
	rep, err := p.Report(collectTimeout)
	if err != nil {
		t.Fatal(err)
	}
	if mv, ok := rep.Merged["sched.spawned"]; !ok || len(mv.Places) != places-2 {
		t.Errorf("sched.spawned merged over %+v, want the %d survivors", mv.Places, places-2)
	}
}

// TestWatchdogAnnotatesDeadDebtor: a stall dump whose who-owes-whom
// deficit names a dead place says so, separating "wedged" from "gone".
func TestWatchdogAnnotatesDeadDebtor(t *testing.T) {
	rt, _ := newPlane(t, 3, nil)
	killAndObserve(t, rt, 2)

	var out bytes.Buffer
	w := StartWatchdog(rt, WatchdogOptions{Window: time.Hour, Out: &out, FlightTail: -1})
	defer w.Stop()
	w.dump(core.FinishState{
		Home: 0, Seq: 7, Pattern: core.PatternDefault, Waiting: true, Live: 1,
		Deficits: []core.PlaceDeficit{
			{Place: 1, Sent: 2, Recv: 1},
			{Place: 2, Sent: 3, Recv: 0},
		},
	}, time.Now())

	text := out.String()
	lines := strings.Split(text, "\n")
	var p1, p2 string
	for _, l := range lines {
		if strings.Contains(l, "owes: place p1") {
			p1 = l
		}
		if strings.Contains(l, "owes: place p2") {
			p2 = l
		}
	}
	if p1 == "" || p2 == "" {
		t.Fatalf("dump missing deficit lines:\n%s", text)
	}
	if strings.Contains(p1, "DEAD") {
		t.Errorf("live debtor annotated dead: %s", p1)
	}
	if !strings.Contains(p2, "DEAD") {
		t.Errorf("dead debtor not annotated: %s", p2)
	}
}
