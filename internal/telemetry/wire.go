package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"time"

	"apgas/internal/x10rt"
)

// This file is the wire observatory's reporting surface: the /wire
// endpoint (JSON and text table) over the message-level cost
// attribution the x10rt.WireLedger records. Two constructors build the
// same WireView: one from a ledger snapshot (exact, in-process — what
// apgas-bench dumps to disk), one from a merged telemetry report (the
// ledger's per-place registry counters travel the gather tree like any
// metric, so the endpoint works across processes too). tracecheck
// -wire validates the serialized form, FuzzCheckWireDump fuzzes it.

// WireDumpType is the type tag of a serialized WireView.
const WireDumpType = "apgas-wire"

// WireDumpVersion is the current dump schema version.
const WireDumpVersion = 1

// WireHandlerRow is one handler's cost account, summed over places.
type WireHandlerRow struct {
	ID    int    `json:"id"`
	Name  string `json:"name"`
	Msgs  uint64 `json:"msgs"`
	Bytes uint64 `json:"bytes"`
	EncNs uint64 `json:"enc_ns"`
	Recv  uint64 `json:"recv"`
	DecNs uint64 `json:"dec_ns"`
}

// WireLinkRow is one (src → dst) link's cost account.
type WireLinkRow struct {
	Src     int    `json:"src"`
	Dst     int    `json:"dst"`
	Msgs    uint64 `json:"msgs"`
	Bytes   uint64 `json:"bytes"`
	Wire    uint64 `json:"wire"`
	Raw     uint64 `json:"raw"`
	Comp    uint64 `json:"comp"`
	QwaitNs uint64 `json:"qwait_ns"`
	Batches uint64 `json:"batches"`
}

// WireTotals carries the sum-equality cross-check: the first three are
// sums over the ledger rows, the last two the transport's own counters.
// A consistent dump has PayloadBytes == BytesSent and WireBytes ==
// BytesWire — the ledger refines the traffic counters, it never
// disagrees with them.
type WireTotals struct {
	Msgs         uint64 `json:"msgs"`
	PayloadBytes uint64 `json:"payload_bytes"`
	WireBytes    uint64 `json:"wire_bytes"`
	BytesSent    uint64 `json:"bytes_sent"`
	BytesWire    uint64 `json:"bytes_wire"`
}

// WireView is the wire observatory's report (and dump) format.
type WireView struct {
	Type       string           `json:"type"`
	Version    int              `json:"version"`
	Places     int              `json:"places"`
	ElapsedSec float64          `json:"elapsed_sec"`
	Handlers   []WireHandlerRow `json:"handlers"`
	Links      []WireLinkRow    `json:"links"`
	Totals     WireTotals       `json:"totals"`
}

// WireFromSnapshot builds a WireView from a ledger snapshot plus the
// transport's traffic counters (the sum-equality reference). Handler
// accounts are aggregated over places.
func WireFromSnapshot(snap x10rt.WireSnapshot, stats x10rt.Stats, elapsed time.Duration) *WireView {
	v := &WireView{
		Type:       WireDumpType,
		Version:    WireDumpVersion,
		Places:     snap.Places,
		ElapsedSec: elapsed.Seconds(),
	}
	byID := make(map[int]*WireHandlerRow)
	for _, h := range snap.Handlers {
		r := byID[int(h.ID)]
		if r == nil {
			r = &WireHandlerRow{ID: int(h.ID), Name: h.Name}
			byID[int(h.ID)] = r
		}
		r.Msgs += h.Msgs
		r.Bytes += h.Bytes
		r.EncNs += h.EncNs
		r.Recv += h.RecvMsgs
		r.DecNs += h.DecNs
	}
	for _, r := range byID {
		v.Handlers = append(v.Handlers, *r)
	}
	sort.Slice(v.Handlers, func(i, j int) bool { return v.Handlers[i].ID < v.Handlers[j].ID })
	for _, l := range snap.Links {
		v.Links = append(v.Links, WireLinkRow(l))
	}
	for _, h := range v.Handlers {
		v.Totals.Msgs += h.Msgs
		v.Totals.PayloadBytes += h.Bytes
	}
	for _, l := range v.Links {
		v.Totals.WireBytes += l.Wire
	}
	v.Totals.BytesSent = stats.TotalBytes()
	v.Totals.BytesWire = stats.WireBytes
	return v
}

// parseWireHandlerMetric parses a per-place registry name of the form
// "x10rt.h<ID>.<field>", returning (id, field, true) on match.
func parseWireHandlerMetric(name string) (int, string, bool) {
	rest, ok := strings.CutPrefix(name, "x10rt.h")
	if !ok {
		return 0, "", false
	}
	num, field, ok := strings.Cut(rest, ".")
	if !ok || num == "" || field == "" {
		return 0, "", false
	}
	id, err := strconv.Atoi(num)
	if err != nil || id < 0 {
		return 0, "", false
	}
	return id, field, true
}

// parseWireLinkMetric parses "x10rt.link.<src>-<dst>.<field>".
func parseWireLinkMetric(name string) (src, dst int, field string, ok bool) {
	rest, okp := strings.CutPrefix(name, "x10rt.link.")
	if !okp {
		return 0, 0, "", false
	}
	pair, field, okp := strings.Cut(rest, ".")
	if !okp || field == "" {
		return 0, 0, "", false
	}
	s, d, okp := strings.Cut(pair, "-")
	if !okp {
		return 0, 0, "", false
	}
	var err error
	if src, err = strconv.Atoi(s); err != nil || src < 0 {
		return 0, 0, "", false
	}
	if dst, err = strconv.Atoi(d); err != nil || dst < 0 {
		return 0, 0, "", false
	}
	return src, dst, field, true
}

// WireFromReport rebuilds a WireView from a merged telemetry report by
// parsing the ledger's registry names back into accounts. This is what
// makes the /wire endpoint work over a multi-process mesh: the ledger
// counters arrive through the same gather tree as every other metric.
func WireFromReport(rep *Report, elapsed time.Duration) *WireView {
	v := &WireView{
		Type:       WireDumpType,
		Version:    WireDumpVersion,
		Places:     rep.Places,
		ElapsedSec: elapsed.Seconds(),
	}
	handlers := make(map[int]*WireHandlerRow)
	links := make(map[[2]int]*WireLinkRow)
	for name, m := range rep.Merged {
		sum := uint64(m.Sum.Count)
		if id, field, ok := parseWireHandlerMetric(name); ok {
			r := handlers[id]
			if r == nil {
				r = &WireHandlerRow{ID: id, Name: x10rt.HandlerName(x10rt.HandlerID(id))}
				handlers[id] = r
			}
			switch field {
			case "msgs":
				r.Msgs = sum
			case "bytes":
				r.Bytes = sum
			case "enc_ns":
				r.EncNs = sum
			case "recv":
				r.Recv = sum
			case "dec_ns":
				r.DecNs = sum
			}
			continue
		}
		if src, dst, field, ok := parseWireLinkMetric(name); ok {
			k := [2]int{src, dst}
			r := links[k]
			if r == nil {
				r = &WireLinkRow{Src: src, Dst: dst}
				links[k] = r
			}
			switch field {
			case "msgs":
				r.Msgs = sum
			case "bytes":
				r.Bytes = sum
			case "wire":
				r.Wire = sum
			case "raw":
				r.Raw = sum
			case "comp":
				r.Comp = sum
			case "qwait_ns":
				r.QwaitNs = sum
			case "batches":
				r.Batches = sum
			}
		}
	}
	for _, r := range handlers {
		v.Handlers = append(v.Handlers, *r)
	}
	for _, r := range links {
		v.Links = append(v.Links, *r)
	}
	sort.Slice(v.Handlers, func(i, j int) bool { return v.Handlers[i].ID < v.Handlers[j].ID })
	sort.Slice(v.Links, func(i, j int) bool {
		if v.Links[i].Src != v.Links[j].Src {
			return v.Links[i].Src < v.Links[j].Src
		}
		return v.Links[i].Dst < v.Links[j].Dst
	})
	for _, h := range v.Handlers {
		v.Totals.Msgs += h.Msgs
		v.Totals.PayloadBytes += h.Bytes
	}
	for _, l := range v.Links {
		v.Totals.WireBytes += l.Wire
	}
	for _, cls := range []string{"data", "control", "collective"} {
		if m, ok := rep.Merged["x10rt.bytes."+cls]; ok {
			v.Totals.BytesSent += uint64(m.Sum.Count)
		}
	}
	if m, ok := rep.Merged["x10rt.bytes.wire"]; ok {
		v.Totals.BytesWire = uint64(m.Sum.Count)
	}
	return v
}

// SumEqual reports whether the ledger's sums agree with the transport
// counters, with a diagnostic when they do not. A view with no ledger
// data at all (no handler rows) is not considered equal: it means the
// ledger was never attached.
func (v *WireView) SumEqual() error {
	if len(v.Handlers) == 0 {
		return fmt.Errorf("wire: no handler accounts (ledger not attached?)")
	}
	if v.Totals.PayloadBytes != v.Totals.BytesSent {
		return fmt.Errorf("wire: Σ per-handler payload bytes %d != x10rt bytes sent %d",
			v.Totals.PayloadBytes, v.Totals.BytesSent)
	}
	if v.Totals.WireBytes != v.Totals.BytesWire {
		return fmt.Errorf("wire: Σ per-link wire bytes %d != x10rt.bytes.wire %d",
			v.Totals.WireBytes, v.Totals.BytesWire)
	}
	return nil
}

// topHandlers returns up to k handler rows ordered by the given cost
// (encode ns first, then wire-relevant bytes, then msgs).
func (v *WireView) topHandlers(k int) []WireHandlerRow {
	rows := append([]WireHandlerRow(nil), v.Handlers...)
	sort.Slice(rows, func(i, j int) bool {
		a, b := rows[i], rows[j]
		ca, cb := a.EncNs+a.DecNs, b.EncNs+b.DecNs
		if ca != cb {
			return ca > cb
		}
		if a.Bytes != b.Bytes {
			return a.Bytes > b.Bytes
		}
		return a.Msgs > b.Msgs
	})
	if len(rows) > k {
		rows = rows[:k]
	}
	return rows
}

// WriteText renders the view as a text report: top-k hot handlers by
// serialization cost, then every link with bandwidth, compression
// ratio, and mean batch queue wait. This is the table that names the
// codec targets for the wire-path work: the first rows of the handler
// table are where a faster codec pays.
func (v *WireView) WriteText(w io.Writer, topK int) {
	if topK <= 0 {
		topK = 8
	}
	fmt.Fprintf(w, "wire: %d places, %d handlers, %d links, %.1fs\n",
		v.Places, len(v.Handlers), len(v.Links), v.ElapsedSec)
	fmt.Fprintf(w, "totals: %d msgs, payload %dB (counters %dB), wire %dB (counters %dB)\n",
		v.Totals.Msgs, v.Totals.PayloadBytes, v.Totals.BytesSent,
		v.Totals.WireBytes, v.Totals.BytesWire)

	fmt.Fprintf(w, "\n%-4s %-10s %10s %12s %10s %10s %10s\n",
		"ID", "HANDLER", "MSGS", "BYTES", "ENC-NS/MSG", "DEC-NS/MSG", "ENC-TOT-MS")
	for _, h := range v.topHandlers(topK) {
		encPer, decPer := uint64(0), uint64(0)
		if h.Msgs > 0 {
			encPer = h.EncNs / h.Msgs
		}
		if h.Recv > 0 {
			decPer = h.DecNs / h.Recv
		}
		fmt.Fprintf(w, "%-4d %-10s %10d %12d %10d %10d %10.2f\n",
			h.ID, h.Name, h.Msgs, h.Bytes, encPer, decPer, float64(h.EncNs)/1e6)
	}

	fmt.Fprintf(w, "\n%-7s %10s %12s %12s %8s %10s %10s\n",
		"LINK", "MSGS", "WIRE-B", "B/S", "RATIO", "QWAIT-US", "BATCHES")
	for _, l := range v.Links {
		bps := 0.0
		if v.ElapsedSec > 0 {
			bps = float64(l.Wire) / v.ElapsedSec
		}
		ratio := 1.0
		if l.Comp > 0 {
			ratio = float64(l.Raw) / float64(l.Comp)
		}
		qwait := 0.0
		if l.Batches > 0 {
			qwait = float64(l.QwaitNs) / float64(l.Batches) / 1e3
		}
		fmt.Fprintf(w, "%d->%-4d %10d %12d %12.0f %8.2f %10.1f %10d\n",
			l.Src, l.Dst, l.Msgs, l.Wire, bps, ratio, qwait, l.Batches)
	}
}

// WireHandler serves the current plane's wire view — mount it at /wire
// on the -debug-addr server. JSON by default; ?format=text renders the
// text table (?top=K bounds the handler table). Like Handler, it
// answers 503 while no plane is installed and 504 on collection
// timeout.
func WireHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		p := Current()
		if p == nil {
			http.Error(w, "no telemetry plane attached", http.StatusServiceUnavailable)
			return
		}
		rep, err := p.Report(5 * time.Second)
		if err != nil {
			http.Error(w, err.Error(), http.StatusGatewayTimeout)
			return
		}
		v := WireFromReport(rep, p.Elapsed())
		if req.URL.Query().Get("format") == "text" {
			topK := 0
			if s := req.URL.Query().Get("top"); s != "" {
				topK, _ = strconv.Atoi(s)
			}
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			v.WriteText(w, topK)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(v)
	})
}
