package telemetry

import (
	"fmt"
	"io"
	"os"
	"sync"
	"time"

	"apgas/internal/core"
	"apgas/internal/obs"
)

// WatchdogOptions tunes the finish stall watchdog.
type WatchdogOptions struct {
	// Window is how long a waiting finish root may go without processing
	// a single event before it is declared stalled (default 5s).
	Window time.Duration
	// Poll is the sampling interval (default Window/4, min 10ms).
	Poll time.Duration
	// Out receives stall dumps (default os.Stderr).
	Out io.Writer
	// FlightTail is the number of recent flight-recorder events appended
	// to each dump (default 64; negative suppresses the tail).
	FlightTail int
}

func (o *WatchdogOptions) applyDefaults() {
	if o.Window <= 0 {
		o.Window = 5 * time.Second
	}
	if o.Poll <= 0 {
		o.Poll = o.Window / 4
	}
	if o.Poll < 10*time.Millisecond {
		o.Poll = 10 * time.Millisecond
	}
	if o.Out == nil {
		o.Out = os.Stderr
	}
	if o.FlightTail == 0 {
		o.FlightTail = 64
	}
}

// rootKey identifies a finish root across watchdog samples.
type rootKey struct {
	home core.Place
	seq  uint64
}

// rootTrack is the watchdog's memory of one root: the last Events value
// seen, when it last changed, and whether this stall episode has already
// been dumped (one dump per episode; progress rearms).
type rootTrack struct {
	events  uint64
	since   time.Time
	dumped  bool
	seenNow bool
}

// Watchdog monitors a runtime's finish roots for stalls. Every root's
// Events counter is monotone — it ticks on every spawn, termination, and
// control message the root processes — so a root that is Waiting, not
// Done, has pending work, and whose Events counter has not moved for a
// full Window has truly made zero progress: its dump is emitted, naming
// the finish pattern and the who-owes-whom deficits (which place owes how
// many activity completions), followed by the proxy/dense-buffer state
// and the tail of the flight recorder. A slow-but-progressing finish
// keeps ticking Events and never triggers.
type Watchdog struct {
	rt   *core.Runtime
	opts WatchdogOptions

	mu     sync.Mutex
	tracks map[rootKey]*rootTrack
	stalls int

	stopOnce sync.Once
	stopCh   chan struct{}
	doneCh   chan struct{}
}

// StartWatchdog begins monitoring rt and returns the running watchdog.
// Call Stop when the runtime's work is done.
func StartWatchdog(rt *core.Runtime, opts WatchdogOptions) *Watchdog {
	opts.applyDefaults()
	w := &Watchdog{
		rt:     rt,
		opts:   opts,
		tracks: make(map[rootKey]*rootTrack),
		stopCh: make(chan struct{}),
		doneCh: make(chan struct{}),
	}
	go w.loop()
	return w
}

// Stop halts the watchdog and waits for its goroutine to exit.
func (w *Watchdog) Stop() {
	w.stopOnce.Do(func() { close(w.stopCh) })
	<-w.doneCh
}

// Stalls returns the number of stall dumps emitted so far.
func (w *Watchdog) Stalls() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.stalls
}

func (w *Watchdog) loop() {
	defer close(w.doneCh)
	ticker := time.NewTicker(w.opts.Poll)
	defer ticker.Stop()
	for {
		select {
		case <-w.stopCh:
			return
		case now := <-ticker.C:
			w.sample(now)
		}
	}
}

func (w *Watchdog) sample(now time.Time) {
	states := w.rt.FinishStates()
	w.mu.Lock()
	for _, tr := range w.tracks {
		tr.seenNow = false
	}
	var stalled []core.FinishState
	for _, s := range states {
		key := rootKey{home: s.Home, seq: s.Seq}
		tr, ok := w.tracks[key]
		if !ok {
			tr = &rootTrack{events: s.Events, since: now}
			w.tracks[key] = tr
		}
		tr.seenNow = true
		if s.Events != tr.events {
			tr.events = s.Events
			tr.since = now
			tr.dumped = false // progress rearms the episode
			continue
		}
		// Only a root that is actually waiting on outstanding work can
		// stall; a root still running its body, or one with nothing
		// pending, is not a hang.
		pending := s.Live != 0 || len(s.Deficits) > 0
		if s.Waiting && !s.Done && pending && !tr.dumped && now.Sub(tr.since) >= w.opts.Window {
			tr.dumped = true
			w.stalls++
			stalled = append(stalled, s)
		}
	}
	for key, tr := range w.tracks {
		if !tr.seenNow {
			delete(w.tracks, key) // root completed and was deregistered
		}
	}
	w.mu.Unlock()
	for _, s := range stalled {
		w.dump(s, now)
	}
}

// dump emits one stall report: the actionable header (pattern, place,
// pending counts), the full finish diagnostic, and the flight tail.
func (w *Watchdog) dump(s core.FinishState, now time.Time) {
	out := w.opts.Out
	fmt.Fprintf(out, "\napgas stall watchdog: %s home=p%d seq=%d made no progress for %v "+
		"(events=%d live=%d)\n", s.Pattern, s.Home, s.Seq, w.opts.Window.Round(time.Millisecond),
		s.Events, s.Live)
	fmt.Fprintf(out, "  runtime: %s\n", obs.TakeRuntimeSnapshot())
	if len(s.Deficits) == 0 {
		fmt.Fprintf(out, "  %d governed activities have not terminated at the home place\n", s.Live)
	}
	for _, d := range s.Deficits {
		// A dead debtor will never pay: the pending credits are owed to
		// the resilient-finish adoption sweep, not the network. Naming
		// that in the dump separates "place is wedged" from "place is
		// gone and adoption has not caught up yet".
		note := ""
		if w.rt.PlaceDead(d.Place) {
			note = " [place is DEAD; credits forgiven by adoption]"
		}
		fmt.Fprintf(out, "  owes: place p%d pending=%d (sent=%d recv=%d)%s\n",
			d.Place, d.Pending(), d.Sent, d.Recv, note)
	}
	// With distributed tracing on, name not just the owing place but the
	// chain of spans — who spawned what, where — leading to each stuck
	// activity (oldest leaves first, capped to keep dumps readable).
	if chains := w.rt.CausalChains(s.Home, s.Seq, 8); len(chains) > 0 {
		fmt.Fprintf(out, "  causal chains of live spans (stuck leaf first):\n")
		for _, chain := range chains {
			fmt.Fprintf(out, "   ")
			for i, cs := range chain {
				if i > 0 {
					fmt.Fprintf(out, " <-")
				}
				if cs.Src != cs.Place {
					fmt.Fprintf(out, " %s#%d@p%d(from p%d)", cs.Name, cs.Span, cs.Place, cs.Src)
				} else {
					fmt.Fprintf(out, " %s#%d@p%d", cs.Name, cs.Span, cs.Place)
				}
			}
			fmt.Fprintln(out)
		}
	}
	w.rt.WriteFinishDump(out)
	if w.opts.FlightTail >= 0 {
		if f := w.rt.Obs().FlightRecorder(); f != nil {
			fmt.Fprintf(out, "recent flight events (newest last):\n")
			f.WriteText(out, w.opts.FlightTail)
		}
	}
	// Attach memory state to the stall: a heap profile lands in the ring
	// so it can be pulled over /debug/profilez after the fact.
	if r := w.rt.Obs().ProfileRing(); r != nil {
		if seq, err := r.CaptureHeap(); err == nil {
			fmt.Fprintf(out, "heap profile captured as ring snapshot #%d (GET /debug/profilez?seq=%d)\n", seq, seq)
		}
	}
}
