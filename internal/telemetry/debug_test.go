package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"apgas/internal/obs"
)

func httpGet(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read body: %v", url, err)
	}
	return resp.StatusCode, body
}

func TestDebugServer(t *testing.T) {
	o := obs.New().EnableProfileRing(4)
	o.Metrics.Counter("debugtest.hits").Add(7)
	ring := o.ProfileRing()
	ring.Add("cpu", time.Unix(100, 0), time.Second, []byte("fake-cpu"))
	ring.Add("heap", time.Unix(200, 0), 0, []byte("fake-heap"))

	s, err := StartDebugServer("127.0.0.1:0", o)
	if err != nil {
		t.Fatalf("StartDebugServer: %v", err)
	}
	defer s.Close()
	base := "http://" + s.Addr

	// expvar includes the apgas snapshot.
	code, body := httpGet(t, base+"/debug/vars")
	if code != 200 || !strings.Contains(string(body), "debugtest.hits") {
		t.Fatalf("/debug/vars: code=%d body lacks metric:\n%.500s", code, body)
	}

	// pprof index answers.
	code, _ = httpGet(t, base+"/debug/pprof/")
	if code != 200 {
		t.Fatalf("/debug/pprof/: code=%d", code)
	}

	// Prometheus endpoint is mounted; with no telemetry plane attached
	// in this test it reports 503, not a routing 404.
	code, body = httpGet(t, base+"/metrics")
	if code != 200 && code != 503 {
		t.Fatalf("/metrics: code=%d body=%.200s", code, body)
	}

	// profilez index lists both snapshots.
	code, body = httpGet(t, base+"/debug/profilez")
	if code != 200 {
		t.Fatalf("/debug/profilez: code=%d", code)
	}
	var idx []struct {
		Seq   uint64 `json:"seq"`
		Kind  string `json:"kind"`
		Bytes int    `json:"bytes"`
	}
	if err := json.Unmarshal(body, &idx); err != nil {
		t.Fatalf("/debug/profilez: bad JSON %q: %v", body, err)
	}
	if len(idx) != 2 || idx[0].Kind != "cpu" || idx[1].Kind != "heap" {
		t.Fatalf("/debug/profilez index = %+v", idx)
	}

	// Retrieval by seq and by kind.
	code, body = httpGet(t, fmt.Sprintf("%s/debug/profilez?seq=%d", base, idx[0].Seq))
	if code != 200 || string(body) != "fake-cpu" {
		t.Fatalf("profilez?seq: code=%d body=%q", code, body)
	}
	code, body = httpGet(t, base+"/debug/profilez?kind=heap")
	if code != 200 || string(body) != "fake-heap" {
		t.Fatalf("profilez?kind: code=%d body=%q", code, body)
	}
	code, _ = httpGet(t, base+"/debug/profilez?seq=999")
	if code != 404 {
		t.Fatalf("profilez?seq=999: code=%d, want 404", code)
	}
	code, _ = httpGet(t, base+"/debug/profilez?seq=notanumber")
	if code != 400 {
		t.Fatalf("profilez?seq=notanumber: code=%d, want 400", code)
	}
}

func TestDebugServerNilObs(t *testing.T) {
	s, err := StartDebugServer("127.0.0.1:0", nil)
	if err != nil {
		t.Fatalf("StartDebugServer(nil): %v", err)
	}
	defer s.Close()
	code, body := httpGet(t, "http://"+s.Addr+"/debug/profilez")
	if code != 200 || strings.TrimSpace(string(body)) != "[]" {
		t.Fatalf("nil-obs profilez index: code=%d body=%q", code, body)
	}
	code, _ = httpGet(t, "http://"+s.Addr+"/debug/profilez?kind=cpu")
	if code != 404 {
		t.Fatalf("nil-obs profilez?kind: code=%d, want 404", code)
	}
}
