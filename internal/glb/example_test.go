package glb_test

import (
	"fmt"

	"apgas/internal/apps/uts"
	"apgas/internal/core"
	"apgas/internal/glb"
	"apgas/internal/kernels/sha1rng"
)

// Traversing an unbalanced tree with the lifeline balancer: the §6
// configuration with a FINISH_DENSE root finish.
func ExampleBalancer() {
	rt, err := core.NewRuntime(core.Config{Places: 4})
	if err != nil {
		panic(err)
	}
	defer rt.Close()

	tree := sha1rng.Geometric{B0: 4, Depth: 10, Seed: 19}
	bags := make([]*uts.IntervalBag, 4)
	bal := glb.New(rt, glb.Config{DenseFinish: true}, func(p core.Place) glb.TaskBag {
		b := uts.NewIntervalBag(tree)
		if p == 0 {
			b.Seed() // all work starts at place 0; stealing spreads it
		}
		bags[p] = b
		return b
	})
	_ = rt.Run(func(ctx *core.Ctx) {
		if err := bal.Run(ctx); err != nil {
			panic(err)
		}
	})
	var nodes uint64
	for _, b := range bags {
		nodes += b.Nodes
	}
	want, _ := tree.CountSequential()
	fmt.Println("counted:", nodes, "verified:", nodes == want)
	// Output: counted: 11674 verified: true
}
