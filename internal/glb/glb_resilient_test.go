package glb

import (
	"errors"
	"sync"
	"testing"
	"time"

	"apgas/internal/core"
	"apgas/internal/x10rt"
)

// unitRecorder counts executions of every distinct work unit across all
// places — the exactly-once oracle for the re-homing protocol: processed
// units leave their bag and merged loot is acknowledged, so conservative
// re-execution must never actually run a unit twice.
type unitRecorder struct {
	mu   sync.Mutex
	runs map[int64]int
}

func (r *unitRecorder) record(id int64) {
	r.mu.Lock()
	r.runs[id]++
	r.mu.Unlock()
}

func (r *unitRecorder) executed() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.runs)
}

// check asserts every unit in [0, total) ran exactly once.
func (r *unitRecorder) check(t *testing.T, total int64) {
	t.Helper()
	r.mu.Lock()
	defer r.mu.Unlock()
	for id := int64(0); id < total; id++ {
		switch n := r.runs[id]; {
		case n == 0:
			t.Fatalf("unit %d never executed (work lost)", id)
		case n > 1:
			t.Fatalf("unit %d executed %d times (work duplicated)", id, n)
		}
	}
	if len(r.runs) != int(total) {
		t.Fatalf("%d distinct units executed, want %d", len(r.runs), total)
	}
}

// killBag is a TaskBag of distinct unit IDs reporting each execution to a
// shared recorder; spin makes units cost real time so kills land mid-run.
type killBag struct {
	rec   *unitRecorder
	units []int64
	spin  int
	sink  uint64
}

func (b *killBag) Process(q int) int {
	n := q
	if n > len(b.units) {
		n = len(b.units)
	}
	for _, id := range b.units[:n] {
		b.rec.record(id)
		for i := 0; i < b.spin; i++ {
			b.sink = b.sink*6364136223846793005 + 1442695040888963407
		}
	}
	b.units = b.units[n:]
	return n
}

func (b *killBag) Size() int64 { return int64(len(b.units)) }

func (b *killBag) Split() TaskBag {
	if len(b.units) < 2 {
		return nil
	}
	half := len(b.units) / 2
	loot := &killBag{rec: b.rec, units: append([]int64(nil), b.units[:half]...), spin: b.spin}
	b.units = b.units[half:]
	return loot
}

func (b *killBag) Merge(loot TaskBag) {
	b.units = append(b.units, loot.(*killBag).units...)
}

// newKillableGLB builds a runtime over a ChanTransport (the in-process
// transport with KillPlace) and a balancer whose initial work — total
// distinct units — sits at place seedAt.
func newKillableGLB(t *testing.T, places int, total int64, seedAt core.Place, spin int) (*core.Runtime, *x10rt.ChanTransport, *Balancer, *unitRecorder) {
	t.Helper()
	tr, err := x10rt.NewChanTransport(x10rt.ChanOptions{Places: places})
	if err != nil {
		t.Fatalf("NewChanTransport: %v", err)
	}
	rt, err := core.NewRuntime(core.Config{Places: places, Transport: tr, OwnTransport: true,
		CheckPatterns: true})
	if err != nil {
		t.Fatalf("NewRuntime: %v", err)
	}
	t.Cleanup(rt.Close)
	rec := &unitRecorder{runs: make(map[int64]int)}
	b := New(rt, Config{Quantum: 16, RandomAttempts: 4}, func(p core.Place) TaskBag {
		kb := &killBag{rec: rec, spin: spin}
		if p == seedAt {
			kb.units = make([]int64, total)
			for i := range kb.units {
				kb.units[i] = int64(i)
			}
		}
		return kb
	})
	return rt, tr, b, rec
}

// runGLBWithTimeout guards against the failure mode under test: a
// balancer run that hangs after a place death.
func runGLBWithTimeout(t *testing.T, rt *core.Runtime, main func(*core.Ctx)) {
	t.Helper()
	done := make(chan error, 1)
	go func() { done <- rt.Run(main) }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("balancer did not quiesce after place death")
	}
}

// TestGLBKillMidRunRehomesWork: a place is killed while the traversal is
// live; the run quiesces, surfaces ErrPlaceDead, and every unit still
// executes exactly once — the victim's unprocessed remainder and any
// stranded loot are adopted by the survivors.
func TestGLBKillMidRunRehomesWork(t *testing.T) {
	const places, total = 6, 20_000
	rt, tr, b, rec := newKillableGLB(t, places, total, 0, 300)
	victim := core.Place(2)
	go func() {
		// Kill once the traversal is demonstrably mid-flight.
		for rec.executed() < total/20 {
			time.Sleep(100 * time.Microsecond)
		}
		_ = tr.KillPlace(int(victim))
	}()
	runGLBWithTimeout(t, rt, func(ctx *core.Ctx) {
		err := b.Run(ctx)
		if err != nil && !errors.Is(err, core.ErrPlaceDead) {
			t.Errorf("balancer error = %v, want nil or ErrPlaceDead", err)
		}
	})
	if !rt.PlaceDead(victim) {
		t.Fatal("victim was never killed")
	}
	rec.check(t, total)
}

// TestGLBKillVictimHoldingAllWork: the victim owns the entire initial
// bag; after the kill the adoption rounds must re-home everything it had
// not yet processed.
func TestGLBKillVictimHoldingAllWork(t *testing.T) {
	const places, total = 4, 10_000
	victim := core.Place(1)
	rt, tr, b, rec := newKillableGLB(t, places, total, victim, 300)
	go func() {
		for rec.executed() < total/20 {
			time.Sleep(100 * time.Microsecond)
		}
		_ = tr.KillPlace(int(victim))
	}()
	runGLBWithTimeout(t, rt, func(ctx *core.Ctx) {
		err := b.Run(ctx)
		if err != nil && !errors.Is(err, core.ErrPlaceDead) {
			t.Errorf("balancer error = %v, want nil or ErrPlaceDead", err)
		}
	})
	rec.check(t, total)
}

// TestGLBKillBeforeRun: a place dead before Run starts is simply excluded
// — no worker is spawned there, no steal targets it, and the run
// completes cleanly over the survivors.
func TestGLBKillBeforeRun(t *testing.T) {
	const places, total = 4, 5_000
	rt, tr, b, rec := newKillableGLB(t, places, total, 0, 0)
	if err := tr.KillPlace(2); err != nil {
		t.Fatalf("KillPlace: %v", err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for !rt.PlaceDead(2) {
		if time.Now().After(deadline) {
			t.Fatal("runtime never observed the death")
		}
		time.Sleep(time.Millisecond)
	}
	runGLBWithTimeout(t, rt, func(ctx *core.Ctx) {
		if err := b.Run(ctx); err != nil {
			t.Errorf("balancer error = %v, want nil", err)
		}
	})
	rec.check(t, total)
	if got := b.BagAt(2).(*killBag); len(got.units) != 0 {
		t.Errorf("dead place retained %d units", len(got.units))
	}
}

// TestRewireLifelines: dead targets are dropped and the out-degree is
// restored with the next live places around the ring.
func TestRewireLifelines(t *testing.T) {
	const places = 8
	rt, tr, b, _ := newKillableGLB(t, places, 0, 0, 0)
	if err := tr.KillPlace(4); err != nil {
		t.Fatalf("KillPlace: %v", err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for !rt.PlaceDead(4) {
		if time.Now().After(deadline) {
			t.Fatal("runtime never observed the death")
		}
		time.Sleep(time.Millisecond)
	}
	for p := 0; p < places; p++ {
		if p == 4 {
			continue
		}
		st := b.states[p]
		st.mu.Lock()
		lifelines := append([]core.Place(nil), st.lifelines...)
		st.mu.Unlock()
		seen := map[core.Place]bool{}
		for _, l := range lifelines {
			if l == 4 {
				t.Errorf("place %d still has dead lifeline 4", p)
			}
			if l == core.Place(p) {
				t.Errorf("place %d linked to itself", p)
			}
			if seen[l] {
				t.Errorf("place %d has duplicate lifeline %d", p, l)
			}
			seen[l] = true
		}
		if len(lifelines) == 0 {
			t.Errorf("place %d lost all lifelines", p)
		}
	}
}
