package glb

import (
	"testing"

	"apgas/internal/core"
)

func TestConfigDefaults(t *testing.T) {
	c := Config{}
	c.applyDefaults(2048)
	if c.Quantum != 512 || c.RandomAttempts != 2 || c.Seed != 1 {
		t.Errorf("defaults wrong: %+v", c)
	}
	if c.MaxVictims != 1024 {
		t.Errorf("MaxVictims = %d, want 1024 (the paper's bound)", c.MaxVictims)
	}
	if c.Lifelines != 11 { // ceil(log2 2048)
		t.Errorf("Lifelines = %d, want 11", c.Lifelines)
	}
	// Negative MaxVictims removes the bound.
	c2 := Config{MaxVictims: -1}
	c2.applyDefaults(100)
	if c2.MaxVictims != 100 {
		t.Errorf("unbounded MaxVictims = %d, want 100", c2.MaxVictims)
	}
}

func TestLifelinesOverride(t *testing.T) {
	rt := newRT(t, 8)
	b := New(rt, Config{Lifelines: 1, Quantum: 32}, func(p core.Place) TaskBag {
		if p == 0 {
			return &counterBag{pending: 5000, work: 20}
		}
		return &counterBag{work: 20}
	})
	for p := 0; p < 8; p++ {
		if got := len(b.states[p].lifelines); got != 1 {
			t.Errorf("place %d has %d lifelines, want 1", p, got)
		}
	}
	err := rt.Run(func(ctx *core.Ctx) {
		if e := b.Run(ctx); e != nil {
			t.Errorf("run: %v", e)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := totalDone(b, 8); got != 5000 {
		t.Fatalf("done = %d", got)
	}
}

func TestSeedChangesVictimSequences(t *testing.T) {
	rt := newRT(t, 8)
	mk := func(seed int64) *Balancer {
		return New(rt, Config{Seed: seed}, func(core.Place) TaskBag {
			return &counterBag{}
		})
	}
	a, b := mk(1), mk(2)
	same := true
	for p := 0; p < 8 && same; p++ {
		va, vb := a.states[p].victims, b.states[p].victims
		for i := range va {
			if va[i] != vb[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("different seeds produced identical victim sequences")
	}
	// Same seed: deterministic.
	c := mk(1)
	for p := 0; p < 8; p++ {
		va, vc := a.states[p].victims, c.states[p].victims
		for i := range va {
			if va[i] != vc[i] {
				t.Fatalf("same seed differs at place %d", p)
			}
		}
	}
}

// TestMultipleWorkersPerPlace: the balancer's invariants hold when places
// have spare execution slots (steal handlers run on dispatchers either way,
// but resuscitated workers can overlap other activities).
func TestMultipleWorkersPerPlace(t *testing.T) {
	rt, err := core.NewRuntime(core.Config{Places: 4, WorkersPerPlace: 2, CheckPatterns: true})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	const total = 40_000
	b := New(rt, Config{Quantum: 64}, func(p core.Place) TaskBag {
		if p == 0 {
			return &counterBag{pending: total, work: 30}
		}
		return &counterBag{work: 30}
	})
	rerr := rt.Run(func(ctx *core.Ctx) {
		if e := b.Run(ctx); e != nil {
			t.Errorf("run: %v", e)
		}
	})
	if rerr != nil {
		t.Fatal(rerr)
	}
	if got := totalDone(b, 4); got != total {
		t.Fatalf("done = %d, want %d", got, total)
	}
}
