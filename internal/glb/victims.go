package glb

import "apgas/internal/core"

// This file builds the two place graphs the balancer walks: the bounded
// random victim sets (§6.1: "no more than 1,024 elements to bound the
// out-degree of the communication graph") and the lifeline graph, a
// hypercube chosen to "co-minimize the distance between any two workers
// and the number of lifeline requests in flight".

// splitMix is a tiny deterministic PRNG (SplitMix64) for reproducible
// victim permutations without pulling in math/rand state per place.
type splitMix struct{ state uint64 }

func newSplitMix(seed uint64) *splitMix { return &splitMix{state: seed} }

func (s *splitMix) next() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// victimSet returns a random subset of the other places, at most maxV
// long, as a shuffled cycle the worker walks round-robin.
func victimSet(self core.Place, places, maxV int, seed uint64) []core.Place {
	if places <= 1 {
		return nil
	}
	others := make([]core.Place, 0, places-1)
	for p := 0; p < places; p++ {
		if core.Place(p) != self {
			others = append(others, core.Place(p))
		}
	}
	// Fisher-Yates with the per-place seed.
	rng := newSplitMix(seed ^ uint64(self)*0x9e3779b97f4a7c15)
	for i := len(others) - 1; i > 0; i-- {
		j := int(rng.next() % uint64(i+1))
		others[i], others[j] = others[j], others[i]
	}
	if maxV > 0 && len(others) > maxV {
		others = others[:maxV]
	}
	return others
}

// hypercubeDims returns ceil(log2 n), the lifeline degree of a hypercube
// over n places.
func hypercubeDims(n int) int {
	d := 0
	for 1<<d < n {
		d++
	}
	if d == 0 {
		d = 1
	}
	return d
}

// lifelineEdges returns the outgoing lifelines of a place: its hypercube
// neighbours self XOR 2^k that exist, padded (for non-power-of-two place
// counts) with +2^k ring jumps so every place keeps close to `degree`
// outgoing edges and the graph stays connected.
func lifelineEdges(self core.Place, places, degree int) []core.Place {
	if places <= 1 {
		return nil
	}
	seen := map[core.Place]bool{self: true}
	out := make([]core.Place, 0, degree)
	add := func(p core.Place) {
		if !seen[p] && len(out) < degree {
			seen[p] = true
			out = append(out, p)
		}
	}
	for k := 0; k < degree; k++ {
		if n := int(self) ^ (1 << k); n < places {
			add(core.Place(n))
		}
	}
	// For non-power-of-two place counts some hypercube neighbours do not
	// exist; keep the degree (and connectivity) up with ring jumps.
	for k := 0; len(out) < degree && k < degree; k++ {
		add(core.Place((int(self) + (1 << k)) % places))
	}
	return out
}
