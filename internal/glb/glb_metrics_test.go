package glb

import (
	"fmt"
	"testing"

	"apgas/internal/core"
	"apgas/internal/obs"
)

// TestPerPlaceMetrics checks the balancer's counters are mirrored three
// ways and agree: the aggregate glb.* names, the place-indexed
// glb.p<i>.* names in the global registry, and the unqualified glb.*
// names in each place's own registry (the telemetry plane's merge
// input).
func TestPerPlaceMetrics(t *testing.T) {
	const places, total = 8, 20_000
	o := obs.New()
	rt, err := core.NewRuntime(core.Config{Places: places, PlacesPerHost: 4, Obs: o})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	// Expensive units and a small quantum so the run outlasts the steal
	// wave and work demonstrably spreads (as in TestWorkActuallySpreads).
	b := New(rt, Config{Quantum: 16, RandomAttempts: 8}, func(p core.Place) TaskBag {
		if p == 0 {
			return &counterBag{pending: total, work: 3000}
		}
		return &counterBag{work: 3000}
	})
	if err := rt.Run(func(ctx *core.Ctx) {
		if err := b.Run(ctx); err != nil {
			t.Errorf("balancer run: %v", err)
		}
	}); err != nil {
		t.Fatal(err)
	}

	s := b.Stats()
	global := o.Registry().Snapshot()
	checks := []struct {
		suffix string
		want   int64
	}{
		{"processed", s.Processed},
		{"steal.attempts", s.StealAttempts},
		{"steal.successes", s.StealSuccesses},
		{"lifeline.requests", s.LifelineRequests},
		{"lifeline.deliveries", s.LifelineDeliveries},
		{"resuscitations", s.Resuscitations},
	}
	for _, c := range checks {
		// Aggregate name agrees with Stats.
		if got := global.Counter("glb." + c.suffix); int64(got) != c.want {
			t.Errorf("global glb.%s = %d, want %d", c.suffix, got, c.want)
		}
		// Place-indexed names in the global registry sum to the same.
		var idxSum, placeSum uint64
		for p := 0; p < places; p++ {
			idxSum += global.Counter(fmt.Sprintf("glb.p%d.%s", p, c.suffix))
			placeSum += o.Place(p).Snapshot().Counter("glb." + c.suffix)
		}
		if int64(idxSum) != c.want {
			t.Errorf("sum of glb.p<i>.%s = %d, want %d", c.suffix, idxSum, c.want)
		}
		// Per-place registries carry the identical counters under the
		// unqualified name.
		if placeSum != idxSum {
			t.Errorf("per-place registries sum glb.%s = %d, want %d", c.suffix, placeSum, idxSum)
		}
	}
	// Work happened at more than one place, so the per-place breakdown is
	// not degenerate.
	busy := 0
	for p := 0; p < places; p++ {
		if o.Place(p).Snapshot().Counter("glb.processed") > 0 {
			busy++
		}
	}
	if busy < 2 {
		t.Errorf("work processed at %d place(s); per-place counters degenerate", busy)
	}
	// The victim-set gauge-like counter reflects the bounded set sizes.
	for p := 0; p < places; p++ {
		want := uint64(len(b.states[p].victims))
		if got := o.Place(p).Snapshot().Counter("glb.victims"); got != want {
			t.Errorf("place %d glb.victims = %d, want %d", p, got, want)
		}
	}
	if got, want := global.Counter("glb.victims"), uint64(places*(places-1)); got != want {
		t.Errorf("global glb.victims = %d, want %d (8 places, all peers eligible)", got, want)
	}
}
