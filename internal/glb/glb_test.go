package glb

import (
	"testing"
	"testing/quick"

	"apgas/internal/core"
)

// counterBag is a synthetic TaskBag: a pile of identical work units that
// can be split in half. Each processed unit may also "expand" into extra
// units, modeling irregular growth.
type counterBag struct {
	pending int64
	done    int64
	// work is a spin count per unit, making units cost real time so
	// stealing can overlap processing (0 = free units).
	work int
	// expandEvery creates one extra unit per N processed (0 = none),
	// bounded by budget so tests terminate.
	expandEvery int
	expandLeft  int64
	expandAcc   int
	sink        uint64
}

func (b *counterBag) Process(q int) int {
	n := int64(q)
	if n > b.pending {
		n = b.pending
	}
	b.pending -= n
	b.done += n
	for i := int64(0); i < n*int64(b.work); i++ {
		b.sink = b.sink*6364136223846793005 + 1442695040888963407
	}
	if b.expandEvery > 0 {
		b.expandAcc += int(n)
		for b.expandAcc >= b.expandEvery && b.expandLeft > 0 {
			b.expandAcc -= b.expandEvery
			b.pending++
			b.expandLeft--
		}
	}
	return int(n)
}

func (b *counterBag) Size() int64 { return b.pending }

func (b *counterBag) Split() TaskBag {
	if b.pending < 2 {
		return nil
	}
	half := b.pending / 2
	b.pending -= half
	return &counterBag{pending: half, work: b.work, expandEvery: b.expandEvery}
}

func (b *counterBag) Merge(loot TaskBag) {
	lb := loot.(*counterBag)
	b.pending += lb.pending
	b.done += lb.done
	// Expansion budget stays with the home bag; loot carries none.
}

func newRT(t *testing.T, places int) *core.Runtime {
	t.Helper()
	rt, err := core.NewRuntime(core.Config{Places: places, CheckPatterns: true, PlacesPerHost: 4})
	if err != nil {
		t.Fatalf("NewRuntime: %v", err)
	}
	t.Cleanup(rt.Close)
	return rt
}

// runBalancer executes a balanced computation with `total` initial units at
// place 0 and returns the balancer for inspection.
func runBalancer(t *testing.T, places int, total int64, cfg Config, expandEvery int, expandBudget int64) *Balancer {
	t.Helper()
	rt := newRT(t, places)
	const unitWork = 40 // spin per unit so stealing overlaps processing
	b := New(rt, cfg, func(p core.Place) TaskBag {
		if p == 0 {
			return &counterBag{pending: total, work: unitWork, expandEvery: expandEvery, expandLeft: expandBudget}
		}
		return &counterBag{work: unitWork, expandEvery: expandEvery}
	})
	err := rt.Run(func(ctx *core.Ctx) {
		if err := b.Run(ctx); err != nil {
			t.Errorf("balancer run: %v", err)
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return b
}

// totalDone sums completed units over all places.
func totalDone(b *Balancer, places int) int64 {
	var sum int64
	for p := 0; p < places; p++ {
		sum += b.BagAt(core.Place(p)).(*counterBag).done
	}
	return sum
}

func TestAllWorkProcessedSinglePlace(t *testing.T) {
	b := runBalancer(t, 1, 10_000, Config{Quantum: 64}, 0, 0)
	if got := totalDone(b, 1); got != 10_000 {
		t.Fatalf("done = %d, want 10000", got)
	}
}

func TestAllWorkProcessedManyPlaces(t *testing.T) {
	const places, total = 8, 100_000
	b := runBalancer(t, places, total, Config{Quantum: 128}, 0, 0)
	if got := totalDone(b, places); got != total {
		t.Fatalf("done = %d, want %d", got, total)
	}
	s := b.Stats()
	if s.Processed != total {
		t.Fatalf("Stats.Processed = %d, want %d", s.Processed, total)
	}
	if s.LifelineRequests == 0 {
		t.Error("no lifeline requests despite idle places")
	}
}

func TestWorkActuallySpreads(t *testing.T) {
	// Expensive units so the run outlasts worker startup and the steal
	// wave: spreading must then occur.
	const places, total = 8, 20_000
	rt := newRT(t, places)
	b := New(rt, Config{Quantum: 16, RandomAttempts: 8}, func(p core.Place) TaskBag {
		if p == 0 {
			return &counterBag{pending: total, work: 3000}
		}
		return &counterBag{work: 3000}
	})
	err := rt.Run(func(ctx *core.Ctx) {
		if err := b.Run(ctx); err != nil {
			t.Errorf("balancer run: %v", err)
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if got := totalDone(b, places); got != total {
		t.Fatalf("done = %d, want %d", got, total)
	}
	busy := 0
	for p := 0; p < places; p++ {
		if b.BagAt(core.Place(p)).(*counterBag).done > 0 {
			busy++
		}
	}
	if busy < 2 {
		t.Errorf("only %d/%d places did any work", busy, places)
	}
	s := b.Stats()
	if s.StealSuccesses == 0 && s.LifelineDeliveries == 0 {
		t.Error("work spread without any steal or lifeline delivery recorded")
	}
}

// TestLifelineDeliveryDeterministic pre-records a lifeline request from
// place 1 at place 0, so place 0's first processing quantum must ship loot
// and resuscitate place 1 — exercising the lifeline path without timing
// dependence.
func TestLifelineDeliveryDeterministic(t *testing.T) {
	const total = 50_000
	rt := newRT(t, 2)
	b := New(rt, Config{Quantum: 16, RandomAttempts: 1}, func(p core.Place) TaskBag {
		if p == 0 {
			return &counterBag{pending: total, work: 50}
		}
		return &counterBag{work: 50}
	})
	// Pre-record the request and mark place 1 as having asked, as if its
	// worker had already died.
	b.states[0].lifelineReqs[1] = true
	err := rt.Run(func(ctx *core.Ctx) {
		if err := b.Run(ctx); err != nil {
			t.Errorf("balancer run: %v", err)
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if got := totalDone(b, 2); got != total {
		t.Fatalf("done = %d, want %d", got, total)
	}
	if b.states[0].stats.LifelineDeliveries == 0 {
		t.Error("pre-recorded lifeline request was never served")
	}
	if done1 := b.BagAt(1).(*counterBag).done; done1 == 0 {
		t.Error("place 1 never processed its delivered loot")
	}
}

func TestDenseFinishVariant(t *testing.T) {
	const places, total = 8, 50_000
	b := runBalancer(t, places, total, Config{Quantum: 64, DenseFinish: true}, 0, 0)
	if got := totalDone(b, places); got != total {
		t.Fatalf("done = %d, want %d", got, total)
	}
}

func TestExpandingWorkload(t *testing.T) {
	// Work that grows while being processed: the UTS shape.
	const places, total, budget = 6, 10_000, 25_000
	b := runBalancer(t, places, total, Config{Quantum: 32}, 2, budget)
	// Conservation: done = initial units + expansions actually created.
	var remaining int64
	for p := 0; p < places; p++ {
		remaining += b.BagAt(core.Place(p)).(*counterBag).expandLeft
	}
	want := total + (budget - remaining)
	got := totalDone(b, places)
	if got != want {
		t.Fatalf("done = %d, want %d (remaining budget %d)", got, want, remaining)
	}
	if got <= total {
		t.Fatalf("no expansion happened: done = %d", got)
	}
}

func TestUnboundedVictimsVariant(t *testing.T) {
	const places, total = 8, 30_000
	b := runBalancer(t, places, total, Config{Quantum: 64, MaxVictims: -1}, 0, 0)
	if got := totalDone(b, places); got != total {
		t.Fatalf("done = %d, want %d", got, total)
	}
}

func TestBoundedVictimSetSizes(t *testing.T) {
	vs := victimSet(3, 100, 10, 42)
	if len(vs) != 10 {
		t.Fatalf("len = %d, want 10", len(vs))
	}
	seen := map[core.Place]bool{}
	for _, v := range vs {
		if v == 3 {
			t.Error("self in victim set")
		}
		if seen[v] {
			t.Errorf("duplicate victim %d", v)
		}
		seen[v] = true
	}
	if victimSet(0, 1, 10, 1) != nil {
		t.Error("single place should have no victims")
	}
	if got := victimSet(0, 5, 100, 7); len(got) != 4 {
		t.Errorf("small world: len = %d, want 4", len(got))
	}
}

func TestVictimSetsDifferAcrossPlaces(t *testing.T) {
	a := victimSet(0, 64, 16, 9)
	b := victimSet(1, 64, 16, 9)
	same := true
	for i := range a {
		if i < len(b) && a[i] != b[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("victim sequences identical across places")
	}
}

func TestHypercubeDims(t *testing.T) {
	cases := map[int]int{1: 1, 2: 1, 3: 2, 4: 2, 5: 3, 8: 3, 9: 4, 1024: 10, 1740: 11}
	for n, want := range cases {
		if got := hypercubeDims(n); got != want {
			t.Errorf("hypercubeDims(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestLifelineEdgesPowerOfTwo(t *testing.T) {
	// In an 8-place hypercube, place 5 (101) links to 4 (100), 7 (111),
	// 1 (001).
	got := lifelineEdges(5, 8, 3)
	want := map[core.Place]bool{4: true, 7: true, 1: true}
	if len(got) != 3 {
		t.Fatalf("got %v", got)
	}
	for _, p := range got {
		if !want[p] {
			t.Errorf("unexpected lifeline %d", p)
		}
	}
}

// TestLifelineGraphConnected: from every place, following lifeline edges
// reaches place 0 — required for the work wave to reach everybody.
func TestLifelineGraphConnected(t *testing.T) {
	f := func(nRaw uint8) bool {
		n := int(nRaw)%63 + 2 // 2..64 places
		deg := hypercubeDims(n)
		// Build reverse reachability from 0 over undirected edges (work
		// can flow either way: requests one way, loot the other).
		adj := make([][]core.Place, n)
		for p := 0; p < n; p++ {
			adj[p] = lifelineEdges(core.Place(p), n, deg)
		}
		visited := make([]bool, n)
		queue := []int{0}
		visited[0] = true
		for len(queue) > 0 {
			cur := queue[0]
			queue = queue[1:]
			for _, nb := range adj[cur] {
				if !visited[nb] {
					visited[nb] = true
					queue = append(queue, int(nb))
				}
			}
			// Also traverse reverse edges.
			for p := 0; p < n; p++ {
				if !visited[p] {
					for _, nb := range adj[p] {
						if int(nb) == cur {
							visited[p] = true
							queue = append(queue, p)
							break
						}
					}
				}
			}
		}
		for _, v := range visited {
			if !v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestConservationProperty: for random configurations, no work is lost or
// duplicated.
func TestConservationProperty(t *testing.T) {
	f := func(placesRaw, totalRaw uint8, quantumRaw uint8) bool {
		places := int(placesRaw)%7 + 2     // 2..8
		total := int64(totalRaw)*100 + 100 // 100..25600
		quantum := int(quantumRaw)%100 + 1 // 1..100
		rt, err := core.NewRuntime(core.Config{Places: places, CheckPatterns: true})
		if err != nil {
			return false
		}
		defer rt.Close()
		b := New(rt, Config{Quantum: quantum}, func(p core.Place) TaskBag {
			if p == 0 {
				return &counterBag{pending: total}
			}
			return &counterBag{}
		})
		err = rt.Run(func(ctx *core.Ctx) {
			if e := b.Run(ctx); e != nil {
				err = e
			}
		})
		if err != nil {
			return false
		}
		return totalDone(b, places) == total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestStatsAccumulate(t *testing.T) {
	b := runBalancer(t, 4, 50_000, Config{Quantum: 64}, 0, 0)
	s := b.Stats()
	if s.Processed != 50_000 {
		t.Errorf("Processed = %d", s.Processed)
	}
	if s.StealAttempts < s.StealSuccesses {
		t.Errorf("attempts %d < successes %d", s.StealAttempts, s.StealSuccesses)
	}
	if s.LifelineDeliveries < s.Resuscitations {
		t.Errorf("deliveries %d < resuscitations %d", s.LifelineDeliveries, s.Resuscitations)
	}
}
