// Package glb implements lifeline-based global load balancing — the GLB
// library of §3.4 and §6 of "X10 and APGAS at Petascale", derived from
// Saraswat et al., "Lifeline-based global load balancing" (PPoPP 2011),
// with the refinements that made it scale to the full Power 775:
//
//   - the root finish governing the traversal uses FINISH_DENSE, so its
//     control traffic is shaped through per-host master places;
//   - steal attempts are round trips accounted with FINISH_HERE-style
//     token passing (outgoing request followed by incoming response), so
//     the root finish is oblivious to rebalancing from successful random
//     steals;
//   - each place draws random victims from a precomputed bounded set (at
//     most 1,024 entries) to bound the out-degree of the communication
//     graph — without the bound the paper observed severe network
//     degradation at scale;
//   - lifelines are the edges of a hypercube over places: low diameter to
//     propagate work quickly, low degree to bound requests in flight.
//
// The protocol: every place runs one worker processing its own task bag.
// An idle worker first makes a bounded number of synchronous random steal
// attempts; if all fail it sends asynchronous requests to its lifelines
// and dies. Lifelines have memory: when a loaded place notices recorded
// lifeline requests it splits its bag and ships loot, resuscitating dead
// workers. Because workers die when unsuccessful, overall termination is
// exactly the termination of the root finish — one finish construct
// detects the end of the whole irregular computation.
package glb

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"sync"

	"apgas/internal/core"
	"apgas/internal/obs"
)

// TaskBag is the work container a Balancer operates on (GLB's TaskQueue).
// Implementations own both the pending work and any accumulated results.
// All methods are called with the owning place's lock held; they must not
// block or call back into the balancer.
type TaskBag interface {
	// Process executes up to quantum units of work, returning the number
	// actually executed (0 when the bag is empty).
	Process(quantum int) int
	// Size returns the (approximate) number of pending work units.
	Size() int64
	// Split extracts a portion of the pending work for a thief, or nil
	// when the bag has too little to share.
	Split() TaskBag
	// Merge adds stolen work to the bag.
	Merge(loot TaskBag)
}

// Config tunes the balancer. Zero values select the defaults; the ablation
// benchmarks override individual knobs.
type Config struct {
	// Quantum is the number of work units processed between scheduler
	// interactions (default 512).
	Quantum int
	// RandomAttempts is the number of synchronous random steal attempts
	// before falling back to lifelines (w in the PPoPP'11 paper;
	// default 2).
	RandomAttempts int
	// MaxVictims bounds each place's precomputed random victim set, the
	// paper's anti-degradation refinement (default 1024; places with
	// fewer peers use all of them). Zero keeps the default; a negative
	// value removes the bound (the legacy behaviour, for ablations).
	MaxVictims int
	// Lifelines is the number of outgoing lifeline edges per place.
	// Zero selects the hypercube dimension ceil(log2 places).
	Lifelines int
	// DenseFinish selects FINISH_DENSE for the root finish (the paper's
	// configuration). When false the default finish algorithm is used —
	// the ablation showing why FINISH_DENSE matters.
	DenseFinish bool
	// Seed drives victim-sequence randomness (default 1).
	Seed int64
}

func (c *Config) applyDefaults(places int) {
	if c.Quantum <= 0 {
		c.Quantum = 512
	}
	if c.RandomAttempts <= 0 {
		c.RandomAttempts = 2
	}
	switch {
	case c.MaxVictims == 0:
		c.MaxVictims = 1024
	case c.MaxVictims < 0:
		c.MaxVictims = places // unbounded: everyone is a candidate victim
	}
	if c.Lifelines <= 0 {
		c.Lifelines = hypercubeDims(places)
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
}

// Stats aggregates per-place balancer counters after a run.
type Stats struct {
	Processed          int64 // total work units executed
	StealAttempts      int64 // synchronous random steal attempts
	StealSuccesses     int64
	LifelineRequests   int64 // lifeline request messages sent
	LifelineDeliveries int64 // loot shipments along lifelines
	Resuscitations     int64 // workers revived by lifeline loot
}

// Balancer coordinates one load-balanced computation over a runtime.
type Balancer struct {
	rt     *core.Runtime
	cfg    Config
	states []*placeState

	// orphanMu guards orphans: loot parcels reaped from links severed by
	// a place death, awaiting conservative re-execution (see placeDeath
	// and the adoption rounds in Run).
	orphanMu sync.Mutex
	orphans  []TaskBag

	// observability (nil handles when the runtime has no obs layer)
	tr *obs.Tracer
	m  balancerMetrics
	// prof stamps worker bodies with kind=glb.worker pprof labels (nil
	// when profiling is off); patKey is the root finish's pattern label.
	// Stolen work executes inside the thief's worker loop, so its
	// samples carry the thief's place label — cost incurred on the thief
	// is attributed to the thief, which is exactly the accounting plain
	// finish-pattern labels cannot provide.
	prof   *obs.Profiler
	patKey string
}

// balancerMetrics mirrors the per-place Stats counters into the metrics
// registry live, under glb.*. Handles are nil (no-op) when disabled.
type balancerMetrics struct {
	processed          *obs.Counter // glb.processed
	stealAttempts      *obs.Counter // glb.steal.attempts
	stealSuccesses     *obs.Counter // glb.steal.successes
	lifelineRequests   *obs.Counter // glb.lifeline.requests
	lifelineDeliveries *obs.Counter // glb.lifeline.deliveries
	resuscitations     *obs.Counter // glb.resuscitations
	victims            *obs.Counter // glb.victims (size of the bounded victim set)
}

// placeMetrics is one place's live view of the same counters. Each
// counter is registered twice: in the place's own registry under the
// unqualified glb.* name (so the telemetry plane merges it across places
// with min/max attribution), and in the global registry under the
// place-indexed glb.p<i>.* name (so single-registry dumps still break
// stealing behaviour down by place).
type placeMetrics struct {
	processed          obs.Counter
	stealAttempts      obs.Counter
	stealSuccesses     obs.Counter
	lifelineRequests   obs.Counter
	lifelineDeliveries obs.Counter
	resuscitations     obs.Counter
	victims            obs.Counter
}

// register installs the counters in r with the given name prefix
// ("glb." or "glb.p<i>.").
func (m *placeMetrics) register(r *obs.Registry, prefix string) {
	r.RegisterCounter(prefix+"processed", &m.processed)
	r.RegisterCounter(prefix+"steal.attempts", &m.stealAttempts)
	r.RegisterCounter(prefix+"steal.successes", &m.stealSuccesses)
	r.RegisterCounter(prefix+"lifeline.requests", &m.lifelineRequests)
	r.RegisterCounter(prefix+"lifeline.deliveries", &m.lifelineDeliveries)
	r.RegisterCounter(prefix+"resuscitations", &m.resuscitations)
	r.RegisterCounter(prefix+"victims", &m.victims)
}

// placeState is the per-place side of the protocol.
type placeState struct {
	mu           sync.Mutex
	bag          TaskBag
	active       bool
	victims      []core.Place // bounded precomputed victim set
	victimCursor int
	lifelines    []core.Place        // outgoing lifeline edges
	lifelineReqs map[core.Place]bool // recorded incoming lifeline requests
	asked        map[core.Place]bool // lifelines this place has asked and not yet been served by

	// dead marks a place reaped by placeDeath: its worker exits at the
	// next scheduler interaction and no further loot is shipped to or
	// split from it. bagDrained records that the unprocessed remainder of
	// a dead place's bag has been handed to an adoption round (exactly
	// once).
	dead       bool
	bagDrained bool
	// Outbound loot ledger: every parcel shipped to a thief is recorded
	// under a per-sender monotone sequence number and erased when the
	// thief acknowledges the merge. lootIn holds the highest sequence
	// merged from each sender. Per-link FIFO delivery makes the pair a
	// complete account of which shipments survived a place death: a
	// parcel in a dead place's ledger with seq > the thief's lootIn entry
	// was provably never merged and is safe to re-execute.
	lootSeq uint64
	lootOut map[core.Place][]lootParcel
	lootIn  map[core.Place]uint64

	stats Stats
	pm    placeMetrics

	// diedAt is the tracer timestamp at which this place's worker died
	// (asked its lifelines and returned); the resuscitation path closes
	// a glb.lifeline.wait span from it. Only meaningful while !active
	// and only when tracing is enabled.
	diedAt int64
}

// lootParcel is one outbound loot shipment awaiting acknowledgement.
type lootParcel struct {
	seq uint64
	bag TaskBag
}

// recordLootLocked logs an outbound parcel before it is shipped; caller
// holds st.mu.
func (st *placeState) recordLootLocked(to core.Place, bag TaskBag) uint64 {
	st.lootSeq++
	if st.lootOut == nil {
		st.lootOut = make(map[core.Place][]lootParcel)
	}
	st.lootOut[to] = append(st.lootOut[to], lootParcel{seq: st.lootSeq, bag: bag})
	return st.lootSeq
}

// ackLocked erases an acknowledged parcel; caller holds st.mu.
func (st *placeState) ackLocked(to core.Place, seq uint64) {
	parcels := st.lootOut[to]
	for i, p := range parcels {
		if p.seq == seq {
			st.lootOut[to] = append(parcels[:i], parcels[i+1:]...)
			return
		}
	}
}

// noteMergedLocked records the highest parcel sequence merged from a
// sender; caller holds st.mu.
func (st *placeState) noteMergedLocked(from core.Place, seq uint64) {
	if st.lootIn == nil {
		st.lootIn = make(map[core.Place]uint64)
	}
	if seq > st.lootIn[from] {
		st.lootIn[from] = seq
	}
}

// New creates a balancer and builds the per-place bags with makeBag (run
// once per place; typically the root place's bag holds the initial work
// and all others start empty).
func New(rt *core.Runtime, cfg Config, makeBag func(core.Place) TaskBag) *Balancer {
	n := rt.NumPlaces()
	cfg.applyDefaults(n)
	b := &Balancer{rt: rt, cfg: cfg, states: make([]*placeState, n)}
	b.tr = rt.Tracer()
	b.prof = rt.Profiler()
	// Registry handles are nil-safe no-ops when the runtime carries no
	// observability layer (obs.Registry's methods accept a nil receiver).
	reg := rt.Obs().Registry()
	b.m = balancerMetrics{
		processed:          reg.Counter("glb.processed"),
		stealAttempts:      reg.Counter("glb.steal.attempts"),
		stealSuccesses:     reg.Counter("glb.steal.successes"),
		lifelineRequests:   reg.Counter("glb.lifeline.requests"),
		lifelineDeliveries: reg.Counter("glb.lifeline.deliveries"),
		resuscitations:     reg.Counter("glb.resuscitations"),
		victims:            reg.Counter("glb.victims"),
	}
	rng := newSplitMix(uint64(cfg.Seed))
	for p := 0; p < n; p++ {
		b.states[p] = &placeState{
			bag:          makeBag(core.Place(p)),
			victims:      victimSet(core.Place(p), n, cfg.MaxVictims, rng.next()),
			lifelines:    lifelineEdges(core.Place(p), n, cfg.Lifelines),
			lifelineReqs: make(map[core.Place]bool),
			asked:        make(map[core.Place]bool),
		}
		st := b.states[p]
		st.pm.register(rt.Obs().Place(p), "glb.")
		st.pm.register(reg, "glb.p"+strconv.Itoa(p)+".")
		st.pm.victims.Add(uint64(len(st.victims)))
		b.m.victims.Add(uint64(len(st.victims)))
	}
	// Victim-death re-homing: when the runtime reports a place dead, reap
	// it from the balancer graph and queue its orphaned work for the
	// adoption rounds in Run.
	rt.NotifyPlaceDeath(b.placeDeath)
	return b
}

// BagAt returns place p's bag, for result collection after Run completes.
func (b *Balancer) BagAt(p core.Place) TaskBag { return b.states[p].bag }

// Stats sums the per-place counters. Call after Run.
func (b *Balancer) Stats() Stats {
	var s Stats
	for _, st := range b.states {
		s.Processed += st.stats.Processed
		s.StealAttempts += st.stats.StealAttempts
		s.StealSuccesses += st.stats.StealSuccesses
		s.LifelineRequests += st.stats.LifelineRequests
		s.LifelineDeliveries += st.stats.LifelineDeliveries
		s.Resuscitations += st.stats.Resuscitations
	}
	return s
}

// Run executes the computation: workers start at every place under a
// single root finish, and Run returns when the whole distributed traversal
// has quiesced. It must be called from within rt.Run.
//
// If a place dies mid-run the root finish surfaces core.ErrPlaceDead and
// quiesces over the survivors; Run then performs adoption rounds — the
// victim's unprocessed bag remainder plus any loot parcels stranded on
// severed links are merged into a surviving place and re-executed under a
// fresh finish. The parcel ledger is the idempotence guard: only work the
// victim provably never completed is re-run (processed units had left its
// bag; merged parcels had been acknowledged).
func (b *Balancer) Run(ctx *core.Ctx) error {
	pattern := core.PatternDefault
	if b.cfg.DenseFinish {
		pattern = core.PatternDense
	}
	b.patKey = pattern.MetricKey()
	var errs []error
	if err := b.runPhase(ctx, pattern, nil); err != nil {
		errs = append(errs, err)
	}
	for round := 0; round < b.rt.NumPlaces(); round++ {
		orphans := b.drainOrphans()
		if len(orphans) == 0 {
			break
		}
		if err := b.runPhase(ctx, pattern, orphans); err != nil {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}

// runPhase runs one worker phase over the surviving places. A non-empty
// adopt slice is first merged into the lowest-numbered survivor's bag;
// random steals then spread the adopted work as usual.
func (b *Balancer) runPhase(ctx *core.Ctx, pattern core.Pattern, adopt []TaskBag) error {
	return ctx.FinishPragma(pattern, func(c *core.Ctx) {
		if len(adopt) > 0 {
			adopter := b.firstLive()
			if adopter < 0 {
				return // every place is dead; nothing can re-execute
			}
			as := b.states[adopter]
			as.mu.Lock()
			for _, o := range adopt {
				as.bag.Merge(o)
			}
			as.mu.Unlock()
		}
		for _, p := range c.Places() {
			p := p
			if b.rt.PlaceDead(p) {
				continue
			}
			c.AtAsync(p, func(cc *core.Ctx) {
				st := b.states[p]
				st.mu.Lock()
				if st.dead {
					st.mu.Unlock()
					return
				}
				st.active = true
				st.mu.Unlock()
				b.runWorker(cc, st, int(p))
			})
		}
	})
}

// drainOrphans collects all pending orphaned work: parcels reaped by
// placeDeath plus the unprocessed remainder of each dead place's bag,
// taken exactly once. The state lock serializes the bag hand-off against
// a dead worker's final quantum.
func (b *Balancer) drainOrphans() []TaskBag {
	b.orphanMu.Lock()
	orphans := b.orphans
	b.orphans = nil
	b.orphanMu.Unlock()
	for _, st := range b.states {
		st.mu.Lock()
		if st.dead && !st.bagDrained {
			st.bagDrained = true
			if st.bag.Size() > 0 {
				orphans = append(orphans, st.bag)
			}
		}
		st.mu.Unlock()
	}
	return orphans
}

// firstLive returns the lowest-numbered surviving place, or -1.
func (b *Balancer) firstLive() core.Place {
	for p := range b.states {
		if !b.rt.PlaceDead(core.Place(p)) {
			return core.Place(p)
		}
	}
	return -1
}

// placeDeath reaps a dead place from the balancer graph: its worker is
// told to exit, survivors' lifeline edges are rewired around it, and loot
// parcels stranded on severed links — shipped but provably never merged —
// are queued for conservative re-execution. Registered with the runtime's
// death notifier in New.
func (b *Balancer) placeDeath(v core.Place) {
	if int(v) >= len(b.states) {
		return
	}
	vs := b.states[v]
	vs.mu.Lock()
	if vs.dead {
		vs.mu.Unlock()
		return
	}
	vs.dead = true
	vs.active = false
	lootIn := make(map[core.Place]uint64, len(vs.lootIn))
	for p, s := range vs.lootIn {
		lootIn[p] = s
	}
	lootOut := vs.lootOut
	vs.lootOut = nil
	vs.mu.Unlock()

	var orphans []TaskBag
	// Loot the victim split off and shipped whose merge it never learned
	// of: if the thief merged it, the bag is accounted for there; the
	// unacknowledged-but-merged window is resolved by the thief's lootIn
	// high-water mark.
	for t, parcels := range lootOut {
		ts := b.states[t]
		ts.mu.Lock()
		merged := ts.lootIn[v]
		ts.mu.Unlock()
		for _, p := range parcels {
			if p.seq > merged {
				orphans = append(orphans, p.bag)
			}
		}
	}
	// Loot survivors shipped toward the victim that it never merged, plus
	// every survivor-side edge pointing at it.
	for q, s := range b.states {
		if core.Place(q) == v {
			continue
		}
		s.mu.Lock()
		if s.dead {
			s.mu.Unlock()
			continue
		}
		for _, p := range s.lootOut[v] {
			if p.seq > lootIn[core.Place(q)] {
				orphans = append(orphans, p.bag)
			}
		}
		delete(s.lootOut, v)
		delete(s.lifelineReqs, v)
		delete(s.asked, v)
		s.lifelines = b.rewireLifelines(core.Place(q), s.lifelines)
		s.mu.Unlock()
	}
	if len(orphans) > 0 {
		b.orphanMu.Lock()
		b.orphans = append(b.orphans, orphans...)
		b.orphanMu.Unlock()
	}
}

// rewireLifelines drops dead targets from a place's lifeline set and
// restores its out-degree with the next live places around the ring,
// keeping the distribution graph connected over the survivors.
func (b *Balancer) rewireLifelines(self core.Place, cur []core.Place) []core.Place {
	n := len(b.states)
	want := len(cur)
	seen := map[core.Place]bool{self: true}
	out := cur[:0]
	for _, l := range cur {
		if !b.rt.PlaceDead(l) && !seen[l] {
			out = append(out, l)
			seen[l] = true
		}
	}
	for d := 1; d < n && len(out) < want; d++ {
		c := core.Place((int(self) + d) % n)
		if !b.rt.PlaceDead(c) && !seen[c] {
			out = append(out, c)
			seen[c] = true
		}
	}
	return out
}

// runWorker enters the worker loop at place p, relabeled kind=glb.worker
// when profiling is on so every quantum of bag processing — including
// stolen and lifeline-delivered work — is attributed to the place that
// actually executes it.
func (b *Balancer) runWorker(ctx *core.Ctx, st *placeState, p int) {
	if pr := b.prof; pr != nil {
		pr.Do(p, b.patKey, "glb.worker", func(pc context.Context) {
			old := ctx.SwapProfileContext(pc)
			defer ctx.SwapProfileContext(old)
			b.worker(ctx, st)
		})
		return
	}
	b.worker(ctx, st)
}

// worker is the main loop of one place: process, distribute along
// lifelines, steal randomly, and finally ask lifelines and die.
func (b *Balancer) worker(ctx *core.Ctx, st *placeState) {
	for {
		// Process until the bag drains, serving recorded lifeline
		// requests between quanta.
		for {
			st.mu.Lock()
			if st.dead {
				// Our place died under us; whatever remains in the bag is
				// adopted by the post-finish rounds in Run.
				st.mu.Unlock()
				return
			}
			n := st.bag.Process(b.cfg.Quantum)
			st.stats.Processed += int64(n)
			st.pm.processed.Add(uint64(n))
			b.m.processed.Add(uint64(n))
			if n > 0 {
				b.serveLifelinesLocked(ctx, st)
			}
			empty := st.bag.Size() == 0
			st.mu.Unlock()
			if empty {
				break
			}
		}

		// Random steal attempts against the bounded victim set.
		stolen := false
		for i := 0; i < b.cfg.RandomAttempts && !stolen; i++ {
			victim := b.nextVictim(st)
			if victim < 0 {
				break
			}
			stolen = b.randomSteal(ctx, st, victim)
		}
		if stolen {
			continue
		}

		// Establish lifelines and die. Loot arriving later resuscitates
		// the worker with a fresh activity.
		st.mu.Lock()
		if st.dead {
			st.mu.Unlock()
			return
		}
		if st.bag.Size() > 0 {
			// Loot landed while we were out stealing; keep working so
			// no merged work is ever abandoned by a dying worker.
			st.mu.Unlock()
			continue
		}
		st.active = false
		if b.tr != nil {
			st.diedAt = b.tr.Now()
		}
		requests := make([]core.Place, 0, len(st.lifelines))
		for _, l := range st.lifelines {
			if !st.asked[l] {
				st.asked[l] = true
				requests = append(requests, l)
			}
		}
		st.stats.LifelineRequests += int64(len(requests))
		st.pm.lifelineRequests.Add(uint64(len(requests)))
		b.m.lifelineRequests.Add(uint64(len(requests)))
		st.mu.Unlock()
		me := ctx.Place()
		for _, l := range requests {
			if b.rt.PlaceDead(l) {
				continue
			}
			if b.tr != nil {
				b.tr.Instant("glb.lifeline.request", "glb", int(me),
					obs.Arg{Key: "lifeline", Val: int64(l)})
			}
			b.sendLifelineRequest(ctx, me, l)
		}
		return
	}
}

// randomSteal performs one synchronous steal attempt: a round trip to the
// victim under a FINISH_HERE, merging any loot into st's bag. It reports
// whether work was obtained.
func (b *Balancer) randomSteal(ctx *core.Ctx, st *placeState, victim core.Place) bool {
	st.mu.Lock()
	st.stats.StealAttempts++
	st.mu.Unlock()
	st.pm.stealAttempts.Inc()
	b.m.stealAttempts.Inc()

	home := ctx.Place()
	// The steal round-trip is one span at the thief: FINISH_HERE request
	// out, response (loot or refusal) back. The span id is allocated up
	// front so the request/response flow events parent under it.
	var t0 int64
	var stealTid uint64
	sctx := ctx
	if b.tr != nil {
		t0 = b.tr.Now()
		stealTid = b.tr.NextID()
		sctx = ctx.WithTraceSpan(stealTid)
	}
	var loot TaskBag
	var lootSeq uint64
	vs := b.states[victim]
	err := sctx.FinishPragma(core.PatternHere, func(c *core.Ctx) {
		c.AtDirect(victim, 16, func(cv *core.Ctx) {
			vs.mu.Lock()
			var l TaskBag
			var seq uint64
			if vs.active && !vs.dead {
				l = vs.bag.Split()
				if l != nil {
					seq = vs.recordLootLocked(home, l)
				}
			}
			vs.mu.Unlock()
			cv.AtDirect(home, lootBytes(l), func(*core.Ctx) {
				loot, lootSeq = l, seq
			})
		})
	})
	if err != nil {
		if errors.Is(err, core.ErrPlaceDead) {
			// The victim (or our own place) died mid-steal: a failed
			// attempt. Loot split off before the death sits unmerged in
			// the victim's outbound ledger and is reaped by placeDeath.
			return false
		}
		panic(fmt.Sprintf("glb: steal attempt failed: %v", err))
	}
	if b.tr != nil {
		ok := int64(0)
		if loot != nil {
			ok = 1
		}
		// A steal edge under the thief's worker activity: the critical-
		// path profiler buckets this round trip as steal time.
		b.tr.CompleteEdge("glb.steal", "glb", int(home), stealTid, t0,
			ctx.TraceSpan(), obs.EdgeSteal,
			obs.Arg{Key: "victim", Val: int64(victim)}, obs.Arg{Key: "ok", Val: ok})
	}
	if loot == nil {
		return false
	}
	st.mu.Lock()
	st.bag.Merge(loot)
	st.noteMergedLocked(victim, lootSeq)
	st.stats.StealSuccesses++
	st.mu.Unlock()
	st.pm.stealSuccesses.Inc()
	b.m.stealSuccesses.Inc()
	b.ackLoot(ctx, home, victim, lootSeq)
	return true
}

// ackLoot clears a merged parcel from the sender's outbound ledger so a
// later death of this place does not re-execute it. Uncounted: the ack is
// pure bookkeeping and must not hold the root finish open.
func (b *Balancer) ackLoot(ctx *core.Ctx, me, sender core.Place, seq uint64) {
	ss := b.states[sender]
	ctx.UncountedAsync(sender, func(*core.Ctx) {
		ss.mu.Lock()
		ss.ackLocked(me, seq)
		ss.mu.Unlock()
	})
}

// sendLifelineRequest records this place at lifeline l; if l currently has
// surplus it answers immediately.
func (b *Balancer) sendLifelineRequest(ctx *core.Ctx, thief, l core.Place) {
	ls := b.states[l]
	ctx.AtDirect(l, 16, func(cl *core.Ctx) {
		ls.mu.Lock()
		if ls.dead || b.rt.PlaceDead(thief) {
			ls.mu.Unlock()
			return
		}
		var loot TaskBag
		if ls.active {
			loot = ls.bag.Split()
		}
		if loot == nil {
			// Lifelines have memory: remember the thief for later.
			ls.lifelineReqs[thief] = true
			ls.mu.Unlock()
			return
		}
		seq := ls.recordLootLocked(thief, loot)
		ls.stats.LifelineDeliveries++
		ls.mu.Unlock()
		ls.pm.lifelineDeliveries.Inc()
		b.m.lifelineDeliveries.Inc()
		b.deliver(cl, cl.Place(), thief, loot, seq)
	})
}

// serveLifelinesLocked ships loot to recorded lifeline requesters while the
// bag has work to spare; the caller holds st.mu.
func (b *Balancer) serveLifelinesLocked(ctx *core.Ctx, st *placeState) {
	for thief := range st.lifelineReqs {
		// The dead-check and ledger record share st.mu with placeDeath's
		// reap, so a parcel is either provably skipped or provably reaped.
		if b.rt.PlaceDead(thief) {
			delete(st.lifelineReqs, thief)
			continue
		}
		loot := st.bag.Split()
		if loot == nil {
			return
		}
		delete(st.lifelineReqs, thief)
		seq := st.recordLootLocked(thief, loot)
		st.stats.LifelineDeliveries++
		st.pm.lifelineDeliveries.Inc()
		b.m.lifelineDeliveries.Inc()
		b.deliver(ctx, ctx.Place(), thief, loot, seq)
	}
}

// deliver ships loot to a thief under the root finish and resuscitates its
// worker if it has died — "resuscitation is also one async task".
func (b *Balancer) deliver(ctx *core.Ctx, from, thief core.Place, loot TaskBag, seq uint64) {
	ts := b.states[thief]
	ctx.AtDirect(thief, lootBytes(loot), func(ct *core.Ctx) {
		ts.mu.Lock()
		if ts.dead {
			// Unmerged and unacknowledged: the sender's ledger entry
			// stands, and placeDeath re-homes the loot.
			ts.mu.Unlock()
			return
		}
		ts.bag.Merge(loot)
		ts.noteMergedLocked(from, seq)
		revive := !ts.active
		var diedAt int64
		if revive {
			ts.active = true
			ts.stats.Resuscitations++
			diedAt = ts.diedAt
			// The lifeline that just fed us may be asked again later.
			for l := range ts.asked {
				delete(ts.asked, l)
			}
		}
		ts.mu.Unlock()
		if revive {
			ts.pm.resuscitations.Inc()
			b.m.resuscitations.Inc()
			if b.tr != nil {
				// The wait span covers worker death to resuscitation,
				// anchored under the root finish so the critical-path
				// profiler can bucket lifeline idle time.
				b.tr.CompleteEdge("glb.lifeline.wait", "glb", int(thief),
					b.tr.NextID(), diedAt, ct.FinishTraceSpan(), obs.EdgeLifeline)
				b.tr.Instant("glb.resuscitate", "glb", int(thief))
			}
			ct.Async(func(cw *core.Ctx) { b.runWorker(cw, ts, int(thief)) })
		}
		b.ackLoot(ct, thief, from, seq)
	})
}

// nextVictim returns the next live victim from the precomputed set, or -1
// when the place has no surviving peers.
func (b *Balancer) nextVictim(st *placeState) core.Place {
	for range st.victims {
		v := st.victims[st.victimCursor]
		st.victimCursor = (st.victimCursor + 1) % len(st.victims)
		if !b.rt.PlaceDead(v) {
			return v
		}
	}
	return -1
}

// lootBytes models the wire size of a loot shipment.
func lootBytes(l TaskBag) int {
	if l == nil {
		return 16
	}
	n := l.Size()
	if n > 1<<16 {
		n = 1 << 16
	}
	return 32 + int(n)*16
}
