// Package sched provides the per-place activity scheduler of the APGAS
// runtime.
//
// In the paper's configuration each X10 place ran a single worker thread
// (X10_NTHREADS=1) on which the runtime scheduler dispatched that place's
// activities. This package reproduces that execution model with
// goroutines: every activity is a goroutine, but at most Workers of them
// per place hold an execution slot at any moment. Runtime operations that
// block an activity (finish wait, at, when, clock advance, collectives)
// release the slot for the duration of the wait, exactly as X10's
// cooperative scheduler keeps its worker threads busy while activities are
// suspended. This bounds CPU parallelism per place without ever
// deadlocking on blocked activities.
package sched

import (
	"fmt"
	"sync"
	"time"

	"apgas/internal/obs"
)

// Scheduler throttles the activities of one place.
type Scheduler struct {
	slots   chan struct{}
	workers int

	// spawned/completed/blocked are always-on obs metrics; Stats is a
	// thin view over them, and AttachMetrics surfaces them in a registry
	// by name. They are values (not registry-created handles) so the same
	// scheduler can be attached to several registries — the process-wide
	// one under a place-qualified prefix and the place's own registry
	// under an unqualified prefix — without splitting the counts.
	spawned   obs.Counter
	completed obs.Counter
	blocked   obs.Gauge

	quiet sync.WaitGroup // tracks in-flight activities for draining
}

// New creates a scheduler with the given number of execution slots
// (workers). workers < 1 is treated as 1.
func New(workers int) *Scheduler {
	if workers < 1 {
		workers = 1
	}
	return &Scheduler{
		slots:   make(chan struct{}, workers),
		workers: workers,
	}
}

// Workers returns the number of execution slots.
func (s *Scheduler) Workers() int { return s.workers }

// AttachMetrics registers this scheduler's counters in r under
// prefix.spawned, prefix.completed, and prefix.slots.blocked (e.g.
// "sched.p3.slots.blocked" for place 3). It may be called once per
// registry; the underlying metrics are shared, so every attached
// registry sees the same live values.
func (s *Scheduler) AttachMetrics(r *obs.Registry, prefix string) {
	if r == nil {
		return
	}
	r.RegisterCounter(prefix+".spawned", &s.spawned)
	r.RegisterCounter(prefix+".completed", &s.completed)
	r.RegisterGauge(prefix+".slots.blocked", &s.blocked)
}

// Spawn runs f as a new activity: a goroutine that first acquires an
// execution slot, runs f, and releases the slot. Spawn itself never blocks.
func (s *Scheduler) Spawn(f func()) {
	s.spawned.Add(1)
	s.quiet.Add(1)
	go func() {
		defer s.quiet.Done()
		defer s.completed.Add(1)
		s.slots <- struct{}{}
		defer func() { <-s.slots }()
		f()
	}()
}

// SpawnDelayed is Spawn for instrumented activities: f receives the
// time the goroutine spent waiting for an execution slot, in
// nanoseconds. The distributed tracer uses it to separate scheduler
// queueing from activity execution in cross-place critical paths; the
// uninstrumented Spawn path stays measurement-free.
func (s *Scheduler) SpawnDelayed(f func(slotWaitNs int64)) {
	s.spawned.Add(1)
	s.quiet.Add(1)
	go func() {
		defer s.quiet.Done()
		defer s.completed.Add(1)
		t0 := time.Now()
		s.slots <- struct{}{}
		wait := time.Since(t0)
		defer func() { <-s.slots }()
		f(int64(wait))
	}()
}

// Run executes f on the calling goroutine as an activity, acquiring and
// releasing an execution slot around it. It is used for the main activity
// and for synchronous place shifts.
func (s *Scheduler) Run(f func()) {
	s.spawned.Add(1)
	s.quiet.Add(1)
	defer s.quiet.Done()
	defer s.completed.Add(1)
	s.slots <- struct{}{}
	defer func() { <-s.slots }()
	f()
}

// Block releases the calling activity's execution slot so another activity
// can run while this one waits. It must be paired with Unblock, and must
// only be called from inside an activity started by Spawn or Run.
func (s *Scheduler) Block() {
	<-s.slots
	s.blocked.Add(1)
}

// Unblock re-acquires an execution slot after Block.
func (s *Scheduler) Unblock() {
	s.blocked.Add(-1)
	s.slots <- struct{}{}
}

// Blocking runs wait() with the activity's slot released: the canonical
// wrapper for runtime operations that suspend an activity.
func (s *Scheduler) Blocking(wait func()) {
	s.Block()
	defer s.Unblock()
	wait()
}

// Stats reports the cumulative number of activities spawned and completed.
// It is a compatibility view over the obs counters AttachMetrics exposes.
func (s *Scheduler) Stats() (spawned, completed uint64) {
	return s.spawned.Value(), s.completed.Value()
}

// Drain waits until every activity spawned so far has completed. It is a
// shutdown/testing aid; the finish protocols do not use it.
func (s *Scheduler) Drain() { s.quiet.Wait() }

// String describes the scheduler state.
func (s *Scheduler) String() string {
	sp, co := s.Stats()
	return fmt.Sprintf("sched{workers=%d spawned=%d completed=%d}", s.workers, sp, co)
}
