package sched

import (
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestSpawnRunsAll(t *testing.T) {
	s := New(2)
	var n atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 100; i++ {
		wg.Add(1)
		s.Spawn(func() { defer wg.Done(); n.Add(1) })
	}
	wg.Wait()
	if n.Load() != 100 {
		t.Fatalf("ran %d, want 100", n.Load())
	}
	sp, co := s.Stats()
	if sp != 100 || co != 100 {
		t.Fatalf("stats = %d/%d", sp, co)
	}
}

func TestWorkerBound(t *testing.T) {
	const workers = 3
	s := New(workers)
	var cur, peak atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 50; i++ {
		wg.Add(1)
		s.Spawn(func() {
			defer wg.Done()
			c := cur.Add(1)
			for {
				p := peak.Load()
				if c <= p || peak.CompareAndSwap(p, c) {
					break
				}
			}
			time.Sleep(time.Millisecond)
			cur.Add(-1)
		})
	}
	wg.Wait()
	if p := peak.Load(); p > workers {
		t.Fatalf("peak concurrency %d exceeds %d workers", p, workers)
	}
}

func TestBlockingReleasesSlot(t *testing.T) {
	// One worker: a blocked activity must let another run.
	s := New(1)
	gate := make(chan struct{})
	done := make(chan struct{})
	s.Spawn(func() {
		s.Blocking(func() { <-gate }) // releases the only slot
		close(done)
	})
	s.Spawn(func() { close(gate) }) // needs the slot to run
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("deadlock: Blocking did not release the worker slot")
	}
}

func TestRunExecutesInline(t *testing.T) {
	s := New(1)
	ran := false
	s.Run(func() { ran = true })
	if !ran {
		t.Fatal("Run did not execute")
	}
}

func TestDefaultsToOneWorker(t *testing.T) {
	if s := New(0); s.Workers() != 1 {
		t.Fatalf("Workers = %d, want 1", s.Workers())
	}
	if s := New(-3); s.Workers() != 1 {
		t.Fatalf("Workers = %d, want 1", s.Workers())
	}
}

func TestDrain(t *testing.T) {
	s := New(4)
	var n atomic.Int64
	for i := 0; i < 20; i++ {
		s.Spawn(func() {
			time.Sleep(time.Millisecond)
			n.Add(1)
		})
	}
	s.Drain()
	if n.Load() != 20 {
		t.Fatalf("Drain returned early: %d/20", n.Load())
	}
}

func TestString(t *testing.T) {
	s := New(2)
	if got := s.String(); !strings.Contains(got, "workers=2") {
		t.Fatalf("String = %q", got)
	}
}
