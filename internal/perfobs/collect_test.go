package perfobs

import (
	"strings"
	"testing"

	"apgas/internal/harness"
	"apgas/internal/obs"
)

// TestCollectSPMDBroadcast runs the real SPMD broadcast sweep at tiny
// scale under the collector and checks the acceptance properties: the
// artifact validates, the critical path is rooted at the SPMD finish,
// the finish-control bucket is nonzero, and coverage is near-complete.
func TestCollectSPMDBroadcast(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real runtimes")
	}
	art, err := Collect(harness.Tiny, 1, []Runner{
		{Name: "spmd-broadcast", Run: harness.SPMDBroadcastSeries},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if issues := Validate(art); len(issues) != 0 {
		t.Fatalf("collected artifact invalid: %v", issues)
	}
	if obs.Global() != nil {
		t.Error("Collect leaked the global obs layer")
	}
	exp := art.Experiments[0]
	if len(exp.Points) != len(harness.Tiny.PlaceSweep()) {
		t.Fatalf("points: %+v", exp.Points)
	}
	cp := exp.CriticalPath
	if cp == nil {
		t.Fatal("no critical path")
	}
	if !strings.HasPrefix(cp.Root, "finish.") {
		t.Errorf("root %q, want a finish span", cp.Root)
	}
	if cp.Buckets[BucketFinishControl] <= 0 {
		t.Errorf("finish-control bucket = %d, want > 0 (%v)", cp.Buckets[BucketFinishControl], cp.Buckets)
	}
	if cp.Coverage < 0.9 {
		t.Errorf("coverage = %v, want >= 0.9", cp.Coverage)
	}
	if len(exp.Metrics) == 0 {
		t.Error("no metric deltas attached")
	}
	for name := range exp.Metrics {
		if strings.Contains(name, ".p0.") || strings.Contains(name, ".p1.") {
			t.Errorf("place-qualified metric leaked: %s", name)
		}
	}
}

func TestSummarizeMetricsFilters(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter("x10rt.msgs.control").Add(5)
	reg.Counter("sched.p3.spawned").Add(7) // place-qualified: dropped
	reg.Counter("unrelated.metric").Add(9) // wrong prefix: dropped
	reg.Counter("glb.steal.attempts")      // zero: dropped
	h := reg.Histogram("finish.latency")
	h.Observe(4)
	h.Observe(16)

	out := summarizeMetrics(reg.Snapshot())
	if len(out) != 2 {
		t.Fatalf("kept %d metrics: %v", len(out), out)
	}
	if out["x10rt.msgs.control"].Count != 5 || out["x10rt.msgs.control"].Kind != "counter" {
		t.Errorf("counter: %+v", out["x10rt.msgs.control"])
	}
	hist := out["finish.latency"]
	if hist.Kind != "histogram" || hist.Count != 2 || hist.Sum != 20 {
		t.Errorf("histogram: %+v", hist)
	}
	if hist.P50 != 4 || hist.P95 != 16 {
		t.Errorf("quantiles: p50=%d p95=%d, want 4/16", hist.P50, hist.P95)
	}
}

func TestKeepMetric(t *testing.T) {
	cases := map[string]bool{
		"x10rt.msgs.control": true,
		"x10rt.bytes.data":   true,
		"finish.spmd.count":  true,
		"glb.steal.attempts": true,
		"team.allreduce":     true,
		"sched.spawned":      true,
		"sched.p3.spawned":   false,
		"sched.p12.slots":    false,
		"unrelated":          false,
		"sched.phase":        true, // "phase" is not a place qualifier
	}
	for name, want := range cases {
		if got := keepMetric(name); got != want {
			t.Errorf("keepMetric(%q) = %v, want %v", name, got, want)
		}
	}
}
