package perfobs

import (
	"math"
	"path/filepath"
	"strings"
	"testing"
)

// goodArtifact builds a minimal artifact that must pass Validate.
func goodArtifact() *Artifact {
	a := NewArtifact("tiny", 2)
	a.Experiments = []Experiment{{
		Name:          "UTS",
		AggregateUnit: "Mnodes/s",
		PerUnitUnit:   "Mnodes/s/place",
		Points: []Point{
			{Places: 1, Aggregate: 10, PerUnit: 10},
			{Places: 2, Aggregate: 18, PerUnit: 9},
			{Places: 4, Aggregate: 30, PerUnit: 7.5},
		},
		Efficiency: 0.75,
		CriticalPath: &CritPathReport{
			Root:   "finish.dense",
			WallNs: 1000,
			Buckets: map[string]int64{
				BucketUserCompute:   700,
				BucketFinishControl: 200,
				BucketSteal:         100,
			},
			Coverage: 1.0,
			Spans:    3,
		},
	}}
	return a
}

func TestValidateGoodArtifact(t *testing.T) {
	if issues := Validate(goodArtifact()); len(issues) != 0 {
		t.Fatalf("good artifact rejected: %v", issues)
	}
}

func TestValidateCatchesIssues(t *testing.T) {
	cases := []struct {
		name     string
		mutate   func(*Artifact)
		wantPath string
	}{
		{"wrong schema", func(a *Artifact) { a.Schema = "other" }, "schema"},
		{"wrong version", func(a *Artifact) { a.Version = 99 }, "version"},
		{"missing go version", func(a *Artifact) { a.Env.GoVersion = "" }, "env.go_version"},
		{"bad gomaxprocs", func(a *Artifact) { a.Env.GOMAXPROCS = 0 }, "env.gomaxprocs"},
		{"zero reps", func(a *Artifact) { a.Reps = 0 }, "reps"},
		{"no experiments", func(a *Artifact) { a.Experiments = nil }, "experiments"},
		{"empty name", func(a *Artifact) { a.Experiments[0].Name = "" }, "experiments[0].name"},
		{"duplicate name", func(a *Artifact) {
			a.Experiments = append(a.Experiments, a.Experiments[0])
		}, "experiments[1].name"},
		{"no points", func(a *Artifact) { a.Experiments[0].Points = nil }, "experiments[0].points"},
		{"non-monotone places", func(a *Artifact) {
			a.Experiments[0].Points[1].Places = 1
		}, "experiments[0].points[1].places"},
		{"negative aggregate", func(a *Artifact) {
			a.Experiments[0].Points[0].Aggregate = -1
		}, "experiments[0].points[0].aggregate"},
		{"NaN per-unit", func(a *Artifact) {
			a.Experiments[0].Points[0].PerUnit = math.NaN()
		}, "experiments[0].points[0].per_unit"},
		{"negative efficiency", func(a *Artifact) {
			a.Experiments[0].Efficiency = -0.1
		}, "experiments[0].efficiency"},
		{"negative bucket", func(a *Artifact) {
			a.Experiments[0].CriticalPath.Buckets[BucketSteal] = -5
		}, "experiments[0].critical_path.buckets[steal]"},
		{"buckets exceed wall", func(a *Artifact) {
			a.Experiments[0].CriticalPath.Buckets[BucketSteal] = 10000
		}, "experiments[0].critical_path.buckets"},
		{"bad coverage", func(a *Artifact) {
			a.Experiments[0].CriticalPath.Buckets[BucketSteal] = 100
			a.Experiments[0].CriticalPath.Coverage = 2.5
		}, "experiments[0].critical_path.coverage"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			a := goodArtifact()
			tc.mutate(a)
			issues := Validate(a)
			if len(issues) == 0 {
				t.Fatalf("mutation not caught")
			}
			found := false
			for _, is := range issues {
				if strings.HasPrefix(is.Path, tc.wantPath) {
					found = true
				}
			}
			if !found {
				t.Fatalf("no issue at %q; got %v", tc.wantPath, issues)
			}
		})
	}
}

func TestValidateNil(t *testing.T) {
	if issues := Validate(nil); len(issues) != 1 || issues[0].Path != "$" {
		t.Fatalf("nil artifact: %v", issues)
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	a := goodArtifact()
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := a.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if issues := Validate(got); len(issues) != 0 {
		t.Fatalf("round-tripped artifact invalid: %v", issues)
	}
	if got.Experiments[0].Name != "UTS" || len(got.Experiments[0].Points) != 3 {
		t.Fatalf("round trip lost data: %+v", got.Experiments[0])
	}
	cp := got.Experiments[0].CriticalPath
	if cp == nil || cp.Buckets[BucketUserCompute] != 700 {
		t.Fatalf("round trip lost critical path: %+v", cp)
	}
}

func TestParseRejectsGarbage(t *testing.T) {
	if _, err := Parse([]byte("{not json")); err == nil {
		t.Fatal("garbage parsed")
	}
}

func TestBuildEnvFingerprint(t *testing.T) {
	e := BuildEnv()
	if e.GoVersion == "" {
		t.Error("GoVersion empty")
	}
	if e.GOMAXPROCS <= 0 || e.NumCPU <= 0 {
		t.Errorf("bad CPU counts: %+v", e)
	}
	if e.GOOS == "" || e.GOARCH == "" {
		t.Errorf("missing platform: %+v", e)
	}
}
