package perfobs

import (
	"bytes"
	"compress/gzip"
	"context"
	"runtime/pprof"
	"strings"
	"testing"
)

// --- minimal protobuf encoder for deterministic parser tests ---

type protoWriter struct{ bytes.Buffer }

func (w *protoWriter) varint(v uint64) {
	for v >= 0x80 {
		w.WriteByte(byte(v) | 0x80)
		v >>= 7
	}
	w.WriteByte(byte(v))
}

func (w *protoWriter) tag(field, wire int) { w.varint(uint64(field)<<3 | uint64(wire)) }

func (w *protoWriter) intField(field int, v int64) {
	w.tag(field, 0)
	w.varint(uint64(v))
}

func (w *protoWriter) bytesField(field int, b []byte) {
	w.tag(field, 2)
	w.varint(uint64(len(b)))
	w.Write(b)
}

func encValueType(typ, unit int64) []byte {
	var w protoWriter
	w.intField(1, typ)
	w.intField(2, unit)
	return w.Bytes()
}

func encLabel(key, str, num int64) []byte {
	var w protoWriter
	w.intField(1, key)
	if str != 0 {
		w.intField(2, str)
	}
	if num != 0 {
		w.intField(3, num)
	}
	return w.Bytes()
}

func encSample(values []int64, labels ...[]byte) []byte {
	var w protoWriter
	var packed protoWriter
	for _, v := range values {
		packed.varint(uint64(v))
	}
	w.bytesField(2, packed.Bytes())
	// Unknown field the parser must skip structurally (location_id,
	// field 1, packed).
	w.bytesField(1, []byte{1, 2})
	for _, l := range labels {
		w.bytesField(3, l)
	}
	return w.Bytes()
}

// encProfile builds a two-dimension CPU profile with the string table
// deliberately written AFTER the samples, exercising deferred index
// resolution.
func encProfile(strtab []string, sampleTypes [][]byte, samples [][]byte) []byte {
	var w protoWriter
	for _, st := range sampleTypes {
		w.bytesField(1, st)
	}
	for _, s := range samples {
		w.bytesField(2, s)
	}
	for _, s := range strtab {
		w.bytesField(6, []byte(s))
	}
	w.intField(9, 1700000000)  // time_nanos
	w.intField(10, 2000000000) // duration_nanos
	w.bytesField(11, encValueType(1, 2))
	w.intField(12, 10000000) // period
	return w.Bytes()
}

// testProfileBytes is a synthetic samples/count + cpu/nanoseconds
// profile with labeled and unlabeled samples.
func testProfileBytes(t *testing.T, gzipped bool) []byte {
	t.Helper()
	strtab := []string{
		"",            // 0: protobuf convention, index 0 is empty
		"cpu",         // 1
		"nanoseconds", // 2
		"samples",     // 3
		"count",       // 4
		"place",       // 5
		"0",           // 6
		"1",           // 7
		"pattern",     // 8
		"dense",       // 9
		"spmd",        // 10
		"kind",        // 11
		"async",       // 12
		"glb.worker",  // 13
		"weight",      // 14
	}
	sampleTypes := [][]byte{
		encValueType(3, 4), // samples/count
		encValueType(1, 2), // cpu/nanoseconds
	}
	samples := [][]byte{
		// place=0 pattern=dense kind=async: 3 samples, 30ms
		encSample([]int64{3, 30000000},
			encLabel(5, 6, 0), encLabel(8, 9, 0), encLabel(11, 12, 0)),
		// place=1 pattern=dense kind=async: 2 samples, 20ms
		encSample([]int64{2, 20000000},
			encLabel(5, 7, 0), encLabel(8, 9, 0), encLabel(11, 12, 0)),
		// place=1 pattern=spmd kind=glb.worker, plus a numeric label
		encSample([]int64{4, 40000000},
			encLabel(5, 7, 0), encLabel(8, 10, 0), encLabel(11, 13, 0),
			encLabel(14, 0, 7)),
		// unlabeled: 1 sample, 10ms
		encSample([]int64{1, 10000000}),
	}
	raw := encProfile(strtab, sampleTypes, samples)
	if !gzipped {
		return raw
	}
	var buf bytes.Buffer
	zw := gzip.NewWriter(&buf)
	if _, err := zw.Write(raw); err != nil {
		t.Fatalf("gzip: %v", err)
	}
	if err := zw.Close(); err != nil {
		t.Fatalf("gzip close: %v", err)
	}
	return buf.Bytes()
}

func TestParseProfileSynthetic(t *testing.T) {
	for _, gz := range []bool{false, true} {
		p, err := ParseProfile(testProfileBytes(t, gz))
		if err != nil {
			t.Fatalf("gzipped=%v: ParseProfile: %v", gz, err)
		}
		if len(p.SampleTypes) != 2 || p.SampleTypes[1].Type != "cpu" || p.SampleTypes[1].Unit != "nanoseconds" {
			t.Fatalf("sample types = %+v", p.SampleTypes)
		}
		if p.PeriodType.Type != "cpu" || p.Period != 10000000 {
			t.Fatalf("period = %+v / %d", p.PeriodType, p.Period)
		}
		if p.DurationNanos != 2000000000 {
			t.Fatalf("duration = %d", p.DurationNanos)
		}
		if len(p.Samples) != 4 {
			t.Fatalf("got %d samples", len(p.Samples))
		}
		s := p.Samples[2]
		if s.Labels["place"] != "1" || s.Labels["pattern"] != "spmd" || s.Labels["kind"] != "glb.worker" {
			t.Fatalf("sample 2 labels = %v", s.Labels)
		}
		if s.NumLabels["weight"] != 7 {
			t.Fatalf("sample 2 num labels = %v", s.NumLabels)
		}
		if p.Samples[3].Labels != nil {
			t.Fatalf("sample 3 should be unlabeled, got %v", p.Samples[3].Labels)
		}
	}
}

func TestParseProfileErrors(t *testing.T) {
	if _, err := ParseProfile([]byte{0x1f, 0x8b, 0x00}); err == nil {
		t.Fatal("truncated gzip should fail")
	}
	// Field tag promising more bytes than remain.
	if _, err := ParseProfile([]byte{0x32, 0x7f, 0x01}); err == nil {
		t.Fatal("truncated bytes field should fail")
	}
	// String index out of range: a sample_type referencing string 9 with
	// an empty table.
	var w protoWriter
	w.bytesField(1, encValueType(9, 9))
	if _, err := ParseProfile(w.Bytes()); err == nil {
		t.Fatal("out-of-range string index should fail")
	}
}

func TestSummarizeProfile(t *testing.T) {
	p, err := ParseProfile(testProfileBytes(t, true))
	if err != nil {
		t.Fatalf("ParseProfile: %v", err)
	}
	s := SummarizeProfile(p, []string{"place", "pattern", "kind"})
	if s.ValueType != "cpu" || s.ValueUnit != "nanoseconds" {
		t.Fatalf("value dimension = %s/%s", s.ValueType, s.ValueUnit)
	}
	if s.Total != 100000000 || s.Labeled != 90000000 {
		t.Fatalf("total/labeled = %d/%d", s.Total, s.Labeled)
	}
	if got := s.LabeledFraction(); got < 0.89 || got > 0.91 {
		t.Fatalf("labeled fraction = %v", got)
	}
	if len(s.Rows) != 4 {
		t.Fatalf("rows = %+v", s.Rows)
	}
	// Sorted by descending value: the spmd/glb.worker row leads.
	if s.Rows[0].Key != "place=1 pattern=spmd kind=glb.worker" || s.Rows[0].Value != 40000000 {
		t.Fatalf("top row = %+v", s.Rows[0])
	}
	if s.Rows[3].Key != "(unlabeled)" || s.Rows[3].Value != 10000000 {
		t.Fatalf("last row = %+v", s.Rows[3])
	}
	if got := s.Distinct("place"); len(got) != 2 || got[0] != "0" || got[1] != "1" {
		t.Fatalf("distinct places = %v", got)
	}
	if got := s.Distinct("pattern"); len(got) != 2 {
		t.Fatalf("distinct patterns = %v", got)
	}
	var buf bytes.Buffer
	s.WriteTable(&buf)
	out := buf.String()
	if !strings.Contains(out, "90.0% labeled") || !strings.Contains(out, "(unlabeled)") {
		t.Fatalf("table output:\n%s", out)
	}
}

func TestCheckProfile(t *testing.T) {
	p, err := ParseProfile(testProfileBytes(t, false))
	if err != nil {
		t.Fatalf("ParseProfile: %v", err)
	}
	keys := []string{"place", "pattern", "kind"}
	ok := ProfileCheck{
		MinSamples:         4,
		MinLabeledFraction: 0.9,
		MinDistinct:        map[string]int{"place": 2, "pattern": 2},
	}
	if err := CheckProfile(p, keys, ok); err != nil {
		t.Fatalf("valid profile rejected: %v", err)
	}
	cases := []struct {
		name string
		c    ProfileCheck
		want string
	}{
		{"samples", ProfileCheck{MinSamples: 100}, "samples"},
		{"fraction", ProfileCheck{MinLabeledFraction: 0.95}, "labeled"},
		{"distinct", ProfileCheck{MinDistinct: map[string]int{"pattern": 3}}, "distinct"},
	}
	for _, tc := range cases {
		err := CheckProfile(p, keys, tc.c)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("%s: err = %v, want mention of %q", tc.name, err, tc.want)
		}
	}
}

// TestParseProfileReal captures an actual labeled CPU profile and runs
// it through the parser + summarizer, proving the hand-rolled decoder
// reads what runtime/pprof writes.
func TestParseProfileReal(t *testing.T) {
	var buf bytes.Buffer
	if err := pprof.StartCPUProfile(&buf); err != nil {
		t.Skipf("cannot start CPU profile (already active?): %v", err)
	}
	spin := func(n int) int {
		x := 1
		for i := 0; i < n; i++ {
			x = x*31 + i
		}
		return x
	}
	sink := 0
	for i := 0; i < 40 && buf.Len() == 0; i++ {
		pprof.Do(context.Background(),
			pprof.Labels("place", "0", "pattern", "dense", "kind", "test"),
			func(context.Context) { sink += spin(3_000_000) })
		sink += spin(3_000_000)
	}
	pprof.StopCPUProfile()
	_ = sink
	p, err := ParseProfile(buf.Bytes())
	if err != nil {
		t.Fatalf("ParseProfile on real capture: %v", err)
	}
	if len(p.SampleTypes) == 0 {
		t.Fatal("no sample types in real profile")
	}
	s := SummarizeProfile(p, []string{"place", "pattern", "kind"})
	t.Logf("real profile: %d samples, %.1f%% labeled", s.TotalSamples, 100*s.LabeledFraction())
	// CPU sampling is statistical: only assert structure, not shares.
	if s.TotalSamples > 0 && len(s.Rows) == 0 {
		t.Fatal("samples present but no rows")
	}
}
