// profile.go is the label-aware side of the performance observatory: a
// dependency-free reader for pprof protobuf profiles (the files Go's
// runtime/pprof writes) and a summarizer that turns one into a
// per-label cost table. The runtime stamps every activity with
// (place, pattern, kind, app) pprof labels (see obs.Profiler); this
// file answers the question those labels exist for — which place,
// finish pattern, or stolen task burned the CPU and heap — and backs
// the `tracecheck -profile` validator and the `make profile-smoke`
// gate.
//
// The decoder hand-rolls exactly the protobuf wire subset the
// profile.proto schema needs (varints and length-delimited fields;
// both packed and unpacked repeated ints), because the repo carries no
// external dependencies. Fields it does not model (locations,
// mappings, functions) are skipped structurally, so any valid pprof
// file parses.
package perfobs

import (
	"bytes"
	"compress/gzip"
	"fmt"
	"io"
	"sort"
	"strings"
)

// ProfileValueType is one sample dimension of a profile ("cpu" in
// "nanoseconds", "inuse_space" in "bytes", ...).
type ProfileValueType struct {
	Type string
	Unit string
}

// ProfileSample is one decoded sample: its per-dimension values and the
// string labels attached to the goroutine that produced it.
type ProfileSample struct {
	Values    []int64
	Labels    map[string]string
	NumLabels map[string]int64
}

// Profile is the decoded subset of a pprof protobuf this package
// consumes: sample dimensions, samples with labels, and timing.
type Profile struct {
	SampleTypes   []ProfileValueType
	Samples       []ProfileSample
	TimeNanos     int64
	DurationNanos int64
	Period        int64
	PeriodType    ProfileValueType
}

// --- protobuf wire decoding ---

const (
	wireVarint  = 0
	wireFixed64 = 1
	wireBytes   = 2
	wireFixed32 = 5
)

type protoReader struct {
	b   []byte
	pos int
}

func (r *protoReader) done() bool { return r.pos >= len(r.b) }

func (r *protoReader) varint() (uint64, error) {
	var v uint64
	var shift uint
	for {
		if r.pos >= len(r.b) {
			return 0, fmt.Errorf("truncated varint at offset %d", r.pos)
		}
		c := r.b[r.pos]
		r.pos++
		if shift == 63 && c > 1 {
			return 0, fmt.Errorf("varint overflow at offset %d", r.pos)
		}
		v |= uint64(c&0x7f) << shift
		if c < 0x80 {
			return v, nil
		}
		shift += 7
		if shift >= 64 {
			return 0, fmt.Errorf("varint too long at offset %d", r.pos)
		}
	}
}

// tag reads one field tag, returning field number and wire type.
func (r *protoReader) tag() (int, int, error) {
	v, err := r.varint()
	if err != nil {
		return 0, 0, err
	}
	if v>>3 == 0 {
		return 0, 0, fmt.Errorf("field number 0 at offset %d", r.pos)
	}
	return int(v >> 3), int(v & 7), nil
}

func (r *protoReader) bytesField() ([]byte, error) {
	n, err := r.varint()
	if err != nil {
		return nil, err
	}
	if n > uint64(len(r.b)-r.pos) {
		return nil, fmt.Errorf("length %d exceeds remaining %d bytes", n, len(r.b)-r.pos)
	}
	out := r.b[r.pos : r.pos+int(n)]
	r.pos += int(n)
	return out, nil
}

func (r *protoReader) skip(wire int) error {
	switch wire {
	case wireVarint:
		_, err := r.varint()
		return err
	case wireFixed64:
		if len(r.b)-r.pos < 8 {
			return fmt.Errorf("truncated fixed64")
		}
		r.pos += 8
		return nil
	case wireBytes:
		_, err := r.bytesField()
		return err
	case wireFixed32:
		if len(r.b)-r.pos < 4 {
			return fmt.Errorf("truncated fixed32")
		}
		r.pos += 4
		return nil
	default:
		return fmt.Errorf("unsupported wire type %d", wire)
	}
}

// repeatedInt64 appends an int64 field occurrence to dst, handling both
// packed (length-delimited) and unpacked (single varint) encodings.
func repeatedInt64(dst []int64, r *protoReader, wire int) ([]int64, error) {
	if wire == wireVarint {
		v, err := r.varint()
		if err != nil {
			return nil, err
		}
		return append(dst, int64(v)), nil
	}
	if wire != wireBytes {
		return nil, fmt.Errorf("repeated int64 with wire type %d", wire)
	}
	raw, err := r.bytesField()
	if err != nil {
		return nil, err
	}
	pr := &protoReader{b: raw}
	for !pr.done() {
		v, err := pr.varint()
		if err != nil {
			return nil, err
		}
		dst = append(dst, int64(v))
	}
	return dst, nil
}

// intermediate structures carrying string-table indices, resolved after
// the whole message is read (the table may follow the samples).
type rawLabel struct {
	key, str int64
	num      int64
	hasNum   bool
}

type rawSample struct {
	values []int64
	labels []rawLabel
}

type rawValueType struct{ typ, unit int64 }

// ParseProfile decodes a pprof protobuf profile, transparently
// ungzipping (runtime/pprof output is gzipped).
func ParseProfile(data []byte) (*Profile, error) {
	if len(data) >= 2 && data[0] == 0x1f && data[1] == 0x8b {
		zr, err := gzip.NewReader(bytes.NewReader(data))
		if err != nil {
			return nil, fmt.Errorf("profile: gzip: %w", err)
		}
		raw, err := io.ReadAll(zr)
		if err != nil {
			return nil, fmt.Errorf("profile: gunzip: %w", err)
		}
		data = raw
	}
	r := &protoReader{b: data}
	var (
		sampleTypes []rawValueType
		samples     []rawSample
		strtab      []string
		periodType  rawValueType
		p           Profile
	)
	for !r.done() {
		field, wire, err := r.tag()
		if err != nil {
			return nil, fmt.Errorf("profile: %w", err)
		}
		switch field {
		case 1: // sample_type
			raw, err := r.bytesField()
			if err != nil {
				return nil, fmt.Errorf("profile: sample_type: %w", err)
			}
			vt, err := parseValueType(raw)
			if err != nil {
				return nil, err
			}
			sampleTypes = append(sampleTypes, vt)
		case 2: // sample
			raw, err := r.bytesField()
			if err != nil {
				return nil, fmt.Errorf("profile: sample: %w", err)
			}
			s, err := parseSample(raw)
			if err != nil {
				return nil, err
			}
			samples = append(samples, s)
		case 6: // string_table
			raw, err := r.bytesField()
			if err != nil {
				return nil, fmt.Errorf("profile: string_table: %w", err)
			}
			strtab = append(strtab, string(raw))
		case 9, 10, 12: // time_nanos, duration_nanos, period
			v, err := r.varint()
			if err != nil {
				return nil, fmt.Errorf("profile: field %d: %w", field, err)
			}
			switch field {
			case 9:
				p.TimeNanos = int64(v)
			case 10:
				p.DurationNanos = int64(v)
			case 12:
				p.Period = int64(v)
			}
		case 11: // period_type
			raw, err := r.bytesField()
			if err != nil {
				return nil, fmt.Errorf("profile: period_type: %w", err)
			}
			periodType, err = parseValueType(raw)
			if err != nil {
				return nil, err
			}
		default:
			if err := r.skip(wire); err != nil {
				return nil, fmt.Errorf("profile: field %d: %w", field, err)
			}
		}
	}
	str := func(i int64) (string, error) {
		if i < 0 || i >= int64(len(strtab)) {
			return "", fmt.Errorf("profile: string index %d out of range [0,%d)", i, len(strtab))
		}
		return strtab[i], nil
	}
	for _, vt := range sampleTypes {
		t, err := str(vt.typ)
		if err != nil {
			return nil, err
		}
		u, err := str(vt.unit)
		if err != nil {
			return nil, err
		}
		p.SampleTypes = append(p.SampleTypes, ProfileValueType{Type: t, Unit: u})
	}
	if t, err := str(periodType.typ); err == nil {
		u, _ := str(periodType.unit)
		p.PeriodType = ProfileValueType{Type: t, Unit: u}
	}
	for _, rs := range samples {
		s := ProfileSample{Values: rs.values}
		for _, l := range rs.labels {
			k, err := str(l.key)
			if err != nil {
				return nil, err
			}
			if l.hasNum {
				if s.NumLabels == nil {
					s.NumLabels = make(map[string]int64)
				}
				s.NumLabels[k] = l.num
				continue
			}
			v, err := str(l.str)
			if err != nil {
				return nil, err
			}
			if s.Labels == nil {
				s.Labels = make(map[string]string)
			}
			s.Labels[k] = v
		}
		p.Samples = append(p.Samples, s)
	}
	return &p, nil
}

func parseValueType(raw []byte) (rawValueType, error) {
	var vt rawValueType
	r := &protoReader{b: raw}
	for !r.done() {
		field, wire, err := r.tag()
		if err != nil {
			return vt, fmt.Errorf("profile: value_type: %w", err)
		}
		switch field {
		case 1, 2:
			v, err := r.varint()
			if err != nil {
				return vt, fmt.Errorf("profile: value_type: %w", err)
			}
			if field == 1 {
				vt.typ = int64(v)
			} else {
				vt.unit = int64(v)
			}
		default:
			if err := r.skip(wire); err != nil {
				return vt, fmt.Errorf("profile: value_type: %w", err)
			}
		}
	}
	return vt, nil
}

func parseSample(raw []byte) (rawSample, error) {
	var s rawSample
	r := &protoReader{b: raw}
	for !r.done() {
		field, wire, err := r.tag()
		if err != nil {
			return s, fmt.Errorf("profile: sample: %w", err)
		}
		switch field {
		case 2: // value
			s.values, err = repeatedInt64(s.values, r, wire)
			if err != nil {
				return s, fmt.Errorf("profile: sample values: %w", err)
			}
		case 3: // label
			raw, err := r.bytesField()
			if err != nil {
				return s, fmt.Errorf("profile: label: %w", err)
			}
			l, err := parseLabel(raw)
			if err != nil {
				return s, err
			}
			s.labels = append(s.labels, l)
		default:
			if err := r.skip(wire); err != nil {
				return s, fmt.Errorf("profile: sample field %d: %w", field, err)
			}
		}
	}
	return s, nil
}

func parseLabel(raw []byte) (rawLabel, error) {
	var l rawLabel
	r := &protoReader{b: raw}
	for !r.done() {
		field, wire, err := r.tag()
		if err != nil {
			return l, fmt.Errorf("profile: label: %w", err)
		}
		switch field {
		case 1, 2, 3:
			v, err := r.varint()
			if err != nil {
				return l, fmt.Errorf("profile: label: %w", err)
			}
			switch field {
			case 1:
				l.key = int64(v)
			case 2:
				l.str = int64(v)
			case 3:
				l.num = int64(v)
				l.hasNum = true
			}
		default:
			if err := r.skip(wire); err != nil {
				return l, fmt.Errorf("profile: label field %d: %w", field, err)
			}
		}
	}
	return l, nil
}

// --- summarization ---

// valueIndex picks the sample dimension to aggregate: cpu nanoseconds
// for CPU profiles, inuse_space for heap profiles, the last dimension
// otherwise (pprof's own default).
func (p *Profile) valueIndex() int {
	for i, st := range p.SampleTypes {
		if st.Type == "cpu" {
			return i
		}
	}
	for i, st := range p.SampleTypes {
		if st.Type == "inuse_space" {
			return i
		}
	}
	return len(p.SampleTypes) - 1
}

// SummaryRow is one label tuple's aggregate cost.
type SummaryRow struct {
	// Labels holds the requested keys' values for this row (missing
	// keys render as "-").
	Labels map[string]string
	// Key is the canonical "k=v k2=v2" join, the row's identity.
	Key string
	// Value is the summed sample value (ns for CPU, bytes for heap).
	Value int64
	// Samples is the number of samples folded into the row.
	Samples int64
}

// ProfileSummary is the per-label cost table of one profile.
type ProfileSummary struct {
	// Keys are the label keys the table partitions by.
	Keys []string
	// ValueType/ValueUnit name the aggregated dimension.
	ValueType string
	ValueUnit string
	// Total is the profile-wide value sum; Labeled the sum over samples
	// carrying at least one of Keys.
	Total   int64
	Labeled int64
	// TotalSamples counts all samples; LabeledSamples those with at
	// least one of Keys.
	TotalSamples   int64
	LabeledSamples int64
	// Rows, sorted by descending Value.
	Rows []SummaryRow
}

// SummarizeProfile partitions p's samples by the given label keys and
// returns the per-tuple cost table. Samples carrying none of the keys
// fold into a single "(unlabeled)" row.
func SummarizeProfile(p *Profile, keys []string) *ProfileSummary {
	vi := p.valueIndex()
	s := &ProfileSummary{Keys: keys}
	if vi >= 0 && vi < len(p.SampleTypes) {
		s.ValueType = p.SampleTypes[vi].Type
		s.ValueUnit = p.SampleTypes[vi].Unit
	}
	rows := make(map[string]*SummaryRow)
	var sb strings.Builder
	for _, smp := range p.Samples {
		var v int64
		if vi >= 0 && vi < len(smp.Values) {
			v = smp.Values[vi]
		}
		s.Total += v
		s.TotalSamples++
		labeled := false
		sb.Reset()
		vals := make(map[string]string, len(keys))
		for i, k := range keys {
			lv, ok := smp.Labels[k]
			if ok {
				labeled = true
			} else {
				lv = "-"
			}
			vals[k] = lv
			if i > 0 {
				sb.WriteByte(' ')
			}
			sb.WriteString(k)
			sb.WriteByte('=')
			sb.WriteString(lv)
		}
		key := sb.String()
		if !labeled {
			key = "(unlabeled)"
		} else {
			s.Labeled += v
			s.LabeledSamples++
		}
		row, ok := rows[key]
		if !ok {
			row = &SummaryRow{Key: key, Labels: vals}
			rows[key] = row
		}
		row.Value += v
		row.Samples++
	}
	s.Rows = make([]SummaryRow, 0, len(rows))
	for _, r := range rows {
		s.Rows = append(s.Rows, *r)
	}
	sort.Slice(s.Rows, func(i, j int) bool {
		if s.Rows[i].Value != s.Rows[j].Value {
			return s.Rows[i].Value > s.Rows[j].Value
		}
		return s.Rows[i].Key < s.Rows[j].Key
	})
	return s
}

// LabeledFraction is the share of the profile's value carried by
// samples with at least one requested label key (0 on an empty
// profile).
func (s *ProfileSummary) LabeledFraction() float64 {
	if s.Total == 0 {
		return 0
	}
	return float64(s.Labeled) / float64(s.Total)
}

// Distinct returns the sorted distinct values of one label key across
// the labeled rows ("-" placeholders excluded).
func (s *ProfileSummary) Distinct(key string) []string {
	seen := make(map[string]bool)
	for _, r := range s.Rows {
		if v, ok := r.Labels[key]; ok && v != "-" {
			seen[v] = true
		}
	}
	out := make([]string, 0, len(seen))
	for v := range seen {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

// WriteTable renders the cost table, largest consumers first.
func (s *ProfileSummary) WriteTable(w io.Writer) {
	fmt.Fprintf(w, "profile: %d samples, %d %s total, %.1f%% labeled by (%s)\n",
		s.TotalSamples, s.Total, s.ValueUnit, 100*s.LabeledFraction(),
		strings.Join(s.Keys, ", "))
	for _, r := range s.Rows {
		pct := 0.0
		if s.Total > 0 {
			pct = 100 * float64(r.Value) / float64(s.Total)
		}
		fmt.Fprintf(w, "%8.2f%% %12d %-6s %4d samples  %s\n",
			pct, r.Value, s.ValueUnit, r.Samples, r.Key)
	}
}

// ProfileCheck is the validator contract for a labeled profile — the
// tracecheck -profile gate.
type ProfileCheck struct {
	// MinSamples is the minimum number of samples overall.
	MinSamples int64
	// MinLabeledFraction is the minimum LabeledFraction (0 disables).
	MinLabeledFraction float64
	// MinDistinct maps a label key to the minimum number of distinct
	// values it must take across labeled samples.
	MinDistinct map[string]int
}

// CheckProfile summarizes p by keys and verifies the contract,
// returning the first violation (nil when the profile passes).
func CheckProfile(p *Profile, keys []string, c ProfileCheck) error {
	s := SummarizeProfile(p, keys)
	if s.TotalSamples < c.MinSamples {
		return fmt.Errorf("profile has %d samples, need >= %d (workload too short for the sampling rate?)",
			s.TotalSamples, c.MinSamples)
	}
	if c.MinLabeledFraction > 0 && s.LabeledFraction() < c.MinLabeledFraction {
		return fmt.Errorf("only %.1f%% of profile value is labeled by (%s), need >= %.1f%%",
			100*s.LabeledFraction(), strings.Join(keys, ", "), 100*c.MinLabeledFraction)
	}
	for _, k := range keys {
		need, ok := c.MinDistinct[k]
		if !ok || need <= 0 {
			continue
		}
		got := s.Distinct(k)
		if len(got) < need {
			return fmt.Errorf("label %q has %d distinct values %v, need >= %d",
				k, len(got), got, need)
		}
	}
	return nil
}
