package perfobs

import (
	"strings"
	"testing"

	"apgas/internal/obs"
)

// span is a test helper building a complete ('X') event.
func mkSpan(name string, pid int, tid, parent uint64, start, end int64) obs.Event {
	return obs.Event{Name: name, Cat: "t", Ph: 'X', TS: start, Dur: end - start,
		Pid: pid, Tid: tid, Parent: parent, Edge: obs.EdgeChild}
}

// TestCriticalPathBuckets checks the full attribution of a hand-built
// finish tree:
//
//	finish.default [0,1000) at place 0
//	└── async [100,800) at place 1 (remote)
//	    └── glb.steal [300,400)
//
// Walking backward from 1000: the 200ns after the remote child ended is
// transport (completion credit in flight); inside the async, 400ns after
// the steal plus 200ns before it are user compute and the steal itself
// is 100ns; the leading 100ns before the async spawned is finish
// control. The partition is exact, so coverage is 1.
func TestCriticalPathBuckets(t *testing.T) {
	events := []obs.Event{
		mkSpan("finish.default", 0, 1, 0, 0, 1000),
		mkSpan("async", 1, 2, 1, 100, 800),
		mkSpan("glb.steal", 1, 3, 2, 300, 400),
		{Name: "finish.ctl", Cat: "finish", Ph: 'i', TS: 950, Pid: 0, Edge: obs.EdgeCredit},
	}
	rep := CriticalPath(events)
	if rep == nil {
		t.Fatal("no report")
	}
	if rep.Root != "finish.default" || rep.WallNs != 1000 {
		t.Fatalf("root: %+v", rep)
	}
	want := map[string]int64{
		BucketTransport:     200,
		BucketUserCompute:   600,
		BucketSteal:         100,
		BucketFinishControl: 100,
	}
	for b, ns := range want {
		if rep.Buckets[b] != ns {
			t.Errorf("bucket %s = %d, want %d (all: %v)", b, rep.Buckets[b], ns, rep.Buckets)
		}
	}
	if rep.Coverage < 0.999 || rep.Coverage > 1.001 {
		t.Errorf("coverage = %v, want 1.0", rep.Coverage)
	}
	if rep.Spans != 3 {
		t.Errorf("spans = %d, want 3", rep.Spans)
	}
}

// TestCriticalPathLocalChildGapIsFinishControl: when the finish's child
// ran at the same place, the tail after it is finish control, not
// transport.
func TestCriticalPathLocalChildGap(t *testing.T) {
	events := []obs.Event{
		mkSpan("finish.spmd", 0, 1, 0, 0, 1000),
		mkSpan("async", 0, 2, 1, 0, 900),
	}
	rep := CriticalPath(events)
	if rep == nil {
		t.Fatal("no report")
	}
	if rep.Buckets[BucketFinishControl] != 100 {
		t.Errorf("finish-control = %d, want 100 (%v)", rep.Buckets[BucketFinishControl], rep.Buckets)
	}
	if rep.Buckets[BucketTransport] != 0 {
		t.Errorf("transport = %d, want 0", rep.Buckets[BucketTransport])
	}
}

// TestCriticalPathPicksLongestRoot: with two parentless finishes the
// walk starts from the longer one.
func TestCriticalPathPicksLongestRoot(t *testing.T) {
	events := []obs.Event{
		mkSpan("finish.here", 0, 1, 0, 0, 100),
		mkSpan("finish.dense", 0, 2, 0, 200, 5200),
	}
	rep := CriticalPath(events)
	if rep == nil || rep.Root != "finish.dense" {
		t.Fatalf("root: %+v", rep)
	}
}

// TestCriticalPathOverlappingChildren: children overlapping each other
// and the parent's window clamp instead of double counting.
func TestCriticalPathOverlappingChildren(t *testing.T) {
	events := []obs.Event{
		mkSpan("finish.default", 0, 1, 0, 0, 1000),
		mkSpan("async", 0, 2, 1, 0, 700),
		mkSpan("async", 0, 3, 1, 500, 1000),
	}
	rep := CriticalPath(events)
	if rep == nil {
		t.Fatal("no report")
	}
	var sum int64
	for _, ns := range rep.Buckets {
		sum += ns
	}
	if sum != rep.WallNs {
		t.Fatalf("partition not exact: sum %d, wall %d (%v)", sum, rep.WallNs, rep.Buckets)
	}
	// Both asyncs are fully on the path: [500,1000) from tid 3, [0,500)
	// from tid 2 (clamped).
	if rep.Buckets[BucketUserCompute] != 1000 {
		t.Errorf("user-compute = %d, want 1000 (%v)", rep.Buckets[BucketUserCompute], rep.Buckets)
	}
}

func TestCriticalPathLifelineAndCollective(t *testing.T) {
	events := []obs.Event{
		mkSpan("finish.dense", 0, 1, 0, 0, 1000),
		mkSpan("glb.lifeline.wait", 1, 2, 1, 600, 900),
		mkSpan("team.allreduce", 0, 3, 1, 100, 400),
	}
	rep := CriticalPath(events)
	if rep == nil {
		t.Fatal("no report")
	}
	if rep.Buckets[BucketLifelineWait] != 300 {
		t.Errorf("lifeline-wait = %d, want 300 (%v)", rep.Buckets[BucketLifelineWait], rep.Buckets)
	}
	if rep.Buckets[BucketCollective] != 300 {
		t.Errorf("collective = %d, want 300 (%v)", rep.Buckets[BucketCollective], rep.Buckets)
	}
}

func TestCriticalPathNoRoot(t *testing.T) {
	if rep := CriticalPath(nil); rep != nil {
		t.Fatalf("empty trace: %+v", rep)
	}
	events := []obs.Event{mkSpan("async", 0, 1, 0, 0, 100)}
	if rep := CriticalPath(events); rep != nil {
		t.Fatalf("no finish root: %+v", rep)
	}
}

func TestCritPathReportWriteText(t *testing.T) {
	rep := &CritPathReport{
		Root: "finish.default", WallNs: 1000, Coverage: 1, Spans: 2,
		Buckets: map[string]int64{BucketUserCompute: 800, BucketFinishControl: 200},
	}
	var sb strings.Builder
	rep.WriteText(&sb)
	out := sb.String()
	for _, want := range []string{"finish.default", "user-compute", "finish-control", "80.0%"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	var nilRep *CritPathReport
	sb.Reset()
	nilRep.WriteText(&sb)
	if !strings.Contains(sb.String(), "no trace") {
		t.Errorf("nil report: %q", sb.String())
	}
}
