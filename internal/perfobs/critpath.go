package perfobs

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"apgas/internal/obs"
)

// Bucket names for critical-path attribution. Together they partition
// the root finish's wall clock: every nanosecond of the longest
// dependency chain lands in exactly one bucket.
const (
	// BucketUserCompute is time inside user activity bodies not covered
	// by a nested runtime span.
	BucketUserCompute = "user-compute"
	// BucketFinishControl is time inside finish scopes spent on
	// termination detection: spawning, quiescence counting, and the tail
	// after the last local child completes.
	BucketFinishControl = "finish-control"
	// BucketSteal is GLB random-steal round trips on the path.
	BucketSteal = "steal"
	// BucketLifelineWait is time a GLB worker spent dead waiting for
	// lifeline loot.
	BucketLifelineWait = "lifeline-wait"
	// BucketCollective is team collective fan-in/fan-out on the path.
	BucketCollective = "collective"
	// BucketTransport is the gap between a remote child's completion and
	// the enclosing finish observing it — the control message's flight
	// plus handler queueing.
	BucketTransport = "transport"
)

// CritPathReport is the wall-time attribution of the longest dependency
// chain under the trace's dominant root finish.
type CritPathReport struct {
	// Root names the root span the walk started from (e.g.
	// "finish.default").
	Root string `json:"root"`
	// WallNs is the root span's duration.
	WallNs int64 `json:"wall_ns"`
	// Buckets maps bucket name to attributed nanoseconds.
	Buckets map[string]int64 `json:"buckets"`
	// Coverage is sum(Buckets)/WallNs; the walk partitions the window,
	// so this is ~1.0 whenever WallNs > 0.
	Coverage float64 `json:"coverage"`
	// Spans is the number of spans visited on the walk.
	Spans int `json:"spans"`
	// PlaceNs maps place id to the nanoseconds of the critical path
	// charged to spans owned by that place. On a merged distributed
	// trace this is the cross-place attribution: it answers "which
	// place's work (or waiting) dominates the wall clock". Transport
	// gaps are charged to the waiting (home) place, so ctl fan-in
	// through place 0 shows up as place-0 time.
	PlaceNs map[int]int64 `json:"place_ns,omitempty"`
	// FlowRecvs counts flow-end ('f') events in the trace whose receive
	// landed on a span visited by the walk — how much of the path was
	// stitched across places by message edges.
	FlowRecvs int `json:"flow_recvs,omitempty"`
}

// WriteText renders the report as an aligned percentage table.
func (r *CritPathReport) WriteText(w io.Writer) {
	if r == nil {
		fmt.Fprintln(w, "critical path: no trace")
		return
	}
	fmt.Fprintf(w, "critical path of %s: %.3fms over %d spans (coverage %.1f%%)\n",
		r.Root, float64(r.WallNs)/1e6, r.Spans, r.Coverage*100)
	names := make([]string, 0, len(r.Buckets))
	for name := range r.Buckets {
		names = append(names, name)
	}
	sort.Slice(names, func(i, j int) bool { return r.Buckets[names[i]] > r.Buckets[names[j]] })
	for _, name := range names {
		ns := r.Buckets[name]
		pct := 0.0
		if r.WallNs > 0 {
			pct = float64(ns) / float64(r.WallNs) * 100
		}
		fmt.Fprintf(w, "  %-16s %10.3fms  %5.1f%%\n", name, float64(ns)/1e6, pct)
	}
	if len(r.PlaceNs) > 0 {
		fmt.Fprintf(w, "by place (%d flow receives on path):\n", r.FlowRecvs)
		places := make([]int, 0, len(r.PlaceNs))
		for p := range r.PlaceNs {
			places = append(places, p)
		}
		sort.Slice(places, func(i, j int) bool { return r.PlaceNs[places[i]] > r.PlaceNs[places[j]] })
		for _, p := range places {
			ns := r.PlaceNs[p]
			pct := 0.0
			if r.WallNs > 0 {
				pct = float64(ns) / float64(r.WallNs) * 100
			}
			fmt.Fprintf(w, "  place %-10d %10.3fms  %5.1f%%\n", p, float64(ns)/1e6, pct)
		}
	}
}

// span is one complete trace span plus its resolved children.
type span struct {
	ev   obs.Event
	kids []*span
}

func (s *span) start() int64 { return s.ev.TS }
func (s *span) end() int64   { return s.ev.TS + s.ev.Dur }

// bucketFor maps a span name to its attribution bucket. Uncovered time
// inside the span is charged here.
func bucketFor(name string) string {
	switch {
	case strings.HasPrefix(name, "finish."):
		return BucketFinishControl
	case name == "broadcast":
		return BucketFinishControl
	case name == "glb.steal":
		return BucketSteal
	case name == "glb.lifeline.wait":
		return BucketLifelineWait
	case strings.HasPrefix(name, "team."):
		return BucketCollective
	default:
		// async activity bodies and anything unrecognized count as the
		// user's own compute.
		return BucketUserCompute
	}
}

// CriticalPath reconstructs the finish/activity tree from span parent
// edges and walks the longest dependency chain of the dominant root
// finish, attributing every segment of its wall clock to a bucket.
//
// The walk is a backward sweep: starting from the root's end, it
// repeatedly descends into the latest-ending child overlapping the
// cursor. The gap between that child's end and the cursor is time the
// parent spent after the child completed — charged to the parent's
// bucket, or to transport when a finish was waiting on a child that ran
// at another place (the completion had to travel). Whatever precedes
// the earliest chosen child is the parent's own leading work. The
// result is an exact partition of the root window, so Coverage ≈ 1.
//
// Returns nil when the trace contains no root finish span.
func CriticalPath(events []obs.Event) *CritPathReport {
	byID := make(map[uint64]*span)
	for _, e := range events {
		if e.Ph != 'X' || e.Tid == 0 {
			continue
		}
		if prev, ok := byID[e.Tid]; ok && prev.ev.Dur >= e.Dur {
			continue // duplicate lane id: keep the longer span
		}
		ev := e
		byID[e.Tid] = &span{ev: ev}
	}
	var root *span
	for _, s := range byID {
		if s.ev.Parent != 0 {
			if p, ok := byID[s.ev.Parent]; ok {
				p.kids = append(p.kids, s)
				continue
			}
		}
		// Parentless (or orphaned) span: candidate root if it is a finish.
		if strings.HasPrefix(s.ev.Name, "finish.") {
			if root == nil || s.ev.Dur > root.ev.Dur {
				root = s
			}
		}
	}
	if root == nil || root.ev.Dur <= 0 {
		return nil
	}
	w := &walker{buckets: make(map[string]int64), places: make(map[int]int64), visited: make(map[*span]bool)}
	w.attribute(root, root.start(), root.end())
	// Count the message edges that landed on the walked spans: flow-end
	// ('f') events whose lane is a visited span show where the path was
	// stitched together by cross-place messages.
	visitedTid := make(map[uint64]bool, len(w.visited))
	for s := range w.visited {
		visitedTid[s.ev.Tid] = true
	}
	flowRecvs := 0
	for _, e := range events {
		if e.Ph == 'f' && visitedTid[e.Tid] {
			flowRecvs++
		}
	}
	rep := &CritPathReport{
		Root:      root.ev.Name,
		WallNs:    root.ev.Dur,
		Buckets:   w.buckets,
		Spans:     w.spans,
		PlaceNs:   w.places,
		FlowRecvs: flowRecvs,
	}
	var sum int64
	for _, ns := range w.buckets {
		sum += ns
	}
	rep.Coverage = float64(sum) / float64(rep.WallNs)
	return rep
}

type walker struct {
	buckets map[string]int64
	places  map[int]int64
	visited map[*span]bool
	spans   int
}

// attribute charges the window [lo, hi) of span n to buckets, descending
// into children along the latest-ending-overlap chain.
func (w *walker) attribute(n *span, lo, hi int64) {
	if hi <= lo || w.visited[n] {
		return
	}
	w.visited[n] = true
	w.spans++
	own := bucketFor(n.ev.Name)
	isFinish := own == BucketFinishControl
	kids := n.kids
	sort.Slice(kids, func(i, j int) bool { return kids[i].end() > kids[j].end() })
	cur := hi
	for _, k := range kids {
		if cur <= lo {
			break
		}
		if k.start() >= cur || k.end() <= lo {
			continue // no overlap with the remaining window
		}
		e := k.end()
		if e > cur {
			e = cur
		}
		s := k.start()
		if s < lo {
			s = lo
		}
		if gap := cur - e; gap > 0 {
			b := own
			if isFinish && k.ev.Pid != n.ev.Pid {
				// A finish idling after a remote child finished: the
				// completion credit was in flight.
				b = BucketTransport
			}
			w.buckets[b] += gap
			// Waiting time belongs to the place doing the waiting.
			w.places[n.ev.Pid] += gap
		}
		w.attribute(k, s, e)
		cur = s
	}
	if cur > lo {
		w.buckets[own] += cur - lo
		w.places[n.ev.Pid] += cur - lo
	}
}
