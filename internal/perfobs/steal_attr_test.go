package perfobs_test

import (
	"bytes"
	"runtime/pprof"
	"testing"

	"apgas/internal/core"
	"apgas/internal/glb"
	"apgas/internal/obs"
	"apgas/internal/perfobs"
)

// spinBag is a minimal GLB TaskBag: a pile of identical units that each
// burn a fixed spin so stolen work costs real CPU time at the thief.
type spinBag struct {
	pending int64
	done    int64
	work    int
	sink    uint64
}

func (b *spinBag) Process(q int) int {
	n := int64(q)
	if n > b.pending {
		n = b.pending
	}
	b.pending -= n
	b.done += n
	for i := int64(0); i < n*int64(b.work); i++ {
		b.sink = b.sink*6364136223846793005 + 1442695040888963407
	}
	return int(n)
}

func (b *spinBag) Size() int64 { return b.pending }

func (b *spinBag) Split() glb.TaskBag {
	if b.pending < 2 {
		return nil
	}
	half := b.pending / 2
	b.pending -= half
	return &spinBag{pending: half, work: b.work}
}

func (b *spinBag) Merge(loot glb.TaskBag) {
	lb := loot.(*spinBag)
	b.pending += lb.pending
	b.done += lb.done
}

// TestStealAttributionProfile is the cross-place attribution acceptance
// check: all work starts at place 0, thieves steal it, and the CPU
// profile must attribute the stolen units to the thief's place label
// with kind=glb.worker — not back to the victim.
//
// CPU profiles sample at ~100Hz, so the workload has to burn real time
// at the thieves. A few attempts absorb scheduling luck; if the process
// cannot start a CPU profile at all (another one is active), skip.
func TestStealAttributionProfile(t *testing.T) {
	if testing.Short() {
		t.Skip("CPU-profile based test skipped in -short mode")
	}
	const places = 4
	const units = 60_000
	for attempt := 0; attempt < 3; attempt++ {
		var buf bytes.Buffer
		if err := pprof.StartCPUProfile(&buf); err != nil {
			t.Skipf("cannot start CPU profile: %v", err)
		}

		o := obs.New().EnableProfiling("glbsteal")
		rt, err := core.NewRuntime(core.Config{Places: places, PlacesPerHost: places, Obs: o})
		if err != nil {
			pprof.StopCPUProfile()
			t.Fatalf("NewRuntime: %v", err)
		}
		// All units live at place 0; places 1..3 only get work by
		// stealing. Heavy per-unit spin keeps thieves on-CPU long
		// enough for the sampler to see them.
		b := glb.New(rt, glb.Config{Quantum: 64}, func(p core.Place) glb.TaskBag {
			if p == 0 {
				return &spinBag{pending: units, work: 4000}
			}
			return &spinBag{work: 4000}
		})
		err = rt.Run(func(ctx *core.Ctx) {
			if rerr := b.Run(ctx); rerr != nil {
				t.Errorf("balancer run: %v", rerr)
			}
		})
		rt.Close()
		pprof.StopCPUProfile()
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		var done int64
		for p := 0; p < places; p++ {
			done += b.BagAt(core.Place(p)).(*spinBag).done
		}
		if done != units {
			t.Fatalf("done = %d, want %d", done, units)
		}
		st := b.Stats()
		if st.StealSuccesses == 0 && st.LifelineDeliveries == 0 {
			t.Fatalf("no steals happened; workload cannot exercise attribution")
		}

		p, perr := perfobs.ParseProfile(buf.Bytes())
		if perr != nil {
			t.Fatalf("ParseProfile: %v", perr)
		}
		sum := perfobs.SummarizeProfile(p, []string{obs.LabelPlace, obs.LabelKind})
		thiefValue := int64(0)
		var thieves []string
		for _, row := range sum.Rows {
			if row.Labels[obs.LabelKind] != "glb.worker" {
				continue
			}
			if pl := row.Labels[obs.LabelPlace]; pl != "0" && pl != "-" {
				thiefValue += row.Value
				thieves = append(thieves, pl)
			}
		}
		if thiefValue > 0 {
			t.Logf("stolen-task samples attributed to thief places %v (%d %s across %d rows)",
				thieves, thiefValue, sum.ValueUnit, len(thieves))
			return
		}
		var table bytes.Buffer
		sum.WriteTable(&table)
		t.Logf("attempt %d: no glb.worker samples at thief places yet\n%s", attempt, table.String())
	}
	t.Fatalf("no CPU samples attributed to glb.worker at a thief place after 3 attempts")
}
