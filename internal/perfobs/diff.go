package perfobs

import (
	"fmt"
	"io"
	"math"
	"sort"
)

// Options tunes the regression gate's noise tolerances.
type Options struct {
	// RelTol is the relative change beyond which an aggregate metric
	// counts as a regression (default 0.15: benchmarks on shared
	// machines are noisy even with min-of-N points).
	RelTol float64
	// EffTol is the absolute efficiency drop tolerated (default 0.10).
	EffTol float64
	// RequireSameEnv fails the comparison when the two artifacts'
	// fingerprints disagree on GOMAXPROCS/CPU/arch — numbers from
	// different machines are not comparable.
	RequireSameEnv bool
}

// DefaultOptions returns the gate's standard tolerances.
func DefaultOptions() Options {
	return Options{RelTol: 0.15, EffTol: 0.10}
}

// Verdict classifies one compared quantity.
type Verdict string

const (
	// Regression: the change is in the bad direction beyond tolerance.
	Regression Verdict = "regression"
	// Improvement: beyond tolerance in the good direction. Reported,
	// never failing.
	Improvement Verdict = "improvement"
	// Unchanged: within tolerance either way.
	Unchanged Verdict = "unchanged"
	// Incomparable: present in only one artifact, or the environments
	// disagree.
	Incomparable Verdict = "incomparable"
)

// Finding is one compared quantity: an experiment point's aggregate, an
// experiment's efficiency, or an environment mismatch.
type Finding struct {
	Experiment string  `json:"experiment"`
	Quantity   string  `json:"quantity"` // e.g. "aggregate@p4", "efficiency", "env"
	Old        float64 `json:"old"`
	New        float64 `json:"new"`
	// Delta is the relative change (new-old)/old for rates, absolute for
	// efficiency.
	Delta   float64 `json:"delta"`
	Verdict Verdict `json:"verdict"`
	Detail  string  `json:"detail,omitempty"`
}

// Report is a full benchdiff run: every finding plus the verdict roll-up.
type Report struct {
	OldScale    string    `json:"old_scale"`
	NewScale    string    `json:"new_scale"`
	Options     Options   `json:"options"`
	Findings    []Finding `json:"findings"`
	Regressions int       `json:"regressions"`
	// Improvements counts findings beyond tolerance in the good direction.
	Improvements int `json:"improvements"`
}

// Failed reports whether the gate should exit nonzero.
func (r *Report) Failed() bool { return r.Regressions > 0 }

// Compare runs the direction-aware regression gate between an old
// (baseline) and new (candidate) artifact. Direction awareness: for
// time-based series a rise in aggregate is a regression; for throughput
// series a drop is; efficiency is compared on an absolute tolerance and
// only drops fail. Changes beyond tolerance in the favourable direction
// are reported as improvements and never fail the gate.
func Compare(oldA, newA *Artifact, opt Options) *Report {
	if opt.RelTol <= 0 {
		opt.RelTol = DefaultOptions().RelTol
	}
	if opt.EffTol <= 0 {
		opt.EffTol = DefaultOptions().EffTol
	}
	rep := &Report{OldScale: oldA.Scale, NewScale: newA.Scale, Options: opt}
	add := func(f Finding) {
		rep.Findings = append(rep.Findings, f)
		switch f.Verdict {
		case Regression:
			rep.Regressions++
		case Improvement:
			rep.Improvements++
		}
	}

	if envDetail := envMismatch(oldA.Env, newA.Env); envDetail != "" {
		v := Incomparable
		if opt.RequireSameEnv {
			v = Regression
		}
		add(Finding{Quantity: "env", Verdict: v, Detail: envDetail})
	}

	oldExps := make(map[string]Experiment, len(oldA.Experiments))
	for _, e := range oldA.Experiments {
		oldExps[e.Name] = e
	}
	seen := make(map[string]bool)
	for _, ne := range newA.Experiments {
		seen[ne.Name] = true
		oe, ok := oldExps[ne.Name]
		if !ok {
			add(Finding{Experiment: ne.Name, Quantity: "series", Verdict: Incomparable,
				Detail: "only in new artifact"})
			continue
		}
		comparePoints(add, oe, ne, opt)
		compareEfficiency(add, oe, ne, opt)
	}
	for _, oe := range oldA.Experiments {
		if !seen[oe.Name] {
			add(Finding{Experiment: oe.Name, Quantity: "series", Verdict: Regression,
				Detail: "experiment disappeared from new artifact"})
		}
	}
	sort.SliceStable(rep.Findings, func(i, j int) bool {
		return verdictRank(rep.Findings[i].Verdict) < verdictRank(rep.Findings[j].Verdict)
	})
	return rep
}

func verdictRank(v Verdict) int {
	switch v {
	case Regression:
		return 0
	case Improvement:
		return 1
	case Incomparable:
		return 2
	default:
		return 3
	}
}

func envMismatch(a, b Env) string {
	var diffs []string
	if a.GOMAXPROCS != b.GOMAXPROCS {
		diffs = append(diffs, fmt.Sprintf("GOMAXPROCS %d vs %d", a.GOMAXPROCS, b.GOMAXPROCS))
	}
	if a.GOARCH != b.GOARCH {
		diffs = append(diffs, fmt.Sprintf("GOARCH %s vs %s", a.GOARCH, b.GOARCH))
	}
	if a.CPUModel != b.CPUModel && a.CPUModel != "" && b.CPUModel != "" {
		diffs = append(diffs, fmt.Sprintf("CPU %q vs %q", a.CPUModel, b.CPUModel))
	}
	if len(diffs) == 0 {
		return ""
	}
	out := diffs[0]
	for _, d := range diffs[1:] {
		out += "; " + d
	}
	return out
}

func comparePoints(add func(Finding), oe, ne Experiment, opt Options) {
	oldPts := make(map[int]Point, len(oe.Points))
	for _, p := range oe.Points {
		oldPts[p.Places] = p
	}
	for _, np := range ne.Points {
		op, ok := oldPts[np.Places]
		if !ok {
			continue // new sweep point: nothing to gate against
		}
		q := fmt.Sprintf("aggregate@p%d", np.Places)
		if op.Aggregate == 0 {
			v := Unchanged
			if np.Aggregate != 0 {
				v = Incomparable
			}
			add(Finding{Experiment: ne.Name, Quantity: q, Old: op.Aggregate, New: np.Aggregate,
				Verdict: v, Detail: "zero baseline"})
			continue
		}
		rel := (np.Aggregate - op.Aggregate) / op.Aggregate
		// For time-based series larger is worse; flip so positive delta
		// always means "better".
		good := rel
		if ne.TimeBased || oe.TimeBased {
			good = -rel
		}
		f := Finding{Experiment: ne.Name, Quantity: q, Old: op.Aggregate, New: np.Aggregate, Delta: rel}
		switch {
		case good < -opt.RelTol:
			f.Verdict = Regression
			f.Detail = fmt.Sprintf("%+.1f%% beyond %.0f%% tolerance", rel*100, opt.RelTol*100)
		case good > opt.RelTol:
			f.Verdict = Improvement
			f.Detail = fmt.Sprintf("%+.1f%%", rel*100)
		default:
			f.Verdict = Unchanged
		}
		add(f)
	}
}

func compareEfficiency(add func(Finding), oe, ne Experiment, opt Options) {
	if oe.Efficiency == 0 && ne.Efficiency == 0 {
		return
	}
	d := ne.Efficiency - oe.Efficiency
	f := Finding{Experiment: ne.Name, Quantity: "efficiency",
		Old: oe.Efficiency, New: ne.Efficiency, Delta: d}
	switch {
	case d < -opt.EffTol:
		f.Verdict = Regression
		f.Detail = fmt.Sprintf("efficiency dropped %.0f points beyond %.0f-point tolerance",
			math.Abs(d)*100, opt.EffTol*100)
	case d > opt.EffTol:
		f.Verdict = Improvement
	default:
		f.Verdict = Unchanged
	}
	add(f)
}

// WriteMarkdown renders the report as a markdown summary table.
func (r *Report) WriteMarkdown(w io.Writer) {
	status := "PASS"
	if r.Failed() {
		status = "FAIL"
	}
	fmt.Fprintf(w, "# benchdiff: %s\n\n", status)
	fmt.Fprintf(w, "%d regression(s), %d improvement(s), %d finding(s) total "+
		"(tolerances: %.0f%% relative, %.0f-point efficiency).\n\n",
		r.Regressions, r.Improvements, len(r.Findings),
		r.Options.RelTol*100, r.Options.EffTol*100)
	if len(r.Findings) == 0 {
		fmt.Fprintln(w, "No comparable quantities.")
		return
	}
	fmt.Fprintln(w, "| verdict | experiment | quantity | old | new | delta | detail |")
	fmt.Fprintln(w, "|---|---|---|---:|---:|---:|---|")
	for _, f := range r.Findings {
		fmt.Fprintf(w, "| %s | %s | %s | %.4g | %.4g | %+.1f%% | %s |\n",
			f.Verdict, f.Experiment, f.Quantity, f.Old, f.New, f.Delta*100, f.Detail)
	}
}
