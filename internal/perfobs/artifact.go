// Package perfobs is the performance observatory: machine-readable
// benchmark artifacts with environment fingerprints, a noise-aware
// regression gate over pairs of artifacts, and a critical-path profiler
// that attributes a run's wall time into runtime buckets (user compute,
// finish control, steal round trips, lifeline waits, collective fan-in,
// transport) — a software reproduction of the paper's Table 2 overhead
// accounting.
//
// The artifact is the unit of exchange: `apgas-bench -bench-json` and
// the `go test -bench` wrapper emit it, `tracecheck -bench` validates
// it, `benchdiff` compares two of them, and the repo root accumulates
// the committed BENCH_<scale>.json trajectory.
package perfobs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"strings"
	"time"
)

// Schema is the artifact's schema identifier.
const Schema = "apgas-bench"

// Version is the current artifact schema version.
const Version = 1

// Artifact is one benchmark run's machine-readable record.
type Artifact struct {
	Schema  string `json:"schema"`
	Version int    `json:"version"`
	// CreatedUnix is the emission time (Unix seconds).
	CreatedUnix int64 `json:"created_unix"`
	// Scale names the harness scale the run used (tiny/small/medium) or
	// the emitting tool ("go-test-bench").
	Scale string `json:"scale"`
	// Reps is the number of repetitions each experiment ran; points keep
	// the best repetition (max throughput, min time), the standard
	// min-of-N noise defence.
	Reps int `json:"reps"`
	Env  Env  `json:"env"`
	// Experiments are the per-experiment series, in run order.
	Experiments []Experiment `json:"experiments"`
}

// Env is the environment fingerprint stamped into every artifact, so a
// diff across machines or configurations is visibly apples-to-oranges.
type Env struct {
	GoVersion  string `json:"go_version"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	NumCPU     int    `json:"num_cpu"`
	// CPUModel is the host CPU's model string (best effort; empty when
	// undeterminable).
	CPUModel string `json:"cpu_model,omitempty"`
	// GitSHA is the repository HEAD at emission (best effort).
	GitSHA string `json:"git_sha,omitempty"`
	// Hostname is the emitting host (best effort).
	Hostname string `json:"hostname,omitempty"`
}

// Experiment is one experiment's series plus its attached observability:
// metric deltas and the critical-path attribution of the largest run.
type Experiment struct {
	Name          string  `json:"name"`
	AggregateUnit string  `json:"aggregate_unit"`
	PerUnitUnit   string  `json:"per_unit_unit"`
	TimeBased     bool    `json:"time_based,omitempty"`
	Points        []Point `json:"points"`
	// Efficiency is the series' relative efficiency vs the 1-place
	// reference (harness.Series.Efficiency semantics); omitted (0) when
	// the series is degenerate.
	Efficiency float64 `json:"efficiency"`
	// EfficiencyNote records why Efficiency is absent, when it is.
	EfficiencyNote string `json:"efficiency_note,omitempty"`
	// Metrics are curated obs registry deltas accumulated over the whole
	// series (all points), keyed by metric name.
	Metrics map[string]MetricSummary `json:"metrics,omitempty"`
	// CriticalPath is the bucket attribution of the best repetition's
	// longest root finish (normally the largest place-count run).
	CriticalPath *CritPathReport `json:"critical_path,omitempty"`
}

// Point is one measurement of the experiment's place sweep.
type Point struct {
	Places    int     `json:"places"`
	Aggregate float64 `json:"aggregate"`
	PerUnit   float64 `json:"per_unit"`
	Note      string  `json:"note,omitempty"`
}

// MetricSummary is one metric's artifact form: counters keep their
// count, gauges their level, histograms count/sum plus the power-of-two
// bucket quantile readouts the attribution tables use.
type MetricSummary struct {
	Kind  string `json:"kind"` // "counter", "gauge", "histogram"
	Count uint64 `json:"count,omitempty"`
	Gauge int64  `json:"gauge,omitempty"`
	Sum   uint64 `json:"sum,omitempty"`
	P50   uint64 `json:"p50,omitempty"`
	P95   uint64 `json:"p95,omitempty"`
}

// BuildEnv captures the current process environment fingerprint. The
// git SHA, CPU model and hostname are best effort and may be empty.
func BuildEnv() Env {
	e := Env{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		CPUModel:   cpuModel(),
	}
	if host, err := os.Hostname(); err == nil {
		e.Hostname = host
	}
	if out, err := exec.Command("git", "rev-parse", "--short=12", "HEAD").Output(); err == nil {
		e.GitSHA = strings.TrimSpace(string(out))
	}
	return e
}

// cpuModel reads the CPU model string from /proc/cpuinfo (Linux); other
// platforms report empty.
func cpuModel() string {
	f, err := os.Open("/proc/cpuinfo")
	if err != nil {
		return ""
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "model name") {
			if i := strings.IndexByte(line, ':'); i >= 0 {
				return strings.TrimSpace(line[i+1:])
			}
		}
	}
	return ""
}

// NewArtifact returns an artifact shell stamped with the current
// environment and time.
func NewArtifact(scale string, reps int) *Artifact {
	return &Artifact{
		Schema:      Schema,
		Version:     Version,
		CreatedUnix: time.Now().Unix(),
		Scale:       scale,
		Reps:        reps,
		Env:         BuildEnv(),
	}
}

// WriteFile writes the artifact as indented JSON.
func (a *Artifact) WriteFile(path string) error {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(a); err != nil {
		return err
	}
	return os.WriteFile(path, buf.Bytes(), 0o644)
}

// ReadFile parses an artifact file. It does not validate; call Validate
// for the structural checks.
func ReadFile(path string) (*Artifact, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return Parse(data)
}

// Parse decodes artifact JSON.
func Parse(data []byte) (*Artifact, error) {
	var a Artifact
	if err := json.Unmarshal(data, &a); err != nil {
		return nil, fmt.Errorf("invalid artifact JSON: %v", err)
	}
	return &a, nil
}

// Issue is one validation finding: a JSON-path-like location plus the
// reason, mirroring tracecheck's line+reason flight-dump errors.
type Issue struct {
	Path   string
	Reason string
}

func (i Issue) Error() string { return i.Path + ": " + i.Reason }

// Validate checks the structural invariants of an artifact: schema and
// version, a present environment fingerprint, non-empty experiments
// with strictly increasing place counts, non-negative metrics, and
// critical-path reports whose buckets are sane. It returns every issue
// found (nil on a valid artifact).
func Validate(a *Artifact) []Issue {
	var issues []Issue
	add := func(path, reason string, args ...any) {
		issues = append(issues, Issue{Path: path, Reason: fmt.Sprintf(reason, args...)})
	}
	if a == nil {
		return []Issue{{Path: "$", Reason: "nil artifact"}}
	}
	if a.Schema != Schema {
		add("schema", "got %q, want %q", a.Schema, Schema)
	}
	if a.Version != Version {
		add("version", "unsupported version %d, want %d", a.Version, Version)
	}
	if a.Env.GoVersion == "" {
		add("env.go_version", "missing")
	}
	if a.Env.GOMAXPROCS <= 0 {
		add("env.gomaxprocs", "got %d, want > 0", a.Env.GOMAXPROCS)
	}
	if a.Env.NumCPU <= 0 {
		add("env.num_cpu", "got %d, want > 0", a.Env.NumCPU)
	}
	if a.Reps < 1 {
		add("reps", "got %d, want >= 1", a.Reps)
	}
	if len(a.Experiments) == 0 {
		add("experiments", "empty")
	}
	seen := make(map[string]bool)
	for i, e := range a.Experiments {
		p := fmt.Sprintf("experiments[%d]", i)
		if e.Name == "" {
			add(p+".name", "empty")
		} else if seen[e.Name] {
			add(p+".name", "duplicate experiment %q", e.Name)
		}
		seen[e.Name] = true
		if len(e.Points) == 0 {
			add(p+".points", "empty")
		}
		prev := 0
		for j, pt := range e.Points {
			pp := fmt.Sprintf("%s.points[%d]", p, j)
			if pt.Places <= prev {
				add(pp+".places", "got %d after %d, want strictly increasing", pt.Places, prev)
			}
			prev = pt.Places
			if pt.Aggregate < 0 || isNaN(pt.Aggregate) {
				add(pp+".aggregate", "got %v, want finite >= 0", pt.Aggregate)
			}
			if pt.PerUnit < 0 || isNaN(pt.PerUnit) {
				add(pp+".per_unit", "got %v, want finite >= 0", pt.PerUnit)
			}
		}
		if e.Efficiency < 0 || isNaN(e.Efficiency) {
			add(p+".efficiency", "got %v, want finite >= 0", e.Efficiency)
		}
		if cp := e.CriticalPath; cp != nil {
			cpPath := p + ".critical_path"
			if cp.WallNs < 0 {
				add(cpPath+".wall_ns", "negative wall time %d", cp.WallNs)
			}
			var sum int64
			for name, ns := range cp.Buckets {
				if ns < 0 {
					add(fmt.Sprintf("%s.buckets[%s]", cpPath, name), "negative %d ns", ns)
				}
				sum += ns
			}
			if cp.WallNs > 0 && sum > cp.WallNs+cp.WallNs/100+1 {
				add(cpPath+".buckets", "sum %d ns exceeds wall %d ns by more than 1%%", sum, cp.WallNs)
			}
			if cp.Coverage < 0 || cp.Coverage > 1.01 || isNaN(cp.Coverage) {
				add(cpPath+".coverage", "got %v, want within [0, 1]", cp.Coverage)
			}
		}
	}
	return issues
}

func isNaN(f float64) bool { return f != f }
