package perfobs

import (
	"fmt"
	"io"
	"strings"

	"apgas/internal/harness"
	"apgas/internal/obs"
)

// Runner names one experiment and how to run it at a scale.
type Runner struct {
	Name string
	Run  func(harness.Scale) (harness.Series, error)
}

// scaleName maps the harness scale to its artifact label.
func scaleName(s harness.Scale) string {
	switch s {
	case harness.Tiny:
		return "tiny"
	case harness.Small:
		return "small"
	default:
		return "medium"
	}
}

// Collect runs each experiment reps times under a fresh tracing
// observability layer per repetition and assembles the benchmark
// artifact: per experiment the best repetition's series (max
// throughput, or min time for time-based series — the min-of-N noise
// defence), the obs metric deltas of that repetition, and the
// critical-path attribution of its trace. progress (may be nil)
// receives one line per experiment.
//
// Collect swaps the process-global obs layer for the duration of the
// run and restores the previous one before returning; it must not run
// concurrently with other runtime construction.
func Collect(scale harness.Scale, reps int, runners []Runner, progress io.Writer) (*Artifact, error) {
	if reps < 1 {
		reps = 1
	}
	if progress == nil {
		progress = io.Discard
	}
	prev := obs.Global()
	defer obs.SetGlobal(prev)

	art := NewArtifact(scaleName(scale), reps)
	for _, r := range runners {
		exp, err := collectOne(r, scale, reps)
		if err != nil {
			return nil, fmt.Errorf("experiment %s: %w", r.Name, err)
		}
		art.Experiments = append(art.Experiments, exp)
		fmt.Fprintf(progress, "bench-json: %s done (%d points, efficiency %.2f)\n",
			r.Name, len(exp.Points), exp.Efficiency)
	}
	return art, nil
}

func collectOne(r Runner, scale harness.Scale, reps int) (Experiment, error) {
	var best harness.Series
	var bestMetrics obs.Snapshot
	var bestEvents []obs.Event
	haveBest := false
	for rep := 0; rep < reps; rep++ {
		o := obs.NewTracing()
		obs.SetGlobal(o)
		before := o.Metrics.Snapshot()
		s, err := r.Run(scale)
		if err != nil {
			return Experiment{}, err
		}
		if len(s.Points) == 0 {
			return Experiment{}, fmt.Errorf("no points")
		}
		if !haveBest || better(s, best) {
			best = s
			bestMetrics = o.Metrics.Snapshot().Sub(before)
			bestEvents = o.Trace.Events()
			haveBest = true
		}
	}
	exp := Experiment{
		Name:          best.Name,
		AggregateUnit: best.AggregateUnit,
		PerUnitUnit:   best.PerUnitUnit,
		TimeBased:     best.TimeBased,
		Metrics:       summarizeMetrics(bestMetrics),
		CriticalPath:  CriticalPath(bestEvents),
	}
	for _, p := range best.Points {
		exp.Points = append(exp.Points, Point{
			Places: p.Places, Aggregate: p.Aggregate, PerUnit: p.PerUnit, Note: p.Note,
		})
	}
	if eff, err := best.EfficiencyChecked(1); err != nil {
		exp.EfficiencyNote = err.Error()
	} else {
		exp.Efficiency = eff
	}
	return exp, nil
}

// better reports whether candidate s beats the incumbent at the largest
// common sweep point: higher throughput, or lower time for time-based
// series.
func better(s, incumbent harness.Series) bool {
	a := s.Points[len(s.Points)-1].Aggregate
	b := incumbent.Points[len(incumbent.Points)-1].Aggregate
	if s.TimeBased {
		return a < b
	}
	return a > b
}

// metricPrefixes selects which registry deltas travel in the artifact:
// the runtime-internal signals the paper's engineering story is told
// through, not per-place duplicates.
var metricPrefixes = []string{
	"x10rt.msgs.", "x10rt.bytes.", "x10rt.batch.", "finish.", "glb.", "team.", "core.", "sched.",
}

// summarizeMetrics converts a snapshot delta to artifact metric
// summaries, keeping only curated runtime metrics and dropping
// place-qualified duplicates ("sched.p3.spawned").
func summarizeMetrics(s obs.Snapshot) map[string]MetricSummary {
	if len(s) == 0 {
		return nil
	}
	out := make(map[string]MetricSummary)
	for name, v := range s {
		if !keepMetric(name) {
			continue
		}
		m := MetricSummary{}
		switch v.Kind {
		case obs.KindCounter:
			if v.Count == 0 {
				continue
			}
			m.Kind = "counter"
			m.Count = v.Count
		case obs.KindGauge:
			m.Kind = "gauge"
			m.Gauge = v.Gauge
		case obs.KindHistogram:
			if v.Count == 0 {
				continue
			}
			m.Kind = "histogram"
			m.Count = v.Count
			m.Sum = v.Sum
			m.P50 = v.Quantile(0.50)
			m.P95 = v.Quantile(0.95)
		}
		out[name] = m
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

func keepMetric(name string) bool {
	matched := false
	for _, p := range metricPrefixes {
		if strings.HasPrefix(name, p) {
			matched = true
			break
		}
	}
	if !matched {
		return false
	}
	// Drop place-qualified names: any dot-separated segment of the form
	// p<digits> marks a per-place duplicate of an unqualified total.
	for _, seg := range strings.Split(name, ".") {
		if len(seg) >= 2 && seg[0] == 'p' && allDigits(seg[1:]) {
			return false
		}
	}
	return true
}

func allDigits(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] < '0' || s[i] > '9' {
			return false
		}
	}
	return true
}
