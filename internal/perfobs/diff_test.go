package perfobs

import (
	"strings"
	"testing"
)

func baselineArtifact() *Artifact {
	a := NewArtifact("tiny", 3)
	a.Experiments = []Experiment{
		{
			Name: "UTS", AggregateUnit: "Mnodes/s",
			Points: []Point{
				{Places: 1, Aggregate: 10, PerUnit: 10},
				{Places: 4, Aggregate: 30, PerUnit: 7.5},
			},
			Efficiency: 0.75,
		},
		{
			Name: "K-Means", AggregateUnit: "seconds", TimeBased: true,
			Points: []Point{
				{Places: 1, Aggregate: 1.0, PerUnit: 1},
				{Places: 4, Aggregate: 1.2, PerUnit: 3.3},
			},
			Efficiency: 0.8,
		},
	}
	return a
}

func TestCompareSelfPasses(t *testing.T) {
	a := baselineArtifact()
	rep := Compare(a, a, DefaultOptions())
	if rep.Failed() || rep.Regressions != 0 {
		t.Fatalf("self-compare failed: %+v", rep.Findings)
	}
	for _, f := range rep.Findings {
		if f.Verdict != Unchanged {
			t.Errorf("self-compare finding not unchanged: %+v", f)
		}
	}
}

// TestCompareDirectionAware: a throughput drop and a time rise both
// regress; the same-magnitude changes in the favourable direction are
// improvements and pass.
func TestCompareDirectionAware(t *testing.T) {
	old := baselineArtifact()

	degraded := baselineArtifact()
	degraded.Experiments[0].Points[1].Aggregate = 20  // throughput -33%
	degraded.Experiments[1].Points[1].Aggregate = 1.8 // time +50%
	degraded.Experiments[0].Efficiency = 0.5          // -25 points
	rep := Compare(old, degraded, DefaultOptions())
	if !rep.Failed() {
		t.Fatal("degraded artifact passed the gate")
	}
	if rep.Regressions != 3 {
		t.Errorf("regressions = %d, want 3: %+v", rep.Regressions, rep.Findings)
	}

	improved := baselineArtifact()
	improved.Experiments[0].Points[1].Aggregate = 45  // throughput +50%
	improved.Experiments[1].Points[1].Aggregate = 0.8 // time -33%
	rep = Compare(old, improved, DefaultOptions())
	if rep.Failed() {
		t.Fatalf("improved artifact failed: %+v", rep.Findings)
	}
	if rep.Improvements != 2 {
		t.Errorf("improvements = %d, want 2: %+v", rep.Improvements, rep.Findings)
	}
}

func TestCompareWithinTolerancePasses(t *testing.T) {
	old := baselineArtifact()
	wiggle := baselineArtifact()
	wiggle.Experiments[0].Points[1].Aggregate = 28 // -6.7%, inside 15%
	rep := Compare(old, wiggle, DefaultOptions())
	if rep.Failed() {
		t.Fatalf("noise failed the gate: %+v", rep.Findings)
	}
}

func TestCompareMissingExperimentRegresses(t *testing.T) {
	old := baselineArtifact()
	shrunk := baselineArtifact()
	shrunk.Experiments = shrunk.Experiments[:1]
	rep := Compare(old, shrunk, DefaultOptions())
	if !rep.Failed() {
		t.Fatal("disappeared experiment passed")
	}
}

func TestCompareEnvMismatch(t *testing.T) {
	old := baselineArtifact()
	moved := baselineArtifact()
	moved.Env.GOMAXPROCS = old.Env.GOMAXPROCS + 8

	rep := Compare(old, moved, DefaultOptions())
	if rep.Failed() {
		t.Fatalf("env mismatch should be incomparable by default: %+v", rep.Findings)
	}
	found := false
	for _, f := range rep.Findings {
		if f.Quantity == "env" && f.Verdict == Incomparable {
			found = true
		}
	}
	if !found {
		t.Fatalf("no env finding: %+v", rep.Findings)
	}

	opt := DefaultOptions()
	opt.RequireSameEnv = true
	if rep := Compare(old, moved, opt); !rep.Failed() {
		t.Fatal("RequireSameEnv did not fail on mismatch")
	}
}

func TestWriteMarkdown(t *testing.T) {
	old := baselineArtifact()
	degraded := baselineArtifact()
	degraded.Experiments[0].Points[1].Aggregate = 10
	rep := Compare(old, degraded, DefaultOptions())

	var sb strings.Builder
	rep.WriteMarkdown(&sb)
	out := sb.String()
	for _, want := range []string{"FAIL", "regression", "UTS", "aggregate@p4"} {
		if !strings.Contains(out, want) {
			t.Errorf("markdown missing %q:\n%s", want, out)
		}
	}

	sb.Reset()
	Compare(old, old, DefaultOptions()).WriteMarkdown(&sb)
	if !strings.Contains(sb.String(), "PASS") {
		t.Errorf("self-compare markdown not PASS:\n%s", sb.String())
	}
}
