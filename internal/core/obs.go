package core

import (
	"fmt"

	"apgas/internal/obs"
)

// This file wires the runtime into the unified observability layer
// (internal/obs). Instrumentation discipline: the runtime holds a nil
// *runtimeMetrics and nil *obs.Tracer when observability is disabled, so
// every instrumented hot path pays exactly one pointer load and branch.

// metricKey returns the lowercase registry segment for a pattern
// ("spmd" for FINISH_SPMD, and so on).
func (p Pattern) metricKey() string {
	switch p {
	case PatternDefault:
		return "default"
	case PatternAsync:
		return "async"
	case PatternHere:
		return "here"
	case PatternLocal:
		return "local"
	case PatternSPMD:
		return "spmd"
	case PatternDense:
		return "dense"
	default:
		return fmt.Sprintf("pattern%d", uint8(p))
	}
}

// runtimeMetrics are the core runtime's registry handles: per-pattern
// finish counts and latency histograms, activity spawn kinds, and
// finish-protocol control traffic observed at receiving places.
type runtimeMetrics struct {
	finishCount [numPatterns]*obs.Counter   // finish.<pattern>.count
	finishUs    [numPatterns]*obs.Histogram // finish.<pattern>.us
	asyncLocal  *obs.Counter                // core.async.local
	asyncRemote *obs.Counter                // core.async.remote
	atDirect    *obs.Counter                // core.at.direct
	uncounted   *obs.Counter                // core.async.uncounted
	ctlRecv     *obs.Counter                // finish.ctl.recv
}

func newRuntimeMetrics(r *obs.Registry) *runtimeMetrics {
	m := &runtimeMetrics{
		asyncLocal:  r.Counter("core.async.local"),
		asyncRemote: r.Counter("core.async.remote"),
		atDirect:    r.Counter("core.at.direct"),
		uncounted:   r.Counter("core.async.uncounted"),
		ctlRecv:     r.Counter("finish.ctl.recv"),
	}
	for p := Pattern(0); p < numPatterns; p++ {
		key := p.metricKey()
		m.finishCount[p] = r.Counter("finish." + key + ".count")
		m.finishUs[p] = r.Histogram("finish." + key + ".us")
	}
	return m
}

// Obs returns the observability layer this runtime reports into, or nil
// when observability is disabled.
func (rt *Runtime) Obs() *obs.Obs { return rt.obs }

// Tracer returns the event tracer, or nil when tracing is disabled.
// Extension layers (glb, collectives) use it to record their spans next
// to the runtime's.
func (rt *Runtime) Tracer() *obs.Tracer { return rt.tracer }
