package core

import (
	"fmt"

	"apgas/internal/obs"
)

// This file wires the runtime into the unified observability layer
// (internal/obs). Instrumentation discipline: the runtime holds a nil
// *runtimeMetrics and nil *obs.Tracer when observability is disabled, so
// every instrumented hot path pays exactly one pointer load and branch.

// metricKey returns the lowercase registry segment for a pattern
// ("spmd" for FINISH_SPMD, and so on).
func (p Pattern) metricKey() string {
	switch p {
	case PatternDefault:
		return "default"
	case PatternAsync:
		return "async"
	case PatternHere:
		return "here"
	case PatternLocal:
		return "local"
	case PatternSPMD:
		return "spmd"
	case PatternDense:
		return "dense"
	default:
		return fmt.Sprintf("pattern%d", uint8(p))
	}
}

// runtimeMetrics are the core runtime's registry handles: per-pattern
// finish counts and latency histograms, activity spawn kinds, and
// finish-protocol control traffic observed at receiving places.
type runtimeMetrics struct {
	finishCount [numPatterns]*obs.Counter   // finish.<pattern>.count
	finishUs    [numPatterns]*obs.Histogram // finish.<pattern>.us
	asyncLocal  *obs.Counter                // core.async.local
	asyncRemote *obs.Counter                // core.async.remote
	atDirect    *obs.Counter                // core.at.direct
	oneSided    *obs.Counter                // core.onesided
	uncounted   *obs.Counter                // core.async.uncounted
	ctlRecv     *obs.Counter                // finish.ctl.recv
}

func newRuntimeMetrics(r *obs.Registry) *runtimeMetrics {
	m := &runtimeMetrics{
		asyncLocal:  r.Counter("core.async.local"),
		asyncRemote: r.Counter("core.async.remote"),
		atDirect:    r.Counter("core.at.direct"),
		oneSided:    r.Counter("core.onesided"),
		uncounted:   r.Counter("core.async.uncounted"),
		ctlRecv:     r.Counter("finish.ctl.recv"),
	}
	for p := Pattern(0); p < numPatterns; p++ {
		key := p.metricKey()
		m.finishCount[p] = r.Counter("finish." + key + ".count")
		m.finishUs[p] = r.Histogram("finish." + key + ".us")
	}
	return m
}

// flightIDs caches the interned flight-recorder name ids the runtime's
// hot paths record with; interning happens once at construction so the
// record path stays allocation free.
type flightIDs struct {
	catFinish uint32
	catCore   uint32

	finishName  [numPatterns]uint32 // "finish.<pattern>"
	ctlSnapshot uint32
	ctlRouted   uint32
	ctlDone     uint32
	ctlCleanup  uint32
	atAsync     uint32
	atDirect    uint32
	oneSided    uint32
	spawnRecv   uint32
	runError    uint32
	placeDeath  uint32

	kSrc   uint32
	kDst   uint32
	kBytes uint32
	kSeq   uint32
}

func newFlightIDs(f *obs.FlightRecorder) *flightIDs {
	ids := &flightIDs{
		catFinish:   f.NameID("finish"),
		catCore:     f.NameID("core"),
		ctlSnapshot: f.NameID("ctl.snapshot"),
		ctlRouted:   f.NameID("ctl.routed"),
		ctlDone:     f.NameID("ctl.done"),
		ctlCleanup:  f.NameID("ctl.cleanup"),
		atAsync:     f.NameID("at.async"),
		atDirect:    f.NameID("at.direct"),
		oneSided:    f.NameID("onesided"),
		spawnRecv:   f.NameID("spawn.recv"),
		runError:    f.NameID("run.error"),
		placeDeath:  f.NameID("place.death"),
		kSrc:        f.NameID("src"),
		kDst:        f.NameID("dst"),
		kBytes:      f.NameID("bytes"),
		kSeq:        f.NameID("seq"),
	}
	for p := Pattern(0); p < numPatterns; p++ {
		ids.finishName[p] = f.NameID("finish." + p.metricKey())
	}
	return ids
}

// ctlFlightName maps a finish control payload to its flight-recorder
// event name.
func (ids *flightIDs) ctlFlightName(payload any) uint32 {
	switch payload.(type) {
	case ctlSnapshot:
		return ids.ctlSnapshot
	case ctlRouted:
		return ids.ctlRouted
	case ctlDone:
		return ids.ctlDone
	case ctlCleanup:
		return ids.ctlCleanup
	default:
		return 0
	}
}

// Obs returns the observability layer this runtime reports into, or nil
// when observability is disabled.
func (rt *Runtime) Obs() *obs.Obs { return rt.obs }

// PlaceRegistry returns place p's own metrics registry (unqualified
// metric names, mergeable across places), or nil when observability is
// disabled.
func (rt *Runtime) PlaceRegistry(p Place) *obs.Registry {
	if rt.obs == nil {
		return nil
	}
	return rt.obs.Place(int(p))
}

// Tracer returns the event tracer, or nil when tracing is disabled.
// Extension layers (glb, collectives) use it to record their spans next
// to the runtime's.
func (rt *Runtime) Tracer() *obs.Tracer { return rt.tracer }

// Profiler returns the activity profiler, or nil when profiling is
// disabled. Extension layers (glb, collectives) use it to reattribute
// the bodies they run inside core activities.
func (rt *Runtime) Profiler() *obs.Profiler { return rt.prof }

// MetricKey returns the lowercase registry/profile-label segment for a
// pattern ("spmd" for FINISH_SPMD, and so on) — the value the profiler
// stamps as the "pattern" pprof label.
func (p Pattern) MetricKey() string { return p.metricKey() }
