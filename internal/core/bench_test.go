package core

import (
	"sync/atomic"
	"testing"
)

// Microbenchmarks of the runtime primitives — the performance model of
// "what's going on under the hood" (Grove et al., X10'11, cited by the
// paper): spawn rate, place-shift latency, and per-pattern finish
// overhead, the quantities application kernels compose from.

func benchRuntime(b *testing.B, places int) *Runtime {
	b.Helper()
	rt, err := NewRuntime(Config{Places: places})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(rt.Close)
	return rt
}

func BenchmarkAsyncSpawn(b *testing.B) {
	rt := benchRuntime(b, 1)
	err := rt.Run(func(ctx *Ctx) {
		var sink atomic.Int64
		b.ResetTimer()
		ferr := ctx.Finish(func(c *Ctx) {
			for i := 0; i < b.N; i++ {
				c.Async(func(*Ctx) { sink.Add(1) })
			}
		})
		if ferr != nil {
			b.Error(ferr)
		}
	})
	if err != nil {
		b.Fatal(err)
	}
}

func BenchmarkAtRoundTripLatency(b *testing.B) {
	rt := benchRuntime(b, 2)
	err := rt.Run(func(ctx *Ctx) {
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ctx.At(1, func(*Ctx) {})
		}
	})
	if err != nil {
		b.Fatal(err)
	}
}

func BenchmarkAtDirectThroughput(b *testing.B) {
	rt := benchRuntime(b, 2)
	err := rt.Run(func(ctx *Ctx) {
		var sink atomic.Int64
		b.ResetTimer()
		ferr := ctx.Finish(func(c *Ctx) {
			for i := 0; i < b.N; i++ {
				c.AtDirect(1, 16, func(*Ctx) { sink.Add(1) })
			}
		})
		if ferr != nil {
			b.Error(ferr)
		}
	})
	if err != nil {
		b.Fatal(err)
	}
}

// benchFinishPattern measures the fixed cost of one finish of the given
// pattern governing a single remote activity (or local, for LOCAL).
func benchFinishPattern(b *testing.B, pat Pattern) {
	rt := benchRuntime(b, 2)
	err := rt.Run(func(ctx *Ctx) {
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			var ferr error
			if pat == PatternLocal {
				ferr = ctx.FinishPragma(pat, func(c *Ctx) {
					c.Async(func(*Ctx) {})
				})
			} else {
				ferr = ctx.FinishPragma(pat, func(c *Ctx) {
					c.AtAsync(1, func(*Ctx) {})
				})
			}
			if ferr != nil {
				b.Error(ferr)
				return
			}
		}
	})
	if err != nil {
		b.Fatal(err)
	}
}

func BenchmarkFinishDefault(b *testing.B) { benchFinishPattern(b, PatternDefault) }
func BenchmarkFinishAsync(b *testing.B)   { benchFinishPattern(b, PatternAsync) }
func BenchmarkFinishLocal(b *testing.B)   { benchFinishPattern(b, PatternLocal) }
func BenchmarkFinishSPMDOne(b *testing.B) { benchFinishPattern(b, PatternSPMD) }

func BenchmarkFinishHereRoundTrip(b *testing.B) {
	rt := benchRuntime(b, 2)
	err := rt.Run(func(ctx *Ctx) {
		home := ctx.Place()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ferr := ctx.FinishPragma(PatternHere, func(c *Ctx) {
				c.AtAsync(1, func(cc *Ctx) {
					cc.AtAsync(home, func(*Ctx) {})
				})
			})
			if ferr != nil {
				b.Error(ferr)
				return
			}
		}
	})
	if err != nil {
		b.Fatal(err)
	}
}

func BenchmarkFanOutSPMD16(b *testing.B) {
	rt := benchRuntime(b, 16)
	err := rt.Run(func(ctx *Ctx) {
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ferr := ctx.FinishPragma(PatternSPMD, func(c *Ctx) {
				for _, p := range c.Places() {
					c.AtAsync(p, func(*Ctx) {})
				}
			})
			if ferr != nil {
				b.Error(ferr)
				return
			}
		}
	})
	if err != nil {
		b.Fatal(err)
	}
}

func BenchmarkTreeBroadcast16(b *testing.B) {
	rt := benchRuntime(b, 16)
	g := WorldGroup(rt)
	err := rt.Run(func(ctx *Ctx) {
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if ferr := g.Broadcast(ctx, func(*Ctx) {}); ferr != nil {
				b.Error(ferr)
				return
			}
		}
	})
	if err != nil {
		b.Fatal(err)
	}
}

func BenchmarkAtomicSection(b *testing.B) {
	rt := benchRuntime(b, 1)
	err := rt.Run(func(ctx *Ctx) {
		n := 0
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ctx.Atomic(func() { n++ })
		}
	})
	if err != nil {
		b.Fatal(err)
	}
}
