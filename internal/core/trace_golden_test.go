package core

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"apgas/internal/obs"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// TestFinishSPMDTraceGolden runs a small FINISH_SPMD program under the
// tracer and checks the recorded events against a golden file. Timing
// fields (ts, dur, tid) are nondeterministic and therefore normalized
// away; what the golden file pins down is the event population — which
// spans and instants the runtime emits, at which places, with which
// arguments.
func TestFinishSPMDTraceGolden(t *testing.T) {
	const places = 4
	o := obs.NewTracing()
	rt, err := NewRuntime(Config{Places: places, Obs: o})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()

	err = rt.Run(func(c *Ctx) {
		err := c.FinishPragma(PatternSPMD, func(ctx *Ctx) {
			for p := 1; p < places; p++ {
				ctx.AtAsync(Place(p), func(*Ctx) {})
			}
			ctx.Async(func(*Ctx) {})
		})
		if err != nil {
			panic(err)
		}
	})
	if err != nil {
		t.Fatal(err)
	}

	// The exported JSON must be a valid Chrome trace_event document.
	var buf bytes.Buffer
	o.Trace.WriteChrome(&buf)
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("WriteChrome produced invalid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("WriteChrome produced no events")
	}
	for _, ev := range doc.TraceEvents {
		switch ev["ph"] {
		case "X":
			if _, ok := ev["dur"]; !ok {
				t.Errorf("complete event %v lacks dur", ev["name"])
			}
		case "i":
			if ev["s"] != "p" {
				t.Errorf("instant event %v has scope %v, want p", ev["name"], ev["s"])
			}
		default:
			t.Errorf("unexpected phase %v on %v", ev["ph"], ev["name"])
		}
	}

	got := normalizeEvents(o.Trace.Events())
	goldenPath := filepath.Join("testdata", "finish_spmd_trace.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("read golden (run with -update to regenerate): %v", err)
	}
	if got != string(want) {
		t.Errorf("trace events diverge from golden (run with -update to regenerate)\n got:\n%s\nwant:\n%s", got, want)
	}
}

// normalizeEvents renders events one per line with timing stripped,
// sorted, so the comparison is insensitive to scheduling order.
func normalizeEvents(events []obs.Event) string {
	lines := make([]string, 0, len(events))
	for _, e := range events {
		var sb strings.Builder
		fmt.Fprintf(&sb, "%c %s cat=%s pid=%d", e.Ph, e.Name, e.Cat, e.Pid)
		for _, a := range e.Args {
			fmt.Fprintf(&sb, " %s=%d", a.Key, a.Val)
		}
		lines = append(lines, sb.String())
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n") + "\n"
}
