package core

import "strings"

// MultiError aggregates the errors of several failed activities governed by
// one finish, mirroring X10's MultipleExceptions.
type MultiError struct {
	Errs []error
}

// Error implements error.
func (m *MultiError) Error() string {
	var b strings.Builder
	b.WriteString("multiple activity errors:")
	for _, e := range m.Errs {
		b.WriteString("\n\t")
		b.WriteString(e.Error())
	}
	return b.String()
}

// Unwrap exposes the aggregated errors to errors.Is/As.
func (m *MultiError) Unwrap() []error { return m.Errs }

// combineErrors flattens a list of possibly nil errors into nil, the single
// error, or a MultiError.
func combineErrors(errs ...error) error {
	var flat []error
	for _, e := range errs {
		if e == nil {
			continue
		}
		if m, ok := e.(*MultiError); ok {
			flat = append(flat, m.Errs...)
			continue
		}
		flat = append(flat, e)
	}
	switch len(flat) {
	case 0:
		return nil
	case 1:
		return flat[0]
	default:
		return &MultiError{Errs: flat}
	}
}
