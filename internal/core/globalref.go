package core

import (
	"fmt"
	"sync"
)

// GlobalRef is a reference to an object living at a particular place —
// X10's GlobalRef[T]. It can be passed freely between places but can only
// be dereferenced at its home place; X10 enforces this statically, this
// runtime enforces it dynamically (Get panics elsewhere).
type GlobalRef[T any] struct {
	home Place
	id   uint64
}

// NewGlobalRef registers v at the current place and returns a portable
// reference to it.
func NewGlobalRef[T any](c *Ctx, v T) GlobalRef[T] {
	pl := c.pl
	pl.refMu.Lock()
	pl.refSeq++
	id := pl.refSeq
	pl.refs[id] = v
	pl.refMu.Unlock()
	return GlobalRef[T]{home: pl.id, id: id}
}

// Home returns the place the referenced object lives at.
func (r GlobalRef[T]) Home() Place { return r.home }

// Get dereferences the global reference. It panics when invoked at any
// place other than Home — the dynamic analogue of X10's place-type check.
func (r GlobalRef[T]) Get(c *Ctx) T {
	if c.pl.id != r.home {
		panic(fmt.Sprintf("core: GlobalRef homed at place %d dereferenced at place %d",
			r.home, c.pl.id))
	}
	c.pl.refMu.Lock()
	v, ok := c.pl.refs[r.id]
	c.pl.refMu.Unlock()
	if !ok {
		panic(fmt.Sprintf("core: GlobalRef %d at place %d was freed", r.id, r.home))
	}
	return v.(T)
}

// Free drops the registration, allowing the referent to be collected.
// (X10 relies on distributed GC; a manual release keeps this runtime
// simple.) Freeing at a place other than Home panics.
func (r GlobalRef[T]) Free(c *Ctx) {
	if c.pl.id != r.home {
		panic(fmt.Sprintf("core: GlobalRef homed at place %d freed at place %d", r.home, c.pl.id))
	}
	c.pl.refMu.Lock()
	delete(c.pl.refs, r.id)
	c.pl.refMu.Unlock()
}

// localRegistry backs PlaceLocal handles: one lazily initialized value per
// place per handle.
type localRegistry struct {
	mu      sync.Mutex
	nextID  uint64
	entries map[uint64]*localEntry
	places  int
}

type localEntry struct {
	init func(Place) any
	once []sync.Once
	vals []any
}

func newLocalRegistry(places int) *localRegistry {
	return &localRegistry{entries: make(map[uint64]*localEntry), places: places}
}

func (lr *localRegistry) register(init func(Place) any) uint64 {
	lr.mu.Lock()
	defer lr.mu.Unlock()
	lr.nextID++
	lr.entries[lr.nextID] = &localEntry{
		init: init,
		once: make([]sync.Once, lr.places),
		vals: make([]any, lr.places),
	}
	return lr.nextID
}

func (lr *localRegistry) get(id uint64, p Place) any {
	lr.mu.Lock()
	e, ok := lr.entries[id]
	lr.mu.Unlock()
	if !ok {
		panic(fmt.Sprintf("core: unknown PlaceLocal handle %d", id))
	}
	e.once[p].Do(func() { e.vals[p] = e.init(p) })
	return e.vals[p]
}

// PlaceLocal is a handle to per-place storage: the same handle resolves to
// an independent value at every place, created on first access by the init
// function. It is the idiom X10 programs use (via PlaceLocalHandle) to
// partition application data across places; in this runtime it is also the
// mechanism that keeps per-place state disjoint despite places sharing one
// address space.
type PlaceLocal[T any] struct {
	rt *Runtime
	id uint64
}

// NewPlaceLocal registers a place-local with the runtime. init runs at most
// once per place, on first access at that place.
func NewPlaceLocal[T any](rt *Runtime, init func(Place) T) PlaceLocal[T] {
	id := rt.locals.register(func(p Place) any { return init(p) })
	return PlaceLocal[T]{rt: rt, id: id}
}

// Get resolves the handle at the current place.
func (h PlaceLocal[T]) Get(c *Ctx) T {
	return h.rt.locals.get(h.id, c.pl.id).(T)
}

// At resolves the handle at an explicit place. It is intended for
// verification and result collection after a computation has quiesced;
// during the computation, access data at the place that owns it.
func (h PlaceLocal[T]) At(p Place) T {
	return h.rt.locals.get(h.id, p).(T)
}
