package core

import (
	"errors"
	"math/rand"
	"sync/atomic"
	"testing"
	"time"

	"apgas/internal/x10rt"
)

// Property-based tests for resilient finish: the same randomized
// async/at trees as finish_prop_test.go, but with a seed-chosen place
// killed mid-run. The oracle weakens from exact completion counts to
// the survivor guarantees the resilience protocol makes:
//
//   - the finish quiesces (no hang) and reports ErrPlaceDead when the
//     death touched it, nil when it did not;
//   - no more activities complete than the structural oracle allows;
//   - after adoption, no finish roots, proxies, or dense buffers remain
//     on or about surviving places;
//   - every surviving place's begun/completed activity ledger balances
//     (spawns lost toward the victim are forgiven by adoption, never
//     leaked as phantom credits on a survivor).

// killAtCount kills victim on the runtime's transport once the shared
// counter reaches threshold. Pre-kill execution cannot stall, so the
// threshold is always reached; the returned channel closes after the
// kill has been issued.
func killAtCount(rt *Runtime, victim Place, n *atomic.Int64, threshold int64) chan struct{} {
	done := make(chan struct{})
	pk := rt.Transport().(x10rt.PlaceKiller)
	go func() {
		defer close(done)
		for n.Load() < threshold {
			time.Sleep(20 * time.Microsecond)
		}
		_ = pk.KillPlace(int(victim))
	}()
	return done
}

// awaitDeathProcessed waits for the channel a NotifyPlaceDeath
// subscription closes — the runtime's signal that adoption finished.
func awaitDeathProcessed(t *testing.T, ch chan struct{}) {
	t.Helper()
	select {
	case <-ch:
	case <-time.After(30 * time.Second):
		t.Fatal("runtime never finished processing the place death")
	}
}

// acceptDeathErr passes a finish outcome that is either clean or the
// typed death report; anything else is a protocol violation.
func acceptDeathErr(t *testing.T, trial int, what string, err error) {
	t.Helper()
	if err != nil && !errors.Is(err, ErrPlaceDead) {
		t.Errorf("trial %d: %s: %v (want nil or ErrPlaceDead)", trial, what, err)
	}
}

// checkQuiescedSurvivors is checkQuiesced restricted to the live part
// of the runtime: state on or about dead places is the adoption
// protocol's to forget, not a leak.
func checkQuiescedSurvivors(t *testing.T, rt *Runtime) {
	t.Helper()
	settleTransport(rt)
	dead := make(map[Place]bool)
	for _, p := range rt.DeadPlaces() {
		dead[p] = true
	}
	for _, s := range rt.FinishStates() {
		if dead[s.Home] {
			continue
		}
		t.Errorf("leaked finish root on survivor: %+v", s)
	}
	for _, p := range rt.ProxyStates() {
		if dead[p.Place] || dead[p.Home] {
			continue
		}
		t.Errorf("leaked finish proxy on survivor: %+v", p)
	}
	for _, b := range rt.DenseBufferStates() {
		if dead[b.Place] || dead[b.Home] {
			continue
		}
		t.Errorf("leaked dense buffer on survivor: %+v", b)
	}
	for _, pc := range rt.PlaceActivityCounts() {
		if dead[pc.Place] {
			continue
		}
		if !pc.Balanced() {
			t.Errorf("survivor conservation violated at place %d: begun=%d completed=%d",
				pc.Place, pc.Begun, pc.Completed)
		}
	}
}

// TestPropResilientVectorTrees: random remote-hopping trees under the
// two vector patterns with a mid-run kill at a seed-chosen completion
// count. Both the unpromoted fast path (trees whose prefix is local)
// and the distributed vector protocol take the death.
func TestPropResilientVectorTrees(t *testing.T) {
	for _, pattern := range []Pattern{PatternDefault, PatternDense} {
		pattern := pattern
		t.Run(pattern.String(), func(t *testing.T) {
			for trial := 0; trial < propTrials(16); trial++ {
				rng := rand.New(rand.NewSource(int64(trial)*9973 + 101))
				places := propPlaces(rng)
				rt := newTestRuntime(t, places, func(c *Config) { c.PlacesPerHost = 3 })
				victim := Place(1 + rng.Intn(places-1))
				root, want := genTree(rng, 0, places, 3, false)
				killAt := rng.Int63n(want)

				deathDone := make(chan struct{})
				rt.NotifyPlaceDeath(func(Place) { close(deathDone) })
				var n atomic.Int64
				killed := killAtCount(rt, victim, &n, killAt)

				var ferr error
				runErr := rt.Run(func(ctx *Ctx) {
					ferr = ctx.FinishPragma(pattern, func(c *Ctx) {
						execPropTree(c, root, &n)
					})
				})
				<-killed
				awaitDeathProcessed(t, deathDone)

				acceptDeathErr(t, trial, "inner finish", ferr)
				acceptDeathErr(t, trial, "Run", runErr)
				if got := n.Load(); got > want {
					t.Errorf("trial %d (places=%d victim=%d): completed %d activities, oracle caps at %d",
						trial, places, victim, got, want)
				} else if got < killAt {
					t.Errorf("trial %d: only %d activities completed before the kill threshold %d",
						trial, got, killAt)
				}
				checkQuiescedSurvivors(t, rt)
			}
		})
	}
}

// TestPropResilientSPMD: the SPMD counter specialization under a kill —
// a random remote fan-out with nested finishes, the victim chosen from
// the fan-out targets so the death always intersects the pattern.
func TestPropResilientSPMD(t *testing.T) {
	for trial := 0; trial < propTrials(16); trial++ {
		rng := rand.New(rand.NewSource(int64(trial)*7547 + 211))
		places := propPlaces(rng)
		rt := newTestRuntime(t, places)
		var remotes []Place
		for p := 1; p < places; p++ {
			if rng.Intn(2) == 0 {
				remotes = append(remotes, Place(p))
			}
		}
		if len(remotes) == 0 {
			remotes = append(remotes, Place(1+rng.Intn(places-1)))
		}
		victim := remotes[rng.Intn(len(remotes))]
		inner := int64(rng.Intn(4))
		want := int64(len(remotes)) * (1 + inner)
		killAt := rng.Int63n(want)

		deathDone := make(chan struct{})
		rt.NotifyPlaceDeath(func(Place) { close(deathDone) })
		var n atomic.Int64
		killed := killAtCount(rt, victim, &n, killAt)

		var ferr error
		runErr := rt.Run(func(ctx *Ctx) {
			ferr = ctx.FinishPragma(PatternSPMD, func(c *Ctx) {
				for _, p := range remotes {
					c.AtAsync(p, func(cc *Ctx) {
						if inner > 0 {
							// Nested finishes may themselves take the death;
							// their error must be typed like the outer one.
							e := cc.Finish(func(ic *Ctx) {
								for i := int64(0); i < inner; i++ {
									ic.Async(func(*Ctx) { n.Add(1) })
								}
							})
							acceptDeathErr(t, trial, "nested finish", e)
						}
						n.Add(1)
					})
				}
			})
		})
		<-killed
		awaitDeathProcessed(t, deathDone)

		acceptDeathErr(t, trial, "SPMD finish", ferr)
		acceptDeathErr(t, trial, "Run", runErr)
		if got := n.Load(); got > want {
			t.Errorf("trial %d: completed %d activities, oracle caps at %d", trial, got, want)
		}
		checkQuiescedSurvivors(t, rt)
	}
}
