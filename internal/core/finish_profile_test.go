package core

import (
	"sync/atomic"
	"testing"
)

// These tests check that the finish-shape profiler classifies the §3.1
// example shapes into the patterns the paper assigns them — the dynamic
// analogue of "it correctly classifies the various occurrences of finish
// in our HPL code into instances of FINISH_SPMD, FINISH_ASYNC, and
// FINISH_HERE".

func profiled(t *testing.T, places int, body func(*Ctx)) FinishProfile {
	t.Helper()
	rt := newTestRuntime(t, places)
	var profile FinishProfile
	err := rt.Run(func(ctx *Ctx) {
		p, err := ctx.FinishProfiled(body)
		if err != nil {
			t.Errorf("profiled finish: %v", err)
		}
		profile = p
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return profile
}

func TestProfileRecommendsLocal(t *testing.T) {
	// finish for (i in 1..n) async S — FINISH_LOCAL.
	p := profiled(t, 4, func(c *Ctx) {
		for i := 0; i < 10; i++ {
			c.Async(func(*Ctx) {})
		}
	})
	if got := p.Recommend(); got != PatternLocal {
		t.Errorf("Recommend = %v, want FINISH_LOCAL (profile %+v)", got, p)
	}
	if p.Governed != 10 || p.HomeLocalSpawns != 10 {
		t.Errorf("profile counts wrong: %+v", p)
	}
}

func TestProfileRecommendsAsync(t *testing.T) {
	// finish at (p) async S — FINISH_ASYNC.
	p := profiled(t, 4, func(c *Ctx) {
		c.AtAsync(2, func(*Ctx) {})
	})
	if got := p.Recommend(); got != PatternAsync {
		t.Errorf("Recommend = %v, want FINISH_ASYNC (profile %+v)", got, p)
	}
	// A single local async is also FINISH_ASYNC.
	p2 := profiled(t, 4, func(c *Ctx) {
		c.Async(func(*Ctx) {})
	})
	if got := p2.Recommend(); got != PatternAsync {
		t.Errorf("local single: Recommend = %v, want FINISH_ASYNC", got)
	}
}

func TestProfileRecommendsHere(t *testing.T) {
	// h = here; finish at (p) async { S1; at (h) async S2 } — FINISH_HERE.
	p := profiled(t, 4, func(c *Ctx) {
		home := c.Place()
		for q := 1; q < 4; q++ {
			c.AtAsync(Place(q), func(cc *Ctx) {
				cc.AtAsync(home, func(*Ctx) {})
			})
		}
	})
	if got := p.Recommend(); got != PatternHere {
		t.Errorf("Recommend = %v, want FINISH_HERE (profile %+v)", got, p)
	}
}

func TestProfileRecommendsSPMD(t *testing.T) {
	// finish for (p in places) at (p) async finish S — FINISH_SPMD. The
	// nested finish hides the inner spawns from the outer profile.
	var n atomic.Int64
	p := profiled(t, 6, func(c *Ctx) {
		for _, q := range c.Places() {
			c.AtAsync(q, func(cc *Ctx) {
				if err := cc.Finish(func(c3 *Ctx) {
					c3.Async(func(*Ctx) { n.Add(1) })
				}); err != nil {
					t.Errorf("nested: %v", err)
				}
			})
		}
	})
	if got := p.Recommend(); got != PatternSPMD {
		t.Errorf("Recommend = %v, want FINISH_SPMD (profile %+v)", got, p)
	}
	if n.Load() != 6 {
		t.Errorf("nested work ran %d times", n.Load())
	}
}

func TestProfileRecommendsDense(t *testing.T) {
	// Direct communication between any two places — FINISH_DENSE.
	p := profiled(t, 6, func(c *Ctx) {
		for _, q := range c.Places() {
			c.AtAsync(q, func(cc *Ctx) {
				for _, r := range cc.Places() {
					if r != cc.Place() {
						cc.AtAsync(r, func(*Ctx) {})
					}
				}
			})
		}
	})
	if got := p.Recommend(); got != PatternDense {
		t.Errorf("Recommend = %v, want FINISH_DENSE (profile %+v)", got, p)
	}
}

func TestProfileRecommendsDefaultForMixedShapes(t *testing.T) {
	// A shape no specialization covers: remote activities spawn locally
	// under the same finish (so not SPMD) from only one remote place (so
	// not dense).
	p := profiled(t, 4, func(c *Ctx) {
		c.AtAsync(1, func(cc *Ctx) {
			cc.Async(func(*Ctx) {})
			cc.Async(func(*Ctx) {})
		})
	})
	if got := p.Recommend(); got != PatternDefault {
		t.Errorf("Recommend = %v, want FINISH_DEFAULT (profile %+v)", got, p)
	}
}

// TestProfiledRecommendationIsExecutable: the recommended pragma must run
// the same body correctly — the profile-guided selection loop end to end.
func TestProfiledRecommendationIsExecutable(t *testing.T) {
	rt := newTestRuntime(t, 6)
	var count atomic.Int64
	body := func(c *Ctx) {
		for _, q := range c.Places() {
			c.AtAsync(q, func(*Ctx) { count.Add(1) })
		}
	}
	err := rt.Run(func(ctx *Ctx) {
		profile, err := ctx.FinishProfiled(body)
		if err != nil {
			t.Errorf("profiled: %v", err)
		}
		rec := profile.Recommend()
		if rec != PatternSPMD {
			t.Errorf("recommendation = %v, want FINISH_SPMD", rec)
		}
		if err := ctx.FinishPragma(rec, body); err != nil {
			t.Errorf("recommended pragma run: %v", err)
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if count.Load() != 12 {
		t.Errorf("count = %d, want 12", count.Load())
	}
}

// TestHPLShapesClassification replays the communication shapes the paper
// says its analysis found in HPL: row swaps (a put + the implicit panel
// exchange) classify as FINISH_ASYNC, row fetches as FINISH_HERE, and the
// SPMD driver as FINISH_SPMD.
func TestHPLShapesClassification(t *testing.T) {
	// "Put": one asynchronous copy to a remote place.
	put := profiled(t, 4, func(c *Ctx) {
		c.AtDirect(2, 1024, func(*Ctx) {})
	})
	if got := put.Recommend(); got != PatternAsync {
		t.Errorf("put shape: %v, want FINISH_ASYNC", got)
	}
	// "Get": request goes out, data comes back.
	get := profiled(t, 4, func(c *Ctx) {
		home := c.Place()
		c.AtDirect(3, 16, func(cc *Ctx) {
			cc.AtDirect(home, 1024, func(*Ctx) {})
		})
	})
	if got := get.Recommend(); got != PatternHere {
		t.Errorf("get shape: %v, want FINISH_HERE", got)
	}
	// The driver: one activity per place, inner work in nested finishes.
	driver := profiled(t, 4, func(c *Ctx) {
		for _, q := range c.Places() {
			c.AtAsync(q, func(cc *Ctx) {
				_ = cc.Finish(func(c3 *Ctx) { c3.Async(func(*Ctx) {}) })
			})
		}
	})
	if got := driver.Recommend(); got != PatternSPMD {
		t.Errorf("driver shape: %v, want FINISH_SPMD", got)
	}
}
