package core

import (
	"context"
	"fmt"
	"sync"

	"apgas/internal/obs"
)

// Pattern selects a finish implementation. The X10 runtime of the paper
// picks these through programmer-supplied pragmas (a prototype compiler
// analysis could infer them); here the pattern is an explicit argument to
// FinishPragma. PatternDefault is the fully general algorithm, with the
// dynamic local->distributed promotion described in §3.1.
type Pattern uint8

const (
	// PatternDefault is the general algorithm: it optimistically assumes
	// the finish is local (a plain counter) and switches to the
	// distributed cumulative-vector protocol the first time a governed
	// activity executes an at. It handles arbitrary nesting of async and
	// at. Space at the root is O(n^2) in the number of places involved.
	PatternDefault Pattern = iota

	// PatternAsync (FINISH_ASYNC) governs a single activity, possibly
	// remote: `finish at (p) async S`. Termination needs at most one
	// control message.
	PatternAsync

	// PatternHere (FINISH_HERE) governs a round trip: an activity is sent
	// to a remote place and sends exactly one activity back home. The
	// termination token travels with the messages; the remote side sends
	// no control traffic at all. This is the "puts a request, awaits the
	// response" shape used for steal attempts in UTS.
	PatternHere

	// PatternLocal (FINISH_LOCAL) governs activities that never leave the
	// place: a plain atomic counter with no control messages.
	PatternLocal

	// PatternSPMD (FINISH_SPMD) governs remote activities that do not
	// spawn subactivities outside of a nested finish:
	// `finish for (p in places) at (p) async finish S`. The root waits
	// for exactly n completion messages; their order, source and content
	// are irrelevant.
	PatternSPMD

	// PatternDense (FINISH_DENSE) is the general cumulative-vector
	// protocol with software routing: control messages from place p are
	// routed through the master places p-p%b and root-root%b (b = places
	// per host), shaping the irregular control traffic into a low
	// out-degree pattern the interconnect handles well. Use it for
	// finishes governing dense or irregular communication graphs, such
	// as the root finish of distributed work stealing.
	PatternDense

	numPatterns
)

// String names the pattern as in the paper.
func (p Pattern) String() string {
	switch p {
	case PatternDefault:
		return "FINISH_DEFAULT"
	case PatternAsync:
		return "FINISH_ASYNC"
	case PatternHere:
		return "FINISH_HERE"
	case PatternLocal:
		return "FINISH_LOCAL"
	case PatternSPMD:
		return "FINISH_SPMD"
	case PatternDense:
		return "FINISH_DENSE"
	default:
		return fmt.Sprintf("Pattern(%d)", uint8(p))
	}
}

// finishID names a finish instance globally: the place its root activity
// runs at plus a home-local sequence number.
type finishID struct {
	Home Place
	Seq  uint64
}

// finRef is the handle activities carry to their governing finish.
type finRef struct {
	ID      finishID
	Pattern Pattern
	// Span is the trace span id (obs.Tracer lane) of the finish, 0 when
	// tracing is off. Activities record it as their span parent so a
	// post-run pass can rebuild the finish tree.
	Span uint64
}

func (r finRef) valid() bool { return r.Pattern < numPatterns && r.ID.Seq != 0 }

// finEvent kinds. Events are raised by the activity machinery (ctx.go) and
// dispatched either to the root finish object (at the home place) or to the
// per-place proxy of the distributed protocols.
type finEventKind uint8

const (
	// evLocalSpawn: an activity was spawned at this place (other unused).
	evLocalSpawn finEventKind = iota
	// evRemoteSpawn: a spawn message is about to leave for place other.
	evRemoteSpawn
	// evRemoteBegin: a spawn message from place other arrived here.
	evRemoteBegin
	// evTerminate: an activity finished here (err may be non-nil).
	evTerminate
)

// rootFinish is a finish root: the state at the home place that the
// root activity blocks on.
type rootFinish interface {
	// event processes a local event at the home place.
	event(kind finEventKind, other Place, err error)
	// ctl processes a control message from a remote place.
	ctl(src Place, payload any)
	// wait blocks (cooperatively) until quiescence and returns the
	// combined error of governed activities.
	wait(pl *place) error
	// state returns a point-in-time diagnostic view (see debug.go).
	state() FinishState
	// placeDeath forgives place p's credit provenance and re-tests
	// termination; an ErrPlaceDead is recorded if the finish had touched
	// p (see resilient.go).
	placeDeath(p Place)
	// forceFire aborts the finish because its own home place p died: the
	// waiter fires with ErrPlaceDead so a blocked root activity unwinds.
	forceFire(p Place)
	// compensateSpawn undoes one counted remote spawn toward dst that
	// the transport refused (dst died in the window between the
	// evRemoteSpawn event and the send), recording err.
	compensateSpawn(dst Place, err error)
	// addError records err without touching any counters (a spawn
	// rejected before it was ever counted).
	addError(err error)
}

// Finish runs body in the current activity and then blocks until every
// activity transitively spawned by body — at any place — has terminated
// (X10's finish S). It uses the general PatternDefault algorithm and
// returns the combined error of any governed activities (and of body
// itself) that panicked.
func (c *Ctx) Finish(body func(*Ctx)) error {
	return c.FinishPragma(PatternDefault, body)
}

// FinishPragma is Finish with an explicit implementation-selection pragma,
// mirroring X10's @Pragma(Pragma.FINISH_*) annotations (§3.1). The chosen
// pattern must match how body actually spawns; with Config.CheckPatterns
// enabled, contract violations panic.
func (c *Ctx) FinishPragma(p Pattern, body func(*Ctx)) error {
	pl := c.pl
	id := finishID{Home: pl.id, Seq: pl.finSeq.Add(1)}
	ref := finRef{ID: id, Pattern: p}

	// Observability: one span per finish (begin at entry, end at
	// quiescence) plus per-pattern count and latency metrics. The span id
	// is allocated up front and travels inside finRef so every governed
	// activity — local or remote — records this finish as its span
	// parent, and the finish itself hangs under the enclosing scope.
	tr := c.rt.tracer
	m := c.rt.m
	var t0 int64
	var wall int64
	if tr != nil {
		t0 = tr.Now()
		ref.Span = tr.NextID()
	} else if m != nil {
		wall = c.rt.now()
	}

	var root rootFinish
	switch p {
	case PatternDefault:
		root = newDefaultRoot(c.rt, ref, false)
	case PatternDense:
		root = newDefaultRoot(c.rt, ref, true)
	case PatternAsync:
		root = newCounterRoot(c.rt, ref, counterAsync)
	case PatternHere:
		root = newCounterRoot(c.rt, ref, counterHere)
	case PatternLocal:
		root = newCounterRoot(c.rt, ref, counterLocal)
	case PatternSPMD:
		root = newCounterRoot(c.rt, ref, counterSPMD)
	default:
		panic(fmt.Sprintf("core: unknown finish pattern %v", p))
	}

	pl.finMu.Lock()
	pl.roots[id] = root
	pl.finMu.Unlock()

	if f := c.rt.fids; f != nil {
		c.rt.flight.Record1(f.finishName[p], f.catFinish, 'B', int(pl.id), 0, 0,
			f.kSeq, int64(id.Seq))
	}

	// Causal registry (distributed tracing only): the finish scope
	// itself is a link in stall chains, keyed by its own id so a stalled
	// root's chain starts at the finish span. The nil guard sits at the
	// call site so the name concatenation doesn't allocate when the
	// registry is off.
	if c.rt.causal != nil {
		c.rt.causal.add(CausalSpan{Span: ref.Span, Parent: c.span, Name: "finish." + p.metricKey(),
			Place: pl.id, Src: pl.id, Home: id.Home, Seq: id.Seq, Start: t0})
	}

	// The body runs in the current activity with the new finish
	// installed as governing scope for its spawns. The finish span also
	// becomes the body's tracing scope, so nested finishes and extension
	// spans (GLB steals) opened by the body attach under it.
	inner := &Ctx{rt: c.rt, pl: pl, fin: ref, span: ref.Span}
	// With profiling on, the body runs with the pattern label switched
	// to the new finish's pattern (place/kind/app stay inherited), so
	// CPU burned directly in a finish body — not in a spawned activity —
	// is attributed to the pattern that governs it.
	var bodyErr error
	if pr := c.rt.prof; pr != nil {
		bodyErr = pr.RunPattern(c.profCtx, p.metricKey(), func(pc context.Context) error {
			inner.profCtx = pc
			return runBody(inner, body)
		})
	} else {
		bodyErr = runBody(inner, body)
	}

	err := root.wait(pl)

	pl.finMu.Lock()
	delete(pl.roots, id)
	pl.finMu.Unlock()

	if f := c.rt.fids; f != nil {
		c.rt.flight.Record1(f.finishName[p], f.catFinish, 'E', int(pl.id), 0, 0,
			f.kSeq, int64(id.Seq))
	}
	if tr != nil {
		tr.CompleteEdge("finish."+p.metricKey(), "finish", int(pl.id), ref.Span, t0,
			c.span, obs.EdgeChild)
	}
	c.rt.causal.retire(ref.Span)
	if m != nil {
		var us uint64
		if tr != nil {
			us = uint64((tr.Now() - t0) / 1e3)
		} else {
			us = uint64((c.rt.now() - wall) / 1e3)
		}
		m.finishCount[p].Inc()
		m.finishUs[p].Observe(us)
		if pm := pl.pm; pm != nil {
			pm.finishCount[p].Inc()
			pm.finishUs[p].Observe(us)
		}
	}

	return combineErrors(bodyErr, err)
}

// finEvent dispatches an activity life-cycle event to the governing finish
// machinery: directly to the root when raised at the home place, otherwise
// to the per-place proxy of the distributed protocol. ctx is the activity
// raising the event; it is nil for evRemoteBegin (the activity does not
// exist yet at arrival time).
//
// It reports whether the event reached live finish machinery; false means
// the finish was orphaned by a place death (see dispatchFinEvent) and the
// caller must skip the spawn the event would have authorized. Terminations
// always return through the accounting below even when orphaned: their
// begin was counted, so their completion must be too, keeping the
// survivor-restricted conservation oracle exact.
func (rt *Runtime) finEvent(fin finRef, pl *place, kind finEventKind, other Place, err error, ctx *Ctx) bool {
	if !fin.valid() {
		panic("core: activity has no governing finish")
	}
	delivered := rt.dispatchFinEvent(fin, pl, kind, other, err, ctx)
	// Conservation accounting: every governed activity is counted exactly
	// once as spawned (at its spawn site) and once as completed (at its
	// termination site). evRemoteBegin is the same activity as the
	// matching evRemoteSpawn and is deliberately not counted globally; it
	// is what begins the activity at its executing place, so it is what
	// the per-place begun counter tracks. Spawn-kind events count only
	// when delivered (an undelivered spawn event means no activity ever
	// runs); terminations raised at a live place always count.
	switch kind {
	case evLocalSpawn, evRemoteSpawn:
		if delivered {
			rt.acts[fin.Pattern].spawned.Add(1)
		}
	case evTerminate:
		if delivered || !rt.PlaceDead(pl.id) {
			rt.acts[fin.Pattern].completed.Add(1)
			rt.placeActs[pl.id].completed.Add(1)
		}
	}
	if delivered && (kind == evLocalSpawn || kind == evRemoteBegin) {
		rt.placeActs[pl.id].begun.Add(1)
	}
	return delivered
}

// panic-message helpers shared by the dispatch paths (finish.go and
// resilient.go keep identical diagnostics).
func unknownFinishPanic(kind finEventKind, fin finRef) string {
	return fmt.Sprintf("core: %v event for unknown finish %+v at home", kind, fin)
}

func localEscapedPanic(fin finRef, pl *place) string {
	return fmt.Sprintf("core: FINISH_LOCAL governed activity reached place %d (home %d)",
		pl.id, fin.ID.Home)
}

func badPatternPanic(fin finRef) string {
	return fmt.Sprintf("core: bad pattern %v", fin.Pattern)
}

func panicSendFailure(src, dst Place, err error) {
	panic(fmt.Sprintf("core: transport send %d->%d: %v", src, dst, err))
}

// onFinishCtl is the transport handler for finish-protocol control traffic.
func (rt *Runtime) onFinishCtl(src, dst int, payload any) {
	pl := rt.places[dst]
	if m := rt.m; m != nil {
		m.ctlRecv.Inc()
	}
	if pm := pl.pm; pm != nil {
		pm.ctlRecv.Inc()
	}
	if f := rt.fids; f != nil {
		if name := f.ctlFlightName(payload); name != 0 {
			rt.flight.Record1(name, f.catFinish, 'i', dst, 0, 0, f.kSrc, int64(src))
		}
	}
	if tr := rt.tracer; tr != nil {
		// Termination credits (counter-pattern ctlDone, cumulative
		// snapshots) are the edges of the quiescence wait; routed and
		// cleanup traffic is bookkeeping.
		edge := obs.EdgeNone
		switch payload.(type) {
		case ctlDone, ctlSnapshot:
			edge = obs.EdgeCredit
		}
		tr.InstantEdge("finish.ctl", "finish", dst, 0, edge,
			obs.Arg{Key: "src", Val: int64(src)})
		// Distributed tracing: land the flow-end on the place's control
		// lane, linking the sender's 's' to this arrival.
		tr.RecvCtx(ctlTC(payload), "flow.ctl", "finish", dst, 0,
			obs.Arg{Key: "src", Val: int64(src)})
	}
	switch m := payload.(type) {
	case ctlRouted:
		rt.routeDense(pl, m)
	case ctlCleanup:
		pl.finMu.Lock()
		delete(pl.proxies, m.ID)
		pl.finMu.Unlock()
	default:
		id := ctlFinishID(payload)
		pl.finMu.Lock()
		root, ok := pl.roots[id]
		pl.finMu.Unlock()
		if !ok {
			// A token-neutral error report (FINISH_HERE, N == 0) may race
			// with root completion when an activity panics after passing
			// its token home; the finish has already succeeded, so the
			// straggler is dropped. Likewise a cumulative snapshot: the
			// vector protocol completes on reconciled totals, so a
			// snapshot overtaken by a newer epoch (network reordering or
			// chaos-injected delay) can trail in after the root is gone
			// and is stale by construction. Anything else is a protocol
			// bug: counter-pattern credits (ctlDone, N != 0) are never
			// reissued, so losing their root means losing tokens.
			if d, isDone := payload.(ctlDone); isDone && d.N == 0 {
				return
			}
			if s, isSnap := payload.(ctlSnapshot); isSnap {
				// Under a place death, the sender may be a proxy that an
				// in-flight spawn re-created after the force-terminated
				// root's cleanup burst; answer with another cleanup so the
				// straggler state is reaped instead of leaking.
				if rt.anyDeath() {
					rt.reapProxy(pl.id, id, s.From)
				}
				return
			}
			if rt.anyDeath() {
				// After a place death a root can fire early on forgiven
				// credit (or force-fire entirely) and deregister while
				// token-bearing credits are still in flight; the tokens
				// were already returned by forgiveness, so the straggler
				// is dropped rather than treated as a protocol bug.
				return
			}
			panic(fmt.Sprintf("core: control message %T for unknown finish %+v at place %d",
				payload, id, dst))
		}
		root.ctl(Place(src), payload)
	}
}

// control message payloads ---------------------------------------------

// ctlSnapshot is the cumulative quiescence report of the vector protocol
// (PatternDefault after promotion, PatternDense): sent by a place when its
// last live governed activity terminates.
type ctlSnapshot struct {
	ID    finishID
	From  Place
	Epoch uint64
	// Recv is the cumulative count of remote activities begun at From.
	Recv uint64
	// Local is the cumulative count of local spawns performed at From
	// under this finish. It plays no role in termination detection; the
	// finish-shape profiler (FinishProfiled) consumes it.
	Local uint64
	// Sent maps destination place to the cumulative count of remote
	// spawns From has performed under this finish.
	Sent map[Place]uint64
	// RecvFrom maps source place to the cumulative count of remote
	// activities begun at From per sender — Recv broken out by origin.
	// The fault-free termination check only needs the aggregate Recv;
	// the resilient check needs per-source provenance so a dead place's
	// sends and receives can be excluded exactly (see resilient.go).
	RecvFrom map[Place]uint64
	// Errs is the cumulative list of activity errors collected at From.
	Errs []error
	// TC is the distributed trace context stamped on the message that
	// carried this snapshot directly (non-dense routing); snapshots
	// travelling inside a ctlRouted envelope leave it zero and the
	// envelope carries the per-hop context instead.
	TC obs.SpanContext
}

// ctlRouted wraps snapshots for FINISH_DENSE software routing. Stage 0
// messages travel place->master(src); stage 1 master(src)->master(home);
// stage 2 master(home)->home, where they are applied.
type ctlRouted struct {
	ID    finishID
	Snaps []ctlSnapshot
	// Hops is the remaining route; Hops[0] is the place currently
	// processing the message.
	Hops []Place
	// Flush marks a master's self-addressed coalescing marker: forward
	// everything buffered for (ID, Hops[1:]) now.
	Flush bool
	// TC is the per-hop distributed trace context: each forward is its
	// own message and gets a fresh context at the forwarding place.
	TC obs.SpanContext
}

// ctlDone reports remote activity completions for the counter-based
// patterns (FINISH_ASYNC, FINISH_SPMD, and FINISH_HERE token releases).
type ctlDone struct {
	ID  finishID
	N   int
	Err error
	// TC is the distributed trace context of the completing place.
	TC obs.SpanContext
}

// ctlCleanup tells a place to drop its proxy state for a finished finish.
type ctlCleanup struct {
	ID finishID
	// TC is the distributed trace context of the cleanup burst.
	TC obs.SpanContext
}

// ctlTC extracts the distributed trace context of a control payload
// (zero when the sender had tracing off).
func ctlTC(payload any) obs.SpanContext {
	switch m := payload.(type) {
	case ctlSnapshot:
		return m.TC
	case ctlDone:
		return m.TC
	case ctlRouted:
		return m.TC
	case ctlCleanup:
		return m.TC
	default:
		return obs.SpanContext{}
	}
}

func ctlFinishID(payload any) finishID {
	switch m := payload.(type) {
	case ctlSnapshot:
		return m.ID
	case ctlDone:
		return m.ID
	case ctlRouted:
		return m.ID
	case ctlCleanup:
		return m.ID
	default:
		panic(fmt.Sprintf("core: unknown control payload %T", payload))
	}
}

// waiter is a one-shot completion latch shared by the root implementations.
type waiter struct {
	mu      sync.Mutex
	done    bool
	ch      chan struct{}
	errs    []error
	waiting bool
}

func newWaiter() *waiter { return &waiter{ch: make(chan struct{})} }

// fire marks completion; idempotent.
func (w *waiter) fire() {
	if !w.done {
		w.done = true
		close(w.ch)
	}
}

// block waits cooperatively (releasing the place's scheduler slot).
func (w *waiter) block(pl *place) error {
	w.mu.Lock()
	w.waiting = true
	done := w.done
	w.mu.Unlock()
	if !done {
		pl.sched.Blocking(func() { <-w.ch })
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	return combineErrors(w.errs...)
}

// estimated wire sizes for control messages (for bandwidth accounting).
func snapshotBytes(s ctlSnapshot) int {
	return 32 + 16*len(s.Sent) + 16*len(s.RecvFrom) + 16*len(s.Errs)
}

const ctlDoneBytes = 24
