package core

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"apgas/internal/x10rt"
)

// killableRuntime builds a runtime over a ChanTransport (the only
// in-process transport with KillPlace) with pattern checks on.
func killableRuntime(t *testing.T, places int) (*Runtime, *x10rt.ChanTransport) {
	t.Helper()
	tr, err := x10rt.NewChanTransport(x10rt.ChanOptions{Places: places})
	if err != nil {
		t.Fatalf("NewChanTransport: %v", err)
	}
	rt, err := NewRuntime(Config{Places: places, Transport: tr, OwnTransport: true,
		CheckPatterns: true})
	if err != nil {
		t.Fatalf("NewRuntime: %v", err)
	}
	return rt, tr
}

// kill severs place p and waits until the runtime has processed the death.
func kill(t *testing.T, rt *Runtime, tr *x10rt.ChanTransport, p Place) {
	t.Helper()
	if err := tr.KillPlace(int(p)); err != nil {
		t.Fatalf("KillPlace(%d): %v", p, err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for !rt.PlaceDead(p) {
		if time.Now().After(deadline) {
			t.Fatalf("runtime never observed death of place %d", p)
		}
		time.Sleep(time.Millisecond)
	}
}

// runWithTimeout guards against the exact failure mode under test: a
// finish that hangs instead of surfacing the death.
func runWithTimeout(t *testing.T, rt *Runtime, main func(*Ctx)) error {
	t.Helper()
	done := make(chan error, 1)
	go func() { done <- rt.Run(main) }()
	select {
	case err := <-done:
		return err
	case <-time.After(30 * time.Second):
		t.Fatal("Run did not quiesce after place death (finish wedged)")
		return nil
	}
}

// TestSpawnToDeadPlaceFailsFast: a spawn toward a pre-killed place
// surfaces ErrPlaceDead on the governing finish without hanging.
func TestSpawnToDeadPlaceFailsFast(t *testing.T) {
	for _, pattern := range []Pattern{PatternDefault, PatternDense, PatternAsync, PatternSPMD} {
		t.Run(pattern.String(), func(t *testing.T) {
			rt, tr := killableRuntime(t, 4)
			defer rt.Close()
			err := runWithTimeout(t, rt, func(ctx *Ctx) {
				kill(t, rt, tr, 2)
				ferr := ctx.FinishPragma(pattern, func(c *Ctx) {
					c.AtAsync(2, func(*Ctx) { t.Error("activity ran at dead place") })
				})
				if !errors.Is(ferr, ErrPlaceDead) {
					t.Errorf("finish error = %v, want ErrPlaceDead", ferr)
				}
			})
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
		})
	}
}

// TestMidFlightKillQuiesces: a place dies while holding live governed
// activities; the finish quiesces with ErrPlaceDead instead of waiting
// forever for credits from the victim.
func TestMidFlightKillQuiesces(t *testing.T) {
	for _, pattern := range []Pattern{PatternDefault, PatternDense, PatternSPMD} {
		t.Run(pattern.String(), func(t *testing.T) {
			rt, tr := killableRuntime(t, 4)
			defer rt.Close()
			started := make(chan struct{})
			release := make(chan struct{})
			err := runWithTimeout(t, rt, func(ctx *Ctx) {
				ferr := ctx.FinishPragma(pattern, func(c *Ctx) {
					c.AtAsync(2, func(cc *Ctx) {
						body := func(*Ctx) {
							close(started)
							<-release
						}
						if pattern == PatternSPMD {
							// SPMD remotes wrap nested work in a finish.
							_ = cc.Finish(func(ccc *Ctx) { ccc.Async(body) })
						} else {
							cc.Async(body)
						}
					})
					<-started
					kill(t, rt, tr, 2)
					close(release)
				})
				if !errors.Is(ferr, ErrPlaceDead) {
					t.Errorf("finish error = %v, want ErrPlaceDead", ferr)
				}
			})
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
		})
	}
}

// TestHereKillQuiesces: the FINISH_HERE round-trip partner dies before
// sending the response; the token it carried is forgiven.
func TestHereKillQuiesces(t *testing.T) {
	rt, tr := killableRuntime(t, 4)
	defer rt.Close()
	arrived := make(chan struct{})
	release := make(chan struct{})
	err := runWithTimeout(t, rt, func(ctx *Ctx) {
		ferr := ctx.FinishPragma(PatternHere, func(c *Ctx) {
			home := c.Place()
			c.AtAsync(2, func(cc *Ctx) {
				close(arrived)
				<-release
				// The response the protocol expects; the place is dead by
				// now, so the send is dropped by the transport.
				cc.AtAsync(home, func(*Ctx) {})
			})
			<-arrived
			kill(t, rt, tr, 2)
			close(release)
		})
		if !errors.Is(ferr, ErrPlaceDead) {
			t.Errorf("finish error = %v, want ErrPlaceDead", ferr)
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}

// TestUntouchedFinishUnaffected: a finish whose activities never involve
// the victim completes cleanly, with no spurious ErrPlaceDead.
func TestUntouchedFinishUnaffected(t *testing.T) {
	rt, tr := killableRuntime(t, 4)
	defer rt.Close()
	var ran atomic.Int64
	err := runWithTimeout(t, rt, func(ctx *Ctx) {
		kill(t, rt, tr, 3)
		ferr := ctx.Finish(func(c *Ctx) {
			for p := Place(0); p < 3; p++ {
				c.AtAsync(p, func(*Ctx) { ran.Add(1) })
			}
		})
		if ferr != nil {
			t.Errorf("untouched finish error = %v, want nil", ferr)
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if got := ran.Load(); got != 3 {
		t.Fatalf("ran %d activities, want 3", got)
	}
}

// TestSurvivorConservation: after a kill, every surviving place's
// begun/completed pair balances even though the global per-pattern
// totals no longer do.
func TestSurvivorConservation(t *testing.T) {
	rt, tr := killableRuntime(t, 4)
	defer rt.Close()
	err := runWithTimeout(t, rt, func(ctx *Ctx) {
		_ = ctx.Finish(func(c *Ctx) {
			for p := Place(1); p < 4; p++ {
				c.AtAsync(p, func(cc *Ctx) {
					cc.Async(func(*Ctx) {})
				})
			}
		})
		kill(t, rt, tr, 2)
		_ = ctx.Finish(func(c *Ctx) {
			for p := Place(0); p < 4; p++ {
				c.AtAsync(p, func(*Ctx) {})
			}
		})
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for _, pc := range rt.PlaceActivityCounts() {
		if rt.PlaceDead(pc.Place) {
			continue
		}
		if !pc.Balanced() {
			t.Errorf("place %d: begun=%d completed=%d", pc.Place, pc.Begun, pc.Completed)
		}
	}
}

// TestPlaceDeathIdempotent: repeated death reports collapse to one
// adoption pass and one subscriber notification.
func TestPlaceDeathIdempotent(t *testing.T) {
	rt, _ := killableRuntime(t, 4)
	defer rt.Close()
	var calls atomic.Int64
	rt.NotifyPlaceDeath(func(Place) { calls.Add(1) })
	rt.PlaceDeath(2)
	rt.PlaceDeath(2)
	rt.PlaceDeath(2)
	if got := calls.Load(); got != 1 {
		t.Fatalf("death subscriber called %d times, want 1", got)
	}
	if got := rt.DeadPlaces(); len(got) != 1 || got[0] != 2 {
		t.Fatalf("DeadPlaces = %v, want [2]", got)
	}
}
