package core

import (
	"sync/atomic"
	"testing"
)

func TestClockedAsyncLocal(t *testing.T) {
	rt := newTestRuntime(t, 1, func(c *Config) { c.WorkersPerPlace = 4 })
	err := rt.Run(func(ctx *Ctx) {
		ck := NewClock(ctx)
		var phase1 atomic.Int64
		err := ctx.Finish(func(c *Ctx) {
			for i := 0; i < 3; i++ {
				c.ClockedAsync(ck, func(cc *Ctx) {
					phase1.Add(1)
					ck.Advance(cc)
					// After the barrier, all three increments are visible.
					if got := phase1.Load(); got != 3 {
						t.Errorf("after advance: %d", got)
					}
				})
			}
			ck.Drop(c)
		})
		if err != nil {
			t.Errorf("finish: %v", err)
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestClockHome(t *testing.T) {
	rt := newTestRuntime(t, 3)
	err := rt.Run(func(ctx *Ctx) {
		ck := NewClock(ctx)
		if ck.Home() != 0 {
			t.Errorf("Home = %d", ck.Home())
		}
		ck.Drop(ctx)
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestClockRegisterThenAdvance(t *testing.T) {
	// Registration is synchronous: a child registered before spawn is
	// always counted by the parent's next Advance.
	rt := newTestRuntime(t, 2)
	err := rt.Run(func(ctx *Ctx) {
		ck := NewClock(ctx)
		order := make(chan string, 4)
		err := ctx.Finish(func(c *Ctx) {
			c.ClockedAtAsync(ck, 1, func(cc *Ctx) {
				order <- "child-before"
				ck.Advance(cc)
				order <- "child-after"
			})
			order <- "parent-before"
			ck.Advance(c)
			order <- "parent-after"
			ck.Drop(c)
		})
		if err != nil {
			t.Errorf("finish: %v", err)
		}
		// Both "before" entries must precede both "after" entries: no
		// activity passes the barrier before both have arrived.
		seen := map[string]int{}
		for i := 0; i < 4; i++ {
			var s string
			ctx.Blocking(func() { s = <-order })
			seen[s] = i
		}
		if seen["parent-after"] < seen["child-before"] {
			t.Errorf("parent passed barrier before child arrived: %v", seen)
		}
		if seen["child-after"] < seen["parent-before"] {
			t.Errorf("child passed barrier before parent arrived: %v", seen)
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}

// TestClockedFinishIdiom runs the paper's §2.2 listing: one clocked
// activity per place, loop iterations synchronized by a global barrier.
func TestClockedFinishIdiom(t *testing.T) {
	rt := newTestRuntime(t, 4)
	const iters = 4
	err := rt.Run(func(ctx *Ctx) {
		var phase [4]atomic.Int64
		err := ctx.ClockedFinish(func(c *Ctx, ck *Clock) {
			for _, p := range c.Places() {
				p := p
				c.ClockedAtAsync(ck, p, func(cc *Ctx) {
					for i := 0; i < iters; i++ {
						phase[p].Store(int64(i))
						ck.Advance(cc) // global barrier, as in the listing
						for q := 0; q < 4; q++ {
							if d := int64(i) - phase[q].Load(); d > 0 {
								t.Errorf("iter %d: place %d lags at %d", i, q, phase[q].Load())
							}
						}
					}
				})
			}
		})
		if err != nil {
			t.Errorf("clocked finish: %v", err)
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}
