package core

// This file implements the finish-shape profiler behind FinishProfiled:
// the runtime realization of the paper's prototype "fully automatic
// compiler analysis ... capable of detecting many of the situations where
// these [specialized finish] patterns are applicable" (§3.1). X10's
// analysis was static; here the same classification runs on the dynamic
// communication shape recorded by one profiled execution, and its output
// is the pragma to pass to FinishPragma on subsequent runs — profile-
// guided implementation selection.

// FinishProfile summarizes the dynamic communication shape of one finish.
type FinishProfile struct {
	// Governed is the total number of activities the finish governed.
	Governed uint64
	// HomeRemoteSpawns counts remote spawns performed at the home place.
	HomeRemoteSpawns uint64
	// HomeLocalSpawns counts local spawns at the home place.
	HomeLocalSpawns uint64
	// ArrivalsAtHome counts remote activities that began at home.
	ArrivalsAtHome uint64
	// RemotePlaces is the number of non-home places that ran activities.
	RemotePlaces int
	// RemoteSpawnsToHome counts remote places' spawns targeting home.
	RemoteSpawnsToHome uint64
	// RemoteSpawnsElsewhere counts remote places' spawns to non-home
	// places.
	RemoteSpawnsElsewhere uint64
	// RemoteLocalSpawns counts local spawns at remote places.
	RemoteLocalSpawns uint64
	// SpawnerPlaces is the number of places (including home) that
	// performed at least one remote spawn.
	SpawnerPlaces int
}

// fillProfileLocked derives the profile from the root's final state;
// caller holds w.mu and the finish has terminated.
func (r *defaultRoot) fillProfileLocked() {
	p := r.profile
	p.HomeLocalSpawns = r.localHome
	p.ArrivalsAtHome = r.recvHome
	for _, n := range r.sentHome {
		p.HomeRemoteSpawns += n
	}
	p.RemotePlaces = len(r.snaps)
	if len(r.sentHome) > 0 {
		p.SpawnerPlaces = 1
	}
	home := r.ref.ID.Home
	for _, s := range r.snaps {
		p.RemoteLocalSpawns += s.Local
		if len(s.Sent) > 0 {
			p.SpawnerPlaces++
		}
		for q, n := range s.Sent {
			if q == home {
				p.RemoteSpawnsToHome += n
			} else {
				p.RemoteSpawnsElsewhere += n
			}
		}
		p.Governed += s.Recv + s.Local
	}
	p.Governed += r.localHome + r.recvHome
}

// Recommend returns the specialized finish pattern this shape admits, or
// PatternDefault when no specialization applies. The rules mirror the
// §3.1 catalogue:
//
//	no remote activity           -> FINISH_LOCAL
//	exactly one governed activity -> FINISH_ASYNC
//	pure round trips (every remote spawn returns home, nothing else)
//	                             -> FINISH_HERE
//	home-only fan-out, remote activities spawn nothing
//	                             -> FINISH_SPMD
//	many spawner places          -> FINISH_DENSE
func (p FinishProfile) Recommend() Pattern {
	remoteWork := p.HomeRemoteSpawns + p.RemoteSpawnsToHome + p.RemoteSpawnsElsewhere
	switch {
	case remoteWork == 0 && p.RemotePlaces == 0:
		if p.Governed == 1 {
			return PatternAsync
		}
		return PatternLocal
	case p.Governed == 1:
		return PatternAsync
	case p.RemoteSpawnsElsewhere == 0 && p.RemoteLocalSpawns == 0 &&
		p.RemoteSpawnsToHome > 0 && p.RemoteSpawnsToHome == p.HomeRemoteSpawns:
		// Every outbound request produced exactly one response home and
		// remote places did nothing else: the FINISH_HERE round trip.
		return PatternHere
	case p.RemoteSpawnsToHome == 0 && p.RemoteSpawnsElsewhere == 0 &&
		p.RemoteLocalSpawns == 0 && p.HomeRemoteSpawns > 0:
		// Flat fan-out from home; remote activities spawned nothing
		// under this finish (nested finishes are invisible here, as the
		// SPMD contract requires).
		return PatternSPMD
	case p.SpawnerPlaces >= 3:
		// Spawns originate from many places: an irregular or dense
		// communication graph — route the control traffic.
		return PatternDense
	default:
		return PatternDefault
	}
}

// FinishProfiled runs body under the general finish algorithm while
// recording its communication shape, returning the profile alongside the
// finish error. Use the profile's Recommend to select the pragma for
// subsequent executions of the same finish:
//
//	profile, err := ctx.FinishProfiled(body)
//	...
//	err = ctx.FinishPragma(profile.Recommend(), body) // later runs
func (c *Ctx) FinishProfiled(body func(*Ctx)) (FinishProfile, error) {
	pl := c.pl
	id := finishID{Home: pl.id, Seq: pl.finSeq.Add(1)}
	ref := finRef{ID: id, Pattern: PatternDefault}
	root := newDefaultRoot(c.rt, ref, false)
	var profile FinishProfile
	root.profile = &profile

	pl.finMu.Lock()
	pl.roots[id] = root
	pl.finMu.Unlock()

	// Profiled finishes record no span of their own; nested spans keep
	// attaching to the enclosing scope.
	inner := &Ctx{rt: c.rt, pl: pl, fin: ref, span: c.span}
	var bodyErr error
	func() {
		defer func() {
			if r := recover(); r != nil {
				bodyErr = toError(r)
			}
		}()
		body(inner)
	}()
	err := root.wait(pl)

	pl.finMu.Lock()
	delete(pl.roots, id)
	pl.finMu.Unlock()

	return profile, combineErrors(bodyErr, err)
}
