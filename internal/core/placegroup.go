package core

import (
	"fmt"

	"apgas/internal/obs"
)

// PlaceGroup is an ordered set of places, as provided by the X10
// PlaceGroup library of §3.2. Its Broadcast distributes an activity to
// every member using a spawning tree, parallelizing task-creation overhead
// and detecting completion with nested FINISH_SPMD blocks — the paper's
// scalable replacement for iterating sequentially over places.
type PlaceGroup struct {
	places []Place
}

// NewPlaceGroup builds a group from an explicit place list. The list must
// be non-empty and free of duplicates.
func NewPlaceGroup(places []Place) (PlaceGroup, error) {
	if len(places) == 0 {
		return PlaceGroup{}, fmt.Errorf("core: empty place group")
	}
	seen := make(map[Place]bool, len(places))
	for _, p := range places {
		if seen[p] {
			return PlaceGroup{}, fmt.Errorf("core: duplicate place %d in group", p)
		}
		seen[p] = true
	}
	ps := make([]Place, len(places))
	copy(ps, places)
	return PlaceGroup{places: ps}, nil
}

// WorldGroup returns the group of all places of the runtime.
func WorldGroup(rt *Runtime) PlaceGroup {
	ps := make([]Place, rt.NumPlaces())
	for i := range ps {
		ps[i] = Place(i)
	}
	return PlaceGroup{places: ps}
}

// Size returns the number of places in the group.
func (g PlaceGroup) Size() int { return len(g.places) }

// Places returns the group members in order.
func (g PlaceGroup) Places() []Place {
	out := make([]Place, len(g.places))
	copy(out, g.places)
	return out
}

// Contains reports membership.
func (g PlaceGroup) Contains(p Place) bool {
	for _, q := range g.places {
		if q == p {
			return true
		}
	}
	return false
}

// IndexOf returns the position of p in the group, or -1.
func (g PlaceGroup) IndexOf(p Place) int {
	for i, q := range g.places {
		if q == p {
			return i
		}
	}
	return -1
}

// Broadcast runs body once at every place of the group and returns when
// all of them have completed. Tasks fan out along a tree of arity
// Config.BroadcastArity rooted at the calling place (if it is a member;
// otherwise at the first member), and each internal tree node detects the
// completion of its subtree with a nested FINISH_SPMD — so completion
// control messages follow the tree edges instead of all converging on the
// root.
func (g PlaceGroup) Broadcast(c *Ctx, body func(*Ctx)) error {
	if len(g.places) == 0 {
		return fmt.Errorf("core: broadcast on empty group")
	}
	if tr := c.rt.tracer; tr != nil {
		defer tr.CompleteEdge("broadcast", "core", int(c.pl.id), tr.NextID(), tr.Now(),
			c.span, obs.EdgeChild, obs.Arg{Key: "places", Val: int64(len(g.places))})
	}
	arity := c.rt.cfg.BroadcastArity
	// Rotate the group so the tree root is the calling place when it is
	// a member; otherwise the first member hosts the root node.
	order := g.places
	i := g.IndexOf(c.pl.id)
	if i > 0 {
		order = make([]Place, len(g.places))
		for j := range g.places {
			order[j] = g.places[(i+j)%len(g.places)]
		}
	}
	if i >= 0 {
		return c.FinishPragma(PatternSPMD, func(ctx *Ctx) {
			broadcastSubtree(ctx, order, 0, len(order), arity, body)
		})
	}
	// Caller is outside the group: ship the tree root to the first member.
	return c.FinishPragma(PatternSPMD, func(ctx *Ctx) {
		ctx.AtAsync(order[0], func(child *Ctx) {
			if len(order) == 1 {
				body(child)
				return
			}
			if err := child.FinishPragma(PatternSPMD, func(cc *Ctx) {
				broadcastSubtree(cc, order, 0, len(order), arity, body)
			}); err != nil {
				panic(err)
			}
		})
	})
}

// SequentialBroadcast runs body at every place one after another from the
// calling activity — the naive idiom of §2.2 that Broadcast replaces. It
// exists for the scalable-broadcast ablation benchmark.
func (g PlaceGroup) SequentialBroadcast(c *Ctx, body func(*Ctx)) error {
	return c.Finish(func(ctx *Ctx) {
		for _, p := range g.places {
			ctx.AtAsync(p, body)
		}
	})
}

// broadcastSubtree runs body at order[lo] (the caller is already executing
// there or has spawned to there) and fans the remainder of the slice out to
// up to arity children, each of which handles its own contiguous subrange
// under a nested FINISH_SPMD.
func broadcastSubtree(ctx *Ctx, order []Place, lo, hi, arity int, body func(*Ctx)) {
	// Spawn children before doing local work so the tree expands in
	// parallel with body execution.
	n := hi - lo - 1 // places left after this node
	if n > 0 {
		chunk := (n + arity - 1) / arity
		for start := lo + 1; start < hi; start += chunk {
			end := start + chunk
			if end > hi {
				end = hi
			}
			s, e := start, end
			ctx.AtAsync(order[s], func(child *Ctx) {
				if e-s > 1 {
					// Internal node: its own SPMD finish governs the
					// subtree, so only one completion message travels
					// up this tree edge.
					err := child.FinishPragma(PatternSPMD, func(cc *Ctx) {
						broadcastSubtree(cc, order, s, e, arity, body)
					})
					if err != nil {
						panic(err)
					}
					return
				}
				body(child)
			})
		}
	}
	body(ctx)
}
