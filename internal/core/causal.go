package core

import (
	"sync"
)

// This file is the causal span registry behind the watchdog's stall
// chains: when distributed tracing is on, every live finish scope and
// activity registers who spawned it, from where, and under which
// finish, so a stall dump can print the cross-place chain of spans
// leading to the stuck activity instead of just naming the owing
// place. The registry exists only when the runtime's tracer has
// distributed tracing enabled (Tracer.DistEnabled); otherwise every
// hook is a nil-pointer check.

// CausalSpan is one link in a causal chain: a finish scope or activity
// span, where it ran, and where the message that started it came from.
type CausalSpan struct {
	// Span is the trace lane id (Event.Tid) of the scope.
	Span uint64
	// Parent is the Span of the scope that spawned this one (0 = root).
	Parent uint64
	// Name is the span name ("async", "finish.default", ...).
	Name string
	// Place is where the span ran.
	Place Place
	// Src is the place the spawning message came from (== Place for
	// local spawns).
	Src Place
	// Home and Seq identify the governing finish (the span's own id for
	// finish scopes).
	Home Place
	Seq  uint64
	// Start is the tracer-relative start timestamp in nanoseconds.
	Start int64
}

// causalRetired bounds the ring of completed spans kept for chain
// walks: ancestors of a live span are normally still live themselves
// (a finish cannot complete while a descendant is stuck), so the ring
// only backstops completed siblings and short-lived relay spans.
const causalRetired = 1024

type causalRegistry struct {
	mu      sync.Mutex
	live    map[uint64]CausalSpan
	retired [causalRetired]CausalSpan
	next    int
}

func newCausalRegistry() *causalRegistry {
	return &causalRegistry{live: make(map[uint64]CausalSpan)}
}

// add registers a live span. Nil-safe: the registry is only allocated
// when distributed tracing is on.
func (r *causalRegistry) add(cs CausalSpan) {
	if r == nil || cs.Span == 0 {
		return
	}
	r.mu.Lock()
	r.live[cs.Span] = cs
	r.mu.Unlock()
}

// retire moves a span from the live set to the bounded retired ring.
func (r *causalRegistry) retire(span uint64) {
	if r == nil || span == 0 {
		return
	}
	r.mu.Lock()
	if cs, ok := r.live[span]; ok {
		delete(r.live, span)
		r.retired[r.next%causalRetired] = cs
		r.next++
	}
	r.mu.Unlock()
}

// lookupLocked finds a span in the live set or the retired ring.
func (r *causalRegistry) lookupLocked(span uint64) (CausalSpan, bool) {
	if cs, ok := r.live[span]; ok {
		return cs, true
	}
	n := r.next
	if n > causalRetired {
		n = causalRetired
	}
	for i := 0; i < n; i++ {
		if r.retired[i].Span == span {
			return r.retired[i], true
		}
	}
	return CausalSpan{}, false
}

// chains walks from every live span governed by finish (home, seq) up
// through its ancestors, returning at most max chains ordered
// leaf-first (stuck span, its spawner, and so on).
func (r *causalRegistry) chains(home Place, seq uint64, max int) [][]CausalSpan {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	var leaves []CausalSpan
	for _, cs := range r.live {
		if cs.Home == home && cs.Seq == seq {
			leaves = append(leaves, cs)
		}
	}
	// Deterministic order: oldest spans first (the longest-stuck work).
	for i := 1; i < len(leaves); i++ {
		for j := i; j > 0 && (leaves[j].Start < leaves[j-1].Start ||
			(leaves[j].Start == leaves[j-1].Start && leaves[j].Span < leaves[j-1].Span)); j-- {
			leaves[j], leaves[j-1] = leaves[j-1], leaves[j]
		}
	}
	if max > 0 && len(leaves) > max {
		leaves = leaves[:max]
	}
	out := make([][]CausalSpan, 0, len(leaves))
	for _, leaf := range leaves {
		chain := []CausalSpan{leaf}
		seen := map[uint64]bool{leaf.Span: true}
		for cur := leaf; cur.Parent != 0; {
			next, ok := r.lookupLocked(cur.Parent)
			if !ok || seen[next.Span] {
				break
			}
			seen[next.Span] = true
			chain = append(chain, next)
			cur = next
		}
		out = append(out, chain)
	}
	return out
}

// CausalChains returns the causal span chains (leaf-first: the stuck
// span, who spawned it, and so on up the finish tree) for live work
// governed by the finish rooted at (home, seq). It returns nil unless
// the runtime was built with distributed tracing enabled. The
// telemetry watchdog calls it when it dumps a stalled finish.
func (rt *Runtime) CausalChains(home Place, seq uint64, max int) [][]CausalSpan {
	return rt.causal.chains(home, seq, max)
}
