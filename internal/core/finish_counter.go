package core

import (
	"fmt"

	"apgas/internal/obs"
	"apgas/internal/x10rt"
)

// This file implements the specialized finish patterns of §3.1 that reduce
// termination detection to token counting: FINISH_ASYNC, FINISH_HERE,
// FINISH_LOCAL, and FINISH_SPMD. They are "actual specializations of the
// default algorithm": the root keeps a single outstanding-token counter,
// and the protocol prescribes exactly which events move tokens and which
// (if any) control messages are required.
//
//	FINISH_LOCAL  no control messages; a plain counter.
//	FINISH_ASYNC  one completion message for the single governed
//	              (possibly remote) activity.
//	FINISH_SPMD   exactly one completion message per remote activity
//	              spawned by the root; order, source, content irrelevant.
//	FINISH_HERE   zero control messages on the round-trip fast path: the
//	              termination token travels outbound with the request and
//	              returns home with the response, and only the response's
//	              local completion releases it.
//
// Each pattern's usage contract is enforced when Config.CheckPatterns is
// set; otherwise violations degrade to best-effort counting.

type counterMode uint8

const (
	counterAsync counterMode = iota
	counterHere
	counterLocal
	counterSPMD
)

func (m counterMode) String() string {
	return [...]string{"FINISH_ASYNC", "FINISH_HERE", "FINISH_LOCAL", "FINISH_SPMD"}[m]
}

// counterRoot is the home-place state of the counter-based patterns.
type counterRoot struct {
	rt   *Runtime
	ref  finRef
	mode counterMode
	w    *waiter

	// Guarded by w.mu.
	count   int // outstanding termination tokens
	spawned int // total governed spawns, for contract checks
	// outstanding is count broken out by the place each token currently
	// rides at: local spawns and FINISH_HERE responses at home, remote
	// spawns at their destination, credits subtracted at their source.
	// It is the provenance that lets a place death forgive exactly the
	// tokens the dead place held (see resilient.go). nil until the first
	// token moves — the fault-free fast path allocates lazily.
	outstanding map[Place]int64
	// dead marks places whose tokens were forgiven; credits arriving
	// from them afterwards are duplicates of the forgiveness and are
	// dropped.
	dead map[Place]bool
	// events counts every event and control message processed, a
	// monotone progress signal for the stall watchdog (see debug.go).
	events uint64
}

func newCounterRoot(rt *Runtime, ref finRef, mode counterMode) *counterRoot {
	r := &counterRoot{rt: rt, ref: ref, mode: mode, w: newWaiter()}
	if rt.anyDeath() {
		for _, p := range rt.DeadPlaces() {
			if r.dead == nil {
				r.dead = make(map[Place]bool)
			}
			r.dead[p] = true
		}
	}
	return r
}

// moveToken shifts n tokens onto place p's ledger; caller holds w.mu.
func (r *counterRoot) moveToken(p Place, n int64) {
	if r.outstanding == nil {
		r.outstanding = make(map[Place]int64)
	}
	r.outstanding[p] += n
}

func (r *counterRoot) violate(format string, args ...any) {
	if r.rt.cfg.CheckPatterns {
		panic(fmt.Sprintf("core: %v contract violation: %s", r.mode, fmt.Sprintf(format, args...)))
	}
}

func (r *counterRoot) event(kind finEventKind, other Place, err error) {
	r.w.mu.Lock()
	defer r.w.mu.Unlock()
	r.events++
	switch kind {
	case evLocalSpawn:
		r.spawned++
		if r.mode == counterAsync && r.spawned > 1 {
			r.violate("governs %d activities, at most 1 allowed", r.spawned)
		}
		r.count++
		r.moveToken(r.ref.ID.Home, 1)
	case evRemoteSpawn:
		r.spawned++
		switch r.mode {
		case counterLocal:
			r.violate("remote spawn to place %d", other)
		case counterAsync:
			if r.spawned > 1 {
				r.violate("governs %d activities, at most 1 allowed", r.spawned)
			}
		}
		r.count++
		r.moveToken(other, 1)
	case evRemoteBegin:
		// An activity arriving back at home. For FINISH_HERE this is the
		// response carrying the token (already counted at the remote
		// place; the token now rides at home); for the other patterns it
		// is a contract anomaly that we absorb by counting.
		if r.mode == counterHere {
			r.moveToken(other, -1)
			r.moveToken(r.ref.ID.Home, 1)
		} else {
			r.violate("remote activity from place %d arrived at home", other)
			r.count++
			r.moveToken(r.ref.ID.Home, 1)
		}
	case evTerminate:
		if err != nil {
			r.w.errs = append(r.w.errs, err)
		}
		r.count--
		r.moveToken(r.ref.ID.Home, -1)
		r.checkLocked()
	}
}

func (r *counterRoot) ctl(src Place, payload any) {
	m, ok := payload.(ctlDone)
	if !ok {
		panic(fmt.Sprintf("core: %v root got %T", r.mode, payload))
	}
	r.w.mu.Lock()
	defer r.w.mu.Unlock()
	r.events++
	if r.dead[src] {
		// The sender's death already forgave every token it held; a
		// credit that limped in afterwards (queued before the kill) is a
		// duplicate of that forgiveness.
		return
	}
	if m.Err != nil {
		r.w.errs = append(r.w.errs, m.Err)
	}
	r.count -= m.N
	r.moveToken(src, -int64(m.N))
	r.checkLocked()
}

func (r *counterRoot) checkLocked() {
	if r.w.waiting && !r.w.done && r.count == 0 {
		r.w.fire()
	}
}

// placeDeath implements rootFinish: every token riding at the dead place
// is forgiven — the activities holding them are gone and no credit for
// them will ever arrive (late ones are deduplicated in ctl).
func (r *counterRoot) placeDeath(v Place) {
	r.w.mu.Lock()
	defer r.w.mu.Unlock()
	if r.dead[v] {
		return
	}
	if r.dead == nil {
		r.dead = make(map[Place]bool)
	}
	r.dead[v] = true
	r.events++
	if n := r.outstanding[v]; n != 0 {
		r.count -= int(n)
		r.outstanding[v] = 0
		if r.count < 0 {
			r.count = 0
		}
		r.w.errs = append(r.w.errs, &x10rt.PlaceDeadError{Place: int(v)})
	}
	r.checkLocked()
}

// forceFire implements rootFinish: the home place itself died.
func (r *counterRoot) forceFire(v Place) {
	r.w.mu.Lock()
	defer r.w.mu.Unlock()
	r.w.errs = append(r.w.errs, &x10rt.PlaceDeadError{Place: int(v)})
	r.w.fire()
}

// compensateSpawn implements rootFinish (see resilient.go).
func (r *counterRoot) compensateSpawn(dst Place, err error) {
	r.w.mu.Lock()
	defer r.w.mu.Unlock()
	r.events++
	r.w.errs = append(r.w.errs, err)
	if r.dead[dst] {
		// placeDeath already forgave every token riding at dst —
		// including the one this failed spawn placed there; subtracting
		// again would push the counter negative and wedge the wait.
		r.checkLocked()
		return
	}
	r.count--
	r.moveToken(dst, -1)
	if r.spawned > 0 {
		r.spawned--
	}
	r.checkLocked()
}

// addError implements rootFinish.
func (r *counterRoot) addError(err error) {
	r.w.mu.Lock()
	defer r.w.mu.Unlock()
	r.w.errs = append(r.w.errs, err)
}

func (r *counterRoot) wait(pl *place) error {
	r.w.mu.Lock()
	r.w.waiting = true
	r.checkLocked()
	r.w.mu.Unlock()
	return r.w.block(pl)
}

// sendDone stamps a distributed trace context and sends one ctlDone
// credit to the finish home.
func (rt *Runtime) sendDone(from Place, fin finRef, n int, err error) {
	tc := rt.tracer.SendCtx("flow.ctl", "finish", int(from), 0,
		obs.Arg{Key: "dst", Val: int64(fin.ID.Home)})
	rt.send(from, fin.ID.Home, x10rt.HandlerFinishCtl,
		ctlDone{ID: fin.ID, N: n, Err: err, TC: tc}, ctlDoneBytes, x10rt.ControlClass)
}

// counterRemoteEvent handles FINISH_ASYNC and FINISH_SPMD events at
// non-home places: remote activities simply report their completion.
func (rt *Runtime) counterRemoteEvent(fin finRef, pl *place, kind finEventKind, other Place, err error) {
	switch kind {
	case evRemoteBegin:
		// Already counted at home when the spawn left.
	case evTerminate:
		rt.sendDone(pl.id, fin, 1, err)
	case evLocalSpawn, evRemoteSpawn:
		// Remote activities under these patterns must wrap nested work in
		// their own finish ("finish S" inside the SPMD body).
		if rt.cfg.CheckPatterns {
			panic(fmt.Sprintf("core: %v contract violation: activity at place %d spawned "+
				"outside a nested finish", fin.Pattern, pl.id))
		}
		// Best effort: add a token for the extra activity. Note that
		// with adversarial control reordering this fallback can misorder
		// the +1/-1 pair — which is precisely why the contract exists.
		rt.sendDone(pl.id, fin, -1, nil)
	}
}

// hereRemoteEvent handles FINISH_HERE events at non-home places. The
// per-activity hereHomebound flag records whether this activity has passed
// its token home; ctx is nil only for evRemoteBegin (no activity yet).
func (rt *Runtime) hereRemoteEvent(fin finRef, pl *place, kind finEventKind, other Place, err error, ctx *Ctx) {
	switch kind {
	case evRemoteBegin:
		// Token travels with the message; nothing to do.
	case evRemoteSpawn:
		if other == fin.ID.Home && !ctx.hereHomebound {
			// The response: the activity's token rides home with it.
			ctx.hereHomebound = true
			return
		}
		if rt.cfg.CheckPatterns {
			panic(fmt.Sprintf("core: FINISH_HERE contract violation: activity at place %d "+
				"spawned toward place %d (home %d, homebound=%v)",
				pl.id, other, fin.ID.Home, ctx.hereHomebound))
		}
		rt.sendDone(pl.id, fin, -1, nil)
	case evLocalSpawn:
		if rt.cfg.CheckPatterns {
			panic(fmt.Sprintf("core: FINISH_HERE contract violation: local async at place %d", pl.id))
		}
		rt.sendDone(pl.id, fin, -1, nil)
	case evTerminate:
		if ctx != nil && ctx.hereHomebound && err == nil {
			// Token passed home with the response; no control message —
			// this is the whole point of FINISH_HERE.
			return
		}
		if ctx != nil && ctx.hereHomebound {
			// Token already traveled, but the error still must reach the
			// root: report it without releasing a token.
			rt.sendDone(pl.id, fin, 0, err)
			return
		}
		// No response was sent (e.g. a one-way request): release the
		// token explicitly.
		rt.sendDone(pl.id, fin, 1, err)
	}
}
