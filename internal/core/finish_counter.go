package core

import (
	"fmt"

	"apgas/internal/obs"
	"apgas/internal/x10rt"
)

// This file implements the specialized finish patterns of §3.1 that reduce
// termination detection to token counting: FINISH_ASYNC, FINISH_HERE,
// FINISH_LOCAL, and FINISH_SPMD. They are "actual specializations of the
// default algorithm": the root keeps a single outstanding-token counter,
// and the protocol prescribes exactly which events move tokens and which
// (if any) control messages are required.
//
//	FINISH_LOCAL  no control messages; a plain counter.
//	FINISH_ASYNC  one completion message for the single governed
//	              (possibly remote) activity.
//	FINISH_SPMD   exactly one completion message per remote activity
//	              spawned by the root; order, source, content irrelevant.
//	FINISH_HERE   zero control messages on the round-trip fast path: the
//	              termination token travels outbound with the request and
//	              returns home with the response, and only the response's
//	              local completion releases it.
//
// Each pattern's usage contract is enforced when Config.CheckPatterns is
// set; otherwise violations degrade to best-effort counting.

type counterMode uint8

const (
	counterAsync counterMode = iota
	counterHere
	counterLocal
	counterSPMD
)

func (m counterMode) String() string {
	return [...]string{"FINISH_ASYNC", "FINISH_HERE", "FINISH_LOCAL", "FINISH_SPMD"}[m]
}

// counterRoot is the home-place state of the counter-based patterns.
type counterRoot struct {
	rt   *Runtime
	ref  finRef
	mode counterMode
	w    *waiter

	// Guarded by w.mu.
	count   int // outstanding termination tokens
	spawned int // total governed spawns, for contract checks
	// events counts every event and control message processed, a
	// monotone progress signal for the stall watchdog (see debug.go).
	events uint64
}

func newCounterRoot(rt *Runtime, ref finRef, mode counterMode) *counterRoot {
	return &counterRoot{rt: rt, ref: ref, mode: mode, w: newWaiter()}
}

func (r *counterRoot) violate(format string, args ...any) {
	if r.rt.cfg.CheckPatterns {
		panic(fmt.Sprintf("core: %v contract violation: %s", r.mode, fmt.Sprintf(format, args...)))
	}
}

func (r *counterRoot) event(kind finEventKind, other Place, err error) {
	r.w.mu.Lock()
	defer r.w.mu.Unlock()
	r.events++
	switch kind {
	case evLocalSpawn:
		r.spawned++
		if r.mode == counterAsync && r.spawned > 1 {
			r.violate("governs %d activities, at most 1 allowed", r.spawned)
		}
		r.count++
	case evRemoteSpawn:
		r.spawned++
		switch r.mode {
		case counterLocal:
			r.violate("remote spawn to place %d", other)
		case counterAsync:
			if r.spawned > 1 {
				r.violate("governs %d activities, at most 1 allowed", r.spawned)
			}
		}
		r.count++
	case evRemoteBegin:
		// An activity arriving back at home. For FINISH_HERE this is the
		// response carrying the token (already counted); for the other
		// patterns it is a contract anomaly that we absorb by counting.
		if r.mode != counterHere {
			r.violate("remote activity from place %d arrived at home", other)
			r.count++
		}
	case evTerminate:
		if err != nil {
			r.w.errs = append(r.w.errs, err)
		}
		r.count--
		r.checkLocked()
	}
}

func (r *counterRoot) ctl(src Place, payload any) {
	m, ok := payload.(ctlDone)
	if !ok {
		panic(fmt.Sprintf("core: %v root got %T", r.mode, payload))
	}
	r.w.mu.Lock()
	defer r.w.mu.Unlock()
	r.events++
	if m.Err != nil {
		r.w.errs = append(r.w.errs, m.Err)
	}
	r.count -= m.N
	r.checkLocked()
}

func (r *counterRoot) checkLocked() {
	if r.w.waiting && !r.w.done && r.count == 0 {
		r.w.fire()
	}
}

func (r *counterRoot) wait(pl *place) error {
	r.w.mu.Lock()
	r.w.waiting = true
	r.checkLocked()
	r.w.mu.Unlock()
	return r.w.block(pl)
}

// sendDone stamps a distributed trace context and sends one ctlDone
// credit to the finish home.
func (rt *Runtime) sendDone(from Place, fin finRef, n int, err error) {
	tc := rt.tracer.SendCtx("flow.ctl", "finish", int(from), 0,
		obs.Arg{Key: "dst", Val: int64(fin.ID.Home)})
	rt.send(from, fin.ID.Home, x10rt.HandlerFinishCtl,
		ctlDone{ID: fin.ID, N: n, Err: err, TC: tc}, ctlDoneBytes, x10rt.ControlClass)
}

// counterRemoteEvent handles FINISH_ASYNC and FINISH_SPMD events at
// non-home places: remote activities simply report their completion.
func (rt *Runtime) counterRemoteEvent(fin finRef, pl *place, kind finEventKind, other Place, err error) {
	switch kind {
	case evRemoteBegin:
		// Already counted at home when the spawn left.
	case evTerminate:
		rt.sendDone(pl.id, fin, 1, err)
	case evLocalSpawn, evRemoteSpawn:
		// Remote activities under these patterns must wrap nested work in
		// their own finish ("finish S" inside the SPMD body).
		if rt.cfg.CheckPatterns {
			panic(fmt.Sprintf("core: %v contract violation: activity at place %d spawned "+
				"outside a nested finish", fin.Pattern, pl.id))
		}
		// Best effort: add a token for the extra activity. Note that
		// with adversarial control reordering this fallback can misorder
		// the +1/-1 pair — which is precisely why the contract exists.
		rt.sendDone(pl.id, fin, -1, nil)
	}
}

// hereRemoteEvent handles FINISH_HERE events at non-home places. The
// per-activity hereHomebound flag records whether this activity has passed
// its token home; ctx is nil only for evRemoteBegin (no activity yet).
func (rt *Runtime) hereRemoteEvent(fin finRef, pl *place, kind finEventKind, other Place, err error, ctx *Ctx) {
	switch kind {
	case evRemoteBegin:
		// Token travels with the message; nothing to do.
	case evRemoteSpawn:
		if other == fin.ID.Home && !ctx.hereHomebound {
			// The response: the activity's token rides home with it.
			ctx.hereHomebound = true
			return
		}
		if rt.cfg.CheckPatterns {
			panic(fmt.Sprintf("core: FINISH_HERE contract violation: activity at place %d "+
				"spawned toward place %d (home %d, homebound=%v)",
				pl.id, other, fin.ID.Home, ctx.hereHomebound))
		}
		rt.sendDone(pl.id, fin, -1, nil)
	case evLocalSpawn:
		if rt.cfg.CheckPatterns {
			panic(fmt.Sprintf("core: FINISH_HERE contract violation: local async at place %d", pl.id))
		}
		rt.sendDone(pl.id, fin, -1, nil)
	case evTerminate:
		if ctx != nil && ctx.hereHomebound && err == nil {
			// Token passed home with the response; no control message —
			// this is the whole point of FINISH_HERE.
			return
		}
		if ctx != nil && ctx.hereHomebound {
			// Token already traveled, but the error still must reach the
			// root: report it without releasing a token.
			rt.sendDone(pl.id, fin, 0, err)
			return
		}
		// No response was sent (e.g. a one-way request): release the
		// token explicitly.
		rt.sendDone(pl.id, fin, 1, err)
	}
}
