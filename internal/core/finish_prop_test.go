package core

import (
	"math/rand"
	"sync/atomic"
	"testing"
)

// Property-based tests for the finish patterns, and in particular for
// the FINISH_DEFAULT local→distributed promotion: random async/at
// trees over 2–8 places are generated from a seed, executed, and their
// completion counts compared against a counter oracle derived from the
// generated structure alone — independent of the termination detector
// under test. Each trial then checks that no finish roots, proxies, or
// dense buffers leaked and that the per-pattern conservation counters
// balance. Trees regularly mix a local-only prefix with remote hops,
// so the default-pattern trials exercise both the unpromoted counter
// fast path and the promotion into the distributed vector protocol.

// propTrials scales the randomized trial count down under -short.
func propTrials(full int) int {
	if testing.Short() {
		if full > 4 {
			return 4
		}
		return full
	}
	return full
}

// propPlaces picks a place count in [2, 8].
func propPlaces(rng *rand.Rand) int { return 2 + rng.Intn(7) }

// propNode is one activity of a generated async/at tree.
type propNode struct {
	place    int
	children []*propNode
}

// genTree generates a random activity tree rooted at place and returns
// it with its node count — the completion oracle. With localOnly set
// every node stays at the root's place; otherwise roughly a third of
// the children hop to a uniformly random place.
func genTree(rng *rand.Rand, place, places, depth int, localOnly bool) (*propNode, int64) {
	n := &propNode{place: place}
	total := int64(1)
	if depth == 0 {
		return n, total
	}
	fan := rng.Intn(4)
	for i := 0; i < fan; i++ {
		cp := place
		if !localOnly && rng.Intn(3) == 0 {
			cp = rng.Intn(places)
		}
		child, c := genTree(rng, cp, places, depth-1, localOnly)
		n.children = append(n.children, child)
		total += c
	}
	return n, total
}

// execPropTree runs the tree under the current finish, bumping count
// once per node (including the root, which runs inline in the body).
func execPropTree(c *Ctx, n *propNode, count *atomic.Int64) {
	count.Add(1)
	for _, ch := range n.children {
		ch := ch
		if ch.place == int(c.Place()) {
			c.Async(func(cc *Ctx) { execPropTree(cc, ch, count) })
		} else {
			c.AtAsync(Place(ch.place), func(cc *Ctx) { execPropTree(cc, ch, count) })
		}
	}
}

// settleTransport drains in-flight post-Run control traffic (proxy
// cleanups, late snapshots) so the leak checks below see a quiesced
// runtime rather than a transient.
func settleTransport(rt *Runtime) {
	if q, ok := rt.Transport().(interface{ Quiesce() }); ok {
		for i := 0; i < 3; i++ {
			q.Quiesce()
		}
	}
}

// checkQuiesced asserts the post-run invariants every trial must end
// on: no live finish state anywhere and balanced per-pattern
// spawned/completed counters.
func checkQuiesced(t *testing.T, rt *Runtime) {
	t.Helper()
	settleTransport(rt)
	if fs := rt.FinishStates(); len(fs) != 0 {
		t.Errorf("leaked %d finish roots: %+v", len(fs), fs)
	}
	if ps := rt.ProxyStates(); len(ps) != 0 {
		t.Errorf("leaked %d finish proxies: %+v", len(ps), ps)
	}
	if bs := rt.DenseBufferStates(); len(bs) != 0 {
		t.Errorf("leaked %d dense buffers: %+v", len(bs), bs)
	}
	for _, ac := range rt.ActivityCounts() {
		if !ac.Balanced() {
			t.Errorf("%v conservation violated: spawned=%d completed=%d",
				ac.Pattern, ac.Spawned, ac.Completed)
		}
	}
}

// TestPropVectorTrees: random trees under the two vector patterns.
// FINISH_DEFAULT trials that generate at least one remote hop cross the
// local→distributed promotion; all-local trees must complete without
// ever promoting.
func TestPropVectorTrees(t *testing.T) {
	for _, pattern := range []Pattern{PatternDefault, PatternDense} {
		pattern := pattern
		t.Run(pattern.String(), func(t *testing.T) {
			for trial := 0; trial < propTrials(24); trial++ {
				rng := rand.New(rand.NewSource(int64(trial)*7919 + 13))
				places := propPlaces(rng)
				// Dense picks its masters by host, so keep hosts small
				// enough that multi-host topologies actually occur.
				rt := newTestRuntime(t, places, func(c *Config) { c.PlacesPerHost = 3 })
				root, want := genTree(rng, 0, places, 3, rng.Intn(4) == 0)
				var n atomic.Int64
				err := rt.Run(func(ctx *Ctx) {
					if e := ctx.FinishPragma(pattern, func(c *Ctx) {
						execPropTree(c, root, &n)
					}); e != nil {
						t.Errorf("trial %d: finish: %v", trial, e)
					}
				})
				if err != nil {
					t.Fatalf("trial %d (places=%d): Run: %v", trial, places, err)
				}
				if got := n.Load(); got != want {
					t.Errorf("trial %d (places=%d): completed %d activities, oracle expects %d",
						trial, places, got, want)
				}
				checkQuiesced(t, rt)
			}
		})
	}
}

// TestPropCounterPatterns: randomized pattern-conforming workloads for
// the four counter specializations, each against its structural oracle.
func TestPropCounterPatterns(t *testing.T) {
	t.Run("FINISH_LOCAL", func(t *testing.T) {
		for trial := 0; trial < propTrials(24); trial++ {
			rng := rand.New(rand.NewSource(int64(trial)*104729 + 1))
			places := propPlaces(rng)
			rt := newTestRuntime(t, places)
			root, want := genTree(rng, 0, places, 3, true)
			var n atomic.Int64
			err := rt.Run(func(ctx *Ctx) {
				if e := ctx.FinishPragma(PatternLocal, func(c *Ctx) {
					execPropTree(c, root, &n)
				}); e != nil {
					t.Errorf("trial %d: finish: %v", trial, e)
				}
			})
			if err != nil {
				t.Fatalf("trial %d: Run: %v", trial, err)
			}
			if got := n.Load(); got != want {
				t.Errorf("trial %d: completed %d, oracle expects %d", trial, got, want)
			}
			checkQuiesced(t, rt)
		}
	})

	t.Run("FINISH_ASYNC", func(t *testing.T) {
		for trial := 0; trial < propTrials(24); trial++ {
			rng := rand.New(rand.NewSource(int64(trial)*6151 + 2))
			places := propPlaces(rng)
			rt := newTestRuntime(t, places)
			// The single governed activity is local every fourth trial,
			// remote otherwise; nested work must ride its own finish.
			local := rng.Intn(4) == 0
			dest := Place(1 + rng.Intn(places-1))
			inner := int64(rng.Intn(3))
			want := 1 + inner
			var n atomic.Int64
			body := func(cc *Ctx) {
				if inner > 0 {
					if e := cc.Finish(func(ic *Ctx) {
						for i := int64(0); i < inner; i++ {
							ic.Async(func(*Ctx) { n.Add(1) })
						}
					}); e != nil {
						t.Errorf("trial %d: nested finish: %v", trial, e)
					}
				}
				n.Add(1)
			}
			err := rt.Run(func(ctx *Ctx) {
				if e := ctx.FinishPragma(PatternAsync, func(c *Ctx) {
					if local {
						c.Async(body)
					} else {
						c.AtAsync(dest, body)
					}
				}); e != nil {
					t.Errorf("trial %d: finish: %v", trial, e)
				}
			})
			if err != nil {
				t.Fatalf("trial %d: Run: %v", trial, err)
			}
			if got := n.Load(); got != want {
				t.Errorf("trial %d: completed %d, oracle expects %d", trial, got, want)
			}
			checkQuiesced(t, rt)
		}
	})

	t.Run("FINISH_HERE", func(t *testing.T) {
		for trial := 0; trial < propTrials(24); trial++ {
			rng := rand.New(rand.NewSource(int64(trial)*31337 + 3))
			places := propPlaces(rng)
			rt := newTestRuntime(t, places)
			// A mix of round-trip requests (token rides the response
			// home — zero control messages) and one-way requests (token
			// released by an explicit completion message).
			reqs := 1 + rng.Intn(4)
			dests := make([]Place, reqs)
			round := make([]bool, reqs)
			var want int64
			for i := range dests {
				dests[i] = Place(1 + rng.Intn(places-1))
				round[i] = rng.Intn(2) == 0
				want++
				if round[i] {
					want++
				}
			}
			var n atomic.Int64
			err := rt.Run(func(ctx *Ctx) {
				home := ctx.Place()
				if e := ctx.FinishPragma(PatternHere, func(c *Ctx) {
					for i := 0; i < reqs; i++ {
						i := i
						c.AtDirect(dests[i], 16, func(cv *Ctx) {
							n.Add(1)
							if round[i] {
								cv.AtDirect(home, 16, func(*Ctx) { n.Add(1) })
							}
						})
					}
				}); e != nil {
					t.Errorf("trial %d: finish: %v", trial, e)
				}
			})
			if err != nil {
				t.Fatalf("trial %d: Run: %v", trial, err)
			}
			if got := n.Load(); got != want {
				t.Errorf("trial %d: completed %d, oracle expects %d", trial, got, want)
			}
			checkQuiesced(t, rt)
		}
	})

	t.Run("FINISH_SPMD", func(t *testing.T) {
		for trial := 0; trial < propTrials(24); trial++ {
			rng := rand.New(rand.NewSource(int64(trial)*2654435761 + 4))
			places := propPlaces(rng)
			rt := newTestRuntime(t, places)
			// A random nonempty subset of remote places, each running a
			// nested-finish body, plus root-local asyncs riding the same
			// counter.
			var remotes []Place
			for p := 1; p < places; p++ {
				if rng.Intn(2) == 0 {
					remotes = append(remotes, Place(p))
				}
			}
			if len(remotes) == 0 {
				remotes = append(remotes, Place(1+rng.Intn(places-1)))
			}
			inner := int64(rng.Intn(4))
			locals := int64(rng.Intn(3))
			want := int64(len(remotes))*(1+inner) + locals
			var n atomic.Int64
			err := rt.Run(func(ctx *Ctx) {
				if e := ctx.FinishPragma(PatternSPMD, func(c *Ctx) {
					for _, p := range remotes {
						p := p
						c.AtAsync(p, func(cc *Ctx) {
							if inner > 0 {
								if e := cc.Finish(func(ic *Ctx) {
									for i := int64(0); i < inner; i++ {
										ic.Async(func(*Ctx) { n.Add(1) })
									}
								}); e != nil {
									t.Errorf("trial %d: nested finish: %v", trial, e)
								}
							}
							n.Add(1)
						})
					}
					for i := int64(0); i < locals; i++ {
						c.Async(func(*Ctx) { n.Add(1) })
					}
				}); e != nil {
					t.Errorf("trial %d: finish: %v", trial, e)
				}
			})
			if err != nil {
				t.Fatalf("trial %d: Run: %v", trial, err)
			}
			if got := n.Load(); got != want {
				t.Errorf("trial %d: completed %d, oracle expects %d", trial, got, want)
			}
			checkQuiesced(t, rt)
		}
	})
}

// TestPropPromotionObservable pins the promotion transition itself: a
// FINISH_DEFAULT stays on the local counter through arbitrarily many
// local spawns and flips to the distributed protocol exactly when the
// first remote spawn leaves — observable through FinishState.Promoted.
func TestPropPromotionObservable(t *testing.T) {
	for trial := 0; trial < propTrials(8); trial++ {
		rng := rand.New(rand.NewSource(int64(trial)*193 + 7))
		places := propPlaces(rng)
		rt := newTestRuntime(t, places)
		locals := 1 + rng.Intn(8)
		dest := Place(1 + rng.Intn(places-1))

		// ourRoot picks this test's finish out of the live set: the
		// highest-Seq default-pattern root at home (rt.Run's implicit
		// root was created first, so it has a lower Seq).
		ourRoot := func() (FinishState, bool) {
			var best FinishState
			found := false
			for _, s := range rt.FinishStates() {
				if s.Home != 0 || s.Pattern != PatternDefault {
					continue
				}
				if !found || s.Seq > best.Seq {
					best, found = s, true
				}
			}
			return best, found
		}

		var n atomic.Int64
		err := rt.Run(func(ctx *Ctx) {
			if e := ctx.Finish(func(c *Ctx) {
				for i := 0; i < locals; i++ {
					c.Async(func(*Ctx) { n.Add(1) })
				}
				if s, ok := ourRoot(); !ok {
					t.Errorf("trial %d: finish root not visible during body", trial)
				} else if s.Promoted {
					t.Errorf("trial %d: promoted after %d local spawns, before any remote",
						trial, locals)
				}
				// The first remote spawn under THIS finish is the promotion
				// trigger. AtAsync counts the spawn at home before the
				// message leaves, so the transition is visible by return.
				// (At would not do: it rides its own FINISH_ASYNC precisely
				// so that it never perturbs the enclosing pattern.)
				c.AtAsync(dest, func(*Ctx) { n.Add(1) })
				if s, ok := ourRoot(); !ok {
					t.Errorf("trial %d: finish root vanished mid-body", trial)
				} else if !s.Promoted {
					t.Errorf("trial %d: not promoted after remote spawn to p%d", trial, dest)
				}
			}); e != nil {
				t.Errorf("trial %d: finish: %v", trial, e)
			}
		})
		if err != nil {
			t.Fatalf("trial %d: Run: %v", trial, err)
		}
		if got := n.Load(); got != int64(locals+1) {
			t.Errorf("trial %d: completed %d, want %d", trial, got, locals+1)
		}
		checkQuiesced(t, rt)
	}
}
