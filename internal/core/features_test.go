package core

import (
	"sync"
	"sync/atomic"
	"testing"

	"apgas/internal/x10rt"
)

func TestGlobalRefRoundTrip(t *testing.T) {
	rt := newTestRuntime(t, 3)
	err := rt.Run(func(ctx *Ctx) {
		// The §2.2 average-load idiom: a cell at home, updated from
		// every place through its GlobalRef.
		acc := &struct {
			mu  sync.Mutex
			sum float64
		}{}
		ref := NewGlobalRef(ctx, acc)
		home := ctx.Place()
		err := ctx.Finish(func(c *Ctx) {
			for _, p := range c.Places() {
				c.AtAsync(p, func(cc *Ctx) {
					load := float64(cc.Place()) + 1 // stand-in for systemLoad()
					cc.AtAsync(home, func(ch *Ctx) {
						cell := ref.Get(ch)
						ch.Atomic(func() { cell.sum += load })
					})
				})
			}
		})
		if err != nil {
			t.Errorf("finish: %v", err)
		}
		if acc.sum != 6 { // 1+2+3
			t.Errorf("sum = %v, want 6", acc.sum)
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestGlobalRefWrongPlacePanics(t *testing.T) {
	rt := newTestRuntime(t, 2)
	err := rt.Run(func(ctx *Ctx) {
		ref := NewGlobalRef(ctx, 42)
		if ref.Home() != 0 {
			t.Errorf("Home = %d, want 0", ref.Home())
		}
		panicked := AtEval(ctx, 1, func(c *Ctx) (p bool) {
			defer func() {
				if recover() != nil {
					p = true
				}
			}()
			ref.Get(c)
			return false
		})
		if !panicked {
			t.Error("Get at wrong place did not panic")
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestGlobalRefFree(t *testing.T) {
	rt := newTestRuntime(t, 1)
	err := rt.Run(func(ctx *Ctx) {
		ref := NewGlobalRef(ctx, "x")
		if got := ref.Get(ctx); got != "x" {
			t.Errorf("Get = %q", got)
		}
		ref.Free(ctx)
		defer func() {
			if recover() == nil {
				t.Error("Get after Free did not panic")
			}
		}()
		ref.Get(ctx)
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestPlaceLocal(t *testing.T) {
	rt := newTestRuntime(t, 4)
	var inits atomic.Int64
	h := NewPlaceLocal(rt, func(p Place) []int {
		inits.Add(1)
		return []int{int(p) * 10}
	})
	err := rt.Run(func(ctx *Ctx) {
		err := ctx.Finish(func(c *Ctx) {
			for _, p := range c.Places() {
				c.AtAsync(p, func(cc *Ctx) {
					v := h.Get(cc)
					if v[0] != int(cc.Place())*10 {
						t.Errorf("place %d got %v", cc.Place(), v)
					}
					h.Get(cc) // second access: no re-init
				})
			}
		})
		if err != nil {
			t.Errorf("finish: %v", err)
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if inits.Load() != 4 {
		t.Errorf("init ran %d times, want 4", inits.Load())
	}
	// Post-run collection via At.
	for p := 0; p < 4; p++ {
		if v := h.At(Place(p)); v[0] != p*10 {
			t.Errorf("At(%d) = %v", p, v)
		}
	}
}

func TestPlaceGroupBroadcast(t *testing.T) {
	rt := newTestRuntime(t, 16, func(c *Config) { c.BroadcastArity = 2 })
	g := WorldGroup(rt)
	if g.Size() != 16 {
		t.Fatalf("Size = %d", g.Size())
	}
	var visited [16]atomic.Int64
	err := rt.Run(func(ctx *Ctx) {
		if err := g.Broadcast(ctx, func(c *Ctx) {
			visited[c.Place()].Add(1)
		}); err != nil {
			t.Errorf("Broadcast: %v", err)
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for p := range visited {
		if n := visited[p].Load(); n != 1 {
			t.Errorf("place %d visited %d times, want 1", p, n)
		}
	}
}

func TestPlaceGroupBroadcastSubset(t *testing.T) {
	rt := newTestRuntime(t, 8)
	g, err := NewPlaceGroup([]Place{3, 5, 7})
	if err != nil {
		t.Fatalf("NewPlaceGroup: %v", err)
	}
	var visited [8]atomic.Int64
	rerr := rt.Run(func(ctx *Ctx) {
		// The caller (place 0) is not a member.
		if err := g.Broadcast(ctx, func(c *Ctx) {
			visited[c.Place()].Add(1)
		}); err != nil {
			t.Errorf("Broadcast: %v", err)
		}
	})
	if rerr != nil {
		t.Fatalf("Run: %v", rerr)
	}
	for p := 0; p < 8; p++ {
		want := int64(0)
		if p == 3 || p == 5 || p == 7 {
			want = 1
		}
		if n := visited[p].Load(); n != want {
			t.Errorf("place %d visited %d times, want %d", p, n, want)
		}
	}
}

func TestPlaceGroupValidation(t *testing.T) {
	if _, err := NewPlaceGroup(nil); err == nil {
		t.Error("empty group accepted")
	}
	if _, err := NewPlaceGroup([]Place{1, 2, 1}); err == nil {
		t.Error("duplicate place accepted")
	}
	g, err := NewPlaceGroup([]Place{4, 2})
	if err != nil {
		t.Fatal(err)
	}
	if !g.Contains(4) || g.Contains(3) {
		t.Error("Contains wrong")
	}
	if g.IndexOf(2) != 1 || g.IndexOf(9) != -1 {
		t.Error("IndexOf wrong")
	}
}

func TestSequentialBroadcast(t *testing.T) {
	rt := newTestRuntime(t, 6)
	g := WorldGroup(rt)
	var n atomic.Int64
	err := rt.Run(func(ctx *Ctx) {
		if err := g.SequentialBroadcast(ctx, func(*Ctx) { n.Add(1) }); err != nil {
			t.Errorf("SequentialBroadcast: %v", err)
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if n.Load() != 6 {
		t.Errorf("n = %d, want 6", n.Load())
	}
}

// TestBroadcastTreeShapesControlTraffic checks the §3.2 claim: tree
// broadcast detects completion with messages along tree edges, so the root
// receives O(arity) rather than O(n) completion messages. We verify the
// weaker observable property that both broadcasts visit everyone and the
// tree version does not send more control messages than the sequential one.
func TestBroadcastTreeShapesControlTraffic(t *testing.T) {
	rt := newTestRuntime(t, 32, func(c *Config) { c.BroadcastArity = 2 })
	g := WorldGroup(rt)
	var treeCtl, seqCtl uint64
	err := rt.Run(func(ctx *Ctx) {
		b0 := rt.Transport().Stats()
		if err := g.Broadcast(ctx, func(*Ctx) {}); err != nil {
			t.Errorf("Broadcast: %v", err)
		}
		b1 := rt.Transport().Stats()
		if err := g.SequentialBroadcast(ctx, func(*Ctx) {}); err != nil {
			t.Errorf("SequentialBroadcast: %v", err)
		}
		b2 := rt.Transport().Stats()
		treeCtl = b1.Sub(b0).Messages[x10rt.ControlClass]
		seqCtl = b2.Sub(b1).Messages[x10rt.ControlClass]
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if treeCtl > seqCtl {
		t.Errorf("tree broadcast used %d control messages, sequential %d", treeCtl, seqCtl)
	}
}

func TestClockBarrier(t *testing.T) {
	rt := newTestRuntime(t, 4)
	const phases = 5
	err := rt.Run(func(ctx *Ctx) {
		ck := NewClock(ctx)
		var phase [4]int
		var mu sync.Mutex
		err := ctx.Finish(func(c *Ctx) {
			for p := 0; p < 4; p++ {
				p := p
				c.ClockedAtAsync(ck, Place(p), func(cc *Ctx) {
					for i := 0; i < phases; i++ {
						mu.Lock()
						phase[p] = i
						// No other activity may be more than one phase away.
						for q := 0; q < 4; q++ {
							if d := phase[p] - phase[q]; d < -1 || d > 1 {
								t.Errorf("phase skew: place %d at %d, place %d at %d",
									p, phase[p], q, phase[q])
							}
						}
						mu.Unlock()
						ck.Advance(cc)
					}
				})
			}
			ck.Drop(c) // the main activity resigns so children can advance
		})
		if err != nil {
			t.Errorf("finish: %v", err)
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestClockAdvanceReturnsPhase(t *testing.T) {
	rt := newTestRuntime(t, 1)
	err := rt.Run(func(ctx *Ctx) {
		ck := NewClock(ctx)
		for want := uint64(1); want <= 3; want++ {
			if got := ck.Advance(ctx); got != want {
				t.Errorf("Advance = %d, want %d", got, want)
			}
		}
		ck.Drop(ctx)
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestAtomicMutualExclusion(t *testing.T) {
	rt := newTestRuntime(t, 1, func(c *Config) { c.WorkersPerPlace = 8 })
	counter := 0
	err := rt.Run(func(ctx *Ctx) {
		err := ctx.Finish(func(c *Ctx) {
			for i := 0; i < 200; i++ {
				c.Async(func(cc *Ctx) {
					cc.Atomic(func() { counter++ })
				})
			}
		})
		if err != nil {
			t.Errorf("finish: %v", err)
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if counter != 200 {
		t.Errorf("counter = %d, want 200 (lost updates)", counter)
	}
}

func TestWhenBlocksUntilCondition(t *testing.T) {
	rt := newTestRuntime(t, 1, func(c *Config) { c.WorkersPerPlace = 2 })
	err := rt.Run(func(ctx *Ctx) {
		ready := false
		var got int
		err := ctx.Finish(func(c *Ctx) {
			c.Async(func(cc *Ctx) {
				cc.When(func() bool { return ready }, func() { got = 99 })
			})
			c.Async(func(cc *Ctx) {
				cc.Atomic(func() { ready = true })
			})
		})
		if err != nil {
			t.Errorf("finish: %v", err)
		}
		if got != 99 {
			t.Errorf("got = %d, want 99", got)
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}

// TestWhenSingleWorkerNoDeadlock: with one worker per place, a blocked When
// must release its slot so the enabling Atomic can run.
func TestWhenSingleWorkerNoDeadlock(t *testing.T) {
	rt := newTestRuntime(t, 1) // WorkersPerPlace = 1
	err := rt.Run(func(ctx *Ctx) {
		flag := false
		err := ctx.Finish(func(c *Ctx) {
			c.Async(func(cc *Ctx) {
				cc.When(func() bool { return flag }, func() {})
			})
			c.Async(func(cc *Ctx) {
				cc.Atomic(func() { flag = true })
			})
		})
		if err != nil {
			t.Errorf("finish: %v", err)
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := NewRuntime(Config{Places: 0}); err == nil {
		t.Error("Places=0 accepted")
	}
	tr := mustChan(t, 3, 0)
	defer tr.Close()
	if _, err := NewRuntime(Config{Places: 5, Transport: tr}); err == nil {
		t.Error("mismatched transport size accepted")
	}
}

func TestRuntimeAccessors(t *testing.T) {
	rt := newTestRuntime(t, 3)
	if rt.NumPlaces() != 3 {
		t.Errorf("NumPlaces = %d", rt.NumPlaces())
	}
	if rt.Transport() == nil {
		t.Error("nil transport")
	}
	cfg := rt.Config()
	if cfg.WorkersPerPlace != 1 || cfg.BroadcastArity != 8 {
		t.Errorf("defaults not applied: %+v", cfg)
	}
	rt.Close()
	rt.Close() // idempotent
	if err := rt.Run(func(*Ctx) {}); err == nil {
		t.Error("Run after Close succeeded")
	}
}

// TestManyPlacesSPMD is a smoke test at a "scale-ish" place count.
func TestManyPlacesSPMD(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	rt := newTestRuntime(t, 128, func(c *Config) { c.PlacesPerHost = 32 })
	var n atomic.Int64
	err := rt.Run(func(ctx *Ctx) {
		if err := WorldGroup(rt).Broadcast(ctx, func(c *Ctx) { n.Add(1) }); err != nil {
			t.Errorf("Broadcast: %v", err)
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if n.Load() != 128 {
		t.Errorf("n = %d, want 128", n.Load())
	}
}

func TestUncountedAsync(t *testing.T) {
	rt := newTestRuntime(t, 4)
	done := make(chan Place, 2)
	err := rt.Run(func(ctx *Ctx) {
		// Uncounted activities are not awaited by any finish; use an
		// explicit channel to observe them.
		ctx.UncountedAsync(2, func(c *Ctx) { done <- c.Place() })
		ctx.UncountedAsync(ctx.Place(), func(c *Ctx) { done <- c.Place() })
		got := map[Place]bool{}
		// Release the execution slot while waiting: the local uncounted
		// activity needs it.
		ctx.Blocking(func() {
			got[<-done] = true
			got[<-done] = true
		})
		if !got[2] || !got[0] {
			t.Errorf("uncounted ran at %v", got)
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestUncountedAsyncPanicContained(t *testing.T) {
	rt := newTestRuntime(t, 2)
	probe := make(chan struct{})
	err := rt.Run(func(ctx *Ctx) {
		ctx.UncountedAsync(1, func(*Ctx) {
			defer close(probe)
			panic("uncounted boom")
		})
		ctx.Blocking(func() { <-probe }) // the panic must not take down the place
		ctx.At(1, func(*Ctx) {})
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestUncountedCanOpenFinish(t *testing.T) {
	rt := newTestRuntime(t, 3)
	result := make(chan int64, 1)
	err := rt.Run(func(ctx *Ctx) {
		ctx.UncountedAsync(1, func(c *Ctx) {
			var n atomic.Int64
			if err := c.Finish(func(cc *Ctx) {
				for _, p := range cc.Places() {
					cc.AtAsync(p, func(*Ctx) { n.Add(1) })
				}
			}); err != nil {
				t.Errorf("finish in uncounted: %v", err)
			}
			result <- n.Load()
		})
		var got int64
		ctx.Blocking(func() { got = <-result })
		if got != 3 {
			t.Errorf("nested finish counted %d", got)
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}
