package core_test

import (
	"fmt"
	"sync/atomic"

	"apgas/internal/core"
)

// The fib example of the paper's §2.2: recursive parallel decomposition
// with finish and async.
func ExampleCtx_Finish() {
	rt, err := core.NewRuntime(core.Config{Places: 1})
	if err != nil {
		panic(err)
	}
	defer rt.Close()

	var fib func(c *core.Ctx, n int) int
	fib = func(c *core.Ctx, n int) int {
		if n < 2 {
			return n
		}
		var f1, f2 int
		_ = c.Finish(func(cc *core.Ctx) {
			cc.Async(func(ca *core.Ctx) { f1 = fib(ca, n-1) })
			f2 = fib(cc, n-2)
		})
		return f1 + f2
	}
	_ = rt.Run(func(ctx *core.Ctx) {
		fmt.Println(fib(ctx, 10))
	})
	// Output: 55
}

// Remote evaluation: X10's `val v = at (p) e`.
func ExampleAtEval() {
	rt, err := core.NewRuntime(core.Config{Places: 4})
	if err != nil {
		panic(err)
	}
	defer rt.Close()
	_ = rt.Run(func(ctx *core.Ctx) {
		v := core.AtEval(ctx, 3, func(c *core.Ctx) string {
			return fmt.Sprintf("computed at place %d", c.Place())
		})
		fmt.Println(v)
	})
	// Output: computed at place 3
}

// A startup broadcast over every place with completion detection, the §2.2
// idiom realized with the §3.2 spawning tree.
func ExamplePlaceGroup_Broadcast() {
	rt, err := core.NewRuntime(core.Config{Places: 8})
	if err != nil {
		panic(err)
	}
	defer rt.Close()
	var visited atomic.Int64
	_ = rt.Run(func(ctx *core.Ctx) {
		g := core.WorldGroup(rt)
		_ = g.Broadcast(ctx, func(c *core.Ctx) { visited.Add(1) })
		fmt.Println("initialized places:", visited.Load())
	})
	// Output: initialized places: 8
}

// Profile-guided finish implementation selection (§3.1): observe a run,
// get the pragma.
func ExampleCtx_FinishProfiled() {
	rt, err := core.NewRuntime(core.Config{Places: 4})
	if err != nil {
		panic(err)
	}
	defer rt.Close()
	_ = rt.Run(func(ctx *core.Ctx) {
		profile, _ := ctx.FinishProfiled(func(c *core.Ctx) {
			for _, p := range c.Places() {
				c.AtAsync(p, func(*core.Ctx) {})
			}
		})
		fmt.Println("recommended:", profile.Recommend())
	})
	// Output: recommended: FINISH_SPMD
}
