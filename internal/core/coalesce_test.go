package core

import (
	"sync/atomic"
	"testing"

	"apgas/internal/x10rt"
)

// TestDenseCoalescingBatches verifies the §3.1 coalescing refinement: under
// a burst of FINISH_DENSE control traffic, masters forward fewer (larger)
// routed messages than the snapshots they receive.
func TestDenseCoalescingBatches(t *testing.T) {
	const places = 16
	inner, err := x10rt.NewChanTransport(x10rt.ChanOptions{Places: places})
	if err != nil {
		t.Fatal(err)
	}
	counting := x10rt.NewCountingTransport(inner)
	rt, err := NewRuntime(Config{Places: places, PlacesPerHost: 4, Transport: counting})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()

	var n atomic.Int64
	rerr := rt.Run(func(ctx *Ctx) {
		// A spawn storm: every place spawns at every other place several
		// times, producing many snapshots per proxy place.
		err := ctx.FinishPragma(PatternDense, func(c *Ctx) {
			for _, p := range c.Places() {
				c.AtAsync(p, func(cc *Ctx) {
					for rep := 0; rep < 4; rep++ {
						for _, q := range cc.Places() {
							cc.AtAsync(q, func(*Ctx) { n.Add(1) })
						}
					}
				})
			}
		})
		if err != nil {
			t.Errorf("dense finish: %v", err)
		}
	})
	if rerr != nil {
		t.Fatalf("Run: %v", rerr)
	}
	if n.Load() != places*places*4 {
		t.Fatalf("n = %d, want %d", n.Load(), places*places*4)
	}
	// The home's control fan-in must stay at masters-plus-housemates:
	// remote hosts reach home only through their master place, while
	// home's own host members deliver directly (intra-host traffic needs
	// no shaping). With 16 places and 4 per host: 3 masters + 3
	// housemates = 6 sources, instead of 15 with direct delivery.
	const wantMax = (places/4 - 1) + (4 - 1)
	fanIn, _ := counting.FanIn(0, x10rt.ControlClass)
	if fanIn > wantMax {
		t.Errorf("home control fan-in = %d, want <= %d", fanIn, wantMax)
	}
}

// TestDenseCoalescingCorrectUnderReordering stresses the buffered path with
// adversarial reordering: the flush markers and snapshot batches may arrive
// shuffled, and the finish must still terminate exactly once with the right
// count.
func TestDenseCoalescingCorrectUnderReordering(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		tr, err := x10rt.NewChanTransport(x10rt.ChanOptions{Places: 12, ReorderSeed: seed})
		if err != nil {
			t.Fatal(err)
		}
		rt, err := NewRuntime(Config{Places: 12, PlacesPerHost: 4, Transport: tr})
		if err != nil {
			t.Fatal(err)
		}
		var n atomic.Int64
		rerr := rt.Run(func(ctx *Ctx) {
			err := ctx.FinishPragma(PatternDense, func(c *Ctx) {
				for _, p := range c.Places() {
					c.AtAsync(p, func(cc *Ctx) {
						cc.AtAsync((cc.Place()+5)%12, func(c3 *Ctx) {
							c3.AtAsync((c3.Place()+7)%12, func(*Ctx) { n.Add(1) })
						})
					})
				}
			})
			if err != nil {
				t.Errorf("seed %d: %v", seed, err)
			}
		})
		rt.Close()
		if rerr != nil {
			t.Fatalf("seed %d: %v", seed, rerr)
		}
		if n.Load() != 12 {
			t.Fatalf("seed %d: n = %d, want 12", seed, n.Load())
		}
	}
}
