package core

import (
	"fmt"
	"io"
	"sort"
)

// This file is the finish introspection API: a read-only window into the
// live termination-detection state that the telemetry plane's stall
// watchdog walks to explain a hang. The protocol structures themselves
// (finish.go, finish_default.go, finish_counter.go) stay private; what is
// exported here are point-in-time copies safe to hold, print, and ship.

// FinishState is a point-in-time view of one finish root.
type FinishState struct {
	// Home and Seq identify the finish (its root activity's place plus a
	// home-local sequence number).
	Home Place
	Seq  uint64
	// Pattern is the selected implementation (FINISH_DEFAULT, ...).
	Pattern Pattern
	// Waiting reports whether the root activity has reached wait();
	// Done whether quiescence has been declared.
	Waiting bool
	Done    bool
	// Live is the protocol's local liveness figure: live governed
	// activities at the home place for the vector patterns, outstanding
	// termination tokens for the counter patterns.
	Live int
	// Promoted reports whether a vector-pattern finish has switched from
	// the optimistic local counter to the distributed protocol.
	Promoted bool
	// Events counts every event and control message the root has
	// processed. It is monotone, so an unchanged Events across a watch
	// window means the root made no progress at all — the stall
	// watchdog's trigger.
	Events uint64
	// Errs is the number of activity errors collected so far.
	Errs int
	// Deficits lists, for vector-pattern roots, every place whose
	// cumulative spawn/begin accounting has not reconciled — the
	// who-owes-whom view. Empty when the finish is balanced (or counter
	// based).
	Deficits []PlaceDeficit
}

// PlaceDeficit says place Place has had Sent activities spawned toward it
// (cumulative, as visible at the root) but has only reported Recv begins:
// Sent - Recv activities are live at, or in flight toward, that place.
type PlaceDeficit struct {
	Place Place
	Sent  uint64
	Recv  uint64
}

// Pending returns the number of unaccounted activities at this place.
func (d PlaceDeficit) Pending() uint64 {
	if d.Sent < d.Recv {
		return 0
	}
	return d.Sent - d.Recv
}

// ProxyState is a point-in-time view of one place's proxy state for a
// distributed finish homed elsewhere.
type ProxyState struct {
	Home    Place
	Seq     uint64
	Pattern Pattern
	// Place is the place holding this proxy.
	Place Place
	// Live is the count of governed activities currently live here; a
	// proxy only reports home when Live drops to zero, so a stuck
	// activity shows up as Live > 0 with no outbound snapshot.
	Live int
	// Epoch is the number of snapshots this proxy has sent home.
	Epoch uint64
	// Recv/Sent are the proxy's cumulative counters (see ctlSnapshot).
	Recv uint64
	Sent map[Place]uint64
}

// DenseBufferState reports snapshots sitting in a master place's
// FINISH_DENSE coalescing buffer, waiting for the self-addressed flush
// marker to come around.
type DenseBufferState struct {
	// Place is the master buffering the snapshots.
	Place Place
	// Home and Seq identify the finish the snapshots belong to.
	Home Place
	Seq  uint64
	// Buffered is the number of snapshots awaiting the flush.
	Buffered int
}

// state() implementations -----------------------------------------------

func (r *defaultRoot) state() FinishState {
	r.w.mu.Lock()
	defer r.w.mu.Unlock()
	s := FinishState{
		Home:     r.ref.ID.Home,
		Seq:      r.ref.ID.Seq,
		Pattern:  r.ref.Pattern,
		Waiting:  r.w.waiting,
		Done:     r.w.done,
		Live:     r.live,
		Promoted: r.promoted,
		Events:   r.events,
		Errs:     len(r.w.errs),
	}
	if !r.promoted {
		return s
	}
	// Reconstruct the reconciliation the termination check performs and
	// keep every place that does not balance.
	totSent := make(map[Place]uint64, len(r.snaps)+len(r.sentHome))
	for q, n := range r.sentHome {
		totSent[q] += n
	}
	for _, snap := range r.snaps {
		for q, n := range snap.Sent {
			totSent[q] += n
		}
	}
	places := make(map[Place]struct{}, len(totSent)+len(r.snaps))
	for q := range totSent {
		places[q] = struct{}{}
	}
	for q := range r.snaps {
		places[q] = struct{}{}
	}
	for q := range places {
		var recv uint64
		if q == r.ref.ID.Home {
			recv = r.recvHome
		} else {
			recv = r.snaps[q].Recv
		}
		if sent := totSent[q]; sent != recv {
			s.Deficits = append(s.Deficits, PlaceDeficit{Place: q, Sent: sent, Recv: recv})
		}
	}
	sort.Slice(s.Deficits, func(i, j int) bool { return s.Deficits[i].Place < s.Deficits[j].Place })
	return s
}

func (r *counterRoot) state() FinishState {
	r.w.mu.Lock()
	defer r.w.mu.Unlock()
	return FinishState{
		Home:    r.ref.ID.Home,
		Seq:     r.ref.ID.Seq,
		Pattern: r.ref.Pattern,
		Waiting: r.w.waiting,
		Done:    r.w.done,
		Live:    r.count,
		Events:  r.events,
		Errs:    len(r.w.errs),
	}
}

// ActivityCount is the cumulative spawned/completed pair of one finish
// pattern, summed over every place and every finish instance that used
// the pattern since the runtime was created.
type ActivityCount struct {
	Pattern   Pattern
	Spawned   uint64
	Completed uint64
}

// Balanced reports whether every spawned activity has completed.
func (a ActivityCount) Balanced() bool { return a.Spawned == a.Completed }

// ActivityCounts returns the per-pattern conservation counters, indexed
// by Pattern. Whenever no governed activity is live — in particular
// after Run returns — Spawned must equal Completed for every pattern;
// an imbalance means an activity was lost (or double-counted) by the
// termination-detection machinery, and is exactly what the chaos
// harness's conservation invariant flags.
func (rt *Runtime) ActivityCounts() []ActivityCount {
	out := make([]ActivityCount, numPatterns)
	for p := Pattern(0); p < numPatterns; p++ {
		out[p] = ActivityCount{
			Pattern:   p,
			Spawned:   rt.acts[p].spawned.Load(),
			Completed: rt.acts[p].completed.Load(),
		}
	}
	return out
}

// Runtime accessors ------------------------------------------------------

// FinishStates returns a view of every live finish root on every place,
// sorted by (Home, Seq). Roots are created at FinishPragma entry and
// removed once their wait returns, so a state with Waiting set and an
// Events counter frozen across observations is a stalled finish.
func (rt *Runtime) FinishStates() []FinishState {
	var out []FinishState
	for _, pl := range rt.places {
		pl.finMu.Lock()
		roots := make([]rootFinish, 0, len(pl.roots))
		for _, root := range pl.roots {
			roots = append(roots, root)
		}
		pl.finMu.Unlock()
		// state() takes the root's own lock; call outside finMu.
		for _, root := range roots {
			out = append(out, root.state())
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Home != out[j].Home {
			return out[i].Home < out[j].Home
		}
		return out[i].Seq < out[j].Seq
	})
	return out
}

// ProxyStates returns a view of every live vector-protocol proxy on every
// place, sorted by (Home, Seq, Place).
func (rt *Runtime) ProxyStates() []ProxyState {
	var out []ProxyState
	for _, pl := range rt.places {
		pl.finMu.Lock()
		for _, px := range pl.proxies {
			sent := make(map[Place]uint64, len(px.sent))
			for q, n := range px.sent {
				sent[q] = n
			}
			out = append(out, ProxyState{
				Home:    px.ref.ID.Home,
				Seq:     px.ref.ID.Seq,
				Pattern: px.ref.Pattern,
				Place:   pl.id,
				Live:    px.live,
				Epoch:   px.epoch,
				Recv:    px.recv,
				Sent:    sent,
			})
		}
		pl.finMu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Home != b.Home {
			return a.Home < b.Home
		}
		if a.Seq != b.Seq {
			return a.Seq < b.Seq
		}
		return a.Place < b.Place
	})
	return out
}

// DenseBufferStates returns the FINISH_DENSE snapshots currently parked
// in master-place coalescing buffers, sorted by (Place, Home, Seq). A
// nonempty buffer that never drains means a lost flush marker.
func (rt *Runtime) DenseBufferStates() []DenseBufferState {
	var out []DenseBufferState
	for _, pl := range rt.places {
		pl.denseMu.Lock()
		for key, snaps := range pl.denseBuf {
			if len(snaps) == 0 {
				continue
			}
			out = append(out, DenseBufferState{
				Place:    pl.id,
				Home:     key.id.Home,
				Seq:      key.id.Seq,
				Buffered: len(snaps),
			})
		}
		pl.denseMu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Place != b.Place {
			return a.Place < b.Place
		}
		if a.Home != b.Home {
			return a.Home < b.Home
		}
		return a.Seq < b.Seq
	})
	return out
}

// WriteFinishDump renders the full finish diagnostic — roots with their
// who-owes-whom deficits, proxies, and dense buffers — in the form the
// stall watchdog emits.
func (rt *Runtime) WriteFinishDump(w io.Writer) {
	roots := rt.FinishStates()
	fmt.Fprintf(w, "finish roots: %d\n", len(roots))
	for _, s := range roots {
		fmt.Fprintf(w, "  %s home=p%d seq=%d waiting=%v done=%v live=%d events=%d errs=%d\n",
			s.Pattern, s.Home, s.Seq, s.Waiting, s.Done, s.Live, s.Events, s.Errs)
		for _, d := range s.Deficits {
			fmt.Fprintf(w, "    owes: place p%d pending=%d (sent=%d recv=%d)\n",
				d.Place, d.Pending(), d.Sent, d.Recv)
		}
	}
	if proxies := rt.ProxyStates(); len(proxies) > 0 {
		fmt.Fprintf(w, "finish proxies: %d\n", len(proxies))
		for _, p := range proxies {
			fmt.Fprintf(w, "  %s home=p%d seq=%d at=p%d live=%d epoch=%d recv=%d sent=%d\n",
				p.Pattern, p.Home, p.Seq, p.Place, p.Live, p.Epoch, p.Recv, len(p.Sent))
		}
	}
	if bufs := rt.DenseBufferStates(); len(bufs) > 0 {
		fmt.Fprintf(w, "dense buffers: %d\n", len(bufs))
		for _, b := range bufs {
			fmt.Fprintf(w, "  master=p%d finish home=p%d seq=%d buffered=%d\n",
				b.Place, b.Home, b.Seq, b.Buffered)
		}
	}
}
