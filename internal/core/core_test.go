package core

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"apgas/internal/x10rt"
)

// newTestRuntime builds a runtime with sane test defaults.
func newTestRuntime(t *testing.T, places int, mut ...func(*Config)) *Runtime {
	t.Helper()
	cfg := Config{Places: places, CheckPatterns: true, PlacesPerHost: 4}
	for _, f := range mut {
		f(&cfg)
	}
	rt, err := NewRuntime(cfg)
	if err != nil {
		t.Fatalf("NewRuntime: %v", err)
	}
	t.Cleanup(rt.Close)
	return rt
}

func TestRunExecutesAtPlaceZero(t *testing.T) {
	rt := newTestRuntime(t, 4)
	var at Place = -1
	if err := rt.Run(func(ctx *Ctx) { at = ctx.Place() }); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if at != 0 {
		t.Fatalf("main ran at place %d, want 0", at)
	}
}

func TestAsyncFinishLocal(t *testing.T) {
	rt := newTestRuntime(t, 1)
	var count atomic.Int64
	err := rt.Run(func(ctx *Ctx) {
		err := ctx.Finish(func(c *Ctx) {
			for i := 0; i < 100; i++ {
				c.Async(func(*Ctx) { count.Add(1) })
			}
		})
		if err != nil {
			t.Errorf("inner finish: %v", err)
		}
		if got := count.Load(); got != 100 {
			t.Errorf("after finish: count=%d, want 100", got)
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestFib(t *testing.T) {
	// The paper's §2.2 fib example: finish+async recursive decomposition.
	rt := newTestRuntime(t, 1)
	var fib func(c *Ctx, n int) int
	fib = func(c *Ctx, n int) int {
		if n < 2 {
			return n
		}
		var f1, f2 int
		if err := c.Finish(func(cc *Ctx) {
			cc.Async(func(ca *Ctx) { f1 = fib(ca, n-1) })
			f2 = fib(cc, n-2)
		}); err != nil {
			t.Errorf("fib finish: %v", err)
		}
		return f1 + f2
	}
	err := rt.Run(func(ctx *Ctx) {
		if got := fib(ctx, 15); got != 610 {
			t.Errorf("fib(15) = %d, want 610", got)
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestAtSynchronous(t *testing.T) {
	rt := newTestRuntime(t, 4)
	err := rt.Run(func(ctx *Ctx) {
		for p := 1; p < 4; p++ {
			var ranAt Place = -1
			ctx.At(Place(p), func(c *Ctx) { ranAt = c.Place() })
			if ranAt != Place(p) {
				t.Errorf("At(%d) ran at %d", p, ranAt)
			}
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestAtEval(t *testing.T) {
	rt := newTestRuntime(t, 3)
	err := rt.Run(func(ctx *Ctx) {
		got := AtEval(ctx, 2, func(c *Ctx) int { return int(c.Place()) * 7 })
		if got != 14 {
			t.Errorf("AtEval = %d, want 14", got)
		}
		s := AtEval(ctx, 1, func(c *Ctx) string { return fmt.Sprintf("place-%d", c.Place()) })
		if s != "place-1" {
			t.Errorf("AtEval string = %q", s)
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestAtPanicPropagates(t *testing.T) {
	rt := newTestRuntime(t, 2)
	sentinel := errors.New("remote boom")
	err := rt.Run(func(ctx *Ctx) {
		defer func() {
			r := recover()
			if r == nil {
				t.Error("At did not re-panic at origin")
				return
			}
			if !errors.Is(r.(error), sentinel) {
				t.Errorf("recovered %v, want %v", r, sentinel)
			}
		}()
		ctx.At(1, func(*Ctx) { panic(sentinel) })
	})
	if err != nil {
		t.Fatalf("Run should succeed (panic recovered in main): %v", err)
	}
}

func TestFinishAcrossPlaces(t *testing.T) {
	rt := newTestRuntime(t, 8)
	var count atomic.Int64
	err := rt.Run(func(ctx *Ctx) {
		err := ctx.Finish(func(c *Ctx) {
			for _, p := range c.Places() {
				c.AtAsync(p, func(cc *Ctx) {
					count.Add(1)
					// Nested remote spawn: stress arbitrary nesting.
					cc.AtAsync((cc.Place()+1)%Place(cc.NumPlaces()), func(*Ctx) {
						count.Add(1)
					})
				})
			}
		})
		if err != nil {
			t.Errorf("finish: %v", err)
		}
		if got := count.Load(); got != 16 {
			t.Errorf("count = %d, want 16", got)
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}

// TestFinishDeepChain exercises a long chain of dependent remote spawns —
// the pattern that defeats naive termination detection under reordering.
func TestFinishDeepChain(t *testing.T) {
	rt := newTestRuntime(t, 4, func(c *Config) {
		c.Transport = mustChan(t, 4, 777) // adversarial control reordering
	})
	var hops atomic.Int64
	err := rt.Run(func(ctx *Ctx) {
		err := ctx.Finish(func(c *Ctx) {
			var hop func(cc *Ctx, n int)
			hop = func(cc *Ctx, n int) {
				hops.Add(1)
				if n == 0 {
					return
				}
				cc.AtAsync((cc.Place()+1)%4, func(c3 *Ctx) { hop(c3, n-1) })
			}
			c.Async(func(cc *Ctx) { hop(cc, 200) })
		})
		if err != nil {
			t.Errorf("finish: %v", err)
		}
		if got := hops.Load(); got != 201 {
			t.Errorf("hops = %d, want 201", got)
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func mustChan(t *testing.T, places int, seed int64) x10rt.Transport {
	t.Helper()
	tr, err := x10rt.NewChanTransport(x10rt.ChanOptions{Places: places, ReorderSeed: seed})
	if err != nil {
		t.Fatalf("chan transport: %v", err)
	}
	return tr
}

// TestFinishRandomWaves drives the default finish with random waves of
// remote activity under control-message reordering, checking the count is
// exact when the finish returns — the safety property of §3.1.
func TestFinishRandomWaves(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			rt := newTestRuntime(t, 6, func(c *Config) {
				c.Transport = mustChan(t, 6, seed)
			})
			var count atomic.Int64
			var want int64
			// A deterministic pseudo-random spawn tree.
			var spawn func(c *Ctx, depth, fan int)
			spawn = func(c *Ctx, depth, fan int) {
				count.Add(1)
				if depth == 0 {
					return
				}
				for i := 0; i < fan; i++ {
					dst := Place((int(c.Place()) + i*depth + 1) % 6)
					c.AtAsync(dst, func(cc *Ctx) { spawn(cc, depth-1, fan) })
				}
			}
			// want = sum over tree: nodes of a complete fan-ary tree.
			depth, fan := 4, 3
			nodes := int64(0)
			pow := int64(1)
			for d := 0; d <= depth; d++ {
				nodes += pow
				pow *= int64(fan)
			}
			want = nodes
			err := rt.Run(func(ctx *Ctx) {
				if err := ctx.Finish(func(c *Ctx) { spawn(c, depth, fan) }); err != nil {
					t.Errorf("finish: %v", err)
				}
				if got := count.Load(); got != want {
					t.Errorf("count = %d, want %d", got, want)
				}
			})
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
		})
	}
}

func TestNestedFinishIsolation(t *testing.T) {
	rt := newTestRuntime(t, 4)
	err := rt.Run(func(ctx *Ctx) {
		var order []string
		var mu sync.Mutex
		log := func(s string) { mu.Lock(); order = append(order, s); mu.Unlock() }
		err := ctx.Finish(func(c *Ctx) {
			c.AtAsync(1, func(cc *Ctx) {
				if err := cc.Finish(func(c3 *Ctx) {
					c3.AtAsync(2, func(*Ctx) { log("inner") })
				}); err != nil {
					t.Errorf("inner finish: %v", err)
				}
				log("after-inner") // must come after "inner"
			})
		})
		if err != nil {
			t.Errorf("outer finish: %v", err)
		}
		mu.Lock()
		defer mu.Unlock()
		if len(order) != 2 || order[0] != "inner" || order[1] != "after-inner" {
			t.Errorf("order = %v", order)
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestFinishCollectsErrors(t *testing.T) {
	rt := newTestRuntime(t, 4)
	err := rt.Run(func(ctx *Ctx) {
		err := ctx.Finish(func(c *Ctx) {
			c.AtAsync(1, func(*Ctx) { panic("boom-1") })
			c.AtAsync(2, func(*Ctx) { panic("boom-2") })
			c.Async(func(*Ctx) {}) // a clean one
		})
		if err == nil {
			t.Error("finish returned nil, want combined error")
			return
		}
		var m *MultiError
		if errors.As(err, &m) {
			if len(m.Errs) != 2 {
				t.Errorf("got %d errors, want 2: %v", len(m.Errs), err)
			}
		} else {
			t.Errorf("want MultiError, got %T: %v", err, err)
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestFinishBodyPanicStillDrains(t *testing.T) {
	rt := newTestRuntime(t, 2)
	var done atomic.Bool
	err := rt.Run(func(ctx *Ctx) {
		err := ctx.Finish(func(c *Ctx) {
			c.AtAsync(1, func(*Ctx) { done.Store(true) })
			panic("body dies")
		})
		if err == nil {
			t.Error("finish swallowed body panic")
		}
		if !done.Load() {
			t.Error("finish returned before spawned activity completed")
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestRunReturnsMainError(t *testing.T) {
	rt := newTestRuntime(t, 2)
	err := rt.Run(func(ctx *Ctx) { panic("main dead") })
	if err == nil || err.Error() != "activity panic: main dead" {
		t.Fatalf("Run error = %v", err)
	}
	// The runtime survives a failed Run.
	if err := rt.Run(func(*Ctx) {}); err != nil {
		t.Fatalf("second Run: %v", err)
	}
}

// --- specialized pattern tests ---

func TestFinishAsyncPattern(t *testing.T) {
	rt := newTestRuntime(t, 2)
	var ran atomic.Bool
	err := rt.Run(func(ctx *Ctx) {
		if err := ctx.FinishPragma(PatternAsync, func(c *Ctx) {
			c.AtAsync(1, func(*Ctx) { ran.Store(true) })
		}); err != nil {
			t.Errorf("FINISH_ASYNC: %v", err)
		}
		if !ran.Load() {
			t.Error("FINISH_ASYNC returned before activity completed")
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestFinishAsyncContractViolation(t *testing.T) {
	rt := newTestRuntime(t, 2)
	err := rt.Run(func(ctx *Ctx) {
		ferr := ctx.FinishPragma(PatternAsync, func(c *Ctx) {
			c.Async(func(*Ctx) {})
			c.Async(func(*Ctx) {}) // second governed activity: violation
		})
		if ferr == nil || !strings.Contains(ferr.Error(), "contract violation") {
			t.Errorf("expected contract violation error, got %v", ferr)
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestFinishAsyncErrorPropagates(t *testing.T) {
	rt := newTestRuntime(t, 2)
	err := rt.Run(func(ctx *Ctx) {
		err := ctx.FinishPragma(PatternAsync, func(c *Ctx) {
			c.AtAsync(1, func(*Ctx) { panic("async boom") })
		})
		if err == nil {
			t.Error("FINISH_ASYNC lost the remote error")
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestFinishLocalPattern(t *testing.T) {
	rt := newTestRuntime(t, 2)
	var n atomic.Int64
	err := rt.Run(func(ctx *Ctx) {
		if err := ctx.FinishPragma(PatternLocal, func(c *Ctx) {
			for i := 0; i < 50; i++ {
				c.Async(func(*Ctx) { n.Add(1) })
			}
		}); err != nil {
			t.Errorf("FINISH_LOCAL: %v", err)
		}
		if n.Load() != 50 {
			t.Errorf("n = %d, want 50", n.Load())
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	// No control messages may have been sent.
	if msgs := rt.Transport().Stats().Messages[x10rt.ControlClass]; msgs != 0 {
		t.Errorf("FINISH_LOCAL sent %d control messages, want 0", msgs)
	}
}

func TestFinishLocalRejectsRemote(t *testing.T) {
	rt := newTestRuntime(t, 2)
	err := rt.Run(func(ctx *Ctx) {
		ferr := ctx.FinishPragma(PatternLocal, func(c *Ctx) {
			c.AtAsync(1, func(*Ctx) {})
		})
		if ferr == nil || !strings.Contains(ferr.Error(), "contract violation") {
			t.Errorf("expected contract violation error, got %v", ferr)
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestFinishSPMDPattern(t *testing.T) {
	rt := newTestRuntime(t, 8)
	var n atomic.Int64
	err := rt.Run(func(ctx *Ctx) {
		if err := ctx.FinishPragma(PatternSPMD, func(c *Ctx) {
			for _, p := range c.Places() {
				c.AtAsync(p, func(cc *Ctx) {
					// Nested finish makes inner spawns legal under SPMD.
					if err := cc.Finish(func(c3 *Ctx) {
						c3.Async(func(*Ctx) { n.Add(1) })
						c3.Async(func(*Ctx) { n.Add(1) })
					}); err != nil {
						t.Errorf("nested: %v", err)
					}
				})
			}
		}); err != nil {
			t.Errorf("FINISH_SPMD: %v", err)
		}
		if n.Load() != 16 {
			t.Errorf("n = %d, want 16", n.Load())
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestFinishSPMDViolation(t *testing.T) {
	rt := newTestRuntime(t, 2)
	errCh := make(chan error, 1)
	err := rt.Run(func(ctx *Ctx) {
		errCh <- ctx.FinishPragma(PatternSPMD, func(c *Ctx) {
			c.AtAsync(1, func(cc *Ctx) {
				defer func() { recover() }() // swallow so the test can assert on the finish error
				cc.Async(func(*Ctx) {})      // naked spawn at remote place: violation
			})
		})
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	// The violating activity panicked; the panic is reported as its error.
	if ferr := <-errCh; ferr != nil {
		t.Logf("finish error (expected): %v", ferr)
	}
}

func TestFinishHerePattern(t *testing.T) {
	rt := newTestRuntime(t, 4)
	err := rt.Run(func(ctx *Ctx) {
		home := ctx.Place()
		var got atomic.Int64
		before := rt.Transport().Stats()
		if err := ctx.FinishPragma(PatternHere, func(c *Ctx) {
			c.AtAsync(2, func(cc *Ctx) {
				v := int64(cc.Place()) * 100
				cc.AtAsync(home, func(*Ctx) { got.Store(v) }) // the response
			})
		}); err != nil {
			t.Errorf("FINISH_HERE: %v", err)
		}
		if got.Load() != 200 {
			t.Errorf("got = %d, want 200", got.Load())
		}
		// The round trip itself must require no control messages.
		if d := rt.Transport().Stats().Sub(before); d.Messages[x10rt.ControlClass] != 0 {
			t.Errorf("FINISH_HERE used %d control messages, want 0", d.Messages[x10rt.ControlClass])
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestFinishHereOneWayRelease(t *testing.T) {
	// A FINISH_HERE whose remote activity never responds must still
	// terminate (explicit token release).
	rt := newTestRuntime(t, 2)
	var ran atomic.Bool
	err := rt.Run(func(ctx *Ctx) {
		if err := ctx.FinishPragma(PatternHere, func(c *Ctx) {
			c.AtAsync(1, func(*Ctx) { ran.Store(true) })
		}); err != nil {
			t.Errorf("FINISH_HERE: %v", err)
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !ran.Load() {
		t.Error("remote activity did not run")
	}
}

func TestFinishHereManyRoundTrips(t *testing.T) {
	rt := newTestRuntime(t, 8)
	var n atomic.Int64
	err := rt.Run(func(ctx *Ctx) {
		home := ctx.Place()
		if err := ctx.FinishPragma(PatternHere, func(c *Ctx) {
			for p := 1; p < 8; p++ {
				c.AtAsync(Place(p), func(cc *Ctx) {
					cc.AtAsync(home, func(*Ctx) { n.Add(1) })
				})
			}
		}); err != nil {
			t.Errorf("FINISH_HERE: %v", err)
		}
		if n.Load() != 7 {
			t.Errorf("n = %d, want 7", n.Load())
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestFinishDensePattern(t *testing.T) {
	// Dense all-to-all spawning under FINISH_DENSE with routing through
	// per-host masters (PlacesPerHost=4 in the test config).
	rt := newTestRuntime(t, 8)
	var n atomic.Int64
	err := rt.Run(func(ctx *Ctx) {
		if err := ctx.FinishPragma(PatternDense, func(c *Ctx) {
			for _, p := range c.Places() {
				c.AtAsync(p, func(cc *Ctx) {
					for _, q := range cc.Places() {
						cc.AtAsync(q, func(*Ctx) { n.Add(1) })
					}
				})
			}
		}); err != nil {
			t.Errorf("FINISH_DENSE: %v", err)
		}
		if n.Load() != 64 {
			t.Errorf("n = %d, want 64", n.Load())
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestFinishDenseUnderReordering(t *testing.T) {
	rt := newTestRuntime(t, 8, func(c *Config) {
		c.Transport = mustChan(t, 8, 31337)
	})
	var n atomic.Int64
	err := rt.Run(func(ctx *Ctx) {
		if err := ctx.FinishPragma(PatternDense, func(c *Ctx) {
			for _, p := range c.Places() {
				c.AtAsync(p, func(cc *Ctx) {
					for q := 0; q < 8; q++ {
						cc.AtAsync(Place(q), func(*Ctx) { n.Add(1) })
					}
				})
			}
		}); err != nil {
			t.Errorf("FINISH_DENSE: %v", err)
		}
		if n.Load() != 64 {
			t.Errorf("n = %d, want 64", n.Load())
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestDenseRoute(t *testing.T) {
	rt := newTestRuntime(t, 16, func(c *Config) { c.PlacesPerHost = 4 })
	cases := []struct {
		from, home Place
		want       []Place
	}{
		{5, 0, []Place{4, 0}},     // master(5)=4, master(0)=0=home
		{5, 1, []Place{4, 0, 1}},  // full three-hop route
		{4, 1, []Place{0, 1}},     // from is its own master
		{6, 4, []Place{4}},        // master(6)=4=home, collapse
		{1, 2, []Place{0, 2}},     // same host: via shared master
		{13, 14, []Place{12, 14}}, // same host, non-master
	}
	for _, c := range cases {
		got := rt.denseRoute(c.from, c.home)
		if len(got) != len(c.want) {
			t.Errorf("denseRoute(%d,%d) = %v, want %v", c.from, c.home, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("denseRoute(%d,%d) = %v, want %v", c.from, c.home, got, c.want)
				break
			}
		}
	}
}
