package core_test

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"apgas/internal/core"
	"apgas/internal/x10rt"
	"apgas/internal/x10rt/transporttest"
)

// Litmus-style ordering tests, after the classic shared-memory litmus
// shapes (MP, SB, IRIW), recast for an active-message runtime. Each test
// pins down one edge of the delivery model the finish protocols and GLB
// lifeline resuscitation assume:
//
//   - MP (message passing): per-link FIFO — a message cannot overtake an
//     earlier one on the same (src, dst) link. This is what lets a
//     finish trust that a spawn precedes the credit that pays for it.
//   - SB (store buffering): cross-link weakness is permitted mid-flight
//     (both sides may observe "nothing yet"), but finish quiescence is a
//     full synchronization: after the governing finish returns, every
//     write it governed is visible everywhere.
//   - IRIW (independent reads of independent writes): readers on
//     different links may disagree about the order of independent
//     writers — the model makes no global-order promise — yet every
//     write is delivered exactly once to every reader.
//
// The message-pair halves run over all three transports (chan, TCP,
// batching); the runtime halves use the in-process transports, since
// spawn bodies are closures and cannot cross a serializing wire.

// litmusHandler is clear of the runtime range, transporttest, and the
// harness microbenchmarks.
const litmusHandler = x10rt.UserHandlerBase + 300

// litmusMesh is one transport universe under test.
type litmusMesh struct {
	places int
	ep     func(p int) x10rt.Transport
	reg    func(id x10rt.HandlerID, h x10rt.Handler) error
}

func (m *litmusMesh) flush() {
	seen := map[x10rt.Transport]bool{}
	for p := 0; p < m.places; p++ {
		if tr := m.ep(p); !seen[tr] {
			seen[tr] = true
			if f, ok := tr.(x10rt.Flusher); ok {
				_ = f.Flush(-1)
			}
		}
	}
}

// litmusMeshes builds the three wire shapes the suite must hold on:
// in-process chan, a real serializing TCP mesh, and the batching wrapper
// (over chan), whose coalescing must preserve per-link order.
func litmusMeshes(t *testing.T, places int) map[string]*litmusMesh {
	t.Helper()
	out := map[string]*litmusMesh{}

	ch, err := x10rt.NewChanTransport(x10rt.ChanOptions{Places: places})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ch.Close() })
	out["chan"] = &litmusMesh{places: places, ep: func(int) x10rt.Transport { return ch }, reg: ch.Register}

	tcp, err := x10rt.NewLocalTCPMesh(places)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		for _, tr := range tcp {
			tr.Close()
		}
	})
	out["tcp"] = &litmusMesh{
		places: places,
		ep:     func(p int) x10rt.Transport { return tcp[p] },
		reg: func(id x10rt.HandlerID, h x10rt.Handler) error {
			for _, tr := range tcp {
				if err := tr.Register(id, h); err != nil {
					return err
				}
			}
			return nil
		},
	}

	inner, err := x10rt.NewChanTransport(x10rt.ChanOptions{Places: places})
	if err != nil {
		t.Fatal(err)
	}
	bt := x10rt.NewBatchingTransport(inner, x10rt.BatchOptions{
		MaxDelay:  100 * time.Microsecond,
		MaxFrames: 16,
	})
	t.Cleanup(func() { bt.Close() })
	out["batch"] = &litmusMesh{places: places, ep: func(int) x10rt.Transport { return bt }, reg: bt.Register}

	// The codec wire: v4 frames with per-connection type tables. The
	// ordering model must survive the handshake riding the data stream.
	ctcp, err := x10rt.NewLocalCodecTCPMesh(places)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		for _, tr := range ctcp {
			tr.Close()
		}
	})
	out["tcp-codec"] = &litmusMesh{
		places: places,
		ep:     func(p int) x10rt.Transport { return ctcp[p] },
		reg: func(id x10rt.HandlerID, h x10rt.Handler) error {
			for _, tr := range ctcp {
				if err := tr.Register(id, h); err != nil {
					return err
				}
			}
			return nil
		},
	}

	return out
}

// awaitCount polls until the counter reaches want, nudging flushes so
// batched tails drain.
func awaitCount(t *testing.T, m *litmusMesh, what string, c *atomic.Int64, want int64) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for c.Load() < want {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s: %d/%d", what, c.Load(), want)
		}
		m.flush()
		time.Sleep(100 * time.Microsecond)
	}
}

// TestLitmusTransportMP: the message-passing shape on one link. The
// writer alternates data(i), flag(i) down 0→1; observing flag(i) with
// data older than i would mean the flag overtook its data — forbidden
// under per-link FIFO on every transport.
func TestLitmusTransportMP(t *testing.T) {
	const rounds = 400
	for name, m := range litmusMeshes(t, 2) {
		t.Run(name, func(t *testing.T) {
			var data atomic.Int64
			data.Store(-1)
			var flags, forbidden atomic.Int64
			err := m.reg(litmusHandler, func(src, dst int, payload any) {
				p := payload.(transporttest.Payload)
				switch p.Tag {
				case "data":
					data.Store(int64(p.Seq))
				case "flag":
					if data.Load() < int64(p.Seq) {
						forbidden.Add(1)
					}
					flags.Add(1)
				}
			})
			if err != nil {
				t.Fatalf("Register: %v", err)
			}
			for i := 0; i < rounds; i++ {
				if err := m.ep(0).Send(0, 1, litmusHandler, transporttest.Payload{Seq: i, Tag: "data"}, 16, x10rt.DataClass); err != nil {
					t.Fatalf("Send data: %v", err)
				}
				if err := m.ep(0).Send(0, 1, litmusHandler, transporttest.Payload{Seq: i, Tag: "flag"}, 16, x10rt.DataClass); err != nil {
					t.Fatalf("Send flag: %v", err)
				}
			}
			awaitCount(t, m, "flags", &flags, rounds)
			if n := forbidden.Load(); n != 0 {
				t.Errorf("MP forbidden outcome observed %d times: flag overtook its data", n)
			}
		})
	}
}

// TestLitmusTransportSB: the store-buffering shape. Both places send a
// token and immediately look for the other's. The weak outcome — neither
// has arrived yet — is explicitly permitted (links are asynchronous);
// what must hold is exactly-once delivery of every token.
func TestLitmusTransportSB(t *testing.T) {
	const rounds = 200
	for name, m := range litmusMeshes(t, 2) {
		t.Run(name, func(t *testing.T) {
			var recv [2]atomic.Int64
			if err := m.reg(litmusHandler, func(src, dst int, payload any) {
				recv[dst].Add(1)
			}); err != nil {
				t.Fatalf("Register: %v", err)
			}
			weak := 0
			for i := 0; i < rounds; i++ {
				var wg sync.WaitGroup
				sawOther := [2]bool{}
				for p := 0; p < 2; p++ {
					wg.Add(1)
					go func(p int) {
						defer wg.Done()
						if err := m.ep(p).Send(p, 1-p, litmusHandler, transporttest.Payload{Seq: i}, 8, x10rt.DataClass); err != nil {
							t.Errorf("Send: %v", err)
							return
						}
						sawOther[p] = recv[p].Load() > int64(i)
					}(p)
				}
				wg.Wait()
				if !sawOther[0] && !sawOther[1] {
					weak++ // allowed: both tokens still in flight
				}
				// Barrier between rounds: both tokens of round i delivered.
				awaitCount(t, m, "tokens@0", &recv[0], int64(i+1))
				awaitCount(t, m, "tokens@1", &recv[1], int64(i+1))
			}
			t.Logf("SB weak outcome (both miss) in %d/%d rounds — permitted", weak, rounds)
			for p := 0; p < 2; p++ {
				if n := recv[p].Load(); n != rounds {
					t.Errorf("place %d received %d tokens, want exactly %d", p, n, rounds)
				}
			}
		})
	}
}

// TestLitmusTransportIRIW: independent writers 0 and 1 each send to
// readers 2 and 3. Readers may disagree about which writer came first —
// the model promises no global write order — but each reader must get
// exactly one message per writer per round, in per-writer FIFO across
// rounds.
func TestLitmusTransportIRIW(t *testing.T) {
	const rounds = 150
	for name, m := range litmusMeshes(t, 4) {
		t.Run(name, func(t *testing.T) {
			type obsLog struct {
				mu    sync.Mutex
				first []int // writer observed first, per round
				seen  map[[2]int]int
				last  map[int]int // last seq per writer (FIFO check)
				bad   []string
			}
			logs := [2]*obsLog{}
			for i := range logs {
				logs[i] = &obsLog{seen: map[[2]int]int{}, last: map[int]int{0: -1, 1: -1}}
			}
			var got atomic.Int64
			if err := m.reg(litmusHandler, func(src, dst int, payload any) {
				p := payload.(transporttest.Payload)
				l := logs[dst-2]
				l.mu.Lock()
				l.seen[[2]int{src, p.Seq}]++
				if p.Seq > l.last[src] {
					if len(l.first) == p.Seq { // first arrival of this round
						l.first = append(l.first, src)
					}
					l.last[src] = p.Seq
				} else {
					l.bad = append(l.bad, fmt.Sprintf("writer %d seq %d after %d", src, p.Seq, l.last[src]))
				}
				l.mu.Unlock()
				got.Add(1)
			}); err != nil {
				t.Fatalf("Register: %v", err)
			}
			for i := 0; i < rounds; i++ {
				for w := 0; w < 2; w++ {
					for r := 2; r < 4; r++ {
						if err := m.ep(w).Send(w, r, litmusHandler, transporttest.Payload{Seq: i}, 8, x10rt.DataClass); err != nil {
							t.Fatalf("Send: %v", err)
						}
					}
				}
				awaitCount(t, m, "round deliveries", &got, int64(4*(i+1)))
			}
			disagree := 0
			for i := 0; i < rounds; i++ {
				for _, l := range logs {
					for w := 0; w < 2; w++ {
						if n := l.seen[[2]int{w, i}]; n != 1 {
							t.Errorf("round %d: writer %d delivered %d times to a reader, want exactly once", i, w, n)
						}
					}
				}
				if i < len(logs[0].first) && i < len(logs[1].first) && logs[0].first[i] != logs[1].first[i] {
					disagree++
				}
			}
			for r, l := range logs {
				if len(l.bad) > 0 {
					t.Errorf("reader %d: per-writer FIFO broken: %v", r+2, l.bad)
				}
			}
			t.Logf("IRIW readers disagreed on writer order in %d/%d rounds — permitted", disagree, rounds)
		})
	}
}

// litmusRuntimes builds runtimes over the in-process wire shapes (chan
// and batching-over-chan); spawn bodies are closures, so the serializing
// TCP wire is exercised by the transport-level halves above instead.
func litmusRuntimes(t *testing.T, places int) map[string]*core.Runtime {
	t.Helper()
	out := map[string]*core.Runtime{}

	rt, err := core.NewRuntime(core.Config{Places: places, CheckPatterns: true, PlacesPerHost: 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	out["chan"] = rt

	inner, err := x10rt.NewChanTransport(x10rt.ChanOptions{Places: places})
	if err != nil {
		t.Fatal(err)
	}
	bt := x10rt.NewBatchingTransport(inner, x10rt.BatchOptions{
		MaxDelay:  100 * time.Microsecond,
		MaxFrames: 16,
	})
	brt, err := core.NewRuntime(core.Config{
		Places: places, CheckPatterns: true, PlacesPerHost: 2,
		Transport: bt, OwnTransport: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(brt.Close)
	out["batch"] = brt

	return out
}

// TestLitmusRuntimeMPAtDirect: MP over AtDirect. Direct bodies execute
// on the destination dispatcher in delivery order, so a concurrent
// observer that reads flag before data must never see data older than
// the flag it read.
func TestLitmusRuntimeMPAtDirect(t *testing.T) {
	const rounds = 300
	for name, rt := range litmusRuntimes(t, 2) {
		t.Run(name, func(t *testing.T) {
			var data, flag atomic.Int64
			data.Store(-1)
			flag.Store(-1)
			var forbidden atomic.Int64
			err := rt.Run(func(ctx *core.Ctx) {
				err := ctx.Finish(func(c *core.Ctx) {
					c.AtAsync(1, func(cc *core.Ctx) { // the observer
						for flag.Load() < rounds-1 {
							f := flag.Load()
							if d := data.Load(); d < f {
								forbidden.Add(1)
							}
						}
					})
					for i := int64(0); i < rounds; i++ {
						i := i
						c.AtDirect(1, 16, func(*core.Ctx) { data.Store(i) })
						c.AtDirect(1, 16, func(*core.Ctx) { flag.Store(i) })
					}
				})
				if err != nil {
					t.Errorf("finish: %v", err)
				}
			})
			if err != nil {
				t.Fatal(err)
			}
			if n := forbidden.Load(); n != 0 {
				t.Errorf("MP forbidden outcome observed %d times over AtDirect", n)
			}
		})
	}
}

// TestLitmusRuntimeMPFinish: MP where the "flag" is finish completion.
// AtAsync spawns race freely in flight, but once the governing finish
// returns, every write it governed is visible from anywhere.
func TestLitmusRuntimeMPFinish(t *testing.T) {
	const rounds = 100
	for name, rt := range litmusRuntimes(t, 3) {
		t.Run(name, func(t *testing.T) {
			var cells [3]atomic.Int64
			err := rt.Run(func(ctx *core.Ctx) {
				for i := int64(1); i <= rounds; i++ {
					i := i
					if err := ctx.Finish(func(c *core.Ctx) {
						for q := 1; q < c.NumPlaces(); q++ {
							q := q
							c.AtAsync(core.Place(q), func(*core.Ctx) { cells[q].Store(i) })
						}
					}); err != nil {
						t.Errorf("finish: %v", err)
						return
					}
					for q := 1; q < ctx.NumPlaces(); q++ {
						if got := cells[q].Load(); got != i {
							t.Errorf("round %d: write at place %d invisible after finish (got %d)", i, q, got)
							return
						}
					}
				}
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestLitmusRuntimeSBFinish: SB with finish as the fence. Two places
// write to each other concurrently under one finish; the both-miss weak
// outcome is allowed mid-flight but forbidden after the finish returns.
func TestLitmusRuntimeSBFinish(t *testing.T) {
	const rounds = 100
	for name, rt := range litmusRuntimes(t, 2) {
		t.Run(name, func(t *testing.T) {
			var x, y atomic.Int64
			err := rt.Run(func(ctx *core.Ctx) {
				for i := int64(1); i <= rounds; i++ {
					i := i
					if err := ctx.FinishPragma(core.PatternSPMD, func(c *core.Ctx) {
						c.AtAsync(1, func(cc *core.Ctx) {
							if err := cc.Finish(func(ic *core.Ctx) {
								ic.Async(func(*core.Ctx) { y.Store(i) })
							}); err != nil {
								t.Errorf("inner finish: %v", err)
							}
						})
						x.Store(i) // the home-side write
					}); err != nil {
						t.Errorf("finish: %v", err)
						return
					}
					if x.Load() != i || y.Load() != i {
						t.Errorf("round %d: SB weak outcome after finish (x=%d y=%d)", i, x.Load(), y.Load())
						return
					}
				}
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestLitmusRuntimeIRIWDense: IRIW under a FINISH_DENSE root with
// software-routed control traffic (PlacesPerHost=2 puts the readers on a
// different host chunk). Readers may log the independent writers in
// different orders, but after the finish each reader saw each writer
// exactly once per round.
func TestLitmusRuntimeIRIWDense(t *testing.T) {
	const rounds = 60
	for name, rt := range litmusRuntimes(t, 4) {
		t.Run(name, func(t *testing.T) {
			type rlog struct {
				mu    sync.Mutex
				order []int
			}
			err := rt.Run(func(ctx *core.Ctx) {
				for i := 0; i < rounds; i++ {
					logs := [2]*rlog{{}, {}}
					if err := ctx.FinishPragma(core.PatternDense, func(c *core.Ctx) {
						for w := 0; w < 2; w++ {
							w := w
							c.AtAsync(core.Place(w), func(cw *core.Ctx) {
								for r := 2; r < 4; r++ {
									r := r
									cw.AtAsync(core.Place(r), func(*core.Ctx) {
										l := logs[r-2]
										l.mu.Lock()
										l.order = append(l.order, w)
										l.mu.Unlock()
									})
								}
							})
						}
					}); err != nil {
						t.Errorf("dense finish: %v", err)
						return
					}
					for r, l := range logs {
						if len(l.order) != 2 || l.order[0]+l.order[1] != 1 {
							t.Errorf("round %d: reader %d observed writers %v, want each exactly once", i, r+2, l.order)
							return
						}
					}
				}
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}
