package core

import (
	"context"
	"fmt"

	"apgas/internal/obs"
	"apgas/internal/x10rt"
)

// Ctx is the execution context of one activity: which place it runs at and
// which finish governs the activities it spawns. A Ctx is only valid on the
// activity it was handed to; never share it across goroutines (spawn
// activities instead).
type Ctx struct {
	rt  *Runtime
	pl  *place
	fin finRef // governing finish for spawns; zero (valid) only inside Run bootstrap

	// span is the trace span id of the current scope — the activity's
	// own span inside runActivity, or the enclosing finish span inside a
	// FinishPragma body. 0 when tracing is off (or in the Run
	// bootstrap). Nested finishes and extension spans (GLB steals,
	// collectives) record it as their span parent.
	span uint64

	// hereHomebound marks, for activities governed by a FINISH_HERE,
	// whether this activity has already passed its termination token
	// home (see finish_patterns.go).
	hereHomebound bool

	// profCtx is the pprof-labeled context installed for this activity's
	// body (nil when profiling is off). Nested label overlays — a
	// FinishPragma's pattern, a collective op's kind — must build on it:
	// pprof.Do installs exactly its context's label map, so overlaying on
	// a fresh context would erase the activity's other labels.
	profCtx context.Context
}

// ProfileContext returns this activity's pprof-labeled context, nil
// when profiling is disabled. Extension layers pass it as the parent of
// their label overlays (Profiler.DoKind).
func (c *Ctx) ProfileContext() context.Context { return c.profCtx }

// SwapProfileContext installs pc as this activity's labeled context and
// returns the previous one. Extension layers that overlay labels around
// a body running on this activity (collective ops, GLB workers) swap in
// the overlaid context so that nested finishes inherit the overlay, and
// swap back when the body returns.
func (c *Ctx) SwapProfileContext(pc context.Context) context.Context {
	old := c.profCtx
	c.profCtx = pc
	return old
}

// TraceSpan returns the trace span id of the current scope (0 when
// tracing is disabled). Extension layers use it as the parent of spans
// they record on this activity's behalf.
func (c *Ctx) TraceSpan() uint64 { return c.span }

// FinishTraceSpan returns the trace span id of the governing finish
// (0 when tracing is disabled), the anchor for spans that outlive the
// current activity but complete under the same finish — e.g. the GLB's
// lifeline-wait spans.
func (c *Ctx) FinishTraceSpan() uint64 { return c.fin.Span }

// WithTraceSpan returns a copy of c whose current trace scope is span.
// Extension layers (the GLB) use it to nest the finishes and messages
// of an operation they span themselves — a steal round trip — under
// that operation's span instead of the worker activity's.
func (c *Ctx) WithTraceSpan(span uint64) *Ctx {
	cc := *c
	cc.span = span
	return &cc
}

// Place returns the place this activity is executing at.
func (c *Ctx) Place() Place { return c.pl.id }

// Runtime returns the hosting runtime.
func (c *Ctx) Runtime() *Runtime { return c.rt }

// NumPlaces returns the number of places, a convenience mirror of
// Runtime().NumPlaces().
func (c *Ctx) NumPlaces() int { return c.rt.NumPlaces() }

// Places returns all places of the computation in order, for
// `for _, p := range ctx.Places()` iteration mirroring X10's
// Place.places().
func (c *Ctx) Places() []Place {
	ps := make([]Place, c.rt.NumPlaces())
	for i := range ps {
		ps[i] = Place(i)
	}
	return ps
}

// spawnMsg asks the destination place to run Body as a new activity
// governed by Fin. Bytes models the serialized size of the captured state.
type spawnMsg struct {
	Fin   finRef
	Body  func(*Ctx)
	Bytes int
	// TC is the distributed trace context of the sending span; the zero
	// value (distributed tracing off) is ignored by the receive path.
	TC obs.SpanContext
	// Direct runs Body inline on the destination dispatcher instead of
	// scheduling an activity (RDMA emulation; see Ctx.AtDirect).
	Direct bool
	// Raw skips the finish begin/terminate bookkeeping in the handler:
	// the body carries its own accounting (self-directed AtDirect).
	Raw bool
	// Uncounted runs Body as an activity governed by no finish at all
	// (X10's @Uncounted async).
	Uncounted bool
}

// defaultSpawnBytes is the modeled wire size of an async closure with no
// declared payload: a task header plus a small captured environment.
const defaultSpawnBytes = 64

// Async spawns f as a new activity at the current place, governed by the
// current finish. It returns immediately.
func (c *Ctx) Async(f func(*Ctx)) {
	fin := c.fin
	if m := c.rt.m; m != nil {
		m.asyncLocal.Inc()
	}
	if pm := c.pl.pm; pm != nil {
		pm.asyncLocal.Inc()
	}
	if !c.rt.finEvent(fin, c.pl, evLocalSpawn, c.pl.id, nil, c) {
		return // governing finish orphaned by a place death
	}
	c.rt.spawnLocal(c.pl, fin, f)
}

// Activity kinds, the pprof "kind" label values of the core runtime's
// execution paths (see obs.Profiler).
const (
	kindAsync     = "async"     // Async / local AtAsync
	kindAtAsync   = "at.async"  // remote spawn arrival (at (p) async)
	kindAtDirect  = "at.direct" // RDMA-emulation path, runs on the dispatcher
	kindUncounted = "uncounted" // UncountedAsync
	kindMain      = "main"      // the root activity of Runtime.Run
)

// spawnLocal schedules an activity at pl. The governing finish has already
// counted it.
func (rt *Runtime) spawnLocal(pl *place, fin finRef, f func(*Ctx)) {
	if tr := rt.tracer; tr != nil && tr.DistEnabled() {
		rt.spawnRun(pl, fin, f, nil, obs.SpanContext{}, pl.id, kindAsync)
		return
	}
	pl.sched.Spawn(func() { rt.runActivity(pl, fin, f, nil, nil, kindAsync) })
}

// actMeta is the distributed-tracing sidecar of one activity run: the
// inbound trace context, the spawning place, and the scheduler slot
// wait. It is allocated only when distributed tracing is on (or an
// inbound message carried a context), so the common path stays
// allocation-free.
type actMeta struct {
	tc       obs.SpanContext
	src      Place
	slotWait int64
}

// spawnRun schedules runActivity. With distributed tracing on it also
// measures how long the activity waited for an execution slot, so the
// cross-place critical path can separate scheduler queueing from body
// execution.
func (rt *Runtime) spawnRun(pl *place, fin finRef, f func(*Ctx), reply chan<- error,
	tc obs.SpanContext, src Place, kind string) {
	if tr := rt.tracer; tr != nil && tr.DistEnabled() {
		pl.sched.SpawnDelayed(func(wait int64) {
			rt.runActivity(pl, fin, f, reply, &actMeta{tc: tc, src: src, slotWait: wait}, kind)
		})
		return
	}
	pl.sched.Spawn(func() {
		rt.runActivity(pl, fin, f, reply, nil, kind)
	})
}

// runBody executes one activity body with panic capture, normalizing a
// recovered panic to an error. It is the shared innermost frame of the
// labeled and unlabeled execution paths, so the profiler wrap changes
// attribution without changing semantics.
func runBody(ctx *Ctx, f func(*Ctx)) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = toError(r)
		}
	}()
	f(ctx)
	return nil
}

// runActivity executes one activity body with panic capture. If reply is
// non-nil the panic value is forwarded there (for synchronous At) and the
// finish sees a clean termination; otherwise the recovered error is
// reported to the governing finish. meta carries the distributed-tracing
// sidecar (nil when distributed tracing is off).
func (rt *Runtime) runActivity(pl *place, fin finRef, f func(*Ctx), reply chan<- error, meta *actMeta, kind string) {
	ctx := &Ctx{rt: rt, pl: pl, fin: fin}
	// Tracing: each activity body is one span in its own lane (tid), so
	// concurrent activities of a place render side by side. The span
	// hangs under the governing finish's span (a child edge), which is
	// what lets the critical-path profiler rebuild the finish tree.
	tr := rt.tracer
	var t0 int64
	var tid uint64
	if tr != nil {
		t0 = tr.Now()
		tid = tr.NextID()
		ctx.span = tid
	}
	if meta != nil {
		// The flow-end lands on the new activity's own lane, at its
		// start, so the arrow from the sending span points at the work
		// the message caused.
		tr.RecvCtx(meta.tc, "flow.spawn", "core", int(pl.id), tid,
			obs.Arg{Key: "src", Val: int64(meta.src)})
		rt.causal.add(CausalSpan{Span: tid, Parent: fin.Span, Name: "async",
			Place: pl.id, Src: meta.src, Home: fin.ID.Home, Seq: fin.ID.Seq, Start: t0})
	}
	// The profiler closure (read-only captures) is built only on the
	// enabled branch; the disabled path runs the body directly, keeping
	// it allocation-identical to a runtime without profiling.
	var err error
	if pr := rt.prof; pr != nil {
		err = pr.Run(int(pl.id), fin.Pattern.metricKey(), kind,
			func(pc context.Context) error {
				ctx.profCtx = pc
				return runBody(ctx, f)
			})
	} else {
		err = runBody(ctx, f)
	}
	if tr != nil {
		if meta != nil && meta.slotWait > 0 {
			tr.CompleteEdge("async", "activity", int(pl.id), tid, t0, fin.Span, obs.EdgeChild,
				obs.Arg{Key: "slotwait", Val: meta.slotWait})
		} else {
			tr.CompleteEdge("async", "activity", int(pl.id), tid, t0, fin.Span, obs.EdgeChild)
		}
	}
	if meta != nil {
		rt.causal.retire(tid)
	}
	if reply != nil {
		rt.finEvent(fin, pl, evTerminate, pl.id, nil, ctx)
		reply <- err
		return
	}
	rt.finEvent(fin, pl, evTerminate, pl.id, err, ctx)
}

// AtAsync spawns f as a new activity at place p, governed by the current
// finish — X10's `at (p) async S` active-message idiom. It returns
// immediately, without waiting for delivery or completion.
func (c *Ctx) AtAsync(p Place, f func(*Ctx)) {
	c.atAsyncSized(p, defaultSpawnBytes, f, nil)
}

// AtAsyncSized is AtAsync with an explicit modeled payload size in bytes,
// used by applications to account for the data captured by the task.
func (c *Ctx) AtAsyncSized(p Place, bytes int, f func(*Ctx)) {
	c.atAsyncSized(p, bytes, f, nil)
}

func (c *Ctx) atAsyncSized(p Place, bytes int, f func(*Ctx), reply chan<- error) {
	if p == c.pl.id {
		// Local fast path: same counting as Async.
		if m := c.rt.m; m != nil {
			m.asyncLocal.Inc()
		}
		if pm := c.pl.pm; pm != nil {
			pm.asyncLocal.Inc()
		}
		if !c.rt.finEvent(c.fin, c.pl, evLocalSpawn, p, nil, c) {
			return // governing finish orphaned by a place death
		}
		// With distributed tracing off, spawn with the seed's closure
		// shape (capturing c, not the unpacked fields): the unpacked
		// closure is a size class larger and costs a measurable slice of
		// the FINISH_LOCAL fast path.
		if tr := c.rt.tracer; tr != nil && tr.DistEnabled() {
			c.rt.spawnRun(c.pl, c.fin, f, reply, obs.SpanContext{}, c.pl.id, kindAsync)
		} else {
			c.pl.sched.Spawn(func() { c.rt.runActivity(c.pl, c.fin, f, reply, nil, kindAsync) })
		}
		return
	}
	if m := c.rt.m; m != nil {
		m.asyncRemote.Inc()
	}
	if pm := c.pl.pm; pm != nil {
		pm.asyncRemote.Inc()
	}
	if fi := c.rt.fids; fi != nil {
		c.rt.flight.Record2(fi.atAsync, fi.catCore, 'i', int(c.pl.id), 0, 0,
			fi.kDst, int64(p), fi.kBytes, int64(bytes))
	}
	if tr := c.rt.tracer; tr != nil {
		tr.Instant("at.async", "core", int(c.pl.id),
			obs.Arg{Key: "dst", Val: int64(p)}, obs.Arg{Key: "bytes", Val: int64(bytes)})
	}
	fin := c.fin
	// Fail fast on a destination already known dead: the spawn is never
	// counted, and the loss surfaces on the governing finish as an
	// ErrPlaceDead instead of an activity that silently never runs.
	if c.rt.anyDeath() && c.rt.PlaceDead(p) {
		c.rt.spawnFailed(fin, c.pl, p, &x10rt.PlaceDeadError{Place: int(p)}, false)
		return
	}
	// Count the remote spawn before the message leaves: the finish
	// protocols rely on sends being visible in the sender's state no
	// later than its next quiescence report.
	if !c.rt.finEvent(fin, c.pl, evRemoteSpawn, p, nil, c) {
		return // governing finish orphaned by a place death
	}
	body := f
	if reply != nil {
		r := reply
		orig := f
		body = func(ctx *Ctx) { c.rt.runReplied(ctx, orig, r) }
		// Mark so the arrival path knows termination is clean even if
		// the body panics (the panic travels back on the reply channel).
	}
	tc := c.rt.tracer.SendCtx("flow.spawn", "core", int(c.pl.id), c.span,
		obs.Arg{Key: "dst", Val: int64(p)})
	if err := c.rt.trySend(c.pl.id, p, x10rt.HandlerSpawn,
		spawnMsg{Fin: fin, Body: body, Bytes: bytes, TC: tc}, bytes, x10rt.DataClass); err != nil {
		// The destination died between the event and the send: undo the
		// count and surface the loss.
		c.rt.spawnFailed(fin, c.pl, p, err, true)
	}
}

// runReplied runs the body of a synchronous At at the remote place,
// forwarding any panic to the in-process reply channel so it re-surfaces
// at the origin instead of being double-reported to the finish.
func (rt *Runtime) runReplied(ctx *Ctx, f func(*Ctx), reply chan<- error) {
	var err error
	func() {
		defer func() {
			if r := recover(); r != nil {
				err = toError(r)
			}
		}()
		f(ctx)
	}()
	reply <- err
}

// onSpawn is the transport handler for remote activity spawns. It counts
// the arrival with the governing finish and schedules the activity.
func (rt *Runtime) onSpawn(src, dst int, payload any) {
	m := payload.(spawnMsg)
	pl := rt.places[dst]
	if f := rt.fids; f != nil {
		rt.flight.Record2(f.spawnRecv, f.catCore, 'i', dst, 0, 0,
			f.kSrc, int64(src), f.kBytes, int64(m.Bytes))
	}
	if m.Uncounted {
		// Uncounted activities have no finish lane; the flow-end lands
		// on the place's control lane (tid 0).
		rt.tracer.RecvCtx(m.TC, "flow.spawn", "core", dst, 0,
			obs.Arg{Key: "src", Val: int64(src)})
		pl.sched.Spawn(func() { runUncounted(rt, pl, m.Body) })
		return
	}
	if m.Raw {
		// Self-directed RDMA: the body carries its own bookkeeping, and
		// traces under the governing finish's span.
		m.Body(&Ctx{rt: rt, pl: pl, fin: m.Fin, span: m.Fin.Span})
		return
	}
	if !rt.finEvent(m.Fin, pl, evRemoteBegin, Place(src), nil, nil) {
		return // governing finish orphaned by a place death; body never runs
	}
	if m.Direct {
		// RDMA path: run inline on the dispatcher, no scheduler slot.
		if m.TC.Valid() {
			rt.runActivity(pl, m.Fin, m.Body, nil, &actMeta{tc: m.TC, src: Place(src)}, kindAtDirect)
		} else {
			rt.runActivity(pl, m.Fin, m.Body, nil, nil, kindAtDirect)
		}
		return
	}
	rt.spawnRun(pl, m.Fin, m.Body, nil, m.TC, Place(src), kindAtAsync)
}

// At runs f at place p synchronously — X10's `at (p) S` place shift. The
// calling activity blocks (releasing its execution slot) until f completes
// at p. A panic inside f propagates back to the caller.
//
// Internally each At is governed by its own FINISH_ASYNC, the way the
// paper's SPMD codes wrap their puts and gets (§3.1): the operation is
// therefore legal inside any enclosing finish pattern, including
// FINISH_SPMD bodies, without violating the pattern's contract.
func (c *Ctx) At(p Place, f func(*Ctx)) {
	if p == c.pl.id {
		f(c)
		return
	}
	reply := make(chan error, 1)
	ferr := c.FinishPragma(PatternAsync, func(cc *Ctx) {
		cc.atAsyncSized(p, defaultSpawnBytes, f, reply)
	})
	if ferr != nil {
		panic(ferr)
	}
	// The finish has completed, so the reply is already buffered.
	if err := <-reply; err != nil {
		panic(err)
	}
}

// AtEval evaluates f at place p and returns its result — X10's
// `val v = at (p) e`. The calling activity blocks until the value is
// available.
func AtEval[T any](c *Ctx, p Place, f func(*Ctx) T) T {
	var out T
	c.At(p, func(ctx *Ctx) { out = f(ctx) })
	return out
}

// Blocking runs wait with the calling activity's execution slot released,
// so that other activities of this place can run while this one is
// suspended. Runtime extensions (collectives, RDMA emulation) use it to
// integrate their blocking operations with the cooperative scheduler.
func (c *Ctx) Blocking(wait func()) { c.pl.sched.Blocking(wait) }

// AtDirect runs f at place p directly on the destination's message
// dispatcher, bypassing the activity scheduler — the runtime's model of an
// RDMA or hardware-offloaded operation that completes "without the
// involvement of the CPU" (§3.3): no execution slot at the destination is
// consumed. f must be short and non-blocking. Like Array.asyncCopy in X10,
// the operation is treated exactly as if it were an async: its termination
// is tracked by the enclosing finish. bytes models the wire size.
//
// Self-directed operations also travel through the transport, mirroring
// the paper's configuration ("we always rely on PAMI to communicate among
// places even if they belong to the same octant"); this keeps the
// destination dispatcher the only mutator of dispatcher-owned state.
func (c *Ctx) AtDirect(p Place, bytes int, f func(*Ctx)) {
	fin := c.fin
	if m := c.rt.m; m != nil {
		m.atDirect.Inc()
	}
	if pm := c.pl.pm; pm != nil {
		pm.atDirect.Inc()
	}
	if fi := c.rt.fids; fi != nil {
		c.rt.flight.Record2(fi.atDirect, fi.catCore, 'i', int(c.pl.id), 0, 0,
			fi.kDst, int64(p), fi.kBytes, int64(bytes))
	}
	if tr := c.rt.tracer; tr != nil {
		tr.Instant("at.direct", "core", int(c.pl.id),
			obs.Arg{Key: "dst", Val: int64(p)}, obs.Arg{Key: "bytes", Val: int64(bytes)})
	}
	if p == c.pl.id {
		if !c.rt.finEvent(fin, c.pl, evLocalSpawn, p, nil, c) {
			return // governing finish orphaned by a place death
		}
		wrapped := func(ctx *Ctx) {
			var err error
			if pr := ctx.rt.prof; pr != nil {
				err = pr.Run(int(p), fin.Pattern.metricKey(), kindAtDirect,
					func(pc context.Context) error {
						ctx.profCtx = pc
						return runBody(ctx, f)
					})
			} else {
				err = runBody(ctx, f)
			}
			c.rt.finEvent(fin, c.pl, evTerminate, p, err, ctx)
		}
		c.rt.send(c.pl.id, p, x10rt.HandlerSpawn,
			spawnMsg{Fin: fin, Body: wrapped, Bytes: bytes, Direct: true, Raw: true},
			bytes, x10rt.DataClass)
		return
	}
	if c.rt.anyDeath() && c.rt.PlaceDead(p) {
		c.rt.spawnFailed(fin, c.pl, p, &x10rt.PlaceDeadError{Place: int(p)}, false)
		return
	}
	if !c.rt.finEvent(fin, c.pl, evRemoteSpawn, p, nil, c) {
		return // governing finish orphaned by a place death
	}
	tc := c.rt.tracer.SendCtx("flow.spawn", "core", int(c.pl.id), c.span,
		obs.Arg{Key: "dst", Val: int64(p)})
	if err := c.rt.trySend(c.pl.id, p, x10rt.HandlerSpawn,
		spawnMsg{Fin: fin, Body: f, Bytes: bytes, Direct: true, TC: tc}, bytes, x10rt.DataClass); err != nil {
		c.rt.spawnFailed(fin, c.pl, p, err, true)
	}
}

// Atomic executes f as an uninterrupted step with respect to all other
// Atomic/When sections at this place — X10's `atomic S`.
func (c *Ctx) Atomic(f func()) {
	pl := c.pl
	pl.monMu.Lock()
	f()
	pl.monCond.Broadcast()
	pl.monMu.Unlock()
}

// When blocks until cond holds, then executes f in the same uninterrupted
// step — X10's `when (c) S`. cond is re-evaluated after every Atomic/When
// section at this place; it must be side-effect free.
func (c *Ctx) When(cond func() bool, f func()) {
	pl := c.pl
	pl.sched.Block() // release the execution slot for the wait
	pl.monMu.Lock()
	for !cond() {
		pl.monCond.Wait()
	}
	f()
	pl.monCond.Broadcast()
	pl.monMu.Unlock()
	pl.sched.Unblock()
}

// toError normalizes a recovered panic value.
func toError(r any) error {
	switch e := r.(type) {
	case error:
		return e
	default:
		return fmt.Errorf("activity panic: %v", r)
	}
}

// UncountedAsync spawns f at place p outside any finish — X10's @Uncounted
// async, the escape hatch runtime-level protocols use for messages whose
// life cycle a higher-level mechanism already tracks (the lifeline
// balancer's steal traffic is the paper's example). No finish waits for f:
// the caller is responsible for knowing when the work is done, and a panic
// in f is silently discarded after recovery. Inside f, open a Finish
// before spawning further governed work.
func (c *Ctx) UncountedAsync(p Place, f func(*Ctx)) {
	if m := c.rt.m; m != nil {
		m.uncounted.Inc()
	}
	if pm := c.pl.pm; pm != nil {
		pm.uncounted.Inc()
	}
	if p == c.pl.id {
		c.pl.sched.Spawn(func() { runUncounted(c.rt, c.pl, f) })
		return
	}
	tc := c.rt.tracer.SendCtx("flow.spawn", "core", int(c.pl.id), c.span,
		obs.Arg{Key: "dst", Val: int64(p)})
	c.rt.send(c.pl.id, p, x10rt.HandlerSpawn,
		spawnMsg{Body: f, Bytes: defaultSpawnBytes, Uncounted: true, TC: tc},
		defaultSpawnBytes, x10rt.DataClass)
}

// runUncounted executes an uncounted activity: no finish events, panics
// contained.
func runUncounted(rt *Runtime, pl *place, f func(*Ctx)) {
	defer func() { _ = recover() }()
	ctx := &Ctx{rt: rt, pl: pl}
	if pr := rt.prof; pr != nil {
		pr.Do(int(pl.id), "none", kindUncounted, func(pc context.Context) {
			ctx.profCtx = pc
			f(ctx)
		})
		return
	}
	f(ctx)
}
