package core

import (
	"errors"
	"sync"
	"sync/atomic"

	"apgas/internal/x10rt"
)

// This file is the resilient-finish layer: what the runtime does when a
// place dies mid-computation. The X10 paper's petascale runs assume a
// fault-free machine; the follow-on resilient X10 work (and ROADMAP item
// 5) makes the finish protocols survive place death instead of wedging
// the global termination wave. The design here:
//
//   - The transport reports death (x10rt.DeathNotifier) and the runtime
//     funnels every report into PlaceDeath, which is idempotent.
//   - Each finish root keeps per-place credit provenance (the counter
//     patterns an outstanding-tokens-per-place map, the vector patterns
//     per-source receive counts), so a death can *forgive* exactly the
//     credit owed by the dead place and re-test termination — no new
//     protocol messages, which keeps per-link send order deterministic
//     under the chaos harness.
//   - Roots homed at the dead place force-fire with ErrPlaceDead so the
//     blocked root activities' goroutines exit (goroutine hygiene; the
//     dead place's results are gone regardless).
//   - Spawns toward a dead place fail fast: the error is surfaced on the
//     governing finish as a *x10rt.PlaceDeadError and the activity is
//     never counted, keeping the survivor-restricted conservation
//     invariant (begun == completed per live place) exact.
//   - Quiescent vector proxies re-send their latest snapshot when they
//     learn of a death, recovering reports that died in the victim's
//     mailbox or dense coalescing buffer.
//
// ErrPlaceDead is x10rt.ErrPlaceDead; errors.Is(err, ErrPlaceDead) holds
// for every error the resilience layer surfaces.

// ErrPlaceDead is the sentinel reported by finishes that lost governed
// activities (or whole sub-trees) to a place death. It aliases
// x10rt.ErrPlaceDead so transport-level and finish-level failures match
// the same errors.Is check.
var ErrPlaceDead = x10rt.ErrPlaceDead

// placeActivityCounter is one place's begun/completed pair: activities
// that started executing at the place and activities that terminated
// there. Unlike the global per-pattern spawned/completed pair (which a
// spawn lost to a dead place unbalances), each *live* place's begun and
// completed match exactly after quiescence — the survivor-restricted
// conservation oracle of the kill sweeps.
type placeActivityCounter struct {
	begun     atomic.Uint64
	completed atomic.Uint64
}

// PlaceActivityCount is the per-place conservation view.
type PlaceActivityCount struct {
	Place Place
	// Begun counts activities that began executing at the place (local
	// spawns plus remote arrivals). Completed counts terminations there.
	Begun     uint64
	Completed uint64
}

// Balanced reports whether every activity begun at the place completed.
func (c PlaceActivityCount) Balanced() bool { return c.Begun == c.Completed }

// PlaceActivityCounts returns the per-place begun/completed counters,
// indexed by place. After a run with place deaths, global per-pattern
// conservation no longer holds (spawns toward the victim are counted but
// never complete); per-live-place conservation still does, and is what
// the chaos kill invariants check.
func (rt *Runtime) PlaceActivityCounts() []PlaceActivityCount {
	out := make([]PlaceActivityCount, len(rt.places))
	for i := range out {
		out[i] = PlaceActivityCount{
			Place:     Place(i),
			Begun:     rt.placeActs[i].begun.Load(),
			Completed: rt.placeActs[i].completed.Load(),
		}
	}
	return out
}

// deathRegistry is the runtime's death bookkeeping: per-place dead flags
// (lock-free to query on hot paths), an any-death fast-path bit, and the
// subscriber list (GLB, telemetry) notified after the finish layer has
// adopted the dead place's obligations.
type deathRegistry struct {
	mu   sync.Mutex
	subs []func(Place)
	any  atomic.Bool
	dead []atomic.Bool
}

// PlaceDead reports whether place p has died.
func (rt *Runtime) PlaceDead(p Place) bool {
	if int(p) < 0 || int(p) >= len(rt.deaths.dead) {
		return false
	}
	return rt.deaths.dead[p].Load()
}

// anyDeath reports whether any place has died; a single atomic load, the
// guard keeping the no-death fast paths unchanged.
func (rt *Runtime) anyDeath() bool { return rt.deaths.any.Load() }

// DeadPlaces returns the dead places in order.
func (rt *Runtime) DeadPlaces() []Place {
	var out []Place
	for i := range rt.deaths.dead {
		if rt.deaths.dead[i].Load() {
			out = append(out, Place(i))
		}
	}
	return out
}

// NotifyPlaceDeath registers fn to be called (on the death-processing
// goroutine) after the runtime has processed a place death — after the
// finish layer has forgiven the dead place's credit, so a subscriber
// that inspects finish state sees the post-adoption view. Extension
// layers (the GLB's lifeline re-homing, telemetry) subscribe here rather
// than to the transport, which reports deaths before adoption.
func (rt *Runtime) NotifyPlaceDeath(fn func(Place)) {
	rt.deaths.mu.Lock()
	rt.deaths.subs = append(rt.deaths.subs, fn)
	rt.deaths.mu.Unlock()
}

// PlaceDeath processes the death of place p: idempotent, callable from
// any goroutine (the transport's DeathNotifier fires it once per
// surviving place; the first call wins). It
//
//  1. force-fires finish roots homed at p with ErrPlaceDead, so their
//     blocked root activities unwind;
//  2. drops proxies homed at p everywhere (their root is gone);
//  3. tells every live root to forgive p's credit provenance and re-test
//     termination;
//  4. re-sends the latest snapshot of every quiescent vector proxy, in
//     case p swallowed one (as dense master or plain destination);
//  5. notifies NotifyPlaceDeath subscribers.
func (rt *Runtime) PlaceDeath(p Place) {
	if int(p) < 0 || int(p) >= len(rt.places) {
		return
	}
	rt.deaths.mu.Lock()
	if rt.deaths.dead[p].Load() {
		rt.deaths.mu.Unlock()
		return
	}
	rt.deaths.dead[p].Store(true)
	rt.deaths.any.Store(true)
	subs := append(rt.deaths.subs[:0:0], rt.deaths.subs...)
	rt.deaths.mu.Unlock()

	if f := rt.fids; f != nil {
		rt.flight.Record(f.placeDeath, f.catCore, 'i', int(p), 0, 0)
	}

	// 1+2 at the dead place itself: abort its roots, drop its proxies.
	deadPl := rt.places[p]
	deadPl.finMu.Lock()
	deadRoots := make([]rootFinish, 0, len(deadPl.roots))
	for _, root := range deadPl.roots {
		deadRoots = append(deadRoots, root)
	}
	deadPl.proxies = make(map[finishID]*vectorProxy)
	deadPl.finMu.Unlock()
	for _, root := range deadRoots {
		root.forceFire(p)
	}

	// 2+3+4 at every live place.
	for _, pl := range rt.places {
		if rt.deaths.dead[pl.id].Load() {
			continue
		}
		pl.finMu.Lock()
		for id := range pl.proxies {
			if id.Home == p {
				delete(pl.proxies, id)
			}
		}
		roots := make([]rootFinish, 0, len(pl.roots))
		for _, root := range pl.roots {
			roots = append(roots, root)
		}
		type resend struct {
			ref  finRef
			snap ctlSnapshot
		}
		var resends []resend
		for _, px := range pl.proxies {
			if px.live == 0 && !rt.deaths.dead[px.ref.ID.Home].Load() {
				resends = append(resends, resend{ref: px.ref, snap: px.snapshot()})
			}
		}
		pl.finMu.Unlock()
		// Roots and sends outside finMu: placeDeath takes the root's own
		// lock and may fire the waiter; sendSnapshot enters the transport.
		for _, root := range roots {
			root.placeDeath(p)
		}
		for _, rs := range resends {
			rt.sendSnapshot(pl.id, rs.ref, rs.snap)
		}
	}

	for _, fn := range subs {
		fn(p)
	}
}

// dispatchFinEvent routes one activity life-cycle event to the live
// root/proxy machinery. It reports false when the event was dropped
// because the governing finish's home (or the raising place itself) is
// dead, or because the root is already gone after a death — the caller
// then skips the spawn the event would have authorized.
func (rt *Runtime) dispatchFinEvent(fin finRef, pl *place, kind finEventKind, other Place, err error, ctx *Ctx) bool {
	if rt.anyDeath() && (rt.PlaceDead(fin.ID.Home) || rt.PlaceDead(pl.id)) {
		return false
	}
	if fin.ID.Home == pl.id {
		pl.finMu.Lock()
		root, ok := pl.roots[fin.ID]
		pl.finMu.Unlock()
		if !ok {
			if rt.anyDeath() {
				// The root force-fired (or fired early on forgiven
				// credit) and was deleted; stragglers from the wind-down
				// are dropped, not a protocol bug.
				return false
			}
			panic(unknownFinishPanic(kind, fin))
		}
		root.event(kind, other, err)
		return true
	}
	switch fin.Pattern {
	case PatternDefault, PatternDense:
		rt.proxyEvent(fin, pl, kind, other, err)
	case PatternAsync, PatternSPMD:
		rt.counterRemoteEvent(fin, pl, kind, other, err)
	case PatternHere:
		rt.hereRemoteEvent(fin, pl, kind, other, err, ctx)
	case PatternLocal:
		panic(localEscapedPanic(fin, pl))
	default:
		panic(badPatternPanic(fin))
	}
	return true
}

// spawnFailed surfaces a spawn that could not reach its destination (the
// place is dead) on the governing finish. counted says whether the spawn
// had already been reported as evRemoteSpawn — the race where the
// destination died between the event and the transport send — in which
// case the provenance must be compensated; otherwise the failure is an
// error-only injection that never perturbs the counts.
func (rt *Runtime) spawnFailed(fin finRef, pl *place, dst Place, err error, counted bool) {
	if counted {
		// Global conservation: the spawn was counted but the activity
		// will never run; count it completed so the per-pattern totals
		// stay balanced for everything except the dead place itself.
		rt.acts[fin.Pattern].completed.Add(1)
	}
	if rt.PlaceDead(fin.ID.Home) || rt.PlaceDead(pl.id) {
		return // the error has nowhere live to go
	}
	if fin.ID.Home == pl.id {
		pl.finMu.Lock()
		root, ok := pl.roots[fin.ID]
		pl.finMu.Unlock()
		if !ok {
			return
		}
		if counted {
			root.compensateSpawn(dst, err)
		} else {
			root.addError(err)
		}
		return
	}
	switch fin.Pattern {
	case PatternDefault, PatternDense:
		pl.finMu.Lock()
		if px, ok := pl.proxies[fin.ID]; ok {
			if counted && px.sent[dst] > 0 {
				px.sent[dst]--
			}
			px.errs = append(px.errs, err)
		}
		pl.finMu.Unlock()
	default:
		// Counter patterns away from home: a token-neutral error report.
		// If the spawn was counted the home holds one token for dst that
		// no completion will ever release; forgiveness at the home (the
		// outstanding map) already returned it when dst died.
		rt.sendDone(pl.id, fin, 0, err)
	}
}

// trySend is the send funnel for messages that need compensation on
// failure (activity spawns): a dead-place failure is returned, anything
// else still panics as a transport bug.
func (rt *Runtime) trySend(src, dst Place, id x10rt.HandlerID, payload any, bytes int, class x10rt.Class) error {
	err := rt.tr.Send(int(src), int(dst), id, payload, bytes, class)
	if err != nil && !errors.Is(err, x10rt.ErrPlaceDead) {
		panicSendFailure(src, dst, err)
	}
	return err
}
