package core

import (
	"errors"

	"apgas/internal/obs"
	"apgas/internal/x10rt"
)

// This file wires the transport's one-sided lane (x10rt frame version 5)
// into the finish protocols. A one-sided op is governed by the caller's
// enclosing finish exactly like an AtDirect — the paper's Array.asyncCopy
// contract ("treated exactly as if it were an async") — but its payload
// never touches active-message dispatch or the gob decoder: the transport
// lands the bytes in the destination arena and then calls rt.onOneSided,
// which settles the finish credit the op carried in its token.
//
// Token layout ([4]uint64): {Home, Seq, Pattern|flags, Span} of the
// governing finRef. The local flag marks a self-directed op whose spawn
// was counted as evLocalSpawn at the send site (mirroring AtDirect's Raw
// self path), so the landing raises no evRemoteBegin.

// oneSidedTokLocal marks a self-directed op in the packed Pattern word.
// Pattern itself occupies the low byte.
const oneSidedTokLocal = uint64(1) << 32

func packFinToken(fin finRef, local bool) [4]uint64 {
	pat := uint64(fin.Pattern)
	if local {
		pat |= oneSidedTokLocal
	}
	return [4]uint64{uint64(fin.ID.Home), fin.ID.Seq, pat, fin.Span}
}

func unpackFinToken(tok [4]uint64) (fin finRef, local bool) {
	fin = finRef{
		ID:      finishID{Home: Place(tok[0]), Seq: tok[1]},
		Pattern: Pattern(tok[2] & 0xff),
		Span:    tok[3],
	}
	return fin, tok[2]&oneSidedTokLocal != 0
}

// OneSidedSend issues op against place p's arenas, governed by the
// calling activity's enclosing finish. Like AtDirect, the call returns
// immediately and the finish tracks termination; unlike AtDirect no
// closure crosses the wire — the transport encodes (arena, offset, raw
// bytes) and the landing is the memcpy itself.
//
// A Put's op.Local/op.Data buffer must stay untouched until the enclosing
// finish completes (the RDMA source-stability contract); a Get's
// ReplyArena must name a registered arena at the calling place.
func (c *Ctx) OneSidedSend(p Place, op *x10rt.OneSidedOp) {
	rt := c.rt
	if rt.osSender == nil {
		panic("core: transport has no one-sided lane (check OneSidedEnabled)")
	}
	fin := c.fin
	bytes := op.Bytes
	if m := rt.m; m != nil {
		m.oneSided.Inc()
	}
	if pm := c.pl.pm; pm != nil {
		pm.oneSided.Inc()
	}
	if fi := rt.fids; fi != nil {
		rt.flight.Record2(fi.oneSided, fi.catCore, 'i', int(c.pl.id), 0, 0,
			fi.kDst, int64(p), fi.kBytes, int64(bytes))
	}
	if tr := rt.tracer; tr != nil {
		tr.Instant("onesided", "core", int(c.pl.id),
			obs.Arg{Key: "dst", Val: int64(p)}, obs.Arg{Key: "bytes", Val: int64(bytes)})
	}
	if p == c.pl.id {
		// Self-directed: the op still travels through the transport (the
		// paper's "we always rely on PAMI to communicate among places
		// even if they belong to the same octant"), but the finish sees
		// the AtDirect-style local pair — evLocalSpawn now, evTerminate
		// when the landing hook runs.
		if !rt.finEvent(fin, c.pl, evLocalSpawn, p, nil, c) {
			return // governing finish orphaned by a place death
		}
		op.Token = packFinToken(fin, true)
		if err := rt.osSender.SendOneSided(int(c.pl.id), int(p), op); err != nil {
			if !errors.Is(err, x10rt.ErrPlaceDead) {
				panicSendFailure(c.pl.id, p, err)
			}
			rt.spawnFailed(fin, c.pl, p, err, true)
		}
		return
	}
	if rt.anyDeath() && rt.PlaceDead(p) {
		rt.spawnFailed(fin, c.pl, p, &x10rt.PlaceDeadError{Place: int(p)}, false)
		return
	}
	if !rt.finEvent(fin, c.pl, evRemoteSpawn, p, nil, c) {
		return // governing finish orphaned by a place death
	}
	op.Token = packFinToken(fin, false)
	if err := rt.osSender.SendOneSided(int(c.pl.id), int(p), op); err != nil {
		if !errors.Is(err, x10rt.ErrPlaceDead) {
			panicSendFailure(c.pl.id, p, err)
		}
		rt.spawnFailed(fin, c.pl, p, err, true)
	}
}

// onOneSided is the ArenaTable hook: the transport calls it (on its
// dispatcher/reader) after parsing a one-sided frame, instead of applying
// the op itself. It lands the op and settles the finish credit the op's
// token carries. Errors from Apply — a bad offset, an unknown arena — are
// reported through the finish like an activity panic; the transport never
// sees them (returning an error would kill a TCP connection over what is
// a caller bug, not wire corruption).
func (rt *Runtime) onOneSided(src, dst int, op *x10rt.OneSidedOp, reply func(*x10rt.OneSidedOp) error) error {
	fin, local := unpackFinToken(op.Token)
	if !fin.valid() {
		// Not finish-governed (transport-level harnesses drive arenas
		// directly): land raw, propagate errors to the transport.
		return rt.arenas.Apply(src, dst, op, reply)
	}
	pl := rt.places[dst]
	if local {
		// Self-directed op: spawn was counted as evLocalSpawn at the send
		// site. A self get's reply lands synchronously — same place, no
		// second activity.
		err := rt.arenas.Apply(src, dst, op, func(rep *x10rt.OneSidedOp) error {
			return rt.arenas.Apply(dst, src, rep, nil)
		})
		ctx := &Ctx{rt: rt, pl: pl, fin: fin, span: fin.Span}
		rt.finEvent(fin, pl, evTerminate, Place(dst), err, ctx)
		return nil
	}
	if !rt.finEvent(fin, pl, evRemoteBegin, Place(src), nil, nil) {
		return nil // governing finish orphaned by a place death; op dropped
	}
	// ctx spans the landing: FINISH_HERE tracks its homebound token on it,
	// mirroring the nested-AtDirect reply the gob get path uses.
	ctx := &Ctx{rt: rt, pl: pl, fin: fin, span: fin.Span}
	wrapped := func(rep *x10rt.OneSidedOp) error {
		// A get's reply is a second governed activity dst -> src.
		if rt.anyDeath() && rt.PlaceDead(Place(src)) {
			rt.spawnFailed(fin, pl, Place(src), &x10rt.PlaceDeadError{Place: src}, false)
			return nil
		}
		if !rt.finEvent(fin, pl, evRemoteSpawn, Place(src), nil, ctx) {
			return nil
		}
		rep.Token = packFinToken(fin, false)
		if err := reply(rep); err != nil {
			if !errors.Is(err, x10rt.ErrPlaceDead) {
				return err
			}
			rt.spawnFailed(fin, pl, Place(src), err, true)
		}
		return nil
	}
	err := rt.arenas.Apply(src, dst, op, wrapped)
	rt.finEvent(fin, pl, evTerminate, Place(dst), err, ctx)
	return nil
}
