package core

import (
	"fmt"

	"apgas/internal/obs"
	"apgas/internal/x10rt"
)

// This file implements the general distributed termination detection
// algorithm behind PatternDefault and PatternDense — the "default finish"
// of §3.1, including its two key scalability refinements:
//
//   - dynamic optimization: the root optimistically assumes the finish is
//     local (a plain counter) and promotes to the distributed protocol the
//     first time a governed activity executes an at;
//   - control-message coalescing: a place reports to the root only when it
//     becomes locally quiescent, and then sends one cumulative snapshot
//     covering everything it has done under the finish, rather than one
//     message per activity.
//
// The protocol is a cumulative-vector scheme in the style of Mattern's
// vector counting method. Each place p maintains, per finish:
//
//	recv    — cumulative count of remote activities begun at p
//	sent[q] — cumulative count of remote spawns p performed toward q
//	live    — currently live governed activities at p
//
// When live drops to zero, p sends an epoch-stamped snapshot (recv, sent)
// to the root. The root keeps the latest snapshot per place (epochs make
// this robust to control-message reordering) and its own place's counters
// directly. Termination holds when the home place is quiescent and, for
// every place q, the sum of sent[q] over all snapshots equals q's recv.
//
// Safety: a snapshot is taken at a local quiescent point, so if it covers
// an activity's begin it also covers that activity's completion and hence
// every spawn the activity performed. Any live or in-flight activity
// therefore shows up as sent > recv for some place, and the root cannot
// declare termination early. Liveness: after true termination every
// involved place sends a final snapshot and the sums reconcile.
//
// The root's state is O(involved places^2) in the worst case (a sent
// vector per place), which is exactly the cost the paper attributes to the
// default finish and the reason the specialized patterns exist.

// defaultRoot is the home-place state of the vector protocol.
type defaultRoot struct {
	rt    *Runtime
	ref   finRef
	dense bool

	w *waiter

	// All fields below are guarded by w.mu.
	promoted  bool
	live      int
	recvHome  uint64
	localHome uint64
	sentHome  map[Place]uint64
	snaps     map[Place]ctlSnapshot
	// events counts every event and control message processed, a
	// monotone progress signal for the stall watchdog (see debug.go).
	events uint64

	// profile, when non-nil, is filled with the finish's communication
	// shape at termination (see FinishProfiled).
	profile *FinishProfile
}

func newDefaultRoot(rt *Runtime, ref finRef, dense bool) *defaultRoot {
	return &defaultRoot{
		rt:       rt,
		ref:      ref,
		dense:    dense || ref.Pattern == PatternDense,
		w:        newWaiter(),
		sentHome: make(map[Place]uint64),
		snaps:    make(map[Place]ctlSnapshot),
	}
}

func (r *defaultRoot) event(kind finEventKind, other Place, err error) {
	r.w.mu.Lock()
	defer r.w.mu.Unlock()
	r.events++
	switch kind {
	case evLocalSpawn:
		r.live++
		r.localHome++
	case evRemoteSpawn:
		r.promoted = true
		r.sentHome[other]++
	case evRemoteBegin:
		r.promoted = true
		r.recvHome++
		r.live++
	case evTerminate:
		r.live--
		if err != nil {
			r.w.errs = append(r.w.errs, err)
		}
		r.checkLocked()
	}
}

func (r *defaultRoot) ctl(src Place, payload any) {
	snap, ok := payload.(ctlSnapshot)
	if !ok {
		panic(fmt.Sprintf("core: %v root got %T", r.ref.Pattern, payload))
	}
	r.applySnapshot(snap)
}

func (r *defaultRoot) applySnapshot(snap ctlSnapshot) {
	r.w.mu.Lock()
	defer r.w.mu.Unlock()
	r.events++
	r.promoted = true
	if old, ok := r.snaps[snap.From]; ok && old.Epoch >= snap.Epoch {
		return // stale, reordered control message
	}
	r.snaps[snap.From] = snap
	r.checkLocked()
}

// checkLocked tests the termination condition; caller holds w.mu.
func (r *defaultRoot) checkLocked() {
	if !r.w.waiting || r.w.done || r.live != 0 {
		return
	}
	if !r.promoted {
		if r.profile != nil {
			r.fillProfileLocked()
		}
		r.w.fire()
		return
	}
	// totSent[q] must equal recv[q] for every involved place q.
	totSent := make(map[Place]uint64, len(r.snaps)+len(r.sentHome))
	for q, n := range r.sentHome {
		totSent[q] += n
	}
	for _, s := range r.snaps {
		for q, n := range s.Sent {
			totSent[q] += n
		}
	}
	for q, sent := range totSent {
		var recv uint64
		if q == r.ref.ID.Home {
			recv = r.recvHome
		} else {
			recv = r.snaps[q].Recv
		}
		if recv != sent {
			return
		}
	}
	// Also: every place that reported receives must be fully accounted
	// (recv cannot exceed sent, but check symmetry for robustness).
	for q, s := range r.snaps {
		if s.Recv != totSent[q] {
			return
		}
	}
	if r.recvHome != totSent[r.ref.ID.Home] {
		return
	}
	// Terminated: gather remote errors and release proxies.
	if r.profile != nil {
		r.fillProfileLocked()
	}
	for _, s := range r.snaps {
		r.w.errs = append(r.w.errs, s.Errs...)
	}
	for q := range r.snaps {
		tc := r.rt.tracer.SendCtx("flow.ctl", "finish", int(r.ref.ID.Home), 0,
			obs.Arg{Key: "dst", Val: int64(q)})
		r.rt.send(r.ref.ID.Home, q, x10rt.HandlerFinishCtl,
			ctlCleanup{ID: r.ref.ID, TC: tc}, 16, x10rt.ControlClass)
	}
	// The cleanup burst is the tail of the protocol: push it out rather
	// than let the fan-out sit in per-link batch queues.
	r.rt.flushTransport(r.ref.ID.Home)
	r.w.fire()
}

func (r *defaultRoot) wait(pl *place) error {
	r.w.mu.Lock()
	r.w.waiting = true
	r.checkLocked()
	r.w.mu.Unlock()
	return r.w.block(pl)
}

// vectorProxy is the per-place state of the vector protocol away from home.
type vectorProxy struct {
	rt  *Runtime
	ref finRef
	pl  *place

	// Guarded by the owning place's finMu (coarse but simple: proxy
	// events are cheap and per-place).
	live  int
	recv  uint64
	local uint64
	sent  map[Place]uint64
	epoch uint64
	errs  []error
}

// proxyEvent processes an activity event at a non-home place.
func (rt *Runtime) proxyEvent(fin finRef, pl *place, kind finEventKind, other Place, err error) {
	pl.finMu.Lock()
	px, ok := pl.proxies[fin.ID]
	if !ok {
		px = &vectorProxy{rt: rt, ref: fin, pl: pl, sent: make(map[Place]uint64)}
		pl.proxies[fin.ID] = px
	}
	var snap *ctlSnapshot
	switch kind {
	case evLocalSpawn:
		px.live++
		px.local++
	case evRemoteSpawn:
		px.sent[other]++
	case evRemoteBegin:
		px.recv++
		px.live++
	case evTerminate:
		px.live--
		if err != nil {
			px.errs = append(px.errs, err)
		}
		if px.live == 0 {
			s := px.snapshot()
			snap = &s
		}
	}
	pl.finMu.Unlock()
	if snap != nil {
		rt.sendSnapshot(pl.id, fin, *snap)
	}
}

// snapshot builds the cumulative quiescence report; caller holds finMu.
func (px *vectorProxy) snapshot() ctlSnapshot {
	px.epoch++
	sent := make(map[Place]uint64, len(px.sent))
	for q, n := range px.sent {
		sent[q] = n
	}
	errs := make([]error, len(px.errs))
	copy(errs, px.errs)
	return ctlSnapshot{
		ID:    px.ref.ID,
		From:  px.pl.id,
		Epoch: px.epoch,
		Recv:  px.recv,
		Local: px.local,
		Sent:  sent,
		Errs:  errs,
	}
}

// sendSnapshot delivers a snapshot to the root: directly for the default
// pattern, via the software route for FINISH_DENSE.
func (rt *Runtime) sendSnapshot(from Place, fin finRef, snap ctlSnapshot) {
	home := fin.ID.Home
	if fin.Pattern != PatternDense {
		snap.TC = rt.tracer.SendCtx("flow.ctl", "finish", int(from), 0,
			obs.Arg{Key: "dst", Val: int64(home)})
		rt.send(from, home, x10rt.HandlerFinishCtl, snap, snapshotBytes(snap), x10rt.ControlClass)
		// A snapshot is sent when a proxy goes quiescent; the root may be
		// waiting on exactly this message, so it must not idle in a batch.
		rt.flushTransport(from)
		return
	}
	hops := rt.denseRoute(from, home)
	tc := rt.tracer.SendCtx("flow.ctl", "finish", int(from), 0,
		obs.Arg{Key: "dst", Val: int64(hops[0])})
	rt.send(from, hops[0], x10rt.HandlerFinishCtl,
		ctlRouted{ID: fin.ID, Snaps: []ctlSnapshot{snap}, Hops: hops, TC: tc},
		snapshotBytes(snap)+8, x10rt.ControlClass)
	rt.flushTransport(from)
}

// denseRoute computes the software route from place p to the finish home:
// p -> master(p) -> master(home) -> home, with degenerate hops elided.
// Masters are the first place of each host (p - p%b, b places per host),
// so irregular control traffic is funneled through one place per host —
// the traffic-shaping trick of §3.1 that makes FINISH_DENSE viable on
// interconnects that favor low out-degree communication graphs.
func (rt *Runtime) denseRoute(p, home Place) []Place {
	route := make([]Place, 0, 3)
	for _, hop := range []Place{rt.master(p), rt.master(home), home} {
		if hop == p {
			continue
		}
		if len(route) > 0 && route[len(route)-1] == hop {
			continue
		}
		route = append(route, hop)
	}
	if len(route) == 0 {
		route = append(route, home)
	}
	return route
}

// routeDense forwards or applies a routed control message at place pl.
//
// Masters coalesce: instead of forwarding each snapshot immediately, a
// master buffers it and enqueues a flush marker to itself. Every snapshot
// already sitting in the master's mailbox is processed before the marker
// comes back around, so bursts of control traffic collapse into one
// forwarded message per burst — the runtime "automatically coalesces ...
// the control messages used by the termination detection algorithm"
// (§3.1) at the cost of one extra local dispatch of latency, which is the
// trade the paper advocates (termination traffic cares about the last
// message, not each message's latency).
func (rt *Runtime) routeDense(pl *place, m ctlRouted) {
	if pl.id == m.ID.Home {
		pl.finMu.Lock()
		root, ok := pl.roots[m.ID]
		pl.finMu.Unlock()
		if !ok {
			// The root declares termination from reconciled cumulative
			// vectors and deregisters; a snapshot still in flight at that
			// moment (delayed on a link, or parked in a master's coalescing
			// buffer behind a late flush marker) is stale by construction
			// and is dropped, exactly like a ctlDone{N:0} straggler. The
			// chaos harness's delay faults hit this window reliably.
			return
		}
		dr, ok := root.(*defaultRoot)
		if !ok {
			panic(fmt.Sprintf("core: routed snapshot for non-dense finish %+v", m.ID))
		}
		for _, s := range m.Snaps {
			dr.applySnapshot(s)
		}
		return
	}
	if len(m.Hops) == 0 || m.Hops[0] != pl.id {
		panic(fmt.Sprintf("core: dense route desync at place %d: %+v", pl.id, m.Hops))
	}
	rest := m.Hops[1:]
	if m.Flush {
		rt.flushDense(pl, m.ID, rest)
		return
	}
	// Buffer the snapshots; arm a flush marker if the buffer was idle.
	key := denseBufKey{id: m.ID, next: hopsKey(rest)}
	pl.denseMu.Lock()
	if pl.denseBuf == nil {
		pl.denseBuf = make(map[denseBufKey][]ctlSnapshot)
	}
	buf, armed := pl.denseBuf[key]
	pl.denseBuf[key] = append(buf, m.Snaps...)
	pl.denseMu.Unlock()
	if !armed {
		rt.send(pl.id, pl.id, x10rt.HandlerFinishCtl,
			ctlRouted{ID: m.ID, Hops: m.Hops, Flush: true}, 8, x10rt.ControlClass)
	}
}

// denseFlushChunk bounds the snapshots per forwarded ctlRouted so a
// master that coalesced a very large burst hands the transport several
// bounded pre-batched payloads rather than one unbounded frame. The
// transport's own batcher can still pack the chunks into one wire write.
const denseFlushChunk = 256

// flushDense forwards everything buffered for (finish, remaining route)
// as pre-batched routed payloads: the master's coalescing buffer, not
// the transport, decides what travels together, and the per-chunk send
// replaces what would otherwise be one message per buffered snapshot.
func (rt *Runtime) flushDense(pl *place, id finishID, rest []Place) {
	key := denseBufKey{id: id, next: hopsKey(rest)}
	pl.denseMu.Lock()
	snaps := pl.denseBuf[key]
	delete(pl.denseBuf, key)
	pl.denseMu.Unlock()
	if len(snaps) == 0 {
		return
	}
	dst := id.Home
	if len(rest) > 0 {
		dst = rest[0]
	}
	for len(snaps) > 0 {
		chunk := snaps
		if len(chunk) > denseFlushChunk {
			chunk = chunk[:denseFlushChunk]
		}
		snaps = snaps[len(chunk):]
		bytes := 8
		for _, s := range chunk {
			bytes += snapshotBytes(s)
		}
		// Each forward hop is its own wire message: stamp a fresh
		// per-hop trace context so the merged trace shows the route.
		tc := rt.tracer.SendCtx("flow.ctl", "finish", int(pl.id), 0,
			obs.Arg{Key: "dst", Val: int64(dst)})
		rt.send(pl.id, dst, x10rt.HandlerFinishCtl,
			ctlRouted{ID: id, Snaps: chunk, Hops: rest, TC: tc}, bytes, x10rt.ControlClass)
	}
	// The forward ends a coalescing round; downstream hops (or the root)
	// are waiting on it, so it leaves the place now.
	rt.flushTransport(pl.id)
}

// denseBufKey identifies one coalescing buffer: a finish plus the route
// remainder its snapshots share.
type denseBufKey struct {
	id   finishID
	next string
}

func hopsKey(hops []Place) string {
	b := make([]byte, 0, len(hops)*3)
	for _, h := range hops {
		b = append(b, byte(h), byte(h>>8), ',')
	}
	return string(b)
}
