package core

import (
	"fmt"

	"apgas/internal/obs"
	"apgas/internal/x10rt"
)

// This file implements the general distributed termination detection
// algorithm behind PatternDefault and PatternDense — the "default finish"
// of §3.1, including its two key scalability refinements:
//
//   - dynamic optimization: the root optimistically assumes the finish is
//     local (a plain counter) and promotes to the distributed protocol the
//     first time a governed activity executes an at;
//   - control-message coalescing: a place reports to the root only when it
//     becomes locally quiescent, and then sends one cumulative snapshot
//     covering everything it has done under the finish, rather than one
//     message per activity.
//
// The protocol is a cumulative-vector scheme in the style of Mattern's
// vector counting method. Each place p maintains, per finish:
//
//	recv    — cumulative count of remote activities begun at p
//	sent[q] — cumulative count of remote spawns p performed toward q
//	live    — currently live governed activities at p
//
// When live drops to zero, p sends an epoch-stamped snapshot (recv, sent)
// to the root. The root keeps the latest snapshot per place (epochs make
// this robust to control-message reordering) and its own place's counters
// directly. Termination holds when the home place is quiescent and, for
// every place q, the sum of sent[q] over all snapshots equals q's recv.
//
// Safety: a snapshot is taken at a local quiescent point, so if it covers
// an activity's begin it also covers that activity's completion and hence
// every spawn the activity performed. Any live or in-flight activity
// therefore shows up as sent > recv for some place, and the root cannot
// declare termination early. Liveness: after true termination every
// involved place sends a final snapshot and the sums reconcile.
//
// The root's state is O(involved places^2) in the worst case (a sent
// vector per place), which is exactly the cost the paper attributes to the
// default finish and the reason the specialized patterns exist.

// defaultRoot is the home-place state of the vector protocol.
type defaultRoot struct {
	rt    *Runtime
	ref   finRef
	dense bool

	w *waiter

	// All fields below are guarded by w.mu.
	promoted  bool
	live      int
	recvHome  uint64
	localHome uint64
	sentHome  map[Place]uint64
	snaps     map[Place]ctlSnapshot
	// recvHomeFrom is recvHome broken out by sender — the per-source
	// provenance the resilient termination check needs (see resilient.go).
	// nil until the first remote begin.
	recvHomeFrom map[Place]uint64
	// dead marks places whose death this root has processed; nil while
	// the run is fault free (the common case — checkLocked's exact path).
	// deadErr marks dead places for which an ErrPlaceDead was already
	// surfaced, so late-arriving evidence doesn't duplicate the error.
	dead    map[Place]bool
	deadErr map[Place]bool
	// events counts every event and control message processed, a
	// monotone progress signal for the stall watchdog (see debug.go).
	events uint64

	// profile, when non-nil, is filled with the finish's communication
	// shape at termination (see FinishProfiled).
	profile *FinishProfile
}

func newDefaultRoot(rt *Runtime, ref finRef, dense bool) *defaultRoot {
	r := &defaultRoot{
		rt:       rt,
		ref:      ref,
		dense:    dense || ref.Pattern == PatternDense,
		w:        newWaiter(),
		sentHome: make(map[Place]uint64),
		snaps:    make(map[Place]ctlSnapshot),
	}
	// A finish opened after a place death must know about it: PlaceDeath
	// only walks roots registered at that moment.
	if rt.anyDeath() {
		for _, p := range rt.DeadPlaces() {
			if r.dead == nil {
				r.dead = make(map[Place]bool)
			}
			r.dead[p] = true
		}
	}
	return r
}

func (r *defaultRoot) event(kind finEventKind, other Place, err error) {
	r.w.mu.Lock()
	defer r.w.mu.Unlock()
	r.events++
	switch kind {
	case evLocalSpawn:
		r.live++
		r.localHome++
	case evRemoteSpawn:
		r.promoted = true
		r.sentHome[other]++
	case evRemoteBegin:
		r.promoted = true
		r.recvHome++
		if r.recvHomeFrom == nil {
			r.recvHomeFrom = make(map[Place]uint64)
		}
		r.recvHomeFrom[other]++
		r.live++
	case evTerminate:
		r.live--
		if err != nil {
			r.w.errs = append(r.w.errs, err)
		}
		r.checkLocked()
	}
}

func (r *defaultRoot) ctl(src Place, payload any) {
	snap, ok := payload.(ctlSnapshot)
	if !ok {
		panic(fmt.Sprintf("core: %v root got %T", r.ref.Pattern, payload))
	}
	r.applySnapshot(snap)
}

func (r *defaultRoot) applySnapshot(snap ctlSnapshot) {
	r.w.mu.Lock()
	defer r.w.mu.Unlock()
	r.events++
	r.promoted = true
	if old, ok := r.snaps[snap.From]; ok && old.Epoch >= snap.Epoch {
		return // stale, reordered control message
	}
	r.snaps[snap.From] = snap
	// Late evidence that the finish had touched a dead place: surface
	// the loss exactly once per dead place.
	if len(r.dead) > 0 && !r.dead[snap.From] {
		for v := range r.dead {
			if r.deadErr[v] {
				continue
			}
			if snap.Sent[v] > 0 || snap.RecvFrom[v] > 0 {
				r.recordDeadLocked(v)
			}
		}
	}
	r.checkLocked()
}

// checkLocked tests the termination condition; caller holds w.mu.
func (r *defaultRoot) checkLocked() {
	if !r.w.waiting || r.w.done || r.live != 0 {
		return
	}
	if !r.promoted {
		if r.profile != nil {
			r.fillProfileLocked()
		}
		r.w.fire()
		return
	}
	if len(r.dead) > 0 {
		if !r.resilientBalancedLocked() {
			return
		}
	} else if !r.exactBalancedLocked() {
		return
	}
	// Terminated: gather remote errors and release proxies.
	if r.profile != nil {
		r.fillProfileLocked()
	}
	for _, s := range r.snaps {
		r.w.errs = append(r.w.errs, s.Errs...)
	}
	targets := make([]Place, 0, len(r.snaps))
	if len(r.dead) == 0 {
		for q := range r.snaps {
			targets = append(targets, q)
		}
	} else {
		// Death-forced termination cannot trust r.snaps to name every
		// proxy: a live place whose activities all came from the victim
		// is recorded only in the victim's unsent snapshot, and even a
		// sent snapshot may trail in after the forgiving balance fires.
		// Broadcast instead — ctlCleanup is an idempotent delete, so
		// places without a proxy shrug it off.
		for q := Place(0); int(q) < r.rt.NumPlaces(); q++ {
			if q != r.ref.ID.Home && !r.dead[q] && !r.rt.PlaceDead(q) {
				targets = append(targets, q)
			}
		}
	}
	for _, q := range targets {
		tc := r.rt.tracer.SendCtx("flow.ctl", "finish", int(r.ref.ID.Home), 0,
			obs.Arg{Key: "dst", Val: int64(q)})
		r.rt.send(r.ref.ID.Home, q, x10rt.HandlerFinishCtl,
			ctlCleanup{ID: r.ref.ID, TC: tc}, 16, x10rt.ControlClass)
	}
	// The cleanup burst is the tail of the protocol: push it out rather
	// than let the fan-out sit in per-link batch queues.
	r.rt.flushTransport(r.ref.ID.Home)
	r.w.fire()
}

// exactBalancedLocked is the fault-free termination condition, byte for
// byte the protocol of the paper: totSent[q] must equal recv[q] for
// every involved place q.
func (r *defaultRoot) exactBalancedLocked() bool {
	totSent := make(map[Place]uint64, len(r.snaps)+len(r.sentHome))
	for q, n := range r.sentHome {
		totSent[q] += n
	}
	for _, s := range r.snaps {
		for q, n := range s.Sent {
			totSent[q] += n
		}
	}
	for q, sent := range totSent {
		var recv uint64
		if q == r.ref.ID.Home {
			recv = r.recvHome
		} else {
			recv = r.snaps[q].Recv
		}
		if recv != sent {
			return false
		}
	}
	// Also: every place that reported receives must be fully accounted
	// (recv cannot exceed sent, but check symmetry for robustness).
	for q, s := range r.snaps {
		if s.Recv != totSent[q] {
			return false
		}
	}
	return r.recvHome == totSent[r.ref.ID.Home]
}

// resilientBalancedLocked is the termination condition once places have
// died: for every ordered pair (s, q) of *live* places, the activities s
// reports sent toward q must equal the activities q reports received
// from s. Aggregate totals are not enough here — a dead place's sends
// and receives must be excluded exactly, and only per-source provenance
// (ctlSnapshot.RecvFrom) can tell a live place's receives from a dead
// sender apart from those from a live one.
func (r *defaultRoot) resilientBalancedLocked() bool {
	home := r.ref.ID.Home
	// recvOf(q)[s]: what live place q reports received from s; nil when
	// q has never reported (any live send toward it is then unresolved).
	recvOf := func(q Place) map[Place]uint64 {
		if q == home {
			return r.recvHomeFrom
		}
		if snap, ok := r.snaps[q]; ok {
			return snap.RecvFrom
		}
		return nil
	}
	sentBy := make(map[Place]map[Place]uint64, len(r.snaps)+1)
	sentBy[home] = r.sentHome
	for s, snap := range r.snaps {
		if !r.dead[s] {
			sentBy[s] = snap.Sent
		}
	}
	for s, sent := range sentBy {
		for q, n := range sent {
			if n == 0 || r.dead[q] {
				continue
			}
			// A q that never reported reads as zero receives, which n > 0
			// cannot match — live sends toward it stay unresolved.
			if recvOf(q)[s] != n {
				return false
			}
		}
	}
	// Symmetry: every receive a live place reports from a live sender
	// must be matched by that sender's sent count.
	for q := range r.snaps {
		if r.dead[q] {
			continue
		}
		for s, n := range r.snaps[q].RecvFrom {
			if r.dead[s] || n == 0 {
				continue
			}
			if sentBy[s][q] != n {
				return false
			}
		}
	}
	for s, n := range r.recvHomeFrom {
		if r.dead[s] || n == 0 {
			continue
		}
		if sentBy[s][home] != n {
			return false
		}
	}
	return true
}

// recordDeadLocked surfaces one ErrPlaceDead for dead place v.
func (r *defaultRoot) recordDeadLocked(v Place) {
	if r.deadErr == nil {
		r.deadErr = make(map[Place]bool)
	}
	r.deadErr[v] = true
	r.w.errs = append(r.w.errs, &x10rt.PlaceDeadError{Place: int(v)})
}

// touchedLocked reports whether the finish is known to have involved
// dead place v — the test for whether its death loses anything.
func (r *defaultRoot) touchedLocked(v Place) bool {
	if r.sentHome[v] > 0 || r.recvHomeFrom[v] > 0 {
		return true
	}
	if _, ok := r.snaps[v]; ok {
		return true
	}
	for _, s := range r.snaps {
		if s.Sent[v] > 0 || s.RecvFrom[v] > 0 {
			return true
		}
	}
	return false
}

// placeDeath implements rootFinish: forgive v's provenance (by marking
// it dead, which the resilient balance check excludes), surface the loss
// if the finish had touched v, and re-test termination.
func (r *defaultRoot) placeDeath(v Place) {
	r.w.mu.Lock()
	defer r.w.mu.Unlock()
	if r.dead[v] {
		return
	}
	if r.dead == nil {
		r.dead = make(map[Place]bool)
	}
	r.dead[v] = true
	r.events++
	if r.touchedLocked(v) {
		r.recordDeadLocked(v)
	}
	r.checkLocked()
}

// forceFire implements rootFinish: the home place itself died.
func (r *defaultRoot) forceFire(v Place) {
	r.w.mu.Lock()
	defer r.w.mu.Unlock()
	r.w.errs = append(r.w.errs, &x10rt.PlaceDeadError{Place: int(v)})
	r.w.fire()
}

// compensateSpawn implements rootFinish (see resilient.go).
func (r *defaultRoot) compensateSpawn(dst Place, err error) {
	r.w.mu.Lock()
	defer r.w.mu.Unlock()
	r.events++
	// The resilient balance check excludes dead destinations, so the
	// stale sentHome entry cannot wedge termination; decrementing keeps
	// the diagnostics (deficit view) honest when dst is still marked
	// live locally.
	if !r.dead[dst] && r.sentHome[dst] > 0 {
		r.sentHome[dst]--
	}
	r.w.errs = append(r.w.errs, err)
	r.checkLocked()
}

// addError implements rootFinish.
func (r *defaultRoot) addError(err error) {
	r.w.mu.Lock()
	defer r.w.mu.Unlock()
	r.w.errs = append(r.w.errs, err)
}

func (r *defaultRoot) wait(pl *place) error {
	r.w.mu.Lock()
	r.w.waiting = true
	r.checkLocked()
	r.w.mu.Unlock()
	return r.w.block(pl)
}

// vectorProxy is the per-place state of the vector protocol away from home.
type vectorProxy struct {
	rt  *Runtime
	ref finRef
	pl  *place

	// Guarded by the owning place's finMu (coarse but simple: proxy
	// events are cheap and per-place).
	live  int
	recv  uint64
	local uint64
	sent  map[Place]uint64
	// recvFrom is recv broken out by sender, shipped home in every
	// snapshot so the root can reconcile per source pair under place
	// death (see resilient.go).
	recvFrom map[Place]uint64
	epoch    uint64
	errs     []error
}

// proxyEvent processes an activity event at a non-home place.
func (rt *Runtime) proxyEvent(fin finRef, pl *place, kind finEventKind, other Place, err error) {
	pl.finMu.Lock()
	px, ok := pl.proxies[fin.ID]
	if !ok {
		// Only a remote begin legitimately creates a proxy: any other
		// event belongs to an activity that already began here, so its
		// proxy can only be missing because the root force-terminated
		// under a place death and its cleanup raced the still-running
		// activity. The credit was already forgiven by adoption;
		// recording it now would leave a negative proxy on a survivor
		// forever.
		if kind != evRemoteBegin && rt.anyDeath() {
			pl.finMu.Unlock()
			return
		}
		px = &vectorProxy{rt: rt, ref: fin, pl: pl, sent: make(map[Place]uint64),
			recvFrom: make(map[Place]uint64)}
		pl.proxies[fin.ID] = px
	}
	var snap *ctlSnapshot
	switch kind {
	case evLocalSpawn:
		px.live++
		px.local++
	case evRemoteSpawn:
		px.sent[other]++
	case evRemoteBegin:
		px.recv++
		px.recvFrom[other]++
		px.live++
	case evTerminate:
		px.live--
		if err != nil {
			px.errs = append(px.errs, err)
		}
		if px.live == 0 {
			s := px.snapshot()
			snap = &s
		}
	}
	pl.finMu.Unlock()
	if snap != nil {
		rt.sendSnapshot(pl.id, fin, *snap)
	}
}

// snapshot builds the cumulative quiescence report; caller holds finMu.
func (px *vectorProxy) snapshot() ctlSnapshot {
	px.epoch++
	sent := make(map[Place]uint64, len(px.sent))
	for q, n := range px.sent {
		sent[q] = n
	}
	recvFrom := make(map[Place]uint64, len(px.recvFrom))
	for q, n := range px.recvFrom {
		recvFrom[q] = n
	}
	errs := make([]error, len(px.errs))
	copy(errs, px.errs)
	return ctlSnapshot{
		ID:       px.ref.ID,
		From:     px.pl.id,
		Epoch:    px.epoch,
		Recv:     px.recv,
		Local:    px.local,
		Sent:     sent,
		RecvFrom: recvFrom,
		Errs:     errs,
	}
}

// sendSnapshot delivers a snapshot to the root: directly for the default
// pattern, via the software route for FINISH_DENSE.
func (rt *Runtime) sendSnapshot(from Place, fin finRef, snap ctlSnapshot) {
	home := fin.ID.Home
	if rt.anyDeath() && rt.PlaceDead(home) {
		return // the root is gone; its proxies were dropped by PlaceDeath
	}
	if fin.Pattern != PatternDense {
		snap.TC = rt.tracer.SendCtx("flow.ctl", "finish", int(from), 0,
			obs.Arg{Key: "dst", Val: int64(home)})
		rt.send(from, home, x10rt.HandlerFinishCtl, snap, snapshotBytes(snap), x10rt.ControlClass)
		// A snapshot is sent when a proxy goes quiescent; the root may be
		// waiting on exactly this message, so it must not idle in a batch.
		rt.flushTransport(from)
		return
	}
	hops := rt.denseRoute(from, home)
	tc := rt.tracer.SendCtx("flow.ctl", "finish", int(from), 0,
		obs.Arg{Key: "dst", Val: int64(hops[0])})
	rt.send(from, hops[0], x10rt.HandlerFinishCtl,
		ctlRouted{ID: fin.ID, Snaps: []ctlSnapshot{snap}, Hops: hops, TC: tc},
		snapshotBytes(snap)+8, x10rt.ControlClass)
	rt.flushTransport(from)
}

// reapProxy tells place at to drop its proxy for a root that no longer
// exists at home. Sent only under place death, where a cleanup burst
// can race in-flight spawns that re-create proxy state after the root
// force-terminated; the re-created proxy's quiescence snapshot lands
// here and is answered with this second, final cleanup.
func (rt *Runtime) reapProxy(home Place, id finishID, at Place) {
	if at == home || rt.PlaceDead(at) {
		return
	}
	tc := rt.tracer.SendCtx("flow.ctl", "finish", int(home), 0,
		obs.Arg{Key: "dst", Val: int64(at)})
	// Best-effort: the reap races runtime shutdown by construction (it
	// answers stragglers of an already-terminated root), so a closed
	// transport is as acceptable an outcome as a dead destination.
	_ = rt.tr.Send(int(home), int(at), x10rt.HandlerFinishCtl,
		ctlCleanup{ID: id, TC: tc}, 16, x10rt.ControlClass)
	rt.flushTransport(home)
}

// denseRoute computes the software route from place p to the finish home:
// p -> master(p) -> master(home) -> home, with degenerate hops elided.
// Masters are the first place of each host (p - p%b, b places per host),
// so irregular control traffic is funneled through one place per host —
// the traffic-shaping trick of §3.1 that makes FINISH_DENSE viable on
// interconnects that favor low out-degree communication graphs.
func (rt *Runtime) denseRoute(p, home Place) []Place {
	route := make([]Place, 0, 3)
	for _, hop := range []Place{rt.master(p), rt.master(home), home} {
		if hop == p {
			continue
		}
		// A dead master is routed around: the snapshot goes direct to the
		// next live hop (ultimately home, which the caller guarantees is
		// alive) instead of dying in a severed mailbox.
		if hop != home && rt.anyDeath() && rt.PlaceDead(hop) {
			continue
		}
		if len(route) > 0 && route[len(route)-1] == hop {
			continue
		}
		route = append(route, hop)
	}
	if len(route) == 0 {
		route = append(route, home)
	}
	return route
}

// routeDense forwards or applies a routed control message at place pl.
//
// Masters coalesce: instead of forwarding each snapshot immediately, a
// master buffers it and enqueues a flush marker to itself. Every snapshot
// already sitting in the master's mailbox is processed before the marker
// comes back around, so bursts of control traffic collapse into one
// forwarded message per burst — the runtime "automatically coalesces ...
// the control messages used by the termination detection algorithm"
// (§3.1) at the cost of one extra local dispatch of latency, which is the
// trade the paper advocates (termination traffic cares about the last
// message, not each message's latency).
func (rt *Runtime) routeDense(pl *place, m ctlRouted) {
	if pl.id == m.ID.Home {
		pl.finMu.Lock()
		root, ok := pl.roots[m.ID]
		pl.finMu.Unlock()
		if !ok {
			// The root declares termination from reconciled cumulative
			// vectors and deregisters; a snapshot still in flight at that
			// moment (delayed on a link, or parked in a master's coalescing
			// buffer behind a late flush marker) is stale by construction
			// and is dropped, exactly like a ctlDone{N:0} straggler. The
			// chaos harness's delay faults hit this window reliably. Under
			// a place death the sender may instead be a re-created proxy
			// of a force-terminated root; reap it (see handleFinishCtl).
			if rt.anyDeath() {
				for _, s := range m.Snaps {
					rt.reapProxy(pl.id, m.ID, s.From)
				}
			}
			return
		}
		dr, ok := root.(*defaultRoot)
		if !ok {
			panic(fmt.Sprintf("core: routed snapshot for non-dense finish %+v", m.ID))
		}
		for _, s := range m.Snaps {
			dr.applySnapshot(s)
		}
		return
	}
	if len(m.Hops) == 0 || m.Hops[0] != pl.id {
		panic(fmt.Sprintf("core: dense route desync at place %d: %+v", pl.id, m.Hops))
	}
	rest := m.Hops[1:]
	if m.Flush {
		rt.flushDense(pl, m.ID, rest)
		return
	}
	// Buffer the snapshots; arm a flush marker if the buffer was idle.
	key := denseBufKey{id: m.ID, next: hopsKey(rest)}
	pl.denseMu.Lock()
	if pl.denseBuf == nil {
		pl.denseBuf = make(map[denseBufKey][]ctlSnapshot)
	}
	buf, armed := pl.denseBuf[key]
	pl.denseBuf[key] = append(buf, m.Snaps...)
	pl.denseMu.Unlock()
	if !armed {
		rt.send(pl.id, pl.id, x10rt.HandlerFinishCtl,
			ctlRouted{ID: m.ID, Hops: m.Hops, Flush: true}, 8, x10rt.ControlClass)
	}
}

// denseFlushChunk bounds the snapshots per forwarded ctlRouted so a
// master that coalesced a very large burst hands the transport several
// bounded pre-batched payloads rather than one unbounded frame. The
// transport's own batcher can still pack the chunks into one wire write.
const denseFlushChunk = 256

// flushDense forwards everything buffered for (finish, remaining route)
// as pre-batched routed payloads: the master's coalescing buffer, not
// the transport, decides what travels together, and the per-chunk send
// replaces what would otherwise be one message per buffered snapshot.
func (rt *Runtime) flushDense(pl *place, id finishID, rest []Place) {
	key := denseBufKey{id: id, next: hopsKey(rest)}
	pl.denseMu.Lock()
	snaps := pl.denseBuf[key]
	delete(pl.denseBuf, key)
	pl.denseMu.Unlock()
	if len(snaps) == 0 {
		return
	}
	if rt.anyDeath() {
		// Hops that died after this route was computed are skipped; if
		// the home itself is gone the snapshots are moot.
		for len(rest) > 0 && rt.PlaceDead(rest[0]) {
			rest = rest[1:]
		}
		if rt.PlaceDead(id.Home) {
			return
		}
	}
	dst := id.Home
	if len(rest) > 0 {
		dst = rest[0]
	}
	for len(snaps) > 0 {
		chunk := snaps
		if len(chunk) > denseFlushChunk {
			chunk = chunk[:denseFlushChunk]
		}
		snaps = snaps[len(chunk):]
		bytes := 8
		for _, s := range chunk {
			bytes += snapshotBytes(s)
		}
		// Each forward hop is its own wire message: stamp a fresh
		// per-hop trace context so the merged trace shows the route.
		tc := rt.tracer.SendCtx("flow.ctl", "finish", int(pl.id), 0,
			obs.Arg{Key: "dst", Val: int64(dst)})
		rt.send(pl.id, dst, x10rt.HandlerFinishCtl,
			ctlRouted{ID: id, Snaps: chunk, Hops: rest, TC: tc}, bytes, x10rt.ControlClass)
	}
	// The forward ends a coalescing round; downstream hops (or the root)
	// are waiting on it, so it leaves the place now.
	rt.flushTransport(pl.id)
}

// denseBufKey identifies one coalescing buffer: a finish plus the route
// remainder its snapshots share.
type denseBufKey struct {
	id   finishID
	next string
}

func hopsKey(hops []Place) string {
	b := make([]byte, 0, len(hops)*3)
	for _, h := range hops {
		b = append(b, byte(h), byte(h>>8), ',')
	}
	return string(b)
}
