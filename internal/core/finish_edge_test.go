package core

import (
	"errors"
	"strings"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestEmptyFinishesTerminate(t *testing.T) {
	rt := newTestRuntime(t, 4)
	err := rt.Run(func(ctx *Ctx) {
		for _, pat := range []Pattern{
			PatternDefault, PatternAsync, PatternHere,
			PatternLocal, PatternSPMD, PatternDense,
		} {
			if err := ctx.FinishPragma(pat, func(*Ctx) {}); err != nil {
				t.Errorf("%v: empty finish errored: %v", pat, err)
			}
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestDeeplyNestedFinishes(t *testing.T) {
	rt := newTestRuntime(t, 3)
	var n atomic.Int64
	err := rt.Run(func(ctx *Ctx) {
		var nest func(c *Ctx, depth int)
		nest = func(c *Ctx, depth int) {
			if depth == 0 {
				n.Add(1)
				return
			}
			if err := c.Finish(func(cc *Ctx) {
				cc.AtAsync(Place(depth%3), func(c3 *Ctx) { nest(c3, depth-1) })
			}); err != nil {
				t.Errorf("depth %d: %v", depth, err)
			}
		}
		nest(ctx, 30)
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if n.Load() != 1 {
		t.Errorf("leaf ran %d times", n.Load())
	}
}

func TestHereErrorBeforeResponse(t *testing.T) {
	// The remote activity dies before sending the response: the token is
	// released explicitly with the error attached.
	rt := newTestRuntime(t, 2)
	err := rt.Run(func(ctx *Ctx) {
		ferr := ctx.FinishPragma(PatternHere, func(c *Ctx) {
			c.AtAsync(1, func(*Ctx) { panic("pre-response crash") })
		})
		if ferr == nil || !strings.Contains(ferr.Error(), "pre-response crash") {
			t.Errorf("error = %v", ferr)
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestHereErrorAfterResponse(t *testing.T) {
	// The remote activity panics after passing its token home: the finish
	// must still terminate (and may or may not catch the late error).
	rt := newTestRuntime(t, 2)
	err := rt.Run(func(ctx *Ctx) {
		home := ctx.Place()
		var responded atomic.Bool
		_ = ctx.FinishPragma(PatternHere, func(c *Ctx) {
			c.AtAsync(1, func(cc *Ctx) {
				cc.AtAsync(home, func(*Ctx) { responded.Store(true) })
				panic("post-response crash")
			})
		})
		if !responded.Load() {
			t.Error("response did not run")
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestDenseWithFewPlacesPerHost(t *testing.T) {
	// PlacesPerHost larger than the place count degenerates the routing
	// to direct delivery; the protocol must still work.
	rt := newTestRuntime(t, 3, func(c *Config) { c.PlacesPerHost = 32 })
	var n atomic.Int64
	err := rt.Run(func(ctx *Ctx) {
		if err := ctx.FinishPragma(PatternDense, func(c *Ctx) {
			for _, p := range c.Places() {
				c.AtAsync(p, func(cc *Ctx) {
					cc.AtAsync((cc.Place()+1)%3, func(*Ctx) { n.Add(1) })
				})
			}
		}); err != nil {
			t.Errorf("dense: %v", err)
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if n.Load() != 3 {
		t.Errorf("n = %d", n.Load())
	}
}

func TestSequentialFinishesReuseRuntime(t *testing.T) {
	rt := newTestRuntime(t, 4)
	for round := 0; round < 5; round++ {
		var n atomic.Int64
		err := rt.Run(func(ctx *Ctx) {
			_ = ctx.Finish(func(c *Ctx) {
				for _, p := range c.Places() {
					c.AtAsync(p, func(*Ctx) { n.Add(1) })
				}
			})
		})
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if n.Load() != 4 {
			t.Fatalf("round %d: n=%d", round, n.Load())
		}
	}
}

func TestErrorsAreErrorsIs(t *testing.T) {
	rt := newTestRuntime(t, 2)
	sentinel := errors.New("sentinel")
	err := rt.Run(func(ctx *Ctx) {
		ferr := ctx.Finish(func(c *Ctx) {
			c.AtAsync(1, func(*Ctx) { panic(sentinel) })
			c.AtAsync(1, func(*Ctx) { panic(sentinel) })
		})
		if !errors.Is(ferr, sentinel) {
			t.Errorf("errors.Is failed on %v", ferr)
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}

// TestFinishCountExactProperty: for random fan-out shapes under the
// default algorithm, the activity count observed after the finish is
// exactly the number spawned — a quick-checked safety property.
func TestFinishCountExactProperty(t *testing.T) {
	rt := newTestRuntime(t, 5)
	f := func(shape []uint8) bool {
		if len(shape) > 40 {
			shape = shape[:40]
		}
		var n atomic.Int64
		err := rt.Run(func(ctx *Ctx) {
			ferr := ctx.Finish(func(c *Ctx) {
				for _, b := range shape {
					dst := Place(int(b) % 5)
					hops := int(b) % 3
					c.AtAsync(dst, func(cc *Ctx) {
						n.Add(1)
						for h := 0; h < hops; h++ {
							cc.AtAsync((cc.Place()+1)%5, func(*Ctx) { n.Add(1) })
						}
					})
				}
			})
			if ferr != nil {
				t.Errorf("finish: %v", ferr)
			}
		})
		if err != nil {
			return false
		}
		want := int64(0)
		for _, b := range shape {
			want += 1 + int64(int(b)%3)
		}
		return n.Load() == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestProfiledFinishWithErrors(t *testing.T) {
	rt := newTestRuntime(t, 3)
	err := rt.Run(func(ctx *Ctx) {
		profile, ferr := ctx.FinishProfiled(func(c *Ctx) {
			c.AtAsync(1, func(*Ctx) { panic("boom") })
			c.AtAsync(2, func(*Ctx) {})
		})
		if ferr == nil {
			t.Error("error lost by profiled finish")
		}
		if profile.Governed != 2 {
			t.Errorf("Governed = %d, want 2", profile.Governed)
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestPatternStringNames(t *testing.T) {
	want := map[Pattern]string{
		PatternDefault: "FINISH_DEFAULT",
		PatternAsync:   "FINISH_ASYNC",
		PatternHere:    "FINISH_HERE",
		PatternLocal:   "FINISH_LOCAL",
		PatternSPMD:    "FINISH_SPMD",
		PatternDense:   "FINISH_DENSE",
	}
	for p, s := range want {
		if p.String() != s {
			t.Errorf("%d.String() = %q, want %q", p, p.String(), s)
		}
	}
	if !strings.Contains(Pattern(99).String(), "99") {
		t.Error("unknown pattern string")
	}
}
