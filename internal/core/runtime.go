// Package core implements the APGAS (Asynchronous Partitioned Global
// Address Space) runtime described in "X10 and APGAS at Petascale"
// (PPoPP 2014): places, asynchronous activities (async/at), distributed
// termination detection (finish, §3.1), scalable broadcast over place
// groups (§3.2), global references, place-local storage, clocks, and
// atomic sections.
//
// A Runtime hosts a fixed set of places. Like X10 on the Power 775, each
// place runs its activities on a bounded set of workers (one by default,
// matching the paper's X10_NTHREADS=1 configuration) and communicates with
// other places exclusively through the x10rt transport, so that control
// traffic is observable, countable, and subject to the same reordering
// hazards the paper's finish algorithms are designed to survive.
//
// Execution starts with a main activity at place 0; all other places are
// initially idle, exactly as in X10.
package core

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"apgas/internal/obs"
	"apgas/internal/sched"
	"apgas/internal/x10rt"
)

// Place identifies one place of the computation, 0 through Places-1.
type Place int

// Config configures a Runtime. The zero value of optional fields selects
// the documented defaults.
type Config struct {
	// Places is the number of places; must be >= 1.
	Places int

	// WorkersPerPlace bounds the number of simultaneously executing
	// activities per place (default 1, the paper's configuration).
	WorkersPerPlace int

	// PlacesPerHost is the number of places sharing a host, used by the
	// FINISH_DENSE software router (default 32, as on the Power 775 where
	// each 32-core octant ran 32 places).
	PlacesPerHost int

	// BroadcastArity is the fan-out of PlaceGroup spawning trees
	// (default 8).
	BroadcastArity int

	// Transport overrides the transport. It must be an in-process
	// transport (places share one address space); by default a
	// ChanTransport is created. Supplying a transport with injected
	// latency or control-message reordering exercises the runtime under
	// adverse network conditions.
	Transport x10rt.Transport

	// OwnTransport transfers ownership of a supplied Transport to the
	// runtime: Close closes it. Ignored when Transport is nil (a
	// default-built transport is always owned).
	OwnTransport bool

	// CheckPatterns enables verification of the usage contracts of the
	// specialized finish patterns (FINISH_ASYNC, FINISH_HERE,
	// FINISH_LOCAL, FINISH_SPMD); violations panic with a diagnostic.
	// The general patterns (FINISH_DEFAULT, FINISH_DENSE) accept any
	// program. Default on; disable only in benchmarks.
	CheckPatterns bool

	// Obs attaches an observability layer (metrics registry and optional
	// tracer) to the runtime. When nil, the process-wide obs.Global() is
	// used; when that too is nil, observability is disabled and the
	// instrumented paths cost a single nil check each.
	Obs *obs.Obs

	// FlightDump, when non-nil, receives a flight-recorder dump (JSON
	// Lines, see obs.FlightRecorder.WriteDump) whenever Run returns a
	// non-nil error — the black box is read out at the crash site.
	FlightDump io.Writer

	// Now, when non-nil, replaces the wall clock for the runtime's
	// latency measurements (finish duration metrics). The chaos harness
	// installs a virtual clock here so that repeated replays of one seed
	// produce stable timings in traces and dumps; production runtimes
	// leave it nil and use real time.
	Now func() int64

	// WireLedger enables message-level cost attribution: a
	// x10rt.WireLedger is created over the observability layer's
	// per-place registries and attached to the transport (when it
	// implements x10rt.LedgerSink), accounting every send/receive by
	// (handler, src→dst link) with serialization timings. Off by
	// default: with it off, every transport record site costs one nil
	// check. Requires an observability layer (Obs or obs.Global()).
	WireLedger bool
}

func (c *Config) applyDefaults() error {
	if c.Places < 1 {
		return fmt.Errorf("core: Config.Places=%d, need >= 1", c.Places)
	}
	if c.WorkersPerPlace <= 0 {
		c.WorkersPerPlace = 1
	}
	if c.PlacesPerHost <= 0 {
		c.PlacesPerHost = 32
	}
	if c.BroadcastArity <= 0 {
		c.BroadcastArity = 8
	}
	return nil
}

// Runtime hosts a set of places and the machinery connecting them.
type Runtime struct {
	cfg       Config
	tr        x10rt.Transport
	flusher   x10rt.Flusher // tr's flush hook, nil when tr does not batch
	ownsTr    bool
	places    []*place
	locals    *localRegistry
	closeOnce sync.Once
	closed    atomic.Bool

	// observability (all nil when disabled; see obs.go)
	obs    *obs.Obs
	tracer *obs.Tracer
	prof   *obs.Profiler
	m      *runtimeMetrics
	flight *obs.FlightRecorder
	fids   *flightIDs
	// causal is the live span registry behind the watchdog's causal
	// stall chains; nil unless the tracer has distributed tracing
	// enabled (see causal.go).
	causal *causalRegistry
	// ledger is the wire observatory's cost-attribution ledger, nil
	// unless Config.WireLedger was set (see x10rt.WireLedger).
	ledger *x10rt.WireLedger

	// arenas is the process-wide one-sided window registry (congruent
	// fragments register here). Always created; osSender is non-nil only
	// when the transport has a one-sided lane (see onesided.go).
	arenas   *x10rt.ArenaTable
	osSender x10rt.OneSidedSender

	// acts tracks, per finish pattern, the cumulative number of governed
	// activities spawned and completed anywhere in the computation. The
	// two totals must agree whenever no governed activity is live — the
	// conservation invariant the chaos harness checks after every run.
	// Always on: two atomic adds per activity, independent of obs.
	acts [numPatterns]activityCounter

	// placeActs tracks begun/completed per place; each live place's pair
	// stays balanced even when a death unbalances the global acts totals
	// (see resilient.go).
	placeActs []placeActivityCounter

	// deaths is the resilience bookkeeping: which places died, and who
	// wants to hear about it (see resilient.go).
	deaths deathRegistry
}

// activityCounter is one pattern's spawned/completed pair.
type activityCounter struct {
	spawned   atomic.Uint64
	completed atomic.Uint64
}

// place is the per-place state: scheduler, finish bookkeeping, object
// tables, and the local monitor for atomic sections.
type place struct {
	id    Place
	rt    *Runtime
	sched *sched.Scheduler

	// finish bookkeeping
	finSeq  atomic.Uint64
	finMu   sync.Mutex
	roots   map[finishID]rootFinish
	proxies map[finishID]*vectorProxy

	// global reference table
	refMu  sync.Mutex
	refSeq uint64
	refs   map[uint64]any

	// place monitor backing Atomic/When
	monMu   sync.Mutex
	monCond *sync.Cond

	// clock table (for clocks homed at this place)
	clockMu  sync.Mutex
	clockSeq uint64
	clocks   map[uint64]*clockState

	// dense-routing coalescing buffers (see routeDense)
	denseMu  sync.Mutex
	denseBuf map[denseBufKey][]ctlSnapshot

	// pm are this place's own metric handles, reporting into the place
	// registry (obs.Obs.Place) under unqualified names so snapshots from
	// different places merge by name; nil when observability is off.
	pm *runtimeMetrics
}

// NewRuntime creates a runtime with cfg.Places places and registers the
// runtime's active-message handlers on the transport.
func NewRuntime(cfg Config) (*Runtime, error) {
	if err := cfg.applyDefaults(); err != nil {
		return nil, err
	}
	rt := &Runtime{cfg: cfg, locals: newLocalRegistry(cfg.Places)}
	o := cfg.Obs
	if o == nil {
		o = obs.Global()
	}
	if o != nil {
		rt.obs = o
		rt.tracer = o.Trace
		rt.prof = o.Prof
		rt.m = newRuntimeMetrics(o.Metrics)
		if f := o.FlightRecorder(); f != nil {
			rt.flight = f
			rt.fids = newFlightIDs(f)
		}
		if rt.tracer.DistEnabled() {
			rt.causal = newCausalRegistry()
		}
	}
	if cfg.Transport != nil {
		if cfg.Transport.NumPlaces() != cfg.Places {
			return nil, fmt.Errorf("core: transport has %d places, config wants %d",
				cfg.Transport.NumPlaces(), cfg.Places)
		}
		rt.tr = cfg.Transport
		rt.ownsTr = cfg.OwnTransport
	} else {
		tr, err := x10rt.NewChanTransport(x10rt.ChanOptions{Places: cfg.Places})
		if err != nil {
			return nil, err
		}
		rt.tr = tr
		rt.ownsTr = true
	}
	rt.flusher, _ = rt.tr.(x10rt.Flusher)
	if ts, ok := rt.tr.(x10rt.TracerSink); ok && rt.tracer != nil {
		// Serializing transports stamp batch frames with the sender's
		// HLC once distributed tracing is enabled on this tracer.
		ts.AttachTracer(rt.tracer)
	}
	if rt.obs != nil {
		if ms, ok := rt.tr.(x10rt.MetricSource); ok {
			ms.AttachMetrics(rt.obs.Metrics)
		}
		// Per-place egress counters feed each place's own registry, the
		// raw material of the cross-place telemetry aggregation.
		if ps, ok := rt.tr.(x10rt.PlaceMetricSource); ok {
			for i := 0; i < cfg.Places; i++ {
				ps.AttachPlaceMetrics(i, rt.obs.Place(i))
			}
		}
		// The wire ledger rides the same per-place registries, so its
		// x10rt.h<ID>.* / x10rt.link.* accounts flow through the
		// telemetry gather tree and Prometheus export like any metric.
		if cfg.WireLedger {
			if ls, ok := rt.tr.(x10rt.LedgerSink); ok {
				o := rt.obs
				rt.ledger = x10rt.NewWireLedger(cfg.Places, func(p int) *obs.Registry {
					return o.Place(p)
				})
				ls.AttachWireLedger(rt.ledger)
			}
		}
	}
	rt.places = make([]*place, cfg.Places)
	for i := range rt.places {
		pl := &place{
			id:      Place(i),
			rt:      rt,
			sched:   sched.New(cfg.WorkersPerPlace),
			roots:   make(map[finishID]rootFinish),
			proxies: make(map[finishID]*vectorProxy),
			refs:    make(map[uint64]any),
			clocks:  make(map[uint64]*clockState),
		}
		pl.monCond = sync.NewCond(&pl.monMu)
		if rt.obs != nil {
			pl.sched.AttachMetrics(rt.obs.Metrics, fmt.Sprintf("sched.p%d", i))
			// The same scheduler metrics also appear in the place's own
			// registry under the unqualified prefix, plus the place's
			// private copies of the core runtime counters.
			preg := rt.obs.Place(i)
			pl.sched.AttachMetrics(preg, "sched")
			pl.pm = newRuntimeMetrics(preg)
		}
		rt.places[i] = pl
	}
	if err := rt.tr.Register(x10rt.HandlerSpawn, rt.onSpawn); err != nil {
		return nil, err
	}
	if err := rt.tr.Register(x10rt.HandlerFinishCtl, rt.onFinishCtl); err != nil {
		return nil, err
	}
	if err := rt.tr.Register(x10rt.HandlerClockCtl, rt.onClockCtl); err != nil {
		return nil, err
	}
	// The one-sided lane: the arena table always exists (congruent
	// registers windows unconditionally), and when the transport can
	// both send and land one-sided ops, landings run through the
	// runtime's finish-accounting hook.
	rt.arenas = x10rt.NewArenaTable()
	if sink, ok := rt.tr.(x10rt.OneSidedSink); ok {
		if snd, ok := rt.tr.(x10rt.OneSidedSender); ok {
			rt.osSender = snd
			rt.arenas.SetHook(rt.onOneSided)
			sink.AttachArenas(rt.arenas)
		}
	}
	rt.placeActs = make([]placeActivityCounter, cfg.Places)
	rt.deaths.dead = make([]atomic.Bool, cfg.Places)
	// Transports that can lose places report here; PlaceDeath is
	// idempotent, so the in-process notifier's once-per-survivor fan-out
	// collapses to a single adoption pass.
	if dn, ok := rt.tr.(x10rt.DeathNotifier); ok {
		dn.NotifyDeath(func(dead, _ int) { rt.PlaceDeath(Place(dead)) })
	}
	return rt, nil
}

// NumPlaces returns the number of places.
func (rt *Runtime) NumPlaces() int { return rt.cfg.Places }

// Transport exposes the underlying transport, mainly for reading traffic
// statistics in experiments.
func (rt *Runtime) Transport() x10rt.Transport { return rt.tr }

// WireLedger returns the wire observatory's cost-attribution ledger,
// nil unless Config.WireLedger was set on a transport that supports it.
func (rt *Runtime) WireLedger() *x10rt.WireLedger { return rt.ledger }

// Arenas returns the process-wide one-sided window registry.
func (rt *Runtime) Arenas() *x10rt.ArenaTable { return rt.arenas }

// OneSidedEnabled reports whether the transport has a one-sided lane
// (chan and TCP do; callers without one fall back to active messages).
func (rt *Runtime) OneSidedEnabled() bool { return rt.osSender != nil }

// Config returns the effective configuration.
func (rt *Runtime) Config() Config { return rt.cfg }

// Close shuts the runtime down. Outstanding activities are abandoned; call
// Close only after Run has returned.
func (rt *Runtime) Close() {
	rt.closeOnce.Do(func() {
		rt.closed.Store(true)
		if rt.ownsTr {
			rt.tr.Close()
		}
	})
}

// Run executes main as the program's root activity at place 0 under an
// implicit root finish, blocking until every transitively spawned activity
// on every place has terminated. It returns the combined error of any
// activities that panicked. Run may be called several times sequentially;
// concurrent Runs on one Runtime are not supported.
func (rt *Runtime) Run(main func(*Ctx)) error {
	if rt.closed.Load() {
		return fmt.Errorf("core: runtime is closed")
	}
	pl := rt.places[0]
	var err error
	pl.sched.Run(func() {
		ctx := &Ctx{rt: rt, pl: pl}
		// The root activity carries the base label set; every goroutine
		// it spawns inherits the labels until an inner scope overrides
		// them, so even un-instrumented helper goroutines stay
		// attributable to place 0's main line.
		if pr := rt.prof; pr != nil {
			err = pr.Run(0, PatternDefault.metricKey(), kindMain,
				func(pc context.Context) error {
					ctx.profCtx = pc
					return ctx.Finish(main)
				})
		} else {
			err = ctx.Finish(main)
		}
	})
	if err != nil {
		if f := rt.fids; f != nil {
			rt.flight.Record(f.runError, f.catCore, 'i', 0, 0, 0)
		}
		if rt.cfg.FlightDump != nil && rt.flight != nil {
			fmt.Fprintf(rt.cfg.FlightDump, "# apgas: Run failed (%v); flight recorder follows\n", err)
			_ = rt.flight.WriteDump(rt.cfg.FlightDump)
		}
	}
	return err
}

// place lookup helper; panics on out-of-range place (programming error).
func (rt *Runtime) place(p Place) *place {
	if int(p) < 0 || int(p) >= len(rt.places) {
		panic(fmt.Sprintf("core: place %d out of range [0,%d)", p, len(rt.places)))
	}
	return rt.places[p]
}

// master returns the master place of p's host, used by the FINISH_DENSE
// software router: control messages from place p are routed via
// p - p%b where b is the number of places per host.
func (rt *Runtime) master(p Place) Place {
	b := Place(rt.cfg.PlacesPerHost)
	return p - p%b
}

// now returns the configured time source's reading in nanoseconds.
// Durations are differences of now() values, so any monotone source works.
func (rt *Runtime) now() int64 {
	if rt.cfg.Now != nil {
		return rt.cfg.Now()
	}
	return time.Now().UnixNano()
}

// send is the single funnel for runtime messages whose loss a place
// death already accounts for: control credits and snapshots addressed to
// a dead root are moot (the root force-fired), and everything a dead
// place would have sent is forgiven by the adoption protocol. Dead-place
// failures are therefore dropped silently; any other failure is still a
// transport bug and panics. Spawn paths, whose loss must be compensated,
// use trySend (resilient.go) instead.
func (rt *Runtime) send(src, dst Place, id x10rt.HandlerID, payload any, bytes int, class x10rt.Class) {
	if err := rt.tr.Send(int(src), int(dst), id, payload, bytes, class); err != nil &&
		!errors.Is(err, x10rt.ErrPlaceDead) {
		panicSendFailure(src, dst, err)
	}
}

// flushTransport pushes any batched frames queued at place p out to
// the wire immediately. The finish protocols call it at their decisive
// control points — a quiescence snapshot, a cleanup burst, a dense
// forward — where the *last* message of a burst gates termination and
// must not sit out a batching delay. A no-op on transports that do not
// buffer.
func (rt *Runtime) flushTransport(p Place) {
	if rt.flusher != nil {
		_ = rt.flusher.Flush(int(p))
	}
}
