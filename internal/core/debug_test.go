package core

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"time"

	"apgas/internal/obs"
)

// TestFinishStatesDeficit drives a distributed finish into a known
// intermediate state — one remote activity parked at place 1 — and checks
// the introspection API reports it as a who-owes-whom deficit naming the
// delinquent place.
func TestFinishStatesDeficit(t *testing.T) {
	rt, err := NewRuntime(Config{Places: 4, Obs: obs.New()})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()

	arrived := make(chan struct{})
	release := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		done <- rt.Run(func(c *Ctx) {
			c.AtAsync(1, func(cc *Ctx) {
				close(arrived)
				cc.Blocking(func() { <-release })
			})
		})
	}()
	<-arrived

	// The root finish (the implicit Run finish) must reach Waiting with a
	// deficit at place 1; poll briefly since Run's wait races with us.
	deadline := time.Now().Add(5 * time.Second)
	var found *FinishState
	for time.Now().Before(deadline) {
		states := rt.FinishStates()
		for i, s := range states {
			if s.Home == 0 && s.Waiting && !s.Done && len(s.Deficits) > 0 {
				found = &states[i]
			}
		}
		if found != nil {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if found == nil {
		close(release)
		t.Fatalf("no waiting finish with deficits; states=%+v", rt.FinishStates())
	}
	if found.Pattern != PatternDefault {
		t.Errorf("root pattern = %v, want FINISH_DEFAULT", found.Pattern)
	}
	if len(found.Deficits) != 1 || found.Deficits[0].Place != 1 {
		t.Errorf("deficits = %+v, want exactly place 1", found.Deficits)
	}
	if d := found.Deficits[0]; d.Pending() != 1 || d.Sent != 1 || d.Recv != 0 {
		t.Errorf("deficit = %+v, want pending=1 sent=1 recv=0", d)
	}
	if found.Events == 0 {
		t.Error("root Events counter never moved")
	}

	// The parked activity is also visible as a live proxy at place 1.
	proxies := rt.ProxyStates()
	var px *ProxyState
	for i := range proxies {
		if proxies[i].Place == 1 {
			px = &proxies[i]
		}
	}
	if px == nil || px.Live != 1 {
		t.Errorf("proxy at place 1 = %+v, want live=1", px)
	}

	// The dump names the pattern, the place, and the pending count.
	var buf bytes.Buffer
	rt.WriteFinishDump(&buf)
	dump := buf.String()
	for _, want := range []string{"FINISH_DEFAULT", "place p1", "pending=1"} {
		if !strings.Contains(dump, want) {
			t.Errorf("dump missing %q:\n%s", want, dump)
		}
	}

	close(release)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	// After termination the root is deregistered.
	if states := rt.FinishStates(); len(states) != 0 {
		t.Errorf("states after Run = %+v, want none", states)
	}
}

// TestPlaceMetricsPopulated checks each place's registry carries its own
// transport egress, scheduler, and core counters under unqualified names.
func TestPlaceMetricsPopulated(t *testing.T) {
	o := obs.New()
	rt, err := NewRuntime(Config{Places: 3, Obs: o})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	err = rt.Run(func(c *Ctx) {
		for p := 1; p < c.NumPlaces(); p++ {
			c.At(Place(p), func(cc *Ctx) {
				cc.Async(func(*Ctx) {})
			})
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	for p := 0; p < 3; p++ {
		s := o.Place(p).Snapshot()
		if s.Counter("sched.spawned") == 0 {
			t.Errorf("place %d: sched.spawned = 0", p)
		}
	}
	// The remote places ran one local async each under their own name.
	for p := 1; p < 3; p++ {
		if got := o.Place(p).Snapshot().Counter("core.async.local"); got != 1 {
			t.Errorf("place %d core.async.local = %d, want 1", p, got)
		}
	}
	// Place 0 sent the two At spawns: remote asyncs attributed to it.
	if got := o.Place(0).Snapshot().Counter("core.async.remote"); got != 2 {
		t.Errorf("place 0 core.async.remote = %d, want 2", got)
	}
	// Per-place transport egress must be present and nonzero at place 0.
	if got := o.Place(0).Snapshot().Counter("x10rt.msgs.data"); got == 0 {
		t.Error("place 0 x10rt.msgs.data = 0; per-place egress not attached")
	}
}

// TestFlightDumpOnRunError checks the black box is read out when Run
// fails.
func TestFlightDumpOnRunError(t *testing.T) {
	var dump bytes.Buffer
	o := obs.New()
	rt, err := NewRuntime(Config{Places: 2, Obs: o, FlightDump: &dump})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	boom := errors.New("boom")
	if err := rt.Run(func(c *Ctx) { panic(boom) }); err == nil {
		t.Fatal("Run did not fail")
	}
	out := dump.String()
	if !strings.Contains(out, obs.FlightDumpMagic) {
		t.Fatalf("dump missing flight header:\n%.400s", out)
	}
	if !strings.Contains(out, "finish.default") {
		t.Errorf("dump missing the root finish event:\n%.400s", out)
	}
	// A clean run must not dump.
	dump.Reset()
	if err := rt.Run(func(c *Ctx) {}); err != nil {
		t.Fatal(err)
	}
	if dump.Len() != 0 {
		t.Errorf("clean run wrote a dump: %.200s", dump.String())
	}
}
