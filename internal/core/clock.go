package core

import (
	"fmt"

	"apgas/internal/x10rt"
)

// Clock is X10's dynamic barrier: a set of registered activities advance
// in phases, and Advance blocks each of them until every registered
// activity has reached the same phase. Unlike static barriers, activities
// can register with and resign from a live clock, and registered
// activities may live at any place.
//
// The clock's coordination state lives at its home place (where NewClock
// ran); registration, resignation, and phase arrival are control messages
// to the home. Phase releases are delivered through in-process latches —
// the runtime requires a shared-address-space transport, see package core.
type Clock struct {
	home Place
	id   uint64
}

// clockState is the home-place state of one clock.
type clockState struct {
	registered int
	arrived    int
	phase      uint64
	waiters    []chan uint64
	dropped    bool // true once registered hits 0; further ops panic
}

// clock control messages.
type clockMsg struct {
	ID    uint64
	Op    clockOp
	Reply chan uint64 // phase acknowledgment / release latch
}

type clockOp uint8

const (
	clockRegister clockOp = iota
	clockDrop
	clockAdvance
)

// NewClock creates a clock homed at the current place with the current
// activity registered on it. The activity should eventually Drop the clock
// (X10 deregisters automatically at activity termination; this runtime
// makes it explicit).
func NewClock(c *Ctx) *Clock {
	pl := c.pl
	pl.clockMu.Lock()
	pl.clockSeq++
	id := pl.clockSeq
	pl.clocks[id] = &clockState{registered: 1}
	pl.clockMu.Unlock()
	return &Clock{home: pl.id, id: id}
}

// Home returns the clock's home place.
func (ck *Clock) Home() Place { return ck.home }

// Register adds the current activity to the clock. It blocks until the
// home place acknowledges, so a subsequent Advance by any party cannot
// miss the registration. Spawning a clocked child is therefore:
// register first (in the parent), then spawn.
func (ck *Clock) Register(c *Ctx) {
	ck.roundTrip(c, clockRegister)
}

// Drop resigns the current activity from the clock. Any activities blocked
// in Advance are released if the resignation completes the phase.
func (ck *Clock) Drop(c *Ctx) {
	ck.roundTrip(c, clockDrop)
}

// Advance signals that the current activity has reached the end of the
// phase and blocks until all registered activities have too — X10's
// Clock.advanceAll(). It returns the new phase number.
func (ck *Clock) Advance(c *Ctx) uint64 {
	return ck.roundTrip(c, clockAdvance)
}

func (ck *Clock) roundTrip(c *Ctx, op clockOp) uint64 {
	reply := make(chan uint64, 1)
	c.rt.send(c.pl.id, ck.home, x10rt.HandlerClockCtl,
		clockMsg{ID: ck.id, Op: op, Reply: reply}, 24, x10rt.ControlClass)
	var phase uint64
	c.pl.sched.Blocking(func() { phase = <-reply })
	return phase
}

// onClockCtl processes clock control traffic at the clock's home place.
func (rt *Runtime) onClockCtl(src, dst int, payload any) {
	m := payload.(clockMsg)
	pl := rt.places[dst]
	pl.clockMu.Lock()
	defer pl.clockMu.Unlock()
	st, ok := pl.clocks[m.ID]
	if !ok || st.dropped {
		panic(fmt.Sprintf("core: operation on dead clock %d at place %d", m.ID, dst))
	}
	switch m.Op {
	case clockRegister:
		st.registered++
		m.Reply <- st.phase
	case clockDrop:
		st.registered--
		m.Reply <- st.phase
		st.maybeRelease(pl, m.ID)
	case clockAdvance:
		st.arrived++
		st.waiters = append(st.waiters, m.Reply)
		st.maybeRelease(pl, m.ID)
	}
}

// maybeRelease completes the phase when every registered activity has
// arrived; caller holds clockMu.
func (st *clockState) maybeRelease(pl *place, id uint64) {
	if st.registered < 0 {
		panic(fmt.Sprintf("core: clock %d over-dropped", id))
	}
	if st.registered == 0 && st.arrived == 0 {
		// Everyone resigned: retire the clock.
		st.dropped = true
		delete(pl.clocks, id)
		return
	}
	if st.arrived < st.registered || st.arrived == 0 {
		return
	}
	st.phase++
	for _, w := range st.waiters {
		w <- st.phase
	}
	st.waiters = st.waiters[:0]
	st.arrived = 0
}

// ClockedAsync spawns f as a new activity registered on the given clock,
// mirroring X10's `clocked async`. The registration is acknowledged before
// the spawn, so the new activity is visible to every Advance that follows.
// The child is automatically dropped from the clock when it terminates.
func (c *Ctx) ClockedAsync(ck *Clock, f func(*Ctx)) {
	ck.Register(c)
	c.Async(func(ctx *Ctx) {
		defer ck.Drop(ctx)
		f(ctx)
	})
}

// ClockedAtAsync is ClockedAsync at a remote place.
func (c *Ctx) ClockedAtAsync(ck *Clock, p Place, f func(*Ctx)) {
	ck.Register(c)
	c.AtAsync(p, func(ctx *Ctx) {
		defer ck.Drop(ctx)
		f(ctx)
	})
}

// ClockedFinish is the paper's §2.2 `clocked finish` idiom: it creates a
// clock registered to the current activity, runs body under a finish with
// the clock available for ClockedAsync/ClockedAtAsync children, resigns the
// creator's registration when body returns (so children can advance
// freely), and waits for all children.
func (c *Ctx) ClockedFinish(body func(*Ctx, *Clock)) error {
	ck := NewClock(c)
	return c.Finish(func(cc *Ctx) {
		defer ck.Drop(cc)
		body(cc, ck)
	})
}
