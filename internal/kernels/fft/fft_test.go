package fft

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

func randSignal(rng *rand.Rand, n int) []complex128 {
	a := make([]complex128, n)
	for i := range a {
		a[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	return a
}

func maxErr(a, b []complex128) float64 {
	m := 0.0
	for i := range a {
		if e := cmplx.Abs(a[i] - b[i]); e > m {
			m = e
		}
	}
	return m
}

func TestForwardMatchesDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{1, 2, 4, 8, 64, 256} {
		p, err := NewPlan(n)
		if err != nil {
			t.Fatal(err)
		}
		a := randSignal(rng, n)
		want := DFTDirect(a)
		p.Forward(a)
		if e := maxErr(a, want); e > 1e-9*float64(n) {
			t.Errorf("n=%d: err %g", n, e)
		}
	}
}

func TestInverseRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, n := range []int{2, 16, 1024} {
		p, _ := NewPlan(n)
		a := randSignal(rng, n)
		orig := append([]complex128(nil), a...)
		p.Forward(a)
		p.Inverse(a)
		if e := maxErr(a, orig); e > 1e-9*float64(n) {
			t.Errorf("n=%d: round trip err %g", n, e)
		}
	}
}

// TestParseval: energy preserved up to the DFT normalization — a property
// over random signals.
func TestParseval(t *testing.T) {
	p, _ := NewPlan(64)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randSignal(rng, 64)
		var et float64
		for _, v := range a {
			et += real(v)*real(v) + imag(v)*imag(v)
		}
		p.Forward(a)
		var ef float64
		for _, v := range a {
			ef += real(v)*real(v) + imag(v)*imag(v)
		}
		return math.Abs(ef-64*et) < 1e-6*ef
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestLinearity(t *testing.T) {
	p, _ := NewPlan(32)
	rng := rand.New(rand.NewSource(7))
	a := randSignal(rng, 32)
	b := randSignal(rng, 32)
	sum := make([]complex128, 32)
	for i := range sum {
		sum[i] = a[i] + 2*b[i]
	}
	p.Forward(a)
	p.Forward(b)
	p.Forward(sum)
	for i := range sum {
		if cmplx.Abs(sum[i]-(a[i]+2*b[i])) > 1e-9 {
			t.Fatalf("linearity violated at %d", i)
		}
	}
}

func TestImpulseIsFlat(t *testing.T) {
	p, _ := NewPlan(16)
	a := make([]complex128, 16)
	a[0] = 1
	p.Forward(a)
	for i, v := range a {
		if cmplx.Abs(v-1) > 1e-12 {
			t.Fatalf("impulse response at %d = %v", i, v)
		}
	}
}

func TestPlanValidation(t *testing.T) {
	for _, n := range []int{0, -4, 3, 12, 100} {
		if _, err := NewPlan(n); err == nil {
			t.Errorf("NewPlan(%d) accepted", n)
		}
	}
	p, _ := NewPlan(8)
	if p.N() != 8 {
		t.Error("N() wrong")
	}
	defer func() {
		if recover() == nil {
			t.Error("wrong-length transform accepted")
		}
	}()
	p.Forward(make([]complex128, 4))
}

func TestTwiddlePeriodicity(t *testing.T) {
	n := 64
	for jk := 0; jk < 3*n; jk++ {
		if cmplx.Abs(Twiddle(n, jk)-Twiddle(n, jk+n)) > 1e-12 {
			t.Fatalf("twiddle not periodic at %d", jk)
		}
	}
	if cmplx.Abs(Twiddle(4, 1)-complex(0, -1)) > 1e-12 {
		t.Errorf("Twiddle(4,1) = %v, want -i", Twiddle(4, 1))
	}
}

func TestFlops(t *testing.T) {
	if Flops(1024) != 5*1024*10 {
		t.Errorf("Flops(1024) = %v", Flops(1024))
	}
}

// TestConvolveMatchesDirect checks the convolution theorem against the
// O(n^2) definition over random signals.
func TestConvolveMatchesDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for _, n := range []int{2, 8, 64} {
		a := randSignal(rng, n)
		b := randSignal(rng, n)
		got, err := Convolve(a, b)
		if err != nil {
			t.Fatal(err)
		}
		want := make([]complex128, n)
		for k := 0; k < n; k++ {
			var s complex128
			for j := 0; j < n; j++ {
				s += a[j] * b[(k-j+n)%n]
			}
			want[k] = s
		}
		if e := maxErr(got, want); e > 1e-9*float64(n) {
			t.Errorf("n=%d: convolution error %g", n, e)
		}
	}
	if _, err := Convolve(make([]complex128, 4), make([]complex128, 8)); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := Convolve(make([]complex128, 3), make([]complex128, 3)); err == nil {
		t.Error("non-power-of-two accepted")
	}
}
