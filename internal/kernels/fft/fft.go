// Package fft provides the complex-double FFT kernels behind the Global
// FFT benchmark of §5.1. The paper's X10 code called FFTE for the local
// 1-D transforms; this package is the from-scratch substitute: an
// iterative in-place radix-2 Cooley-Tukey transform with precomputed
// twiddle tables (a Plan), reusable across the many same-length row
// transforms the distributed six-step algorithm performs.
package fft

import (
	"fmt"
	"math"
	"math/bits"
)

// Plan holds precomputed state for transforms of one power-of-two length.
type Plan struct {
	n       int
	logN    int
	rev     []int        // bit-reversal permutation
	twiddle []complex128 // w_n^k for k in [0, n/2)
}

// NewPlan creates a plan for length n (a power of two >= 1).
func NewPlan(n int) (*Plan, error) {
	if n < 1 || n&(n-1) != 0 {
		return nil, fmt.Errorf("fft: length %d is not a power of two", n)
	}
	p := &Plan{n: n, logN: bits.TrailingZeros(uint(n))}
	p.rev = make([]int, n)
	for i := 0; i < n; i++ {
		p.rev[i] = int(bits.Reverse(uint(i)) >> (bits.UintSize - p.logN))
	}
	if n == 1 {
		p.rev[0] = 0
	}
	p.twiddle = make([]complex128, n/2)
	for k := range p.twiddle {
		s, c := math.Sincos(-2 * math.Pi * float64(k) / float64(n))
		p.twiddle[k] = complex(c, s)
	}
	return p, nil
}

// N returns the plan's transform length.
func (p *Plan) N() int { return p.n }

// Forward computes the in-place forward DFT of a (len(a) must equal the
// plan length): A[k] = sum_j a[j] exp(-2*pi*i*j*k/n).
func (p *Plan) Forward(a []complex128) {
	p.transform(a, false)
}

// Inverse computes the in-place inverse DFT, including the 1/n scaling.
func (p *Plan) Inverse(a []complex128) {
	p.transform(a, true)
	inv := complex(1/float64(p.n), 0)
	for i := range a {
		a[i] *= inv
	}
}

func (p *Plan) transform(a []complex128, invert bool) {
	if len(a) != p.n {
		panic(fmt.Sprintf("fft: transform of length %d with plan for %d", len(a), p.n))
	}
	// Bit-reversal permutation.
	for i, r := range p.rev {
		if i < r {
			a[i], a[r] = a[r], a[i]
		}
	}
	// Butterflies.
	for size := 2; size <= p.n; size <<= 1 {
		half := size >> 1
		step := p.n / size
		for start := 0; start < p.n; start += size {
			tw := 0
			for k := start; k < start+half; k++ {
				w := p.twiddle[tw]
				if invert {
					w = complex(real(w), -imag(w))
				}
				t := a[k+half] * w
				a[k+half] = a[k] - t
				a[k] += t
				tw += step
			}
		}
	}
}

// Twiddle returns exp(-2*pi*i*j*k/n) for the global six-step twiddle
// multiplication, computed on demand (j*k can exceed the table).
func Twiddle(n int, jk int) complex128 {
	s, c := math.Sincos(-2 * math.Pi * float64(jk%n) / float64(n))
	return complex(c, s)
}

// DFTDirect computes the DFT by definition in O(n^2); it is the oracle
// used by tests.
func DFTDirect(a []complex128) []complex128 {
	n := len(a)
	out := make([]complex128, n)
	for k := 0; k < n; k++ {
		var sum complex128
		for j := 0; j < n; j++ {
			s, c := math.Sincos(-2 * math.Pi * float64(j*k%n) / float64(n))
			sum += a[j] * complex(c, s)
		}
		out[k] = sum
	}
	return out
}

// Flops returns the nominal operation count of a length-n transform,
// 5 n log2 n, the figure the HPCC benchmark reports rates against.
func Flops(n int) float64 {
	return 5 * float64(n) * math.Log2(float64(n))
}

// Convolve returns the circular convolution of a and b (equal power-of-two
// lengths) computed via the transform: conv = IFFT(FFT(a) .* FFT(b)).
// It demonstrates — and tests — the transform pair beyond the benchmark's
// needs.
func Convolve(a, b []complex128) ([]complex128, error) {
	if len(a) != len(b) {
		return nil, fmt.Errorf("fft: convolve length mismatch %d vs %d", len(a), len(b))
	}
	p, err := NewPlan(len(a))
	if err != nil {
		return nil, err
	}
	fa := append([]complex128(nil), a...)
	fb := append([]complex128(nil), b...)
	p.Forward(fa)
	p.Forward(fb)
	for i := range fa {
		fa[i] *= fb[i]
	}
	p.Inverse(fa)
	return fa, nil
}
