// Package sha1rng implements the splittable SHA1-based random stream used
// by the Unbalanced Tree Search benchmark (Olivier et al., LCPC'06), the
// workload of §6 of "X10 and APGAS at Petascale". The paper's UTS code
// "calls a native C routine to compute SHA1 hashes"; here the hashes come
// from the standard library.
//
// Every tree node is identified by a 20-byte descriptor. The root's
// descriptor is the SHA1 digest of the 4-byte big-endian seed; child i of
// a node is the SHA1 digest of the parent's descriptor followed by i as a
// 4-byte big-endian integer. A node's random value is its descriptor's
// last four bytes masked to 31 bits, mapped to [0, 1). This construction
// makes the tree a pure function of (seed, shape parameters): any
// traversal order, any distribution of the work, even repeated partial
// traversals, all see the same tree — the property that lets UTS verify a
// count of trillions of nodes with a single number.
package sha1rng

import (
	"crypto/sha1"
	"encoding/binary"
	"math"
)

// Descriptor is a node identity in the random tree.
type Descriptor [sha1.Size]byte

// Root returns the descriptor of the tree root for a seed.
func Root(seed uint32) Descriptor {
	var buf [4]byte
	binary.BigEndian.PutUint32(buf[:], seed)
	return sha1.Sum(buf[:])
}

// Child returns the descriptor of the i-th child of parent.
func Child(parent Descriptor, i uint32) Descriptor {
	var buf [sha1.Size + 4]byte
	copy(buf[:], parent[:])
	binary.BigEndian.PutUint32(buf[sha1.Size:], i)
	return sha1.Sum(buf[:])
}

// Rand31 returns the node's 31-bit random value.
func Rand31(d Descriptor) uint32 {
	return binary.BigEndian.Uint32(d[sha1.Size-4:]) & 0x7fffffff
}

// Prob maps the node's random value to [0, 1).
func Prob(d Descriptor) float64 {
	return float64(Rand31(d)) / float64(1<<31)
}

// Tree is a splittable random tree: a branching law over SHA1 node
// descriptors. Implementations are pure functions of their parameters, so
// any traversal — sequential, distributed, repeated — sees the same tree.
type Tree interface {
	// RootSeed returns the seed whose Root descriptor starts the tree.
	RootSeed() uint32
	// NumChildren returns the branching factor of the node with
	// descriptor d at the given depth.
	NumChildren(d Descriptor, depth int) int
}

// Geometric describes a geometric-law UTS tree: the branching factor of
// each node follows a geometric distribution parameterized by B0, cut off
// below Depth. This matches the paper's configuration b0 = 4, r = 19,
// d = 14..22 (weak scaling).
type Geometric struct {
	// B0 is the expected-branching parameter (> 1).
	B0 float64
	// Depth is the maximum tree depth; nodes at Depth-1 are leaves.
	Depth int
	// Seed is the root seed (r in the paper, 19).
	Seed uint32
}

// RootSeed implements Tree.
func (g Geometric) RootSeed() uint32 { return g.Seed }

// NumChildren returns the branching factor of a node at the given depth:
// the geometric law floor(log(1-u) / log(1-1/b0)) with the depth cut-off
// applied. All nodes are treated identically regardless of depth (the
// cut-off aside), exactly as the benchmark demands for load balancing.
func (g Geometric) NumChildren(d Descriptor, depth int) int {
	if depth+1 >= g.Depth {
		return 0
	}
	u := Prob(d)
	if u >= 1 {
		u = math.Nextafter(1, 0)
	}
	m := int(math.Floor(math.Log(1-u) / math.Log(1-1/g.B0)))
	if m < 0 {
		m = 0
	}
	return m
}

// CountSequential traverses the whole tree depth-first on one goroutine
// and returns the node count and the number of SHA1 hashes computed. It is
// the single-place reference the distributed implementations are verified
// against ("the single-place performance is identical to the performance
// of the sequential implementation").
func (g Geometric) CountSequential() (nodes, hashes uint64) {
	return CountSequential(g)
}

// CountSequential traverses any splittable tree depth-first.
func CountSequential(t Tree) (nodes, hashes uint64) {
	type frame struct {
		d     Descriptor
		depth int
	}
	root := Root(t.RootSeed())
	hashes++
	stack := []frame{{root, 0}}
	for len(stack) > 0 {
		f := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		nodes++
		m := t.NumChildren(f.d, f.depth)
		for i := 0; i < m; i++ {
			stack = append(stack, frame{Child(f.d, uint32(i)), f.depth + 1})
			hashes++
		}
	}
	return nodes, hashes
}

// Binomial describes a binomial-law UTS tree, the family the UTS authors
// use for deep and narrow workloads: the root has B0 children; every other
// node has M children with probability Q and none otherwise. For M*Q < 1
// the tree is subcritical (finite with probability 1), with expected size
// 1 + B0/(1 - M*Q); its depth distribution has a long, thin tail — the
// shape for which the paper predicts its interval refinements "are not
// likely to help as much".
type Binomial struct {
	// B0 is the root's branching factor.
	B0 int
	// M is the non-root branching factor.
	M int
	// Q is the branching probability (M*Q < 1 for finite trees).
	Q float64
	// Seed is the root seed.
	Seed uint32
	// MaxDepth optionally caps the depth (0 = unbounded; rely on
	// subcriticality).
	MaxDepth int
}

// RootSeed implements Tree.
func (b Binomial) RootSeed() uint32 { return b.Seed }

// NumChildren implements Tree.
func (b Binomial) NumChildren(d Descriptor, depth int) int {
	if b.MaxDepth > 0 && depth+1 >= b.MaxDepth {
		return 0
	}
	if depth == 0 {
		return b.B0
	}
	if Prob(d) < b.Q {
		return b.M
	}
	return 0
}

// ExpectedSize returns the analytic expected node count of a subcritical
// binomial tree (ignoring any depth cap).
func (b Binomial) ExpectedSize() float64 {
	mq := float64(b.M) * b.Q
	if mq >= 1 {
		return math.Inf(1)
	}
	return 1 + float64(b.B0)/(1-mq)
}
