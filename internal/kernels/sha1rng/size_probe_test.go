package sha1rng

import (
	"fmt"
	"testing"
	"time"
)

// TestSizeProbe prints tree sizes for experiment planning; runs only with
// -v and is cheap enough to keep.
func TestSizeProbe(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	for d := 10; d <= 16; d++ {
		g := Geometric{B0: 4, Depth: d, Seed: 19}
		t0 := time.Now()
		n, _ := g.CountSequential()
		el := time.Since(t0)
		fmt.Printf("depth=%d nodes=%d t=%v rate=%.2fM/s\n", d, n, el, float64(n)/el.Seconds()/1e6)
	}
}
