package sha1rng

import (
	"testing"
	"testing/quick"
)

func TestRootDeterministic(t *testing.T) {
	if Root(19) != Root(19) {
		t.Fatal("Root not deterministic")
	}
	if Root(19) == Root(20) {
		t.Fatal("different seeds collide")
	}
}

func TestChildDeterministicAndDistinct(t *testing.T) {
	r := Root(19)
	if Child(r, 0) != Child(r, 0) {
		t.Fatal("Child not deterministic")
	}
	seen := map[Descriptor]bool{}
	for i := uint32(0); i < 100; i++ {
		d := Child(r, i)
		if seen[d] {
			t.Fatalf("child %d collides", i)
		}
		seen[d] = true
	}
}

func TestRand31Range(t *testing.T) {
	f := func(seed uint32) bool {
		r := Rand31(Root(seed))
		p := Prob(Root(seed))
		return r < 1<<31 && p >= 0 && p < 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNumChildrenDepthCutoff(t *testing.T) {
	g := Geometric{B0: 4, Depth: 5, Seed: 19}
	d := Root(19)
	if got := g.NumChildren(d, 4); got != 0 {
		t.Errorf("at cutoff: %d children, want 0", got)
	}
	if got := g.NumChildren(d, 5); got != 0 {
		t.Errorf("beyond cutoff: %d children, want 0", got)
	}
}

func TestNumChildrenNonNegative(t *testing.T) {
	g := Geometric{B0: 4, Depth: 100, Seed: 19}
	f := func(seed uint32, depth uint8) bool {
		m := g.NumChildren(Root(seed), int(depth)%50)
		return m >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestGeometricMean checks the branching law's empirical mean against the
// geometric expectation (1-p)/p with p = 1/B0: 3.0 for b0 = 4.
func TestGeometricMean(t *testing.T) {
	g := Geometric{B0: 4, Depth: 1 << 30, Seed: 19}
	const samples = 20000
	sum := 0
	d := Root(1)
	for i := 0; i < samples; i++ {
		d = Child(d, 7)
		sum += g.NumChildren(d, 0)
	}
	mean := float64(sum) / samples
	if mean < 2.8 || mean > 3.2 {
		t.Errorf("empirical mean branching = %.3f, want ~3.0", mean)
	}
}

func TestCountSequentialKnownSizes(t *testing.T) {
	// The tree is a pure function of (seed, b0, depth): these counts are
	// golden values pinned by the construction.
	sizes := map[int]uint64{}
	for _, depth := range []int{1, 2, 3, 6, 10} {
		g := Geometric{B0: 4, Depth: depth, Seed: 19}
		n, h := g.CountSequential()
		if n == 0 || h == 0 {
			t.Fatalf("depth %d: empty tree", depth)
		}
		sizes[depth] = n
	}
	if sizes[1] != 1 {
		t.Errorf("depth-1 tree has %d nodes, want 1 (just the root)", sizes[1])
	}
	for _, pair := range [][2]int{{1, 2}, {2, 3}, {3, 6}, {6, 10}} {
		if sizes[pair[1]] <= sizes[pair[0]] {
			t.Errorf("tree did not grow from depth %d (%d) to %d (%d)",
				pair[0], sizes[pair[0]], pair[1], sizes[pair[1]])
		}
	}
}

func TestCountSequentialReproducible(t *testing.T) {
	g := Geometric{B0: 4, Depth: 8, Seed: 19}
	n1, h1 := g.CountSequential()
	n2, h2 := g.CountSequential()
	if n1 != n2 || h1 != h2 {
		t.Fatalf("not reproducible: %d/%d vs %d/%d", n1, h1, n2, h2)
	}
	// Hash count = 1 (root) + (nodes-1) child derivations... every node
	// except the root is derived by exactly one Child call, and every
	// Child call yields exactly one counted node, so hashes == nodes.
	if h1 != n1 {
		t.Errorf("hashes %d != nodes %d", h1, n1)
	}
}
