// Package linalg provides the dense linear algebra kernels backing the
// Global HPL benchmark of §5: a blocked DGEMM, triangular solves, rank-1
// updates, and an LU panel factorization with partial pivoting. The
// paper's X10 code called IBM ESSL for these; this package is the
// from-scratch substitute, written for predictable performance rather
// than peak Gflop/s (the experiments compare scaling shape, not absolute
// rates).
//
// All matrices are dense row-major with an explicit leading dimension
// (lda), so the routines work on sub-blocks of larger arrays.
package linalg

// GemmNN computes C = alpha*A*B + beta*C for row-major A (m x k), B
// (k x n), C (m x n) with leading dimensions lda, ldb, ldc. It uses
// cache-friendly blocking over k and j with an unrolled inner kernel.
func GemmNN(m, n, k int, alpha float64, a []float64, lda int, b []float64, ldb int,
	beta float64, c []float64, ldc int) {
	if m == 0 || n == 0 {
		return
	}
	if beta != 1 {
		for i := 0; i < m; i++ {
			ci := c[i*ldc : i*ldc+n]
			if beta == 0 {
				for j := range ci {
					ci[j] = 0
				}
			} else {
				for j := range ci {
					ci[j] *= beta
				}
			}
		}
	}
	if k == 0 || alpha == 0 {
		return
	}
	const kc = 256 // k-blocking: keep a strip of B in cache
	for kk := 0; kk < k; kk += kc {
		kb := kc
		if kk+kb > k {
			kb = k - kk
		}
		for i := 0; i < m; i++ {
			ai := a[i*lda+kk : i*lda+kk+kb]
			ci := c[i*ldc : i*ldc+n]
			for p := 0; p < kb; p++ {
				aip := alpha * ai[p]
				if aip == 0 {
					continue
				}
				bp := b[(kk+p)*ldb : (kk+p)*ldb+n]
				axpy(ci, bp, aip)
			}
		}
	}
}

// axpy computes ci += s * bp with 4-way unrolling.
func axpy(ci, bp []float64, s float64) {
	n := len(ci)
	if len(bp) < n {
		n = len(bp)
	}
	j := 0
	for ; j+4 <= n; j += 4 {
		ci[j] += s * bp[j]
		ci[j+1] += s * bp[j+1]
		ci[j+2] += s * bp[j+2]
		ci[j+3] += s * bp[j+3]
	}
	for ; j < n; j++ {
		ci[j] += s * bp[j]
	}
}

// TrsmLLNU solves L*X = B in place for X, where L is m x m lower
// triangular with implicit unit diagonal and B is m x n (row-major,
// leading dimensions ldl and ldb). On return B holds X. This is the
// DTRSM('L','L','N','U') HPL uses to form the U12 block row.
func TrsmLLNU(m, n int, l []float64, ldl int, b []float64, ldb int) {
	for i := 0; i < m; i++ {
		bi := b[i*ldb : i*ldb+n]
		for p := 0; p < i; p++ {
			lip := l[i*ldl+p]
			if lip == 0 {
				continue
			}
			axpy(bi, b[p*ldb:p*ldb+n], -lip)
		}
	}
}

// Ger performs the rank-1 update A -= x * y^T on the m x n matrix A
// (row-major, leading dimension lda), with x of length m and y of length
// n — the inner step of unblocked LU.
func Ger(m, n int, x []float64, y []float64, a []float64, lda int) {
	for i := 0; i < m; i++ {
		if x[i] == 0 {
			continue
		}
		axpy(a[i*lda:i*lda+n], y, -x[i])
	}
}

// SwapRows exchanges rows i and j of the m x n matrix A (row-major).
func SwapRows(n int, a []float64, lda, i, j int) {
	if i == j {
		return
	}
	ri := a[i*lda : i*lda+n]
	rj := a[j*lda : j*lda+n]
	for t := 0; t < n; t++ {
		ri[t], rj[t] = rj[t], ri[t]
	}
}

// GetrfPanel factors the m x n panel A (m >= n) in place with partial
// pivoting using a recursive right-looking split — the "recursive panel
// factorization" of the paper's HPL implementation. On return, A holds L
// (unit lower, below the diagonal) and U (upper) of P*A = L*U restricted
// to the panel, and piv[j] is the absolute panel row swapped into position
// j at step j. Row swaps are applied across the full panel width n.
func GetrfPanel(m, n int, a []float64, lda int, piv []int) {
	if m < n {
		panic("linalg: GetrfPanel requires m >= n")
	}
	panelRec(m, n, a, lda, piv, 0, n)
}

// panelRec factors columns [j0, j1) of the panel.
func panelRec(m, nAll int, a []float64, lda int, piv []int, j0, j1 int) {
	w := j1 - j0
	if w <= 8 {
		panelUnblocked(m, nAll, a, lda, piv, j0, j1)
		return
	}
	mid := j0 + w/2
	panelRec(m, nAll, a, lda, piv, j0, mid)
	// U12 := L11^-1 * A12 over rows [j0, mid), columns [mid, j1).
	TrsmLLNU(mid-j0, j1-mid, a[j0*lda+j0:], lda, a[j0*lda+mid:], lda)
	// Trailing update of rows [mid, m), columns [mid, j1).
	GemmNN(m-mid, j1-mid, mid-j0, -1,
		a[mid*lda+j0:], lda, a[j0*lda+mid:], lda, 1, a[mid*lda+mid:], lda)
	panelRec(m, nAll, a, lda, piv, mid, j1)
}

// panelUnblocked is classic right-looking unblocked LU on columns
// [j0, j1), swapping full panel rows so earlier L columns stay consistent.
func panelUnblocked(m, nAll int, a []float64, lda int, piv []int, j0, j1 int) {
	for j := j0; j < j1; j++ {
		// Pivot search in column j, rows [j, m).
		p := j
		best := abs(a[j*lda+j])
		for i := j + 1; i < m; i++ {
			if v := abs(a[i*lda+j]); v > best {
				best = v
				p = i
			}
		}
		piv[j] = p
		SwapRows(nAll, a, lda, j, p)
		d := a[j*lda+j]
		if d != 0 {
			inv := 1 / d
			for i := j + 1; i < m; i++ {
				a[i*lda+j] *= inv
			}
		}
		// Rank-1 update of the remaining columns of this leaf.
		if j+1 < j1 {
			for i := j + 1; i < m; i++ {
				lij := a[i*lda+j]
				if lij == 0 {
					continue
				}
				axpy(a[i*lda+j+1:i*lda+j1], a[j*lda+j+1:j*lda+j1], -lij)
			}
		}
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
