package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestGetrfGetrsSolves(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for _, tc := range []struct{ n, nb int }{{1, 4}, {5, 2}, {32, 8}, {50, 16}, {64, 0}, {97, 32}} {
		n := tc.n
		a := randMat(rng, n, n)
		orig := append([]float64(nil), a...)
		xTrue := randMat(rng, n, 1)
		b := make([]float64, n)
		naiveGemm(n, 1, n, 1, orig, n, xTrue, 1, 0, b, 1)

		piv := make([]int, n)
		Getrf(n, tc.nb, a, n, piv)
		Getrs(n, a, n, piv, b)

		// Relative error in the recovered solution.
		maxRel := 0.0
		for i := range b {
			rel := math.Abs(b[i]-xTrue[i]) / (1 + math.Abs(xTrue[i]))
			if rel > maxRel {
				maxRel = rel
			}
		}
		if maxRel > 1e-8*float64(n) {
			t.Errorf("n=%d nb=%d: solution error %g", n, tc.nb, maxRel)
		}
	}
}

// TestGetrfResidualProperty: the scaled residual of random systems stays
// small, the same acceptance criterion HPL uses.
func TestGetrfResidualProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const n, nb = 40, 8
		orig := randMat(rng, n, n)
		a := append([]float64(nil), orig...)
		b := randMat(rng, n, 1)
		rhs := append([]float64(nil), b...)

		piv := make([]int, n)
		Getrf(n, nb, a, n, piv)
		Getrs(n, a, n, piv, rhs) // rhs now holds x

		// r = b - A x
		r := append([]float64(nil), b...)
		naiveGemm(n, 1, n, -1, orig, n, rhs, 1, 1, r, 1)
		eps := math.Nextafter(1, 2) - 1
		denom := eps * (NormInf(n, n, orig, n)*VecNormInf(rhs) + VecNormInf(b)) * float64(n)
		return VecNormInf(r)/denom < 16
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestNorms(t *testing.T) {
	a := []float64{1, -2, 3, -4} // rows: |1|+|2|=3, |3|+|4|=7
	if got := NormInf(2, 2, a, 2); got != 7 {
		t.Errorf("NormInf = %v", got)
	}
	if got := VecNormInf([]float64{-5, 2, 4.5}); got != 5 {
		t.Errorf("VecNormInf = %v", got)
	}
	if VecNormInf(nil) != 0 {
		t.Error("empty vector norm")
	}
}

func TestGemmNNParallelMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for _, dims := range [][3]int{{8, 8, 8}, {100, 40, 60}, {257, 31, 65}} {
		m, n, k := dims[0], dims[1], dims[2]
		a := randMat(rng, m, k)
		b := randMat(rng, k, n)
		c1 := randMat(rng, m, n)
		c2 := append([]float64(nil), c1...)
		GemmNNParallel(m, n, k, 1.25, a, k, b, n, 0.5, c1, n, 3)
		GemmNN(m, n, k, 1.25, a, k, b, n, 0.5, c2, n)
		for i := range c1 {
			if math.Abs(c1[i]-c2[i]) > 1e-9 {
				t.Fatalf("dims %v: mismatch at %d", dims, i)
			}
		}
	}
	// workers<=1 path.
	a := randMat(rng, 4, 4)
	c := make([]float64, 16)
	GemmNNParallel(4, 4, 4, 1, a, 4, a, 4, 0, c, 4, 1)
}
