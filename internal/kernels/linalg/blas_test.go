package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// naiveGemm is the reference for GemmNN.
func naiveGemm(m, n, k int, alpha float64, a []float64, lda int, b []float64, ldb int,
	beta float64, c []float64, ldc int) {
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			sum := 0.0
			for p := 0; p < k; p++ {
				sum += a[i*lda+p] * b[p*ldb+j]
			}
			c[i*ldc+j] = alpha*sum + beta*c[i*ldc+j]
		}
	}
}

func randMat(rng *rand.Rand, m, n int) []float64 {
	a := make([]float64, m*n)
	for i := range a {
		a[i] = rng.NormFloat64()
	}
	return a
}

func maxDiff(a, b []float64) float64 {
	d := 0.0
	for i := range a {
		if v := math.Abs(a[i] - b[i]); v > d {
			d = v
		}
	}
	return d
}

func TestGemmMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, dims := range [][3]int{{1, 1, 1}, {3, 5, 2}, {16, 16, 16}, {33, 17, 29}, {64, 1, 300}, {7, 300, 4}} {
		m, n, k := dims[0], dims[1], dims[2]
		a := randMat(rng, m, k)
		b := randMat(rng, k, n)
		c1 := randMat(rng, m, n)
		c2 := append([]float64(nil), c1...)
		GemmNN(m, n, k, 1.5, a, k, b, n, 0.5, c1, n)
		naiveGemm(m, n, k, 1.5, a, k, b, n, 0.5, c2, n)
		if d := maxDiff(c1, c2); d > 1e-9 {
			t.Errorf("m=%d n=%d k=%d: maxdiff %g", m, n, k, d)
		}
	}
}

func TestGemmBetaZeroIgnoresNaNs(t *testing.T) {
	// beta=0 must overwrite C even if it contains NaN (BLAS semantics).
	a := []float64{1, 2}
	b := []float64{3, 4}
	c := []float64{math.NaN()}
	GemmNN(1, 1, 2, 1, a, 2, b, 1, 0, c, 1)
	if c[0] != 11 {
		t.Errorf("c = %v, want 11", c[0])
	}
}

func TestGemmEdgeCases(t *testing.T) {
	c := []float64{5}
	GemmNN(0, 0, 0, 1, nil, 1, nil, 1, 1, c, 1) // no-op
	if c[0] != 5 {
		t.Error("empty gemm touched C")
	}
	GemmNN(1, 1, 0, 1, nil, 1, nil, 1, 2, c, 1) // scale only
	if c[0] != 10 {
		t.Errorf("k=0 gemm: c=%v, want 10", c[0])
	}
}

func TestGemmSubmatrices(t *testing.T) {
	// Operate on an interior block of a larger array via lda.
	rng := rand.New(rand.NewSource(9))
	const big, m, n, k = 10, 4, 3, 5
	a := randMat(rng, big, big)
	b := randMat(rng, big, big)
	c1 := randMat(rng, big, big)
	c2 := append([]float64(nil), c1...)
	GemmNN(m, n, k, 2, a[big+2:], big, b[2*big+1:], big, 1, c1[3*big+4:], big)
	naiveGemm(m, n, k, 2, a[big+2:], big, b[2*big+1:], big, 1, c2[3*big+4:], big)
	if d := maxDiff(c1, c2); d > 1e-9 {
		t.Errorf("submatrix gemm differs by %g", d)
	}
}

func TestTrsmLLNU(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const m, n = 9, 6
	l := randMat(rng, m, m)
	for i := 0; i < m; i++ {
		l[i*m+i] = 1
		for j := i + 1; j < m; j++ {
			l[i*m+j] = 0
		}
	}
	x := randMat(rng, m, n)
	b := make([]float64, m*n)
	naiveGemm(m, n, m, 1, l, m, x, n, 0, b, n)
	TrsmLLNU(m, n, l, m, b, n)
	if d := maxDiff(b, x); d > 1e-9 {
		t.Errorf("Trsm residual %g", d)
	}
}

func TestGer(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	const m, n = 7, 5
	a1 := randMat(rng, m, n)
	a2 := append([]float64(nil), a1...)
	x := randMat(rng, m, 1)
	y := randMat(rng, 1, n)
	Ger(m, n, x, y, a1, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			a2[i*n+j] -= x[i] * y[j]
		}
	}
	if d := maxDiff(a1, a2); d > 1e-12 {
		t.Errorf("Ger differs by %g", d)
	}
}

func TestSwapRows(t *testing.T) {
	a := []float64{1, 2, 3, 4, 5, 6}
	SwapRows(3, a, 3, 0, 1)
	want := []float64{4, 5, 6, 1, 2, 3}
	if maxDiff(a, want) != 0 {
		t.Errorf("a = %v", a)
	}
	SwapRows(3, a, 3, 1, 1) // self-swap: no-op
	if maxDiff(a, want) != 0 {
		t.Errorf("self swap changed a = %v", a)
	}
}

// applyPiv replays the pivot sequence on a fresh matrix.
func applyPiv(n int, a []float64, lda int, piv []int) {
	for j, p := range piv {
		SwapRows(n, a, lda, j, p)
	}
}

// TestGetrfPanelReconstruction: P*A = L*U for random panels.
func TestGetrfPanelReconstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for _, dims := range [][2]int{{4, 4}, {16, 8}, {40, 40}, {100, 24}, {65, 33}, {9, 1}} {
		m, n := dims[0], dims[1]
		orig := randMat(rng, m, n)
		a := append([]float64(nil), orig...)
		piv := make([]int, n)
		GetrfPanel(m, n, a, n, piv)

		// Rebuild P*orig and L*U.
		pa := append([]float64(nil), orig...)
		applyPiv(n, pa, n, piv)
		lu := make([]float64, m*n)
		for i := 0; i < m; i++ {
			for j := 0; j < n; j++ {
				sum := 0.0
				kmax := i
				if j < kmax {
					kmax = j
				}
				for k := 0; k <= kmax; k++ {
					var lik float64
					switch {
					case k == i:
						lik = 1
					case k < i:
						lik = a[i*n+k]
					}
					if k <= j {
						sum += lik * a[k*n+j]
					}
				}
				lu[i*n+j] = sum
			}
		}
		if d := maxDiff(pa, lu); d > 1e-9 {
			t.Errorf("m=%d n=%d: |PA - LU| = %g", m, n, d)
		}
	}
}

// TestGetrfPanelPivotsAreMaximal: after factorization every multiplier is
// at most 1 in magnitude — the partial pivoting guarantee.
func TestGetrfPanelPivotsAreMaximal(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const m, n = 30, 12
		a := randMat(rng, m, n)
		piv := make([]int, n)
		GetrfPanel(m, n, a, n, piv)
		for j := 0; j < n; j++ {
			if piv[j] < j || piv[j] >= m {
				return false
			}
			for i := j + 1; i < m; i++ {
				if math.Abs(a[i*n+j]) > 1+1e-12 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestGetrfPanelRejectsWide(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("wide panel accepted")
		}
	}()
	GetrfPanel(2, 3, make([]float64, 6), 3, make([]int, 3))
}

func BenchmarkGemm256(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	const n = 256
	a := randMat(rng, n, n)
	bb := randMat(rng, n, n)
	c := make([]float64, n*n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		GemmNN(n, n, n, 1, a, n, bb, n, 0, c, n)
	}
	b.SetBytes(int64(8 * n * n))
}
