package linalg

// This file provides the full blocked LU driver and solver on top of the
// panel factorization — the sequential composition the distributed HPL
// mirrors, packaged as library routines (LAPACK's DGETRF/DGETRS shape)
// so the Class 1 baseline and any downstream user share one implementation.

// Getrf factors the n x n matrix A in place with partial pivoting using
// blocked right-looking LU: A holds L (unit lower) and U (upper) of
// P*A = L*U on return, and piv records the row interchanges (piv[j] is the
// row swapped into position j at step j). nb is the block size.
func Getrf(n, nb int, a []float64, lda int, piv []int) {
	if nb <= 0 {
		nb = 32
	}
	for k := 0; k < n; k += nb {
		w := nb
		if k+w > n {
			w = n - k
		}
		// Panel factorization over rows [k, n), columns [k, k+w).
		panelPiv := make([]int, w)
		GetrfPanel(n-k, w, a[k*lda+k:], lda, panelPiv)
		// Record absolute pivots and apply the swaps to the columns left
		// and right of the panel.
		for j := 0; j < w; j++ {
			p := panelPiv[j]
			piv[k+j] = k + p
			if p != j {
				SwapRows(k, a, lda, k+j, k+p)
				if k+w < n {
					SwapRows(n-k-w, a[k*lda+k+w:], lda, j, p)
				}
			}
		}
		if k+w < n {
			// U12 := L11^-1 A12; trailing update A22 -= L21 U12.
			TrsmLLNU(w, n-k-w, a[k*lda+k:], lda, a[k*lda+k+w:], lda)
			GemmNN(n-k-w, n-k-w, w, -1,
				a[(k+w)*lda+k:], lda, a[k*lda+k+w:], lda, 1, a[(k+w)*lda+k+w:], lda)
		}
	}
}

// Getrs solves A x = b using the factors and pivots produced by Getrf,
// overwriting b with x.
func Getrs(n int, a []float64, lda int, piv []int, b []float64) {
	// Apply the row interchanges to b.
	for j := 0; j < n; j++ {
		if p := piv[j]; p != j {
			b[j], b[p] = b[p], b[j]
		}
	}
	// Forward substitution with unit lower L.
	for i := 1; i < n; i++ {
		s := b[i]
		row := a[i*lda : i*lda+i]
		for j, lij := range row {
			s -= lij * b[j]
		}
		b[i] = s
	}
	// Back substitution with upper U.
	for i := n - 1; i >= 0; i-- {
		s := b[i]
		for j := i + 1; j < n; j++ {
			s -= a[i*lda+j] * b[j]
		}
		if d := a[i*lda+i]; d != 0 {
			b[i] = s / d
		}
	}
}

// NormInf returns the infinity norm (max absolute row sum) of the m x n
// matrix A.
func NormInf(m, n int, a []float64, lda int) float64 {
	worst := 0.0
	for i := 0; i < m; i++ {
		s := 0.0
		for _, v := range a[i*lda : i*lda+n] {
			s += abs(v)
		}
		if s > worst {
			worst = s
		}
	}
	return worst
}

// VecNormInf returns the infinity norm of a vector.
func VecNormInf(x []float64) float64 {
	worst := 0.0
	for _, v := range x {
		if a := abs(v); a > worst {
			worst = a
		}
	}
	return worst
}
