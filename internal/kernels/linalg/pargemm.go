package linalg

import "apgas/internal/wsched"

// GemmNNParallel computes C = alpha*A*B + beta*C like GemmNN, splitting the
// row range over an intra-place work-stealing pool — the integration of the
// [40]-style scheduler with a compute kernel that the paper left as future
// work. workers <= 1 falls back to the sequential kernel.
func GemmNNParallel(m, n, k int, alpha float64, a []float64, lda int, b []float64, ldb int,
	beta float64, c []float64, ldc int, workers int) {
	const rowBlock = 32
	if workers <= 1 || m <= rowBlock {
		GemmNN(m, n, k, alpha, a, lda, b, ldb, beta, c, ldc)
		return
	}
	pool := wsched.NewPool(workers)
	pool.Run(func(t *wsched.Task) {
		for i0 := 0; i0 < m; i0 += rowBlock {
			lo := i0
			hi := i0 + rowBlock
			if hi > m {
				hi = m
			}
			t.Fork(func(*wsched.Task) {
				GemmNN(hi-lo, n, k, alpha, a[lo*lda:], lda, b, ldb, beta, c[lo*ldc:], ldc)
			})
		}
	})
}
