package rmat

import (
	"testing"
	"testing/quick"
)

func TestGenerateBasicInvariants(t *testing.T) {
	g := Generate(Params{Scale: 8, EdgeFactor: 8, Seed: 42})
	if g.N != 256 {
		t.Fatalf("N = %d", g.N)
	}
	if g.NumEdges() == 0 {
		t.Fatal("no edges")
	}
	// CSR consistency.
	if int(g.Xadj[g.N]) != len(g.Adj) {
		t.Fatalf("Xadj end %d != len(Adj) %d", g.Xadj[g.N], len(g.Adj))
	}
	for v := 0; v < g.N; v++ {
		if g.Xadj[v] > g.Xadj[v+1] {
			t.Fatalf("Xadj not monotone at %d", v)
		}
	}
}

// TestUndirectedSymmetry: u in Adj(v) iff v in Adj(u); no self loops; no
// duplicates.
func TestUndirectedSymmetry(t *testing.T) {
	g := Generate(Params{Scale: 7, EdgeFactor: 6, Seed: 7})
	seen := map[[2]int32]int{}
	for v := int32(0); int(v) < g.N; v++ {
		prev := int32(-1)
		for _, w := range g.Neighbors(v) {
			if w == v {
				t.Fatalf("self loop at %d", v)
			}
			if w == prev {
				t.Fatalf("duplicate edge %d-%d", v, w)
			}
			prev = w
			seen[[2]int32{v, w}]++
		}
	}
	for k, n := range seen {
		if n != 1 {
			t.Fatalf("edge %v appears %d times", k, n)
		}
		if seen[[2]int32{k[1], k[0]}] != 1 {
			t.Fatalf("edge %v missing reverse", k)
		}
	}
}

func TestDeterministic(t *testing.T) {
	a := Generate(Params{Scale: 6, Seed: 3})
	b := Generate(Params{Scale: 6, Seed: 3})
	if a.NumEdges() != b.NumEdges() {
		t.Fatal("not deterministic")
	}
	c := Generate(Params{Scale: 6, Seed: 4})
	if a.NumEdges() == c.NumEdges() {
		// Different seeds could coincide, but Adj content should differ.
		same := len(a.Adj) == len(c.Adj)
		if same {
			for i := range a.Adj {
				if a.Adj[i] != c.Adj[i] {
					same = false
					break
				}
			}
		}
		if same {
			t.Fatal("different seeds produced identical graphs")
		}
	}
}

// TestSkewedDegrees: R-MAT graphs are skewed — the maximum degree should
// far exceed the average.
func TestSkewedDegrees(t *testing.T) {
	g := Generate(Params{Scale: 10, EdgeFactor: 8, Seed: 19})
	maxDeg, sum := 0, 0
	for v := 0; v < g.N; v++ {
		d := g.Degree(v)
		sum += d
		if d > maxDeg {
			maxDeg = d
		}
	}
	avg := float64(sum) / float64(g.N)
	if float64(maxDeg) < 4*avg {
		t.Errorf("max degree %d not skewed vs average %.1f", maxDeg, avg)
	}
}

func TestDegreeSumProperty(t *testing.T) {
	f := func(seedRaw uint8) bool {
		g := Generate(Params{Scale: 6, EdgeFactor: 4, Seed: uint64(seedRaw)})
		sum := 0
		for v := 0; v < g.N; v++ {
			sum += g.Degree(v)
		}
		return sum == 2*g.NumEdges() && sum == len(g.Adj)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
