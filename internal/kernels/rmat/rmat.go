// Package rmat generates R-MAT graphs (Chakrabarti, Zhan, Faloutsos, SDM
// 2004), the input family of the Betweenness Centrality benchmark in §7 of
// "X10 and APGAS at Petascale": recursive quadrant subdivision with
// probabilities (a, b, c, d) produces the skewed degree distributions of
// real networks. Graphs are returned in CSR form, undirected, with
// self-loops and duplicate edges removed.
package rmat

import "sort"

// Params configure the generator.
type Params struct {
	// Scale gives 2^Scale vertices.
	Scale int
	// EdgeFactor requests EdgeFactor * 2^Scale generated edge samples
	// (the paper's instances: 2^18 vertices / 2^21 edges = factor 8).
	EdgeFactor int
	// A, B, C are the quadrant probabilities (D = 1-A-B-C). The zero
	// value selects the Graph500-style (0.57, 0.19, 0.19).
	A, B, C float64
	// Seed drives the deterministic sampler.
	Seed uint64
}

func (p *Params) applyDefaults() {
	if p.EdgeFactor <= 0 {
		p.EdgeFactor = 8
	}
	if p.A == 0 && p.B == 0 && p.C == 0 {
		p.A, p.B, p.C = 0.57, 0.19, 0.19
	}
}

// Graph is an undirected graph in CSR form.
type Graph struct {
	N    int     // vertices
	Adj  []int32 // concatenated adjacency lists
	Xadj []int32 // Xadj[v]..Xadj[v+1] index Adj for vertex v
}

// Degree returns vertex v's degree.
func (g *Graph) Degree(v int) int { return int(g.Xadj[v+1] - g.Xadj[v]) }

// Neighbors returns vertex v's adjacency slice (do not modify).
func (g *Graph) Neighbors(v int32) []int32 {
	return g.Adj[g.Xadj[v]:g.Xadj[v+1]]
}

// NumEdges returns the undirected edge count.
func (g *Graph) NumEdges() int { return len(g.Adj) / 2 }

// splitmix is the deterministic sampler state.
type splitmix struct{ s uint64 }

func (r *splitmix) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (r *splitmix) float() float64 {
	return float64(r.next()>>11) / float64(1<<53)
}

// Generate builds the graph.
func Generate(p Params) *Graph {
	p.applyDefaults()
	n := 1 << p.Scale
	samples := p.EdgeFactor * n
	rng := &splitmix{s: p.Seed ^ 0xdeadbeefcafef00d}

	type edge struct{ u, v int32 }
	edges := make([]edge, 0, samples)
	for e := 0; e < samples; e++ {
		u, v := 0, 0
		for bit := p.Scale - 1; bit >= 0; bit-- {
			r := rng.float()
			switch {
			case r < p.A:
				// top-left: nothing set
			case r < p.A+p.B:
				v |= 1 << bit
			case r < p.A+p.B+p.C:
				u |= 1 << bit
			default:
				u |= 1 << bit
				v |= 1 << bit
			}
		}
		if u == v {
			continue // drop self loops
		}
		if u > v {
			u, v = v, u
		}
		edges = append(edges, edge{int32(u), int32(v)})
	}
	// Dedupe.
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].u != edges[j].u {
			return edges[i].u < edges[j].u
		}
		return edges[i].v < edges[j].v
	})
	uniq := edges[:0]
	for i, e := range edges {
		if i == 0 || e != edges[i-1] {
			uniq = append(uniq, e)
		}
	}
	edges = uniq

	// CSR (both directions).
	deg := make([]int32, n+1)
	for _, e := range edges {
		deg[e.u+1]++
		deg[e.v+1]++
	}
	for v := 0; v < n; v++ {
		deg[v+1] += deg[v]
	}
	g := &Graph{N: n, Xadj: deg, Adj: make([]int32, deg[n])}
	fill := make([]int32, n)
	for _, e := range edges {
		g.Adj[g.Xadj[e.u]+fill[e.u]] = e.v
		fill[e.u]++
		g.Adj[g.Xadj[e.v]+fill[e.v]] = e.u
		fill[e.v]++
	}
	return g
}
