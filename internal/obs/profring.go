// profring.go keeps a bounded in-memory ring of recent CPU and heap
// profiles so that a stall or regression can be diagnosed after the
// fact: the debug server serves the ring over /debug/profilez, and the
// telemetry watchdog drops a heap snapshot into it when a finish
// deficit stalls. Retention is by count — old snapshots fall off the
// back — so memory stays bounded no matter how long the process runs.
package obs

import (
	"bytes"
	"fmt"
	"runtime/pprof"
	"sync"
	"time"
)

// ProfileSnapshot is one captured profile: the raw pprof protobuf bytes
// plus enough metadata to pick the right one later.
type ProfileSnapshot struct {
	Seq  uint64        // monotonically increasing id
	Kind string        // "cpu" or "heap"
	At   time.Time     // capture start
	Dur  time.Duration // capture window (zero for instantaneous heap)
	Data []byte        // gzipped pprof protobuf
}

// ProfileRing is a fixed-capacity ring of ProfileSnapshots. All methods
// are safe for concurrent use and safe on a nil receiver.
type ProfileRing struct {
	mu    sync.Mutex
	max   int
	seq   uint64
	snaps []ProfileSnapshot
}

// NewProfileRing creates a ring retaining at most max snapshots
// (minimum 1).
func NewProfileRing(max int) *ProfileRing {
	if max < 1 {
		max = 1
	}
	return &ProfileRing{max: max}
}

// Add stores a snapshot, evicting the oldest when full, and returns its
// sequence number (0 on a nil ring).
func (r *ProfileRing) Add(kind string, at time.Time, dur time.Duration, data []byte) uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.seq++
	r.snaps = append(r.snaps, ProfileSnapshot{
		Seq: r.seq, Kind: kind, At: at, Dur: dur, Data: data,
	})
	if len(r.snaps) > r.max {
		// Drop from the front; copy to release the evicted Data.
		keep := make([]ProfileSnapshot, r.max)
		copy(keep, r.snaps[len(r.snaps)-r.max:])
		r.snaps = keep
	}
	return r.seq
}

// Snapshots returns the retained snapshots oldest-first. The Data
// slices are shared with the ring and must be treated as read-only.
func (r *ProfileRing) Snapshots() []ProfileSnapshot {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]ProfileSnapshot, len(r.snaps))
	copy(out, r.snaps)
	return out
}

// Get returns the snapshot with the given sequence number.
func (r *ProfileRing) Get(seq uint64) (ProfileSnapshot, bool) {
	if r == nil {
		return ProfileSnapshot{}, false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, s := range r.snaps {
		if s.Seq == seq {
			return s, true
		}
	}
	return ProfileSnapshot{}, false
}

// Latest returns the most recent snapshot of the given kind ("" for
// any kind).
func (r *ProfileRing) Latest(kind string) (ProfileSnapshot, bool) {
	if r == nil {
		return ProfileSnapshot{}, false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for i := len(r.snaps) - 1; i >= 0; i-- {
		if kind == "" || r.snaps[i].Kind == kind {
			return r.snaps[i], true
		}
	}
	return ProfileSnapshot{}, false
}

// CaptureHeap takes a heap profile right now and adds it to the ring.
// Used by the watchdog to attach memory state to stall dumps.
func (r *ProfileRing) CaptureHeap() (uint64, error) {
	if r == nil {
		return 0, nil
	}
	var buf bytes.Buffer
	p := pprof.Lookup("heap")
	if p == nil {
		return 0, fmt.Errorf("profring: no heap profile available")
	}
	if err := p.WriteTo(&buf, 0); err != nil {
		return 0, fmt.Errorf("profring: heap capture: %w", err)
	}
	return r.Add("heap", time.Now(), 0, buf.Bytes()), nil
}

// CaptureOptions configures the periodic capture loop.
type CaptureOptions struct {
	// Interval between capture rounds. Default 30s.
	Interval time.Duration
	// CPUWindow is how long each round's CPU profile runs. Zero
	// disables CPU capture (only one CPU profile can be active
	// process-wide; rounds silently skip when another is running).
	CPUWindow time.Duration
	// Heap enables a heap snapshot each round.
	Heap bool
}

// StartCapture launches the continuous capture loop and returns a stop
// function that halts it and waits for it to exit. Returns a no-op stop
// on a nil ring.
func (r *ProfileRing) StartCapture(opts CaptureOptions) func() {
	if r == nil {
		return func() {}
	}
	if opts.Interval <= 0 {
		opts.Interval = 30 * time.Second
	}
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		t := time.NewTicker(opts.Interval)
		defer t.Stop()
		// First round immediately: short runs should still leave a
		// snapshot in the ring rather than exit inside the first interval.
		r.captureRound(opts, stop)
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				r.captureRound(opts, stop)
			}
		}
	}()
	return func() {
		close(stop)
		<-done
	}
}

// captureRound performs one round of captures. The CPU window aborts
// early when stop closes so shutdown never blocks on the window.
func (r *ProfileRing) captureRound(opts CaptureOptions, stop chan struct{}) {
	if opts.Heap {
		_, _ = r.CaptureHeap()
	}
	if opts.CPUWindow > 0 {
		var buf bytes.Buffer
		start := time.Now()
		if err := pprof.StartCPUProfile(&buf); err != nil {
			return // another CPU profile is active; try next round
		}
		select {
		case <-stop:
		case <-time.After(opts.CPUWindow):
		}
		pprof.StopCPUProfile()
		r.Add("cpu", start, time.Since(start), buf.Bytes())
	}
}
