package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Event is one trace record: a complete span (Ph 'X', with duration) or
// an instant (Ph 'i'). Pid is the place the event happened at; Tid
// separates concurrent spans of one place (each activity gets its own
// lane) so Chrome's renderer never has to nest overlapping spans. Tid
// doubles as the span's identity: NextID hands out process-unique lane
// ids, so Parent can name the enclosing span and a post-run pass can
// rebuild the finish/activity tree (see internal/perfobs).
type Event struct {
	Name string
	Cat  string
	Ph   byte
	TS   int64 // nanoseconds since tracer start
	Dur  int64 // nanoseconds; spans only
	Pid  int
	Tid  uint64
	// Parent is the Tid of the span this event is causally nested under
	// (0 = no recorded parent): activities point at their governing
	// finish, nested finishes at their enclosing scope.
	Parent uint64
	// Edge classifies the dependency this event represents in the
	// finish tree (EdgeChild for plain nesting; steal/credit/lifeline
	// for the GLB and finish-protocol edges the critical-path profiler
	// buckets separately).
	Edge EdgeKind
	// Flow is the flow-event id for cross-place message events: the
	// 's' (flow begin) at the sender and the 'f' (flow end) at the
	// receiver share one Flow id, which Chrome renders as an arrow.
	// 0 on all other events.
	Flow uint64
	// HLC is the hybrid logical clock stamped on flow events (see
	// spanctx.go); the trace merger uses it to align timelines from
	// places with skewed physical clocks. 0 on non-flow events.
	HLC  uint64
	Args []Arg
}

// EdgeKind classifies the causal edge an event contributes to the
// finish/activity dependency graph.
type EdgeKind uint8

const (
	// EdgeNone marks an event recorded without edge information (the
	// pre-edge API, or sites with no enclosing span).
	EdgeNone EdgeKind = iota
	// EdgeChild is plain structural nesting: an activity under its
	// governing finish, a nested finish under its enclosing scope.
	EdgeChild
	// EdgeSteal marks a GLB random-steal round trip hanging off the
	// thief's worker activity.
	EdgeSteal
	// EdgeCredit marks finish-protocol control traffic carrying
	// termination credits (ctlDone, cumulative snapshots) to a root.
	EdgeCredit
	// EdgeLifeline marks the span between a GLB worker's death and its
	// resuscitation by lifeline loot.
	EdgeLifeline
)

// String names the edge kind for exports and reports.
func (k EdgeKind) String() string {
	switch k {
	case EdgeChild:
		return "child"
	case EdgeSteal:
		return "steal"
	case EdgeCredit:
		return "credit"
	case EdgeLifeline:
		return "lifeline"
	default:
		return "none"
	}
}

// Arg is one key/value annotation on an event (src/dst places, byte
// counts, success flags as 0/1).
type Arg struct {
	Key string
	Val int64
}

// traceShards bounds lock contention: events append into the shard of
// their place modulo this count.
const traceShards = 16

type traceShard struct {
	mu     sync.Mutex
	events []Event
}

// Tracer records runtime lifecycle events. All methods are safe for
// concurrent use and nil-receiver safe: a nil *Tracer is the disabled
// tracer, and every method on it is a cheap no-op, so instrumentation
// sites need only guard the work of *gathering* arguments.
type Tracer struct {
	start  time.Time
	shards [traceShards]traceShard
	ids    atomic.Uint64
	// dist holds the distributed-trace id; 0 means cross-place context
	// propagation is off and SendCtx returns zero contexts (the fast
	// path). See spanctx.go.
	dist atomic.Uint64
	// hlc holds the sharded hybrid-logical-clock cells (spanctx.go).
	hlc [traceShards]atomic.Uint64
}

// NewTracer creates a tracer; its clock starts now.
func NewTracer() *Tracer { return &Tracer{start: time.Now()} }

// Now returns the tracer-relative timestamp in nanoseconds (0 on nil).
// Capture it at the start of an operation and pass it to Complete.
func (t *Tracer) Now() int64 {
	if t == nil {
		return 0
	}
	return int64(time.Since(t.start))
}

// NextID allocates a lane id for a span (0 on nil).
func (t *Tracer) NextID() uint64 {
	if t == nil {
		return 0
	}
	return t.ids.Add(1)
}

// Complete records a span that began at start (a value from Now) and
// ends now.
func (t *Tracer) Complete(name, cat string, pid int, tid uint64, start int64, args ...Arg) {
	t.CompleteEdge(name, cat, pid, tid, start, 0, EdgeNone, args...)
}

// CompleteEdge is Complete with dependency-edge information: parent is
// the Tid of the enclosing span (0 for roots), edge classifies the
// dependency. The critical-path profiler consumes these to rebuild the
// finish tree.
func (t *Tracer) CompleteEdge(name, cat string, pid int, tid uint64, start int64,
	parent uint64, edge EdgeKind, args ...Arg) {
	if t == nil {
		return
	}
	now := int64(time.Since(t.start))
	t.add(Event{Name: name, Cat: cat, Ph: 'X', TS: start, Dur: now - start,
		Pid: pid, Tid: tid, Parent: parent, Edge: edge, Args: args})
}

// Instant records a zero-duration event happening now.
func (t *Tracer) Instant(name, cat string, pid int, args ...Arg) {
	t.InstantEdge(name, cat, pid, 0, EdgeNone, args...)
}

// InstantEdge is Instant with dependency-edge information (see
// CompleteEdge); credit-carrying finish control messages record
// EdgeCredit instants.
func (t *Tracer) InstantEdge(name, cat string, pid int, parent uint64, edge EdgeKind, args ...Arg) {
	if t == nil {
		return
	}
	t.add(Event{Name: name, Cat: cat, Ph: 'i', TS: int64(time.Since(t.start)),
		Pid: pid, Parent: parent, Edge: edge, Args: args})
}

func (t *Tracer) add(e Event) {
	s := &t.shards[e.Pid%traceShards]
	s.mu.Lock()
	s.events = append(s.events, e)
	s.mu.Unlock()
}

// Events returns a copy of all recorded events sorted by timestamp.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	var out []Event
	for i := range t.shards {
		s := &t.shards[i]
		s.mu.Lock()
		out = append(out, s.events...)
		s.mu.Unlock()
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].TS < out[j].TS })
	return out
}

// PlaceEvents returns a copy of the recorded events of one place,
// sorted by timestamp — the per-place slice of a shared in-process
// tracer, written to per-place trace files for the distributed merger.
func (t *Tracer) PlaceEvents(pid int) []Event {
	if t == nil {
		return nil
	}
	var out []Event
	s := &t.shards[uint(pid)%traceShards]
	s.mu.Lock()
	for _, e := range s.events {
		if e.Pid == pid {
			out = append(out, e)
		}
	}
	s.mu.Unlock()
	sort.SliceStable(out, func(i, j int) bool { return out[i].TS < out[j].TS })
	return out
}

// chromeEvent is the Chrome trace_event JSON shape (catapult
// trace-event format). Timestamps and durations are microseconds.
type chromeEvent struct {
	Name string           `json:"name"`
	Cat  string           `json:"cat"`
	Ph   string           `json:"ph"`
	TS   float64          `json:"ts"`
	Dur  *float64         `json:"dur,omitempty"`
	Pid  int              `json:"pid"`
	Tid  uint64           `json:"tid"`
	S    string           `json:"s,omitempty"`  // instant scope
	ID   uint64           `json:"id,omitempty"` // flow id ('s'/'f')
	BP   string           `json:"bp,omitempty"` // flow binding point
	Args map[string]int64 `json:"args,omitempty"`
}

// chromeMeta is a trace_event metadata record ('M'), used to name the
// per-place processes of a merged trace.
type chromeMeta struct {
	Name string            `json:"name"`
	Ph   string            `json:"ph"`
	Pid  int               `json:"pid"`
	Args map[string]string `json:"args"`
}

// chromeTrace holds heterogeneous records: chromeMeta ('M', string
// args) alongside chromeEvent (int64 args).
type chromeTrace struct {
	TraceEvents     []any  `json:"traceEvents"`
	DisplayTimeUnit string `json:"displayTimeUnit"`
}

// chromeEventFor converts one Event to its trace_event JSON shape.
func chromeEventFor(e Event) chromeEvent {
	ce := chromeEvent{
		Name: e.Name,
		Cat:  e.Cat,
		Ph:   string(e.Ph),
		TS:   float64(e.TS) / 1e3,
		Pid:  e.Pid,
		Tid:  e.Tid,
	}
	if e.Ph == 'X' {
		dur := float64(e.Dur) / 1e3
		ce.Dur = &dur
	}
	if e.Ph == 'i' {
		ce.S = "p" // process-scoped instant
	}
	if e.Ph == 's' || e.Ph == 'f' {
		ce.ID = e.Flow
	}
	if e.Ph == 'f' {
		// Bind the arrow head to the enclosing slice even when the
		// receive timestamp falls inside it rather than at its start.
		ce.BP = "e"
	}
	if len(e.Args) > 0 || e.Parent != 0 || e.Edge != EdgeNone || e.HLC != 0 {
		ce.Args = make(map[string]int64, len(e.Args)+3)
		for _, a := range e.Args {
			ce.Args[a.Key] = a.Val
		}
		if e.Parent != 0 {
			ce.Args["parent"] = int64(e.Parent)
		}
		if e.Edge != EdgeNone {
			ce.Args["edge"] = int64(e.Edge)
		}
		if e.HLC != 0 {
			ce.Args["hlc"] = int64(e.HLC)
		}
	}
	return ce
}

// writeChromeJSON writes events as Chrome trace_event JSON. When
// places is non-empty, a process_name metadata record is emitted per
// place so the viewer labels each track "place N".
func writeChromeJSON(w io.Writer, events []Event, places []int) error {
	out := chromeTrace{
		TraceEvents:     make([]any, 0, len(events)+len(places)),
		DisplayTimeUnit: "ms",
	}
	for _, p := range places {
		out.TraceEvents = append(out.TraceEvents, chromeMeta{
			Name: "process_name", Ph: "M", Pid: p,
			Args: map[string]string{"name": fmt.Sprintf("place %d", p)},
		})
	}
	for _, e := range events {
		out.TraceEvents = append(out.TraceEvents, chromeEventFor(e))
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

// WriteChrome exports the trace as Chrome trace_event JSON, loadable in
// chrome://tracing or https://ui.perfetto.dev. Places map to processes
// (pid), activity lanes to threads (tid).
func (t *Tracer) WriteChrome(w io.Writer) error {
	return writeChromeJSON(w, t.Events(), nil)
}

// WriteChromeFile writes the Chrome trace_event JSON to path.
func (t *Tracer) WriteChromeFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := t.WriteChrome(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// WriteChromePlaceFile writes only place pid's events to path — one
// shard of a distributed trace, consumed by MergeTraceFiles.
func (t *Tracer) WriteChromePlaceFile(path string, pid int) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := writeChromeJSON(f, t.PlaceEvents(pid), []int{pid}); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// WriteSummary renders a plain-text per-event-name summary: occurrence
// counts and, for spans, total and mean duration.
func (t *Tracer) WriteSummary(w io.Writer) {
	type agg struct {
		count int
		dur   time.Duration
		spans int
	}
	byName := make(map[string]*agg)
	for _, e := range t.Events() {
		a, ok := byName[e.Name]
		if !ok {
			a = &agg{}
			byName[e.Name] = a
		}
		a.count++
		if e.Ph == 'X' {
			a.spans++
			a.dur += time.Duration(e.Dur)
		}
	}
	names := make([]string, 0, len(byName))
	for name := range byName {
		names = append(names, name)
	}
	sort.Strings(names)
	fmt.Fprintf(w, "%-28s %8s %14s %14s\n", "event", "count", "total", "mean")
	for _, name := range names {
		a := byName[name]
		if a.spans == 0 {
			fmt.Fprintf(w, "%-28s %8d %14s %14s\n", name, a.count, "-", "-")
			continue
		}
		fmt.Fprintf(w, "%-28s %8d %14s %14s\n", name, a.count,
			a.dur.Round(time.Microsecond), (a.dur / time.Duration(a.spans)).Round(time.Nanosecond))
	}
}
