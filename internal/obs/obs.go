// Package obs is the unified observability layer of the APGAS runtime:
// a low-overhead, race-safe metrics registry (atomic counters, gauges,
// and histograms with hierarchical names) and an event tracer that
// records spans for the runtime's key lifecycles — finish begin/end,
// async spawn/run, at hops, GLB steal round-trips, collective phases —
// and exports Chrome trace_event JSON (loadable in chrome://tracing or
// Perfetto) plus a plain-text summary.
//
// The paper's engineering story (§3–§4) is told through exactly these
// runtime-internal signals: control-message counts at the finish home,
// steal round-trips, collective fan-in, per-link traffic. This package
// makes them one coherent surface instead of scattered ad-hoc counters.
//
// Overhead discipline: every instrumented subsystem holds a possibly-nil
// pointer (*Obs, *Tracer, or a metric handle) and all methods on metric
// and tracer types are nil-receiver safe, so a disabled runtime pays a
// single pointer load and branch per instrumentation site.
package obs

import (
	"sync"
	"sync/atomic"
)

// Obs bundles the metrics registry and the (optional) event tracer that
// a runtime instance reports into.
type Obs struct {
	// Metrics is the registry; always non-nil in a constructed Obs.
	Metrics *Registry
	// Trace is the event tracer, nil unless tracing was requested.
	Trace *Tracer
	// Flight is the always-on flight recorder; always non-nil in a
	// constructed Obs (it records regardless of whether Trace is set).
	Flight *FlightRecorder
	// Prof is the activity profiler stamping pprof goroutine labels on
	// activity bodies, nil unless profiling was requested
	// (EnableProfiling).
	Prof *Profiler
	// ProfRing retains recent CPU/heap profile captures for the debug
	// server and watchdog stall dumps, nil unless enabled
	// (EnableProfileRing).
	ProfRing *ProfileRing

	placeMu sync.Mutex
	places  map[int]*Registry
}

// New returns an Obs with a fresh metrics registry and no tracer.
func New() *Obs {
	return &Obs{Metrics: NewRegistry(), Flight: NewFlightRecorder(DefaultFlightSize)}
}

// NewTracing returns an Obs with both a metrics registry and a tracer.
func NewTracing() *Obs {
	o := New()
	o.Trace = NewTracer()
	return o
}

// NewTracingDist returns a tracing Obs with distributed (cross-place)
// tracing enabled: every cross-place message carries a SpanContext and
// records flow events, so per-place traces can be merged into one
// causal Chrome trace (see MergeTraceFiles).
func NewTracingDist() *Obs {
	o := NewTracing()
	o.Trace.EnableDist(1)
	return o
}

// EnableProfiling attaches a Profiler (pprof goroutine labels on every
// activity) with the given app/experiment name and returns o, for
// chaining onto a constructor. Runtimes created afterwards stamp
// (place, pattern, kind, app) labels on every activity body.
func (o *Obs) EnableProfiling(app string) *Obs {
	o.Prof = NewProfiler(app)
	return o
}

// EnableProfileRing attaches a bounded ring retaining the last max
// profile captures and returns o, for chaining.
func (o *Obs) EnableProfileRing(max int) *Obs {
	o.ProfRing = NewProfileRing(max)
	return o
}

// ProfileRing returns the profile capture ring, nil when o is nil or
// the ring is disabled.
func (o *Obs) ProfileRing() *ProfileRing {
	if o == nil {
		return nil
	}
	return o.ProfRing
}

// Profiler returns the activity profiler, nil when o is nil or
// profiling is disabled.
func (o *Obs) Profiler() *Profiler {
	if o == nil {
		return nil
	}
	return o.Prof
}

// Tracer returns the tracer, nil when o is nil or tracing is disabled.
func (o *Obs) Tracer() *Tracer {
	if o == nil {
		return nil
	}
	return o.Trace
}

// Registry returns the metrics registry, nil when o is nil.
func (o *Obs) Registry() *Registry {
	if o == nil {
		return nil
	}
	return o.Metrics
}

// FlightRecorder returns the flight recorder, nil when o is nil (or o
// predates flight recording).
func (o *Obs) FlightRecorder() *FlightRecorder {
	if o == nil {
		return nil
	}
	return o.Flight
}

// Place returns the registry scoped to one place, creating it on first
// use. Where Metrics holds process-wide totals (with place-qualified
// names like "sched.p3.spawned"), per-place registries hold each place's
// own view under *unqualified* names ("sched.spawned"), which is what
// makes snapshots from different places mergeable by the telemetry
// plane: the same logical metric has the same name everywhere.
func (o *Obs) Place(p int) *Registry {
	if o == nil {
		return nil
	}
	o.placeMu.Lock()
	defer o.placeMu.Unlock()
	if o.places == nil {
		o.places = make(map[int]*Registry)
	}
	r, ok := o.places[p]
	if !ok {
		r = NewRegistry()
		o.places[p] = r
	}
	return r
}

// global is the process-wide default Obs, installed by CLIs so that
// runtimes constructed deep inside the experiment harness pick up the
// observability configuration without plumbing.
var global atomic.Pointer[Obs]

// SetGlobal installs o as the process-wide default observability layer.
// Runtimes created afterwards without an explicit Config.Obs use it.
// Pass nil to disable.
func SetGlobal(o *Obs) { global.Store(o) }

// Global returns the process-wide default Obs, or nil.
func Global() *Obs { return global.Load() }
