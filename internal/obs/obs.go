// Package obs is the unified observability layer of the APGAS runtime:
// a low-overhead, race-safe metrics registry (atomic counters, gauges,
// and histograms with hierarchical names) and an event tracer that
// records spans for the runtime's key lifecycles — finish begin/end,
// async spawn/run, at hops, GLB steal round-trips, collective phases —
// and exports Chrome trace_event JSON (loadable in chrome://tracing or
// Perfetto) plus a plain-text summary.
//
// The paper's engineering story (§3–§4) is told through exactly these
// runtime-internal signals: control-message counts at the finish home,
// steal round-trips, collective fan-in, per-link traffic. This package
// makes them one coherent surface instead of scattered ad-hoc counters.
//
// Overhead discipline: every instrumented subsystem holds a possibly-nil
// pointer (*Obs, *Tracer, or a metric handle) and all methods on metric
// and tracer types are nil-receiver safe, so a disabled runtime pays a
// single pointer load and branch per instrumentation site.
package obs

import "sync/atomic"

// Obs bundles the metrics registry and the (optional) event tracer that
// a runtime instance reports into.
type Obs struct {
	// Metrics is the registry; always non-nil in a constructed Obs.
	Metrics *Registry
	// Trace is the event tracer, nil unless tracing was requested.
	Trace *Tracer
}

// New returns an Obs with a fresh metrics registry and no tracer.
func New() *Obs { return &Obs{Metrics: NewRegistry()} }

// NewTracing returns an Obs with both a metrics registry and a tracer.
func NewTracing() *Obs { return &Obs{Metrics: NewRegistry(), Trace: NewTracer()} }

// Tracer returns the tracer, nil when o is nil or tracing is disabled.
func (o *Obs) Tracer() *Tracer {
	if o == nil {
		return nil
	}
	return o.Trace
}

// Registry returns the metrics registry, nil when o is nil.
func (o *Obs) Registry() *Registry {
	if o == nil {
		return nil
	}
	return o.Metrics
}

// global is the process-wide default Obs, installed by CLIs so that
// runtimes constructed deep inside the experiment harness pick up the
// observability configuration without plumbing.
var global atomic.Pointer[Obs]

// SetGlobal installs o as the process-wide default observability layer.
// Runtimes created afterwards without an explicit Config.Obs use it.
// Pass nil to disable.
func SetGlobal(o *Obs) { global.Store(o) }

// Global returns the process-wide default Obs, or nil.
func Global() *Obs { return global.Load() }
