package obs

import (
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeHistogramBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("a.count")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if r.Counter("a.count") != c {
		t.Fatal("get-or-create returned a different counter handle")
	}

	g := r.Gauge("a.level")
	g.Add(3)
	g.Add(-1)
	if got := g.Value(); got != 2 {
		t.Fatalf("gauge = %d, want 2", got)
	}
	g.Set(-7)
	if got := g.Value(); got != -7 {
		t.Fatalf("gauge after Set = %d, want -7", got)
	}

	h := r.Histogram("a.us")
	for _, v := range []uint64{0, 1, 2, 3, 1000, 1 << 62} {
		h.Observe(v)
	}
	if h.Count() != 6 {
		t.Fatalf("histogram count = %d, want 6", h.Count())
	}
	if h.Sum() != 0+1+2+3+1000+1<<62 {
		t.Fatalf("histogram sum = %d", h.Sum())
	}

	snap := r.Snapshot()
	if snap.Counter("a.count") != 5 || snap.Gauge("a.level") != -7 {
		t.Fatalf("snapshot mismatch: %+v", snap)
	}
	hv := snap["a.us"]
	if hv.Kind != KindHistogram || hv.Count != 6 {
		t.Fatalf("histogram snapshot = %+v", hv)
	}
	if hv.Buckets[0] != 1 { // the single zero observation
		t.Fatalf("bucket 0 = %d, want 1", hv.Buckets[0])
	}
}

func TestNilSafety(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	g := r.Gauge("x")
	h := r.Histogram("x")
	if c != nil || g != nil || h != nil {
		t.Fatal("nil registry must hand out nil handles")
	}
	c.Inc()
	c.Add(2)
	g.Add(1)
	g.Set(9)
	h.Observe(3)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil metric handles must read as zero")
	}
	if r.Snapshot() != nil {
		t.Fatal("nil registry snapshot must be nil")
	}

	var tr *Tracer
	if tr.Now() != 0 || tr.NextID() != 0 {
		t.Fatal("nil tracer must report zero time and ids")
	}
	tr.Complete("a", "b", 0, 0, 0)
	tr.Instant("a", "b", 0)
	if tr.Events() != nil {
		t.Fatal("nil tracer must have no events")
	}
}

func TestSnapshotSubAndText(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("msgs")
	h := r.Histogram("lat")
	c.Add(10)
	h.Observe(5)
	before := r.Snapshot()
	c.Add(7)
	h.Observe(9)
	delta := r.Snapshot().Sub(before)
	if delta.Counter("msgs") != 7 {
		t.Fatalf("delta counter = %d, want 7", delta.Counter("msgs"))
	}
	if d := delta["lat"]; d.Count != 1 || d.Sum != 9 {
		t.Fatalf("delta histogram = %+v", d)
	}

	// A counter that shrank (re-registered by a fresh runtime) saturates
	// at zero instead of wrapping around.
	shrunk := Snapshot{"msgs": {Kind: KindCounter, Count: 3}}.Sub(before)
	if shrunk.Counter("msgs") != 0 {
		t.Fatalf("saturating sub = %d, want 0", shrunk.Counter("msgs"))
	}

	var sb strings.Builder
	r.Snapshot().WriteText(&sb)
	text := sb.String()
	for _, want := range []string{"msgs", "lat", "count=2"} {
		if !strings.Contains(text, want) {
			t.Fatalf("WriteText output missing %q:\n%s", want, text)
		}
	}
}

func TestRegisterAdoptsExternalCounter(t *testing.T) {
	r := NewRegistry()
	var own Counter
	own.Add(42)
	r.RegisterCounter("ext.count", &own)
	if got := r.Snapshot().Counter("ext.count"); got != 42 {
		t.Fatalf("adopted counter = %d, want 42", got)
	}
	// Re-registration replaces (fresh runtime supersedes a closed one).
	var next Counter
	next.Add(1)
	r.RegisterCounter("ext.count", &next)
	if got := r.Snapshot().Counter("ext.count"); got != 1 {
		t.Fatalf("re-registered counter = %d, want 1", got)
	}

	var lvl Gauge
	lvl.Set(5)
	r.RegisterGauge("ext.level", &lvl)
	if got := r.Snapshot().Gauge("ext.level"); got != 5 {
		t.Fatalf("adopted gauge = %d, want 5", got)
	}
}

// TestConcurrentHammer drives one counter, one gauge, and one histogram
// from 64 goroutines; run under -race (the repo's `make race` / `make
// all` gate) it proves the registry's hot paths are race-free, and the
// final totals prove no update is lost.
func TestConcurrentHammer(t *testing.T) {
	const goroutines = 64
	const perG = 1000
	r := NewRegistry()
	c := r.Counter("hammer.count")
	g := r.Gauge("hammer.level")
	h := r.Histogram("hammer.hist")

	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			for j := 0; j < perG; j++ {
				c.Inc()
				g.Add(1)
				g.Add(-1)
				h.Observe(seed + uint64(j))
				// Concurrent get-or-create of the same names must also
				// be safe and return the shared handles.
				if r.Counter("hammer.count") != c {
					panic("handle identity lost")
				}
			}
		}(uint64(i))
	}
	wg.Wait()

	if got := c.Value(); got != goroutines*perG {
		t.Fatalf("counter = %d, want %d", got, goroutines*perG)
	}
	if got := g.Value(); got != 0 {
		t.Fatalf("gauge = %d, want 0", got)
	}
	if got := h.Count(); got != goroutines*perG {
		t.Fatalf("histogram count = %d, want %d", got, goroutines*perG)
	}
	var total uint64
	for _, b := range r.Snapshot()["hammer.hist"].Buckets {
		total += b
	}
	if total != goroutines*perG {
		t.Fatalf("bucket total = %d, want %d", total, goroutines*perG)
	}
}
