package obs

import (
	"bytes"
	"testing"
)

func TestSendCtxDisabledFastPath(t *testing.T) {
	tr := NewTracer()
	if ctx := tr.SendCtx("flow.test", "test", 0, 1); ctx.Valid() {
		t.Fatalf("SendCtx with dist tracing off returned a valid context: %+v", ctx)
	}
	var nilTr *Tracer
	if ctx := nilTr.SendCtx("flow.test", "test", 0, 1); ctx.Valid() {
		t.Fatalf("SendCtx on nil tracer returned a valid context: %+v", ctx)
	}
	nilTr.RecvCtx(SpanContext{Flow: 7}, "flow.test", "test", 0, 1) // must not panic
	tr.RecvCtx(SpanContext{}, "flow.test", "test", 0, 1)
	if n := len(tr.Events()); n != 0 {
		t.Fatalf("disabled tracer recorded %d events, want 0", n)
	}
}

func TestSendRecvCtxFlowPair(t *testing.T) {
	tr := NewTracer()
	tr.EnableDist(42)
	ctx := tr.SendCtx("flow.spawn", "core", 0, 11, Arg{"dst", 3})
	if !ctx.Valid() {
		t.Fatal("SendCtx returned invalid context with dist tracing on")
	}
	if ctx.Trace != 42 || ctx.Span != 11 {
		t.Fatalf("context = %+v, want Trace=42 Span=11", ctx)
	}
	tr.RecvCtx(ctx, "flow.spawn", "core", 3, 99)

	events := tr.Events()
	var s, f *Event
	for i := range events {
		switch events[i].Ph {
		case 's':
			s = &events[i]
		case 'f':
			f = &events[i]
		}
	}
	if s == nil || f == nil {
		t.Fatalf("want one 's' and one 'f' event, got %+v", events)
	}
	if s.Flow != f.Flow || s.Flow != ctx.Flow {
		t.Fatalf("flow ids differ: s=%d f=%d ctx=%d", s.Flow, f.Flow, ctx.Flow)
	}
	if s.Name != f.Name || s.Cat != f.Cat {
		t.Fatalf("flow pair name/cat mismatch: %q/%q vs %q/%q", s.Name, s.Cat, f.Name, f.Cat)
	}
	if s.Pid != 0 || s.Tid != 11 || f.Pid != 3 || f.Tid != 99 {
		t.Fatalf("flow pair lanes wrong: s pid=%d tid=%d, f pid=%d tid=%d", s.Pid, s.Tid, f.Pid, f.Tid)
	}
	if f.Parent != 11 {
		t.Fatalf("receive parent = %d, want sending span 11", f.Parent)
	}
	if f.HLC <= s.HLC {
		t.Fatalf("receive HLC %d not after send HLC %d", f.HLC, s.HLC)
	}
}

func TestHLCMonotone(t *testing.T) {
	tr := NewTracer()
	var prev uint64
	for i := 0; i < 1000; i++ {
		h := tr.HLCTick(2)
		if h <= prev {
			t.Fatalf("HLCTick went backwards: %d after %d", h, prev)
		}
		prev = h
	}
	// Observing a far-future remote clock pulls the local one forward.
	remote := prev + uint64(1e9)<<hlcLogicalBits
	h := tr.HLCObserve(2, remote)
	if h <= remote {
		t.Fatalf("HLCObserve(%d) = %d, want strictly after the remote value", remote, h)
	}
}

// TestMergeAlignsSkewedPlaces builds two single-place traces whose
// physical clocks disagree (place 1 reads ~1ms behind), checks the raw
// concatenation would show the receive before its send, and verifies
// the merger repairs it using the HLC annotations.
func TestMergeAlignsSkewedPlaces(t *testing.T) {
	hlc := func(ns int64, logical uint64) uint64 {
		return uint64(ns)<<hlcLogicalBits | logical
	}
	// Place 0 sends at its local t=500µs; place 1 receives at local
	// t=10µs (its clock is behind), HLC pushed past the sender's.
	p0 := []Event{
		{Name: "finish.x", Cat: "finish", Ph: 'X', TS: 0, Dur: 600_000, Pid: 0, Tid: 1},
		{Name: "flow.spawn", Cat: "core", Ph: 's', TS: 500_000, Pid: 0, Tid: 1,
			Flow: 7, HLC: hlc(500_000, 1)},
	}
	p1 := []Event{
		{Name: "flow.spawn", Cat: "core", Ph: 'f', TS: 10_000, Pid: 1, Tid: 2,
			Flow: 7, Parent: 1, HLC: hlc(500_000, 2)},
		{Name: "async", Cat: "activity", Ph: 'X', TS: 10_000, Dur: 50_000, Pid: 1, Tid: 2, Parent: 1},
	}
	m := MergeTraces([][]Event{p0, p1})
	if m.Flows != 1 {
		t.Fatalf("Flows = %d, want 1", m.Flows)
	}
	var sTS, fTS int64 = -1, -1
	for _, e := range m.Events {
		switch e.Ph {
		case 's':
			sTS = e.TS
		case 'f':
			fTS = e.TS
		}
	}
	if sTS < 0 || fTS < 0 {
		t.Fatalf("merged trace lost flow events: %+v", m.Events)
	}
	if fTS <= sTS {
		t.Fatalf("merged receive (ts=%d) not after send (ts=%d); offsets=%v", fTS, sTS, m.Offsets)
	}
	for _, e := range m.Events {
		if e.TS < 0 {
			t.Fatalf("merged event has negative timestamp: %+v", e)
		}
	}
	// Place 1's whole timeline (not just the flow event) moved with it.
	for _, e := range m.Events {
		if e.Name == "async" && e.TS != 10_000+m.Offsets[1] {
			t.Fatalf("async span ts=%d, want offset-shifted %d", e.TS, 10_000+m.Offsets[1])
		}
	}
}

func TestChromeTraceRoundTrip(t *testing.T) {
	tr := NewTracer()
	tr.EnableDist(1)
	t0 := tr.Now()
	ctx := tr.SendCtx("flow.ctl", "finish", 2, 0, Arg{"dst", 0})
	tr.RecvCtx(ctx, "flow.ctl", "finish", 0, 5)
	tr.CompleteEdge("finish.default", "finish", 0, 5, t0, 3, EdgeChild, Arg{"n", 8})
	tr.Instant("at.async", "core", 2)

	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ParseChromeTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	want := tr.Events()
	if len(back) != len(want) {
		t.Fatalf("round trip: %d events, want %d", len(back), len(want))
	}
	byPh := func(evs []Event, ph byte) *Event {
		for i := range evs {
			if evs[i].Ph == ph {
				return &evs[i]
			}
		}
		return nil
	}
	for _, ph := range []byte{'s', 'f', 'X', 'i'} {
		w, g := byPh(want, ph), byPh(back, ph)
		if w == nil || g == nil {
			t.Fatalf("phase %c missing after round trip", ph)
		}
		if g.Name != w.Name || g.Cat != w.Cat || g.Pid != w.Pid || g.Tid != w.Tid ||
			g.Parent != w.Parent || g.Edge != w.Edge || g.Flow != w.Flow || g.HLC != w.HLC {
			t.Fatalf("phase %c: round trip mismatch:\n got %+v\nwant %+v", ph, *g, *w)
		}
		// Timestamps round-trip through microsecond floats: within 1ns.
		if d := g.TS - w.TS; d < -1 || d > 1 {
			t.Fatalf("phase %c: ts drifted %dns in round trip", ph, d)
		}
	}
}

func TestWriteChromePlaceFileSplitsAndMerges(t *testing.T) {
	tr := NewTracer()
	tr.EnableDist(1)
	t0 := tr.Now()
	ctx := tr.SendCtx("flow.spawn", "core", 0, 1, Arg{"dst", 1})
	tid := tr.NextID()
	tr.RecvCtx(ctx, "flow.spawn", "core", 1, tid)
	tr.CompleteEdge("async", "activity", 1, tid, t0, 1, EdgeChild)
	tr.CompleteEdge("finish.default", "finish", 0, 1, t0, 0, EdgeNone)

	dir := t.TempDir()
	paths := []string{dir + "/p0.json", dir + "/p1.json"}
	for p, path := range paths {
		if err := tr.WriteChromePlaceFile(path, p); err != nil {
			t.Fatal(err)
		}
	}
	m, err := MergeTraceFiles(paths...)
	if err != nil {
		t.Fatal(err)
	}
	if m.Flows != 1 {
		t.Fatalf("Flows = %d, want 1", m.Flows)
	}
	if len(m.Events) != 4 {
		t.Fatalf("merged %d events, want 4: %+v", len(m.Events), m.Events)
	}
	var sTS, fTS int64 = -1, -1
	for _, e := range m.Events {
		if e.Ph == 's' {
			sTS = e.TS
		}
		if e.Ph == 'f' {
			fTS = e.TS
		}
	}
	if fTS < sTS {
		t.Fatalf("receive ts=%d before send ts=%d after merge", fTS, sTS)
	}
	var buf bytes.Buffer
	if err := m.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := ParseChromeTrace(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("merged trace does not re-parse: %v", err)
	}
}
