package obs

// This file is the distributed-trace merger: it joins per-place Chrome
// trace files (written by WriteChromePlaceFile) into one trace whose
// flow events ('s' at the sender, 'f' at the receiver) connect spans
// across places. Each place timestamps events against its own tracer
// clock, so a naive concatenation can show a receive *before* its send
// — Chrome then draws the arrow backwards. The merger aligns the
// timelines using the hybrid logical clocks stamped on flow events:
//
//  1. Every flow event carries an HLC whose physical component is the
//     issuing place's clock pushed forward by everything it has
//     causally observed. The per-place offset is estimated as the
//     median of (HLC physical − local timestamp) over the place's flow
//     events, mapping each timeline onto the common causal clock.
//  2. Flow pairs then impose hard constraints — adjusted receive ≥
//     adjusted send — relaxed at place granularity for a bounded
//     number of rounds (real message latencies are positive, so the
//     constraint graph has no positive cycles unless clocks drifted
//     mid-run).
//  3. Any residual violation is repaired per event: the 'f' is nudged
//     to one nanosecond after its 's'. After a final stable sort by
//     timestamp, every track is monotone and no arrow points left.

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
)

// chromeInEvent is the decode-side shape of one trace_event record.
// Args stays raw so 'M' metadata records (string args) do not break
// decoding of ordinary events (int64 args).
type chromeInEvent struct {
	Name string          `json:"name"`
	Cat  string          `json:"cat"`
	Ph   string          `json:"ph"`
	TS   float64         `json:"ts"`
	Dur  float64         `json:"dur"`
	Pid  int             `json:"pid"`
	Tid  uint64          `json:"tid"`
	ID   uint64          `json:"id"`
	Args json.RawMessage `json:"args"`
}

type chromeInTrace struct {
	TraceEvents []chromeInEvent `json:"traceEvents"`
}

// ParseChromeTrace decodes a Chrome trace written by this package back
// into events: microsecond floats round-trip to nanoseconds, and the
// parent/edge/hlc annotations fold back into their Event fields.
// Metadata records ('M') are skipped.
func ParseChromeTrace(r io.Reader) ([]Event, error) {
	var in chromeInTrace
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return nil, fmt.Errorf("obs: parse chrome trace: %w", err)
	}
	events := make([]Event, 0, len(in.TraceEvents))
	for i, ce := range in.TraceEvents {
		if ce.Ph == "M" {
			continue
		}
		if len(ce.Ph) != 1 {
			return nil, fmt.Errorf("obs: event %d: bad phase %q", i, ce.Ph)
		}
		e := Event{
			Name: ce.Name,
			Cat:  ce.Cat,
			Ph:   ce.Ph[0],
			TS:   int64(math.Round(ce.TS * 1e3)),
			Dur:  int64(math.Round(ce.Dur * 1e3)),
			Pid:  ce.Pid,
			Tid:  ce.Tid,
			Flow: ce.ID,
		}
		if len(ce.Args) > 0 {
			var args map[string]int64
			if err := json.Unmarshal(ce.Args, &args); err != nil {
				return nil, fmt.Errorf("obs: event %d (%s): args: %w", i, ce.Name, err)
			}
			keys := make([]string, 0, len(args))
			for k := range args {
				switch k {
				case "parent":
					e.Parent = uint64(args[k])
				case "edge":
					e.Edge = EdgeKind(args[k])
				case "hlc":
					e.HLC = uint64(args[k])
				default:
					keys = append(keys, k)
				}
			}
			sort.Strings(keys)
			for _, k := range keys {
				e.Args = append(e.Args, Arg{Key: k, Val: args[k]})
			}
		}
		events = append(events, e)
	}
	return events, nil
}

// ParseChromeTraceFile reads and parses one Chrome trace file.
func ParseChromeTraceFile(path string) ([]Event, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	events, err := ParseChromeTrace(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return events, nil
}

// MergedTrace is the result of joining per-place traces onto one
// timeline.
type MergedTrace struct {
	// Events holds every event with place-aligned timestamps, sorted
	// by timestamp (stable), so per-track order is monotone.
	Events []Event
	// Offsets records the nanosecond adjustment applied to each
	// place's timeline (normalized so the smallest is zero).
	Offsets map[int]int64
	// Flows counts the send→receive flow pairs linked in the merge.
	Flows int
}

// mergeRelaxRounds bounds the constraint-relaxation loop; residual
// violations are repaired per event afterwards.
const mergeRelaxRounds = 8

// MergeTraces joins per-place event slices into one aligned trace.
// Inputs may be per-place files parsed with ParseChromeTraceFile or
// in-memory PlaceEvents slices; events are grouped by their own Pid,
// so slices holding several places' events also merge correctly.
func MergeTraces(perPlace [][]Event) *MergedTrace {
	var all []Event
	for _, evs := range perPlace {
		all = append(all, evs...)
	}

	// Per-place offset estimate: median of (HLC physical − local TS)
	// over flow events maps each place onto the shared causal clock.
	diffs := make(map[int][]int64)
	for _, e := range all {
		if e.HLC != 0 && (e.Ph == 's' || e.Ph == 'f') {
			diffs[e.Pid] = append(diffs[e.Pid], HLCPhysical(e.HLC)-e.TS)
		}
	}
	offsets := make(map[int]int64)
	places := make(map[int]bool)
	for _, e := range all {
		places[e.Pid] = true
	}
	for p := range places {
		offsets[p] = 0
		if d := diffs[p]; len(d) > 0 {
			sort.Slice(d, func(i, j int) bool { return d[i] < d[j] })
			offsets[p] = d[len(d)/2]
		}
	}

	// Flow constraints: each pair demands adjusted recv ≥ adjusted
	// send. Relax at place granularity for a bounded number of rounds.
	type pair struct {
		sendPid, recvPid int
		sendTS, recvTS   int64
	}
	sends := make(map[uint64]Event)
	var pairs []pair
	for _, e := range all {
		if e.Ph == 's' && e.Flow != 0 {
			sends[e.Flow] = e
		}
	}
	flowPairs := 0
	for _, e := range all {
		if e.Ph == 'f' && e.Flow != 0 {
			if s, ok := sends[e.Flow]; ok {
				pairs = append(pairs, pair{s.Pid, e.Pid, s.TS, e.TS})
				flowPairs++
			}
		}
	}
	for round := 0; round < mergeRelaxRounds; round++ {
		changed := false
		for _, pr := range pairs {
			if pr.sendPid == pr.recvPid {
				continue
			}
			need := offsets[pr.sendPid] + pr.sendTS - pr.recvTS
			if offsets[pr.recvPid] < need {
				offsets[pr.recvPid] = need
				changed = true
			}
		}
		if !changed {
			break
		}
	}

	// Normalize so the earliest timeline starts unshifted, apply, and
	// repair residual per-event violations by nudging the 'f' to just
	// after its 's'.
	var minOff int64
	first := true
	for _, off := range offsets {
		if first || off < minOff {
			minOff, first = off, false
		}
	}
	for p := range offsets {
		offsets[p] -= minOff
	}
	for i := range all {
		all[i].TS += offsets[all[i].Pid]
	}
	adjSend := make(map[uint64]int64, len(sends))
	for flow, s := range sends {
		adjSend[flow] = s.TS + offsets[s.Pid]
	}
	for i := range all {
		e := &all[i]
		if e.Ph == 'f' && e.Flow != 0 {
			if sts, ok := adjSend[e.Flow]; ok && e.TS <= sts {
				e.TS = sts + 1
			}
		}
	}

	sort.SliceStable(all, func(i, j int) bool { return all[i].TS < all[j].TS })
	return &MergedTrace{Events: all, Offsets: offsets, Flows: flowPairs}
}

// MergeTraceFiles parses each per-place trace file and merges them.
func MergeTraceFiles(paths ...string) (*MergedTrace, error) {
	perPlace := make([][]Event, 0, len(paths))
	for _, path := range paths {
		events, err := ParseChromeTraceFile(path)
		if err != nil {
			return nil, err
		}
		perPlace = append(perPlace, events)
	}
	return MergeTraces(perPlace), nil
}

// WriteChrome writes the merged trace as Chrome trace_event JSON with
// a process_name record per place.
func (m *MergedTrace) WriteChrome(w io.Writer) error {
	places := make([]int, 0, len(m.Offsets))
	for p := range m.Offsets {
		places = append(places, p)
	}
	sort.Ints(places)
	return writeChromeJSON(w, m.Events, places)
}

// WriteChromeFile writes the merged trace to path.
func (m *MergedTrace) WriteChromeFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := m.WriteChrome(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
