// health.go samples the Go runtime's own health signals — GC pause
// quantiles, scheduler latencies, heap and goroutine levels — into
// plain gauges so they ride the same telemetry gather tree and
// Prometheus endpoint as the APGAS runtime's metrics. An unhealthy
// place (GC thrashing, scheduler backlog) then shows up in the place-0
// cluster report next to its message and steal rates instead of
// needing a separate tool.
package obs

import (
	"fmt"
	"math"
	"runtime"
	"runtime/metrics"
	"sync"
	"time"
)

// healthMetricNames are the runtime/metrics samples the sampler reads.
// Kept to a small stable set that exists in every supported Go release.
var healthMetricNames = []string{
	"/sched/goroutines:goroutines",
	"/sched/gomaxprocs:threads",
	"/memory/classes/heap/objects:bytes",
	"/memory/classes/total:bytes",
	"/gc/cycles/total:gc-cycles",
	"/gc/pauses:seconds",
	"/sched/latencies:seconds",
}

// HealthSampler periodically folds runtime/metrics into gauges. The
// gauges are registered both in the process registry and, via shared
// *Gauge objects, in every place registry, so the per-place telemetry
// gather reports each place's host-process health (places colocated in
// one process legitimately report the same values).
type HealthSampler struct {
	samples []metrics.Sample

	goroutines  *Gauge // health.goroutines
	gomaxprocs  *Gauge // health.gomaxprocs
	heapObjects *Gauge // health.heap.objects.bytes
	memTotal    *Gauge // health.mem.total.bytes
	gcCycles    *Gauge // health.gc.cycles
	gcPauseP50  *Gauge // health.gc.pause.p50.us
	gcPauseP99  *Gauge // health.gc.pause.p99.us
	schedLatP50 *Gauge // health.sched.latency.p50.us
	schedLatP99 *Gauge // health.sched.latency.p99.us

	mu   sync.Mutex
	stop chan struct{}
	done chan struct{}
}

// NewHealthSampler builds a sampler whose gauges live in o's process
// registry and in each of o's place registries. Returns nil when
// observability is disabled.
func NewHealthSampler(o *Obs, places int) *HealthSampler {
	if o == nil {
		return nil
	}
	h := &HealthSampler{samples: make([]metrics.Sample, len(healthMetricNames))}
	for i, name := range healthMetricNames {
		h.samples[i].Name = name
	}
	proc := o.Registry()
	h.goroutines = proc.Gauge("health.goroutines")
	h.gomaxprocs = proc.Gauge("health.gomaxprocs")
	h.heapObjects = proc.Gauge("health.heap.objects.bytes")
	h.memTotal = proc.Gauge("health.mem.total.bytes")
	h.gcCycles = proc.Gauge("health.gc.cycles")
	h.gcPauseP50 = proc.Gauge("health.gc.pause.p50.us")
	h.gcPauseP99 = proc.Gauge("health.gc.pause.p99.us")
	h.schedLatP50 = proc.Gauge("health.sched.latency.p50.us")
	h.schedLatP99 = proc.Gauge("health.sched.latency.p99.us")
	for p := 0; p < places; p++ {
		r := o.Place(p)
		r.RegisterGauge("health.goroutines", h.goroutines)
		r.RegisterGauge("health.gomaxprocs", h.gomaxprocs)
		r.RegisterGauge("health.heap.objects.bytes", h.heapObjects)
		r.RegisterGauge("health.mem.total.bytes", h.memTotal)
		r.RegisterGauge("health.gc.cycles", h.gcCycles)
		r.RegisterGauge("health.gc.pause.p50.us", h.gcPauseP50)
		r.RegisterGauge("health.gc.pause.p99.us", h.gcPauseP99)
		r.RegisterGauge("health.sched.latency.p50.us", h.schedLatP50)
		r.RegisterGauge("health.sched.latency.p99.us", h.schedLatP99)
	}
	return h
}

// SampleNow reads runtime/metrics once and updates the gauges. Safe to
// call concurrently with a running Start loop and on a nil receiver.
func (h *HealthSampler) SampleNow() {
	if h == nil {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	metrics.Read(h.samples)
	for _, s := range h.samples {
		switch s.Name {
		case "/sched/goroutines:goroutines":
			h.goroutines.Set(uint64Gauge(s.Value))
		case "/sched/gomaxprocs:threads":
			h.gomaxprocs.Set(uint64Gauge(s.Value))
		case "/memory/classes/heap/objects:bytes":
			h.heapObjects.Set(uint64Gauge(s.Value))
		case "/memory/classes/total:bytes":
			h.memTotal.Set(uint64Gauge(s.Value))
		case "/gc/cycles/total:gc-cycles":
			h.gcCycles.Set(uint64Gauge(s.Value))
		case "/gc/pauses:seconds":
			h.gcPauseP50.Set(histQuantileUs(s.Value, 0.5))
			h.gcPauseP99.Set(histQuantileUs(s.Value, 0.99))
		case "/sched/latencies:seconds":
			h.schedLatP50.Set(histQuantileUs(s.Value, 0.5))
			h.schedLatP99.Set(histQuantileUs(s.Value, 0.99))
		}
	}
}

// Start launches the periodic sampling loop. A second Start without an
// intervening Stop is a no-op.
func (h *HealthSampler) Start(interval time.Duration) {
	if h == nil {
		return
	}
	h.mu.Lock()
	if h.stop != nil {
		h.mu.Unlock()
		return
	}
	stop := make(chan struct{})
	done := make(chan struct{})
	h.stop, h.done = stop, done
	h.mu.Unlock()
	h.SampleNow()
	go func() {
		defer close(done)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				h.SampleNow()
			}
		}
	}()
}

// Stop halts the sampling loop and waits for it to exit.
func (h *HealthSampler) Stop() {
	if h == nil {
		return
	}
	h.mu.Lock()
	stop, done := h.stop, h.done
	h.stop, h.done = nil, nil
	h.mu.Unlock()
	if stop == nil {
		return
	}
	close(stop)
	<-done
}

func uint64Gauge(v metrics.Value) int64 {
	if v.Kind() != metrics.KindUint64 {
		return 0
	}
	u := v.Uint64()
	if u > math.MaxInt64 {
		return math.MaxInt64
	}
	return int64(u)
}

// histQuantileUs computes a nearest-rank quantile in microseconds from
// a runtime/metrics float64 histogram (bucket bounds in seconds; first
// and last bounds may be ±Inf).
func histQuantileUs(v metrics.Value, q float64) int64 {
	if v.Kind() != metrics.KindFloat64Histogram {
		return 0
	}
	h := v.Float64Histogram()
	if h == nil || len(h.Counts) == 0 {
		return 0
	}
	var total uint64
	for _, c := range h.Counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	rank := uint64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	var cum uint64
	for i, c := range h.Counts {
		cum += c
		if cum >= rank {
			// Bucket i spans (Buckets[i], Buckets[i+1]]; report the
			// upper bound, falling back to the lower when it is +Inf.
			ub := h.Buckets[i+1]
			if math.IsInf(ub, +1) {
				ub = h.Buckets[i]
			}
			if math.IsInf(ub, -1) || ub < 0 {
				ub = 0
			}
			return int64(ub * 1e6)
		}
	}
	return 0
}

// RuntimeSnapshot is a compact point-in-time picture of the Go runtime,
// cheap enough to take inside a watchdog stall dump or a flight-record
// header.
type RuntimeSnapshot struct {
	Goroutines    int
	HeapInuse     uint64 // bytes
	HeapSys       uint64 // bytes
	NumGC         uint32
	LastGCPauseNs uint64
}

// TakeRuntimeSnapshot reads the snapshot via runtime.ReadMemStats.
func TakeRuntimeSnapshot() RuntimeSnapshot {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	s := RuntimeSnapshot{
		Goroutines: runtime.NumGoroutine(),
		HeapInuse:  ms.HeapInuse,
		HeapSys:    ms.HeapSys,
		NumGC:      ms.NumGC,
	}
	if ms.NumGC > 0 {
		s.LastGCPauseNs = ms.PauseNs[(ms.NumGC+255)%256]
	}
	return s
}

// String renders the snapshot as a compact single line for text dumps.
func (s RuntimeSnapshot) String() string {
	return fmt.Sprintf("goroutines=%d heap_inuse=%d heap_sys=%d num_gc=%d last_gc_pause_ns=%d",
		s.Goroutines, s.HeapInuse, s.HeapSys, s.NumGC, s.LastGCPauseNs)
}

// JSON renders the snapshot as a JSON object fragment for embedding in
// dump headers.
func (s RuntimeSnapshot) JSON() string {
	return fmt.Sprintf(`{"goroutines":%d,"heap_inuse":%d,"heap_sys":%d,"num_gc":%d,"last_gc_pause_ns":%d}`,
		s.Goroutines, s.HeapInuse, s.HeapSys, s.NumGC, s.LastGCPauseNs)
}
