package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestFlightRecorderBasic(t *testing.T) {
	f := NewFlightRecorder(64)
	name := f.NameID("finish.begin")
	cat := f.NameID("finish")
	kp := f.NameID("pattern")
	kn := f.NameID("n")
	f.Record(name, cat, 'B', 3, 7, 0)
	f.Record1(name, cat, 'i', 1, 0, 0, kp, 5)
	f.Record2(name, cat, 'E', 2, 9, 1500, kp, 5, kn, 42)

	ev := f.Events()
	if len(ev) != 3 {
		t.Fatalf("Events() = %d events, want 3", len(ev))
	}
	if ev[0].Name != "finish.begin" || ev[0].Cat != "finish" || ev[0].Ph != 'B' ||
		ev[0].Pid != 3 || ev[0].Tid != 7 {
		t.Errorf("event 0 = %+v", ev[0])
	}
	if len(ev[1].Args) != 1 || ev[1].Args[0] != (FlightArg{"pattern", 5}) {
		t.Errorf("event 1 args = %+v", ev[1].Args)
	}
	if len(ev[2].Args) != 2 || ev[2].Args[1] != (FlightArg{"n", 42}) {
		t.Errorf("event 2 args = %+v, want second arg n=42", ev[2].Args)
	}
	if ev[2].Dur != 1500 {
		t.Errorf("event 2 dur = %d, want 1500", ev[2].Dur)
	}
}

func TestFlightRecorderRingOrderAndWrap(t *testing.T) {
	f := NewFlightRecorder(64) // rounds to 64
	if f.Cap() != 64 {
		t.Fatalf("Cap() = %d, want 64", f.Cap())
	}
	name := f.NameID("tick")
	k := f.NameID("i")
	const total = 200
	for i := 0; i < total; i++ {
		f.Record1(name, 0, 'i', 0, 0, 0, k, int64(i))
	}
	ev := f.Events()
	if len(ev) != 64 {
		t.Fatalf("after wrap Events() = %d, want 64", len(ev))
	}
	// The ring must hold the newest 64 events in order.
	for i, e := range ev {
		want := int64(total - 64 + i)
		if e.Args[0].Val != want {
			t.Fatalf("event %d has i=%d, want %d", i, e.Args[0].Val, want)
		}
		if i > 0 && e.Seq != ev[i-1].Seq+1 {
			t.Fatalf("seq not contiguous at %d: %d after %d", i, e.Seq, ev[i-1].Seq)
		}
		if i > 0 && e.TS < ev[i-1].TS {
			t.Fatalf("timestamps not monotone at %d", i)
		}
	}
	if got := f.Recorded(); got != total {
		t.Errorf("Recorded() = %d, want %d", got, total)
	}
}

func TestFlightRecorderNil(t *testing.T) {
	var f *FlightRecorder
	id := f.NameID("x")
	f.Record(id, 0, 'i', 0, 0, 0) // must not panic
	if f.Events() != nil || f.Recorded() != 0 || f.Cap() != 0 {
		t.Error("nil recorder leaked state")
	}
}

func TestFlightRecorderConcurrent(t *testing.T) {
	f := NewFlightRecorder(128)
	name := f.NameID("hammer")
	k := f.NameID("g")
	var readers, writers sync.WaitGroup
	stop := make(chan struct{})
	// Concurrent readers while writers lap the ring many times over.
	for r := 0; r < 2; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				ev := f.Events()
				for i := 1; i < len(ev); i++ {
					if ev[i].Seq <= ev[i-1].Seq {
						t.Error("non-increasing seq under concurrency")
						return
					}
					if ev[i].TS < ev[i-1].TS {
						t.Error("non-monotone ts under concurrency")
						return
					}
				}
			}
		}()
	}
	for g := 0; g < 8; g++ {
		writers.Add(1)
		go func(g int) {
			defer writers.Done()
			for i := 0; i < 5000; i++ {
				f.Record1(name, 0, 'i', g, uint64(i), 0, k, int64(g))
			}
		}(g)
	}
	writers.Wait()
	close(stop)
	readers.Wait()
	if got := f.Recorded(); got != 8*5000 {
		t.Errorf("Recorded() = %d, want %d", got, 8*5000)
	}
}

func TestFlightRecorderDumpFormat(t *testing.T) {
	f := NewFlightRecorder(64)
	name := f.NameID("ctl.snapshot")
	cat := f.NameID("finish")
	k := f.NameID("dst")
	for i := 0; i < 100; i++ { // force drops
		f.Record1(name, cat, 'i', i%4, 0, 0, k, int64(i))
	}
	var buf bytes.Buffer
	if err := f.WriteDump(&buf); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(&buf)
	if !sc.Scan() {
		t.Fatal("empty dump")
	}
	var hdr struct {
		Type     string `json:"type"`
		Version  int    `json:"version"`
		Events   int    `json:"events"`
		Recorded uint64 `json:"recorded"`
		Dropped  uint64 `json:"dropped"`
	}
	if err := json.Unmarshal(sc.Bytes(), &hdr); err != nil {
		t.Fatalf("header: %v", err)
	}
	if hdr.Type != FlightDumpMagic || hdr.Version != 1 {
		t.Fatalf("header = %+v", hdr)
	}
	if hdr.Events != 64 || hdr.Recorded != 100 || hdr.Dropped != 36 {
		t.Errorf("header counts = %+v, want events=64 recorded=100 dropped=36", hdr)
	}
	var lastSeq uint64
	var lastTS int64
	n := 0
	for sc.Scan() {
		var e struct {
			Seq  uint64 `json:"seq"`
			TS   int64  `json:"ts"`
			Ph   string `json:"ph"`
			Name string `json:"name"`
			Cat  string `json:"cat"`
		}
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("event line %d: %v", n, err)
		}
		if e.Seq <= lastSeq {
			t.Fatalf("line %d: seq %d not increasing (prev %d)", n, e.Seq, lastSeq)
		}
		if e.TS < lastTS {
			t.Fatalf("line %d: ts %d went backwards (prev %d)", n, e.TS, lastTS)
		}
		if e.Name != "ctl.snapshot" || e.Cat != "finish" {
			t.Fatalf("line %d: name/cat = %q/%q", n, e.Name, e.Cat)
		}
		lastSeq, lastTS = e.Seq, e.TS
		n++
	}
	if n != hdr.Events {
		t.Errorf("dump has %d event lines, header says %d", n, hdr.Events)
	}
}

func TestFlightRecorderWriteText(t *testing.T) {
	f := NewFlightRecorder(64)
	name := f.NameID("steal")
	k := f.NameID("victim")
	for i := 0; i < 10; i++ {
		f.Record1(name, 0, 'i', 0, 0, 0, k, int64(i))
	}
	var buf bytes.Buffer
	f.WriteText(&buf, 3)
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("WriteText(max=3) = %d lines", len(lines))
	}
	if !strings.Contains(lines[2], "victim=9") {
		t.Errorf("last line %q should show the newest event (victim=9)", lines[2])
	}
}

// TestFlightRecordAllocs is the acceptance criterion: the record path
// must not allocate (tracing disabled or not, the flight recorder is
// always on).
func TestFlightRecordAllocs(t *testing.T) {
	f := NewFlightRecorder(256)
	name := f.NameID("ev")
	cat := f.NameID("cat")
	k1 := f.NameID("a")
	k2 := f.NameID("b")
	if n := testing.AllocsPerRun(1000, func() {
		f.Record(name, cat, 'i', 1, 2, 0)
	}); n != 0 {
		t.Errorf("Record allocates %.1f/op, want 0", n)
	}
	if n := testing.AllocsPerRun(1000, func() {
		f.Record2(name, cat, 'X', 1, 2, 100, k1, 1, k2, 2)
	}); n != 0 {
		t.Errorf("Record2 allocates %.1f/op, want 0", n)
	}
}

// BenchmarkFlightRecord backs the -benchmem acceptance criterion:
//
//	go test ./internal/obs -bench FlightRecord -benchmem
//
// must report 0 allocs/op.
func BenchmarkFlightRecord(b *testing.B) {
	f := NewFlightRecorder(4096)
	name := f.NameID("ev")
	cat := f.NameID("cat")
	k := f.NameID("n")
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		i := int64(0)
		for pb.Next() {
			i++
			f.Record1(name, cat, 'i', 0, 0, 0, k, i)
		}
	})
}
