package obs

import (
	"bytes"
	"strings"
	"testing"
)

// TestSnapshotSubHistogramBuckets is the regression test for histogram
// interval deltas: Sub must subtract per-bucket, not just count/sum, or
// aggregated latency histograms across places are not mergeable.
func TestSnapshotSubHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat")
	h.Observe(0)    // bucket 0
	h.Observe(1)    // bucket 1
	h.Observe(1000) // bucket 10
	before := r.Snapshot()
	h.Observe(1) // bucket 1 again
	h.Observe(5000)
	h.Observe(5000) // bucket 13 twice
	delta := r.Snapshot().Sub(before)

	v := delta["lat"]
	if v.Count != 3 {
		t.Fatalf("delta count = %d, want 3", v.Count)
	}
	if v.Sum != 10001 {
		t.Fatalf("delta sum = %d, want 10001", v.Sum)
	}
	want := map[int]uint64{1: 1, 13: 2}
	for i, b := range v.Buckets {
		if b != want[i] {
			t.Errorf("delta bucket %d = %d, want %d", i, b, want[i])
		}
	}
	var total uint64
	for _, b := range v.Buckets {
		total += b
	}
	if total != v.Count {
		t.Errorf("delta buckets total %d != delta count %d", total, v.Count)
	}
}

func TestMergeSnapshots(t *testing.T) {
	byPlace := make(map[int]Snapshot)
	for p := 0; p < 4; p++ {
		r := NewRegistry()
		r.Counter("sched.spawned").Add(uint64(10 * (p + 1))) // 10,20,30,40
		r.Gauge("sched.blocked").Set(int64(p))               // 0..3
		h := r.Histogram("lat")
		h.Observe(uint64(1 << p)) // buckets 1..4
		byPlace[p] = r.Snapshot()
	}
	byPlace[7] = nil // skipped

	m := MergeSnapshots(byPlace)
	c := m["sched.spawned"]
	if c.Sum.Count != 100 {
		t.Errorf("spawned sum = %d, want 100", c.Sum.Count)
	}
	if c.Min != 10 || c.MinAt != 0 || c.Max != 40 || c.MaxAt != 3 {
		t.Errorf("spawned min/max = %d@p%d / %d@p%d, want 10@p0 / 40@p3",
			c.Min, c.MinAt, c.Max, c.MaxAt)
	}
	if len(c.Places) != 4 || c.Places[2] != 2 || c.PerPlace[2] != 30 {
		t.Errorf("spawned per-place = %v / %v", c.Places, c.PerPlace)
	}

	g := m["sched.blocked"]
	if g.Kind != KindGauge || g.Sum.Gauge != 6 || g.Min != 0 || g.Max != 3 {
		t.Errorf("blocked merged = %+v", g)
	}

	h := m["lat"]
	if h.Sum.Count != 4 {
		t.Errorf("lat merged count = %d, want 4", h.Sum.Count)
	}
	// One observation per bucket 1..4 (values 1,2,4,8).
	for i := 1; i <= 4; i++ {
		if h.Sum.Buckets[i] != 1 {
			t.Errorf("lat merged bucket %d = %d, want 1", i, h.Sum.Buckets[i])
		}
	}

	var buf bytes.Buffer
	m.WriteTable(&buf)
	out := buf.String()
	if !strings.Contains(out, "sched.spawned") || !strings.Contains(out, "100") {
		t.Errorf("WriteTable missing sum row:\n%s", out)
	}
	if !strings.Contains(out, "10@p0") || !strings.Contains(out, "40@p3") {
		t.Errorf("WriteTable missing min/max place columns:\n%s", out)
	}
}

func TestObsPlaceRegistries(t *testing.T) {
	o := New()
	if o.Flight == nil {
		t.Fatal("New() must create a flight recorder")
	}
	r0 := o.Place(0)
	r0b := o.Place(0)
	if r0 != r0b {
		t.Error("Place(0) not stable")
	}
	if o.Place(1) == r0 {
		t.Error("places share a registry")
	}
	var nilObs *Obs
	if nilObs.Place(0) != nil || nilObs.FlightRecorder() != nil {
		t.Error("nil Obs must return nil handles")
	}
}
