package obs

import (
	"runtime"
	"strings"
	"testing"
	"time"
)

func TestHealthSampler(t *testing.T) {
	o := New()
	h := NewHealthSampler(o, 3)
	if h == nil {
		t.Fatal("NewHealthSampler returned nil for non-nil Obs")
	}
	// Force a GC so pause/cycle metrics are non-trivial.
	runtime.GC()
	h.SampleNow()

	proc := o.Registry().Snapshot()
	if g := proc.Gauge("health.goroutines"); g <= 0 {
		t.Fatalf("health.goroutines = %d, want > 0", g)
	}
	if g := proc.Gauge("health.gomaxprocs"); g <= 0 {
		t.Fatalf("health.gomaxprocs = %d, want > 0", g)
	}
	if g := proc.Gauge("health.heap.objects.bytes"); g <= 0 {
		t.Fatalf("health.heap.objects.bytes = %d, want > 0", g)
	}
	if g := proc.Gauge("health.gc.cycles"); g <= 0 {
		t.Fatalf("health.gc.cycles = %d, want > 0 after runtime.GC", g)
	}

	// Shared gauges: every place registry reports the same values.
	for p := 0; p < 3; p++ {
		ps := o.Place(p).Snapshot()
		if got, want := ps.Gauge("health.goroutines"), proc.Gauge("health.goroutines"); got != want {
			t.Fatalf("place %d health.goroutines = %d, process = %d", p, got, want)
		}
	}
}

func TestHealthSamplerNil(t *testing.T) {
	var h *HealthSampler
	h.SampleNow()
	h.Start(time.Millisecond)
	h.Stop()
	if s := NewHealthSampler(nil, 2); s != nil {
		t.Fatal("NewHealthSampler(nil) should return nil")
	}
}

func TestHealthSamplerStartStop(t *testing.T) {
	o := New()
	h := NewHealthSampler(o, 1)
	h.Start(time.Millisecond)
	h.Start(time.Millisecond) // second Start is a no-op
	time.Sleep(5 * time.Millisecond)
	h.Stop()
	h.Stop() // idempotent
	if g := o.Registry().Snapshot().Gauge("health.goroutines"); g <= 0 {
		t.Fatalf("sampling loop never ran: health.goroutines = %d", g)
	}
}

func TestRuntimeSnapshot(t *testing.T) {
	runtime.GC()
	s := TakeRuntimeSnapshot()
	if s.Goroutines <= 0 || s.HeapInuse == 0 || s.NumGC == 0 {
		t.Fatalf("snapshot = %+v", s)
	}
	line := s.String()
	for _, want := range []string{"goroutines=", "heap_inuse=", "num_gc="} {
		if !strings.Contains(line, want) {
			t.Fatalf("String() = %q missing %q", line, want)
		}
	}
	js := s.JSON()
	if !strings.HasPrefix(js, `{"goroutines":`) || !strings.HasSuffix(js, "}") {
		t.Fatalf("JSON() = %q", js)
	}
}
