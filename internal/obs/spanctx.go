package obs

// This file is the distributed half of the tracer: a compact trace
// context (SpanContext) that rides inside cross-place x10rt payloads,
// and the hybrid logical clock (HLC) that lets the merger align traces
// from places with skewed physical clocks. The design follows the
// usual dataflow of distributed tracers (Dapper-style): the sender
// allocates a flow id and records a flow-begin ('s') on its own lane,
// the context travels with the message, and the receiver records the
// matching flow-end ('f') on the lane of whatever span the message
// started. Chrome's trace viewer draws an arrow between the two.
//
// Overhead discipline matches the rest of the package: distributed
// tracing is opt-in per tracer (EnableDist). With it off — or with a
// nil tracer — SendCtx returns the zero SpanContext after a single
// atomic load, RecvCtx is a no-op on the zero context, and the zero
// context gob-encodes to almost nothing inside the payload structs
// that embed it.

import "sync/atomic"

// hlcLogicalBits is the width of the logical (counter) component of the
// hybrid logical clock. The physical component is the tracer-relative
// timestamp in nanoseconds shifted left by this amount, so HLC values
// compare like timestamps but also respect causality: every receive is
// strictly after the send that caused it, even across places whose
// physical clocks disagree.
const hlcLogicalBits = 16

// HLCPhysical extracts the physical (nanosecond) component of an HLC
// value, i.e. the tracer-relative time at which it was issued, rounded
// up by any logical ticks that have overflowed into it.
func HLCPhysical(hlc uint64) int64 { return int64(hlc >> hlcLogicalBits) }

// SpanContext is the compact trace context carried by every traced
// cross-place message: which distributed trace it belongs to, which
// span sent it, the flow id binding the send event to the receive
// event, and the sender's hybrid logical clock at send time.
//
// The zero SpanContext is the "not traced" context: Valid reports
// false, RecvCtx ignores it, and gob omits all four zero fields, so
// untraced runs pay no wire bytes for the embedded field.
type SpanContext struct {
	// Trace identifies the distributed trace session (EnableDist's id).
	Trace uint64
	// Span is the Tid of the sending span (0 when the sender had no
	// enclosing lane, e.g. finish control fan-in).
	Span uint64
	// Flow is the flow-event id binding the 's' record at the sender to
	// the 'f' record at the receiver. 0 marks an invalid (untraced)
	// context.
	Flow uint64
	// HLC is the sender's hybrid logical clock when the message was
	// sent. The receiver folds it into its own clock (HLCObserve), and
	// the trace merger uses it to align skewed per-place timelines.
	HLC uint64
}

// Valid reports whether c carries a live trace context.
func (c SpanContext) Valid() bool { return c.Flow != 0 }

// EnableDist turns on distributed (cross-place) tracing for this
// tracer under the given trace id (0 selects 1). Safe to call
// concurrently with tracing.
func (t *Tracer) EnableDist(traceID uint64) {
	if t == nil {
		return
	}
	if traceID == 0 {
		traceID = 1
	}
	t.dist.Store(traceID)
}

// DistEnabled reports whether distributed tracing is on (false on nil).
func (t *Tracer) DistEnabled() bool { return t != nil && t.dist.Load() != 0 }

// DistTraceID returns the distributed trace id (0 when disabled).
func (t *Tracer) DistTraceID() uint64 {
	if t == nil {
		return 0
	}
	return t.dist.Load()
}

// hlcCell returns the HLC cell for place pid. Cells are sharded the
// same way as the event shards; places that share a shard share a
// clock, which is harmless (the HLC only ever moves forward).
func (t *Tracer) hlcCell(pid int) *atomic.Uint64 {
	return &t.hlc[uint(pid)%traceShards]
}

// HLCTick advances place pid's hybrid logical clock for a send event
// and returns the new value: at least one past the previous value, and
// at least the current physical time. Exposed (rather than private to
// SendCtx) so serializing transports can stamp batch frames.
func (t *Tracer) HLCTick(pid int) uint64 {
	if t == nil {
		return 0
	}
	now := uint64(t.Now()) << hlcLogicalBits
	cell := t.hlcCell(pid)
	for {
		old := cell.Load()
		next := old + 1
		if now > next {
			next = now
		}
		if cell.CompareAndSwap(old, next) {
			return next
		}
	}
}

// HLCObserve folds a remote HLC value into place pid's clock for a
// receive event and returns the new value: strictly after both the
// local clock and the remote value, and at least the current physical
// time. Transports call it when a stamped frame arrives.
func (t *Tracer) HLCObserve(pid int, remote uint64) uint64 {
	if t == nil {
		return 0
	}
	now := uint64(t.Now()) << hlcLogicalBits
	cell := t.hlcCell(pid)
	for {
		old := cell.Load()
		next := old
		if remote > next {
			next = remote
		}
		if now > next {
			next = now
		}
		next++
		if cell.CompareAndSwap(old, next) {
			return next
		}
	}
}

// nextFlow allocates a process-unique flow id, tagged with the issuing
// place so ids from different processes cannot collide when traces are
// merged across hosts.
func (t *Tracer) nextFlow(pid int) uint64 {
	return uint64(pid+1)<<48 | t.ids.Add(1)
}

// SendCtx records a flow-begin ('s') event for a message leaving place
// pid from the span with lane parent (0 when there is no enclosing
// lane) and returns the context to embed in the payload. With the
// tracer nil or distributed tracing off it returns the zero
// SpanContext without recording anything — the fast path is one atomic
// load.
//
// Chrome binds flow arrows by (name, cat, id): the receive site must
// record RecvCtx under the same name and cat.
func (t *Tracer) SendCtx(name, cat string, pid int, parent uint64, args ...Arg) SpanContext {
	if t == nil {
		return SpanContext{}
	}
	trace := t.dist.Load()
	if trace == 0 {
		return SpanContext{}
	}
	flow := t.nextFlow(pid)
	hlc := t.HLCTick(pid)
	t.add(Event{Name: name, Cat: cat, Ph: 's', TS: t.Now(),
		Pid: pid, Tid: parent, Parent: parent, Flow: flow, HLC: hlc, Args: copyArgs(args)})
	return SpanContext{Trace: trace, Span: parent, Flow: flow, HLC: hlc}
}

// RecvCtx records the flow-end ('f') event for a message arriving at
// place pid, landing on lane tid (the span the message started or was
// handled under). A zero (untraced) context is ignored, so receive
// sites need no enablement check of their own. Parent is set to the
// sending span so the causal chain crosses the place boundary even
// before traces are merged.
func (t *Tracer) RecvCtx(ctx SpanContext, name, cat string, pid int, tid uint64, args ...Arg) {
	if t == nil || !ctx.Valid() {
		return
	}
	hlc := t.HLCObserve(pid, ctx.HLC)
	t.add(Event{Name: name, Cat: cat, Ph: 'f', TS: t.Now(),
		Pid: pid, Tid: tid, Parent: ctx.Span, Flow: ctx.Flow, HLC: hlc, Args: copyArgs(args)})
}

// copyArgs snapshots a variadic arg list before it is retained in an
// event. Retaining the caller's slice directly would make every
// variadic call site heap-allocate it — even on the disabled fast
// paths that never reach this function. Copying here keeps the
// caller's slice stack-allocated, so call sites pay the allocation
// only when tracing is actually recording.
func copyArgs(args []Arg) []Arg {
	if len(args) == 0 {
		return nil
	}
	cp := make([]Arg, len(args))
	copy(cp, args)
	return cp
}
