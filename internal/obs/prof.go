package obs

import (
	"context"
	"runtime/pprof"
	"strconv"
	"sync"
)

// Profiler is the activity-attribution side of the observability layer:
// it stamps pprof goroutine labels — place, finish pattern, activity
// kind, and app/experiment name — onto every activity body the runtime
// executes, so CPU and heap profiles partition by runtime subsystem and
// workload instead of by anonymous closures. Because goroutine labels
// are inherited by child goroutines and restored on return, a labeled
// sample always names the innermost activity that burned the CPU: a
// GLB-stolen task is attributed to the thief's place, not the victim's.
//
// Like the Tracer, a Profiler is nil when profiling is disabled, and the
// runtime's instrumented paths pay exactly one pointer load and branch;
// the label machinery (LabelSet construction, context plumbing) lives
// only behind the enabled branch. Label sets are cached per
// (place, pattern, kind, app) tuple — a small, bounded space — so the
// enabled path does one read-locked map lookup per activity, with no
// per-activity allocation after warm-up.
type Profiler struct {
	mu       sync.RWMutex
	app      string
	full     map[profKey]pprof.LabelSet
	kinds    map[string]pprof.LabelSet
	patterns map[string]pprof.LabelSet
}

// Label keys stamped by the Profiler. Kept short and unprefixed so
// `go tool pprof -tagfocus` invocations stay readable.
const (
	// LabelPlace is the place the activity executed at ("0", "1", ...).
	LabelPlace = "place"
	// LabelPattern is the governing finish pattern's metric key
	// ("default", "spmd", "dense", ...; "none" for uncounted activities).
	LabelPattern = "pattern"
	// LabelKind is the activity kind: how the body reached the runtime
	// ("async", "at.async", "at", "at.direct", "uncounted", "main",
	// "glb.worker", "collective.<op>", "dispatch").
	LabelKind = "kind"
	// LabelApp is the process-wide app/experiment name (SetApp).
	LabelApp = "app"
)

type profKey struct {
	place   int
	pattern string
	kind    string
	app     string
}

// NewProfiler returns an enabled Profiler whose app label is app (the
// empty string omits the label until SetApp is called).
func NewProfiler(app string) *Profiler {
	return &Profiler{
		app:      app,
		full:     make(map[profKey]pprof.LabelSet),
		kinds:    make(map[string]pprof.LabelSet),
		patterns: make(map[string]pprof.LabelSet),
	}
}

// SetApp installs name as the app/experiment label stamped on
// subsequently started activities (running activities keep the label
// they started with). The harness calls it per experiment so one
// profile spanning several workloads still partitions by app. Nil-safe.
func (p *Profiler) SetApp(name string) {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.app = name
	p.mu.Unlock()
}

// App returns the current app label ("" on a nil receiver).
func (p *Profiler) App() string {
	if p == nil {
		return ""
	}
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.app
}

// Enabled reports whether profiling labels are being applied. It is the
// disabled-path hook the overhead gate measures: on a nil receiver it
// must compile to a pointer test.
func (p *Profiler) Enabled() bool { return p != nil }

// labels returns the cached full label set for (place, pattern, kind)
// under the current app, building it on first use.
func (p *Profiler) labels(place int, pattern, kind string) pprof.LabelSet {
	p.mu.RLock()
	key := profKey{place: place, pattern: pattern, kind: kind, app: p.app}
	ls, ok := p.full[key]
	p.mu.RUnlock()
	if ok {
		return ls
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	key.app = p.app
	if ls, ok = p.full[key]; ok {
		return ls
	}
	kv := []string{
		LabelPlace, strconv.Itoa(place),
		LabelPattern, pattern,
		LabelKind, kind,
	}
	if key.app != "" {
		kv = append(kv, LabelApp, key.app)
	}
	ls = pprof.Labels(kv...)
	p.full[key] = ls
	return ls
}

// overlay returns a cached single-key label set from cache, building it
// on first use. The caller passes the cache map keyed by value.
func (p *Profiler) overlay(cache map[string]pprof.LabelSet, labelKey, val string) pprof.LabelSet {
	p.mu.RLock()
	ls, ok := cache[val]
	p.mu.RUnlock()
	if ok {
		return ls
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if ls, ok = cache[val]; ok {
		return ls
	}
	ls = pprof.Labels(labelKey, val)
	cache[val] = ls
	return ls
}

// Run executes fn on the current goroutine with the full
// (place, pattern, kind, app) label set installed, restoring the
// previous labels on return, and returns fn's error. fn receives the
// labeled context; activity bodies stash it (core.Ctx) so that nested
// overlays (RunPattern, DoKind) can extend the full set rather than
// replace it — pprof.Do installs exactly the context's label map, so an
// overlay built on context.Background would silently erase the other
// labels. On a nil receiver Run calls fn with a nil context. Runtime
// call sites branch on the receiver themselves so the disabled path
// never builds the fn closure.
func (p *Profiler) Run(place int, pattern, kind string, fn func(context.Context) error) error {
	if p == nil {
		return fn(nil)
	}
	var err error
	pprof.Do(context.Background(), p.labels(place, pattern, kind), func(c context.Context) {
		err = fn(c)
	})
	return err
}

// Do is Run for bodies that do not return an error.
func (p *Profiler) Do(place int, pattern, kind string, fn func(context.Context)) {
	if p == nil {
		fn(nil)
		return
	}
	pprof.Do(context.Background(), p.labels(place, pattern, kind), fn)
}

// DoKind executes fn with the kind label overridden on top of parent —
// the enclosing activity's labeled context (nil falls back to
// Background, losing the other labels). Extension layers running inside
// an already-labeled activity (collective ops) use it to reattribute
// just the subsystem.
func (p *Profiler) DoKind(parent context.Context, kind string, fn func(context.Context)) {
	if p == nil {
		fn(nil)
		return
	}
	if parent == nil {
		parent = context.Background()
	}
	pprof.Do(parent, p.overlay(p.kinds, LabelKind, kind), fn)
}

// RunPattern executes fn with the pattern label overridden on top of
// parent — the FinishPragma body path, where the enclosing activity's
// place, kind, and app remain correct but the governing pattern
// changes.
func (p *Profiler) RunPattern(parent context.Context, pattern string, fn func(context.Context) error) error {
	if p == nil {
		return fn(nil)
	}
	if parent == nil {
		parent = context.Background()
	}
	var err error
	pprof.Do(parent, p.overlay(p.patterns, LabelPattern, pattern), func(c context.Context) {
		err = fn(c)
	})
	return err
}

// LabelGoroutine permanently labels the calling goroutine with
// (place, kind) — for long-lived runtime service goroutines (transport
// dispatchers) that are born before any activity runs and never return.
// Unlike Run/Do there is no restore; do not call it from activity
// bodies. Nil-safe.
func (p *Profiler) LabelGoroutine(place int, kind string) {
	if p == nil {
		return
	}
	ctx := pprof.WithLabels(context.Background(), pprof.Labels(
		LabelPlace, strconv.Itoa(place), LabelKind, kind))
	pprof.SetGoroutineLabels(ctx)
}
