package obs

import "testing"

// TestHistogramQuantileExactPowersOfTwo pins the quantile readout on
// observations that are exact powers of two: each lands alone in its
// bucket, whose lower bound is the observed value, so the readout is
// exact at every rank.
func TestHistogramQuantileExactPowersOfTwo(t *testing.T) {
	h := new(Histogram)
	values := []uint64{1, 2, 4, 8, 16, 32, 64, 128}
	for _, v := range values {
		h.Observe(v)
	}
	cases := []struct {
		q    float64
		want uint64
	}{
		{0, 1},      // rank clamps to the first observation
		{0.125, 1},  // rank 1 of 8
		{0.25, 2},   // rank 2
		{0.5, 8},    // rank 4
		{0.75, 32},  // rank 6
		{1.0, 128},  // rank 8
		{1.5, 128},   // q clamps to 1
		{-0.5, 1},    // q clamps to 0
		{0.874, 64},  // nearest rank: ceil(0.874*8)=7
		{0.999, 128}, // nearest rank: ceil(0.999*8)=8
	}
	for _, c := range cases {
		if got := h.Quantile(c.q); got != c.want {
			t.Errorf("Quantile(%v) = %d, want %d", c.q, got, c.want)
		}
	}
}

func TestHistogramQuantileDegenerate(t *testing.T) {
	var nilH *Histogram
	if got := nilH.Quantile(0.5); got != 0 {
		t.Errorf("nil histogram Quantile = %d, want 0", got)
	}
	empty := new(Histogram)
	if got := empty.Quantile(0.5); got != 0 {
		t.Errorf("empty histogram Quantile = %d, want 0", got)
	}
	zeros := new(Histogram)
	zeros.Observe(0)
	zeros.Observe(0)
	if got := zeros.Quantile(1.0); got != 0 {
		t.Errorf("all-zero histogram Quantile = %d, want 0", got)
	}
	if (Value{}).Quantile(0.5) != 0 {
		t.Error("non-histogram Value Quantile should be 0")
	}
}

// TestQuantileAfterMergeAndSub checks the Value.Quantile readout on the
// two derived bucket forms the attribution tables consume: a cross-place
// merged histogram, and a snapshot delta (Sub) after the merge's inputs
// advanced.
func TestQuantileAfterMergeAndSub(t *testing.T) {
	r0, r1 := NewRegistry(), NewRegistry()
	h0, h1 := r0.Histogram("lat.us"), r1.Histogram("lat.us")
	h0.Observe(4)
	h0.Observe(4)
	h1.Observe(64)
	h1.Observe(64)

	merged := MergeSnapshots(map[int]Snapshot{0: r0.Snapshot(), 1: r1.Snapshot()})
	mv := merged["lat.us"]
	if got := mv.Sum.Quantile(0.5); got != 4 {
		t.Errorf("merged p50 = %d, want 4", got)
	}
	if got := mv.Sum.Quantile(1.0); got != 64 {
		t.Errorf("merged p100 = %d, want 64", got)
	}

	// Delta view: observations recorded after a baseline snapshot.
	base := r0.Snapshot()
	h0.Observe(1024)
	h0.Observe(1024)
	h0.Observe(1024)
	delta := r0.Snapshot().Sub(base)
	dv := delta["lat.us"]
	if dv.Count != 3 {
		t.Fatalf("delta count = %d, want 3", dv.Count)
	}
	if got := dv.Quantile(0.5); got != 1024 {
		t.Errorf("delta p50 = %d, want 1024 (the 4s were subtracted away)", got)
	}
}
