package obs

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// FlightRecorder is an always-on, fixed-size, lock-free ring of recent
// trace events — the runtime's black box. Unlike the Tracer (opt-in,
// unbounded, allocating), the flight recorder is meant to run on every
// production process: recording is a handful of atomic stores into a
// recycled slot, with no allocation and no locks on the record path, so
// it stays enabled even when -trace is off. When something goes wrong —
// a finish stall, a SIGQUIT, a Run that returns an error — the last
// DefaultFlightSize control-plane events are still there to be dumped.
//
// Event names and argument keys are interned up front with NameID (a
// mutex-protected cold path); the hot Record path carries only integer
// ids, which is what makes it allocation-free and race-detector-clean:
// every slot field is an atomic word.
//
// Consistency model: each slot is stamped with its global sequence number
// before and after the field stores. A reader (Events, WriteDump) accepts
// a slot only when both stamps agree, so records torn by a concurrent
// writer lapping the ring are dropped rather than misreported. Under
// pathological contention a lapped slot can still blend two events'
// fields; the recorder is a best-effort diagnostic, not an audit log.
//
// All methods are nil-receiver safe; a nil *FlightRecorder records
// nothing at the cost of one branch.
type FlightRecorder struct {
	start time.Time
	// nowFn, when non-nil, replaces the wall clock for event timestamps
	// (nanoseconds from an arbitrary epoch). The chaos harness installs a
	// virtual clock here so replayed runs stamp events with reproducible
	// logical times instead of wall time. Set it before recording starts;
	// it is not synchronized against concurrent Record calls.
	nowFn func() int64
	mask  uint64
	// cursor is the next global sequence number, starting at 1 so that a
	// zero slot stamp always means "never written".
	cursor atomic.Uint64
	slots  []flightSlot

	mu      sync.Mutex
	names   []string
	nameIdx map[string]uint32
}

// flightSlot holds one record as plain atomic words (see the consistency
// model above). word packs name, cat, ph, and nargs.
type flightSlot struct {
	seqA atomic.Uint64 // stamped before the field stores
	seqB atomic.Uint64 // stamped after the field stores
	word atomic.Uint64 // name<<32 | cat<<16 | ph<<8 | nargs
	ts   atomic.Int64
	dur  atomic.Int64
	pid  atomic.Int64
	tid  atomic.Uint64
	k1   atomic.Uint64
	v1   atomic.Int64
	k2   atomic.Uint64
	v2   atomic.Int64
}

// DefaultFlightSize is the ring capacity used by Obs constructors.
const DefaultFlightSize = 4096

// NewFlightRecorder creates a recorder holding the most recent size
// events (rounded up to a power of two, minimum 64).
func NewFlightRecorder(size int) *FlightRecorder {
	n := 64
	for n < size {
		n <<= 1
	}
	return &FlightRecorder{
		start:   time.Now(),
		mask:    uint64(n - 1),
		slots:   make([]flightSlot, n),
		names:   []string{""}, // id 0 is the empty name
		nameIdx: map[string]uint32{"": 0},
	}
}

// SetNow installs now as the recorder's time source (nanoseconds from an
// arbitrary epoch; must be non-decreasing). Pass nil to restore the wall
// clock. Call before the recorder is shared with concurrent writers.
func (f *FlightRecorder) SetNow(now func() int64) {
	if f == nil {
		return
	}
	f.nowFn = now
}

// Cap returns the ring capacity (0 on nil).
func (f *FlightRecorder) Cap() int {
	if f == nil {
		return 0
	}
	return len(f.slots)
}

// NameID interns a name (event name, category, or argument key) and
// returns its id for use with Record. Call it at setup time, not on hot
// paths. A nil recorder returns 0, which Record ignores harmlessly.
func (f *FlightRecorder) NameID(name string) uint32 {
	if f == nil {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if id, ok := f.nameIdx[name]; ok {
		return id
	}
	id := uint32(len(f.names))
	if id > 0xffff {
		// Name table full: fold into the empty name rather than grow
		// unboundedly; 65k distinct event names means an interning bug.
		return 0
	}
	f.names = append(f.names, name)
	f.nameIdx[name] = id
	return id
}

// name resolves an interned id (reader side).
func (f *FlightRecorder) name(id uint32) string {
	f.mu.Lock()
	defer f.mu.Unlock()
	if int(id) < len(f.names) {
		return f.names[id]
	}
	return ""
}

// Record stores one event with no arguments. name and cat are interned
// ids from NameID; ph is the trace phase byte ('i' instant, 'X' span,
// 'B'/'E' begin/end markers); dur is in nanoseconds (0 for instants).
func (f *FlightRecorder) Record(name, cat uint32, ph byte, pid int, tid uint64, dur int64) {
	f.record(name, cat, ph, pid, tid, dur, 0, 0, 0, 0, 0)
}

// Record1 stores one event with one integer argument.
func (f *FlightRecorder) Record1(name, cat uint32, ph byte, pid int, tid uint64, dur int64,
	k1 uint32, v1 int64) {
	f.record(name, cat, ph, pid, tid, dur, 1, k1, v1, 0, 0)
}

// Record2 stores one event with two integer arguments.
func (f *FlightRecorder) Record2(name, cat uint32, ph byte, pid int, tid uint64, dur int64,
	k1 uint32, v1 int64, k2 uint32, v2 int64) {
	f.record(name, cat, ph, pid, tid, dur, 2, k1, v1, k2, v2)
}

func (f *FlightRecorder) record(name, cat uint32, ph byte, pid int, tid uint64, dur int64,
	nargs uint8, k1 uint32, v1 int64, k2 uint32, v2 int64) {
	if f == nil {
		return
	}
	var ts int64
	if f.nowFn != nil {
		ts = f.nowFn()
	} else {
		ts = int64(time.Since(f.start))
	}
	seq := f.cursor.Add(1)
	s := &f.slots[seq&f.mask]
	s.seqA.Store(seq)
	s.word.Store(uint64(name)<<32 | uint64(cat&0xffff)<<16 | uint64(ph)<<8 | uint64(nargs))
	s.ts.Store(ts)
	s.dur.Store(dur)
	s.pid.Store(int64(pid))
	s.tid.Store(tid)
	s.k1.Store(uint64(k1))
	s.v1.Store(v1)
	s.k2.Store(uint64(k2))
	s.v2.Store(v2)
	s.seqB.Store(seq)
}

// Recorded returns the total number of events ever recorded (some may
// have been overwritten by newer ones).
func (f *FlightRecorder) Recorded() uint64 {
	if f == nil {
		return 0
	}
	return f.cursor.Load()
}

// FlightArg is one key/value annotation on a FlightEvent.
type FlightArg struct {
	Key string
	Val int64
}

// FlightEvent is one decoded record from the ring.
type FlightEvent struct {
	Seq  uint64 // global sequence number, strictly increasing
	TS   int64  // nanoseconds since recorder start, non-decreasing in Events order
	Dur  int64  // nanoseconds (spans only)
	Ph   byte
	Pid  int
	Tid  uint64
	Name string
	Cat  string
	Args []FlightArg
}

// Events decodes the ring into ring order (oldest first). Timestamps are
// monotonized: because concurrent recorders can obtain their sequence
// number and read the clock in either order, a raw slot timestamp can
// precede its predecessor's by nanoseconds; Events clamps each timestamp
// to the running maximum so consumers can rely on non-decreasing time.
func (f *FlightRecorder) Events() []FlightEvent {
	if f == nil {
		return nil
	}
	out := make([]FlightEvent, 0, len(f.slots))
	for i := range f.slots {
		s := &f.slots[i]
		seq := s.seqA.Load()
		if seq == 0 {
			continue // never written
		}
		word := s.word.Load()
		e := FlightEvent{
			Seq: seq,
			TS:  s.ts.Load(),
			Dur: s.dur.Load(),
			Ph:  byte(word >> 8),
			Pid: int(s.pid.Load()),
			Tid: s.tid.Load(),
		}
		nargs := int(word & 0xff)
		k1, v1 := uint32(s.k1.Load()), s.v1.Load()
		k2, v2 := uint32(s.k2.Load()), s.v2.Load()
		if s.seqB.Load() != seq || s.seqA.Load() != seq {
			continue // torn by a concurrent writer lapping the ring
		}
		e.Name = f.name(uint32(word >> 32))
		e.Cat = f.name(uint32(word>>16) & 0xffff)
		if nargs >= 1 {
			e.Args = append(e.Args, FlightArg{Key: f.name(k1), Val: v1})
		}
		if nargs >= 2 {
			e.Args = append(e.Args, FlightArg{Key: f.name(k2), Val: v2})
		}
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	var maxTS int64
	for i := range out {
		if out[i].TS < maxTS {
			out[i].TS = maxTS
		} else {
			maxTS = out[i].TS
		}
	}
	return out
}

// FlightDumpMagic is the value of the header field identifying a flight
// recorder dump file (see WriteDump).
const FlightDumpMagic = "apgas-flight"

// WriteDump writes the ring as a JSON Lines dump: a header object
// (`{"type":"apgas-flight","version":1,...}`) followed by one event
// object per line, in ring order with strictly increasing "seq" and
// non-decreasing "ts" (nanoseconds). cmd/tracecheck validates this
// format.
func (f *FlightRecorder) WriteDump(w io.Writer) error {
	events := f.Events()
	recorded := f.Recorded()
	dropped := recorded - uint64(len(events))
	if _, err := fmt.Fprintf(w, `{"type":%q,"version":1,"events":%d,"recorded":%d,"dropped":%d,"runtime":%s}`+"\n",
		FlightDumpMagic, len(events), recorded, dropped, TakeRuntimeSnapshot().JSON()); err != nil {
		return err
	}
	for _, e := range events {
		if _, err := fmt.Fprintf(w, `{"seq":%d,"ts":%d,"dur":%d,"ph":%q,"pid":%d,"tid":%d,"name":%q,"cat":%q`,
			e.Seq, e.TS, e.Dur, string(e.Ph), e.Pid, e.Tid, e.Name, e.Cat); err != nil {
			return err
		}
		if len(e.Args) > 0 {
			if _, err := io.WriteString(w, `,"args":{`); err != nil {
				return err
			}
			for i, a := range e.Args {
				sep := ""
				if i > 0 {
					sep = ","
				}
				if _, err := fmt.Fprintf(w, "%s%q:%d", sep, a.Key, a.Val); err != nil {
					return err
				}
			}
			if _, err := io.WriteString(w, "}"); err != nil {
				return err
			}
		}
		if _, err := io.WriteString(w, "}\n"); err != nil {
			return err
		}
	}
	return nil
}

// WriteText renders the most recent max events (all when max <= 0) as
// human-readable lines, newest last — the form the stall watchdog and
// error dumps embed in their reports.
func (f *FlightRecorder) WriteText(w io.Writer, max int) {
	events := f.Events()
	if max > 0 && len(events) > max {
		events = events[len(events)-max:]
	}
	for _, e := range events {
		fmt.Fprintf(w, "%12.6fms p%-3d %c %-24s", float64(e.TS)/1e6, e.Pid, e.Ph, e.Name)
		if e.Dur > 0 {
			fmt.Fprintf(w, " dur=%.3fms", float64(e.Dur)/1e6)
		}
		for _, a := range e.Args {
			fmt.Fprintf(w, " %s=%d", a.Key, a.Val)
		}
		fmt.Fprintln(w)
	}
}
