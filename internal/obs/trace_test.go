package obs

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestTracerSpansAndChromeExport(t *testing.T) {
	tr := NewTracer()
	t0 := tr.Now()
	tr.Complete("finish.spmd", "finish", 0, tr.NextID(), t0, Arg{"places", 4})
	tr.Instant("at.async", "core", 1, Arg{"dst", 2}, Arg{"bytes", 64})

	events := tr.Events()
	if len(events) != 2 {
		t.Fatalf("got %d events, want 2", len(events))
	}

	var sb strings.Builder
	if err := tr.WriteChrome(&sb); err != nil {
		t.Fatal(err)
	}
	raw := sb.String()
	if !json.Valid([]byte(raw)) {
		t.Fatalf("exported trace is not valid JSON:\n%s", raw)
	}
	var parsed struct {
		TraceEvents []struct {
			Name string           `json:"name"`
			Ph   string           `json:"ph"`
			TS   float64          `json:"ts"`
			Dur  *float64         `json:"dur"`
			Pid  int              `json:"pid"`
			Args map[string]int64 `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal([]byte(raw), &parsed); err != nil {
		t.Fatal(err)
	}
	if parsed.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q", parsed.DisplayTimeUnit)
	}
	if len(parsed.TraceEvents) != 2 {
		t.Fatalf("chrome events = %d, want 2", len(parsed.TraceEvents))
	}
	span := parsed.TraceEvents[0]
	if span.Name != "finish.spmd" || span.Ph != "X" || span.Dur == nil || *span.Dur < 0 {
		t.Fatalf("bad span event: %+v", span)
	}
	if span.Args["places"] != 4 {
		t.Fatalf("span args = %v", span.Args)
	}
	inst := parsed.TraceEvents[1]
	if inst.Name != "at.async" || inst.Ph != "i" || inst.Pid != 1 || inst.Args["dst"] != 2 {
		t.Fatalf("bad instant event: %+v", inst)
	}
}

func TestTracerConcurrentAndSummary(t *testing.T) {
	tr := NewTracer()
	var wg sync.WaitGroup
	for pid := 0; pid < 32; pid++ {
		wg.Add(1)
		go func(pid int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				t0 := tr.Now()
				tr.Complete("async", "activity", pid, tr.NextID(), t0)
				tr.Instant("hop", "core", pid)
			}
		}(pid)
	}
	wg.Wait()
	events := tr.Events()
	if len(events) != 32*50*2 {
		t.Fatalf("got %d events, want %d", len(events), 32*50*2)
	}
	for i := 1; i < len(events); i++ {
		if events[i-1].TS > events[i].TS {
			t.Fatal("events not sorted by timestamp")
		}
	}
	var sb strings.Builder
	tr.WriteSummary(&sb)
	out := sb.String()
	if !strings.Contains(out, "async") || !strings.Contains(out, "1600") {
		t.Fatalf("summary missing aggregates:\n%s", out)
	}
}

func TestGlobalObs(t *testing.T) {
	if Global() != nil {
		t.Fatal("global obs should start nil")
	}
	o := NewTracing()
	SetGlobal(o)
	defer SetGlobal(nil)
	if Global() != o {
		t.Fatal("SetGlobal/Global mismatch")
	}
	if o.Tracer() == nil || o.Registry() == nil {
		t.Fatal("tracing obs must expose tracer and registry")
	}
	var nilObs *Obs
	if nilObs.Tracer() != nil || nilObs.Registry() != nil {
		t.Fatal("nil obs accessors must return nil")
	}
}
