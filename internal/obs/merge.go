package obs

import (
	"fmt"
	"io"
	"sort"
)

// MergedValue is one metric aggregated across a set of place snapshots:
// the element-wise sum plus the min/max across the places that report the
// metric, and the raw per-place values for imbalance inspection. For
// counters and histograms the Sum/Min/Max refer to Count (and histogram
// buckets add element-wise into Sum.Buckets); for gauges they refer to
// the level.
type MergedValue struct {
	Kind Kind
	Sum  Value
	// Min and Max are over reporting places only; Places lists which
	// place reported which value, aligned with PerPlace.
	Min, Max int64
	MinAt    int
	MaxAt    int
	// Places and PerPlace record each reporting place and its scalar
	// value (Count for counters/histograms, level for gauges), sorted by
	// place id.
	Places   []int
	PerPlace []int64
}

// Merged is the cross-place aggregation of many per-place snapshots.
type Merged map[string]MergedValue

// MergeSnapshots folds per-place snapshots into sum/min/max/per-place
// views. byPlace maps place id → that place's snapshot (nil snapshots are
// skipped). Metrics are matched by name, which is why per-place
// registries use unqualified names (see Obs.Place).
func MergeSnapshots(byPlace map[int]Snapshot) Merged {
	places := make([]int, 0, len(byPlace))
	for p, s := range byPlace {
		if s != nil {
			places = append(places, p)
		}
	}
	sort.Ints(places)
	out := make(Merged)
	for _, p := range places {
		for name, v := range byPlace[p] {
			m, seen := out[name]
			scalar := int64(v.Count)
			if v.Kind == KindGauge {
				scalar = v.Gauge
			}
			if !seen {
				m = MergedValue{Kind: v.Kind, Min: scalar, Max: scalar, MinAt: p, MaxAt: p}
			}
			m.Sum.Kind = v.Kind
			m.Sum.Count += v.Count
			m.Sum.Gauge += v.Gauge
			m.Sum.Sum += v.Sum
			if len(v.Buckets) > 0 {
				if len(m.Sum.Buckets) < len(v.Buckets) {
					b := make([]uint64, len(v.Buckets))
					copy(b, m.Sum.Buckets)
					m.Sum.Buckets = b
				}
				for i, bv := range v.Buckets {
					m.Sum.Buckets[i] += bv
				}
			}
			if seen && scalar < m.Min {
				m.Min, m.MinAt = scalar, p
			}
			if seen && scalar > m.Max {
				m.Max, m.MaxAt = scalar, p
			}
			m.Places = append(m.Places, p)
			m.PerPlace = append(m.PerPlace, scalar)
			out[name] = m
		}
	}
	return out
}

// Counter returns the summed count of a counter/histogram metric (0 when
// absent).
func (m Merged) Counter(name string) uint64 { return m[name].Sum.Count }

// WriteTable renders the merged view sorted by name: one row per metric
// with sum, min (and the place holding it), max (and its place), and the
// per-place values.
func (m Merged) WriteTable(w io.Writer) {
	names := make([]string, 0, len(m))
	for name := range m {
		names = append(names, name)
	}
	sort.Strings(names)
	fmt.Fprintf(w, "%-36s %12s %12s %12s  %s\n", "metric", "sum", "min", "max", "per-place")
	for _, name := range names {
		v := m[name]
		sum := int64(v.Sum.Count)
		if v.Kind == KindGauge {
			sum = v.Sum.Gauge
		}
		fmt.Fprintf(w, "%-36s %12d %9d@p%-2d %9d@p%-2d  [", name, sum, v.Min, v.MinAt, v.Max, v.MaxAt)
		for i, pv := range v.PerPlace {
			if i > 0 {
				io.WriteString(w, " ")
			}
			fmt.Fprintf(w, "%d", pv)
		}
		io.WriteString(w, "]\n")
	}
}
