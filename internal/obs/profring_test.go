package obs

import (
	"testing"
	"time"
)

func TestProfileRingRetention(t *testing.T) {
	r := NewProfileRing(3)
	for i := 1; i <= 5; i++ {
		seq := r.Add("cpu", time.Unix(int64(i), 0), time.Second, []byte{byte(i)})
		if seq != uint64(i) {
			t.Fatalf("Add %d returned seq %d", i, seq)
		}
	}
	snaps := r.Snapshots()
	if len(snaps) != 3 {
		t.Fatalf("retained %d snapshots, want 3", len(snaps))
	}
	// Oldest-first, sequences 3..5 survive.
	for i, s := range snaps {
		if s.Seq != uint64(i+3) {
			t.Fatalf("snapshot %d has seq %d, want %d", i, s.Seq, i+3)
		}
	}
	if _, ok := r.Get(1); ok {
		t.Fatal("evicted snapshot 1 still retrievable")
	}
	if s, ok := r.Get(4); !ok || s.Data[0] != 4 {
		t.Fatalf("Get(4) = %+v, %v", s, ok)
	}
}

func TestProfileRingLatest(t *testing.T) {
	r := NewProfileRing(10)
	r.Add("heap", time.Unix(1, 0), 0, nil)
	r.Add("cpu", time.Unix(2, 0), time.Second, nil)
	r.Add("heap", time.Unix(3, 0), 0, nil)
	if s, ok := r.Latest("cpu"); !ok || s.Seq != 2 {
		t.Fatalf("Latest(cpu) = %+v, %v", s, ok)
	}
	if s, ok := r.Latest(""); !ok || s.Seq != 3 {
		t.Fatalf("Latest() = %+v, %v", s, ok)
	}
	if _, ok := r.Latest("goroutine"); ok {
		t.Fatal("Latest(goroutine) should miss")
	}
}

func TestProfileRingNil(t *testing.T) {
	var r *ProfileRing
	if seq := r.Add("cpu", time.Now(), 0, nil); seq != 0 {
		t.Fatalf("nil Add = %d", seq)
	}
	if r.Snapshots() != nil {
		t.Fatal("nil Snapshots should be nil")
	}
	if _, err := r.CaptureHeap(); err != nil {
		t.Fatalf("nil CaptureHeap: %v", err)
	}
	stop := r.StartCapture(CaptureOptions{})
	stop()
}

func TestProfileRingCaptureHeap(t *testing.T) {
	r := NewProfileRing(2)
	seq, err := r.CaptureHeap()
	if err != nil {
		t.Fatalf("CaptureHeap: %v", err)
	}
	s, ok := r.Get(seq)
	if !ok || s.Kind != "heap" || len(s.Data) == 0 {
		t.Fatalf("heap snapshot = %+v, %v", s, ok)
	}
}

func TestProfileRingStartCapture(t *testing.T) {
	r := NewProfileRing(4)
	stop := r.StartCapture(CaptureOptions{
		Interval:  5 * time.Millisecond,
		CPUWindow: 5 * time.Millisecond,
		Heap:      true,
	})
	deadline := time.Now().Add(2 * time.Second)
	for {
		_, gotHeap := r.Latest("heap")
		_, gotCPU := r.Latest("cpu")
		if gotHeap && gotCPU {
			break
		}
		if time.Now().After(deadline) {
			stop()
			t.Fatalf("capture loop produced heap=%v cpu=%v within deadline", gotHeap, gotCPU)
		}
		time.Sleep(2 * time.Millisecond)
	}
	stop()
}
