package obs

import (
	"fmt"
	"io"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter. The zero value is
// ready to use, and all methods are safe on a nil receiver (no-ops), so
// instrumented code can hold nil handles when observability is disabled.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count (0 on a nil receiver).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic signed level (e.g. currently blocked scheduler
// slots). The zero value is ready; methods are nil-receiver safe.
type Gauge struct{ v atomic.Int64 }

// Add moves the gauge by d (negative to decrease).
func (g *Gauge) Add(d int64) {
	if g != nil {
		g.v.Add(d)
	}
}

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Value returns the current level (0 on a nil receiver).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// HistBuckets is the number of power-of-two histogram buckets: bucket i
// counts observations v with bits.Len64(v) == i, i.e. bucket 0 holds
// zeros and bucket i>0 holds [2^(i-1), 2^i). Values beyond the last
// bucket clamp into it.
const HistBuckets = 40

// Histogram is a lock-free power-of-two histogram. The zero value is
// ready; methods are nil-receiver safe.
type Histogram struct {
	buckets [HistBuckets]atomic.Uint64
	count   atomic.Uint64
	sum     atomic.Uint64
}

// Observe records one value.
func (h *Histogram) Observe(v uint64) {
	if h == nil {
		return
	}
	b := bits.Len64(v)
	if b >= HistBuckets {
		b = HistBuckets - 1
	}
	h.buckets[b].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed values.
func (h *Histogram) Sum() uint64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Quantile returns the lower bound of the bucket holding the q-quantile
// (0 <= q <= 1) of the observed values: 0 for the zero bucket, 2^(i-1)
// for bucket i. When every observation is an exact power of two the
// readout is therefore exact. Returns 0 on a nil or empty histogram.
func (h *Histogram) Quantile(q float64) uint64 {
	if h == nil {
		return 0
	}
	var buckets [HistBuckets]uint64
	for i := range buckets {
		buckets[i] = h.buckets[i].Load()
	}
	return bucketQuantile(buckets[:], q)
}

// bucketQuantile is the shared quantile walk over power-of-two bucket
// counts (see HistBuckets for the bucket layout).
func bucketQuantile(buckets []uint64, q float64) uint64 {
	var total uint64
	for _, b := range buckets {
		total += b
	}
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	// rank is the 1-based index of the observation the quantile names
	// (nearest-rank: ceil(q*N)).
	rank := uint64(q * float64(total))
	if float64(rank) < q*float64(total) {
		rank++
	}
	if rank < 1 {
		rank = 1
	}
	if rank > total {
		rank = total
	}
	var cum uint64
	for i, b := range buckets {
		cum += b
		if cum >= rank {
			if i == 0 {
				return 0
			}
			return 1 << (i - 1)
		}
	}
	return 1 << (len(buckets) - 2)
}

// Kind discriminates the metric types inside a Snapshot.
type Kind uint8

const (
	// KindCounter marks a Counter value.
	KindCounter Kind = iota
	// KindGauge marks a Gauge value.
	KindGauge
	// KindHistogram marks a Histogram value.
	KindHistogram
)

// Value is one metric's state inside a Snapshot.
type Value struct {
	Kind Kind
	// Count is the counter value, or the histogram observation count.
	Count uint64
	// Gauge is the gauge level (KindGauge only).
	Gauge int64
	// Sum is the histogram value sum (KindHistogram only).
	Sum uint64
	// Buckets are the histogram bucket counts (KindHistogram only).
	Buckets []uint64
}

// Snapshot is a point-in-time copy of a registry's metrics by name.
type Snapshot map[string]Value

// Counter returns the named counter's value (0 when absent).
func (s Snapshot) Counter(name string) uint64 { return s[name].Count }

// Quantile returns the power-of-two bucket lower bound of the
// q-quantile of a histogram Value (0 for non-histograms or empty
// histograms). It works on snapshot, Sub, and merged values alike,
// since all carry the same bucket layout.
func (v Value) Quantile(q float64) uint64 {
	if len(v.Buckets) == 0 {
		return 0
	}
	return bucketQuantile(v.Buckets, q)
}

// Gauge returns the named gauge's level (0 when absent).
func (s Snapshot) Gauge(name string) int64 { return s[name].Gauge }

// Sub returns the interval s - prev: counters and histograms subtract
// (saturating at zero, so a metric re-registered by a newer runtime never
// underflows), gauges keep their current level.
func (s Snapshot) Sub(prev Snapshot) Snapshot {
	out := make(Snapshot, len(s))
	for name, v := range s {
		p := prev[name]
		d := v
		d.Count = satSub(v.Count, p.Count)
		d.Sum = satSub(v.Sum, p.Sum)
		if len(v.Buckets) > 0 {
			d.Buckets = make([]uint64, len(v.Buckets))
			for i := range v.Buckets {
				var pb uint64
				if i < len(p.Buckets) {
					pb = p.Buckets[i]
				}
				d.Buckets[i] = satSub(v.Buckets[i], pb)
			}
		}
		out[name] = d
	}
	return out
}

func satSub(a, b uint64) uint64 {
	if a < b {
		return 0
	}
	return a - b
}

// WriteText renders the snapshot sorted by name, one metric per line.
func (s Snapshot) WriteText(w io.Writer) {
	names := make([]string, 0, len(s))
	for name := range s {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		v := s[name]
		switch v.Kind {
		case KindGauge:
			fmt.Fprintf(w, "%-40s %d (gauge)\n", name, v.Gauge)
		case KindHistogram:
			avg := 0.0
			if v.Count > 0 {
				avg = float64(v.Sum) / float64(v.Count)
			}
			fmt.Fprintf(w, "%-40s count=%d sum=%d avg=%.1f\n", name, v.Count, v.Sum, avg)
		default:
			fmt.Fprintf(w, "%-40s %d\n", name, v.Count)
		}
	}
}

// Registry holds named metrics. Names are hierarchical dot-paths, e.g.
// "finish.spmd.count", "glb.steal.attempts", "sched.p3.slots.blocked",
// "x10rt.msgs.control". Get-or-create methods hand back stable handles
// that callers cache; the hot update path is then a single atomic op.
// All methods are safe for concurrent use and nil-receiver safe (a nil
// registry returns nil handles, whose methods are no-ops).
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = new(Counter)
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = new(Gauge)
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = new(Histogram)
		r.hists[name] = h
	}
	return h
}

// RegisterCounter adopts an externally owned counter under name, so
// subsystems with their own always-on counters (the transport's traffic
// classes, the scheduler's spawn counts) surface them in snapshots
// without double counting. A later registration under the same name
// replaces the earlier one (a fresh runtime supersedes a closed one).
func (r *Registry) RegisterCounter(name string, c *Counter) {
	if r == nil || c == nil {
		return
	}
	r.mu.Lock()
	r.counters[name] = c
	r.mu.Unlock()
}

// RegisterGauge adopts an externally owned gauge under name.
func (r *Registry) RegisterGauge(name string, g *Gauge) {
	if r == nil || g == nil {
		return
	}
	r.mu.Lock()
	r.gauges[name] = g
	r.mu.Unlock()
}

// RegisterHistogram adopts an externally owned histogram under name,
// with the same replacement semantics as RegisterCounter.
func (r *Registry) RegisterHistogram(name string, h *Histogram) {
	if r == nil || h == nil {
		return
	}
	r.mu.Lock()
	r.hists[name] = h
	r.mu.Unlock()
}

// Snapshot copies every metric's current state.
func (r *Registry) Snapshot() Snapshot {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s := make(Snapshot, len(r.counters)+len(r.gauges)+len(r.hists))
	for name, c := range r.counters {
		s[name] = Value{Kind: KindCounter, Count: c.Value()}
	}
	for name, g := range r.gauges {
		s[name] = Value{Kind: KindGauge, Gauge: g.Value()}
	}
	for name, h := range r.hists {
		v := Value{Kind: KindHistogram, Count: h.count.Load(), Sum: h.sum.Load()}
		v.Buckets = make([]uint64, HistBuckets)
		for i := range v.Buckets {
			v.Buckets[i] = h.buckets[i].Load()
		}
		s[name] = v
	}
	return s
}
