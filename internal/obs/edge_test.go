package obs

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"
)

func TestCompleteEdgeRecordsParentAndEdge(t *testing.T) {
	tr := NewTracer()
	root := tr.NextID()
	tr.CompleteEdge("finish.spmd", "finish", 0, root, tr.Now(), 0, EdgeChild)
	child := tr.NextID()
	tr.CompleteEdge("async", "activity", 1, child, tr.Now(), root, EdgeChild,
		Arg{Key: "bytes", Val: 64})
	tr.InstantEdge("finish.ctl", "finish", 0, root, EdgeCredit, Arg{Key: "src", Val: 1})

	events := tr.Events()
	if len(events) != 3 {
		t.Fatalf("got %d events, want 3", len(events))
	}
	byName := make(map[string]Event)
	for _, e := range events {
		byName[e.Name] = e
	}
	if e := byName["async"]; e.Parent != root || e.Edge != EdgeChild {
		t.Errorf("async parent=%d edge=%v, want parent=%d edge=child", e.Parent, e.Edge, root)
	}
	if e := byName["finish.ctl"]; e.Parent != root || e.Edge != EdgeCredit {
		t.Errorf("ctl parent=%d edge=%v, want parent=%d edge=credit", e.Parent, e.Edge, root)
	}

	// The Chrome export surfaces edges as args so Perfetto shows them.
	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string           `json:"name"`
			Args map[string]int64 `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, e := range doc.TraceEvents {
		if e.Name == "async" {
			found = true
			if e.Args["parent"] != int64(root) || e.Args["edge"] != int64(EdgeChild) {
				t.Errorf("chrome args = %v, want parent=%d edge=%d", e.Args, root, EdgeChild)
			}
		}
	}
	if !found {
		t.Error("async event missing from Chrome export")
	}
}

func TestEdgeKindString(t *testing.T) {
	for k, want := range map[EdgeKind]string{
		EdgeNone: "none", EdgeChild: "child", EdgeSteal: "steal",
		EdgeCredit: "credit", EdgeLifeline: "lifeline", EdgeKind(99): "none",
	} {
		if got := k.String(); got != want {
			t.Errorf("EdgeKind(%d).String() = %q, want %q", k, got, want)
		}
	}
}

// TestSpanEdgeHammer races many goroutines over the edge-recording path
// plus concurrent readers; run under -race this pins the new span-edge
// API as data-race free. Nil tracers must stay no-ops.
func TestSpanEdgeHammer(t *testing.T) {
	tr := NewTracer()
	var nilTr *Tracer
	const goroutines = 64
	const perG = 100
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(pid int) {
			defer wg.Done()
			parent := tr.NextID()
			for i := 0; i < perG; i++ {
				t0 := tr.Now()
				id := tr.NextID()
				tr.CompleteEdge("async", "activity", pid, id, t0, parent, EdgeChild)
				tr.InstantEdge("finish.ctl", "finish", pid, parent, EdgeCredit)
				nilTr.CompleteEdge("x", "y", pid, id, t0, parent, EdgeSteal)
				nilTr.InstantEdge("x", "y", pid, parent, EdgeLifeline)
				if i%10 == 0 {
					_ = tr.Events()
				}
			}
		}(g % 16)
	}
	wg.Wait()
	events := tr.Events()
	want := goroutines * perG * 2
	if len(events) != want {
		t.Fatalf("got %d events, want %d", len(events), want)
	}
}
