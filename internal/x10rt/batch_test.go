package x10rt

import (
	"bytes"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// encodeTestBatch builds the BatchMsg slice and encoded batch frame for
// codec tests.
func encodeTestBatch(t *testing.T, n int, payloadBytes, compressMin int) ([]BatchMsg, []byte) {
	t.Helper()
	msgs := make([]BatchMsg, n)
	for i := range msgs {
		msgs[i] = BatchMsg{
			ID:      UserHandlerBase,
			Payload: wirePayload{Value: i, Tag: "batch"},
			Bytes:   payloadBytes,
			Class:   ControlClass,
		}
	}
	frame, err := appendBatchFrame(nil, 3, msgs, compressMin)
	if err != nil {
		t.Fatalf("appendBatchFrame: %v", err)
	}
	return msgs, frame
}

func TestBatchFrameRoundTrip(t *testing.T) {
	for _, compressMin := range []int{0, 1} {
		t.Run(fmt.Sprintf("compressMin=%d", compressMin), func(t *testing.T) {
			msgs, frame := encodeTestBatch(t, 17, 24, compressMin)
			version, payload, err := readVersionedFrame(bytes.NewReader(frame))
			if err != nil {
				t.Fatalf("readVersionedFrame: %v", err)
			}
			if version != batchVersion {
				t.Fatalf("version = %d, want %d", version, batchVersion)
			}
			if compressMin > 0 && payload[0]&batchFlagCompressed == 0 {
				t.Error("compressible batch was not compressed")
			}
			got, err := decodeBatchPayload(payload)
			if err != nil {
				t.Fatalf("decodeBatchPayload: %v", err)
			}
			if len(got) != len(msgs) {
				t.Fatalf("decoded %d messages, want %d", len(got), len(msgs))
			}
			for i, m := range got {
				if m.Src != 3 || m.ID != UserHandlerBase || m.Class != ControlClass || m.Bytes != 24 {
					t.Fatalf("message %d header = %+v", i, m)
				}
				if p := m.Payload.(wirePayload); p.Value != i || p.Tag != "batch" {
					t.Fatalf("message %d payload = %+v", i, p)
				}
			}
		})
	}
}

func TestBatchFrameCompressionShrinks(t *testing.T) {
	_, raw := encodeTestBatch(t, 64, 24, 0)
	_, comp := encodeTestBatch(t, 64, 24, 1)
	if len(comp) >= len(raw) {
		t.Fatalf("compressed frame %dB >= raw frame %dB", len(comp), len(raw))
	}
}

func TestDecodeBatchRejectsCorruption(t *testing.T) {
	cases := map[string][]byte{
		"empty":            {},
		"zero-count":       {0x00, 0x00},
		"bad-flags":        {0x04, 0x01},
		"oversized-rawlen": {0x01, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f, 0x00},
		"flate-garbage":    append([]byte{0x01, 0x20}, []byte("this is not a deflate stream")...),
		"count-gt-body":    {0x00, 0xff, 0xff, 0x03},
	}
	for name, payload := range cases {
		if _, err := decodeBatchPayload(payload); err == nil {
			t.Errorf("%s: decode accepted corrupt payload", name)
		}
	}
	// Torn batch: a valid frame with the tail cut off must error, not panic.
	_, frame := encodeTestBatch(t, 4, 16, 0)
	if _, err := decodeBatchPayload(frame[frameHeaderSize : len(frame)-3]); err == nil {
		t.Error("torn batch decoded without error")
	}
}

// newBatchedPair returns a 2-endpoint TCP mesh with endpoint 0 wrapped
// in a BatchingTransport.
func newBatchedPair(t *testing.T, opts BatchOptions) (*BatchingTransport, []*TCPTransport) {
	t.Helper()
	mesh, err := NewLocalTCPMesh(2)
	if err != nil {
		t.Fatalf("NewLocalTCPMesh: %v", err)
	}
	bt := NewBatchingTransport(mesh[0], opts)
	t.Cleanup(func() {
		bt.Close() // closes mesh[0]
		mesh[1].Close()
	})
	return bt, mesh
}

func TestBatchingDeliversInOrderOverTCP(t *testing.T) {
	const n = 500
	bt, mesh := newBatchedPair(t, BatchOptions{MaxDelay: 50 * time.Millisecond, MaxFrames: 32})
	var mu sync.Mutex
	var got []int
	done := make(chan struct{})
	if err := mesh[1].Register(UserHandlerBase, func(src, dst int, payload any) {
		mu.Lock()
		got = append(got, payload.(wirePayload).Value)
		if len(got) == n {
			close(done)
		}
		mu.Unlock()
	}); err != nil {
		t.Fatal(err)
	}
	if err := bt.Register(UserHandlerBase, func(src, dst int, payload any) {}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if err := bt.Send(0, 1, UserHandlerBase, wirePayload{Value: i}, 16, ControlClass); err != nil {
			t.Fatalf("Send %d: %v", i, err)
		}
	}
	if err := bt.Flush(0); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		mu.Lock()
		t.Fatalf("delivered %d of %d messages", len(got), n)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("message %d arrived with value %d: FIFO broken", i, v)
		}
	}
	batches, msgs := bt.BatchStats()
	if msgs != n {
		t.Errorf("batch layer carried %d messages, want %d", msgs, n)
	}
	if batches >= n {
		t.Errorf("no coalescing: %d batches for %d messages", batches, n)
	}
}

func TestBatchingIdleLinkFlushesImmediately(t *testing.T) {
	// A manual clock where every send sees the link idle: each message
	// must be flushed by its own Send call, no background flusher needed.
	var now atomic.Int64
	bt, mesh := newBatchedPair(t, BatchOptions{
		MaxDelay: time.Millisecond,
		Now:      func() int64 { return now.Load() },
	})
	var delivered atomic.Int64
	if err := mesh[1].Register(UserHandlerBase, func(src, dst int, payload any) {
		delivered.Add(1)
	}); err != nil {
		t.Fatal(err)
	}
	if err := bt.Register(UserHandlerBase, func(src, dst int, payload any) {}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		now.Add(int64(10 * time.Millisecond)) // link goes idle between sends
		if err := bt.Send(0, 1, UserHandlerBase, wirePayload{Value: i}, 16, DataClass); err != nil {
			t.Fatal(err)
		}
	}
	if batches, _ := bt.BatchStats(); batches != 5 {
		t.Errorf("idle sends produced %d batches, want 5 (one each)", batches)
	}
	deadline := time.Now().Add(5 * time.Second)
	for delivered.Load() != 5 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if delivered.Load() != 5 {
		t.Fatalf("delivered %d of 5", delivered.Load())
	}
}

func TestBatchingSizeThresholdFlushes(t *testing.T) {
	// A frozen clock: nothing is ever idle or aged, so only the frame
	// count threshold can flush.
	bt, _ := newBatchedPair(t, BatchOptions{
		MaxDelay:  time.Hour,
		MaxFrames: 8,
		Now:       func() int64 { return 0 },
	})
	if err := bt.Register(UserHandlerBase, func(src, dst int, payload any) {}); err != nil {
		t.Fatal(err)
	}
	// The very first send on a link takes the idle fast path (batch of
	// one); after that the frozen clock leaves only the size threshold.
	for i := 0; i < 25; i++ {
		if err := bt.Send(0, 1, UserHandlerBase, wirePayload{Value: i}, 16, ControlClass); err != nil {
			t.Fatal(err)
		}
	}
	batches, msgs := bt.BatchStats()
	if batches != 4 || msgs != 25 {
		t.Errorf("batches=%d msgs=%d, want 4 batches (1 idle + 3 full) carrying 25", batches, msgs)
	}
}

func TestBatchingWireBytesShrinkWithCompression(t *testing.T) {
	// Compressible control payloads: post-batch, post-compression wire
	// bytes must undercut the modeled byte total, and the telemetry
	// attribution (PlaceStats) must agree with Stats.
	bt, _ := newBatchedPair(t, BatchOptions{
		MaxDelay:    time.Hour,
		MaxFrames:   64,
		CompressMin: 64,
		Now:         func() int64 { return 0 },
	})
	if err := bt.Register(UserHandlerBase, func(src, dst int, payload any) {}); err != nil {
		t.Fatal(err)
	}
	const n, modeled = 64, 256
	for i := 0; i < n; i++ {
		if err := bt.Send(0, 1, UserHandlerBase, wirePayload{Tag: "aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa"}, modeled, ControlClass); err != nil {
			t.Fatal(err)
		}
	}
	if err := bt.Flush(0); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	s := bt.Stats()
	if s.WireBytes == 0 {
		t.Fatal("WireBytes not counted")
	}
	if s.WireBytes >= n*modeled {
		t.Errorf("wire bytes %d not reduced below modeled %d", s.WireBytes, n*modeled)
	}
	if ps := bt.PlaceStats(0); ps.WireBytes != s.WireBytes {
		t.Errorf("PlaceStats(0).WireBytes = %d, Stats().WireBytes = %d", ps.WireBytes, s.WireBytes)
	}
}

func TestBatchingRejectsUnregisteredHandler(t *testing.T) {
	bt, _ := newBatchedPair(t, BatchOptions{})
	err := bt.Send(0, 1, UserHandlerBase+9, wirePayload{}, 8, DataClass)
	if err == nil {
		t.Fatal("Send with unregistered handler succeeded")
	}
}

func TestBatchingCloseSemantics(t *testing.T) {
	bt, _ := newBatchedPair(t, BatchOptions{})
	if err := bt.Register(UserHandlerBase, func(src, dst int, payload any) {}); err != nil {
		t.Fatal(err)
	}
	if err := bt.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := bt.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if err := bt.Send(0, 1, UserHandlerBase, wirePayload{}, 8, DataClass); err != ErrClosed {
		t.Fatalf("Send after Close = %v, want ErrClosed", err)
	}
}

func TestBatchingOverChanKeepsSumEquality(t *testing.T) {
	// The batching wrapper must preserve the telemetry invariant: total
	// Stats equals the sum of PlaceStats, wire bytes included.
	inner, err := NewChanTransport(ChanOptions{Places: 4})
	if err != nil {
		t.Fatal(err)
	}
	bt := NewBatchingTransport(inner, BatchOptions{MaxFrames: 4})
	defer bt.Close()
	if err := bt.Register(UserHandlerBase, func(src, dst int, payload any) {}); err != nil {
		t.Fatal(err)
	}
	for src := 0; src < 4; src++ {
		for dst := 0; dst < 4; dst++ {
			for k := 0; k <= src; k++ {
				if err := bt.Send(src, dst, UserHandlerBase, nil, 10+k, DataClass); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	bt.Quiesce()
	var sum Stats
	for p := 0; p < 4; p++ {
		ps := bt.PlaceStats(p)
		for i := range sum.Messages {
			sum.Messages[i] += ps.Messages[i]
			sum.Bytes[i] += ps.Bytes[i]
		}
		sum.WireBytes += ps.WireBytes
	}
	if got := bt.Stats(); got != sum {
		t.Errorf("Stats %+v != Σ PlaceStats %+v", got, sum)
	}
}
