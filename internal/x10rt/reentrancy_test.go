package x10rt

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// This file pins the ChanTransport reentrancy invariant (see the type
// comment in chan.go): Send never delivers on the sender's goroutine,
// even with nil Latency, so a handler that sends from inside a handler —
// including to its own place — can never deadlock against a lock its
// caller holds, and per-link FIFO is preserved.

// TestSendNeverDeliversInline asserts that no handler runs synchronously
// inside Send, with and without an injected Latency function.
func TestSendNeverDeliversInline(t *testing.T) {
	for _, withLatency := range []bool{false, true} {
		opts := ChanOptions{Places: 2}
		if withLatency {
			opts.Latency = func(src, dst, bytes int, class Class) time.Duration { return 0 }
		}
		tr, err := NewChanTransport(opts)
		if err != nil {
			t.Fatal(err)
		}
		var inSend atomic.Bool
		var inlineDeliveries atomic.Int64
		done := make(chan struct{}, 8)
		if err := tr.Register(UserHandlerBase, func(src, dst int, payload any) {
			if inSend.Load() {
				inlineDeliveries.Add(1)
			}
			done <- struct{}{}
		}); err != nil {
			t.Fatal(err)
		}
		for _, dst := range []int{0, 1} { // self-send and cross-send
			inSend.Store(true)
			if err := tr.Send(0, dst, UserHandlerBase, nil, 8, DataClass); err != nil {
				t.Fatal(err)
			}
			inSend.Store(false)
			select {
			case <-done:
			case <-time.After(5 * time.Second):
				t.Fatalf("latency=%v dst=%d: message never delivered", withLatency, dst)
			}
		}
		if n := inlineDeliveries.Load(); n != 0 {
			t.Fatalf("latency=%v: %d handlers ran inline on the sender goroutine", withLatency, n)
		}
		tr.Close()
	}
}

// TestHandlerSendInsideHandler is the deadlock regression: a handler that
// holds a lock and sends to its own place (and onward around a ring) must
// complete even though the next handler takes the same lock. If Send ever
// delivered inline, the self-send would re-enter the locked section on
// the same goroutine and deadlock.
func TestHandlerSendInsideHandler(t *testing.T) {
	const places, hops = 3, 200
	tr, err := NewChanTransport(ChanOptions{Places: places})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()

	var mu sync.Mutex // the handler-level lock a reentrant delivery would deadlock on
	var count atomic.Int64
	finished := make(chan struct{})
	if err := tr.Register(UserHandlerBase, func(src, dst int, payload any) {
		remaining := payload.(int)
		mu.Lock()
		defer mu.Unlock()
		if count.Add(1) == hops {
			close(finished)
			return
		}
		// Alternate between a self-send and a hop to the next place, all
		// from inside the handler with mu held.
		next := dst
		if remaining%2 == 0 {
			next = (dst + 1) % places
		}
		if err := tr.Send(dst, next, UserHandlerBase, remaining-1, 8, ControlClass); err != nil {
			t.Errorf("send inside handler: %v", err)
		}
	}); err != nil {
		t.Fatal(err)
	}

	if err := tr.Send(0, 0, UserHandlerBase, hops, 8, ControlClass); err != nil {
		t.Fatal(err)
	}
	select {
	case <-finished:
	case <-time.After(10 * time.Second):
		t.Fatalf("handler-in-handler chain deadlocked after %d/%d hops", count.Load(), hops)
	}
}
