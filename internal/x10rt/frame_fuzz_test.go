package x10rt

import (
	"bytes"
	"io"
	"testing"
)

// FuzzDecodeFrame throws arbitrary bytes at the frame parser and, for
// frames that parse, at the gob wire-message decoder. Neither layer may
// panic or over-allocate, whatever the input: the frame header is
// validated before any allocation, and decodeWireMsg converts gob's
// panics into errors. The committed corpus under testdata/fuzz seeds the
// interesting shapes (valid message, truncations, corrupt magic/version,
// oversized length).
func FuzzDecodeFrame(f *testing.F) {
	// A genuine frame carrying a registered payload type.
	m := wireMsg{Src: 3, ID: UserHandlerBase, Class: ControlClass, Bytes: 24,
		Payload: wirePayload{Value: 42}}
	valid, err := encodeWireMsg(&m)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add(valid[:len(valid)-1])                              // truncated payload
	f.Add([]byte{})                                          // empty
	f.Add([]byte{frameMagic, frameVersion, 0, 0, 0, 0})      // empty payload
	f.Add([]byte{frameMagic, frameVersion + 9, 0, 0, 0, 1})  // bad version
	f.Add([]byte{0x00, frameVersion, 0, 0, 0, 0})            // bad magic
	f.Add([]byte{frameMagic, frameVersion, 0xff, 0xff, 0xff, 0xff}) // huge length
	f.Add(append(append([]byte{}, valid...), valid...))      // two frames back to back

	f.Fuzz(func(t *testing.T, data []byte) {
		// Streaming parser: must terminate, never panic, never allocate
		// beyond MaxFrameSize per frame.
		payload, rest, err := DecodeFrame(data)
		if err == nil {
			if len(payload) > MaxFrameSize {
				t.Fatalf("payload %d exceeds MaxFrameSize", len(payload))
			}
			if len(payload)+len(rest)+frameHeaderSize != len(data) {
				t.Fatalf("frame accounting: %d + %d + %d != %d",
					len(payload), len(rest), frameHeaderSize, len(data))
			}
			// Whatever decodes must be harmless: error or message, no panic.
			_, _ = decodeWireMsg(payload)
		}
		// Reader-based parser must agree with the slicing parser on the
		// first frame.
		rp, rerr := ReadFrame(bytes.NewReader(data))
		if (err == nil) != (rerr == nil) {
			// DecodeFrame reports short input as io.ErrUnexpectedEOF too;
			// the only asymmetry allowed is ReadFrame seeing io.EOF on
			// fully empty input.
			if !(len(data) == 0 && rerr == io.EOF) {
				t.Fatalf("DecodeFrame err=%v, ReadFrame err=%v", err, rerr)
			}
		}
		if err == nil && !bytes.Equal(rp, payload) {
			t.Fatalf("ReadFrame payload %q != DecodeFrame payload %q", rp, payload)
		}
	})
}

// FuzzFrameRoundTrip checks that anything we frame comes back intact
// through both decoders.
func FuzzFrameRoundTrip(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("hello"))
	f.Add(bytes.Repeat([]byte{0xA7}, 64))
	f.Fuzz(func(t *testing.T, payload []byte) {
		framed, err := AppendFrame(nil, payload)
		if err != nil {
			t.Skip() // oversized payload, rejected by design
		}
		got, rest, err := DecodeFrame(framed)
		if err != nil || len(rest) != 0 || !bytes.Equal(got, payload) {
			t.Fatalf("roundtrip: got=%q rest=%d err=%v", got, len(rest), err)
		}
		rgot, err := ReadFrame(bytes.NewReader(framed))
		if err != nil || !bytes.Equal(rgot, payload) {
			t.Fatalf("ReadFrame roundtrip: got=%q err=%v", rgot, err)
		}
	})
}
