package x10rt

import (
	"sync"
	"testing"

	"apgas/internal/obs"
)

// TestPlaceStatsSumToStats asserts the PlaceMetricSource contract: the
// per-place egress snapshots sum exactly to the global Stats, because
// every message is attributed to its sender and telemetry traffic is
// counted nowhere.
func TestPlaceStatsSumToStats(t *testing.T) {
	const places = 4
	tr, err := NewChanTransport(ChanOptions{Places: places})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	var mu sync.Mutex
	got := 0
	h := func(src, dst int, payload any) { mu.Lock(); got++; mu.Unlock() }
	if err := tr.Register(UserHandlerBase, h); err != nil {
		t.Fatal(err)
	}
	if err := tr.Register(HandlerTelemetry, h); err != nil {
		t.Fatal(err)
	}

	sent := 0
	for src := 0; src < places; src++ {
		for dst := 0; dst < places; dst++ {
			for k := 0; k <= src; k++ { // deliberately imbalanced egress
				cls := Class(k % 3)
				if err := tr.Send(src, dst, UserHandlerBase, nil, 10+src, cls); err != nil {
					t.Fatal(err)
				}
				sent++
			}
			// Telemetry traffic must not show up anywhere.
			if err := tr.Send(src, dst, HandlerTelemetry, nil, 999, ControlClass); err != nil {
				t.Fatal(err)
			}
			sent++
		}
	}
	tr.Quiesce()
	mu.Lock()
	if got != sent {
		t.Fatalf("handlers ran %d times, want %d", got, sent)
	}
	mu.Unlock()

	var sum Stats
	for p := 0; p < places; p++ {
		ps := tr.PlaceStats(p)
		if ps.TotalMessages() == 0 {
			t.Errorf("place %d egress is zero; attribution broken", p)
		}
		for i := range sum.Messages {
			sum.Messages[i] += ps.Messages[i]
			sum.Bytes[i] += ps.Bytes[i]
		}
		sum.WireBytes += ps.WireBytes
	}
	if global := tr.Stats(); sum != global {
		t.Errorf("sum of PlaceStats %+v != Stats %+v", sum, global)
	}
	// Wire-byte parity, spelled out on its own: the wire observatory's
	// per-link attribution is derived from the same per-place egress
	// accounts, so Σ per-place WireBytes must equal the global wire
	// counter exactly — and must be nonzero for nonzero traffic.
	if sum.WireBytes != tr.Stats().WireBytes {
		t.Errorf("wire-byte parity: Σ per-place WireBytes = %d, Stats().WireBytes = %d",
			sum.WireBytes, tr.Stats().WireBytes)
	}
	if sum.WireBytes == 0 {
		t.Error("no wire bytes attributed for nonzero traffic")
	}
	// p1 sent 2 messages per destination vs p0's 1: imbalance visible.
	if p0, p1 := tr.PlaceStats(0).TotalMessages(), tr.PlaceStats(1).TotalMessages(); p1 != 2*p0 {
		t.Errorf("egress imbalance lost: p0=%d p1=%d", p0, p1)
	}
	if tr.PlaceStats(-1) != (Stats{}) || tr.PlaceStats(places) != (Stats{}) {
		t.Error("out-of-range PlaceStats must be zero")
	}
}

// TestTelemetryExcludedFromStats pins the exclusion rule the telemetry
// plane depends on: sending on HandlerTelemetry moves no counters, so
// collecting metrics does not perturb them.
func TestTelemetryExcludedFromStats(t *testing.T) {
	tr, err := NewChanTransport(ChanOptions{Places: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	tr.Register(HandlerTelemetry, func(src, dst int, payload any) {})
	before := tr.Stats()
	for i := 0; i < 10; i++ {
		if err := tr.Send(0, 1, HandlerTelemetry, nil, 100, ControlClass); err != nil {
			t.Fatal(err)
		}
	}
	tr.Quiesce()
	if d := tr.Stats().Sub(before); d.TotalMessages() != 0 || d.TotalBytes() != 0 {
		t.Errorf("telemetry traffic leaked into Stats: %+v", d)
	}
	if ps := tr.PlaceStats(0); ps.TotalMessages() != 0 {
		t.Errorf("telemetry traffic leaked into PlaceStats: %+v", ps)
	}
}

// TestAttachPlaceMetrics checks the per-place registry view stays live.
func TestAttachPlaceMetrics(t *testing.T) {
	tr, err := NewChanTransport(ChanOptions{Places: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	tr.Register(UserHandlerBase, func(src, dst int, payload any) {})
	o := obs.New()
	for p := 0; p < 2; p++ {
		tr.AttachPlaceMetrics(p, o.Place(p))
	}
	tr.Send(1, 0, UserHandlerBase, nil, 42, DataClass)
	tr.Quiesce()
	s1 := o.Place(1).Snapshot()
	if s1.Counter("x10rt.msgs.data") != 1 || s1.Counter("x10rt.bytes.data") != 42 {
		t.Errorf("place 1 registry = %v", s1)
	}
	if o.Place(0).Snapshot().Counter("x10rt.msgs.data") != 0 {
		t.Error("receiver must not be charged for sender's egress")
	}
}

// TestCountingTransportForwardsPlaceStats checks the decorator does not
// hide the inner transport's per-place attribution.
func TestCountingTransportForwardsPlaceStats(t *testing.T) {
	inner, err := NewChanTransport(ChanOptions{Places: 2})
	if err != nil {
		t.Fatal(err)
	}
	tr := NewCountingTransport(inner)
	defer tr.Close()
	tr.Register(UserHandlerBase, func(src, dst int, payload any) {})
	tr.Send(0, 1, UserHandlerBase, nil, 7, DataClass)
	inner.Quiesce()
	if got := tr.PlaceStats(0).TotalMessages(); got != 1 {
		t.Errorf("decorated PlaceStats(0) = %d messages, want 1", got)
	}
}
