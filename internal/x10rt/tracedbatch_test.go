package x10rt

import (
	"bytes"
	"testing"
)

// TestTracedBatchRoundTrip exercises the version-3 (HLC-stamped) batch
// frame codec end to end.
func TestTracedBatchRoundTrip(t *testing.T) {
	msgs := []BatchMsg{
		{ID: HandlerFinishCtl, Class: ControlClass, Bytes: 16, Payload: "ctl"},
		{ID: HandlerSpawn, Class: DataClass, Bytes: 64, Payload: "spawn"},
	}
	const hlc = uint64(0xABCDE) << 16
	frame, err := appendTracedBatchFrame(nil, 2, msgs, 0, hlc)
	if err != nil {
		t.Fatalf("appendTracedBatchFrame: %v", err)
	}
	version, payload, err := readVersionedFrame(bytes.NewReader(frame))
	if err != nil {
		t.Fatalf("readVersionedFrame: %v", err)
	}
	if version != batchVersionTraced {
		t.Fatalf("version = %d, want %d", version, batchVersionTraced)
	}
	got, gotHLC, err := decodeTracedBatchPayload(payload)
	if err != nil {
		t.Fatalf("decodeTracedBatchPayload: %v", err)
	}
	if gotHLC != hlc {
		t.Fatalf("hlc = %#x, want %#x", gotHLC, hlc)
	}
	if len(got) != len(msgs) {
		t.Fatalf("decoded %d messages, want %d", len(got), len(msgs))
	}
	for i := range got {
		if got[i].Src != 2 || got[i].ID != msgs[i].ID || got[i].Payload != msgs[i].Payload {
			t.Fatalf("message %d = %+v", i, got[i])
		}
	}
}

// TestUntracedBatchStaysVersion2 pins the compatibility contract: without
// an HLC the frame is byte-identical to the version-2 encoding, so peers
// that predate tracing still decode it.
func TestUntracedBatchStaysVersion2(t *testing.T) {
	msgs := []BatchMsg{{ID: HandlerSpawn, Class: DataClass, Bytes: 8, Payload: "x"}}
	v2, err := appendBatchFrame(nil, 1, msgs, 0)
	if err != nil {
		t.Fatalf("appendBatchFrame: %v", err)
	}
	if v2[1] != batchVersion {
		t.Fatalf("version byte = %d, want %d", v2[1], batchVersion)
	}
}

func TestTracedBatchCorruptHLCPrefix(t *testing.T) {
	// A truncated/overlong uvarint prefix must be rejected, not panic.
	if _, _, err := decodeTracedBatchPayload([]byte{0x80}); err == nil {
		t.Fatal("decodeTracedBatchPayload accepted a truncated HLC prefix")
	}
}
